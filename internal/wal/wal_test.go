package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// collect reopens the log at dir and gathers every replayed record.
func collect(t *testing.T, dir string, opts Options) (*Log, []string) {
	t.Helper()
	var got []string
	l, err := Open(dir, opts, func(lsn uint64, payload []byte) error {
		if want := uint64(len(got) + 1); lsn != want {
			t.Fatalf("replayed lsn %d, want %d", lsn, want)
		}
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l, got
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, got := collect(t, dir, Options{})
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %v", got)
	}
	var want []string
	for i := 0; i < 25; i++ {
		rec := fmt.Sprintf("record-%02d", i)
		lsn, err := l.Append([]byte(rec))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("append %d returned lsn %d", i, lsn)
		}
		want = append(want, rec)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	l, got = collect(t, dir, Options{})
	defer l.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got  %v\n want %v", got, want)
	}
	if l.NextLSN() != uint64(len(want)+1) {
		t.Fatalf("NextLSN = %d, want %d", l.NextLSN(), len(want)+1)
	}
	// The reopened log stays appendable with consecutive LSNs.
	if lsn, err := l.Append([]byte("after-reopen")); err != nil || lsn != uint64(len(want)+1) {
		t.Fatalf("append after reopen: lsn %d, err %v", lsn, err)
	}
}

func TestSegmentRotationAndTrim(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record is larger than the threshold, so each
	// append past the first in a segment rotates.
	l, _ := collect(t, dir, Options{SegmentBytes: 16})
	var want []string
	for i := 0; i < 10; i++ {
		rec := fmt.Sprintf("a-fairly-long-record-%02d", i)
		if _, err := l.Append([]byte(rec)); err != nil {
			t.Fatalf("append: %v", err)
		}
		want = append(want, rec)
	}
	segs, err := segmentNames(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("segments = %v (err %v), want several", segs, err)
	}

	// Trimming before LSN 6 must drop the segments fully below it and
	// keep records 6.. replayable.
	if _, err := l.TrimBefore(6); err != nil {
		t.Fatalf("trim: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var got []string
	var first uint64
	l2, err := Open(dir, Options{SegmentBytes: 16}, func(lsn uint64, payload []byte) error {
		if first == 0 {
			first = lsn
		}
		got = append(got, string(payload))
		return nil
	})
	if err != nil {
		t.Fatalf("reopen after trim: %v", err)
	}
	defer l2.Close()
	if first == 0 || first > 6 {
		t.Fatalf("first replayed lsn after trim = %d, want <= 6", first)
	}
	if !reflect.DeepEqual(got, want[first-1:]) {
		t.Fatalf("post-trim replay mismatch: got %v", got)
	}
	// The active segment never goes away, even when fully covered.
	if n, err := l2.TrimBefore(1 << 30); err != nil || l2.NextLSN() != 11 {
		t.Fatalf("aggressive trim: removed %d, err %v, next %d", n, err, l2.NextLSN())
	}
}

// tailFile returns the path of the newest segment.
func tailFile(t *testing.T, dir string) string {
	t.Helper()
	names, err := segmentNames(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("segmentNames: %v (%v)", names, err)
	}
	return filepath.Join(dir, names[len(names)-1])
}

func TestTornTailTruncation(t *testing.T) {
	corruptions := map[string]func(t *testing.T, path string){
		"partial frame": func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0x03, 0x00}) // 2 of 8 frame bytes
		},
		"partial payload": func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0x10, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'x'})
		},
		"checksum mismatch": func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0x02, 0, 0, 0, 0, 0, 0, 0, 'h', 'i'})
		},
		"implausible length": func(t *testing.T, path string) {
			appendBytes(t, path, []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
		},
		"flipped payload bit": func(t *testing.T, path string) {
			f, err := os.OpenFile(path, os.O_RDWR, 0o666)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			st, err := f.Stat()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt([]byte{'X'}, st.Size()-1); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := collect(t, dir, Options{})
			want := []string{"one", "two", "three"}
			for _, rec := range want {
				if _, err := l.Append([]byte(rec)); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			corrupt(t, tailFile(t, dir))

			l, got := collect(t, dir, Options{})
			wantAfter := want
			if name == "flipped payload bit" {
				wantAfter = want[:2] // the flipped record itself is dropped
			}
			if !reflect.DeepEqual(got, wantAfter) {
				t.Fatalf("replay after %s = %v, want %v", name, got, wantAfter)
			}
			// The torn tail is gone for good: appends resume at the next
			// LSN and a further reopen sees a consistent log.
			if _, err := l.Append([]byte("resumed")); err != nil {
				t.Fatalf("append after truncation: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			l, got = collect(t, dir, Options{})
			defer l.Close()
			if !reflect.DeepEqual(got, append(append([]string(nil), wantAfter...), "resumed")) {
				t.Fatalf("second replay after %s = %v", name, got)
			}
		})
	}
}

func TestTornHeaderOfFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, Options{})
	if _, err := l.Append([]byte("kept")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between creating the next segment file and writing
	// its header: a second, empty segment file.
	if err := os.WriteFile(filepath.Join(dir, segmentName(2)), []byte("CD"), 0o666); err != nil {
		t.Fatal(err)
	}
	l, got := collect(t, dir, Options{})
	defer l.Close()
	if !reflect.DeepEqual(got, []string{"kept"}) {
		t.Fatalf("replay = %v", got)
	}
	if lsn, err := l.Append([]byte("next")); err != nil || lsn != 2 {
		t.Fatalf("append into repaired segment: lsn %d, err %v", lsn, err)
	}
}

func TestCorruptionInOldSegmentFailsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, Options{SegmentBytes: 16})
	for i := 0; i < 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("long-enough-record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := segmentNames(dir)
	if err != nil || len(names) < 2 {
		t.Fatalf("want multiple segments, got %v (%v)", names, err)
	}
	// Flip a byte in the FIRST segment: that is corruption, not a torn
	// tail, and recovery must refuse rather than silently drop records.
	first := filepath.Join(dir, names[0])
	f, err := os.OpenFile(first, os.O_RDWR, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, int64(headerSize)+frameSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{SegmentBytes: 16}, nil); err == nil {
		t.Fatal("Open accepted a corrupt middle segment")
	}
}

func TestFsyncOptionStillAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, Options{Fsync: true})
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("durable")); err != nil {
			t.Fatalf("fsync append: %v", err)
		}
	}
}

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// TestAppendFailureDoesNotPoisonTail: a failed append must never leave
// a partial frame that a later recovery would mistake for a torn tail
// (silently dropping acknowledged records behind it). When rollback is
// impossible the log refuses further appends instead.
func TestAppendFailureDoesNotPoisonTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := collect(t, dir, Options{})
	if _, err := l.Append([]byte("acknowledged")); err != nil {
		t.Fatal(err)
	}
	// Yank the segment out from under the log: the write fails, and so
	// does the rollback truncate.
	l.active.Close()
	if _, err := l.Append([]byte("fails")); err == nil {
		t.Fatal("append on a dead segment succeeded")
	}
	if _, err := l.Append([]byte("after-failure")); err == nil {
		t.Fatal("poisoned log accepted another append")
	}
	// The acknowledged record is still the intact tail of the log.
	l2, got := collect(t, dir, Options{})
	defer l2.Close()
	if !reflect.DeepEqual(got, []string{"acknowledged"}) {
		t.Fatalf("replay after failed append = %v", got)
	}
}

// TestTrimBeforeAtExactSegmentBoundary pins TrimBefore's boundary
// semantics when the trim LSN coincides exactly with a segment
// rotation: a segment is deleted if and only if every one of its
// records is strictly below the trim point, and the active segment
// survives any trim. Sized so each segment holds exactly two records.
func TestTrimBeforeAtExactSegmentBoundary(t *testing.T) {
	dir := t.TempDir()
	// header (5) + two frames of 8+5 bytes = 31: the third append
	// rotates, so segments hold records [1,2], [3,4], [5,6].
	l, err := Open(dir, Options{SegmentBytes: 31}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(l.segments); got != 3 {
		t.Fatalf("layout: %d segments, want 3", got)
	}

	// Trim below the first boundary: record 2 is still needed, so the
	// segment holding [1,2] must survive.
	if n, err := l.TrimBefore(2); err != nil || n != 0 {
		t.Fatalf("TrimBefore(2) = %d, %v; want 0 removals", n, err)
	}
	// Trim exactly at the boundary (lsn 3 = first record of segment 2):
	// every record of segment 1 is < 3, so it goes — and only it.
	if n, err := l.TrimBefore(3); err != nil || n != 1 {
		t.Fatalf("TrimBefore(3) = %d, %v; want exactly 1 removal", n, err)
	}
	// One past the boundary: segment 2 still holds record 4.
	if n, err := l.TrimBefore(4); err != nil || n != 0 {
		t.Fatalf("TrimBefore(4) = %d, %v; want 0 removals", n, err)
	}
	// Far future: everything closed goes, the active segment never does.
	if n, err := l.TrimBefore(1 << 40); err != nil || n != 1 {
		t.Fatalf("TrimBefore(huge) = %d, %v; want 1 removal (active survives)", n, err)
	}
	if _, err := l.Append([]byte("rec-7")); err != nil {
		t.Fatalf("append after trims: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the survivors replay with their original LSNs.
	var got []string
	var lsns []uint64
	l2, err := Open(dir, Options{SegmentBytes: 31}, func(lsn uint64, payload []byte) error {
		got = append(got, string(payload))
		lsns = append(lsns, lsn)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if want := []string{"rec-5", "rec-6", "rec-7"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after boundary trims = %v, want %v", got, want)
	}
	if want := []uint64{5, 6, 7}; !reflect.DeepEqual(lsns, want) {
		t.Fatalf("replay LSNs = %v, want %v", lsns, want)
	}
	if next := l2.NextLSN(); next != 8 {
		t.Fatalf("NextLSN after reopen = %d, want 8", next)
	}
}

func TestObserveAppendHook(t *testing.T) {
	var totals, fsyncs []time.Duration
	l, err := Open(t.TempDir(), Options{
		Fsync: true,
		ObserveAppend: func(total, fsync time.Duration) {
			totals = append(totals, total)
			fsyncs = append(fsyncs, fsync)
		},
	}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if _, err := l.Append([]byte("rec")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if len(totals) != 3 {
		t.Fatalf("observed %d appends, want 3", len(totals))
	}
	for i := range totals {
		if totals[i] <= 0 {
			t.Errorf("append %d: total duration %v, want > 0", i, totals[i])
		}
		if fsyncs[i] <= 0 {
			t.Errorf("append %d: fsync duration %v, want > 0 with Fsync on", i, fsyncs[i])
		}
		if fsyncs[i] > totals[i] {
			t.Errorf("append %d: fsync %v exceeds total %v", i, fsyncs[i], totals[i])
		}
	}

	// Without Fsync the hook still fires, reporting zero fsync time.
	var zeroFsyncs int
	l2, err := Open(t.TempDir(), Options{
		ObserveAppend: func(total, fsync time.Duration) {
			if fsync == 0 {
				zeroFsyncs++
			}
		},
	}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer l2.Close()
	if _, err := l2.Append([]byte("rec")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if zeroFsyncs != 1 {
		t.Fatalf("zero-fsync observations = %d, want 1", zeroFsyncs)
	}
}
