package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"copydetect/internal/dataset"
	"copydetect/internal/telemetry"
)

// TestAppendBodySizeCap is the regression test for unbounded direct
// appends: the daemon must refuse an oversized JSON body with 413, the
// same way the gateway's maxWriteBody does for proxied writes.
func TestAppendBodySizeCap(t *testing.T) {
	old := maxBodyBytes
	maxBodyBytes = 256
	defer func() { maxBodyBytes = old }()

	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/cap", nil, nil, nil), http.StatusCreated)

	big := appendRequest{Observations: []dataset.Record{
		{Source: "s1", Item: "d1", Value: strings.Repeat("x", 512)},
	}}
	var er errorResponse
	resp := do(t, srv, http.MethodPost, "/v1/datasets/cap/observations", big, &er, nil)
	wantStatus(t, resp, http.StatusRequestEntityTooLarge)
	if !strings.Contains(er.Error, "size limit") {
		t.Errorf("413 body = %q, want a size-limit message", er.Error)
	}

	// An oversized create body is refused the same way.
	resp = do(t, srv, http.MethodPut, "/v1/datasets/cap2", map[string]string{"pad": strings.Repeat("y", 512)}, nil, nil)
	wantStatus(t, resp, http.StatusRequestEntityTooLarge)

	// Under the cap everything still works.
	small := appendRequest{Observations: []dataset.Record{{Source: "s1", Item: "d1", Value: "v"}}}
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/cap/observations", small, nil, nil), http.StatusAccepted)
}

// TestAppendAdmissionControl drives convergence lag past the
// high-water mark (rounds blocked on the test hook, so lag can only
// grow) and expects 429 + Retry-After, replication traffic exempted,
// and recovery to 202 once the backlog drains.
func TestAppendAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	testHookRoundStart = func(*Managed) { <-release }
	defer func() { testHookRoundStart = nil }()

	reg := NewRegistry(Config{AppendHighWater: 2})
	defer reg.Close()
	treg := telemetry.New()
	reg.RegisterMetrics(treg)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/bp", nil, nil, nil), http.StatusCreated)
	batch := func(i int) appendRequest {
		return appendRequest{Observations: []dataset.Record{
			{Source: "s1", Item: fmt.Sprintf("d%d", i), Value: "v"},
		}}
	}

	// Two appends fit under the high-water mark of 2 (lag is 0, then 1).
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/bp/observations", batch(1), nil, nil), http.StatusAccepted)
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/bp/observations", batch(2), nil, nil), http.StatusAccepted)

	// The third finds lag 2 with no round able to publish: refused.
	var er errorResponse
	resp := do(t, srv, http.MethodPost, "/v1/datasets/bp/observations", batch(3), &er, nil)
	wantStatus(t, resp, http.StatusTooManyRequests)
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}
	if !strings.Contains(er.Error, "backlog") {
		t.Errorf("429 body = %q, want a backlog message", er.Error)
	}

	// A sequenced append is replication traffic already admitted at the
	// gateway: it must pass even over the high-water mark.
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/bp/observations", batch(3), nil,
		map[string]string{SeqHeader: "3"}), http.StatusAccepted)

	// Drain: let rounds run, wait for convergence, and the dataset
	// accepts client writes again.
	close(release)
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/bp/quiesce", nil, nil, nil), http.StatusOK)
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/bp/observations", batch(4), nil, nil), http.StatusAccepted)

	var b strings.Builder
	if err := treg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "copydetectd_admission_rejections_total 1") {
		t.Errorf("admission rejection not counted:\n%s", b.String())
	}
}

// TestRegistryMetricsExposition scrapes a durable registry after one
// full append/converge cycle and checks every advertised family is
// present, parseable and plausible.
func TestRegistryMetricsExposition(t *testing.T) {
	reg, err := Open(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	treg := telemetry.New()
	reg.RegisterMetrics(treg)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/m", nil, nil, nil), http.StatusCreated)
	batch := appendRequest{Observations: []dataset.Record{
		{Source: "s1", Item: "d1", Value: "a"},
		{Source: "s2", Item: "d1", Value: "a"},
	}}
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/m/observations", batch, nil, nil), http.StatusAccepted)
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/m/quiesce", nil, nil, nil), http.StatusOK)

	var b strings.Builder
	if err := treg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseLines(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, b.String())
	}
	value := func(name string, labels map[string]string) (float64, bool) {
	next:
		for _, s := range samples {
			if s.Name != name {
				continue
			}
			for k, v := range labels {
				if s.Labels[k] != v {
					continue next
				}
			}
			return s.Value, true
		}
		return 0, false
	}

	if v, ok := value("copydetectd_datasets", nil); !ok || v != 1 {
		t.Errorf("copydetectd_datasets = %v (present=%v), want 1", v, ok)
	}
	if v, ok := value("copydetectd_rounds_total", map[string]string{"algorithm": "HYBRID"}); !ok || v < 1 {
		t.Errorf("rounds_total{HYBRID} = %v (present=%v), want >= 1", v, ok)
	}
	if v, ok := value("copydetectd_round_duration_seconds_count", map[string]string{"algorithm": "HYBRID"}); !ok || v < 1 {
		t.Errorf("round_duration count = %v (present=%v), want >= 1", v, ok)
	}
	if v, ok := value("copydetectd_wal_append_seconds_count", nil); !ok || v < 1 {
		t.Errorf("wal_append count = %v (present=%v), want >= 1 (durable registry)", v, ok)
	}
	if v, ok := value("copydetectd_dataset_convergence_lag_appends", map[string]string{"dataset": "m"}); !ok || v != 0 {
		t.Errorf("convergence lag appends = %v (present=%v), want 0 after quiesce", v, ok)
	}
	if v, ok := value("copydetectd_dataset_convergence_lag_seconds", map[string]string{"dataset": "m"}); !ok || v != 0 {
		t.Errorf("convergence lag seconds = %v (present=%v), want 0 after quiesce", v, ok)
	}
	if v, ok := value("copydetectd_scheduler_queue_depth", nil); !ok || v != 0 {
		t.Errorf("scheduler queue depth = %v (present=%v), want 0 after quiesce", v, ok)
	}
	if _, ok := value("copydetectd_wal_fsync_seconds_count", nil); !ok {
		t.Error("wal_fsync family missing from exposition")
	}
}
