// Package telemetry is the stdlib-only metrics layer behind the
// /metrics endpoints of copydetectd and copygate: a tiny registry of
// counters, gauges and histograms (with label dimensions) rendered in
// the Prometheus text exposition format, plus the HTTP middleware that
// feeds the request-level families and threads per-request trace IDs
// through access logs (http.go).
//
// Two ways to register a metric:
//
//   - Owned instruments (Counter/Gauge/Histogram and their label Vecs)
//     are updated by the instrumented code path — atomics all the way,
//     safe for concurrent use, cheap enough for hot paths.
//   - Func collectors (CounterFunc/GaugeFunc) are evaluated at scrape
//     time and may emit any number of label combinations, which is how
//     state that already lives elsewhere — per-dataset convergence lag,
//     per-backend health — is exposed without mirroring it into a
//     second data structure.
//
// Exposition is deterministic: families appear in registration order,
// samples within a family in sorted label order, so golden tests can
// compare full scrapes byte-for-byte.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the metric families of a registry.
type Kind int

// The three Prometheus metric kinds this registry supports.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// DefBuckets are the default latency histogram bounds, in seconds —
// the classic Prometheus ladder, wide enough for both sub-millisecond
// WAL appends and multi-second quiesce calls.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// RoundBuckets suit detection-round durations, which reach far past
// request latencies on large datasets.
var RoundBuckets = []float64{
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Counter is a monotonically increasing count.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into cumulative buckets, Prometheus
// style: bucket i counts observations <= upper[i], plus an implicit
// +Inf bucket; sum and count accompany them.
type Histogram struct {
	upper   []float64
	buckets []atomic.Uint64 // one per upper bound; +Inf is count
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// family is one registered metric name: its metadata plus either owned
// children (one per label combination) or a scrape-time collector.
type family struct {
	name, help string
	kind       Kind
	labels     []string
	buckets    []float64

	mu       sync.Mutex
	children map[string]any // key: label values joined by \xff
	collect  func(emit func(v float64, labelValues ...string))
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on a duplicate name or an invalid
// identifier — both are programmer errors that would silently corrupt
// the exposition otherwise.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", f.name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("telemetry: metric %q registered twice", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// CounterVec registers a counter family with label dimensions.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: KindCounter, labels: labels, children: make(map[string]any)}
	r.register(f)
	return &CounterVec{f: f}
}

// Counter registers and returns an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterVec(name, help).With()
}

// GaugeVec registers a gauge family with label dimensions.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: KindGauge, labels: labels, children: make(map[string]any)}
	r.register(f)
	return &GaugeVec{f: f}
}

// Gauge registers and returns an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeVec(name, help).With()
}

// HistogramVec registers a histogram family with label dimensions.
// A nil bucket slice selects DefBuckets; bounds must be sorted.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: metric %q: buckets not strictly increasing", name))
		}
	}
	f := &family{name: name, help: help, kind: KindHistogram, labels: labels, buckets: buckets, children: make(map[string]any)}
	r.register(f)
	return &HistogramVec{f: f}
}

// Histogram registers and returns an unlabelled histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramVec(name, help, buckets).With()
}

// GaugeFunc registers a gauge family whose samples are produced at
// scrape time: collect is called with an emit function and may emit any
// number of samples, each with exactly len(labels) label values. This
// is how dynamic label sets (datasets, backends) are exposed without
// mirroring their state.
func (r *Registry) GaugeFunc(name, help string, labels []string, collect func(emit func(v float64, labelValues ...string))) {
	r.register(&family{name: name, help: help, kind: KindGauge, labels: labels, collect: collect})
}

// CounterFunc is GaugeFunc for a monotone count kept elsewhere (for
// example an atomic the hot path increments without telemetry in the
// loop).
func (r *Registry) CounterFunc(name, help string, labels []string, collect func(emit func(v float64, labelValues ...string))) {
	r.register(&family{name: name, help: help, kind: KindCounter, labels: labels, collect: collect})
}

const keySep = "\xff"

// child returns (creating if needed) the family's instrument for the
// given label values.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q: got %d label values, want %d", f.name, len(values), len(f.labels)))
	}
	key := strings.Join(values, keySep)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	var c any
	switch f.kind {
	case KindCounter:
		c = &Counter{}
	case KindGauge:
		c = &Gauge{}
	default:
		h := &Histogram{upper: f.buckets}
		h.buckets = make([]atomic.Uint64, len(f.buckets))
		c = h
	}
	f.children[key] = c
	return c
}

// CounterVec is a counter family; With selects one label combination.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).(*Counter) }

// GaugeVec is a gauge family; With selects one label combination.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).(*Gauge) }

// HistogramVec is a histogram family; With selects one label
// combination.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).(*Histogram) }

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.collect != nil {
			f.writeCollected(&b)
		} else {
			f.writeChildren(&b)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeCollected renders a func family: samples in emission order.
func (f *family) writeCollected(b *strings.Builder) {
	f.collect(func(v float64, labelValues ...string) {
		if len(labelValues) != len(f.labels) {
			panic(fmt.Sprintf("telemetry: metric %q: collector emitted %d label values, want %d", f.name, len(labelValues), len(f.labels)))
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, labelValues, "", ""), formatFloat(v))
	})
}

// writeChildren renders owned instruments, sorted by label values.
func (f *family) writeChildren(b *strings.Builder) {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	children := make(map[string]any, len(f.children))
	for k, c := range f.children {
		children[k] = c
	}
	f.mu.Unlock()
	sort.Strings(keys)
	for _, key := range keys {
		var values []string
		if key != "" || len(f.labels) > 0 {
			values = strings.Split(key, keySep)
		}
		switch c := children[key].(type) {
		case *Counter:
			fmt.Fprintf(b, "%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
		case *Gauge:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
		case *Histogram:
			cum := uint64(0)
			for i, ub := range c.upper {
				cum += c.buckets[i].Load()
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", formatFloat(ub)), cum)
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), c.count.Load())
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(math.Float64frombits(c.sumBits.Load())))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), c.count.Load())
		}
	}
}

// labelString renders {a="x",b="y"} (plus an optional extra pair, used
// for histogram le bounds), or the empty string with no labels at all.
func labelString(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry as a Prometheus scrape target.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// The status line is on the wire first; a mid-scrape write error
		// is a dropped scraper with no remaining recourse.
		_ = r.WritePrometheus(w)
	})
}
