package core

import (
	"math/rand"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
)

// TestExtensionsIndexStillEqualsPairwise: Proposition 3.5's equivalence
// must survive both model extensions, since INDEX and PAIRWISE use the
// same formulas.
func TestExtensionsIndexStillEqualsPairwise(t *testing.T) {
	p := bayes.DefaultParams()
	p.CoverageWeight = 1
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 4+rng.Intn(8), 10+rng.Intn(40))
		st.Pop = dataset.ValuePopularities(ds)
		ires := (&Index{Params: p}).DetectRound(ds, st, 1)
		pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
		iset, pset := ires.CopyingSet(), pres.CopyingSet()
		if len(iset) != len(pset) {
			t.Fatalf("seed %d: copying sets differ in size: %d vs %d", seed, len(iset), len(pset))
		}
		for k := range iset {
			if !pset[k] {
				t.Fatalf("seed %d: INDEX and PAIRWISE disagree under extensions", seed)
			}
		}
	}
}

// TestExtensionsScoresMatch: per-pair scores agree between INDEX and
// PAIRWISE with extensions enabled.
func TestExtensionsScoresMatch(t *testing.T) {
	p := bayes.DefaultParams()
	p.CoverageWeight = 0.5
	p.CoverageCap = 3
	rng := rand.New(rand.NewSource(7))
	ds, st := randomInstance(rng, 8, 40)
	st.Pop = dataset.ValuePopularities(ds)
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)
	pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	pmap := make(map[int64]PairResult)
	for _, pr := range pres.Pairs {
		pmap[int64(pr.S1)<<32|int64(uint32(pr.S2))] = pr
	}
	for _, ip := range ires.Pairs {
		pp, ok := pmap[int64(ip.S1)<<32|int64(uint32(ip.S2))]
		if !ok {
			t.Fatalf("pair (S%d,S%d) missing from PAIRWISE", ip.S1, ip.S2)
		}
		if abs(ip.CTo-pp.CTo) > 1e-9 || abs(ip.CFrom-pp.CFrom) > 1e-9 {
			t.Errorf("scores of (S%d,S%d) differ: %.6f vs %.6f", ip.S1, ip.S2, ip.CTo, pp.CTo)
		}
	}
}

// TestValueDistDampsPopularFalseValue: two mediocre sources agreeing on a
// value everyone else also provides should look much less suspicious
// under the footnote-2 relaxation.
func TestValueDistDampsPopularFalseValue(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	base := (&Pairwise{Params: p}).DetectRound(ds, st, 1)

	st2 := st.Clone()
	st2.Pop = dataset.ValuePopularities(ds)
	damped := (&Pairwise{Params: p}).DetectRound(ds, st2, 1)

	// The copier clique (S2,S3) shares NJ.Atlantic, NY.NewYork, FL.Miami —
	// values provided by 2-3 of 9-10 providers, so their empirical
	// popularity exceeds 1/50 and the evidence weakens, but remains
	// decisive for this blatant clique.
	b := findPair(t, base, 2, 3)
	d := findPair(t, damped, 2, 3)
	if d.CTo >= b.CTo {
		t.Errorf("popularity damping should reduce C→(S2,S3): %.3f -> %.3f", b.CTo, d.CTo)
	}
	if !d.Copying {
		t.Errorf("the S2/S3 clique should still be detected under the relaxation")
	}
}

// TestCoverageWeightSharpensSubsetCopier: with coverage evidence enabled,
// a pair whose overlap hugely exceeds the independence expectation gains
// score, and a pair overlapping at chance level loses score.
func TestCoverageWeightSharpensSubsetCopier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds, st := randomInstance(rng, 6, 50)
	p := bayes.DefaultParams()
	base := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	p.CoverageWeight = 1
	cov := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	if len(base.Pairs) != len(cov.Pairs) {
		t.Fatal("pair counts changed")
	}
	changed := 0
	for i := range base.Pairs {
		if abs(base.Pairs[i].CTo-cov.Pairs[i].CTo) > 1e-9 {
			changed++
		}
	}
	if changed == 0 {
		t.Error("coverage weight had no effect on any pair")
	}
}

// TestIncrementalWithExtensions: the incremental detector must agree with
// HYBRID under both extensions across a multi-round state sequence with
// small drifts (the regime Section V targets).
func TestIncrementalWithExtensions(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	p.CoverageWeight = 0.5
	st.Pop = dataset.ValuePopularities(ds)

	hyb := &Hybrid{Params: p}
	inc := &Incremental{Params: p}
	rng := rand.New(rand.NewSource(9))
	cur := st
	for round := 1; round <= 6; round++ {
		hres := hyb.DetectRound(ds, cur, round)
		ires := inc.DetectRound(ds, cur, round)
		hset, iset := hres.CopyingSet(), ires.CopyingSet()
		for k := range hset {
			if !iset[k] {
				t.Errorf("round %d: incremental missed a copying pair under extensions", round)
			}
		}
		for k := range iset {
			if !hset[k] {
				t.Errorf("round %d: incremental found a spurious pair under extensions", round)
			}
		}
		// Drift the state slightly, as converging truth finding would.
		next := cur.Clone()
		for d := range next.P {
			for v := range next.P[d] {
				next.P[d][v] = clamp01(next.P[d][v] + 0.01*(rng.Float64()-0.5))
			}
		}
		for s := range next.A {
			next.A[s] = clampRange(next.A[s]+0.005*(rng.Float64()-0.5), 0.01, 0.99)
		}
		cur = next
	}
}

func clamp01(x float64) float64 { return clampRange(x, 0.001, 0.999) }

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
