package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"copydetect/internal/dataset"
	"copydetect/internal/gen"
	"copydetect/internal/telemetry"
)

// Injector executes a failure-injection step. The engine schedules the
// steps; the embedder decides what they mean — cmd/copyload signals
// backend processes by PID, the cluster e2e kills its own children.
type Injector interface {
	Inject(ctx context.Context, step InjectStep) error
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(ctx context.Context, step InjectStep) error

// Inject implements Injector.
func (f InjectorFunc) Inject(ctx context.Context, step InjectStep) error { return f(ctx, step) }

// Runner executes scenarios against one target.
type Runner struct {
	// Target is the base URL of a copydetectd daemon or copygate
	// gateway.
	Target string
	// Client is the HTTP client (default: 60s timeout).
	Client *http.Client
	// Injector handles the spec's inject steps. Required when the spec
	// has any; a run without one fails validation up front.
	Injector Injector
	// ScrapeTargets are the /metrics endpoints scraped at phase
	// boundaries (default: just Target). A target that stops answering
	// — a killed backend — is skipped and noted, not fatal.
	ScrapeTargets []string
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)

	prev5xx map[string]float64 // per-target cumulative 5xx at the last boundary
}

const (
	defaultBatch   = 500
	defaultClients = 4
	// maxConsecutiveThrottles bounds 429 retries of one batch; past it
	// the target is wedged, not busy.
	maxConsecutiveThrottles = 120
	// maxStreamRetries bounds 5xx/transport retries of one batch
	// before the stream is abandoned (appending around a hole would
	// corrupt the dataset's sequential order).
	maxStreamRetries = 8
	retryBackoff     = 100 * time.Millisecond
)

// stream is one dataset's pending work.
type stream struct {
	name      string
	planted   *gen.Planted
	byName    map[string]dataset.SourceID
	batches   [][]dataset.Record
	obs       int
	next      int
	stalls    int // consecutive 429s
	retries   int // consecutive 5xx/transport failures
	abandoned bool
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run executes the scenario and returns its verdict. slo overrides the
// spec's embedded SLO block when non-nil. Setup failures (bad spec,
// unreachable target, missing injector) return an error; failures
// during the run are measured into the verdict instead — the report is
// most valuable for exactly the runs that go wrong.
func (r *Runner) Run(ctx context.Context, spec *Spec, slo *SLO) (*Verdict, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if slo == nil {
		slo = spec.SLO
	}
	if r.Injector == nil {
		for _, p := range spec.Phases {
			if len(p.Inject) > 0 {
				return nil, fmt.Errorf("scenario: phase %q has inject steps but no injector is configured", p.Name)
			}
		}
	}
	client := r.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	scrapes := r.ScrapeTargets
	if len(scrapes) == 0 {
		scrapes = []string{r.Target}
	}
	r.prev5xx = map[string]float64{}

	streams, err := r.buildStreams(spec)
	if err != nil {
		return nil, err
	}
	v := &Verdict{
		Scenario: spec.Name,
		Target:   r.Target,
		Datasets: len(streams),
	}
	for _, st := range streams {
		v.Observations += st.obs
	}
	base := r.Target + "/v1/datasets/"
	for _, st := range streams {
		status, _, body, err := doJSON(ctx, client, http.MethodPut, base+st.name, nil)
		if err != nil || status != http.StatusCreated {
			return nil, fmt.Errorf("scenario: create %s: status=%d err=%v body=%s", st.name, status, err, body)
		}
	}

	start := time.Now()
	weights := gen.ZipfWeights(len(streams), spec.Zipf)
	for pi := range spec.Phases {
		p := &spec.Phases[pi]
		r.logf("phase %q: %v at %g batches/s", p.Name, p.Duration.Duration, p.Rate)
		rep := r.runPhase(ctx, client, p, streams, weights, false)
		rep.Scrape = r.scrapeBoundary(client, scrapes)
		v.Phases = append(v.Phases, rep)
	}

	// Drain: stream every remaining batch unpaced. Quality is scored
	// against the planted truth of the *complete* datasets, so all the
	// evidence — including late churn waves — must land before the
	// quiesce; a phase ending on its wall clock is not a reason to score
	// detection on half the data.
	if !allDone(streams) {
		r.logf("drain: streaming remaining batches")
		drain := &Phase{Name: "(drain)", Duration: Duration{time.Hour}, Clients: defaultClients}
		rep := r.runPhase(ctx, client, drain, streams, weights, true)
		rep.Scrape = r.scrapeBoundary(client, scrapes)
		v.Phases = append(v.Phases, rep)
	}

	// Quiesce: drive every dataset to convergence and time it — the
	// operational convergence-lag bound once load stops.
	q0 := time.Now()
	for _, st := range streams {
		status, _, body, err := doJSON(ctx, client, http.MethodPost, base+st.name+"/quiesce", nil)
		if err != nil || status != http.StatusOK {
			r.logf("quiesce %s: status=%d err=%v body=%s", st.name, status, err, body)
			v.QuiesceErrors++
		}
	}
	v.QuiesceSeconds = time.Since(q0).Seconds()

	v.Quality = r.scoreQuality(ctx, client, streams)
	v.WallSeconds = time.Since(start).Seconds()
	v.evaluate(slo)
	return v, nil
}

// buildStreams generates every declared dataset up front so generation
// cost never pollutes the measured phases.
func (r *Runner) buildStreams(spec *Spec) ([]*stream, error) {
	batch := spec.Batch
	if batch == 0 {
		batch = defaultBatch
	}
	var streams []*stream
	idx := 0
	for gi := range spec.Datasets {
		g := &spec.Datasets[gi]
		scale := g.Scale
		if scale == 0 {
			scale = 1
		}
		prefix := g.Prefix
		if prefix == "" {
			prefix = "scn"
		}
		for j := 0; j < g.groupCount(); j++ {
			cfg := gen.Scale(presetConfig(g.Preset, g.Seed+int64(j)), scale)
			ds, pl, err := gen.Generate(cfg)
			if err != nil {
				return nil, fmt.Errorf("scenario: generate dataset %d (%s): %w", idx, g.Preset, err)
			}
			waves := [][]dataset.Record{dataset.Records(ds)}
			if g.Churn != nil {
				waves = gen.ChurnRecords(ds, g.Churn.Waves, g.Churn.LateFraction, g.Seed+int64(j))
			}
			st := &stream{
				name:    fmt.Sprintf("%s-%d", prefix, idx),
				planted: pl,
				byName:  make(map[string]dataset.SourceID, ds.NumSources()),
			}
			for s, name := range ds.SourceNames {
				st.byName[name] = dataset.SourceID(s)
			}
			for _, wave := range waves {
				for s := 0; s < len(wave); s += batch {
					e := min(s+batch, len(wave))
					st.batches = append(st.batches, wave[s:e])
				}
				st.obs += len(wave)
			}
			streams = append(streams, st)
			idx++
		}
	}
	return streams, nil
}

// runPhase drives one phase: a shared pacer (burst-aware), scheduled
// injections, and per-client append loops with zipf-weighted dataset
// selection. A drain phase ends when the streams are exhausted instead
// of occupying its full wall-clock slot, and exhaustion is its purpose,
// not starvation.
func (r *Runner) runPhase(ctx context.Context, client *http.Client, p *Phase, streams []*stream, weights []float64, drain bool) PhaseReport {
	clients := p.Clients
	if clients == 0 {
		clients = defaultClients
	}
	if clients > len(streams) {
		clients = len(streams)
	}
	phaseCtx, cancel := context.WithTimeout(ctx, p.Duration.Duration)
	defer cancel()
	start := time.Now()

	// Pacer: one shared token stream; during a burst window the
	// interval shrinks by the burst factor. The channel banks at most
	// one token per client, so a slow stretch is caught up without
	// letting the run stampede far past the target.
	var tokens chan struct{}
	if p.Rate > 0 {
		tokens = make(chan struct{}, clients)
		go func() {
			for {
				rate := p.Rate
				if b := p.Burst; b != nil {
					if time.Since(start)%b.Every.Duration < b.Length.Duration {
						rate *= b.Factor
					}
				}
				select {
				case <-phaseCtx.Done():
					return
				case <-time.After(time.Duration(float64(time.Second) / rate)):
				}
				select {
				case tokens <- struct{}{}:
				default:
				}
			}
		}()
	}

	// Injections: scheduled at their offsets, recorded with outcomes.
	var injMu sync.Mutex
	var injected []string
	injErrors := 0
	var injWG sync.WaitGroup
	for _, step := range p.Inject {
		step := step
		injWG.Add(1)
		go func() {
			defer injWG.Done()
			select {
			case <-phaseCtx.Done():
				return
			case <-time.After(step.At.Duration):
			}
			desc := fmt.Sprintf("%s %d @%v", step.Action, step.Backend, step.At.Duration)
			if step.Action == "exec" {
				desc = fmt.Sprintf("exec %s @%v", strings.Join(step.Cmd, " "), step.At.Duration)
			}
			r.logf("inject: %s", desc)
			err := r.Injector.Inject(phaseCtx, step)
			injMu.Lock()
			defer injMu.Unlock()
			if err != nil {
				desc += ": " + err.Error()
				injErrors++
			}
			injected = append(injected, desc)
		}()
	}

	// Clients: client c owns streams i with i%clients == c for this
	// phase (phases are sequential, so ownership may move between
	// phases without breaking per-dataset append order).
	results := make([]clientResult, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		var own []*stream
		for i := c; i < len(streams); i += clients {
			own = append(own, streams[i])
		}
		var w []float64
		for i := c; i < len(streams); i += clients {
			w = append(w, weights[i])
		}
		if len(own) == 0 {
			continue
		}
		wg.Add(1)
		go func(c int, own []*stream, w []float64) {
			defer wg.Done()
			res := &results[c]
			rng := rand.New(rand.NewSource(int64(c)*7919 + 1))
			readCarry := 0.0
			for {
				st := pickStream(rng, own, w)
				if st == nil {
					return // every owned stream exhausted or abandoned
				}
				if tokens != nil {
					select {
					case <-phaseCtx.Done():
						return
					case <-tokens:
					}
				} else if phaseCtx.Err() != nil {
					return
				}
				ok := r.appendBatch(phaseCtx, client, st, res)
				if ok && p.Reads > 0 {
					readCarry += p.Reads
					for ; readCarry >= 1; readCarry-- {
						target := pickStream(rng, own, w)
						if target == nil {
							target = st
						}
						status, _, _, err := doJSON(phaseCtx, client, http.MethodGet,
							r.Target+"/v1/datasets/"+target.name+"/copies", nil)
						if phaseCtx.Err() != nil {
							return
						}
						res.reads++
						if err != nil || status != http.StatusOK {
							if status >= 500 {
								res.e5xx++
							} else {
								res.eOther++
							}
						}
					}
				}
			}
		}(c, own, w)
	}
	wg.Wait()
	if !drain {
		<-phaseCtx.Done() // a starved phase still occupies its wall-clock slot
	}
	cancel()
	injWG.Wait()
	wall := time.Since(start)

	// The rate SLO compares against the *effective* target: a burst
	// phase deliberately exceeds its base rate during burst windows, so
	// the time-weighted average is what following the spec means.
	target := p.Rate
	if b := p.Burst; b != nil && p.Rate > 0 {
		frac := b.Length.Seconds() / b.Every.Seconds()
		target = p.Rate * (1 + (b.Factor-1)*frac)
	}
	rep := PhaseReport{
		Name:       p.Name,
		TargetRate: target,
		Seconds:    wall.Seconds(),
		Injected:   injected,
	}
	var latencies []time.Duration
	for _, res := range results {
		rep.Appends += res.appends
		rep.Observations += res.obs
		rep.Reads += res.reads
		rep.Throttled += res.throttled
		rep.Errors5xx += res.e5xx
		rep.OtherErrors += res.eOther
		latencies = append(latencies, res.latencies...)
	}
	rep.OtherErrors += injErrors
	if wall > 0 {
		rep.AchievedRate = float64(rep.Appends) / wall.Seconds()
	}
	rep.Latency = summarizeLatency(latencies)
	rep.Starved = !drain && allDone(streams)
	return rep
}

// clientResult accumulates one client goroutine's tallies for a phase.
type clientResult struct {
	appends, obs, reads     int
	throttled, e5xx, eOther int
	latencies               []time.Duration
}

// appendBatch sends the stream's next batch, honoring 429 backpressure
// (retry in place after Retry-After) and retrying 5xx/transport
// failures a bounded number of times — nothing was applied on those, so
// the stream has no hole. Returns whether a batch landed.
func (r *Runner) appendBatch(ctx context.Context, client *http.Client, st *stream, res *clientResult) bool {
	if st.abandoned || st.next >= len(st.batches) {
		return false
	}
	batch := st.batches[st.next]
	body := map[string][]dataset.Record{"observations": batch}
	t0 := time.Now()
	status, hdr, _, err := doJSON(ctx, client, http.MethodPost,
		r.Target+"/v1/datasets/"+st.name+"/observations", body)
	if ctx.Err() != nil {
		return false // phase deadline mid-request; the batch is re-sent next phase
	}
	switch {
	case err == nil && status == http.StatusAccepted:
		st.next++
		st.stalls, st.retries = 0, 0
		res.appends++
		res.obs += len(batch)
		res.latencies = append(res.latencies, time.Since(t0))
		return true
	case err == nil && status == http.StatusTooManyRequests:
		// Backpressure, not failure: honor the hint, retry the same
		// batch — nothing was applied, so the stream has no hole.
		res.throttled++
		if st.stalls++; st.stalls >= maxConsecutiveThrottles {
			st.abandoned = true
			res.eOther++
			return false
		}
		select {
		case <-ctx.Done():
		case <-time.After(retryAfter(hdr)):
		}
		return false
	case err != nil || status >= 500:
		if status >= 500 {
			res.e5xx++
		} else {
			res.eOther++
		}
		if st.retries++; st.retries >= maxStreamRetries {
			st.abandoned = true
			return false
		}
		select {
		case <-ctx.Done():
		case <-time.After(retryBackoff):
		}
		return false
	default:
		// A 4xx other than 429 is a protocol bug; appending around it
		// would corrupt the stream's order.
		res.eOther++
		st.abandoned = true
		return false
	}
}

// pickStream draws one of the client's streams with batches remaining,
// weighted by zipfian popularity; nil when none remain.
func pickStream(rng *rand.Rand, own []*stream, w []float64) *stream {
	total := 0.0
	for i, st := range own {
		if !st.abandoned && st.next < len(st.batches) {
			total += w[i]
		}
	}
	if total == 0 {
		return nil
	}
	x := rng.Float64() * total
	for i, st := range own {
		if st.abandoned || st.next >= len(st.batches) {
			continue
		}
		if x -= w[i]; x <= 0 {
			return st
		}
	}
	for i := len(own) - 1; i >= 0; i-- {
		if !own[i].abandoned && own[i].next < len(own[i].batches) {
			return own[i]
		}
	}
	return nil
}

func allDone(streams []*stream) bool {
	for _, st := range streams {
		if !st.abandoned && st.next < len(st.batches) {
			return false
		}
	}
	return true
}

// scrapeBoundary scrapes every metrics target at a phase boundary and
// condenses the result: total parsed samples, the cumulative
// server-side 5xx count, its increase since the last boundary, and the
// worst convergence lag any backend reports. A target that no longer
// answers — a killed backend — is noted, not fatal.
func (r *Runner) scrapeBoundary(client *http.Client, targets []string) *ScrapeReport {
	rep := &ScrapeReport{}
	var errs []string
	for _, target := range targets {
		samples, err := telemetry.Scrape(client, target)
		if err != nil {
			errs = append(errs, err.Error())
			continue
		}
		rep.Targets++
		rep.Samples += len(samples)
		cur := 0.0
		for _, s := range samples {
			if strings.HasSuffix(s.Name, "_http_requests_total") && strings.HasPrefix(s.Labels["code"], "5") {
				cur += s.Value
			}
			if s.Name == "copydetectd_dataset_convergence_lag_appends" && s.Value > rep.MaxConvergenceLagAppends {
				rep.MaxConvergenceLagAppends = s.Value
			}
		}
		rep.HTTP5xx += cur
		if d := cur - r.prev5xx[target]; d > 0 {
			rep.HTTP5xxDelta += d
		}
		r.prev5xx[target] = cur
	}
	rep.Error = strings.Join(errs, "; ")
	return rep
}

// doJSON runs one JSON request and returns status, headers and body.
func doJSON(ctx context.Context, client *http.Client, method, url string, body any) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

// retryAfter converts a 429's Retry-After header into a wait, clamped
// so a misconfigured server cannot stall a run arbitrarily long.
func retryAfter(hdr http.Header) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(hdr.Get("Retry-After"))); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	return min(d, 10*time.Second)
}
