// Quickstart: build a small dataset by hand (the paper's motivating
// example, Table I), run the full iterative copy-detection + truth-finding
// process with the HYBRID algorithm, and inspect the results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"copydetect"
)

func main() {
	// Ten sources report the capitals of five US states; sources S2-S4 and
	// S6-S8 copy from each other and spread false values.
	ds, _ := copydetect.MotivatingExample()

	// α: prior probability of copying; s: how often a copier copies;
	// n: how many false values each item's domain has.
	params := copydetect.Params{Alpha: 0.1, S: 0.8, N: 50}

	out := copydetect.Detect(ds, copydetect.AlgorithmHybrid, params)

	fmt.Printf("converged in %d rounds\n\n", out.Rounds)

	fmt.Println("detected copying pairs:")
	pairs := out.Copy.CopyingPairs()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].PrIndep < pairs[j].PrIndep })
	for _, pr := range pairs {
		fmt.Printf("  %s <-> %s   Pr(independent) = %.4f\n",
			ds.SourceNames[pr.S1], ds.SourceNames[pr.S2], pr.PrIndep)
	}

	fmt.Println("\ndecided truths (copier votes discounted):")
	for d, v := range out.Truth {
		fmt.Printf("  %-3s = %s\n", ds.ItemNames[d], ds.ValueNames[d][v])
	}

	fmt.Println("\nconverged source accuracies:")
	for s, a := range out.State.A {
		fmt.Printf("  %-3s %.2f\n", ds.SourceNames[s], a)
	}

	fmt.Printf("\ncopy-detection cost: %d score computations over %d rounds\n",
		out.TotalStats.Computations, out.Rounds)
}
