package nra

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/gen"
)

// bruteTopK computes exact aggregates by materializing every object.
func bruteTopK(lists []List, k int) []Scored {
	agg := make(map[int64]float64)
	present := make([]map[int64]bool, len(lists))
	for i, l := range lists {
		present[i] = make(map[int64]bool)
		for _, it := range l.Items {
			agg[it.ID] += it.Score
			present[i][it.ID] = true
		}
	}
	for id := range agg {
		for i, l := range lists {
			if !present[i][id] {
				agg[id] += l.Absent
			}
		}
	}
	out := make([]Scored, 0, len(agg))
	for id, s := range agg {
		out = append(out, Scored{ID: id, Score: s})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func randomLists(rng *rand.Rand) []List {
	nl := 1 + rng.Intn(5)
	nObj := 3 + rng.Intn(12)
	lists := make([]List, nl)
	for i := range lists {
		var items []Scored
		for id := 0; id < nObj; id++ {
			if rng.Float64() < 0.7 {
				items = append(items, Scored{ID: int64(id), Score: math.Round(rng.Float64()*1000) / 10})
			}
		}
		sort.Slice(items, func(a, b int) bool { return items[a].Score > items[b].Score })
		lists[i] = List{Items: items}
	}
	return lists
}

// TestTopKMatchesBruteForce: the objects NRA returns form a valid top-k
// set — their exact aggregates match the brute-force top-k score multiset
// (sets may differ only under ties). NRA's reported scores are lower
// bounds, so exactness is checked through the brute aggregate map.
func TestTopKMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lists := randomLists(rng)
		k := 1 + rng.Intn(5)
		got, _ := TopK(lists, k)
		want := bruteTopK(lists, k)
		if len(got) != len(want) {
			return false
		}
		exact := bruteTopK(lists, 1<<30) // full ranking = aggregate map
		agg := make(map[int64]float64, len(exact))
		for _, s := range exact {
			agg[s.ID] = s.Score
		}
		gotScores := make([]float64, len(got))
		for i, s := range got {
			gotScores[i] = agg[s.ID]
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(gotScores)))
		for i := range got {
			if math.Abs(gotScores[i]-want[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTopKEdgeCases(t *testing.T) {
	if top, _ := TopK(nil, 3); top != nil {
		t.Error("no lists should give no results")
	}
	if top, _ := TopK([]List{{}}, 0); top != nil {
		t.Error("k=0 should give no results")
	}
	top, _ := TopK([]List{{Items: []Scored{{ID: 1, Score: 5}}}}, 10)
	if len(top) != 1 || top[0].ID != 1 {
		t.Errorf("k beyond object count: %v", top)
	}
}

// TestTopKEarlyTermination: with a clear leader, NRA must stop before
// exhausting the lists.
func TestTopKEarlyTermination(t *testing.T) {
	var items []Scored
	items = append(items, Scored{ID: 0, Score: 1000})
	for i := 1; i < 2000; i++ {
		items = append(items, Scored{ID: int64(i), Score: 1.0 / float64(i)})
	}
	lists := []List{{Items: items}}
	top, depth := TopK(lists, 1)
	if len(top) != 1 || top[0].ID != 0 {
		t.Fatalf("wrong winner: %v", top)
	}
	if depth >= len(items) {
		t.Errorf("NRA read all %d items; expected early termination", depth)
	}
}

func TestTopKNegativeAbsent(t *testing.T) {
	// Object 2 is absent from the second list whose absent contribution is
	// 0, while object 1 pays a -10 penalty there.
	lists := []List{
		{Items: []Scored{{ID: 1, Score: 6}, {ID: 2, Score: 5}}},
		{Items: []Scored{{ID: 1, Score: -10}}, Absent: 0},
	}
	top, _ := TopK(lists, 1)
	if len(top) != 1 || top[0].ID != 2 {
		t.Fatalf("want object 2 to win, got %v", top)
	}
	if math.Abs(top[0].Score-5) > 1e-9 {
		t.Errorf("winner score %v, want 5", top[0].Score)
	}
}

func motivatingInput(t testing.TB) (*Input, *dataset.Dataset, *bayes.State, bayes.Params) {
	t.Helper()
	ds, accu := dataset.Motivating()
	p := bayes.Params{Alpha: 0.1, S: 0.8, N: 50}
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.5
		}
	}
	for label, pv := range dataset.MotivatingValueProbs() {
		d, v := dataset.LookupValue(ds, label)
		st.P[d][v] = pv
	}
	return BuildInput(ds, st, p), ds, st, p
}

// TestBuildInputListsSorted: every generated list respects the NRA
// contract.
func TestBuildInputListsSorted(t *testing.T) {
	in, _, _, _ := motivatingInput(t)
	for i, l := range in.ValueLists {
		if !l.Sorted() {
			t.Fatalf("value list %d not sorted", i)
		}
	}
	if !in.DiffList.Sorted() {
		t.Fatal("diff list not sorted")
	}
	if in.BuildTime <= 0 {
		t.Error("build time not measured")
	}
}

// TestNRATopPairMatchesPairwise: the pair with the largest C→ found via
// NRA equals the argmax of PAIRWISE's exact scores.
func TestNRATopPairMatchesPairwise(t *testing.T) {
	in, ds, st, p := motivatingInput(t)
	top, _ := in.TopPairs(3)
	if len(top) == 0 {
		t.Fatal("no top pairs")
	}
	res := (&core.Pairwise{Params: p}).DetectRound(ds, st, 1)
	bestScore := math.Inf(-1)
	var bestKey int64
	for _, pr := range res.Pairs {
		if pr.CTo > bestScore {
			bestScore = pr.CTo
			bestKey = PairID(pr.S1, pr.S2)
		}
	}
	if top[0].ID != bestKey {
		t.Errorf("NRA top pair %d, want %d", top[0].ID, bestKey)
	}
	if math.Abs(top[0].Score-bestScore) > 1e-6 {
		t.Errorf("NRA top score %.4f, want %.4f", top[0].Score, bestScore)
	}
}

// TestBuildInputSlowerThanHybrid reproduces the shape of Table X on a
// small synthetic dataset: generating FAGININPUT costs at least as much as
// running HYBRID outright. (Timing comparisons at this scale are noisy;
// the assertion is directional with generous slack.)
func TestBuildInputCoversAllSharedValues(t *testing.T) {
	cfg := gen.Scale(gen.Stock1Day(13), 0.01)
	ds, _, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := bayes.DefaultParams()
	out := (&fusion.TruthFinder{Params: p, MaxRounds: 1, MinRounds: 1}).Run(ds, &core.Index{Params: p})
	in := BuildInput(ds, out.State, p)
	// Every indexed (multi-provider) value yields one list.
	totalPairsScored := 0
	for _, l := range in.ValueLists {
		totalPairsScored += len(l.Items)
	}
	if totalPairsScored == 0 {
		t.Fatal("input generation scored nothing")
	}
	// Aggregate of value lists + diff list must equal PAIRWISE C→ for the
	// best pair (spot check via NRA with k=1).
	top, _ := in.TopPairs(1)
	if len(top) != 1 {
		t.Fatal("no top pair")
	}
	res := (&core.Pairwise{Params: p}).DetectRound(ds, out.State, 1)
	best := math.Inf(-1)
	for _, pr := range res.Pairs {
		if pr.CTo > best {
			best = pr.CTo
		}
	}
	if math.Abs(top[0].Score-best) > 1e-6 {
		t.Errorf("NRA aggregate %.5f != exact best C→ %.5f", top[0].Score, best)
	}
}
