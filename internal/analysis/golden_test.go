package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// The fixture universe is loaded once per test binary: one go list walk
// over the module, then each fixture package type-checked on demand
// against the same export data and registered with AddPackage.
var (
	loadOnce   sync.Once
	sharedProg *Program
	loadErr    error

	fixMu    sync.Mutex
	fixtures = map[string]*Package{}
)

func loadShared(t *testing.T) *Program {
	t.Helper()
	loadOnce.Do(func() {
		sharedProg, loadErr = Load(".", "copydetect/...")
	})
	if loadErr != nil {
		t.Fatalf("loading module packages: %v", loadErr)
	}
	return sharedProg
}

// fixturePkg loads testdata/src/<name> (with a relative directory, so
// diagnostic filenames stay repo-relative and golden files are machine
// independent) and registers it with the shared program.
func fixturePkg(t *testing.T, prog *Program, name string) *Package {
	t.Helper()
	fixMu.Lock()
	defer fixMu.Unlock()
	if p := fixtures[name]; p != nil {
		return p
	}
	pkg, err := prog.LoadDir(filepath.Join("testdata", "src", name), fixtureImportPath(name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	prog.AddPackage(pkg)
	fixtures[name] = pkg
	return pkg
}

func fixtureImportPath(name string) string {
	return "copydetect/internal/analysis/testdata/" + name
}

// runGolden runs the given analyzers over the shared program plus the
// named fixture and compares the diagnostics that land inside the
// fixture directory against testdata/<name>.golden.
func runGolden(t *testing.T, name string, analyzers []*Analyzer, tweak func(cfg *Config)) {
	t.Helper()
	prog := loadShared(t)
	fixturePkg(t, prog, name)
	cfg := DefaultConfig()
	if tweak != nil {
		tweak(cfg)
	}
	diags, err := Run(prog, cfg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	prefix := filepath.Join("testdata", "src", name) + string(filepath.Separator)
	var got []string
	for _, d := range diags {
		if strings.HasPrefix(d.Pos.Filename, prefix) {
			got = append(got, d.String())
		}
	}
	goldenPath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(strings.Join(got, "\n")+"\n"), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	want := strings.Split(strings.TrimSpace(string(data)), "\n")
	if diff := diffLines(want, got); diff != "" {
		t.Errorf("diagnostics differ from %s (re-run with -update after auditing):\n%s", goldenPath, diff)
	}
}

func diffLines(want, got []string) string {
	var b strings.Builder
	seen := make(map[string]int)
	for _, w := range want {
		seen[w]++
	}
	for _, g := range got {
		if seen[g] > 0 {
			seen[g]--
		} else {
			fmt.Fprintf(&b, "+ %s\n", g)
		}
	}
	for _, w := range want {
		for ; seen[w] > 0; seen[w]-- {
			fmt.Fprintf(&b, "- %s\n", w)
		}
	}
	return b.String()
}

func TestDetRangeGolden(t *testing.T) {
	runGolden(t, "detrange", []*Analyzer{DetRange}, nil)
}

func TestHotAllocGolden(t *testing.T) {
	runGolden(t, "hotalloc", []*Analyzer{HotAlloc}, nil)
}

func TestTraceHopGolden(t *testing.T) {
	runGolden(t, "tracehop", []*Analyzer{TraceHop}, func(cfg *Config) {
		cfg.TracePkgs = []string{fixtureImportPath("tracehop")}
		cfg.TraceHelpers = []string{fixtureImportPath("tracehop") + ".okHelper"}
	})
}

func TestMetricLabelGolden(t *testing.T) {
	runGolden(t, "metriclabel", []*Analyzer{MetricLabel}, nil)
}

func TestStickyCheckGolden(t *testing.T) {
	runGolden(t, "stickycheck", []*Analyzer{StickyCheck}, nil)
}

// TestOrderInvariantNeedsJustification pins the annotation-grammar rule
// on its own: a bare copydetect:orderinvariant is itself a finding, and
// the loop it failed to annotate stays flagged.
func TestOrderInvariantNeedsJustification(t *testing.T) {
	prog := loadShared(t)
	fixturePkg(t, prog, "detrange")
	diags, err := Run(prog, DefaultConfig(), []*Analyzer{DetRange})
	if err != nil {
		t.Fatalf("running detrange: %v", err)
	}
	var grammar, loop bool
	for _, d := range diags {
		if !strings.Contains(filepath.ToSlash(d.Pos.Filename), "testdata/src/detrange/") {
			continue
		}
		if d.Analyzer == "annotation" && strings.Contains(d.Message, "requires a justification") {
			grammar = true
			// The unjustified exemption does not exempt: the range on the
			// line below the directive must still be reported by detrange.
			for _, d2 := range diags {
				if d2.Analyzer == "detrange" && d2.Pos.Filename == d.Pos.Filename && d2.Pos.Line == d.Pos.Line+1 {
					loop = true
				}
			}
		}
	}
	if !grammar {
		t.Error("no annotation diagnostic for copydetect:orderinvariant without a justification")
	}
	if !loop {
		t.Error("unjustified orderinvariant exempted its loop; the range statement should still be flagged")
	}
}
