package metrics

import (
	"math"
	"testing"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

func TestSetPRF(t *testing.T) {
	test := map[int64]bool{1: true, 2: true, 3: true}
	ref := map[int64]bool{2: true, 3: true, 4: true, 5: true}
	prf := SetPRF(test, ref)
	if prf.TruePos != 2 || prf.TestPos != 3 || prf.RefPos != 4 {
		t.Fatalf("counts wrong: %+v", prf)
	}
	if math.Abs(prf.Precision-2.0/3) > 1e-12 {
		t.Errorf("precision = %v", prf.Precision)
	}
	if math.Abs(prf.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v", prf.Recall)
	}
	wantF := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(prf.F1-wantF) > 1e-12 {
		t.Errorf("F1 = %v, want %v", prf.F1, wantF)
	}
}

func TestSetPRFEmpty(t *testing.T) {
	prf := SetPRF(nil, nil)
	if prf.Precision != 0 || prf.Recall != 0 || prf.F1 != 0 {
		t.Errorf("empty sets should give zeros: %+v", prf)
	}
	prf = SetPRF(map[int64]bool{1: true}, nil)
	if prf.Recall != 0 || prf.Precision != 0 {
		t.Errorf("no reference positives: %+v", prf)
	}
}

func TestCopyPRF(t *testing.T) {
	mk := func(pairs ...[2]int32) *core.Result {
		r := &core.Result{NumSources: 10}
		for _, p := range pairs {
			r.Pairs = append(r.Pairs, core.PairResult{S1: p[0], S2: p[1], Copying: true})
		}
		return r
	}
	prf := CopyPRF(mk([2]int32{1, 2}, [2]int32{3, 4}), mk([2]int32{1, 2}))
	if prf.TruePos != 1 || prf.Precision != 0.5 || prf.Recall != 1 {
		t.Errorf("CopyPRF: %+v", prf)
	}
}

func TestFusionAccuracy(t *testing.T) {
	ds := &dataset.Dataset{
		ItemNames: []string{"a", "b", "c"},
		Truth:     []dataset.ValueID{0, 1, dataset.NoValue},
	}
	decided := []dataset.ValueID{0, 0, 5}
	acc, n := FusionAccuracy(ds, decided)
	if n != 2 {
		t.Fatalf("gold items = %d, want 2", n)
	}
	if math.Abs(acc-0.5) > 1e-12 {
		t.Errorf("accuracy = %v, want 0.5", acc)
	}
	ds.Truth = nil
	if _, n := FusionAccuracy(ds, decided); n != 0 {
		t.Error("no gold standard should give n=0")
	}
}

func TestFusionDifference(t *testing.T) {
	a := []dataset.ValueID{0, 1, 2, dataset.NoValue}
	b := []dataset.ValueID{0, 2, 2, dataset.NoValue}
	if d := FusionDifference(a, b); math.Abs(d-1.0/3) > 1e-12 {
		t.Errorf("difference = %v, want 1/3", d)
	}
	if d := FusionDifference(a, a); d != 0 {
		t.Errorf("self difference = %v", d)
	}
	if d := FusionDifference(nil, nil); d != 0 {
		t.Errorf("empty difference = %v", d)
	}
}

func TestAccuracyVariance(t *testing.T) {
	if v := AccuracyVariance([]float64{0.5, 0.7}, []float64{0.6, 0.5}); math.Abs(v-0.15) > 1e-12 {
		t.Errorf("variance = %v, want 0.15", v)
	}
	if v := AccuracyVariance(nil, nil); v != 0 {
		t.Errorf("empty variance = %v", v)
	}
}
