package gen

import (
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/metrics"
)

func TestGenerateValidates(t *testing.T) {
	for _, cfg := range []Config{
		Scale(BookCS(1), 0.1),
		Scale(Stock1Day(2), 0.05),
	} {
		ds, pl, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if len(pl.Pairs) == 0 {
			t.Errorf("%s: no planted pairs", cfg.Name)
		}
		if len(pl.TrueAccuracy) != ds.NumSources() {
			t.Errorf("%s: accuracy vector size mismatch", cfg.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Scale(BookCS(42), 0.1)
	a, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumObservations() != b.NumObservations() {
		t.Fatal("generation not deterministic")
	}
	for s := range a.BySource {
		if len(a.BySource[s]) != len(b.BySource[s]) {
			t.Fatal("coverage differs between runs")
		}
		for i := range a.BySource[s] {
			if a.BySource[s][i] != b.BySource[s][i] {
				t.Fatal("observations differ between runs")
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, _, err := Generate(Config{NumSources: 1, NumItems: 5, NFalse: 5}); err == nil {
		t.Error("too few sources should fail")
	}
	if _, _, err := Generate(Config{NumSources: 5, NumItems: 5, NFalse: 1}); err == nil {
		t.Error("NFalse < 2 should fail")
	}
	cfg := Config{NumSources: 3, NumItems: 5, NFalse: 5,
		Groups: []CopyGroup{{Copiers: 5, Selectivity: .8, CopierAccuracy: .3, OverlapWithOrigin: .9}}}
	if _, _, err := Generate(cfg); err == nil {
		t.Error("oversized copy group should fail")
	}
}

func TestScaleKeepsShape(t *testing.T) {
	cfg := BookFull(1)
	small := Scale(cfg, 0.01)
	if small.NumSources < 4 || small.NumItems < 16 {
		t.Errorf("scale floor broken: %d sources %d items", small.NumSources, small.NumItems)
	}
	if small.LowCoverageMin*float64(small.NumItems) < 1 {
		t.Errorf("low coverage would round to zero items")
	}
	if len(small.Groups) == 0 {
		t.Error("scaling dropped all copy groups")
	}
	if same := Scale(cfg, 1); same.NumSources != cfg.NumSources {
		t.Error("Scale(1) must be identity")
	}
}

// TestStatisticalShape checks the Table V profile of the presets at small
// scale: Book-like data is dominated by low-coverage sources; Stock-like
// sources mostly cover more than half the items.
func TestStatisticalShape(t *testing.T) {
	book, _, err := Generate(Scale(BookCS(5), 0.2))
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for s := 0; s < book.NumSources(); s++ {
		if float64(book.Coverage(dataset.SourceID(s))) < 0.011*float64(book.NumItems()) {
			low++
		}
	}
	if frac := float64(low) / float64(book.NumSources()); frac < 0.6 {
		t.Errorf("Book-CS-like: only %.0f%% low-coverage sources, want most", frac*100)
	}

	stock, _, err := Generate(Scale(Stock1Day(5), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	high := 0
	for s := 0; s < stock.NumSources(); s++ {
		if float64(stock.Coverage(dataset.SourceID(s))) > 0.5*float64(stock.NumItems()) {
			high++
		}
	}
	if frac := float64(high) / float64(stock.NumSources()); frac < 0.5 {
		t.Errorf("Stock-like: only %.0f%% high-coverage sources, want most", frac*100)
	}
}

// TestPlantedCopyingIsDetectable is the generator's acceptance test: the
// iterative process must recover most planted pairs with good precision,
// otherwise the synthetic workload would not exercise the paper's setting.
func TestPlantedCopyingIsDetectable(t *testing.T) {
	cfg := Scale(Stock1Day(3), 0.03) // 55 sources stay, ~480 items
	cfg.NumSources = 55
	ds, pl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := bayes.DefaultParams()
	out := (&fusion.TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	prf := metrics.SetPRF(out.Copy.CopyingSet(), pl.Pairs)
	if prf.Recall < 0.7 {
		t.Errorf("planted-pair recall = %.2f, want >= 0.7 (found %d/%d)", prf.Recall, prf.TruePos, prf.RefPos)
	}
	// Detected-but-unplanted pairs can legitimately include transitive
	// copier-copier pairs inside a clique; precision against the planted
	// closure is checked loosely.
	if prf.Precision < 0.3 {
		t.Errorf("planted-pair precision = %.2f suspiciously low", prf.Precision)
	}
	// Fusion should get most gold items right.
	acc, n := metrics.FusionAccuracy(ds, out.Truth)
	if n == 0 {
		t.Fatal("no gold items")
	}
	if acc < 0.8 {
		t.Errorf("fusion accuracy = %.2f, want >= 0.8", acc)
	}
}

func TestPairPlanted(t *testing.T) {
	_, pl, err := Generate(Scale(Stock1Day(3), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for k := range pl.Pairs {
		a, b := dataset.SourceID(k>>32), dataset.SourceID(uint32(k))
		if !pl.PairPlanted(a, b) || !pl.PairPlanted(b, a) {
			t.Fatal("PairPlanted must be order-invariant")
		}
		found = true
	}
	if !found {
		t.Fatal("no planted pairs to test")
	}
	if pl.PairPlanted(1000, 1001) {
		t.Error("unplanted pair reported planted")
	}
}

// TestTruthValueRegistered: value 0 of every item is the true value.
func TestTruthValueRegistered(t *testing.T) {
	ds, _, err := Generate(Scale(BookCS(9), 0.05))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Scale(BookCS(9), 0.05)
	_ = cfg
	for d := 0; d < ds.NumItems(); d++ {
		if ds.ValueNames[d][0] != "t" {
			t.Fatalf("item %d: value 0 is %q, want \"t\"", d, ds.ValueNames[d][0])
		}
	}
}
