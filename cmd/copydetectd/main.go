// Command copydetectd is a streaming copy-detection service: an
// HTTP/JSON daemon holding a registry of named datasets. Clients append
// observation batches as they arrive; a dirty-dataset scheduler runs
// detection rounds asynchronously — full HYBRID on a dataset's first
// build, INCREMENTAL refinement afterwards — and reads serve the last
// published round without ever blocking on detection.
//
// Usage:
//
//	copydetectd [-addr :8377] [-alpha 0.1] [-s 0.8] [-n 100]
//	            [-workers 0] [-concurrency 1]
//
// -workers 0 (the default) shards each detection round over one
// goroutine per CPU; -concurrency caps how many datasets detect at the
// same time. See the package comment of internal/server for the wire
// protocol and the batch-equivalence guarantee.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/pool"
	"copydetect/internal/server"
)

// options carries the parsed command line; split out for testability.
type options struct {
	addr string
	cfg  server.Config
}

// parseFlags parses args (without the program name) into options,
// applying the per-CPU worker default and validating the priors.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("copydetectd", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	alpha := fs.Float64("alpha", 0.1, "a-priori copying probability α")
	s := fs.Float64("s", 0.8, "copy selectivity s")
	n := fs.Float64("n", 100, "number of false values per item n")
	workers := fs.Int("workers", 0, "detection worker goroutines per round (0 = one per CPU, 1 = sequential)")
	concurrency := fs.Int("concurrency", 1, "max datasets detecting concurrently")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	p := bayes.Params{Alpha: *alpha, S: *s, N: *n}
	if err := p.Validate(); err != nil {
		return options{}, err
	}
	if *concurrency < 1 {
		return options{}, fmt.Errorf("copydetectd: -concurrency %d must be at least 1", *concurrency)
	}
	w := *workers
	if w <= 0 {
		w = pool.Auto()
	}
	opt := options{addr: *addr}
	opt.cfg.Params = p
	opt.cfg.Options.Workers = w
	opt.cfg.Concurrency = *concurrency
	return opt, nil
}

func main() {
	opt, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetectd: %v\n", err)
		os.Exit(2)
	}

	reg := server.NewRegistry(opt.cfg)
	srv := &http.Server{Addr: opt.addr, Handler: logRequests(server.NewHandler(reg))}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("copydetectd: listening on %s (workers=%d, concurrency=%d)",
		opt.addr, opt.cfg.Options.Workers, opt.cfg.Concurrency)

	select {
	case err := <-errc:
		log.Fatalf("copydetectd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("copydetectd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("copydetectd: shutdown: %v", err)
	}
	reg.Close()
}

// logRequests is a one-line access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, req)
		log.Printf("%s %s %v", req.Method, req.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
