// Stockfusion: the paper's headline scenario — dozens of Deep-Web
// financial sources report thousands of stock attributes daily; some
// sources copy others, so a false closing price can become the most
// popular value. This example generates a Stock-1day-like workload with
// planted copier cliques, compares naive voting against copy-aware fusion,
// and shows the efficiency gap between PAIRWISE and the scalable
// algorithms.
//
// Run with:
//
//	go run ./examples/stockfusion
package main

import (
	"fmt"
	"time"

	"copydetect"
)

func main() {
	// A scaled-down Stock-1day: 55 sources, ~1,600 items, most sources
	// covering over half the items, six planted copier cliques.
	cfg := copydetect.ScaleConfig(copydetect.Stock1DayConfig(7), 0.1)
	ds, planted, err := copydetect.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s\n", copydetect.Summarize(ds))
	fmt.Printf("planted copying pairs: %d\n\n", len(planted.Pairs))

	params := copydetect.DefaultParams()

	// Copy-aware fusion with the scalable HYBRID detector.
	start := time.Now()
	hybrid := copydetect.Detect(ds, copydetect.AlgorithmHybrid, params)
	hybridTime := time.Since(start)

	// The exhaustive baseline, for reference.
	start = time.Now()
	pairwise := copydetect.Detect(ds, copydetect.AlgorithmPairwise, params)
	pairwiseTime := time.Since(start)

	// Quality against the planted ground truth.
	prf := copydetect.ComparePairs(hybrid.Copy, pairwise.Copy)
	fmt.Printf("HYBRID vs PAIRWISE copying pairs: P=%.3f R=%.3f F=%.3f\n",
		prf.Precision, prf.Recall, prf.F1)

	accH, gold := copydetect.FusionAccuracy(ds, hybrid.Truth)
	fmt.Printf("fusion accuracy on %d gold items: %.3f\n", gold, accH)

	fmt.Printf("\ncopy-detection time: PAIRWISE %v, HYBRID %v (%.1fx)\n",
		pairwise.TotalStats.Total().Round(time.Millisecond),
		hybrid.TotalStats.Total().Round(time.Millisecond),
		float64(pairwise.TotalStats.Total())/float64(hybrid.TotalStats.Total()))
	fmt.Printf("(end-to-end including fusion: PAIRWISE %v, HYBRID %v)\n",
		pairwiseTime.Round(time.Millisecond), hybridTime.Round(time.Millisecond))

	// How much does considering copying matter? Count how many of the
	// detected copiers' false values would win a naive vote.
	flips := 0
	for d := range hybrid.Truth {
		best, bestCnt := copydetect.ValueID(-1), 0
		counts := map[copydetect.ValueID]int{}
		for _, sv := range ds.ByItem[d] {
			counts[sv.Value]++
			if counts[sv.Value] > bestCnt {
				best, bestCnt = sv.Value, counts[sv.Value]
			}
		}
		if best != copydetect.NoValue && best != hybrid.Truth[d] {
			flips++
		}
	}
	fmt.Printf("\nitems where copy-aware fusion overrides the naive majority: %d\n", flips)
}
