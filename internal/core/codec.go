package core

import (
	"fmt"
	"time"

	"copydetect/internal/binio"
	"copydetect/internal/dataset"
)

// Result and Stats binary encode/decode: the detection half of the
// serving layer's snapshot format. Floats are stored as IEEE-754 bits,
// so a decoded Result is byte-identical to the encoded one — the
// property the durable server's crash-recovery guarantee is built on.

const maxPairs = 1 << 28

// EncodeStats writes s in the binary snapshot format.
func EncodeStats(w *binio.Writer, s Stats) {
	w.Uvarint(uint64(s.Computations))
	w.Uvarint(uint64(s.PairsConsidered))
	w.Uvarint(uint64(s.ValuesExamined))
	w.Uvarint(uint64(s.EntriesScanned))
	w.Int(s.Rounds)
	w.Uvarint(uint64(s.IndexBuild))
	w.Uvarint(uint64(s.Detect))
}

// DecodeStats reads stats written by EncodeStats.
func DecodeStats(r *binio.Reader) Stats {
	return Stats{
		Computations:    int64(r.Uvarint()),
		PairsConsidered: int64(r.Uvarint()),
		ValuesExamined:  int64(r.Uvarint()),
		EntriesScanned:  int64(r.Uvarint()),
		Rounds:          r.Int(1 << 30),
		IndexBuild:      time.Duration(r.Uvarint()),
		Detect:          time.Duration(r.Uvarint()),
	}
}

// EncodeResult writes res in the binary snapshot format. A nil result
// is encoded as absent and decodes back to nil.
func EncodeResult(w *binio.Writer, res *Result) {
	w.Bool(res != nil)
	if res == nil {
		return
	}
	w.Int(res.NumSources)
	w.Int(len(res.Pairs))
	for _, pr := range res.Pairs {
		w.Uvarint(uint64(pr.S1))
		w.Uvarint(uint64(pr.S2))
		w.Float64(pr.CTo)
		w.Float64(pr.CFrom)
		w.Float64(pr.PrIndep)
		w.Float64(pr.PrTo)
		w.Float64(pr.PrFrom)
		w.Bool(pr.Copying)
	}
	EncodeStats(w, res.Stats)
}

// DecodeResult reads a result written by EncodeResult.
func DecodeResult(r *binio.Reader) (*Result, error) {
	if !r.Bool() {
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("core: decode result: %w", err)
		}
		return nil, nil
	}
	res := &Result{NumSources: r.Int(maxPairs)}
	n := r.Int(maxPairs)
	if n > 0 {
		res.Pairs = make([]PairResult, n)
	}
	for i := range res.Pairs {
		res.Pairs[i] = PairResult{
			S1:      dataset.SourceID(r.Uvarint()),
			S2:      dataset.SourceID(r.Uvarint()),
			CTo:     r.Float64(),
			CFrom:   r.Float64(),
			PrIndep: r.Float64(),
			PrTo:    r.Float64(),
			PrFrom:  r.Float64(),
			Copying: r.Bool(),
		}
	}
	res.Stats = DecodeStats(r)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: decode result: %w", err)
	}
	for i, pr := range res.Pairs {
		if pr.S1 < 0 || pr.S2 < 0 || int(pr.S1) >= res.NumSources || int(pr.S2) >= res.NumSources {
			return nil, fmt.Errorf("core: decode result: pair %d references source out of range", i)
		}
	}
	return res, nil
}
