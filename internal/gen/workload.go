package gen

import (
	"math"
	"math/rand"

	"copydetect/internal/dataset"
)

// This file holds the workload-shaping hooks of the scenario layer
// (internal/scenario): zipfian dataset popularity and source churn.
// Both are pure functions of their seeds, so a scenario run is as
// reproducible as the datasets it streams.

// ZipfWeights returns n popularity weights following a zipfian rank
// distribution with exponent s: weight[i] ∝ 1/(i+1)^s, normalized to
// sum to 1. Rank 0 is the most popular. s = 0 degenerates to uniform;
// n <= 0 returns nil.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// ChurnRecords partitions the records of ds into waves of joining
// sources: wave 0 holds the founding cohort, and lateFraction of the
// sources are held back and split evenly over waves 1..waves-1. A
// scenario executor streams the waves in order, so late-wave sources
// first appear mid-run — the new feeds of a churning fleet — while
// early sources whose records are exhausted go quiet, which is the
// other half of churn. Within a wave, records keep the source-major
// order of dataset.Records; which sources are late is drawn from seed.
//
// waves <= 1 or lateFraction <= 0 yields a single wave containing
// every record. At least one source always remains in wave 0.
func ChurnRecords(ds *dataset.Dataset, waves int, lateFraction float64, seed int64) [][]dataset.Record {
	ns := ds.NumSources()
	if waves <= 1 || lateFraction <= 0 || ns < 2 {
		return [][]dataset.Record{dataset.Records(ds)}
	}
	if lateFraction > 1 {
		lateFraction = 1
	}
	late := int(math.Round(lateFraction * float64(ns)))
	if late > ns-1 {
		late = ns - 1 // wave 0 must keep at least one source
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ns)

	// perm[:ns-late] founds wave 0; the rest join one wave at a time.
	waveOf := make([]int, ns)
	for i, s := range perm {
		if i < ns-late {
			waveOf[s] = 0
			continue
		}
		// Spread the late cohort evenly over waves 1..waves-1.
		k := i - (ns - late)
		waveOf[s] = 1 + k*(waves-1)/late
	}
	out := make([][]dataset.Record, waves)
	for w := range out {
		out[w] = []dataset.Record{}
	}
	for s, obs := range ds.BySource {
		w := waveOf[s]
		for _, o := range obs {
			out[w] = append(out[w], dataset.Record{
				Source: ds.SourceNames[s],
				Item:   ds.ItemNames[o.Item],
				Value:  ds.ValueNames[o.Item][o.Value],
			})
		}
	}
	return out
}
