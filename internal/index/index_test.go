package index

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
)

func exampleParams() bayes.Params { return bayes.Params{Alpha: 0.1, S: 0.8, N: 50} }

// motivatingState builds the statistical state of the paper's Table III:
// source accuracies from Table I and the converged value probabilities.
func motivatingState(t testing.TB) (*dataset.Dataset, *bayes.State) {
	t.Helper()
	ds, accu := dataset.Motivating()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	// Unindexed (single-provider) values keep a neutral probability; they
	// never appear in shared-value contributions.
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.5
		}
	}
	for label, pv := range dataset.MotivatingValueProbs() {
		d, v := dataset.LookupValue(ds, label)
		if d < 0 {
			t.Fatalf("label %q not in fixture", label)
		}
		st.P[d][v] = pv
	}
	return ds, st
}

// TestBuildTableIII reproduces the inverted index of Table III: 13
// entries, their probabilities, scores, provider sets and the score order.
func TestBuildTableIII(t *testing.T) {
	ds, st := motivatingState(t)
	idx := Build(ds, st, exampleParams(), ByContribution, nil)
	if idx.NumEntries() != 13 {
		t.Fatalf("index has %d entries, want 13", idx.NumEntries())
	}

	want := []struct {
		label     string
		score     float64
		tol       float64
		providers []string
	}{
		{"AZ.Tempe", 4.59, 0.02, []string{"S5", "S6"}},
		{"NJ.Atlantic", 4.12, 0.02, []string{"S2", "S3", "S4"}},
		{"TX.Houston", 4.05, 0.02, []string{"S2", "S4"}},
		{"NY.NewYork", 4.05, 0.02, []string{"S2", "S3", "S4"}},
		{"TX.Dallas", 3.98, 0.02, []string{"S6", "S7", "S8"}},
		{"NY.Buffalo", 3.97, 0.02, []string{"S6", "S7", "S8"}},
		{"FL.PalmBay", 3.97, 0.02, []string{"S6", "S7", "S8"}},
		{"FL.Miami", 3.83, 0.02, []string{"S2", "S3"}},
		{"AZ.Phoenix", 1.62, 0.05, []string{"S0", "S1", "S2", "S3", "S4"}},
		{"NJ.Trenton", 1.51, 0.02, []string{"S0", "S1", "S7", "S8", "S9"}},
		{"FL.Orlando", 0.84, 0.02, []string{"S1", "S4", "S5", "S9"}},
		{"NY.Albany", 0.43, 0.02, []string{"S0", "S1", "S5"}},
		{"TX.Austin", 0.43, 0.02, []string{"S0", "S1", "S5", "S9"}},
	}
	byLabel := make(map[string]*Entry)
	for i := range idx.Entries {
		e := &idx.Entries[i]
		byLabel[ds.ItemNames[e.Item]+"."+ds.ValueNames[e.Item][e.Value]] = e
	}
	for _, w := range want {
		e := byLabel[w.label]
		if e == nil {
			t.Errorf("entry %s missing", w.label)
			continue
		}
		if math.Abs(e.Score-w.score) > w.tol {
			t.Errorf("%s score = %.3f, want %.2f", w.label, e.Score, w.score)
		}
		var provs []string
		for _, s := range e.Providers {
			provs = append(provs, ds.SourceNames[s])
		}
		sort.Strings(provs)
		sort.Strings(w.providers)
		if len(provs) != len(w.providers) {
			t.Errorf("%s providers = %v, want %v", w.label, provs, w.providers)
			continue
		}
		for i := range provs {
			if provs[i] != w.providers[i] {
				t.Errorf("%s providers = %v, want %v", w.label, provs, w.providers)
				break
			}
		}
	}
	// Scores must be non-increasing under ByContribution.
	for i := 1; i < len(idx.Entries); i++ {
		if idx.Entries[i].Score > idx.Entries[i-1].Score+1e-12 {
			t.Fatalf("entries not sorted by score at %d", i)
		}
	}
	// No entry for single-provider values.
	for _, label := range []string{"NJ.Union", "AZ.Tucson", "TX.Arlington"} {
		if byLabel[label] != nil {
			t.Errorf("single-provider value %s must not be indexed", label)
		}
	}
}

// TestTailSet reproduces Example 3.6: the last two entries (NY.Albany and
// TX.Austin, 0.43 each) form E̅ since 0.86 < ln(β/2α) = 1.39.
func TestTailSet(t *testing.T) {
	ds, st := motivatingState(t)
	idx := Build(ds, st, exampleParams(), ByContribution, nil)
	if n := idx.NumTail(); n != 2 {
		t.Fatalf("tail set has %d entries, want 2", n)
	}
	// They must be the two lowest-score entries.
	if !idx.InTail[len(idx.Entries)-1] || !idx.InTail[len(idx.Entries)-2] {
		t.Error("tail entries are not the two lowest-score ones")
	}
	if idx.TailScoreSum >= exampleParams().ThetaInd() {
		t.Errorf("tail score sum %.3f must stay below θind", idx.TailScoreSum)
	}
}

// TestCandidatePairs reproduces Example 3.6's count: 26 source pairs occur
// together in entries outside E̅ (e.g. S0,S5 share only tail values and
// are skipped).
func TestCandidatePairs(t *testing.T) {
	ds, st := motivatingState(t)
	idx := Build(ds, st, exampleParams(), ByContribution, nil)
	pm := CandidatePairs(idx, ds.NumSources())
	if pm.Len() != 26 {
		t.Fatalf("candidate pairs = %d, want 26 (Example 3.6)", pm.Len())
	}
	if slot := pm.Get(0, 5); slot != -1 {
		t.Error("pair (S0,S5) shares only tail values and must be pruned")
	}
	if slot := pm.Get(2, 3); slot < 0 {
		t.Error("pair (S2,S3) must be a candidate")
	}
}

// TestSharedItemCounts cross-checks the set-similarity-join counting
// against the merge-based dataset method.
func TestSharedItemCounts(t *testing.T) {
	ds, st := motivatingState(t)
	idx := Build(ds, st, exampleParams(), ByContribution, nil)
	pm := CandidatePairs(idx, ds.NumSources())
	counts := SharedItemCounts(ds, pm)
	for slot, key := range pm.Keys() {
		s1, s2 := key.Sources()
		if want := ds.SharedItems(s1, s2); int(counts[slot]) != want {
			t.Errorf("l(S%d,S%d) = %d, want %d", s1, s2, counts[slot], want)
		}
	}
}

func TestMaxRemainingSound(t *testing.T) {
	ds, st := motivatingState(t)
	for _, ord := range []Order{ByContribution, ByProvider, Random} {
		idx := Build(ds, st, exampleParams(), ord, rand.New(rand.NewSource(7)))
		for i := range idx.Entries {
			maxAfter := 0.0
			for j := i; j < len(idx.Entries); j++ {
				if idx.Entries[j].Score > maxAfter {
					maxAfter = idx.Entries[j].Score
				}
			}
			if math.Abs(idx.MaxRemaining[i]-maxAfter) > 1e-12 {
				t.Fatalf("order %v: MaxRemaining[%d] = %v, want %v", ord, i, idx.MaxRemaining[i], maxAfter)
			}
		}
		if idx.MaxRemaining[len(idx.Entries)] != 0 {
			t.Fatalf("MaxRemaining sentinel must be 0")
		}
	}
}

func TestOrderings(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	byProv := Build(ds, st, p, ByProvider, nil)
	for i := 1; i < len(byProv.Entries); i++ {
		if len(byProv.Entries[i].Providers) < len(byProv.Entries[i-1].Providers) {
			t.Fatalf("ByProvider not sorted at %d", i)
		}
	}
	r1 := Build(ds, st, p, Random, rand.New(rand.NewSource(1)))
	r2 := Build(ds, st, p, Random, rand.New(rand.NewSource(1)))
	for i := range r1.Entries {
		if r1.Entries[i].Item != r2.Entries[i].Item || r1.Entries[i].Value != r2.Entries[i].Value {
			t.Fatal("Random order must be deterministic under the same seed")
		}
	}
	// The tail set is score-defined, identical across orders.
	byContrib := Build(ds, st, p, ByContribution, nil)
	if byProv.NumTail() != byContrib.NumTail() || r1.NumTail() != byContrib.NumTail() {
		t.Errorf("tail size differs across orders: %d %d %d", byContrib.NumTail(), byProv.NumTail(), r1.NumTail())
	}
	if ByContribution.String() != "ByContribution" || ByProvider.String() != "ByProvider" || Random.String() != "Random" {
		t.Error("Order.String broken")
	}
}

func TestRescoreInPlace(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	idx := Build(ds, st, p, ByContribution, nil)
	orderBefore := make([]Entry, len(idx.Entries))
	copy(orderBefore, idx.Entries)

	st2 := st.Clone()
	for d := range st2.P {
		for v := range st2.P[d] {
			st2.P[d][v] = 0.5
		}
	}
	idx.RescoreInPlace(st2, p)
	for i := range idx.Entries {
		if idx.Entries[i].Item != orderBefore[i].Item || idx.Entries[i].Value != orderBefore[i].Value {
			t.Fatal("RescoreInPlace must not reorder entries")
		}
		if idx.Entries[i].P != 0.5 {
			t.Fatal("RescoreInPlace must refresh P")
		}
	}
	// MaxRemaining must be refreshed consistently.
	for i := range idx.Entries {
		maxAfter := 0.0
		for j := i; j < len(idx.Entries); j++ {
			if idx.Entries[j].Score > maxAfter {
				maxAfter = idx.Entries[j].Score
			}
		}
		if math.Abs(idx.MaxRemaining[i]-maxAfter) > 1e-12 {
			t.Fatalf("MaxRemaining stale at %d", i)
		}
	}
}

func TestPairMapDenseAndSparse(t *testing.T) {
	for _, n := range []int{10, denseLimit + 1} {
		pm := NewPairMap(n)
		slot, added := pm.GetOrAdd(3, 1)
		if !added || slot != 0 {
			t.Fatalf("n=%d: first add gave slot %d added %v", n, slot, added)
		}
		if s, added := pm.GetOrAdd(1, 3); added || s != 0 {
			t.Fatalf("n=%d: unordered lookup broken", n)
		}
		if pm.Get(1, 3) != 0 || pm.Get(3, 1) != 0 {
			t.Fatalf("n=%d: Get broken", n)
		}
		if pm.Get(0, 2) != -1 {
			t.Fatalf("n=%d: absent pair should be -1", n)
		}
		a, b := pm.Key(0).Sources()
		if a != 1 || b != 3 {
			t.Fatalf("n=%d: Key unpack gave (%d,%d)", n, a, b)
		}
		if pm.Len() != 1 {
			t.Fatalf("n=%d: Len = %d", n, pm.Len())
		}
	}
}

func TestMakePairKeyOrderInvariant(t *testing.T) {
	if MakePairKey(7, 2) != MakePairKey(2, 7) {
		t.Error("MakePairKey must be order-invariant")
	}
	a, b := MakePairKey(7, 2).Sources()
	if a != 2 || b != 7 {
		t.Errorf("Sources gave (%d,%d), want (2,7)", a, b)
	}
}
