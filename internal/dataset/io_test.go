package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// ioFixture builds a small dataset with conflicts, missing cells and a
// partial gold standard — enough to exercise every serialization path.
func ioFixture() *Dataset {
	b := NewBuilder()
	b.Add("alpha", "NJ", "Trenton")
	b.Add("alpha", "AZ", "Phoenix")
	b.Add("beta", "NJ", "Atlantic")
	b.Add("beta", "NY", "Albany")
	b.Add("gamma", "NJ", "Trenton")
	b.Add("gamma", "AZ", "Tempe")
	b.Add("gamma", "NY", "Albany")
	b.SetTruth("NJ", "Trenton")
	b.SetTruth("AZ", "Phoenix")
	return b.Build()
}

func findSource(ds *Dataset, name string) SourceID {
	for s, n := range ds.SourceNames {
		if n == name {
			return SourceID(s)
		}
	}
	return -1
}

func findItem(ds *Dataset, name string) ItemID {
	for d, n := range ds.ItemNames {
		if n == name {
			return ItemID(d)
		}
	}
	return -1
}

// TestJSONRoundTripPartialTruth: a partial gold standard survives the
// JSON round trip item by item, and a truthless dataset stays truthless.
func TestJSONRoundTripPartialTruth(t *testing.T) {
	want := ioFixture()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped dataset invalid: %v", err)
	}
	assertSameData(t, want, got)
	if got.Truth == nil {
		t.Fatal("truth lost in round trip")
	}
	nj, az, ny := findItem(got, "NJ"), findItem(got, "AZ"), findItem(got, "NY")
	if got.ValueNames[nj][got.Truth[nj]] != "Trenton" || got.ValueNames[az][got.Truth[az]] != "Phoenix" {
		t.Fatal("truth values corrupted in round trip")
	}
	if got.Truth[ny] != NoValue {
		t.Fatal("round trip invented a truth for an item without one")
	}

	buf.Reset()
	b := NewBuilder()
	b.Add("a", "x", "1")
	b.Add("b", "x", "2")
	if err := WriteJSON(&buf, b.Build()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if got, err := ReadJSON(&buf); err != nil {
		t.Fatalf("ReadJSON: %v", err)
	} else if got.Truth != nil {
		t.Fatal("truth materialized from a truthless file")
	}
}

// TestCSVRoundTripPartial: the CSV round trip preserves missing cells
// and the partial TRUTH row.
func TestCSVRoundTripPartial(t *testing.T) {
	want := ioFixture()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	assertSameData(t, want, got)
	if got.ValueOf(findSource(got, "beta"), findItem(got, "AZ")) != NoValue {
		t.Fatal("round trip materialized a missing cell")
	}
	if ny := findItem(got, "NY"); got.Truth[ny] != NoValue {
		t.Fatal("round trip invented a truth for an item without one")
	}
}

// TestReadCSVTableLayout pins the Table I conventions: whitespace
// trimming, case-insensitive TRUTH rows, and short rows as missing
// cells.
func TestReadCSVTableLayout(t *testing.T) {
	in := strings.Join([]string{
		"source,NJ,AZ",
		"alpha, Trenton ,Phoenix",
		"beta,Atlantic",
		"truth,Trenton,Phoenix",
	}, "\n")
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if ds.NumSources() != 2 || ds.NumItems() != 2 || ds.NumObservations() != 3 {
		t.Fatalf("parsed shape: %s", Summarize(ds))
	}
	s, d := findSource(ds, "alpha"), findItem(ds, "NJ")
	if v := ds.ValueOf(s, d); v == NoValue || ds.ValueNames[d][v] != "Trenton" {
		t.Fatal("whitespace not trimmed from CSV cell")
	}
	if ds.Truth == nil || ds.Truth[d] == NoValue || ds.ValueNames[d][ds.Truth[d]] != "Trenton" {
		t.Fatal("case-insensitive TRUTH row not parsed")
	}
	if az := findItem(ds, "AZ"); ds.ValueOf(findSource(ds, "beta"), az) != NoValue {
		t.Fatal("short row materialized a value for a missing cell")
	}
}

func TestReadJSONMalformed(t *testing.T) {
	for name, in := range map[string]string{
		"truncated":  `{"sources":["a"],`,
		"not-json":   `this is not json`,
		"wrong-type": `{"sources":"a"}`,
	} {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("ReadJSON(%s) accepted malformed input", name)
		}
	}
}

// TestReadCSVMalformedQuoting covers the csv-reader error path, which
// TestReadCSVErrors (structural errors) does not reach.
func TestReadCSVMalformedQuoting(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("source,NJ\n\"alpha,Trenton")); err == nil {
		t.Error("ReadCSV accepted an unterminated quote")
	}
	if _, err := ReadCSV(strings.NewReader("source,NJ\nal\"pha\",Trenton")); err == nil {
		t.Error("ReadCSV accepted a bare quote inside a field")
	}
}

// TestRecordsRoundTrip: Records/TruthRecords flatten a dataset into the
// streaming-append format, and replaying them through a Builder
// reproduces the dataset.
func TestRecordsRoundTrip(t *testing.T) {
	want := ioFixture()
	recs := Records(want)
	if len(recs) != want.NumObservations() {
		t.Fatalf("Records returned %d records, want %d", len(recs), want.NumObservations())
	}
	truth := TruthRecords(want)
	if len(truth) != 2 {
		t.Fatalf("TruthRecords returned %d records, want 2", len(truth))
	}
	b := NewBuilder()
	b.AddRecords(recs)
	for _, tr := range truth {
		b.SetTruth(tr.Item, tr.Value)
	}
	got := b.Build()
	if err := got.Validate(); err != nil {
		t.Fatalf("replayed dataset invalid: %v", err)
	}
	assertSameData(t, want, got)
	if TruthRecords(got) == nil {
		t.Fatal("replayed dataset lost its truth")
	}

	b2 := NewBuilder()
	b2.Add("a", "x", "1")
	if TruthRecords(b2.Build()) != nil {
		t.Fatal("TruthRecords invented truth for a truthless dataset")
	}
}
