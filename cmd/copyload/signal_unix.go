//go:build unix

package main

import (
	"fmt"
	"syscall"
)

// signalPID delivers the signal an inject action means on unix:
// kill-backend → SIGKILL (crash, no cleanup), pause-backend → SIGSTOP
// (a stalled-but-alive replica), resume-backend → SIGCONT.
func signalPID(pid int, action string) error {
	var sig syscall.Signal
	switch action {
	case "kill-backend":
		sig = syscall.SIGKILL
	case "pause-backend":
		sig = syscall.SIGSTOP
	case "resume-backend":
		sig = syscall.SIGCONT
	default:
		return fmt.Errorf("unknown inject action %q", action)
	}
	return syscall.Kill(pid, sig)
}
