package fusion

import (
	"math"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

func exampleParams() bayes.Params { return bayes.Params{Alpha: 0.1, S: 0.8, N: 50} }

// TestIterativeMotivating runs the full loop of Section II on the
// motivating example with PAIRWISE and checks the qualitative outcome the
// paper reports (Tables I and II): the copier cliques S2–S4 and S6–S8 are
// detected, the honest high-accuracy sources are not, every true capital
// wins, and the converged accuracies separate good from bad sources.
func TestIterativeMotivating(t *testing.T) {
	ds, _ := dataset.Motivating()
	tf := &TruthFinder{Params: exampleParams()}
	out := tf.Run(ds, &core.Pairwise{Params: exampleParams()})

	if out.Rounds < 3 {
		t.Errorf("converged suspiciously fast: %d rounds", out.Rounds)
	}

	// All five true capitals must win.
	for d, want := range ds.Truth {
		if out.Truth[d] != want {
			t.Errorf("item %s decided %q, want %q", ds.ItemNames[d],
				ds.ValueNames[d][out.Truth[d]], ds.ValueNames[d][want])
		}
	}

	// Copying within {S2,S3,S4} and within {S6,S7,S8}.
	set := out.Copy.CopyingSet()
	wantPairs := [][2]dataset.SourceID{{2, 3}, {2, 4}, {3, 4}, {6, 7}, {6, 8}, {7, 8}}
	for _, w := range wantPairs {
		if !set[int64(w[0])<<32|int64(uint32(w[1]))] {
			t.Errorf("planted copying pair (S%d,S%d) not detected", w[0], w[1])
		}
	}
	// The honest sources must stay independent of each other.
	for _, w := range [][2]dataset.SourceID{{0, 1}, {0, 9}, {1, 9}} {
		if set[int64(w[0])<<32|int64(uint32(w[1]))] {
			t.Errorf("independent pair (S%d,S%d) wrongly flagged", w[0], w[1])
		}
	}

	// Accuracy separation (Table II converges to S0≈.99, S2≈.2).
	a := out.State.A
	for _, s := range []int{0, 1, 9} {
		if a[s] < 0.85 {
			t.Errorf("accuracy of honest S%d = %.3f, want high", s, a[s])
		}
	}
	for _, s := range []int{2, 3, 6, 8} {
		if a[s] > 0.6 {
			t.Errorf("accuracy of bad S%d = %.3f, want low", s, a[s])
		}
	}
	if a[0] <= a[2] {
		t.Errorf("accuracy ordering violated: A(S0)=%.3f ≤ A(S2)=%.3f", a[0], a[2])
	}
}

// TestDetectorsAgreeOnMotivating: the full iterative loop reaches the same
// copying set and truths regardless of which exact detector runs inside.
func TestDetectorsAgreeOnMotivating(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	base := (&TruthFinder{Params: p}).Run(ds, &core.Pairwise{Params: p})
	dets := []core.Detector{
		&core.Index{Params: p},
		&core.Hybrid{Params: p},
		&core.BoundPlus{Params: p},
		&core.Incremental{Params: p},
	}
	for _, det := range dets {
		out := (&TruthFinder{Params: p}).Run(ds, det)
		for d := range base.Truth {
			if out.Truth[d] != base.Truth[d] {
				t.Errorf("%s: truth of %s differs from PAIRWISE", det.Name(), ds.ItemNames[d])
			}
		}
		bset, oset := base.Copy.CopyingSet(), out.Copy.CopyingSet()
		for k := range bset {
			if !oset[k] {
				t.Errorf("%s: copying pair missing vs PAIRWISE", det.Name())
			}
		}
		for k := range oset {
			if !bset[k] {
				t.Errorf("%s: spurious copying pair vs PAIRWISE", det.Name())
			}
		}
	}
}

// TestValueProbsDiscounting: a false value shared by a detected copier
// clique must lose probability once discounting is applied.
func TestValueProbsDiscounting(t *testing.T) {
	ds, accu := dataset.Motivating()
	p := exampleParams()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	st.P = ValueProbs(ds, st, p, nil)

	res := (&core.Pairwise{Params: p}).DetectRound(ds, st, 1)
	g := newCopyGraph(res)
	discounted := ValueProbs(ds, st, p, g)

	dNY, vNY := dataset.LookupValue(ds, "NY.NewYork")
	if dNY < 0 {
		t.Fatal("NY.NewYork missing")
	}
	if discounted[dNY][vNY] >= st.P[dNY][vNY] {
		t.Errorf("discounting did not reduce P(NY.NewYork): %.4f -> %.4f",
			st.P[dNY][vNY], discounted[dNY][vNY])
	}
	dAl, vAl := dataset.LookupValue(ds, "NY.Albany")
	if discounted[dAl][vAl] <= st.P[dAl][vAl] {
		t.Errorf("discounting should boost the competing true value: %.4f -> %.4f",
			st.P[dAl][vAl], discounted[dAl][vAl])
	}
}

// TestValueProbsNormalized: probabilities over each item's observed values
// stay within (0,1) and sum to at most 1 (the rest is the unobserved tail).
func TestValueProbsNormalized(t *testing.T) {
	ds, accu := dataset.Motivating()
	p := exampleParams()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	probs := ValueProbs(ds, st, p, nil)
	for d := range probs {
		sum := 0.0
		for _, pv := range probs[d] {
			if pv <= 0 || pv >= 1 {
				t.Fatalf("item %d has out-of-range probability %v", d, pv)
			}
			sum += pv
		}
		if sum > 1+1e-9 {
			t.Fatalf("item %d probabilities sum to %v > 1", d, sum)
		}
	}
}

func TestAccuraciesClamped(t *testing.T) {
	ds, _ := dataset.Motivating()
	probs := make([][]float64, ds.NumItems())
	for d := range probs {
		probs[d] = make([]float64, ds.NumValues(dataset.ItemID(d)))
		for v := range probs[d] {
			probs[d][v] = 1.0 // degenerate certainty
		}
	}
	acc := Accuracies(ds, probs)
	for s, a := range acc {
		if a != 0.99 {
			t.Errorf("source %d accuracy %v, want clamp at 0.99", s, a)
		}
	}
}

func TestDecidePicksArgmax(t *testing.T) {
	ds, _ := dataset.Motivating()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.1
		}
		st.P[d][len(st.P[d])-1] = 0.9
	}
	truth := Decide(ds, st)
	for d := range truth {
		if int(truth[d]) != len(st.P[d])-1 {
			t.Errorf("item %d decided %d, want argmax %d", d, truth[d], len(st.P[d])-1)
		}
	}
}

// TestRunDeterministic: two runs produce identical outcomes.
func TestRunDeterministic(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	a := (&TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	b := (&TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	if a.Rounds != b.Rounds {
		t.Fatalf("round counts differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for s := range a.State.A {
		if math.Abs(a.State.A[s]-b.State.A[s]) > 1e-12 {
			t.Fatalf("accuracies differ at %d", s)
		}
	}
}

// TestIncrementalResetBetweenRuns: reusing one Incremental detector for
// two different runs must not leak state (Run resets it).
func TestIncrementalResetBetweenRuns(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	det := &core.Incremental{Params: p}
	a := (&TruthFinder{Params: p}).Run(ds, det)
	b := (&TruthFinder{Params: p}).Run(ds, det)
	if a.Rounds != b.Rounds {
		t.Fatalf("round counts differ after reuse: %d vs %d", a.Rounds, b.Rounds)
	}
	aset, bset := a.Copy.CopyingSet(), b.Copy.CopyingSet()
	if len(aset) != len(bset) {
		t.Fatalf("copying sets differ after reuse")
	}
}
