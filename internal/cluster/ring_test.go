package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty backend accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

func TestRingDeterministic(t *testing.T) {
	backends := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	r1, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("ds-%d", i)
		if r1.Owner(name) != r2.Owner(name) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", name, r1.Owner(name), r2.Owner(name))
		}
	}
}

func TestRingBalance(t *testing.T) {
	backends := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(backends))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("ds-%d", i))]++
	}
	// With DefaultReplicas virtual nodes the split should be within a
	// factor of ~2 of even; this is deterministic (fixed names, fixed
	// hash), so the assertion cannot flake.
	for i, c := range counts {
		if c < n/len(backends)/2 || c > n*2/len(backends) {
			t.Errorf("backend %d owns %d of %d keys — ring badly unbalanced: %v", i, c, n, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	three := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	four := append(append([]string(nil), three...), "http://b3:1")
	r3, err := NewRing(three, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(four, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("ds-%d", i)
		o3, o4 := r3.Owner(name), r4.Owner(name)
		if o3 != o4 {
			moved++
			// Consistent hashing: a key may only move *to* the new backend.
			if four[o4] != "http://b3:1" {
				t.Fatalf("key %q moved from %s to %s, not to the new backend", name, three[o3], four[o4])
			}
		}
	}
	// Expected share moved is ~1/4; allow a generous band (deterministic).
	if moved == 0 || moved > total/2 {
		t.Errorf("adding one backend moved %d of %d keys", moved, total)
	}
}

func TestRingAccessors(t *testing.T) {
	backends := []string{"u0", "u1"}
	r, err := NewRing(backends, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBackends() != 2 || r.Backend(0) != "u0" || r.Backend(1) != "u1" {
		t.Errorf("accessors: n=%d b0=%q b1=%q", r.NumBackends(), r.Backend(0), r.Backend(1))
	}
}

func TestReplicaSet(t *testing.T) {
	backends := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma", "delta", "ds-0", "ds-1", "ds-2", "load-17"}
	for _, name := range names {
		for n := 1; n <= len(backends)+2; n++ {
			set := r.ReplicaSet(name, n)
			want := n
			if want > len(backends) {
				want = len(backends) // clamped
			}
			if len(set) != want {
				t.Fatalf("ReplicaSet(%q, %d) has %d members, want %d", name, n, len(set), want)
			}
			if set[0] != r.Owner(name) {
				t.Errorf("ReplicaSet(%q, %d)[0] = %d, want Owner %d", name, n, set[0], r.Owner(name))
			}
			seen := map[int]bool{}
			for _, m := range set {
				if m < 0 || m >= len(backends) {
					t.Fatalf("ReplicaSet(%q, %d) member %d out of range", name, n, m)
				}
				if seen[m] {
					t.Fatalf("ReplicaSet(%q, %d) repeats member %d: %v", name, n, m, set)
				}
				seen[m] = true
			}
			// Growing n only appends members; the prefix is stable, so a
			// cluster can raise its replication factor without moving
			// any existing primary or replica.
			if n > 1 {
				prev := r.ReplicaSet(name, n-1)
				for i := range prev {
					if set[i] != prev[i] {
						t.Fatalf("ReplicaSet(%q, %d) prefix %v diverges from ReplicaSet(%q, %d) = %v",
							name, n, set, name, n-1, prev)
					}
				}
			}
		}
		if n := r.ReplicaSet(name, 0); len(n) != 1 || n[0] != r.Owner(name) {
			t.Errorf("ReplicaSet(%q, 0) = %v, want just the owner", name, n)
		}
	}
	// Deterministic across independently built rings (the property every
	// gateway relies on).
	r2, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		a, b := r.ReplicaSet(name, 2), r2.ReplicaSet(name, 2)
		if a[0] != b[0] || a[1] != b[1] {
			t.Errorf("ReplicaSet(%q, 2) differs across identical rings: %v vs %v", name, a, b)
		}
	}
}

func TestReplicaSetSingleBackend(t *testing.T) {
	r, err := NewRing([]string{"http://only:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set := r.ReplicaSet("anything", 3); len(set) != 1 || set[0] != 0 {
		t.Errorf("ReplicaSet over one backend = %v, want [0]", set)
	}
}
