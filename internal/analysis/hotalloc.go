package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc proves the zero-alloc contract statically: every function
// transitively reachable from a copydetect:hotpath root must be free of
// allocating constructs. TestIncrementalSteadyStateAllocs proves
// AllocsPerRun == 0 for the code path one benchmark drives; this
// analyzer proves it for every path through the hot call graph, so a
// refactor cannot quietly reintroduce an allocation the benchmark's
// input never reaches.
//
// Flagged inside hot code: make/new, append into a slice without a
// same-function capacity reset (x = buf[:0]), slice/map composite
// literals, &T{...}, nested function literals, go statements, string
// concatenation, string<->[]byte conversions, and implicit interface
// conversions (boxing) at calls, assignments, returns, and composite
// fields. Calls are followed into every function whose body was loaded;
// calls out of the module are rejected unless Config.HotAllocAllow
// vouches for them, and dynamic calls (function values, interface
// methods) are rejected outright — an unseen body cannot be proven
// allocation-free.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "allocating constructs reachable from copydetect:hotpath roots",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	hc := &hotChecker{
		pass:    pass,
		decls:   make(map[string]declSite),
		visited: make(map[string]bool),
	}
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					// Keyed by FullName: cross-package references resolve
					// through gc export data, so the *types.Func a caller
					// sees is not the same object the defining package's
					// source check produced.
					hc.decls[fn.FullName()] = declSite{pkg: pkg, decl: fd}
				}
			}
		}
	}
	for _, pkg := range pass.Prog.Pkgs {
		hotDecls, hotLits := pass.Annots.HotRoots(pkg)
		for _, fd := range hotDecls {
			fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok || hc.visited[fn.FullName()] {
				continue
			}
			hc.visited[fn.FullName()] = true
			hc.checkBody(pkg, fd, fd.Body, fn.Name())
		}
		for _, hl := range hotLits {
			hc.checkBody(pkg, hl.Lit, hl.Lit.Body, hl.Name)
		}
	}
	return nil
}

type declSite struct {
	pkg  *Package
	decl *ast.FuncDecl
}

type hotChecker struct {
	pass    *Pass
	decls   map[string]declSite
	visited map[string]bool
}

// checkBody walks one hot function. fn is the FuncDecl or FuncLit whose
// body is checked (body is passed separately so the root literal itself
// is not reported as a nested closure); root names the annotated entry
// point for diagnostics.
func (hc *hotChecker) checkBody(pkg *Package, fn ast.Node, body *ast.BlockStmt, root string) {
	info := pkg.Info
	parents := parentMap(fn)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			hc.report(n.Pos(), root, "function literal allocates a closure")
			return false
		case *ast.GoStmt:
			hc.report(n.Pos(), root, "go statement allocates a goroutine")
			return false
		case *ast.CompositeLit:
			hc.checkComposite(pkg, parents, n, root)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringType(info.Types[n].Type) && info.Types[n].Value == nil {
				hc.report(n.Pos(), root, "string concatenation allocates")
			}
		case *ast.AssignStmt:
			hc.checkAssignBoxing(pkg, n, root)
		case *ast.ReturnStmt:
			hc.checkReturnBoxing(pkg, parents, n, root)
		case *ast.CallExpr:
			hc.checkCall(pkg, fn, parents, n, root)
		}
		return true
	})
}

func (hc *hotChecker) report(pos token.Pos, root, format string, args ...any) {
	hc.pass.Report(pos, "hot path (reachable from %s): "+format, append([]any{root}, args...)...)
}

func (hc *hotChecker) checkCall(pkg *Package, fnNode ast.Node, parents map[ast.Node]ast.Node, call *ast.CallExpr, root string) {
	info := pkg.Info

	// Builtins.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				hc.report(call.Pos(), root, "make allocates")
			case "new":
				hc.report(call.Pos(), root, "new allocates")
			case "append":
				if !hc.appendReusesCapacity(pkg, fnNode, call) {
					hc.report(call.Pos(), root, "append may grow its backing array; reset the slice with x = buf[:0] in this function to reuse capacity")
				}
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		hc.checkConversion(pkg, call, tv.Type, root)
		return
	}

	// Static callee?
	callee := calleeFunc(info, call)
	if callee == nil {
		hc.report(call.Pos(), root, "call through a function value cannot be proven allocation-free")
		return
	}
	callee = callee.Origin()
	sig := callee.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if _, ok := recv.Type().Underlying().(*types.Interface); ok {
			hc.report(call.Pos(), root, "dynamic call through interface method %s cannot be proven allocation-free", callee.Name())
			return
		}
	}
	hc.checkCallBoxing(pkg, call, sig, root)

	full := callee.FullName()
	site, ok := hc.decls[full]
	if !ok {
		if !hc.pass.Config.allocAllowed(full) {
			hc.report(call.Pos(), root, "call to %s: body outside analysis scope and not allowlisted in HotAllocAllow", full)
		}
		return
	}
	if hc.visited[full] {
		return
	}
	hc.visited[full] = true
	hc.checkBody(site.pkg, site.decl, site.decl.Body, root)
}

// appendReusesCapacity reports whether the slice being appended to has a
// capacity-reuse reset (x = buf[:0] / x := buf[:0]) somewhere in the
// same function — the repo's scratch-buffer idiom, which never grows in
// steady state.
func (hc *hotChecker) appendReusesCapacity(pkg *Package, fnNode ast.Node, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	reset := false
	ast.Inspect(fnNode, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || reset {
			return !reset
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if o := pkg.Info.Defs[lid]; o == nil || o != obj {
				if o2 := pkg.Info.Uses[lid]; o2 == nil || o2 != obj {
					continue
				}
			}
			if isZeroSlice(pkg.Info, as.Rhs[i]) {
				reset = true
			}
		}
		return true
	})
	return reset
}

// isZeroSlice matches expr[:0] (any base expression, constant high
// bound zero).
func isZeroSlice(info *types.Info, e ast.Expr) bool {
	se, ok := unparen(e).(*ast.SliceExpr)
	if !ok || se.Slice3 || se.Low != nil || se.High == nil {
		return false
	}
	tv := info.Types[se.High]
	return tv.Value != nil && tv.Value.String() == "0"
}

func (hc *hotChecker) checkConversion(pkg *Package, call *ast.CallExpr, target types.Type, root string) {
	if len(call.Args) != 1 {
		return
	}
	src := pkg.Info.Types[call.Args[0]].Type
	if src == nil {
		return
	}
	if isInterface(target) && !isInterface(src) && !isUntypedNil(src) {
		hc.report(call.Pos(), root, "conversion to interface type %s boxes its operand", target.String())
		return
	}
	if isStringType(target) != isStringType(src) && (isByteOrRuneSlice(target) || isByteOrRuneSlice(src)) {
		hc.report(call.Pos(), root, "string/slice conversion copies its operand")
	}
}

func (hc *hotChecker) checkCallBoxing(pkg *Package, call *ast.CallExpr, sig *types.Signature, root string) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		hc.checkBoxingTo(pkg, arg, pt, root, "argument")
	}
}

func (hc *hotChecker) checkAssignBoxing(pkg *Package, as *ast.AssignStmt, root string) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call assignment: types already match
	}
	for i, rhs := range as.Rhs {
		lt := pkg.Info.Types[as.Lhs[i]].Type
		hc.checkBoxingTo(pkg, rhs, lt, root, "assignment")
	}
}

func (hc *hotChecker) checkReturnBoxing(pkg *Package, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, root string) {
	fn := enclosingFunc(parents, ret)
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		ftype = fn.Type
	case *ast.FuncLit:
		ftype = fn.Type
	default:
		return
	}
	sig, ok := pkg.Info.Types[ftype].Type.(*types.Signature)
	if !ok {
		if obj, ok2 := fn.(*ast.FuncDecl); ok2 {
			if f, ok3 := pkg.Info.Defs[obj.Name].(*types.Func); ok3 {
				sig = f.Type().(*types.Signature)
				ok = true
			}
		}
	}
	if !ok || sig.Results() == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		hc.checkBoxingTo(pkg, res, sig.Results().At(i).Type(), root, "return")
	}
}

func (hc *hotChecker) checkComposite(pkg *Package, parents map[ast.Node]ast.Node, lit *ast.CompositeLit, root string) {
	t := pkg.Info.Types[lit].Type
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		hc.report(lit.Pos(), root, "slice literal allocates")
		return
	case *types.Map:
		hc.report(lit.Pos(), root, "map literal allocates")
		return
	}
	if _, ok := parents[lit].(*ast.UnaryExpr); ok {
		if ue := parents[lit].(*ast.UnaryExpr); ue.Op.String() == "&" {
			hc.report(ue.Pos(), root, "&composite literal allocates")
			return
		}
	}
	// Struct literal by value: check interface-typed fields for boxing.
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if v, ok := pkg.Info.Uses[key].(*types.Var); ok {
				hc.checkBoxingTo(pkg, kv.Value, v.Type(), root, "composite field")
			}
			continue
		}
		if i < st.NumFields() {
			hc.checkBoxingTo(pkg, elt, st.Field(i).Type(), root, "composite field")
		}
	}
}

func (hc *hotChecker) checkBoxingTo(pkg *Package, expr ast.Expr, to types.Type, root, what string) {
	if to == nil || !isInterface(to) {
		return
	}
	tv := pkg.Info.Types[expr]
	from := tv.Type
	if from == nil || isInterface(from) || isUntypedNil(from) {
		return
	}
	if _, ok := from.(*types.TypeParam); ok {
		return
	}
	hc.report(expr.Pos(), root, "%s converts %s to interface %s (boxing allocates)", what, from.String(), to.String())
}

func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Kind() == types.Uint8 || b.Kind() == types.Int32
}
