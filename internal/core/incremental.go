package core

import (
	"math"
	"math/bits"
	"slices"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
	"copydetect/internal/pool"
)

// Incremental is the iterative algorithm of Section V. The first
// WarmRounds rounds run HYBRID from scratch (the paper found results vary
// too much before round 3 for incremental refinement to pay off). At the
// end of the warm phase it freezes the inverted index — entry set, entry
// order, candidate pairs and shared-item counts never change across
// rounds, because the observations are fixed — snapshots the statistical
// state as the base, and computes exact per-pair scores against that base.
//
// Every later round then:
//
//  1. classifies each entry by how much its contribution score M̂ drifted
//     from the base (computed on the base accuracies, as Section V-A
//     prescribes, so value-probability drift is isolated from accuracy
//     drift); entries with |Δ| ≥ RhoV are big-change entries, and the
//     largest small change per sign becomes the estimate ∆ρ;
//  2. applies the exact score deltas of big-change entries to the pairs
//     sharing them (pass A, cheap: big entries are few);
//  3. re-examines each pair in up to three passes. Pass 1 challenges the
//     previous decision with the adversarial changes only (big decreases
//     for copying pairs, big increases for no-copying pairs) plus the
//     ∆ρ-bounded worst case of all small changes; pairs whose decision
//     survives settle here. Pass 2 adds the compensating big changes.
//     Pass 3 recomputes the pair exactly with the current state and may
//     flip the decision.
//
// Pass-1 and pass-2 settlements are sound: the estimates bound the exact
// current score adversarially, so a settled decision equals the decision
// exact scores would produce under the θcp/θind thresholds. Only pairs in
// the posterior middle zone always reach pass 3.
//
// Pairs containing a source whose accuracy drifted by ≥ RhoA from the
// base are recomputed exactly (pass 3), as Section V-A requires. When too
// many entries or accuracies drift past their thresholds the detector
// rebases: it recomputes exact base scores against the current state —
// the analogue of the paper's periodic re-computation rounds.
//
// Steady-state rounds are allocation-free: every buffer the three passes
// touch — entry deltas, per-pair delta accumulators, touched lists, pass
// outputs, per-worker scratch — is preallocated when the detector
// prepares, and the worker closures handed to the pool are built once and
// fed their per-round inputs through fields. (With ReuseResult set, the
// emitted Result reuses a buffer too, making the whole round zero-alloc
// at Workers <= 1; see TestIncrementalSteadyStateAllocs.) Pass-3 exact
// recomputation uses the structure's packed entry bitsets when available:
// the pair's shared items and shared values are AND+popcount sweeps, and
// only the set bits of the AND — the actual co-occurrences — are visited.
//
// Deviation from the paper, recorded in DESIGN.md: base scores are exact
// rather than the Ĉ under-estimates derived from BOUND+ decision points.
// This costs one exact index scan at the end of the warm phase and makes
// category E̅1 (entries after the decision point) empty; in exchange the
// three passes need no per-pair decision-point bookkeeping. The observable
// behaviour the paper measures (Table VIII: per-round speedup and the
// dominance of pass-1 terminations) is preserved.
type Incremental struct {
	Params bayes.Params
	Opts   Options
	// RhoV is the big-change threshold on entry contribution scores. Zero
	// selects the paper's adaptive rule (Section V-A): order the absolute
	// score changes decreasingly and put the threshold above the largest
	// gap between consecutive changes, so the cluster of genuinely moved
	// entries is handled exactly and ∆ρ — the largest remaining "small"
	// change — stays tight. (The paper's experiments fix 1.0, chosen by
	// observing those gaps.) RhoA is the big-change threshold on source
	// accuracies; zero selects the paper's 0.2.
	RhoV, RhoA float64
	// WarmRounds is the number of initial HYBRID rounds (paper: 2).
	// Zero selects 2.
	WarmRounds int
	// ReuseResult makes DetectRound return the same Result (and Pairs
	// backing array) on every incremental round instead of allocating
	// fresh ones. Callers that retain a returned Result past the next
	// DetectRound call — iteration-history hooks, the serving layer —
	// must leave it false.
	ReuseResult bool

	prepared bool
	warm     *Hybrid
	cache    structCache

	// Frozen at prepare time.
	pm         *index.PairMap
	l          []int32 // shared items per pair
	n          []int32 // shared values per pair (constant across rounds)
	base       *bayes.State
	baseScore  []float64 // per-entry M̂ at base (aliases the view's Score)
	cTo, cFrom []float64 // exact full score C→/C← at base (incl. ln(1−s) term)
	copying    []bool
	workers    int

	// Per-round scratch, preallocated in prepare. The per-pair delta
	// columns are cleared through the touched list after each round.
	deltas, absDeltas  []float64
	sigBuf             []float64
	bigEntries         []int32
	bigAcc             []bool
	dNegTo, dPosTo     []float64
	dNegFrom, dPosFrom []float64
	smallDec, smallInc []int32 // per-pair counts of small-change shared entries
	touched            []int32
	isTouched          []bool
	accBufs            [][]float64
	touchedShards      [][]int32
	passAComps         []int64
	passOuts           []passOut
	emitPairs          []PairResult
	pairsBuf           []PairResult
	resBuf             *Result

	// Round inputs for the preallocated worker closures: building a
	// closure per round would allocate (the pool entry points don't
	// inline), so the closures are built once in prepare and read their
	// inputs from here.
	roundDS                    *dataset.Dataset
	roundSt                    *bayes.State
	roundRhoV                  float64
	roundDRhoDec, roundDRhoInc float64
	classifyFn, passAFn        func(w int)
	passFn, emitFn             func(w int)

	// LastPass describes the most recent incremental round, and History
	// accumulates one entry per incremental round (Table VIII).
	LastPass PassStats
	History  []PassStats
}

// passOut collects one worker's pass counters and stats.
type passOut struct {
	pass  PassStats
	stats Stats
}

// PassStats reports where pairs terminated during an incremental round.
type PassStats struct {
	SettledPass1 int
	SettledPass2 int
	SettledPass3 int // includes exact recomputations forced by accuracy drift
	BigEntries   int
	Rebased      bool
}

// adaptiveRhoV implements the paper's gap heuristic on the absolute score
// changes of the current round. Changes below the noise floor are ignored;
// with no significant change it returns +Inf (nothing is "big").
func adaptiveRhoV(absDeltas []float64) float64 {
	return adaptiveRhoVInto(absDeltas, nil)
}

// adaptiveRhoVInto is adaptiveRhoV with a caller-owned scratch buffer
// (capacity >= len(absDeltas) keeps it allocation-free).
func adaptiveRhoVInto(absDeltas, buf []float64) float64 {
	const noise = 1e-6
	sig := buf[:0]
	for _, d := range absDeltas {
		if d > noise {
			sig = append(sig, d)
		}
	}
	if len(sig) == 0 {
		return math.Inf(1)
	}
	slices.Sort(sig)
	if len(sig) == 1 {
		return sig[0]
	}
	// Walk the significant changes from largest to smallest and return the
	// upper element of the widest adjacent gap (first such gap wins, as in
	// a descending scan).
	bestGap := -1.0
	best := sig[len(sig)-1]
	for j := len(sig) - 1; j >= 1; j-- {
		if gap := sig[j] - sig[j-1]; gap > bestGap {
			bestGap = gap
			best = sig[j]
		}
	}
	return best
}

func (d *Incremental) rhoA() float64 {
	if d.RhoA == 0 {
		return 0.2
	}
	return d.RhoA
}

func (d *Incremental) warmRounds() int {
	if d.WarmRounds == 0 {
		return 2
	}
	return d.WarmRounds
}

// Name implements Detector.
func (d *Incremental) Name() string { return "INCREMENTAL" }

// Reset drops all cross-round state so the detector can serve a fresh
// iterative process.
func (d *Incremental) Reset() {
	*d = Incremental{
		Params: d.Params, Opts: d.Opts, RhoV: d.RhoV, RhoA: d.RhoA,
		WarmRounds: d.WarmRounds, ReuseResult: d.ReuseResult,
	}
}

// DetectRound implements Detector.
func (d *Incremental) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	if d.prepared && (d.cache.ds != ds || d.cache.gen != ds.Generation) {
		// The dataset changed identity under a prepared detector (a new
		// dataset may even reuse the old one's address — the Generation
		// stamp catches that). The frozen index is meaningless for the new
		// data; start over.
		d.Reset()
	}
	if round <= d.warmRounds() {
		if d.warm == nil {
			d.warm = &Hybrid{Params: d.Params, Opts: d.Opts}
		}
		res := d.warm.DetectRound(ds, st, round)
		if round == d.warmRounds() {
			prepStart := time.Now()
			d.prepare(ds, st, &res.Stats)
			res.Stats.IndexBuild += time.Since(prepStart)
		}
		return res
	}
	if !d.prepared {
		// Caller skipped the warm rounds; fall back to preparing now.
		res := d.newResult(ds)
		res.Stats.Rounds = 1
		prepStart := time.Now()
		d.prepare(ds, st, &res.Stats)
		res.Stats.IndexBuild = time.Since(prepStart)
		d.emit(res)
		return res
	}
	return d.incrementalRound(ds, st)
}

// newResult returns the Result to fill this round: a fresh one, or (with
// ReuseResult) the detector-owned buffer.
func (d *Incremental) newResult(ds *dataset.Dataset) *Result {
	if !d.ReuseResult {
		return &Result{NumSources: ds.NumSources()}
	}
	if d.resBuf == nil {
		d.resBuf = &Result{}
	}
	*d.resBuf = Result{NumSources: ds.NumSources()}
	return d.resBuf
}

// grow returns s resized to n elements, reusing capacity when possible.
// Contents are unspecified; callers clear what they need cleared.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// growList returns an empty list with capacity at least n.
func growList[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// prepare freezes the index against st and computes exact base scores and
// decisions for every candidate pair. It also (re)builds every per-round
// scratch buffer and the worker closures, so the rounds that follow
// allocate nothing.
func (d *Incremental) prepare(ds *dataset.Dataset, st *bayes.State, stats *Stats) {
	p := d.Params
	str := d.cache.structures(ds)
	v := d.cache.view
	v.Rescore(st, p, index.ByContribution, nil)
	if d.pm == nil {
		d.pm = index.NewPairMap(ds.NumSources())
	}
	index.CandidatePairsInto(v, d.pm)
	numPairs := d.pm.Len()

	d.l = grow(d.l, numPairs)
	for slot, key := range d.pm.Keys() {
		s1, s2 := key.Sources()
		if all := d.cache.pmAll.Get(s1, s2); all >= 0 {
			d.l[slot] = d.cache.lAll[all]
		} else {
			d.l[slot] = int32(ds.SharedItems(s1, s2))
		}
	}
	d.n = grow(d.n, numPairs)
	clear(d.n)
	d.cTo = grow(d.cTo, numPairs)
	d.cFrom = grow(d.cFrom, numPairs)
	d.copying = grow(d.copying, numPairs)
	d.baseScore = v.Score // frozen until the next prepare rescales the view
	d.base = st.Clone()

	// The exact base-score accumulation is the same double loop as the
	// entry scan, so it shards the same way: each worker owns the pairs
	// whose smaller source id falls in its shard and visits the entries in
	// a fixed order, making the per-slot products bit-identical to a
	// sequential pass for every worker count. The directional evidence
	// accumulates as a renormalized product (accum.go); the pairTab columns
	// of the cache provide the accumulators.
	workers := pool.Clamp(d.Opts.Workers)
	d.workers = workers
	tab := &d.cache.tab
	tab.reset(numPairs)
	numEntries := str.NumEntries()
	for _, comps := range pool.Shards(workers, func(w int) int64 {
		var comps int64
		for e := 0; e < numEntries; e++ {
			provs := str.Providers(int32(e))
			pv, pop := v.P[e], v.Pop[e]
			for x := 0; x < len(provs); x++ {
				if !pool.Owns(workers, w, int(provs[x])) {
					continue
				}
				for y := x + 1; y < len(provs); y++ {
					slot := d.pm.Get(provs[x], provs[y])
					if slot < 0 {
						continue
					}
					mulContrib(p, pv, pop, st.A[provs[x]], st.A[provs[y]],
						&tab.mantTo[slot], &tab.expTo[slot],
						&tab.mantFrom[slot], &tab.expFrom[slot])
					d.n[slot]++
					comps += 2
				}
			}
		}
		return comps
	}) {
		stats.Computations += comps
	}
	lnDiff := p.LnDiff()
	pool.Run(workers, func(w int) {
		for slot := w; slot < numPairs; slot += workers {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			cov := 0.0
			if p.CoverageWeight > 0 {
				// Footnote-1 extension: include the coverage evidence in the
				// base scores, as the scan detectors do.
				cov = p.CoverageWeight * p.CoverageLLR(int(d.l[slot]),
					ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
			}
			corr := cov + float64(d.l[slot]-d.n[slot])*lnDiff
			d.cTo[slot] = logAcc(tab.mantTo[slot], tab.expTo[slot]) + corr
			d.cFrom[slot] = logAcc(tab.mantFrom[slot], tab.expFrom[slot]) + corr
			d.copying[slot] = p.PrIndep(d.cTo[slot], d.cFrom[slot]) <= 0.5
		}
	})
	stats.Computations += 2 * int64(numPairs)

	// Per-round scratch, preallocated so steady-state rounds stay
	// allocation-free.
	d.deltas = grow(d.deltas, numEntries)
	d.absDeltas = grow(d.absDeltas, numEntries)
	d.sigBuf = growList(d.sigBuf, numEntries)
	d.bigEntries = growList(d.bigEntries, numEntries)
	d.bigAcc = grow(d.bigAcc, ds.NumSources())
	d.dNegTo = grow(d.dNegTo, numPairs)
	d.dPosTo = grow(d.dPosTo, numPairs)
	d.dNegFrom = grow(d.dNegFrom, numPairs)
	d.dPosFrom = grow(d.dPosFrom, numPairs)
	clear(d.dNegTo)
	clear(d.dPosTo)
	clear(d.dNegFrom)
	clear(d.dPosFrom)
	d.smallDec = grow(d.smallDec, numPairs)
	d.smallInc = grow(d.smallInc, numPairs)
	clear(d.smallDec)
	clear(d.smallInc)
	d.isTouched = grow(d.isTouched, numPairs)
	clear(d.isTouched)
	d.touched = growList(d.touched, numPairs)
	if len(d.accBufs) < workers {
		d.accBufs = make([][]float64, workers)
	}
	for w := range d.accBufs {
		d.accBufs[w] = growList(d.accBufs[w], max(str.MaxProviders, 2))
	}
	if len(d.touchedShards) < workers {
		d.touchedShards = make([][]int32, workers)
	}
	for w := 0; w < workers; w++ {
		d.touchedShards[w] = growList(d.touchedShards[w], numPairs)
	}
	d.passAComps = grow(d.passAComps, workers)
	d.passOuts = grow(d.passOuts, workers)
	if d.History == nil {
		d.History = make([]PassStats, 0, 1024)
	}
	d.buildClosures()
	d.prepared = true
}

// mulContrib folds one co-occurrence into both directional slot
// accumulators, mirroring two ContribSameDist calls (see prodAccum.mulSame
// for the pair-at-a-time twin).
//
//copydetect:hotpath
func mulContrib(p bayes.Params, pv, pop, a1, a2 float64,
	mTo *float64, eTo *int32, mFrom *float64, eFrom *int32) {
	if pop <= 0 {
		pop = 1 / p.N
	}
	omPv := 1 - pv
	om1, om2 := 1-a1, 1-a2
	ind := pv*a1*a2 + omPv*om1*om2*pop
	if ind <= 0 {
		*mTo, *mFrom = math.Inf(1), math.Inf(1)
		return
	}
	inv := p.S / ind
	*mTo, *eTo = mulRenorm(*mTo, *eTo, 1-p.S+(pv*a2+omPv*om2)*inv)
	*mFrom, *eFrom = mulRenorm(*mFrom, *eFrom, 1-p.S+(pv*a1+omPv*om1)*inv)
}

// buildClosures constructs the worker functions once per prepare. They
// read their per-round inputs (current state, thresholds, ∆ρ estimates)
// from detector fields, so incremental rounds never build a closure.
func (d *Incremental) buildClosures() {
	// Entry classification: drift of M̂ since the base, holding provider
	// accuracies at their base values to isolate value-probability change.
	// Each entry's drift is a pure function of the entry, so workers take
	// a strided slice of the entry range and write disjoint slots.
	//copydetect:hotpath
	d.classifyFn = func(w int) {
		p := d.Params
		str := d.cache.str
		v := d.cache.view
		st := d.roundSt
		accBuf := d.accBufs[w]
		numEntries := str.NumEntries()
		for i := w; i < numEntries; i += d.workers {
			accBuf = accBuf[:0]
			for _, s := range str.Providers(int32(i)) {
				accBuf = append(accBuf, d.base.A[s])
			}
			pNew := st.P[str.Item[i]][str.Val[i]]
			d.deltas[i] = p.MaxEntryScoreDist(pNew, v.Pop[i], accBuf) - d.baseScore[i]
			d.absDeltas[i] = math.Abs(d.deltas[i])
		}
	}

	// Pass A: scan the drifted entries once. Big-change entries contribute
	// exact per-pair deltas, sign-separated per direction; small-change
	// entries only bump per-pair counters (|E̅↘| and |E̅↗| of Section
	// V-B), so the ∆ρ estimates multiply the true counts rather than the
	// pair's total shared values. Entries whose score did not move at all
	// (the vast majority after convergence sets in) are skipped. The
	// per-pair delta accumulators shard exactly like the entry scan
	// (owner = smaller source id mod workers), and each worker collects
	// the pairs it touched into a private list merged in shard order.
	//copydetect:hotpath
	d.passAFn = func(w int) {
		const noise = 1e-6
		p := d.Params
		str := d.cache.str
		v := d.cache.view
		st := d.roundSt
		rhoV := d.roundRhoV
		touched := d.touchedShards[w][:0]
		var comps int64
		numEntries := str.NumEntries()
		for i := 0; i < numEntries; i++ {
			if d.absDeltas[i] <= noise {
				continue
			}
			big := d.absDeltas[i] >= rhoV
			provs := str.Providers(int32(i))
			var pOld, pNew, pop float64
			if big {
				pOld = d.base.P[str.Item[i]][str.Val[i]]
				pNew = st.P[str.Item[i]][str.Val[i]]
				pop = v.Pop[i]
			}
			dec := d.deltas[i] < 0
			for x := 0; x < len(provs); x++ {
				if !pool.Owns(d.workers, w, int(provs[x])) {
					continue
				}
				for y := x + 1; y < len(provs); y++ {
					slot := d.pm.Get(provs[x], provs[y])
					if slot < 0 {
						continue
					}
					if !d.isTouched[slot] {
						d.isTouched[slot] = true
						touched = append(touched, slot)
					}
					if !big {
						if dec {
							d.smallDec[slot]++
						} else {
							d.smallInc[slot]++
						}
						continue
					}
					a1, a2 := d.base.A[provs[x]], d.base.A[provs[y]]
					dTo := p.ContribSameDist(pNew, pop, a1, a2) - p.ContribSameDist(pOld, pop, a1, a2)
					dFrom := p.ContribSameDist(pNew, pop, a2, a1) - p.ContribSameDist(pOld, pop, a2, a1)
					comps += 2
					if dTo < 0 {
						d.dNegTo[slot] += dTo
					} else {
						d.dPosTo[slot] += dTo
					}
					if dFrom < 0 {
						d.dNegFrom[slot] += dFrom
					} else {
						d.dPosFrom[slot] += dFrom
					}
				}
			}
		}
		d.touchedShards[w] = touched
		d.passAComps[w] = comps
	}

	// Passes 1–3 per pair. Pairs are independent here — each reads only
	// its own slot state and writes only its own decision — so workers
	// take a strided slice of the slot range; pass counters and stats are
	// accumulated per worker and summed in shard order.
	//copydetect:hotpath
	d.passFn = func(w int) {
		p := d.Params
		thetaCp, thetaInd := p.ThetaCp(), p.ThetaInd()
		dRhoDec, dRhoInc := d.roundDRhoDec, d.roundDRhoInc
		out := &d.passOuts[w]
		*out = passOut{}
		numPairs := d.pm.Len()
		for slot := w; slot < numPairs; slot += d.workers {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			needExact := d.bigAcc[s1] || d.bigAcc[s2]
			if !needExact {
				decBound := dRhoDec * float64(d.smallDec[slot])
				incBound := dRhoInc * float64(d.smallInc[slot])
				if d.copying[slot] {
					// Pass 1: adversarial view — exact big decreases plus the
					// worst-case estimate of the pair's small decreases.
					cand := math.Max(d.cTo[slot]+d.dNegTo[slot], d.cFrom[slot]+d.dNegFrom[slot]) - decBound
					out.stats.Computations++
					if cand >= thetaCp {
						out.pass.SettledPass1++
						continue
					}
					// Pass 2: compensate with the exact big increases.
					cand = math.Max(d.cTo[slot]+d.dNegTo[slot]+d.dPosTo[slot],
						d.cFrom[slot]+d.dNegFrom[slot]+d.dPosFrom[slot]) - decBound
					out.stats.Computations++
					if cand >= thetaCp {
						out.pass.SettledPass2++
						continue
					}
				} else {
					// Pass 1 for no-copying pairs: adversarial increases.
					cTo := d.cTo[slot] + d.dPosTo[slot] + incBound
					cFrom := d.cFrom[slot] + d.dPosFrom[slot] + incBound
					out.stats.Computations++
					if cTo < thetaInd && cFrom < thetaInd {
						out.pass.SettledPass1++
						continue
					}
					// Pass 2: compensate with the exact big decreases.
					cTo += d.dNegTo[slot]
					cFrom += d.dNegFrom[slot]
					out.stats.Computations++
					if cTo < thetaInd && cFrom < thetaInd {
						out.pass.SettledPass2++
						continue
					}
				}
			}
			// Pass 3: exact recomputation against the current state.
			out.pass.SettledPass3++
			cTo, cFrom := d.exactPair(d.roundDS, d.roundSt, s1, s2, &out.stats)
			d.copying[slot], _, _, _ = decide(p, cTo, cFrom)
		}
	}

	// emit materializes the per-pair results from the stored decisions and
	// the best available score estimates. The output slice is indexed by
	// pair slot, so the strided parallel fill yields the same ordering as
	// a sequential walk for every worker count.
	//copydetect:hotpath
	d.emitFn = func(w int) {
		p := d.Params
		pairs := d.emitPairs
		for slot := w; slot < len(pairs); slot += d.workers {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			cTo := d.cTo[slot] + d.dNegTo[slot] + d.dPosTo[slot]
			cFrom := d.cFrom[slot] + d.dNegFrom[slot] + d.dPosFrom[slot]
			prIndep, prTo, prFrom := p.Posterior(cTo, cFrom)
			pairs[slot] = PairResult{
				S1: s1, S2: s2, CTo: cTo, CFrom: cFrom,
				PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
				Copying: d.copying[slot],
			}
		}
	}
}

// incrementalRound performs the three-pass refinement of Section V.
func (d *Incremental) incrementalRound(ds *dataset.Dataset, st *bayes.State) *Result {
	p := d.Params
	res := d.newResult(ds)
	res.Stats.Rounds = 1
	start := time.Now()
	d.LastPass = PassStats{}
	d.roundDS, d.roundSt = ds, st

	numEntries := d.cache.str.NumEntries()
	pool.Run(d.workers, d.classifyFn)
	res.Stats.Computations += int64(numEntries)

	rhoV := d.RhoV
	if rhoV == 0 {
		rhoV = adaptiveRhoVInto(d.absDeltas, d.sigBuf)
	}
	d.roundRhoV = rhoV
	d.bigEntries = d.bigEntries[:0]
	dRhoDec, dRhoInc := 0.0, 0.0
	for i, delta := range d.deltas {
		switch {
		case d.absDeltas[i] >= rhoV:
			d.bigEntries = append(d.bigEntries, int32(i))
		case delta < 0:
			if -delta > dRhoDec {
				dRhoDec = -delta
			}
		case delta > 0:
			if delta > dRhoInc {
				dRhoInc = delta
			}
		}
	}
	d.LastPass.BigEntries = len(d.bigEntries)
	d.roundDRhoDec, d.roundDRhoInc = dRhoDec, dRhoInc

	// Accuracy drift since the base.
	rhoA := d.rhoA()
	numBigAcc := 0
	for s := range d.bigAcc {
		big := math.Abs(st.A[s]-d.base.A[s]) >= rhoA
		d.bigAcc[s] = big
		if big {
			numBigAcc++
		}
	}

	// Rebase when drift overwhelms the incremental machinery: too many
	// big-change entries, too many drifted accuracies, or "small" changes
	// so large that the ∆ρ bounds cannot settle anything.
	if len(d.bigEntries) > max(64, numEntries/20) ||
		numBigAcc > max(2, ds.NumSources()/50) ||
		dRhoDec+dRhoInc > p.ThetaInd() {
		d.LastPass.Rebased = true
		d.prepare(ds, st, &res.Stats)
		d.LastPass.SettledPass3 = d.pm.Len()
		d.History = append(d.History, d.LastPass)
		d.emit(res)
		res.Stats.Detect = time.Since(start)
		return res
	}

	pool.Run(d.workers, d.passAFn)
	for w := 0; w < d.workers; w++ {
		d.touched = append(d.touched, d.touchedShards[w]...)
		res.Stats.Computations += d.passAComps[w]
	}

	pool.Run(d.workers, d.passFn)
	for w := 0; w < d.workers; w++ {
		sh := &d.passOuts[w]
		d.LastPass.SettledPass1 += sh.pass.SettledPass1
		d.LastPass.SettledPass2 += sh.pass.SettledPass2
		d.LastPass.SettledPass3 += sh.pass.SettledPass3
		res.Stats.Add(sh.stats)
	}

	d.emit(res)

	// Clear scratch through the touched list — only the slots this round
	// actually dirtied.
	for _, slot := range d.touched {
		d.dNegTo[slot], d.dPosTo[slot] = 0, 0
		d.dNegFrom[slot], d.dPosFrom[slot] = 0, 0
		d.smallDec[slot], d.smallInc[slot] = 0, 0
		d.isTouched[slot] = false
	}
	d.touched = d.touched[:0]
	d.History = append(d.History, d.LastPass)
	res.Stats.Detect = time.Since(start)
	return res
}

// exactPair recomputes the full scores of one pair with current state —
// the cost the passes try to avoid. With entry bitsets available the
// shared items and shared values are AND+popcount sweeps and only actual
// co-occurrences are visited; otherwise it merges the two observation
// lists. Both paths visit the same co-occurrences in the same (item-major)
// order and accumulate identically, so their results are bit-equal
// (TestExactPairBitsMatchesMerge).
//
//copydetect:hotpath
func (d *Incremental) exactPair(ds *dataset.Dataset, st *bayes.State, s1, s2 dataset.SourceID, stats *Stats) (cTo, cFrom float64) {
	if str := d.cache.str; str != nil && str.EntryBits != nil {
		return exactPairBits(d.Params, str, ds, st, s1, s2, stats)
	}
	return exactPairMerge(d.Params, ds, st, s1, s2, stats)
}

// exactPairBits is the bitset path of exactPair: l(S1,S2) and the shared
// entries come from word-parallel ANDs of the per-source bitsets, and the
// contribution loop iterates only the set bits of EntryBits[s1] ∧
// EntryBits[s2] — ascending entry id, which is item-major order, matching
// the merge path. The set-bit iteration is inlined (no callback) to stay
// allocation-free.
func exactPairBits(p bayes.Params, str *index.Structure, ds *dataset.Dataset, st *bayes.State,
	s1, s2 dataset.SourceID, stats *Stats) (cTo, cFrom float64) {

	ib1, ib2 := str.ItemBits[s1], str.ItemBits[s2]
	nShared := 0
	for wi := range ib1 {
		nShared += bits.OnesCount64(ib1[wi] & ib2[wi])
	}
	a1, a2 := st.A[s1], st.A[s2]
	ac := newProdAccum()
	n0 := 0
	eb1, eb2 := str.EntryBits[s1], str.EntryBits[s2]
	for wi := range eb1 {
		word := eb1[wi] & eb2[wi]
		base := wi << 6
		for word != 0 {
			e := base + bits.TrailingZeros64(word)
			word &= word - 1
			n0++
			item, val := str.Item[e], str.Val[e]
			pv := st.P[item][val]
			pop := st.PopOf(int32(item), int32(val))
			ac.mulSame(p, pv, pop, a1, a2)
		}
	}
	stats.ValuesExamined += int64(n0)
	stats.Computations += 2 * int64(nShared)
	cTo, cFrom = ac.logs()
	corr := float64(nShared-n0) * p.LnDiff()
	if p.CoverageWeight > 0 && nShared > 0 {
		corr += p.CoverageWeight * p.CoverageLLR(nShared,
			ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
	}
	return cTo + corr, cFrom + corr
}

// exactPairMerge is the fallback path of exactPair (bitsets disabled by
// the memory guard): merge the two sorted observation lists.
func exactPairMerge(p bayes.Params, ds *dataset.Dataset, st *bayes.State,
	s1, s2 dataset.SourceID, stats *Stats) (cTo, cFrom float64) {

	a, b := ds.BySource[s1], ds.BySource[s2]
	a1, a2 := st.A[s1], st.A[s2]
	ac := newProdAccum()
	nShared, n0 := 0, 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			nShared++
			if a[i].Value == b[j].Value {
				n0++
				pv := st.P[a[i].Item][a[i].Value]
				pop := st.PopOf(int32(a[i].Item), int32(a[i].Value))
				ac.mulSame(p, pv, pop, a1, a2)
				stats.ValuesExamined++
			}
			stats.Computations += 2
			i++
			j++
		}
	}
	cTo, cFrom = ac.logs()
	corr := float64(nShared-n0) * p.LnDiff()
	if p.CoverageWeight > 0 && nShared > 0 {
		corr += p.CoverageWeight * p.CoverageLLR(nShared,
			ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
	}
	return cTo + corr, cFrom + corr
}

// emit fills Result.Pairs (strided across workers, indexed by slot).
func (d *Incremental) emit(res *Result) {
	numPairs := d.pm.Len()
	if d.ReuseResult {
		d.pairsBuf = grow(d.pairsBuf, numPairs)
		d.emitPairs = d.pairsBuf
	} else {
		d.emitPairs = make([]PairResult, numPairs)
	}
	pool.Run(d.workers, d.emitFn)
	res.Pairs = d.emitPairs
	res.Stats.PairsConsidered += int64(numPairs)
}

func np(d *Incremental) int { return d.pm.Len() }
