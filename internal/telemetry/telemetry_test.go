package telemetry

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestExpositionGolden(t *testing.T) {
	reg := New()
	c := reg.Counter("test_requests_total", "Requests handled.")
	c.Add(41)
	c.Inc()
	cv := reg.CounterVec("test_errors_total", "Errors, by kind.", "kind")
	cv.With("io").Add(3)
	cv.With("decode").Inc()
	g := reg.Gauge("test_queue_depth", "Jobs queued.")
	g.Set(7)
	g.Add(-2)
	h := reg.HistogramVec("test_latency_seconds", "Latency.", []float64{0.01, 0.1, 1}, "route")
	h.With("/a").Observe(0.005)
	h.With("/a").Observe(0.05)
	h.With("/a").Observe(5)
	reg.GaugeFunc("test_dyn_lag", "Dynamic lag.", []string{"ds"}, func(emit func(float64, ...string)) {
		emit(12, "alpha")
		emit(0.5, "with\"quote")
	})

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Requests handled.
# TYPE test_requests_total counter
test_requests_total 42
# HELP test_errors_total Errors, by kind.
# TYPE test_errors_total counter
test_errors_total{kind="decode"} 1
test_errors_total{kind="io"} 3
# HELP test_queue_depth Jobs queued.
# TYPE test_queue_depth gauge
test_queue_depth 5
# HELP test_latency_seconds Latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{route="/a",le="0.01"} 1
test_latency_seconds_bucket{route="/a",le="0.1"} 2
test_latency_seconds_bucket{route="/a",le="1"} 2
test_latency_seconds_bucket{route="/a",le="+Inf"} 3
test_latency_seconds_sum{route="/a"} 5.055
test_latency_seconds_count{route="/a"} 3
# HELP test_dyn_lag Dynamic lag.
# TYPE test_dyn_lag gauge
test_dyn_lag{ds="alpha"} 12
test_dyn_lag{ds="with\"quote"} 0.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	reg := New()
	c := reg.Counter("c_total", "c")
	g := reg.Gauge("g", "g")
	h := reg.Histogram("h_seconds", "h", nil)
	cv := reg.CounterVec("cv_total", "cv", "k")
	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", w%3)
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i) / 1000)
				cv.With(key).Inc()
				if i%100 == 0 {
					// Scrape concurrently with updates.
					_ = reg.WritePrometheus(io.Discard)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	var sum uint64
	for i := 0; i < 3; i++ {
		sum += cv.With(fmt.Sprintf("k%d", i)).Value()
	}
	if sum != workers*iters {
		t.Errorf("labelled counters sum = %d, want %d", sum, workers*iters)
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := New()
	reg.Counter("dup_total", "x")
	mustPanic("duplicate", func() { reg.Counter("dup_total", "x") })
	mustPanic("bad name", func() { reg.Counter("bad-name", "x") })
	mustPanic("bad label", func() { reg.CounterVec("ok_total", "x", "bad-label") })
	mustPanic("bad buckets", func() { reg.Histogram("h_seconds", "x", []float64{1, 1}) })
	cv := reg.CounterVec("lv_total", "x", "a", "b")
	mustPanic("label arity", func() { cv.With("only-one") })
}

func TestHandlerAndParse(t *testing.T) {
	reg := New()
	reg.Counter("parse_total", "p").Add(3)
	reg.Histogram("parse_seconds", "p", nil).Observe(0.2)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	lines, err := ParseLines(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no samples parsed")
	}

	resp2, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp2.StatusCode)
	}
}

func TestMiddleware(t *testing.T) {
	reg := New()
	var logBuf strings.Builder
	m := NewHTTPMetrics(reg, "svc", log.New(&logBuf, "", 0))
	inner := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Path {
		case "/v1/datasets/alpha/observations":
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, "ok")
		case "/v1/datasets/alpha/copies":
			if _, ok := w.(http.Flusher); !ok {
				t.Error("middleware dropped http.Flusher")
			}
			fmt.Fprint(w, "body") // implicit 200
		default:
			http.NotFound(w, req)
		}
	})
	srv := httptest.NewServer(m.Wrap(inner))
	defer srv.Close()

	// Request without a trace ID: one is generated and echoed.
	resp, err := http.Post(srv.URL+"/v1/datasets/alpha/observations", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	trace := resp.Header.Get(TraceHeader)
	if len(trace) != 16 {
		t.Errorf("generated trace = %q, want 16 hex chars", trace)
	}

	// Request with a caller-supplied trace ID: echoed verbatim.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/datasets/alpha/copies", nil)
	req.Header.Set(TraceHeader, "deadbeefdeadbeef")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(TraceHeader); got != "deadbeefdeadbeef" {
		t.Errorf("echoed trace = %q", got)
	}

	if got := m.requests.With("/v1/datasets/{name}/observations", http.MethodPost, "202").Value(); got != 1 {
		t.Errorf("requests_total{observations,POST,202} = %d, want 1", got)
	}
	if got := m.requests.With("/v1/datasets/{name}/copies", http.MethodGet, "200").Value(); got != 1 {
		t.Errorf("requests_total{copies,GET,200} = %d, want 1", got)
	}
	if got := m.latency.With("/v1/datasets/{name}/observations", "2xx").Count(); got != 1 {
		t.Errorf("latency count = %d, want 1", got)
	}
	if got := m.inflight.With("/v1/datasets/{name}/observations").Value(); got != 0 {
		t.Errorf("in-flight = %v, want 0", got)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, " 202 2B ") || !strings.Contains(logs, "trace="+trace) {
		t.Errorf("access log missing status/bytes/trace:\n%s", logs)
	}
	if !strings.Contains(logs, " 200 4B ") || !strings.Contains(logs, "trace=deadbeefdeadbeef") {
		t.Errorf("access log missing second request:\n%s", logs)
	}
}

func TestNormalizeRoute(t *testing.T) {
	cases := map[string]string{
		"/healthz":                        "/healthz",
		"/metrics":                        "/metrics",
		"/v1/datasets":                    "/v1/datasets",
		"/v1/datasets/alpha":              "/v1/datasets/{name}",
		"/v1/datasets/alpha/observations": "/v1/datasets/{name}/observations",
		"/v1/datasets/alpha/copies":       "/v1/datasets/{name}/copies",
		"/v1/datasets/a-b.c/quiesce":      "/v1/datasets/{name}/quiesce",
		"/v1/datasets/alpha/export":       "/v1/datasets/{name}/export",
		"/v1/datasets/alpha/bogus":        "other",
		"/v1/datasets/":                   "other",
		"/":                               "other",
		"/favicon.ico":                    "other",
	}
	for path, want := range cases {
		if got := NormalizeRoute(path); got != want {
			t.Errorf("NormalizeRoute(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestNormalizeMethod(t *testing.T) {
	cases := map[string]string{
		"GET":       "GET",
		"POST":      "POST",
		"PUT":       "PUT",
		"DELETE":    "DELETE",
		"HEAD":      "HEAD",
		"OPTIONS":   "OPTIONS",
		"PATCH":     "other", // not routed by either daemon
		"get":       "other", // methods are case-sensitive tokens
		"EVILPROBE": "other",
		"":          "other",
	}
	for method, want := range cases {
		if got := NormalizeMethod(method); got != want {
			t.Errorf("NormalizeMethod(%q) = %q, want %q", method, got, want)
		}
	}
}

func TestStatusClassAndItoa(t *testing.T) {
	for code, want := range map[int]string{102: "1xx", 200: "2xx", 301: "3xx", 404: "4xx", 500: "5xx"} {
		if got := statusClass(code); got != want {
			t.Errorf("statusClass(%d) = %q, want %q", code, got, want)
		}
	}
	for _, code := range []int{200, 202, 204, 301, 404, 409, 413, 418, 429, 500, 503} {
		if got, want := itoa(code), fmt.Sprint(code); got != want {
			t.Errorf("itoa(%d) = %q, want %q", code, got, want)
		}
	}
}

// ParseLines is exercised here against a live scrape in
// TestHandlerAndParse; this covers its error paths.
func TestParseLinesErrors(t *testing.T) {
	if _, err := ParseLines(strings.NewReader("no_value_here\n")); err == nil {
		t.Error("expected error for sample without value")
	}
	if _, err := ParseLines(strings.NewReader("x{unclosed=\"v\" 1\n")); err == nil {
		t.Error("expected error for unclosed label braces")
	}
	if _, err := ParseLines(strings.NewReader("x 1\ny notanumber\n")); err == nil {
		t.Error("expected error for non-numeric value")
	}
	samples, err := ParseLines(strings.NewReader(
		"# HELP x y\nx{a=\"v\\\"q\",b=\"w\"} 2\nh_bucket{le=\"+Inf\"} 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 || samples[0].Labels["a"] != `v"q` || samples[1].Value != 7 {
		t.Errorf("parsed samples = %+v", samples)
	}
}
