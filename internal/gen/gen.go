// Package gen builds synthetic workloads that stand in for the paper's
// four crawled data sets (Table V): the AbeBooks crawls Book-CS and
// Book-full, and the Deep-Web stock crawls Stock-1day and Stock-2wk. The
// originals are not redistributable, so the generator reproduces their
// structural statistics — source counts, item counts, coverage skew,
// conflicting values per item — and plants copier cliques with a known
// selectivity, which additionally yields an exact gold standard of copying
// pairs (the paper can only compare against PAIRWISE). All randomness is
// seeded, so every dataset is reproducible bit for bit.
package gen

import (
	"fmt"
	"math/rand"

	"copydetect/internal/dataset"
)

// CopyGroup plants one copier clique: one independently generated origin
// source and Copiers sources that copy from it.
type CopyGroup struct {
	// Copiers is the number of copying sources in the group.
	Copiers int
	// Selectivity is the probability a copier copies the origin's value on
	// a covered item (the model's s).
	Selectivity float64
	// CopierAccuracy is the accuracy of a copier on the items where it
	// does not copy.
	CopierAccuracy float64
	// OverlapWithOrigin is the fraction of a copier's coverage drawn from
	// the origin's covered items (the rest is random).
	OverlapWithOrigin float64
	// MinCoverageItems floors the coverage of the group's sources so the
	// clique shares enough items to be statistically detectable even when
	// the surrounding dataset is scaled down. Zero selects 12.
	MinCoverageItems int
}

func (g CopyGroup) minCoverage() int {
	if g.MinCoverageItems == 0 {
		return 12
	}
	return g.MinCoverageItems
}

// Config parameterizes a synthetic workload.
type Config struct {
	Name       string
	NumSources int
	NumItems   int
	// NFalse is the number of false values in each item's domain.
	NFalse int
	// CoverageMin/CoverageMax bound per-source coverage fractions for
	// high-coverage sources.
	CoverageMin, CoverageMax float64
	// LowCoverageFraction of sources instead get a coverage fraction in
	// [LowCoverageMin, LowCoverageMax] — the Book-like skew where 85% of
	// sources cover at most 1% of the items.
	LowCoverageFraction            float64
	LowCoverageMin, LowCoverageMax float64
	// AccuracyMin/AccuracyMax bound independent sources' accuracies.
	AccuracyMin, AccuracyMax float64
	// HighAccuracyFraction of sources are authoritative with accuracy in
	// [0.9, 0.99].
	HighAccuracyFraction float64
	// Groups plants copier cliques.
	Groups []CopyGroup
	// GoldItems caps how many items keep a recorded gold truth (the paper
	// verifies 100–200 items); 0 keeps all.
	GoldItems int
	// Seed drives all randomness.
	Seed int64
}

// Planted records the ground truth of the generated copying relationships.
type Planted struct {
	// Pairs maps packed (copier, origin) source pairs (smaller id first)
	// to true.
	Pairs map[int64]bool
	// Closure additionally contains every copier–copier pair within a
	// clique: sources that copy the same origin share its values, so a
	// detector that flags them as dependent is not wrong, merely
	// transitive. Quality scoring uses Pairs for recall (every direct
	// copy must be found) and Closure for precision (an intra-clique
	// pair is not a false positive).
	Closure map[int64]bool
	// TrueAccuracy[s] is the accuracy parameter each source was generated
	// with.
	TrueAccuracy []float64
}

// PairPlanted reports whether the unordered pair {a, b} was planted.
func (pl *Planted) PairPlanted(a, b dataset.SourceID) bool {
	if a > b {
		a, b = b, a
	}
	return pl.Pairs[int64(a)<<32|int64(uint32(b))]
}

// PairInClique reports whether a and b are members of the same planted
// clique (the closure of PairPlanted over shared origins).
func (pl *Planted) PairInClique(a, b dataset.SourceID) bool {
	if a > b {
		a, b = b, a
	}
	return pl.Closure[int64(a)<<32|int64(uint32(b))]
}

// Generate materializes the workload.
func Generate(cfg Config) (*dataset.Dataset, *Planted, error) {
	if cfg.NumSources < 2 || cfg.NumItems < 1 {
		return nil, nil, fmt.Errorf("gen: need at least 2 sources and 1 item, got %d/%d", cfg.NumSources, cfg.NumItems)
	}
	if cfg.NFalse < 2 {
		return nil, nil, fmt.Errorf("gen: NFalse must be >= 2, got %d", cfg.NFalse)
	}
	groupSources := 0
	for _, g := range cfg.Groups {
		groupSources += 1 + g.Copiers
	}
	if groupSources > cfg.NumSources {
		return nil, nil, fmt.Errorf("gen: copy groups need %d sources, only %d available", groupSources, cfg.NumSources)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	ni, ns := cfg.NumItems, cfg.NumSources
	pl := &Planted{
		Pairs:        make(map[int64]bool),
		Closure:      make(map[int64]bool),
		TrueAccuracy: make([]float64, ns),
	}

	// Truth: value 0 of every item is the true value; false values get ids
	// on demand. Value labels: "t" and "f1".."fN".
	values := make([][]dataset.ValueID, ns) // values[s][d-index into coverage]? use full row per source
	coverage := make([][]dataset.ItemID, ns)

	// Assign accuracies and coverage fractions.
	accuracy := make([]float64, ns)
	covFrac := make([]float64, ns)
	for s := 0; s < ns; s++ {
		if rng.Float64() < cfg.HighAccuracyFraction {
			accuracy[s] = 0.9 + 0.09*rng.Float64()
		} else {
			accuracy[s] = cfg.AccuracyMin + (cfg.AccuracyMax-cfg.AccuracyMin)*rng.Float64()
		}
		if rng.Float64() < cfg.LowCoverageFraction {
			covFrac[s] = cfg.LowCoverageMin + (cfg.LowCoverageMax-cfg.LowCoverageMin)*rng.Float64()
		} else {
			covFrac[s] = cfg.CoverageMin + (cfg.CoverageMax-cfg.CoverageMin)*rng.Float64()
		}
	}

	// Lay out copy groups over the first sources: origin then its copiers.
	type roleT struct {
		origin dataset.SourceID // < 0 for independent sources
		sel    float64
	}
	roles := make([]roleT, ns)
	for s := range roles {
		roles[s].origin = -1
	}
	next := 0
	for _, g := range cfg.Groups {
		origin := next
		next++
		// Floor the clique's coverage so it stays detectable at any scale.
		minFrac := float64(g.minCoverage()) / float64(ni)
		if covFrac[origin] < minFrac {
			covFrac[origin] = minFrac
		}
		members := []dataset.SourceID{dataset.SourceID(origin)}
		for c := 0; c < g.Copiers; c++ {
			s := next
			next++
			roles[s].origin = dataset.SourceID(origin)
			roles[s].sel = g.Selectivity
			accuracy[s] = g.CopierAccuracy
			if covFrac[s] < minFrac {
				covFrac[s] = minFrac
			}
			a, b := dataset.SourceID(s), dataset.SourceID(origin)
			if a > b {
				a, b = b, a
			}
			pl.Pairs[int64(a)<<32|int64(uint32(b))] = true
			members = append(members, dataset.SourceID(s))
		}
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				a, b := members[i], members[j]
				if a > b {
					a, b = b, a
				}
				pl.Closure[int64(a)<<32|int64(uint32(b))] = true
			}
		}
	}
	copy(pl.TrueAccuracy, accuracy)

	// Generate independent sources (and origins) first.
	sampleCoverage := func(frac float64) []dataset.ItemID {
		want := int(frac * float64(ni))
		if want < 1 {
			want = 1
		}
		if want > ni {
			want = ni
		}
		perm := rng.Perm(ni)
		items := make([]dataset.ItemID, want)
		for i := 0; i < want; i++ {
			items[i] = dataset.ItemID(perm[i])
		}
		return items
	}
	drawValue := func(acc float64) dataset.ValueID {
		if rng.Float64() < acc {
			return 0 // true value
		}
		return dataset.ValueID(1 + rng.Intn(cfg.NFalse))
	}
	for s := 0; s < ns; s++ {
		if roles[s].origin >= 0 {
			continue
		}
		coverage[s] = sampleCoverage(covFrac[s])
		values[s] = make([]dataset.ValueID, len(coverage[s]))
		for i := range coverage[s] {
			values[s][i] = drawValue(accuracy[s])
		}
	}

	// Generate copiers against their origins.
	gi := 0
	for _, g := range cfg.Groups {
		origin := gi
		gi++
		origCov := coverage[origin]
		origVal := map[dataset.ItemID]dataset.ValueID{}
		for i, d := range origCov {
			origVal[d] = values[origin][i]
		}
		for c := 0; c < g.Copiers; c++ {
			s := gi
			gi++
			want := int(covFrac[s] * float64(ni))
			if want < 1 {
				want = 1
			}
			fromOrigin := int(g.OverlapWithOrigin * float64(want))
			if fromOrigin > len(origCov) {
				fromOrigin = len(origCov)
			}
			seen := make(map[dataset.ItemID]bool, want)
			var cov []dataset.ItemID
			operm := rng.Perm(len(origCov))
			for i := 0; i < fromOrigin; i++ {
				d := origCov[operm[i]]
				cov = append(cov, d)
				seen[d] = true
			}
			for len(cov) < want {
				d := dataset.ItemID(rng.Intn(ni))
				if !seen[d] {
					seen[d] = true
					cov = append(cov, d)
				}
			}
			coverage[s] = cov
			values[s] = make([]dataset.ValueID, len(cov))
			for i, d := range cov {
				if ov, ok := origVal[d]; ok && rng.Float64() < roles[s].sel {
					values[s][i] = ov // copied
				} else {
					values[s][i] = drawValue(accuracy[s])
				}
			}
		}
	}

	ds := assemble(cfg, coverage, values, rng)
	return ds, pl, nil
}

// assemble converts the raw coverage/value matrices into a Dataset with
// interned labels, dense per-item value ids, and the gold standard.
func assemble(cfg Config, coverage [][]dataset.ItemID, values [][]dataset.ValueID, rng *rand.Rand) *dataset.Dataset {
	ni, ns := cfg.NumItems, cfg.NumSources
	ds := &dataset.Dataset{
		SourceNames: make([]string, ns),
		ItemNames:   make([]string, ni),
		ValueNames:  make([][]string, ni),
		BySource:    make([][]dataset.Obs, ns),
		ByItem:      make([][]dataset.SV, ni),
		Truth:       make([]dataset.ValueID, ni),
		Generation:  dataset.FreshGeneration(),
	}
	for s := 0; s < ns; s++ {
		ds.SourceNames[s] = fmt.Sprintf("S%04d", s)
	}
	// Remap the generator's global value ids (0 = truth, 1..N = false) to
	// dense per-item ids in observation order. The true value is
	// pre-registered as value 0 of every item even when no source provides
	// it, so it is part of the item's domain and fusion can (fail to) find
	// it — exactly like a verified gold value nobody reports.
	remap := make([]map[dataset.ValueID]dataset.ValueID, ni)
	for d := 0; d < ni; d++ {
		ds.ItemNames[d] = fmt.Sprintf("D%06d", d)
		ds.Truth[d] = 0
		ds.ValueNames[d] = []string{"t"}
		remap[d] = map[dataset.ValueID]dataset.ValueID{0: 0}
	}
	valueLabel := func(v dataset.ValueID) string {
		if v == 0 {
			return "t"
		}
		return fmt.Sprintf("f%d", v)
	}
	for s := 0; s < ns; s++ {
		for i, d := range coverage[s] {
			gv := values[s][i]
			dv, ok := remap[d][gv]
			if !ok {
				dv = dataset.ValueID(len(ds.ValueNames[d]))
				remap[d][gv] = dv
				ds.ValueNames[d] = append(ds.ValueNames[d], valueLabel(gv))
			}
			ds.BySource[s] = append(ds.BySource[s], dataset.Obs{Item: d, Value: dv})
			ds.ByItem[d] = append(ds.ByItem[d], dataset.SV{Source: dataset.SourceID(s), Value: dv})
		}
	}
	for s := range ds.BySource {
		obs := ds.BySource[s]
		for i := 1; i < len(obs); i++ {
			o := obs[i]
			j := i
			for ; j > 0 && obs[j-1].Item > o.Item; j-- {
				obs[j] = obs[j-1]
			}
			obs[j] = o
		}
	}
	// ByItem is already in source order because sources were emitted in
	// increasing id order.

	// Optionally keep only a sampled gold standard, like the paper's
	// 100–200 verified items.
	if cfg.GoldItems > 0 && cfg.GoldItems < ni {
		keep := make(map[int]bool, cfg.GoldItems)
		for _, d := range rng.Perm(ni)[:cfg.GoldItems] {
			keep[d] = true
		}
		for d := range ds.Truth {
			if !keep[d] {
				ds.Truth[d] = dataset.NoValue
			}
		}
	}
	return ds
}
