package experiments

import (
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/index"
	"copydetect/internal/metrics"
	"copydetect/internal/nra"
	"copydetect/internal/sample"
)

// Table5 prints the dataset overview (paper Table V): source/item counts,
// distinct values and inverted-index entries per workload.
func (e *Env) Table5() error {
	e.printf("Table V — overview of data sets (scale %.2f, paper sizes in [brackets])\n", e.Scale)
	e.printf("%-12s %8s %9s %13s %15s\n", "Dataset", "#Srcs", "#Items", "#Dist-values", "#Index-entries")
	paper := map[string][4]int{
		"book-cs":    {894, 2528, 14930, 7398},
		"stock-1day": {55, 16000, 104611, 40834},
		"book-full":  {3182, 147431, 162961, 48683},
		"stock-2wk":  {55, 160000, 915118, 405537},
	}
	for _, id := range DatasetIDs {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		st := dataset.Summarize(inst.DS)
		// Index entries at the initial voting state.
		bst := initialState(inst.DS, e.Params)
		idx := index.Build(inst.DS, bst, e.Params, index.ByContribution, nil)
		p := paper[id]
		e.printf("%-12s %8d %9d %13d %15d   [%d, %d, %d, %d]\n",
			id, st.Sources, st.Items, st.DistinctValues, idx.NumEntries(),
			p[0], p[1], p[2], p[3])
	}
	e.printf("\n")
	return nil
}

// initialState reproduces the driver's round-0 state: uniform accuracy,
// value probabilities from undiscounted voting.
func initialState(ds *dataset.Dataset, p bayes.Params) *bayes.State {
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.P = fusion.ValueProbs(ds, st, p, nil)
	st.A = fusion.Accuracies(ds, st.P)
	return st
}

// methodRun is one method's outcome on one dataset.
type methodRun struct {
	name string
	out  *fusion.Outcome
	// time is total copy-detection time (index build + detection, all
	// rounds), the quantity of Table VII.
	time time.Duration
}

// runAllMethods executes the seven methods of Tables VI/VII on a dataset,
// caching the outcome so Table VI and Table VII share one run. The
// PAIRWISE reference comes first.
func (e *Env) runAllMethods(inst *Instance) ([]methodRun, error) {
	if runs, ok := e.methodRuns[inst.ID]; ok {
		return runs, nil
	}
	ds := inst.DS
	p := e.Params
	rate := itemSampleRate(inst.ID)

	// SCALESAMPLE's realized rates calibrate SAMPLE2 (paper Section VI-A:
	// 65% of cells on Book-CS, 24% on Book-full). On the Stock data sets
	// the paper's SAMPLE2 is identical to SAMPLE1.
	ss := sample.ScaleSample(ds, rate, 4, e.rng(100))
	s1 := sample.ByItem(ds, rate, e.rng(101))
	s2 := s1
	if inst.ID == "book-cs" || inst.ID == "book-full" {
		s2 = sample.ByCell(ds, ss.CellRate, e.rng(102))
	}

	var runs []methodRun
	add := func(name string, out *fusion.Outcome) {
		runs = append(runs, methodRun{name: name, out: out, time: out.TotalStats.Total()})
	}

	add("PAIRWISE", e.run(ds, &core.Pairwise{Params: p, Workers: e.Workers}))
	add("SAMPLE1", e.runSampled(ds, s1.Dataset, s1.ItemMap, &core.Pairwise{Params: p, Workers: e.Workers}))
	add("SAMPLE2", e.runSampled(ds, s2.Dataset, s2.ItemMap, &core.Pairwise{Params: p, Workers: e.Workers}))
	add("INDEX", e.run(ds, &core.Index{Params: p, Opts: e.opts()}))
	add("HYBRID", e.run(ds, &core.Hybrid{Params: p, Opts: e.opts()}))
	add("INCREMENTAL", e.run(ds, &core.Incremental{Params: p, Opts: e.opts()}))
	add("SCALESAMPLE", e.runSampled(ds, ss.Dataset, ss.ItemMap, &core.Incremental{Params: p, Opts: e.opts()}))
	e.methodRuns[inst.ID] = runs
	return runs, nil
}

// Table6 prints copy-detection and truth-discovery quality of all methods
// against PAIRWISE on the two small datasets (paper Table VI).
func (e *Env) Table6() error {
	e.printf("Table VI — copy-detection and truth-discovery quality vs PAIRWISE\n")
	for _, id := range []string{"book-cs", "stock-1day"} {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		runs, err := e.runAllMethods(inst)
		if err != nil {
			return err
		}
		ref := runs[0]
		refSet := ref.out.Copy.CopyingSet()
		refAcc, _ := metrics.FusionAccuracy(inst.DS, ref.out.Truth)
		e.printf("\n%s (PAIRWISE fusion accuracy %.3f, %d copying pairs, planted-pair F1 %.2f)\n",
			id, refAcc, len(refSet), metrics.SetPRF(refSet, inst.Planted.Pairs).F1)
		e.printf("%-12s %6s %6s %6s   %6s %11s %9s\n",
			"Method", "Prec", "Rec", "F-msr", "Accu", "Fusion-diff", "Accu-var")
		for _, r := range runs[1:] {
			prf := metrics.SetPRF(r.out.Copy.CopyingSet(), refSet)
			acc, _ := metrics.FusionAccuracy(inst.DS, r.out.Truth)
			diff := metrics.FusionDifference(r.out.Truth, ref.out.Truth)
			av := metrics.AccuracyVariance(r.out.State.A, ref.out.State.A)
			e.printf("%-12s %6.3f %6.3f %6.3f   %6.3f %11.3f %9.3f\n",
				r.name, prf.Precision, prf.Recall, prf.F1, acc, diff, av)
		}
	}
	e.printf("\nPaper reference (Table VI): INDEX achieves F=1 with zero fusion\n")
	e.printf("difference; HYBRID/INCREMENTAL stay above F≈.97; naive sampling\n")
	e.printf("collapses on Book-CS (SAMPLE1 F=.264) but not on Stock.\n\n")
	return nil
}

// Table7 prints copy-detection execution times and the improvement chain
// (paper Table VII).
func (e *Env) Table7() error {
	e.printf("Table VII — execution time (index build + detection, all rounds)\n")
	paperImpr := map[string]string{
		"SAMPLE1":     "95-99% vs PAIRWISE",
		"SAMPLE2":     "90-98% vs PAIRWISE",
		"INDEX":       "83-99.6% vs PAIRWISE",
		"HYBRID":      "2-37% vs INDEX",
		"INCREMENTAL": "56-83% vs HYBRID",
		"SCALESAMPLE": "25-99% vs INCREMENTAL",
	}
	for _, id := range DatasetIDs {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		runs, err := e.runAllMethods(inst)
		if err != nil {
			return err
		}
		e.printf("\n%s\n%-12s %12s %14s   %s\n", id, "Method", "Time", "Improvement", "(paper)")
		times := make(map[string]time.Duration, len(runs))
		for _, r := range runs {
			times[r.name] = r.time
		}
		baseOf := map[string]string{
			"SAMPLE1": "PAIRWISE", "SAMPLE2": "PAIRWISE", "INDEX": "PAIRWISE",
			"HYBRID": "INDEX", "INCREMENTAL": "HYBRID", "SCALESAMPLE": "INCREMENTAL",
		}
		for _, r := range runs {
			if r.name == "PAIRWISE" {
				e.printf("%-12s %12v %14s\n", r.name, r.time.Round(time.Millisecond), "-")
				continue
			}
			base := times[baseOf[r.name]]
			impr := 0.0
			if base > 0 {
				impr = 1 - float64(r.time)/float64(base)
			}
			e.printf("%-12s %12v %13.1f%%   [%s]\n",
				r.name, r.time.Round(time.Millisecond), impr*100, paperImpr[r.name])
		}
		if times["PAIRWISE"] > 0 {
			total := 1 - float64(times["SCALESAMPLE"])/float64(times["PAIRWISE"])
			e.printf("%-12s %12s %13.2f%%   [99.8-99.97%%]\n", "Total", "", total*100)
		}
	}
	e.printf("\n")
	return nil
}

// Table8 prints the per-round INCREMENTAL/HYBRID time ratio and the pass
// termination distribution (paper Table VIII).
func (e *Env) Table8() error {
	e.printf("Table VIII — INCREMENTAL vs HYBRID per round; pass terminations\n")
	for _, id := range DatasetIDs {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		p := e.Params
		hyb := e.run(inst.DS, &core.Hybrid{Params: p, Opts: e.opts()})
		inc := &core.Incremental{Params: p, Opts: e.opts()}
		incOut := e.run(inst.DS, inc)

		e.printf("\n%s (HYBRID rounds %d, INCREMENTAL rounds %d)\n", id, hyb.Rounds, incOut.Rounds)
		rounds := incOut.Rounds
		if hyb.Rounds < rounds {
			rounds = hyb.Rounds
		}
		for r := 3; r <= rounds; r++ {
			ht := hyb.RoundStats[r-1].Total()
			it := incOut.RoundStats[r-1].Total()
			ratio := 0.0
			if ht > 0 {
				ratio = float64(it) / float64(ht)
			}
			e.printf("  Round %d: %6.1f%%   [paper: 3-14%%]\n", r, ratio*100)
		}
		var p1, p2, p3, total int
		for _, ps := range inc.History {
			p1 += ps.SettledPass1
			p2 += ps.SettledPass2
			p3 += ps.SettledPass3
		}
		total = p1 + p2 + p3
		if total > 0 {
			e.printf("  Pass 1: %5.1f%%  Pass 2: %5.1f%%  Pass 3: %5.1f%%   [paper: ≥86%%, ≤4%%, ≤10%%]\n",
				100*float64(p1)/float64(total), 100*float64(p2)/float64(total), 100*float64(p3)/float64(total))
		}
	}
	e.printf("\n")
	return nil
}

// Table9 compares the three sampling strategies at matched rates (paper
// Table IX), scoring copy-detection quality against full-data INDEX.
func (e *Env) Table9() error {
	e.printf("Table IX — sampling strategies at matched rates (vs full-data INDEX)\n")
	paper := map[string][3]string{
		"book-cs":    {".92/.84/.88", ".85/.56/.67", ".89/.70/.78"},
		"stock-1day": {".98/.94/.96", ".98/.94/.96", ".98/.94/.96"},
	}
	for _, id := range []string{"book-cs", "stock-1day"} {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		p := e.Params
		ref := e.run(inst.DS, &core.Index{Params: p, Opts: e.opts()})
		refSet := ref.Copy.CopyingSet()

		rate := itemSampleRate(inst.ID)
		ss := sample.ScaleSample(inst.DS, rate, 4, e.rng(100))
		byItem := sample.ByItem(inst.DS, ss.ItemRate, e.rng(104))
		byCell := sample.ByCell(inst.DS, ss.CellRate, e.rng(105))

		e.printf("\n%s (rates: items %.0f%%, cells %.0f%%)\n", id, ss.ItemRate*100, ss.CellRate*100)
		e.printf("%-12s %6s %6s %6s   %s\n", "Method", "Prec", "Rec", "F-msr", "(paper P/R/F)")
		for i, m := range []struct {
			name string
			s    sample.Result
		}{
			{"SCALESAMPLE", ss},
			{"BYITEM", byItem},
			{"BYCELL", byCell},
		} {
			out := e.runSampled(inst.DS, m.s.Dataset, m.s.ItemMap, &core.Incremental{Params: p, Opts: e.opts()})
			prf := metrics.SetPRF(out.Copy.CopyingSet(), refSet)
			e.printf("%-12s %6.3f %6.3f %6.3f   [%s]\n", m.name, prf.Precision, prf.Recall, prf.F1, paper[id][i])
		}
	}
	e.printf("\n")
	return nil
}

// Table10 compares our methods' execution time against generating the NRA
// input lists (paper Table X). FAGININPUT must be regenerated every round
// (no incremental variant exists), so its total is the sum over rounds.
func (e *Env) Table10() error {
	e.printf("Table X — execution-time ratio w.r.t. FAGININPUT\n")
	e.printf("%-12s %14s %14s   %s\n", "Dataset", "HYBRID", "INCREMENTAL", "(paper: .67-.99, .19-.30)")
	for _, id := range DatasetIDs {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		p := e.Params

		var faginTotal time.Duration
		var faginRounds int
		tf := e.newTruthFinder()
		tf.OnRound = func(round int, detDS *dataset.Dataset, detSt *bayes.State, res *core.Result) {
			in := nra.BuildInput(detDS, detSt, p)
			faginTotal += in.BuildTime
			faginRounds++
		}
		hyb := tf.Run(inst.DS, &core.Hybrid{Params: p, Opts: e.opts()})
		inc := e.run(inst.DS, &core.Incremental{Params: p, Opts: e.opts()})

		hybPerRound := float64(hyb.TotalStats.Total()) / float64(hyb.Rounds)
		faginPerRound := float64(faginTotal) / float64(faginRounds)
		r1 := hybPerRound / faginPerRound
		r2 := float64(inc.TotalStats.Total()) / float64(faginTotal)
		e.printf("%-12s %14.2f %14.2f\n", id, r1, r2)
	}
	e.printf("\n")
	return nil
}
