// Package metriclabelfix is the metriclabel fixture: constant and
// normalized label traffic next to unbounded values and non-constant
// keys.
package metriclabelfix

import "copydetect/internal/telemetry"

// record exercises the key and value rules.
func record(reg *telemetry.Registry, path, raw string) {
	dynamicKey := raw
	v := reg.CounterVec("fix_requests_total", "Fixture counter.",
		"route", dynamicKey)
	const method = "GET"
	algo := "HYBRID"
	if raw != "" {
		algo = "INCREMENTAL"
	}
	v.With(telemetry.NormalizeRoute(path), method).Inc()
	v.With(raw, algo).Inc()
	reg.GaugeFunc("fix_gauge", "Fixture gauge.", []string{"shard"},
		func(emit func(v float64, labelValues ...string)) {
			emit(1, raw)
		})
}
