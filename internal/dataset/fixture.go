package dataset

// Motivating builds the motivating example of the paper (Table I):
// 10 sources S0..S9 describing the capitals of 5 US states. False values
// appear in italic font in the paper; here the gold standard records the
// true capital of every state. Copying was planted between S2–S4 and
// between S6–S8.
//
// The paper's accompanying accuracy column (0.99, 0.99, 0.2, ...) is
// returned alongside so tests can reproduce the worked examples (Ex. 2.1,
// 3.3, 3.6, 4.2, 5.1) without running truth discovery first.
func Motivating() (*Dataset, []float64) {
	b := NewBuilder()
	// Intern sources and items in display order so ids match the paper.
	for _, s := range []string{"S0", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9"} {
		b.Source(s)
	}
	for _, d := range []string{"NJ", "AZ", "NY", "FL", "TX"} {
		b.Item(d)
	}

	add := func(src string, vals [5]string) {
		items := [5]string{"NJ", "AZ", "NY", "FL", "TX"}
		for i, v := range vals {
			if v != "" {
				b.Add(src, items[i], v)
			}
		}
	}
	add("S0", [5]string{"Trenton", "Phoenix", "Albany", "", "Austin"})
	add("S1", [5]string{"Trenton", "Phoenix", "Albany", "Orlando", "Austin"})
	add("S2", [5]string{"Atlantic", "Phoenix", "NewYork", "Miami", "Houston"})
	add("S3", [5]string{"Atlantic", "Phoenix", "NewYork", "Miami", "Arlington"})
	add("S4", [5]string{"Atlantic", "Phoenix", "NewYork", "Orlando", "Houston"})
	add("S5", [5]string{"Union", "Tempe", "Albany", "Orlando", "Austin"})
	add("S6", [5]string{"", "Tempe", "Buffalo", "PalmBay", "Dallas"})
	add("S7", [5]string{"Trenton", "", "Buffalo", "PalmBay", "Dallas"})
	add("S8", [5]string{"Trenton", "Tucson", "Buffalo", "PalmBay", "Dallas"})
	add("S9", [5]string{"Trenton", "", "", "Orlando", "Austin"})

	// Gold standard. Note FL's true capital in the example is Orlando and
	// TX's is Austin (the paper marks Miami/Houston/Dallas etc. as false).
	b.SetTruth("NJ", "Trenton")
	b.SetTruth("AZ", "Phoenix")
	b.SetTruth("NY", "Albany")
	b.SetTruth("FL", "Orlando")
	b.SetTruth("TX", "Austin")

	accu := []float64{0.99, 0.99, 0.2, 0.2, 0.4, 0.6, 0.01, 0.25, 0.2, 0.99}
	return b.Build(), accu
}

// MotivatingValueProbs returns the converged value probabilities the paper
// uses when presenting the inverted index of Table III, as a map from
// "item.value" labels to probabilities. Values not listed (provided by a
// single source, hence never indexed) are absent.
func MotivatingValueProbs() map[string]float64 {
	return map[string]float64{
		"AZ.Tempe":    0.02,
		"NJ.Atlantic": 0.01,
		"TX.Houston":  0.02,
		"NY.NewYork":  0.02,
		"TX.Dallas":   0.02,
		"NY.Buffalo":  0.04,
		"FL.PalmBay":  0.05,
		"FL.Miami":    0.03,
		"AZ.Phoenix":  0.95,
		"NJ.Trenton":  0.97,
		"FL.Orlando":  0.92,
		"NY.Albany":   0.94,
		"TX.Austin":   0.96,
	}
}

// LookupValue resolves an "item.value" label (as used by the paper, e.g.
// "NJ.Atlantic") to ids in ds, or (-1, -1) if not present.
func LookupValue(ds *Dataset, label string) (ItemID, ValueID) {
	for d, dn := range ds.ItemNames {
		prefix := dn + "."
		if len(label) > len(prefix) && label[:len(prefix)] == prefix {
			want := label[len(prefix):]
			for v, vn := range ds.ValueNames[d] {
				if vn == want {
					return ItemID(d), ValueID(v)
				}
			}
		}
	}
	return -1, -1
}
