package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
)

// randomInstance builds a random dataset plus a random-but-valid
// statistical state for property tests.
func randomInstance(rng *rand.Rand, ns, ni int) (*dataset.Dataset, *bayes.State) {
	b := dataset.NewBuilder()
	itemNames := make([]string, ni)
	for d := 0; d < ni; d++ {
		itemNames[d] = "D" + itoa(d)
		b.Item(itemNames[d])
	}
	for s := 0; s < ns; s++ {
		name := "S" + itoa(s)
		b.Source(name)
		cov := 0.2 + 0.8*rng.Float64()
		for d := 0; d < ni; d++ {
			if rng.Float64() < cov {
				b.Add(name, itemNames[d], "v"+itoa(rng.Intn(4)))
			}
		}
	}
	ds := b.Build()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	for s := range st.A {
		st.A[s] = 0.05 + 0.9*rng.Float64()
	}
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.01 + 0.98*rng.Float64()
		}
	}
	return ds, st
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestPropertyIndexEqualsPairwise is Proposition 3.5 as a property test:
// INDEX obtains the same binary results as PAIRWISE on arbitrary data.
func TestPropertyIndexEqualsPairwise(t *testing.T) {
	p := bayes.DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 4+rng.Intn(10), 8+rng.Intn(40))
		ires := (&Index{Params: p}).DetectRound(ds, st, 1)
		pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
		ia, pa := ires.CopyingSet(), pres.CopyingSet()
		if len(ia) != len(pa) {
			return false
		}
		for k := range ia {
			if !pa[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIndexScoresExact: for every pair INDEX instantiates, its
// scores equal PAIRWISE's exactly (the index never loses evidence).
func TestPropertyIndexScoresExact(t *testing.T) {
	p := bayes.DefaultParams()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 4+rng.Intn(8), 8+rng.Intn(30))
		ires := (&Index{Params: p}).DetectRound(ds, st, 1)
		pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
		pmap := make(map[int64]PairResult, len(pres.Pairs))
		for _, pr := range pres.Pairs {
			pmap[int64(pr.S1)<<32|int64(uint32(pr.S2))] = pr
		}
		for _, ip := range ires.Pairs {
			pp, ok := pmap[int64(ip.S1)<<32|int64(uint32(ip.S2))]
			if !ok {
				return false
			}
			if abs(ip.CTo-pp.CTo) > 1e-9 || abs(ip.CFrom-pp.CFrom) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestPropertyBoundSoundness: BOUND's early decisions must agree with the
// exact INDEX decisions whenever the h estimate is exact or conservative.
// BOUND is allowed to differ slightly (the paper observes it "rarely"
// does), so this asserts a high agreement rate rather than equality, and
// additionally asserts that copying decisions driven by Cmin — which is
// always sound — never contradict INDEX.
func TestPropertyBoundSoundness(t *testing.T) {
	p := bayes.DefaultParams()
	disagreements, totalPairs := 0, 0
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 4+rng.Intn(10), 10+rng.Intn(50))
		bres := (&Bound{Params: p}).DetectRound(ds, st, 1)
		ires := (&Index{Params: p}).DetectRound(ds, st, 1)
		iset := ires.CopyingSet()
		for _, pr := range bres.Pairs {
			totalPairs++
			k := int64(pr.S1)<<32 | int64(uint32(pr.S2))
			if pr.Copying != iset[k] {
				disagreements++
				// A copying conclusion from Cmin ≥ θcp is provably sound:
				// Cmin lower-bounds the exact score.
				if pr.Copying && !iset[k] {
					t.Fatalf("seed %d: BOUND concluded copying for (S%d,S%d) but exact scores disagree — Cmin is unsound",
						seed, pr.S1, pr.S2)
				}
			}
		}
	}
	if totalPairs == 0 {
		t.Fatal("property test generated no pairs")
	}
	if rate := float64(disagreements) / float64(totalPairs); rate > 0.02 {
		t.Errorf("BOUND disagreed with INDEX on %.2f%% of pairs (>2%%)", rate*100)
	}
}

// TestPropertyHybridMatchesComponents: HYBRID's decisions coincide with
// BOUND+'s for large-overlap pairs and INDEX's for small-overlap pairs.
func TestPropertyHybridMatchesComponents(t *testing.T) {
	p := bayes.DefaultParams()
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 6, 60)
		h := (&Hybrid{Params: p}).DetectRound(ds, st, 1)
		bp := (&BoundPlus{Params: p}).DetectRound(ds, st, 1)
		i := (&Index{Params: p}).DetectRound(ds, st, 1)
		iset := i.CopyingSet()
		bpset := bp.CopyingSet()
		for _, pr := range h.Pairs {
			k := int64(pr.S1)<<32 | int64(uint32(pr.S2))
			l := ds.SharedItems(pr.S1, pr.S2)
			if l <= 16 {
				if pr.Copying != iset[k] {
					t.Errorf("seed %d: HYBRID small-overlap pair (S%d,S%d) differs from INDEX", seed, pr.S1, pr.S2)
				}
			} else if pr.Copying != bpset[k] {
				t.Errorf("seed %d: HYBRID large-overlap pair (S%d,S%d) differs from BOUND+", seed, pr.S1, pr.S2)
			}
		}
	}
}

// TestPropertyParallelIndexDeterministic: any worker count produces the
// sequential result.
func TestPropertyParallelIndexDeterministic(t *testing.T) {
	p := bayes.DefaultParams()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 8, 40)
		seq := (&Index{Params: p}).DetectRound(ds, st, 1)
		for _, w := range []int{2, 3, 4} {
			par := (&Index{Params: p, Opts: Options{Workers: w}}).DetectRound(ds, st, 1)
			if len(par.Pairs) != len(seq.Pairs) {
				t.Fatalf("seed %d workers %d: pair counts differ", seed, w)
			}
			sset, pset := seq.CopyingSet(), par.CopyingSet()
			for k := range sset {
				if !pset[k] {
					t.Fatalf("seed %d workers %d: decisions differ", seed, w)
				}
			}
		}
	}
}

// TestPropertyParallelPairwiseDeterministic: sharded PAIRWISE matches the
// sequential baseline.
func TestPropertyParallelPairwiseDeterministic(t *testing.T) {
	p := bayes.DefaultParams()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 9, 30)
		seq := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
		par := (&Pairwise{Params: p, Workers: 4}).DetectRound(ds, st, 1)
		if seq.Stats.Computations != par.Stats.Computations {
			t.Fatalf("seed %d: computation counts differ", seed)
		}
		sset, pset := seq.CopyingSet(), par.CopyingSet()
		if len(sset) != len(pset) {
			t.Fatalf("seed %d: copying sets differ in size", seed)
		}
		for k := range sset {
			if !pset[k] {
				t.Fatalf("seed %d: copying sets differ", seed)
			}
		}
	}
}

// TestEmptyAndDegenerateDatasets: detectors must not panic on datasets
// with no shared values, single sources with observations, or empty items.
func TestEmptyAndDegenerateDatasets(t *testing.T) {
	p := bayes.DefaultParams()
	b := dataset.NewBuilder()
	b.Add("S0", "D0", "x")
	b.Add("S1", "D1", "y")
	ds := b.Build()
	st := bayes.NewState([]int{1, 1}, 2, 0.8)
	for _, det := range []Detector{
		&Pairwise{Params: p},
		&Index{Params: p},
		&Bound{Params: p},
		&BoundPlus{Params: p},
		&Hybrid{Params: p},
	} {
		res := det.DetectRound(ds, st, 1)
		if len(res.CopyingPairs()) != 0 {
			t.Errorf("%s found copying with zero shared items", det.Name())
		}
	}
}
