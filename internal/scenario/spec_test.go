package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDurationUnmarshal(t *testing.T) {
	cases := []struct {
		raw  string
		want time.Duration
		err  bool
	}{
		{`"5s"`, 5 * time.Second, false},
		{`"250ms"`, 250 * time.Millisecond, false},
		{`1500000000`, 1500 * time.Millisecond, false}, // raw nanoseconds
		{`"bogus"`, 0, true},
		{`true`, 0, true},
	}
	for _, c := range cases {
		var d Duration
		err := json.Unmarshal([]byte(c.raw), &d)
		if c.err != (err != nil) {
			t.Errorf("unmarshal %s: err=%v, want err=%t", c.raw, err, c.err)
		}
		if err == nil && d.Duration != c.want {
			t.Errorf("unmarshal %s: got %v, want %v", c.raw, d.Duration, c.want)
		}
	}
}

func TestDurationRoundTrip(t *testing.T) {
	d := Duration{1500 * time.Millisecond}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(raw) != `"1.5s"` {
		t.Fatalf("marshal: got %s", raw)
	}
	var back Duration
	if err := json.Unmarshal(raw, &back); err != nil || back != d {
		t.Fatalf("round trip: got %v, %v", back, err)
	}
}

// validSpec returns a minimal spec that passes validation; tests mutate
// one field at a time to probe each check.
func validSpec() *Spec {
	return &Spec{
		Name: "t",
		Datasets: []DatasetGroup{
			{Preset: "stock-1day", Scale: 0.02, Seed: 1},
		},
		Phases: []Phase{
			{Name: "p", Duration: Duration{time.Second}, Rate: 5},
		},
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantErr string // substring; "" = valid
	}{
		{"valid", func(s *Spec) {}, ""},
		{"no name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"no datasets", func(s *Spec) { s.Datasets = nil }, "dataset group"},
		{"bad preset", func(s *Spec) { s.Datasets[0].Preset = "nope" }, "unknown preset"},
		{"negative scale", func(s *Spec) { s.Datasets[0].Scale = -1 }, "scale"},
		{"churn one wave", func(s *Spec) {
			s.Datasets[0].Churn = &Churn{Waves: 1, LateFraction: 0.5}
		}, "waves >= 2"},
		{"churn bad fraction", func(s *Spec) {
			s.Datasets[0].Churn = &Churn{Waves: 3, LateFraction: 1.5}
		}, "lateFraction"},
		{"negative zipf", func(s *Spec) { s.Zipf = -1 }, "zipf"},
		{"no phases", func(s *Spec) { s.Phases = nil }, "phase is required"},
		{"unnamed phase", func(s *Spec) { s.Phases[0].Name = "" }, "name is required"},
		{"zero duration", func(s *Spec) { s.Phases[0].Duration = Duration{} }, "duration"},
		{"huge rate", func(s *Spec) { s.Phases[0].Rate = 2e6 }, "rate"},
		{"burst without rate", func(s *Spec) {
			s.Phases[0].Rate = 0
			s.Phases[0].Burst = &Burst{Every: Duration{time.Second}, Length: Duration{time.Second / 2}, Factor: 2}
		}, "burst needs a base rate"},
		{"burst longer than window", func(s *Spec) {
			s.Phases[0].Burst = &Burst{Every: Duration{time.Second}, Length: Duration{2 * time.Second}, Factor: 2}
		}, "length <= every"},
		{"unknown action", func(s *Spec) {
			s.Phases[0].Inject = []InjectStep{{Action: "reboot-universe"}}
		}, "unknown action"},
		{"inject past phase end", func(s *Spec) {
			s.Phases[0].Inject = []InjectStep{{At: Duration{time.Minute}, Action: "kill-backend"}}
		}, "outside the phase"},
		{"exec without cmd", func(s *Spec) {
			s.Phases[0].Inject = []InjectStep{{Action: "exec"}}
		}, "exec needs cmd"},
		{"slo bad precision", func(s *Spec) {
			s.SLO = &SLO{MinPrecision: 1.5}
		}, "precision/recall"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(s)
			err := s.Validate()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("valid spec rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, c.wantErr)
			}
		})
	}
}

// TestCommittedExampleParses pins the example scenario shipped in the
// repo (and run by the cluster e2e) to the current schema.
func TestCommittedExampleParses(t *testing.T) {
	s, err := Load("../../examples/scenarios/soak-burst-kill.json")
	if err != nil {
		t.Fatalf("load committed example: %v", err)
	}
	if s.TotalDatasets() != 4 {
		t.Fatalf("example declares %d datasets, want 4", s.TotalDatasets())
	}
	if len(s.Phases) != 4 {
		t.Fatalf("example has %d phases, want 4", len(s.Phases))
	}
	if s.SLO == nil || !s.SLO.Zero5xxDuringKill || s.SLO.MinPrecision < 0.9 || s.SLO.MinRecall < 0.8 {
		t.Fatalf("example SLO lost its gates: %+v", s.SLO)
	}
	var killPhases int
	for _, p := range s.Phases {
		if len(p.Inject) > 0 {
			killPhases++
		}
	}
	if killPhases != 1 {
		t.Fatalf("example has %d inject phases, want 1", killPhases)
	}
}

func TestTotalDatasetsCountsGroups(t *testing.T) {
	s := validSpec()
	s.Datasets = append(s.Datasets, DatasetGroup{Count: 3, Preset: "book-cs", Seed: 9})
	if got := s.TotalDatasets(); got != 4 {
		t.Fatalf("TotalDatasets = %d, want 4 (implicit 1 + explicit 3)", got)
	}
}
