package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoContracts runs the full analyzer suite over every module
// package, so plain tier-1 `go test ./...` fails when a change violates
// a contract the analyzers police — no separate lint invocation needed.
// Fixture packages under testdata/ violate on purpose and are excluded.
func TestRepoContracts(t *testing.T) {
	prog := loadShared(t)
	diags, err := Run(prog, DefaultConfig(), Analyzers())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	var bad []string
	for _, d := range diags {
		if strings.Contains(filepath.ToSlash(d.Pos.Filename), "/testdata/") ||
			strings.HasPrefix(filepath.ToSlash(d.Pos.Filename), "testdata/") {
			continue
		}
		bad = append(bad, d.String())
	}
	if len(bad) > 0 {
		t.Errorf("contract violations (fix the code or annotate with a justification):\n  %s",
			strings.Join(bad, "\n  "))
	}
}
