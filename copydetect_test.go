package copydetect

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetectQuickstart(t *testing.T) {
	ds, _ := MotivatingExample()
	params := Params{Alpha: 0.1, S: 0.8, N: 50}
	out := Detect(ds, AlgorithmHybrid, params)
	if out.Rounds == 0 {
		t.Fatal("no rounds executed")
	}
	if len(out.Copy.CopyingPairs()) < 6 {
		t.Errorf("expected the two copier cliques (6 pairs), got %d", len(out.Copy.CopyingPairs()))
	}
	for d, want := range ds.Truth {
		if out.Truth[d] != want {
			t.Errorf("truth of %s wrong", ds.ItemNames[d])
		}
	}
}

func TestAlgorithmsAllConstructible(t *testing.T) {
	p := DefaultParams()
	algos := []Algorithm{
		AlgorithmPairwise, AlgorithmIndex, AlgorithmBound,
		AlgorithmBoundPlus, AlgorithmHybrid, AlgorithmIncremental,
	}
	wantNames := []string{"PAIRWISE", "INDEX", "BOUND", "BOUND+", "HYBRID", "INCREMENTAL"}
	for i, a := range algos {
		det := NewDetector(a, p, Options{})
		if det.Name() != wantNames[i] {
			t.Errorf("detector %v name = %q, want %q", a, det.Name(), wantNames[i])
		}
		if a.String() != wantNames[i] {
			t.Errorf("Algorithm(%d).String() = %q", int(a), a.String())
		}
	}
}

func TestNewDetectorPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown algorithm")
		}
	}()
	NewDetector(Algorithm(99), DefaultParams(), Options{})
}

func TestBuilderRoundTripThroughAPI(t *testing.T) {
	b := NewBuilder()
	b.Add("A", "item1", "x")
	b.Add("B", "item1", "x")
	b.Add("A", "item2", "y")
	b.SetTruth("item1", "x")
	ds := b.Build()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumSources() != 2 || ds2.NumItems() != 2 {
		t.Errorf("round trip lost data: %s", Summarize(ds2))
	}
	var csvBuf bytes.Buffer
	if err := WriteCSV(&csvBuf, ds); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCSV(strings.NewReader(csvBuf.String())); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAndSampleThroughAPI(t *testing.T) {
	cfg := ScaleConfig(Stock1DayConfig(3), 0.02)
	ds, planted, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(planted.Pairs) == 0 {
		t.Fatal("no planted pairs")
	}
	s := ScaleSample(ds, 0.2, 4, 1)
	if s.Dataset.NumItems() == 0 {
		t.Fatal("empty sample")
	}
	out := DetectSampled(ds, s, AlgorithmIncremental, DefaultParams())
	if out.Rounds == 0 {
		t.Fatal("sampled detection did not run")
	}
	full := Detect(ds, AlgorithmIndex, DefaultParams())
	prf := ComparePairs(out.Copy, full.Copy)
	if prf.F1 < 0 || prf.F1 > 1 {
		t.Errorf("nonsense F1 %v", prf.F1)
	}
}

func TestMetricsThroughAPI(t *testing.T) {
	ds, _ := MotivatingExample()
	out := Detect(ds, AlgorithmIndex, Params{Alpha: 0.1, S: 0.8, N: 50})
	acc, gold := FusionAccuracy(ds, out.Truth)
	if gold != 5 || acc != 1 {
		t.Errorf("fusion accuracy %v on %d gold items, want 1.0 on 5", acc, gold)
	}
	if d := FusionDifference(out.Truth, out.Truth); d != 0 {
		t.Errorf("self fusion difference %v", d)
	}
	if v := AccuracyVariance(out.State.A, out.State.A); v != 0 {
		t.Errorf("self accuracy variance %v", v)
	}
}

func TestConfigPresetsThroughAPI(t *testing.T) {
	for _, cfg := range []GenConfig{
		BookCSConfig(1), BookFullConfig(1), Stock1DayConfig(1), Stock2WkConfig(1),
	} {
		if cfg.NumSources == 0 || cfg.NumItems == 0 {
			t.Errorf("preset %s empty", cfg.Name)
		}
		small := ScaleConfig(cfg, 0.01)
		if small.NumItems == 0 {
			t.Errorf("scaled %s empty", cfg.Name)
		}
	}
}
