// Tests for the replication primitives the cluster layer builds on:
// sequenced (idempotent) appends, the export/import anti-entropy pair,
// and the durability of imports across restarts.
package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

func batchN(prefix string, n int) []dataset.Record {
	recs := make([]dataset.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, dataset.Record{
			Source: prefix + "-s" + strconv.Itoa(i%3),
			Item:   "d" + strconv.Itoa(i%4),
			Value:  "v" + strconv.Itoa(i%2),
		})
	}
	return recs
}

func TestAppendSeqIdempotent(t *testing.T) {
	reg := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	m, err := reg.Create("seq", DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Sequence 1 applies.
	v, total, applied, err := m.AppendSeq(batchN("a", 6), nil, 1)
	if err != nil || !applied || v != 1 || total != 6 {
		t.Fatalf("seq 1: v=%d total=%d applied=%v err=%v", v, total, applied, err)
	}
	// Re-delivery of sequence 1 is acknowledged but not re-applied.
	v, total, applied, err = m.AppendSeq(batchN("a", 6), nil, 1)
	if err != nil || applied || v != 1 || total != 6 {
		t.Fatalf("seq 1 replay: v=%d total=%d applied=%v err=%v, want duplicate no-op", v, total, applied, err)
	}
	// A gap (seq 3 while at version 1) is refused.
	if _, _, _, err := m.AppendSeq(batchN("c", 3), nil, 3); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Fatalf("seq 3 at version 1: err=%v, want ErrSeqGap", err)
	}
	// The next in-order sequence applies; an unconditioned append still
	// works and advances the sequence space.
	if _, _, applied, err := m.AppendSeq(batchN("b", 3), nil, 2); err != nil || !applied {
		t.Fatalf("seq 2: applied=%v err=%v", applied, err)
	}
	if v, _, err := m.Append(batchN("d", 3), nil); err != nil || v != 3 {
		t.Fatalf("unconditioned append: v=%d err=%v", v, err)
	}
	// Replays of any covered sequence stay no-ops afterwards.
	if _, _, applied, err := m.AppendSeq(batchN("b", 3), nil, 2); err != nil || applied {
		t.Fatalf("seq 2 replay after version 3: applied=%v err=%v", applied, err)
	}
	if got := m.Info().Observations; got != 12 {
		t.Fatalf("observations = %d, want 12 (each batch applied exactly once)", got)
	}
}

// TestExportImportReproducesStateBitExactly: importing an export blob
// reproduces the source's Builder interning exactly — the two sides'
// exports stay byte-identical even after both apply further appends.
func TestExportImportReproducesStateBitExactly(t *testing.T) {
	regA := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer regA.Close()
	regB := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer regB.Close()

	a, err := regA.Create("ds", DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Append(batchN("x", 9), []dataset.Record{{Item: "d0", Value: "v0"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := regA.Quiesce(context.Background(), "ds"); err != nil {
		t.Fatal(err)
	}
	blob, err := a.Export()
	if err != nil {
		t.Fatal(err)
	}

	applied, version, err := regB.Import("ds", blob)
	if err != nil || !applied || version != 1 {
		t.Fatalf("import: applied=%v version=%d err=%v", applied, version, err)
	}
	b, ok := regB.Get("ds")
	if !ok {
		t.Fatal("import did not create the dataset")
	}

	// Same further appends on both sides → byte-identical exports.
	late := batchN("late", 5)
	if _, _, err := a.Append(late, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Append(late, nil); err != nil {
		t.Fatal(err)
	}
	blobA, errA := a.Export()
	blobB, errB := b.Export()
	if errA != nil || errB != nil {
		t.Fatalf("exports: %v / %v", errA, errB)
	}
	if !bytes.Equal(blobA, blobB) {
		t.Fatal("exports diverge after identical appends on an imported replica")
	}

	// A stale (already-covered) import is acknowledged without effect.
	applied, version, err = regB.Import("ds", blob)
	if err != nil || applied || version != 2 {
		t.Fatalf("stale import: applied=%v version=%d err=%v, want no-op at version 2", applied, version, err)
	}
}

func TestImportSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	src := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer src.Close()
	m, err := src.Create("imported", DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Append(batchN("w", 8), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Quiesce(context.Background(), "imported"); err != nil {
		t.Fatal(err)
	}
	blob, err := m.Export()
	if err != nil {
		t.Fatal(err)
	}
	wantRounds := m.Info().Round
	if wantRounds == 0 {
		t.Fatal("source published no round before export")
	}

	reg := openDurable(t, dir, 1)
	if applied, version, err := reg.Import("imported", blob); err != nil || !applied || version != 1 {
		t.Fatalf("import: applied=%v version=%d err=%v", applied, version, err)
	}
	reg.Close()

	reg = openDurable(t, dir, 1)
	defer reg.Close()
	m2, ok := reg.Get("imported")
	if !ok {
		t.Fatal("imported dataset lost across restart")
	}
	inf := m2.Info()
	if inf.Version != 1 || inf.Observations != 8 {
		t.Fatalf("recovered import: %+v, want version 1 with 8 observations", inf)
	}
	// The imported rounds counter survives too: the recovered dataset
	// keeps refining with INCREMENTAL instead of restarting on HYBRID.
	pub, err := reg.Quiesce(context.Background(), "imported")
	if err != nil || pub == nil {
		t.Fatalf("quiesce after restart: pub=%v err=%v", pub, err)
	}
	if pub.Round <= wantRounds || pub.Algorithm != "INCREMENTAL" {
		t.Fatalf("recovered import published round %d %q, want > %d and INCREMENTAL", pub.Round, pub.Algorithm, wantRounds)
	}
}

// TestHTTPSeqExportImport drives the wire protocol: sequenced appends
// via the X-Copydetect-Seq header, the 409 on a gap, and the
// export/import round trip between two handlers.
func TestHTTPSeqExportImport(t *testing.T) {
	regA := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer regA.Close()
	regB := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer regB.Close()
	srvA := httptest.NewServer(NewHandler(regA))
	defer srvA.Close()
	srvB := httptest.NewServer(NewHandler(regB))
	defer srvB.Close()

	doSeq := func(base string, seq uint64, body string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+"/v1/datasets/h/observations", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if seq > 0 {
			req.Header.Set(SeqHeader, strconv.FormatUint(seq, 10))
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(raw)
	}

	req, _ := http.NewRequest(http.MethodPut, srvA.URL+"/v1/datasets/h", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %v %v", resp, err)
	}
	batch := `{"observations":[{"s":"s1","d":"d1","v":"a"},{"s":"s2","d":"d1","v":"a"},{"s":"s3","d":"d1","v":"b"}]}`
	if resp, body := doSeq(srvA.URL, 1, batch); resp.StatusCode != http.StatusAccepted || strings.Contains(body, `"duplicate"`) {
		t.Fatalf("seq 1: %d %s", resp.StatusCode, body)
	}
	if resp, body := doSeq(srvA.URL, 1, batch); resp.StatusCode != http.StatusAccepted || !strings.Contains(body, `"duplicate": true`) {
		t.Fatalf("seq 1 replay: %d %s, want 202 with duplicate marker", resp.StatusCode, body)
	}
	if resp, body := doSeq(srvA.URL, 5, batch); resp.StatusCode != http.StatusConflict {
		t.Fatalf("seq 5 gap: %d %s, want 409", resp.StatusCode, body)
	}
	if resp, body := doSeq(srvA.URL, 0, "not json"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: %d %s", resp.StatusCode, body)
	}
	badSeq, _ := http.NewRequest(http.MethodPost, srvA.URL+"/v1/datasets/h/observations", strings.NewReader(batch))
	badSeq.Header.Set(SeqHeader, "zero")
	if resp, err := http.DefaultClient.Do(badSeq); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-numeric seq: %v %v, want 400", resp, err)
	}

	// Export from A, import into B, and the mirrored stream continues.
	resp, err := http.Get(srvA.URL + "/v1/datasets/h/export")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %v %v", resp, err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/octet-stream" {
		t.Errorf("export content type %q", got)
	}
	iresp, err := http.Post(srvB.URL+"/v1/datasets/h/import", "application/octet-stream", bytes.NewReader(blob))
	if err != nil || iresp.StatusCode != http.StatusOK {
		t.Fatalf("import: %v %v", iresp, err)
	}
	iresp.Body.Close()
	batch2 := `{"observations":[{"s":"s4","d":"d2","v":"a"},{"s":"s5","d":"d2","v":"a"},{"s":"s6","d":"d2","v":"b"}]}`
	if resp, body := doSeq(srvB.URL, 2, batch2); resp.StatusCode != http.StatusAccepted || strings.Contains(body, `"duplicate"`) {
		t.Fatalf("seq 2 on imported replica: %d %s", resp.StatusCode, body)
	}
	mB, _ := regB.Get("h")
	if inf := mB.Info(); inf.Version != 2 || inf.Observations != 6 {
		t.Fatalf("replica after import + seq 2: %+v", inf)
	}

	// Export of a missing dataset and a garbage import both fail cleanly.
	if resp, err := http.Get(srvA.URL + "/v1/datasets/nope/export"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export missing: %v %v", resp, err)
	}
	if resp, err := http.Post(srvB.URL+"/v1/datasets/h/import", "application/octet-stream", strings.NewReader("garbage")); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage import: %v %v", resp, err)
	}
}
