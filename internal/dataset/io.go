package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Record is one named observation — the unit of streaming appends
// (Builder.AddRecords) and of the copydetectd wire format.
type Record struct {
	Source string `json:"s"`
	Item   string `json:"d"`
	Value  string `json:"v"`
}

// Records flattens ds into named observation records, ordered by source
// id and then by item id. The order is deterministic, so replaying the
// records into a fresh Builder (all at once or batch by batch) rebuilds a
// dataset with identical id assignment.
func Records(ds *Dataset) []Record {
	recs := make([]Record, 0, ds.NumObservations())
	for s, obs := range ds.BySource {
		for _, o := range obs {
			recs = append(recs, Record{
				Source: ds.SourceNames[s],
				Item:   ds.ItemNames[o.Item],
				Value:  ds.ValueNames[o.Item][o.Value],
			})
		}
	}
	return recs
}

// TruthRecords flattens the gold standard of ds into (item, value)
// records, with Source left empty. It returns nil when ds has no truth.
func TruthRecords(ds *Dataset) []Record {
	if ds.Truth == nil {
		return nil
	}
	var recs []Record
	for d, v := range ds.Truth {
		if v != NoValue {
			recs = append(recs, Record{Item: ds.ItemNames[d], Value: ds.ValueNames[d][v]})
		}
	}
	return recs
}

// jsonDataset is the on-disk JSON form of a dataset: a compact,
// human-inspectable triple store plus optional truth.
type jsonDataset struct {
	Sources      []string          `json:"sources"`
	Items        []string          `json:"items"`
	Observations []jsonObs         `json:"observations"`
	Truth        map[string]string `json:"truth,omitempty"`
}

type jsonObs struct {
	Source string `json:"s"`
	Item   string `json:"d"`
	Value  string `json:"v"`
}

// WriteJSON serializes the dataset as JSON.
func WriteJSON(w io.Writer, ds *Dataset) error {
	jd := jsonDataset{
		Sources: ds.SourceNames,
		Items:   ds.ItemNames,
	}
	for s, obs := range ds.BySource {
		for _, o := range obs {
			jd.Observations = append(jd.Observations, jsonObs{
				Source: ds.SourceNames[s],
				Item:   ds.ItemNames[o.Item],
				Value:  ds.ValueNames[o.Item][o.Value],
			})
		}
	}
	if ds.Truth != nil {
		jd.Truth = make(map[string]string)
		for d, v := range ds.Truth {
			if v != NoValue {
				jd.Truth[ds.ItemNames[d]] = ds.ValueNames[d][v]
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jd)
}

// ReadJSON parses a dataset previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var jd jsonDataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&jd); err != nil {
		return nil, fmt.Errorf("dataset: decode json: %w", err)
	}
	b := NewBuilder()
	for _, s := range jd.Sources {
		b.Source(s)
	}
	for _, d := range jd.Items {
		b.Item(d)
	}
	for _, o := range jd.Observations {
		b.Add(o.Source, o.Item, o.Value)
	}
	//copydetect:orderinvariant truth entries land in the builder's keyed map; Build sorts before emitting
	for d, v := range jd.Truth {
		b.SetTruth(d, v)
	}
	ds := b.Build()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ReadCSV parses a tabular dataset in the layout of the paper's Table I:
// the first row is a header "source,item1,item2,...", each following row is
// a source name and its value for each item; empty cells are missing
// values. Rows whose source name is "TRUTH" (case-insensitive) define the
// gold standard instead of a source.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = -1
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read csv header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("dataset: csv header needs a source column and at least one item column")
	}
	items := header[1:]
	b := NewBuilder()
	for _, d := range items {
		b.Item(strings.TrimSpace(d))
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		name := strings.TrimSpace(rec[0])
		if name == "" {
			return nil, fmt.Errorf("dataset: csv line %d: empty source name", line)
		}
		isTruth := strings.EqualFold(name, "TRUTH")
		for i := 1; i < len(rec) && i <= len(items); i++ {
			v := strings.TrimSpace(rec[i])
			if v == "" {
				continue
			}
			if isTruth {
				b.SetTruth(items[i-1], v)
			} else {
				b.Add(name, items[i-1], v)
			}
		}
	}
	ds := b.Build()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV serializes the dataset in the tabular layout read by ReadCSV.
// Datasets with very many items produce very wide files; it is intended
// for small fixtures and debugging.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string{"source"}, ds.ItemNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(header))
	for s := range ds.SourceNames {
		row[0] = ds.SourceNames[s]
		for i := range ds.ItemNames {
			row[i+1] = ""
		}
		for _, o := range ds.BySource[s] {
			row[o.Item+1] = ds.ValueNames[o.Item][o.Value]
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	if ds.Truth != nil {
		row[0] = "TRUTH"
		for i := range ds.ItemNames {
			row[i+1] = ""
		}
		for d, v := range ds.Truth {
			if v != NoValue {
				row[d+1] = ds.ValueNames[d][v]
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
