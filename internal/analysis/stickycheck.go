package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// StickyCheck enforces the binio sticky-error discipline. The codec
// types latch their first error and return zero values forever after,
// which keeps decode loops branch-free — but only if someone eventually
// looks at Err(). errcheck cannot see this: the decode methods return
// plain values, so nothing syntactically "ignores an error".
//
// Per function, for each *binio.Reader / *binio.Writer:
//
//   - a function that CREATES the codec (binio.NewReader/NewWriter),
//     decodes through it, never lets it escape, and never calls Err()
//     has dropped the error on the floor — every decoded value is
//     untrustworthy;
//   - in a function that does call Err(), a decode lexically after the
//     last Err() call (and after the last escape) produces a value no
//     subsequent check covers.
//
// A codec received as a parameter and never Err()-checked is the
// delegation pattern (the caller owns the final check) and is fine.
var StickyCheck = &Analyzer{
	Name: "stickycheck",
	Doc:  "binio sticky-error codecs must have Err observed after the last decode",
	Run:  runStickyCheck,
}

func runStickyCheck(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if pkg.Path == pass.Config.BinioPkg {
			continue // the codec's own internals manage the latch directly
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkSticky(pass, pkg, fd)
			}
		}
	}
	return nil
}

type codecUse struct {
	created    bool
	lastDecode token.Pos
	lastErr    token.Pos
	lastEscape token.Pos
	decodes    int
}

func checkSticky(pass *Pass, pkg *Package, fd *ast.FuncDecl) {
	binioPkg := pass.Config.BinioPkg
	parents := parentMap(fd)
	uses := make(map[*types.Var]*codecUse)

	track := func(obj types.Object, created bool) *codecUse {
		v, ok := obj.(*types.Var)
		if !ok || !isBinioCodec(v.Type(), binioPkg) {
			return nil
		}
		cu := uses[v]
		if cu == nil {
			cu = &codecUse{}
			uses[v] = cu
		}
		cu.created = cu.created || created
		return cu
	}

	// Parameters (and named results) are tracked as non-created.
	if scope, ok := pkg.Info.Scopes[fd.Type]; ok {
		for _, name := range scope.Names() {
			track(scope.Lookup(name), false)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := pkg.Info.Defs[id]
				if obj == nil {
					obj = pkg.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				track(obj, isCodecCtor(pkg.Info, n.Rhs[i], binioPkg))
			}
		case *ast.Ident:
			obj := pkg.Info.Uses[n]
			v, ok := obj.(*types.Var)
			if !ok || !isBinioCodec(v.Type(), binioPkg) {
				return true
			}
			cu := uses[v]
			if cu == nil {
				return true
			}
			// Receiver of a method call, or some other (escaping) use?
			if sel, ok := parents[n].(*ast.SelectorExpr); ok && sel.X == n {
				if call, ok := parents[sel].(*ast.CallExpr); ok && call.Fun == sel {
					if sel.Sel.Name == "Err" {
						if n.Pos() > cu.lastErr {
							cu.lastErr = n.Pos()
						}
					} else {
						cu.decodes++
						if n.Pos() > cu.lastDecode {
							cu.lastDecode = n.Pos()
						}
					}
					return true
				}
			}
			if as, ok := parents[n].(*ast.AssignStmt); ok {
				// The binding itself (LHS) is not a use.
				for _, lhs := range as.Lhs {
					if lhs == ast.Expr(n) {
						return true
					}
				}
			}
			if n.Pos() > cu.lastEscape {
				cu.lastEscape = n.Pos()
			}
		}
		return true
	})

	for _, cu := range uses {
		switch {
		case cu.decodes == 0:
			// Nothing decoded here; nothing to check.
		case cu.lastErr == token.NoPos:
			if cu.created && cu.lastEscape == token.NoPos {
				pass.Report(cu.lastDecode, "codec created here is decoded but its sticky Err is never checked; every decoded value may be garbage")
			}
			// Parameter or escaping codec with no Err call: the caller
			// owns the final check (DecodeStats-style delegation).
		case cu.lastDecode > cu.lastErr && cu.lastDecode > cu.lastEscape:
			pass.Report(cu.lastDecode, "decode after the last Err check; this value is used with no subsequent sticky-error check")
		}
	}
}

// isBinioCodec reports whether t is (a pointer to) a named type of the
// binio package.
func isBinioCodec(t types.Type, binioPkg string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == binioPkg &&
		(obj.Name() == "Reader" || obj.Name() == "Writer")
}

// isCodecCtor reports whether e is a call to binio.NewReader/NewWriter.
func isCodecCtor(info *types.Info, e ast.Expr, binioPkg string) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(info, call)
	return isPkgFunc(fn, binioPkg, "NewReader") || isPkgFunc(fn, binioPkg, "NewWriter")
}
