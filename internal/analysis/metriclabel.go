package analysis

import (
	"go/ast"
	"go/types"
)

// MetricLabel bounds metric cardinality statically. The telemetry
// registry interns one child per label tuple forever, so an unbounded
// label value — a raw request method, a dataset name, a URL — is a
// slow memory leak and a scrape-size explosion in production.
//
// Two rules over users of Config.TelemetryPkg:
//
//   - label KEYS at family registration (CounterVec, GaugeVec,
//     HistogramVec, and the labels slice of GaugeFunc/CounterFunc) must
//     be string constants;
//   - label VALUES passed to Vec.With must be provably bounded: a
//     constant, a call to one of Config.Normalizers (the
//     bounded-cardinality value producers), or a variable whose every
//     assignment is itself bounded.
//
// GaugeFunc/CounterFunc emit callbacks run at scrape time over
// registry-owned state and are exempt from the value rule.
var MetricLabel = &Analyzer{
	Name: "metriclabel",
	Doc:  "constant metric label keys; bounded label values through the normalizers",
	Run:  runMetricLabel,
}

func runMetricLabel(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Config.TelemetryPkg {
					return true
				}
				sig := fn.Type().(*types.Signature)
				if sig.Recv() == nil {
					return true
				}
				switch fn.Name() {
				case "CounterVec", "GaugeVec", "HistogramVec":
					checkLabelKeys(pass, pkg, call, sig)
				case "GaugeFunc", "CounterFunc":
					checkLabelSlice(pass, pkg, call)
				case "With":
					checkLabelValues(pass, pkg, file, call)
				}
				return true
			})
		}
	}
	return nil
}

// checkLabelKeys verifies the variadic label-key tail of a Vec
// registration is all string constants.
func checkLabelKeys(pass *Pass, pkg *Package, call *ast.CallExpr, sig *types.Signature) {
	fixed := sig.Params().Len() - 1 // index of the variadic labels param
	if call.Ellipsis.IsValid() {
		pass.Report(call.Pos(), "label keys passed as a slice cannot be verified constant; spell them out at the registration site")
		return
	}
	for i := fixed; i < len(call.Args); i++ {
		if pkg.Info.Types[call.Args[i]].Value == nil {
			pass.Report(call.Args[i].Pos(), "metric label key must be a string constant")
		}
	}
}

// checkLabelSlice verifies the []string labels argument of a Func
// collector registration is nil or a literal of constants.
func checkLabelSlice(pass *Pass, pkg *Package, call *ast.CallExpr) {
	if len(call.Args) < 3 {
		return
	}
	arg := unparen(call.Args[2])
	if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
		return
	}
	lit, ok := arg.(*ast.CompositeLit)
	if !ok {
		pass.Report(arg.Pos(), "labels of a Func collector must be a nil or literal []string of constants")
		return
	}
	for _, elt := range lit.Elts {
		if pkg.Info.Types[elt].Value == nil {
			pass.Report(elt.Pos(), "metric label key must be a string constant")
		}
	}
}

// checkLabelValues verifies every Vec.With argument is bounded.
func checkLabelValues(pass *Pass, pkg *Package, file *ast.File, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if !boundedValue(pass, pkg, file, arg, 4) {
			pass.Report(arg.Pos(), "label value %s is not provably bounded; pass a constant or route it through a bounded normalizer (%s)",
				exprString(arg), normalizerNames(pass.Config))
		}
	}
}

// boundedValue reports whether e can only ever evaluate to a bounded
// set of strings: a constant, a normalizer call, or a variable whose
// assignments are all bounded.
func boundedValue(pass *Pass, pkg *Package, file *ast.File, e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	e = unparen(e)
	if pkg.Info.Types[e].Value != nil {
		return true
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		fn := calleeFunc(pkg.Info, e)
		return fn != nil && pass.Config.normalizer(fn.FullName())
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			return false
		}
		if _, ok := obj.(*types.Const); ok {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return false
		}
		return boundedVar(pass, pkg, file, v, depth-1)
	}
	return false
}

// boundedVar scans the file for every assignment to v and requires each
// bound value to be bounded. A variable with no visible assignment (a
// parameter, a field) is unbounded.
func boundedVar(pass *Pass, pkg *Package, file *ast.File, v *types.Var, depth int) bool {
	found, bounded := false, true
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				// Multi-value assignment from a call: opaque.
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && identIs(pkg.Info, id, v) {
						found, bounded = true, false
					}
				}
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !identIs(pkg.Info, id, v) {
					continue
				}
				found = true
				if !boundedValue(pass, pkg, file, n.Rhs[i], depth) {
					bounded = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if !identIs(pkg.Info, name, v) {
					continue
				}
				found = true
				if i >= len(n.Values) || !boundedValue(pass, pkg, file, n.Values[i], depth) {
					bounded = false
				}
			}
		case *ast.RangeStmt:
			for _, x := range []ast.Expr{n.Key, n.Value} {
				if id, ok := x.(*ast.Ident); ok && identIs(pkg.Info, id, v) {
					found, bounded = true, false
				}
			}
		}
		return true
	})
	return found && bounded
}

func identIs(info *types.Info, id *ast.Ident, v *types.Var) bool {
	return info.Defs[id] == v || info.Uses[id] == v
}

func exprString(e ast.Expr) string { return types.ExprString(e) }

func normalizerNames(cfg *Config) string {
	short := make([]byte, 0, 64)
	for i, n := range cfg.Normalizers {
		if i > 0 {
			short = append(short, ", "...)
		}
		if j := lastDot(n); j >= 0 {
			n = n[j+1:]
		}
		short = append(short, n...)
	}
	return string(short)
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
