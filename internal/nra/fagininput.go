package nra

import (
	"sort"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
)

// Input is the NRA input for copy detection as sketched at the end of
// Section II-B: for every indexed value, a list of the contribution scores
// of the source pairs sharing it, sorted decreasingly; plus one list with
// the accumulated different-value scores per pair. The aggregate score of
// a pair over all lists equals its full C→.
type Input struct {
	// ValueLists[i] corresponds to the i-th index entry.
	ValueLists []List
	// DiffList holds, per pair that provides different values somewhere,
	// the accumulated negative score (l−n)·ln(1−s).
	DiffList List
	// BuildTime is what Table X charges FAGININPUT for.
	BuildTime time.Duration
}

// PairID packs a source pair into an NRA object id.
func PairID(a, b dataset.SourceID) int64 { return int64(index.MakePairKey(a, b)) }

// BuildInput generates the NRA input lists for the C→ direction: it must
// compute the contribution score of every shared value for every pair of
// providers and sort each list — the cost the paper measures against its
// own algorithms in Table X.
func BuildInput(ds *dataset.Dataset, st *bayes.State, p bayes.Params) *Input {
	start := time.Now()
	idx := index.Build(ds, st, p, index.ByContribution, nil)
	pm := index.NewPairMap(ds.NumSources())
	// Register every pair that co-occurs anywhere (NRA has no tail-set
	// pruning; that is part of why it loses).
	for i := range idx.Entries {
		provs := idx.Entries[i].Providers
		for x := 0; x < len(provs); x++ {
			for y := x + 1; y < len(provs); y++ {
				pm.GetOrAdd(provs[x], provs[y])
			}
		}
	}
	lCounts := index.SharedItemCounts(ds, pm)
	nCounts := make([]int32, pm.Len())

	in := &Input{ValueLists: make([]List, len(idx.Entries))}
	for i := range idx.Entries {
		e := &idx.Entries[i]
		provs := e.Providers
		items := make([]Scored, 0, len(provs)*(len(provs)-1)/2)
		for x := 0; x < len(provs); x++ {
			for y := x + 1; y < len(provs); y++ {
				s1, s2 := provs[x], provs[y]
				slot := pm.Get(s1, s2)
				nCounts[slot]++
				c := p.ContribSame(e.P, st.A[s1], st.A[s2])
				items = append(items, Scored{ID: PairID(s1, s2), Score: c})
			}
		}
		sort.Slice(items, func(a, b int) bool { return items[a].Score > items[b].Score })
		in.ValueLists[i] = List{Items: items}
	}

	lnDiff := p.LnDiff()
	diff := make([]Scored, 0, pm.Len())
	for slot, key := range pm.Keys() {
		d := float64(lCounts[slot]-nCounts[slot]) * lnDiff
		if d != 0 {
			diff = append(diff, Scored{ID: int64(key), Score: d})
		}
	}
	sort.Slice(diff, func(a, b int) bool { return diff[a].Score > diff[b].Score })
	in.DiffList = List{Items: diff}
	in.BuildTime = time.Since(start)
	return in
}

// TopPairs runs NRA over the generated input and returns the k pairs with
// the largest C→. Callers wanting both directions build a second input
// with sources swapped; the paper only times input generation.
func (in *Input) TopPairs(k int) ([]Scored, int) {
	lists := make([]List, 0, len(in.ValueLists)+1)
	lists = append(lists, in.ValueLists...)
	lists = append(lists, in.DiffList)
	if len(lists) > 64 {
		// NRA's bookkeeping here supports 64 lists; stripe the value lists
		// into 63 merged lists. Because NRA requires each object to appear
		// at most once per list, duplicate pairs inside a stripe are
		// pre-aggregated by summing their scores, then each stripe is
		// re-sorted.
		striped := make([]List, 64)
		for s := 0; s < 63; s++ {
			agg := make(map[int64]float64)
			for i := s; i < len(in.ValueLists); i += 63 {
				for _, it := range in.ValueLists[i].Items {
					agg[it.ID] += it.Score
				}
			}
			items := make([]Scored, 0, len(agg))
			for id, sc := range agg {
				items = append(items, Scored{ID: id, Score: sc})
			}
			sort.Slice(items, func(a, b int) bool { return items[a].Score > items[b].Score })
			striped[s] = List{Items: items}
		}
		striped[63] = in.DiffList
		lists = striped
	}
	return TopK(lists, k)
}
