// Package metrics implements the evaluation measures of Section VI:
// copy-detection precision/recall/F-measure of a method against a
// reference (the paper compares against PAIRWISE; the synthetic workloads
// additionally allow comparing against the planted truth), fusion accuracy
// against a gold standard, fusion difference between two truth
// assignments, and accuracy variance between two sets of source
// accuracies.
package metrics

import (
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// PRF holds precision, recall and F-measure.
type PRF struct {
	Precision, Recall, F1 float64
	// TruePos, TestPos and RefPos expose the raw counts.
	TruePos, TestPos, RefPos int
}

// CopyPRF compares the copying pairs of test against those of ref:
// precision is the fraction of test's copying pairs also output by ref,
// recall the fraction of ref's copying pairs that test found.
func CopyPRF(test, ref *core.Result) PRF {
	return SetPRF(test.CopyingSet(), ref.CopyingSet())
}

// SetPRF compares two pair sets.
func SetPRF(test, ref map[int64]bool) PRF {
	prf := PRF{TestPos: len(test), RefPos: len(ref)}
	for k := range test {
		if ref[k] {
			prf.TruePos++
		}
	}
	if prf.TestPos > 0 {
		prf.Precision = float64(prf.TruePos) / float64(prf.TestPos)
	}
	if prf.RefPos > 0 {
		prf.Recall = float64(prf.TruePos) / float64(prf.RefPos)
	}
	if prf.Precision+prf.Recall > 0 {
		prf.F1 = 2 * prf.Precision * prf.Recall / (prf.Precision + prf.Recall)
	}
	return prf
}

// FusionAccuracy is the fraction of gold-standard items whose decided
// value matches the truth. Items without gold are skipped; the second
// return is the number of gold items evaluated.
func FusionAccuracy(ds *dataset.Dataset, decided []dataset.ValueID) (float64, int) {
	if ds.Truth == nil {
		return 0, 0
	}
	total, correct := 0, 0
	for d, t := range ds.Truth {
		if t == dataset.NoValue {
			continue
		}
		total++
		if decided[d] == t {
			correct++
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(correct) / float64(total), total
}

// FusionDifference is the fraction of items (with at least one
// observation) on which two truth assignments disagree.
func FusionDifference(a, b []dataset.ValueID) float64 {
	if len(a) == 0 {
		return 0
	}
	n, diff := 0, 0
	for d := range a {
		if a[d] == dataset.NoValue && b[d] == dataset.NoValue {
			continue
		}
		n++
		if a[d] != b[d] {
			diff++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(diff) / float64(n)
}

// AccuracyVariance is the mean absolute difference between two source
// accuracy vectors.
func AccuracyVariance(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	sum := 0.0
	for s := range a {
		d := a[s] - b[s]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}
