package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"copydetect/internal/binio"
)

func TestResultCodecRoundtrip(t *testing.T) {
	res := &Result{
		NumSources: 7,
		Pairs: []PairResult{
			{S1: 0, S2: 3, CTo: 12.25, CFrom: -3.5, PrIndep: 0.015625, PrTo: 0.75, PrFrom: 0.234375, Copying: true},
			{S1: 2, S2: 6, CTo: math.Inf(-1), CFrom: 1e-300, PrIndep: 1, Copying: false},
			{S1: 4, S2: 5, CTo: 0.1 + 0.2, CFrom: math.SmallestNonzeroFloat64, PrTo: math.MaxFloat64},
		},
		Stats: Stats{
			Computations:    123456789,
			PairsConsidered: 21,
			ValuesExamined:  99,
			EntriesScanned:  17,
			Rounds:          3,
			IndexBuild:      250 * time.Microsecond,
			Detect:          3 * time.Millisecond,
		},
	}
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	EncodeResult(w, res)
	if err := w.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(binio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, res) {
		t.Fatalf("roundtrip mismatch:\n got  %+v\n want %+v", got, res)
	}
}

func TestResultCodecNilAndErrors(t *testing.T) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	EncodeResult(w, nil)
	if err := w.Err(); err != nil {
		t.Fatalf("encode nil: %v", err)
	}
	got, err := DecodeResult(binio.NewReader(&buf))
	if err != nil || got != nil {
		t.Fatalf("nil roundtrip = %v, %v", got, err)
	}

	if _, err := DecodeResult(binio.NewReader(bytes.NewReader(nil))); err == nil {
		t.Error("empty stream accepted")
	}
	// Pair referencing a source beyond NumSources.
	buf.Reset()
	w = binio.NewWriter(&buf)
	EncodeResult(w, &Result{NumSources: 2, Pairs: []PairResult{{S1: 1, S2: 9}}})
	if _, err := DecodeResult(binio.NewReader(&buf)); err == nil {
		t.Error("out-of-range pair accepted")
	}
	// Truncated stream.
	buf.Reset()
	w = binio.NewWriter(&buf)
	EncodeResult(w, &Result{NumSources: 2, Pairs: []PairResult{{S1: 0, S2: 1}}})
	if _, err := DecodeResult(binio.NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()-4]))); err == nil {
		t.Error("truncated stream accepted")
	}
}
