package analysis

import (
	"go/ast"
	"go/types"
)

// DetRange enforces the determinism contract: code that must produce
// bit-identical results for any worker count cannot let map iteration
// order, the shared math/rand source, or the wall clock leak into its
// output.
//
// In deterministic scope (Config.Deterministic plus everything the
// copydetect:deterministic annotation marks) it reports:
//
//   - a range over a map without a copydetect:orderinvariant
//     justification — iteration order is deliberately randomized by the
//     runtime, so any order-sensitive effect differs run to run;
//   - a call to a package-level math/rand function — the global source
//     is shared and unseeded; deterministic code must thread an
//     explicitly seeded *rand.Rand (methods on one are fine);
//   - a time.Now call outside the timer idiom `x := time.Now()` with
//     every use of x inside time.Since(x) or x-relative Sub/duration
//     measurement. Durations only feed Stats, never results.
var DetRange = &Analyzer{
	Name: "detrange",
	Doc:  "map iteration order, global rand, and wall-clock reads in deterministic packages",
	Run:  runDetRange,
}

func runDetRange(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		pkgWide := pass.Config.deterministic(pkg.Path) || pass.Annots.DeterministicPkg(pkg)
		for _, file := range pkg.Files {
			if !pkgWide && !pass.Annots.DeterministicFile(pkg, file) {
				continue
			}
			checkDetFile(pass, pkg, file)
		}
	}
	return nil
}

func checkDetFile(pass *Pass, pkg *Package, file *ast.File) {
	parents := parentMap(file)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !isMapType(pkg.Info.Types[n.X].Type) {
				return true
			}
			if _, ok := pass.Annots.OrderInvariant(pkg, n); ok {
				return true
			}
			pass.Report(n.Pos(), "range over map in deterministic code; make the effect order-invariant and annotate with copydetect:orderinvariant <why>, or iterate a sorted slice")
		case *ast.CallExpr:
			fn := calleeFunc(pkg.Info, n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // method on an explicitly seeded *rand.Rand
				}
				switch fn.Name() {
				case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
					return true // constructing a seeded source
				}
				pass.Report(n.Pos(), "call to %s.%s uses the shared global rand source; deterministic code must use a *rand.Rand seeded from Options.Seed", fn.Pkg().Name(), fn.Name())
			case "time":
				if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil && !isTimerNow(pkg.Info, parents, n) {
					pass.Report(n.Pos(), "time.Now outside the timer idiom (start := time.Now(); ... time.Since(start)) in deterministic code")
				}
			}
		}
		return true
	})
}

// isTimerNow reports whether a time.Now call follows the timer idiom:
// its value is bound to a variable whose every use is an argument of
// time.Since or the receiver/operand of a Sub call.
func isTimerNow(info *types.Info, parents map[ast.Node]ast.Node, call *ast.CallExpr) bool {
	as, ok := parents[call].(*ast.AssignStmt)
	if !ok {
		return false
	}
	// Find the LHS bound to this call (n-to-n assignment only; a Now
	// call inside a bigger expression is not the idiom).
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	var obj types.Object
	for i, rhs := range as.Rhs {
		if unparen(rhs) != call {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			return false
		}
		if obj = info.Defs[id]; obj == nil {
			obj = info.Uses[id]
		}
	}
	if obj == nil {
		return false
	}
	// Every other use of the variable must be duration measurement.
	fn := enclosingFunc(parents, call)
	if fn == nil {
		return false
	}
	timer := true
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return true
		}
		switch p := parents[id].(type) {
		case *ast.CallExpr:
			// time.Since(id), or end.Sub(id) with id as the operand.
			f := calleeFunc(info, p)
			if isPkgFunc(f, "time", "Since") || (f != nil && f.Pkg() != nil && f.Pkg().Path() == "time" && f.Name() == "Sub") {
				return true
			}
		case *ast.SelectorExpr:
			// id.Sub(...) or other.Sub(id): both are pure measurement.
			if p.Sel.Name == "Sub" {
				return true
			}
		case *ast.AssignStmt:
			return true // the binding itself (or a rebind to a new Now)
		}
		timer = false
		return false
	})
	return timer
}

// enclosingFunc walks up the parent chain to the containing function
// body (declaration or literal).
func enclosingFunc(parents map[ast.Node]ast.Node, n ast.Node) ast.Node {
	for n != nil {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
		n = parents[n]
	}
	return nil
}
