package analysis

import (
	"go/ast"
	"go/types"
)

// TraceHop keeps X-Copydetect-Trace alive across every hop. The e2e
// tests prove the trace survives the proxy path they drive; this
// analyzer proves no outbound request can be built without it: inside
// Config.TracePkgs, every construction of an *http.Request —
// http.NewRequest, http.NewRequestWithContext, or a raw &http.Request
// literal — must happen inside one of the Config.TraceHelpers
// functions, which own the header-propagation logic. A new fan-out,
// probe, or mirror hop added with a bare http.NewRequestWithContext is
// a diagnostic, not a silent trace hole.
var TraceHop = &Analyzer{
	Name: "tracehop",
	Doc:  "outbound http.Requests in cluster code must be built by the trace-propagating helper",
	Run:  runTraceHop,
}

func runTraceHop(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if !pass.Config.tracePkg(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			parents := parentMap(file)
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					fn := calleeFunc(pkg.Info, n)
					if fn == nil || !isRequestCtor(fn) {
						return true
					}
					if enclosingHelper(pass, pkg, parents, n) == "" {
						pass.Report(n.Pos(), "outbound request built with %s outside a trace helper; use newTracedRequest so X-Copydetect-Trace propagates", fn.Name())
					}
				case *ast.CompositeLit:
					if t := pkg.Info.Types[n].Type; t != nil && isHTTPRequest(t) {
						if enclosingHelper(pass, pkg, parents, n) == "" {
							pass.Report(n.Pos(), "http.Request literal outside a trace helper; use newTracedRequest so X-Copydetect-Trace propagates")
						}
					}
				}
				return true
			})
		}
	}
	return nil
}

// isRequestCtor matches net/http's request constructors.
func isRequestCtor(fn *types.Func) bool {
	return (isPkgFunc(fn, "net/http", "NewRequest") || isPkgFunc(fn, "net/http", "NewRequestWithContext"))
}

// isHTTPRequest reports whether t is net/http.Request.
func isHTTPRequest(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Request" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// enclosingHelper returns the allowlisted trace-helper name the node is
// (transitively) inside, or "".
func enclosingHelper(pass *Pass, pkg *Package, parents map[ast.Node]ast.Node, n ast.Node) string {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		fd, ok := cur.(*ast.FuncDecl)
		if !ok {
			continue
		}
		if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok && pass.Config.traceHelper(fn.FullName()) {
			return fn.FullName()
		}
		return ""
	}
	return ""
}
