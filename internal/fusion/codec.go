package fusion

import (
	"fmt"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/binio"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// Outcome binary encode/decode: the truth-finding half of the serving
// layer's snapshot format. Together with the dataset and Result codecs
// it lets a restarted server publish the exact pre-crash round without
// recomputing it.

const (
	maxOutcomeDim = 1 << 28
	maxRoundStats = 1 << 20
)

// EncodeOutcome writes out in the binary snapshot format.
func EncodeOutcome(w *binio.Writer, out *Outcome) {
	encodeFloatRows(w, out.State.P)
	encodeFloats(w, out.State.A)
	w.Bool(out.State.Pop != nil)
	if out.State.Pop != nil {
		encodeFloatRows(w, out.State.Pop)
	}
	core.EncodeResult(w, out.Copy)
	w.Int(len(out.Truth))
	for _, v := range out.Truth {
		w.Uvarint(uint64(v + 1)) // NoValue (-1) encodes as 0
	}
	w.Int(out.Rounds)
	w.Int(len(out.RoundStats))
	for _, s := range out.RoundStats {
		core.EncodeStats(w, s)
	}
	core.EncodeStats(w, out.TotalStats)
	w.Uvarint(uint64(out.FusionTime))
}

// DecodeOutcome reads an outcome written by EncodeOutcome.
func DecodeOutcome(r *binio.Reader) (*Outcome, error) {
	out := &Outcome{State: &bayes.State{}}
	out.State.P = decodeFloatRows(r)
	out.State.A = decodeFloats(r)
	if r.Bool() {
		out.State.Pop = decodeFloatRows(r)
	}
	var err error
	out.Copy, err = core.DecodeResult(r)
	if err != nil {
		return nil, fmt.Errorf("fusion: decode outcome: %w", err)
	}
	if n := r.Int(maxOutcomeDim); n > 0 {
		out.Truth = make([]dataset.ValueID, n)
		for i := range out.Truth {
			out.Truth[i] = dataset.ValueID(r.Uvarint()) - 1
		}
	}
	out.Rounds = r.Int(maxRoundStats)
	if n := r.Int(maxRoundStats); n > 0 {
		out.RoundStats = make([]core.Stats, n)
		for i := range out.RoundStats {
			out.RoundStats[i] = core.DecodeStats(r)
		}
	}
	out.TotalStats = core.DecodeStats(r)
	out.FusionTime = time.Duration(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("fusion: decode outcome: %w", err)
	}
	return out, nil
}

// encodeFloatRows writes a ragged float matrix, preserving nil rows
// (an item with no observed values has a nil probability row).
func encodeFloatRows(w *binio.Writer, rows [][]float64) {
	w.Int(len(rows))
	for _, row := range rows {
		encodeFloats(w, row)
	}
}

func decodeFloatRows(r *binio.Reader) [][]float64 {
	// Int returns 0 once the sticky error is set, so n == 0 covers the
	// error case too; the caller owns the final Err check.
	n := r.Int(maxOutcomeDim)
	if n == 0 {
		return nil
	}
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = decodeFloats(r)
	}
	return rows
}

func encodeFloats(w *binio.Writer, fs []float64) {
	w.Int(len(fs))
	for _, f := range fs {
		w.Float64(f)
	}
}

func decodeFloats(r *binio.Reader) []float64 {
	n := r.Int(maxOutcomeDim)
	if n == 0 { // zero on sticky error too; the caller checks Err
		return nil
	}
	fs := make([]float64, n)
	for i := range fs {
		fs[i] = r.Float64()
	}
	return fs
}
