package experiments

import (
	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/index"
)

// Motivating reproduces the paper's worked examples on the 10-source
// state-capitals dataset of Table I: the inverted index of Table III
// (Example 3.3), the computation counts of Examples 3.6 and 4.2, and the
// iterative convergence of Table II.
func (e *Env) Motivating() error {
	ds, accu := dataset.Motivating()
	p := bayes.Params{Alpha: 0.1, S: 0.8, N: 50}

	// Rebuild the statistical state the examples assume.
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.5
		}
	}
	for label, pv := range dataset.MotivatingValueProbs() {
		d, v := dataset.LookupValue(ds, label)
		st.P[d][v] = pv
	}

	e.printf("Motivating example (Tables I-III, Examples 2.1/3.3/3.6/4.2)\n\n")
	e.printf("Inverted index (paper Table III):\n%-14s %5s %6s  %s\n", "Value", "Pr", "Score", "Providers")
	idx := index.Build(ds, st, p, index.ByContribution, nil)
	for i := range idx.Entries {
		en := &idx.Entries[i]
		provs := ""
		for j, s := range en.Providers {
			if j > 0 {
				provs += ","
			}
			provs += ds.SourceNames[s]
		}
		tail := ""
		if idx.InTail[i] {
			tail = "   (in tail set E̅)"
		}
		e.printf("%-14s %5.2f %6.2f  %s%s\n",
			ds.ItemNames[en.Item]+"."+ds.ValueNames[en.Item][en.Value], en.P, en.Score, provs, tail)
	}

	e.printf("\nExample 3.6 — INDEX vs PAIRWISE on one round:\n")
	ires := (&core.Index{Params: p}).DetectRound(ds, st, 1)
	pres := (&core.Pairwise{Params: p}).DetectRound(ds, st, 1)
	e.printf("  PAIRWISE: %d pairs, %d computations (paper: 45 pairs, 366*)\n",
		pres.Stats.PairsConsidered, pres.Stats.Computations)
	e.printf("  INDEX:    %d pairs, %d shared values, %d computations (paper: 26, 51, 154)\n",
		ires.Stats.PairsConsidered, ires.Stats.ValuesExamined, ires.Stats.Computations)
	e.printf("  (* Table I reconstructs to 181 shared items = 362 computations;\n")
	e.printf("     the paper prints 183/366.)\n")

	e.printf("\nExample 4.2 — BOUND early termination:\n")
	bres := (&core.Bound{Params: p}).DetectRound(ds, st, 1)
	e.printf("  BOUND examined %d shared values (INDEX: %d), same decisions: %v\n",
		bres.Stats.ValuesExamined, ires.Stats.ValuesExamined,
		sameCopyingSet(bres, ires))

	e.printf("\nIterative process (paper Table II converges in 5 rounds):\n")
	out := (&fusion.TruthFinder{Params: p}).Run(ds, &core.Pairwise{Params: p})
	e.printf("  converged in %d rounds\n  final accuracies:", out.Rounds)
	for s, a := range out.State.A {
		e.printf(" %s=%.2f", ds.SourceNames[s], a)
	}
	e.printf("\n  copying pairs:")
	for _, pr := range out.Copy.CopyingPairs() {
		e.printf(" (%s,%s)", ds.SourceNames[pr.S1], ds.SourceNames[pr.S2])
	}
	e.printf("\n  decided truths:")
	for d, v := range out.Truth {
		e.printf(" %s=%s", ds.ItemNames[d], ds.ValueNames[d][v])
	}
	e.printf("\n\n")
	return nil
}

func sameCopyingSet(a, b *core.Result) bool {
	sa, sb := a.CopyingSet(), b.CopyingSet()
	if len(sa) != len(sb) {
		return false
	}
	for k := range sa {
		if !sb[k] {
			return false
		}
	}
	return true
}
