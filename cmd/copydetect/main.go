// Command copydetect runs iterative copy detection and truth finding on a
// dataset file (JSON as written by cmd/datagen or dataset.WriteJSON, or
// CSV in the Table I layout) and reports the detected copying pairs, the
// decided truths, and efficiency statistics.
//
// Usage:
//
//	copydetect -in data.json [-format json|csv] [-algo hybrid]
//	           [-alpha 0.1] [-s 0.8] [-n 100] [-workers 0] [-truths] [-v]
//
// -workers 0 (the default) uses one worker per available CPU; 1 forces
// sequential detection; any N > 1 shards detection over N goroutines.
// Every setting produces identical output — parallel detection is
// deterministic — so -workers only trades wall-clock time for cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"copydetect"
	"copydetect/internal/pool"
)

func main() {
	in := flag.String("in", "", "input dataset file (required)")
	format := flag.String("format", "json", "input format: json or csv")
	algoName := flag.String("algo", "hybrid", "pairwise, index, bound, bound+, hybrid or incremental")
	alpha := flag.Float64("alpha", 0.1, "a-priori copying probability α")
	s := flag.Float64("s", 0.8, "copy selectivity s")
	n := flag.Float64("n", 100, "number of false values per item n")
	workers := flag.Int("workers", 0, "detection worker goroutines (0 = one per CPU, 1 = sequential)")
	truths := flag.Bool("truths", false, "print the decided truth of every item")
	verbose := flag.Bool("v", false, "print per-round statistics")
	flag.Parse()

	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	algo, err := parseAlgo(*algoName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetect: %v\n", err)
		os.Exit(2)
	}
	p := copydetect.Params{Alpha: *alpha, S: *s, N: *n}
	if err := p.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "copydetect: %v\n", err)
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetect: %v\n", err)
		os.Exit(1)
	}
	var ds *copydetect.Dataset
	switch *format {
	case "json":
		ds, err = copydetect.ReadJSON(f)
	case "csv":
		ds, err = copydetect.ReadCSV(f)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetect: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %s\n", copydetect.Summarize(ds))

	if *workers <= 0 {
		*workers = pool.Auto()
	}
	start := time.Now()
	out := copydetect.DetectWithOptions(ds, algo, p, copydetect.Options{Workers: *workers})
	elapsed := time.Since(start)

	pairs := out.Copy.CopyingPairs()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].PrIndep < pairs[j].PrIndep })
	fmt.Printf("\n%s: %d rounds, %d copying pairs, %v total (%v copy detection)\n",
		algo, out.Rounds, len(pairs), elapsed.Round(time.Millisecond),
		out.TotalStats.Total().Round(time.Millisecond))
	for _, pr := range pairs {
		fmt.Printf("  %-40s Pr(indep)=%.4f\n", pr.Direction(ds.SourceNames), pr.PrIndep)
	}

	if acc, gold := copydetect.FusionAccuracy(ds, out.Truth); gold > 0 {
		fmt.Printf("\nfusion accuracy on %d gold items: %.3f\n", gold, acc)
	}
	if *verbose {
		fmt.Printf("\nper-round copy-detection stats:\n")
		for i, st := range out.RoundStats {
			fmt.Printf("  round %d: %d computations, %d pairs, %v\n",
				i+1, st.Computations, st.PairsConsidered, st.Total().Round(time.Microsecond))
		}
	}
	if *truths {
		fmt.Printf("\ndecided truths:\n")
		for d, v := range out.Truth {
			if v != copydetect.NoValue {
				fmt.Printf("  %s = %s\n", ds.ItemNames[d], ds.ValueNames[d][v])
			}
		}
	}
}

func parseAlgo(name string) (copydetect.Algorithm, error) {
	switch strings.ToLower(name) {
	case "pairwise":
		return copydetect.AlgorithmPairwise, nil
	case "index":
		return copydetect.AlgorithmIndex, nil
	case "bound":
		return copydetect.AlgorithmBound, nil
	case "bound+", "boundplus":
		return copydetect.AlgorithmBoundPlus, nil
	case "hybrid":
		return copydetect.AlgorithmHybrid, nil
	case "incremental":
		return copydetect.AlgorithmIncremental, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}
