package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"copydetect/internal/core"
	"copydetect/internal/server"
	"copydetect/internal/telemetry"
)

// hangTransport lets writes to one designated host block until the
// test releases them — a replica that accepts connections but does not
// answer, which is exactly the condition that grows a mirror queue.
// Probes and reads (GETs) pass through so the backend stays healthy.
type hangTransport struct {
	hangHost string
	release  chan struct{}

	mu       sync.Mutex
	mirrored []http.Header // headers of sequenced mirror appends seen
}

func (ht *hangTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Header.Get(server.SeqHeader) != "" {
		ht.mu.Lock()
		ht.mirrored = append(ht.mirrored, req.Header.Clone())
		ht.mu.Unlock()
	}
	if req.URL.Host == ht.hangHost &&
		(req.Method == http.MethodPut || req.Method == http.MethodPost) {
		select {
		case <-ht.release:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestMirrorQueueBackpressure drives a dataset's mirror queue to the
// high-water mark (the replica hangs, so jobs can only accumulate) and
// expects 429 + Retry-After from the gateway, recovery to 202 once the
// queue drains, the admission counter on /metrics, and the client's
// trace ID on the mirrored appends.
func TestMirrorQueueBackpressure(t *testing.T) {
	oldTimeout := jobTimeout
	jobTimeout = 2 * time.Second
	defer func() { jobTimeout = oldTimeout }()

	var regs []*server.Registry
	var urls []string
	for i := 0; i < 2; i++ {
		reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
		t.Cleanup(reg.Close)
		s := httptest.NewServer(server.NewHandler(reg))
		t.Cleanup(s.Close)
		regs = append(regs, reg)
		urls = append(urls, s.URL)
	}
	// A dataset owned by backend 0, so backend 1 is the hanging replica.
	// Resolved before New so the transport is never mutated while the
	// gateway's background goroutines are using it.
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for i := 0; i < 10000; i++ {
		cand := fmt.Sprintf("bp-%d", i)
		if ring.Owner(cand) == 0 {
			name = cand
			break
		}
	}
	if name == "" {
		t.Fatal("no dataset name owned by backend 0")
	}
	ht := &hangTransport{
		hangHost: strings.TrimPrefix(urls[1], "http://"),
		release:  make(chan struct{}),
	}
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(ht.release) }) }
	t.Cleanup(release) // a hung mirror must not wedge gateway Close

	gw, err := New(Config{
		Backends:        urls,
		Replication:     2,
		MirrorHighWater: 2,
		Transport:       ht,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gwServer := httptest.NewServer(gw)
	t.Cleanup(gwServer.Close)
	treg := telemetry.New()
	gw.RegisterMetrics(treg)

	base := gwServer.URL + "/v1/datasets/" + name

	// Create (mirror job 1 hangs in delivery), then one append (mirror
	// job 2 queues behind it): the queue is now at the high-water mark.
	resp, _ := do(t, http.MethodPut, base, nil, nil)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	batch := map[string]any{"observations": []map[string]string{{"s": "s1", "d": "d1", "v": "v1"}}}
	hdr := http.Header{}
	hdr.Set(telemetry.TraceHeader, "cafebabecafebabe")
	resp, _ = do(t, http.MethodPost, base+"/observations", batch, hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first append status %d", resp.StatusCode)
	}

	// The next append finds queuedJobs at the high-water mark: refused,
	// with a Retry-After hint, and nothing applied on any member.
	resp, raw := do(t, http.MethodPost, base+"/observations", batch, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-high-water append status %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	var b strings.Builder
	if err := treg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	scrape := b.String()
	if !strings.Contains(scrape, "copygate_admission_rejections_total 1") {
		t.Errorf("admission rejection not counted:\n%s", scrape)
	}
	if !strings.Contains(scrape, "copygate_mirror_queue_depth 2") {
		t.Errorf("mirror queue depth not 2:\n%s", scrape)
	}

	// Drain: release the replica, wait for the queue to empty, and the
	// dataset accepts appends again.
	release()
	waitFor(t, "mirror queue to drain", func() bool {
		for _, ds := range gw.snapshotDS() {
			if atomic.LoadInt64(&ds.queuedJobs) != 0 {
				return false
			}
		}
		return true
	})
	resp, raw = do(t, http.MethodPost, base+"/observations", batch, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-drain append status %d, body %s", resp.StatusCode, raw)
	}

	// The mirrored append carried the client write's trace ID.
	waitFor(t, "a mirrored append to be recorded", func() bool {
		ht.mu.Lock()
		defer ht.mu.Unlock()
		return len(ht.mirrored) > 0
	})
	ht.mu.Lock()
	trace := ht.mirrored[0].Get(telemetry.TraceHeader)
	ht.mu.Unlock()
	if trace != "cafebabecafebabe" {
		t.Errorf("mirrored append trace = %q, want the client's trace ID", trace)
	}

	// Both members converge on every acknowledged append (2 applied).
	waitFor(t, "replica to hold both appends", func() bool {
		for i := range regs {
			inf, code := directInfo(t, urls[i], name)
			if code != http.StatusOK || inf.Version != 2 {
				return false
			}
		}
		return true
	})
}
