package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"copydetect/internal/server"
)

// Config tunes a Gateway. Only Backends is required.
type Config struct {
	// Backends are the copydetectd base URLs (e.g. "http://10.0.0.1:8377").
	// Order matters: the ring is built over this exact list, so every
	// gateway configured with the same list routes identically.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the ring
	// (<= 0 selects DefaultReplicas). All gateways over one cluster must
	// agree on it.
	Replicas int

	// ProbeEvery is the health-check period (default 1s); ProbeTimeout
	// bounds one probe (default half of ProbeEvery, capped at 2s).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	// EjectAfter ejects a backend after that many consecutive failures
	// (default 2); ReadmitAfter readmits it after that many consecutive
	// probe successes (default 2).
	EjectAfter   int
	ReadmitAfter int

	// Retries is how many times an idempotent (GET) request is retried
	// against its owner after a transport failure. 0 selects the default
	// of 2, negative disables retries; writes are never retried — an
	// append is not idempotent at the version level.
	Retries int

	// Transport overrides the outbound round tripper (tests inject
	// failures here). nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// Gateway routes the copydetectd wire protocol across a fixed set of
// backends: dataset-scoped requests go to the ring owner of the dataset
// name and are proxied byte-for-byte (headers included, so ETag /
// If-None-Match revalidation works unchanged through the gateway);
// GET /v1/datasets fans out to every backend and merges; GET /healthz
// reports the gateway's view of backend health.
type Gateway struct {
	ring         *Ring
	backends     []*backend
	client       *http.Client
	probeEvery   time.Duration
	probeTimeout time.Duration
	listTimeout  time.Duration
	ejectAfter   int
	readmitAfter int
	retries      int

	stop     chan struct{}
	wg       sync.WaitGroup
	closedMu sync.Mutex
	closed   bool
}

// New builds the gateway and starts its health probes. Close releases
// them.
func New(cfg Config) (*Gateway, error) {
	urls := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		urls[i] = strings.TrimRight(b, "/")
	}
	ring, err := NewRing(urls, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ring:         ring,
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: cfg.ProbeTimeout,
		ejectAfter:   cfg.EjectAfter,
		readmitAfter: cfg.ReadmitAfter,
		retries:      cfg.Retries,
		stop:         make(chan struct{}),
	}
	if g.probeEvery <= 0 {
		g.probeEvery = time.Second
	}
	if g.probeTimeout <= 0 {
		g.probeTimeout = g.probeEvery / 2
		if g.probeTimeout > 2*time.Second {
			g.probeTimeout = 2 * time.Second
		}
	}
	// The list fan-out is a cheap read and must not hang on a stalled
	// (SIGSTOP'd, blackholed) backend the way a legitimately blocking
	// quiesce proxy may: bound it generously relative to the probe
	// budget. Only the proxy path stays unbounded.
	g.listTimeout = 10 * g.probeTimeout
	if g.listTimeout < time.Second {
		g.listTimeout = time.Second
	}
	if g.listTimeout > 30*time.Second {
		g.listTimeout = 30 * time.Second
	}
	if g.ejectAfter <= 0 {
		g.ejectAfter = 2
	}
	if g.readmitAfter <= 0 {
		g.readmitAfter = 2
	}
	if g.retries < 0 {
		g.retries = 0
	} else if g.retries == 0 {
		g.retries = 2
	}
	// No client timeout: quiesce blocks for as long as convergence
	// takes, and the incoming request's context already propagates
	// client disconnects. Probes use their own deadline.
	g.client = &http.Client{Transport: cfg.Transport}
	g.backends = make([]*backend, ring.NumBackends())
	for i := range g.backends {
		g.backends[i] = newBackend(ring.Backend(i))
		g.wg.Add(1)
		go g.monitor(g.backends[i])
	}
	return g, nil
}

// Close stops the health probes. In-flight proxied requests are not
// interrupted; the caller shuts the HTTP server down around this.
func (g *Gateway) Close() {
	g.closedMu.Lock()
	defer g.closedMu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	close(g.stop)
	g.wg.Wait()
}

// Ring exposes the routing table, for tests and tooling that need to
// predict placements.
func (g *Gateway) Ring() *Ring { return g.ring }

// Status returns the health of every backend, in ring (configuration)
// order.
func (g *Gateway) Status() []BackendStatus {
	out := make([]BackendStatus, len(g.backends))
	for i, b := range g.backends {
		out[i] = b.status()
	}
	return out
}

// healthzResponse is the gateway's own /healthz body. Status is "ok"
// with every backend healthy, "degraded" otherwise — the gateway itself
// keeps serving either way.
type healthzResponse struct {
	Status   string          `json:"status"`
	Backends []BackendStatus `json:"backends"`
}

// listResponse mirrors the daemon's list body; Partial marks a merge
// that could not reach every backend (only then is it present, so a
// fully healthy cluster lists byte-identically to a single daemon).
type listResponse struct {
	Datasets []server.Info `json:"datasets"`
	Partial  bool          `json:"partial,omitempty"`
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	switch {
	case path == "/healthz":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		g.healthz(w)
	case path == "/v1/datasets":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET; create with PUT /v1/datasets/{name}")
			return
		}
		g.list(w, req)
	case strings.HasPrefix(path, "/v1/datasets/"):
		name := strings.TrimPrefix(path, "/v1/datasets/")
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
		if name == "" {
			writeErr(w, http.StatusNotFound, "unknown path")
			return
		}
		g.proxy(w, req, name)
	default:
		writeErr(w, http.StatusNotFound, "unknown path")
	}
}

func (g *Gateway) healthz(w http.ResponseWriter) {
	resp := healthzResponse{Status: "ok", Backends: g.Status()}
	for _, b := range resp.Backends {
		if !b.Healthy {
			resp.Status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// proxy forwards a dataset-scoped request to the ring owner of name and
// relays the response verbatim. Transport failures yield 503 (the
// dataset's data lives only on its owner — rerouting is impossible);
// idempotent GETs are retried a bounded number of times first.
func (g *Gateway) proxy(w http.ResponseWriter, req *http.Request, name string) {
	b := g.backends[g.ring.Owner(name)]
	if !b.isHealthy() {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("cluster: backend %s (owner of dataset %q) is unavailable", b.url, name))
		return
	}
	// Only idempotent reads (GET/HEAD) are retried. Their bodies are
	// dropped rather than buffered: the daemon never reads them, a
	// resend would otherwise require holding the whole body in gateway
	// memory, and an unbounded ReadAll would hand that memory decision
	// to the client. Writes stream straight through — an append is
	// never retried, so nothing needs buffering there either.
	attempts := 1
	stream := true
	if req.Method == http.MethodGet || req.Method == http.MethodHead {
		attempts += g.retries
		stream = false
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if req.Context().Err() != nil || !b.isHealthy() {
				break // client gone, or probes ejected the backend meanwhile
			}
		}
		var rd io.Reader
		if stream {
			rd = req.Body
		}
		out, err := http.NewRequestWithContext(req.Context(), req.Method,
			b.url+req.URL.RequestURI(), rd)
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("cluster: %v", err))
			return
		}
		if stream {
			// Streamed pass-through: preserve the client's Content-Length
			// instead of degrading to chunked encoding.
			out.ContentLength = req.ContentLength
		}
		copyHeader(out.Header, req.Header)
		resp, err := g.client.Do(out)
		if err != nil {
			lastErr = err
			continue
		}
		b.reportSuccess(g.readmitAfter, false)
		relay(w, resp)
		return
	}
	// One logical request counts at most one failure against the
	// backend, however many retry attempts it burned — otherwise a
	// single retried GET could run through the whole ejection budget
	// and defeat the hysteresis. And a transport failure indicts the
	// backend only if the *client* didn't hang up first: impatient
	// clients must never eject a healthy backend.
	if lastErr != nil && req.Context().Err() == nil {
		b.reportFailure(g.ejectAfter, lastErr)
	}
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: backend %s (owner of dataset %q) is unavailable: %v", b.url, name, lastErr))
}

// list fans GET /v1/datasets out to every backend concurrently and
// merges the results, sorted by dataset name — the same order a single
// daemon would produce. Backends that are ejected or unreachable are
// skipped and the response is marked partial.
func (g *Gateway) list(w http.ResponseWriter, req *http.Request) {
	type result struct {
		infos []server.Info
		ok    bool
	}
	ctx, cancel := context.WithTimeout(req.Context(), g.listTimeout)
	defer cancel()
	results := make([]result, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		if !b.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			out, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/datasets", nil)
			if err != nil {
				return
			}
			resp, err := g.client.Do(out)
			if err != nil {
				// As in proxy: a fan-out aborted by the client's own
				// cancellation says nothing about backend health (and
				// would tick a failure on every backend at once).
				if req.Context().Err() == nil {
					b.reportFailure(g.ejectAfter, err)
				}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				_, _ = io.Copy(io.Discard, resp.Body)
				return
			}
			b.reportSuccess(g.readmitAfter, false)
			var body listResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				return
			}
			results[i] = result{infos: body.Datasets, ok: true}
		}(i, b)
	}
	wg.Wait()
	merged := listResponse{Datasets: []server.Info{}}
	for _, r := range results {
		if !r.ok {
			merged.Partial = true
			continue
		}
		merged.Datasets = append(merged.Datasets, r.infos...)
	}
	sort.Slice(merged.Datasets, func(a, b int) bool {
		return merged.Datasets[a].Name < merged.Datasets[b].Name
	})
	writeJSON(w, http.StatusOK, merged)
}

// relay copies a backend response to the client verbatim: status,
// headers (ETag included) and body bytes.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// hopByHop are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	for _, k := range hopByHop {
		dst.Del(k)
	}
}

// writeJSON/writeErr mirror the daemon's response formatting exactly,
// so gateway-originated errors are indistinguishable in shape from
// backend-originated ones.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse matches internal/server's error body shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
