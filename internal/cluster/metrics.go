package cluster

import (
	"sync/atomic"

	"copydetect/internal/telemetry"
)

// RegisterMetrics exposes the gateway's operational state on t under
// the copygate_ prefix: per-backend health and replication lag, the
// aggregate mirror-queue depth in jobs and bytes, ring ownership of the
// datasets the gateway is tracking, and the retry/failover/admission
// counters the proxy paths maintain. Call it once, before serving
// /metrics.
func (g *Gateway) RegisterMetrics(t *telemetry.Registry) {
	t.GaugeFunc("copygate_backend_healthy",
		"Whether the gateway considers the backend serveable (1) or ejected (0).",
		[]string{"backend"},
		func(emit func(float64, ...string)) {
			for _, b := range g.backends {
				v := 0.0
				if b.isHealthy() {
					v = 1
				}
				emit(v, b.url)
			}
		})
	t.GaugeFunc("copygate_backend_stale_datasets",
		"Datasets the backend is known to be behind on, awaiting anti-entropy.",
		[]string{"backend"},
		func(emit func(float64, ...string)) {
			stale := g.staleCounts()
			for i, b := range g.backends {
				emit(float64(stale[i]), b.url)
			}
		})
	t.GaugeFunc("copygate_mirror_queue_depth",
		"Replica mirror jobs enqueued or in delivery, across all datasets.", nil,
		func(emit func(float64, ...string)) {
			var jobs int64
			for _, ds := range g.snapshotDS() {
				jobs += atomic.LoadInt64(&ds.queuedJobs)
			}
			emit(float64(jobs))
		})
	t.GaugeFunc("copygate_mirror_queue_bytes",
		"Write-body bytes parked in replica mirror queues, across all datasets.", nil,
		func(emit func(float64, ...string)) {
			var bytes int64
			for _, ds := range g.snapshotDS() {
				bytes += atomic.LoadInt64(&ds.queuedBytes)
			}
			emit(float64(bytes))
		})
	t.GaugeFunc("copygate_ring_owned_datasets",
		"Tracked datasets whose ring owner is the backend (replication state exists only for written datasets).",
		[]string{"backend"},
		func(emit func(float64, ...string)) {
			owned := make([]int, len(g.backends))
			for _, ds := range g.snapshotDS() {
				if len(ds.members) > 0 {
					owned[ds.members[0]]++
				}
			}
			for i, b := range g.backends {
				emit(float64(owned[i]), b.url)
			}
		})
	t.CounterFunc("copygate_read_retries_total",
		"Read attempts repeated after a transport failure on a replica-set member.", nil,
		func(emit func(float64, ...string)) { emit(float64(g.readRetries.Load())) })
	t.CounterFunc("copygate_write_failovers_total",
		"Writes moved off the acting member to the next replica after a failure.", nil,
		func(emit func(float64, ...string)) { emit(float64(g.writeFailovers.Load())) })
	t.CounterFunc("copygate_admission_rejections_total",
		"Appends refused with 429 because a dataset's mirror queue exceeded the high-water mark.", nil,
		func(emit func(float64, ...string)) { emit(float64(g.admissionRejects.Load())) })
}

// snapshotDS copies the live dataset-state list out from under dsMu so
// collectors can read per-dataset atomics without holding the map lock.
func (g *Gateway) snapshotDS() []*dsState {
	g.dsMu.Lock()
	states := make([]*dsState, 0, len(g.ds))
	for _, ds := range g.ds {
		states = append(states, ds)
	}
	g.dsMu.Unlock()
	return states
}
