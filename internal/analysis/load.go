package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one module package loaded for analysis: its parsed files
// (comments included — the annotation grammar lives there), the
// type-checked types.Package and the types.Info side tables the
// analyzers query.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a set of packages loaded under one token.FileSet, plus the
// export-data index that lets fixture packages be type-checked against
// the same dependency universe.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // module packages, sorted by import path

	mu      sync.Mutex
	exports map[string]string // import path -> export data file
	byPath  map[string]*Package
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Load discovers packages with `go list` (run in dir) and type-checks
// every matched module package from source, resolving imports — stdlib
// and in-module alike — from compiler export data. It needs only the go
// toolchain and the standard library: no third-party loader.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles,Standard,Module,Error,DepsErrors"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, errBuf.String())
	}

	prog := &Program{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string),
		byPath:  make(map[string]*Package),
	}
	var mod []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			prog.exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard && lp.Module != nil {
			mod = append(mod, lp)
		}
	}
	sort.Slice(mod, func(i, j int) bool { return mod[i].ImportPath < mod[j].ImportPath })
	for _, lp := range mod {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := prog.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
		prog.byPath[pkg.Path] = pkg
	}
	return prog, nil
}

// LoadDir parses and type-checks a single directory outside the go list
// universe — an analyzer fixture under testdata/ — as the package named
// by importPath. Imports resolve through the same export-data mechanism;
// export data for packages the original Load did not touch is fetched
// lazily with one extra `go list` call.
func (p *Program) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	sort.Strings(files)
	return p.check(importPath, dir, files)
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.byPath[path] }

// AddPackage registers an out-of-universe package (a LoadDir fixture)
// so Run analyzes it alongside the module packages.
func (p *Program) AddPackage(pkg *Package) {
	p.Pkgs = append(p.Pkgs, pkg)
	p.byPath[pkg.Path] = pkg
}

// check parses the named files and type-checks them as one package.
func (p *Program) check(importPath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(p.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(p.Fset, "gc", p.lookupExport),
	}
	tpkg, err := conf.Check(importPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// lookupExport opens the export data for an import path, shelling out to
// `go list -export` for paths the initial discovery did not cover.
func (p *Program) lookupExport(path string) (io.ReadCloser, error) {
	p.mu.Lock()
	file, ok := p.exports[path]
	p.mu.Unlock()
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: no export data for %q: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		p.mu.Lock()
		p.exports[path] = file
		p.mu.Unlock()
	}
	return os.Open(file)
}
