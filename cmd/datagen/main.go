// Command datagen generates one of the synthetic workloads (Book-CS,
// Book-full, Stock-1day, Stock-2wk equivalents) and writes it as JSON, for
// use with cmd/copydetect or external tooling.
//
// Usage:
//
//	datagen -dataset book-cs [-scale 0.2] [-seed 1] [-o book-cs.json]
package main

import (
	"flag"
	"fmt"
	"os"

	"copydetect/internal/dataset"
	"copydetect/internal/gen"
)

func main() {
	name := flag.String("dataset", "book-cs", "book-cs, book-full, stock-1day or stock-2wk")
	scale := flag.Float64("scale", 0.2, "dataset scale factor (1 = paper sizes)")
	seed := flag.Int64("seed", 1, "generation seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var cfg gen.Config
	switch *name {
	case "book-cs":
		cfg = gen.BookCS(*seed)
	case "book-full":
		cfg = gen.BookFull(*seed)
	case "stock-1day":
		cfg = gen.Stock1Day(*seed)
	case "stock-2wk":
		cfg = gen.Stock2Wk(*seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *name)
		os.Exit(2)
	}
	cfg = gen.Scale(cfg, *scale)

	ds, planted, err := gen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		w = f
	}
	if err := dataset.WriteJSON(w, ds); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: write: %v\n", err)
		os.Exit(1)
	}
	// Closed explicitly (not deferred): os.Exit skips defers, and a
	// close error on a fresh file is a write error the user must see.
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: close: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: %s — %s; %d planted copying pairs\n",
		cfg.Name, dataset.Summarize(ds), len(planted.Pairs))
}
