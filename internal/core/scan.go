package core

import (
	"math"
	"math/rand"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
	"copydetect/internal/pool"
)

// Options configures the index-driven single-round algorithms.
type Options struct {
	// Order is the entry processing order (Figure 3); default
	// ByContribution.
	Order index.Order
	// Seed seeds the random entry order when Order == Random.
	Seed int64
	// ShareThreshold is HYBRID's split point: pairs sharing at most this
	// many data items are handled INDEX-style, others with BOUND+. The
	// paper determined 16 empirically. Zero means 16.
	ShareThreshold int
	// Workers parallelizes detection across a goroutine pool (the Section
	// VIII extension): the entry scan of INDEX/BOUND/BOUND+/HYBRID is
	// sharded over the pair space, and INCREMENTAL fans out its base-score
	// computation, entry classification, delta application and pass 1–3
	// re-examination. 0 or 1 is sequential. The value is the shard count,
	// not a core count: results are bit-identical for every value (see
	// internal/pool and DESIGN.md). Each shard performs its own pass over
	// the index entries (filtering to the pairs it owns), so total work
	// grows with the shard count — keep Workers near the core count;
	// oversubscribing wastes time, it never changes results. CLI entry
	// points default to pool.Auto() (GOMAXPROCS).
	Workers int
}

func (o Options) shareThreshold() int32 {
	if o.ShareThreshold == 0 {
		return 16
	}
	return int32(o.ShareThreshold)
}

// mode selects how the shared scan treats each pair.
type mode int

const (
	modeIndex     mode = iota // no bounds: exact accumulation (Section III)
	modeBound                 // bounds checked on every shared entry (Section IV-A)
	modeBoundPlus             // bounds with lazy recomputation timers (Section IV-B)
	modeHybrid                // INDEX for small-overlap pairs, BOUND+ otherwise
)

// Index is the INDEX algorithm of Section III: scan the inverted index in
// decreasing contribution order, instantiate state only for pairs that
// co-occur outside the tail set E̅, accumulate exact scores, and correct
// for different-value items at the end. It produces exactly the PAIRWISE
// decisions.
type Index struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Index) Name() string { return "INDEX" }

// Reset drops the cross-round structural cache.
func (d *Index) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Index) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeIndex, &d.cache)
}

// Bound is the BOUND algorithm of Section IV-A: like INDEX, but it
// maintains per-pair minimum and maximum score bounds (Eq. 9–10) on every
// shared entry and terminates a pair as soon as the bounds decide copying
// or no-copying.
type Bound struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Bound) Name() string { return "BOUND" }

// Reset drops the cross-round structural cache.
func (d *Bound) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Bound) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeBound, &d.cache)
}

// BoundPlus is BOUND+ (Section IV-B): BOUND plus the Tmin/Tmax timers that
// skip bound recomputation until enough new evidence could possibly change
// the outcome.
type BoundPlus struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *BoundPlus) Name() string { return "BOUND+" }

// Reset drops the cross-round structural cache.
func (d *BoundPlus) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *BoundPlus) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeBoundPlus, &d.cache)
}

// Hybrid applies INDEX to pairs that share at most Opts.ShareThreshold
// data items (where bound bookkeeping costs more than it saves) and
// BOUND+ to the rest (end of Section IV).
type Hybrid struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Hybrid) Name() string { return "HYBRID" }

// Reset drops the cross-round structural cache.
func (d *Hybrid) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Hybrid) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeHybrid, &d.cache)
}

// pairTab is the per-pair scan state in structure-of-arrays layout: one
// column per field, indexed by pair slot. The kernel touches at most four
// columns per co-occurrence (mantissa + exponent per direction, plus the
// bookkeeping columns for bounded pairs), so a cache line of each column
// serves eight pairs instead of one AoS struct — and the columns are
// reused across rounds, so steady-state rounds allocate nothing here.
//
// The directional evidence lives as a renormalized product mant·2^exp
// (see accum.go); cov holds the coverage-evidence seed separately so it
// can be added back in log space.
type pairTab struct {
	mantTo, mantFrom []float64
	expTo, expFrom   []int32
	cov              []float64
	l, n0            []int32 // shared items l(S1,S2) / observed shared values
	// BOUND+ lazy-recomputation timers.
	minSkipUntil []int32 // recompute Cmin when n0 >= this
	maxSkipN1    []int32 // recompute Cmax when n(S1) >= this ...
	maxSkipN2    []int32 // ... or n(S2) >= this
	flags        []byte
}

const (
	flagUseBounds byte = 1 << iota
	flagDecided
	flagCopying
)

// reset sizes every column for np pairs (reusing capacity) and restores
// the neutral accumulator state.
func (t *pairTab) reset(np int) {
	if cap(t.mantTo) < np {
		t.mantTo = make([]float64, np)
		t.mantFrom = make([]float64, np)
		t.cov = make([]float64, np)
		t.expTo = make([]int32, np)
		t.expFrom = make([]int32, np)
		t.l = make([]int32, np)
		t.n0 = make([]int32, np)
		t.minSkipUntil = make([]int32, np)
		t.maxSkipN1 = make([]int32, np)
		t.maxSkipN2 = make([]int32, np)
		t.flags = make([]byte, np)
	}
	t.mantTo = t.mantTo[:np]
	t.mantFrom = t.mantFrom[:np]
	t.cov = t.cov[:np]
	t.expTo = t.expTo[:np]
	t.expFrom = t.expFrom[:np]
	t.l = t.l[:np]
	t.n0 = t.n0[:np]
	t.minSkipUntil = t.minSkipUntil[:np]
	t.maxSkipN1 = t.maxSkipN1[:np]
	t.maxSkipN2 = t.maxSkipN2[:np]
	t.flags = t.flags[:np]
	for i := range t.mantTo {
		t.mantTo[i], t.mantFrom[i] = 1, 1
	}
	clear(t.cov)
	clear(t.expTo)
	clear(t.expFrom)
	clear(t.n0)
	clear(t.minSkipUntil)
	clear(t.maxSkipN1)
	clear(t.maxSkipN2)
	clear(t.flags)
}

// score recovers one direction's full log-space score: the product
// evidence, the coverage seed and the different-value correction for the
// diff remaining unseen shared items.
func (t *pairTab) score(slot int, lnDiff float64) (cTo, cFrom float64) {
	corr := t.cov[slot] + float64(t.l[slot]-t.n0[slot])*lnDiff
	cTo = logAcc(t.mantTo[slot], t.expTo[slot]) + corr
	cFrom = logAcc(t.mantFrom[slot], t.expFrom[slot]) + corr
	return cTo, cFrom
}

// scanRound runs one round of INDEX/BOUND/BOUND+/HYBRID, parallelized per
// opts.Workers. cache may be nil for one-shot callers.
func scanRound(ds *dataset.Dataset, st *bayes.State, p bayes.Params, opts Options, m mode, cache *structCache) *Result {
	buildStart := time.Now()
	if cache == nil {
		cache = &structCache{}
	}
	var rng *rand.Rand
	if opts.Order == index.Random {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	v, pm, lCounts := cache.round(ds, st, p, opts.Order, rng)
	res := &Result{NumSources: ds.NumSources()}
	res.Stats.Rounds = 1
	res.Stats.IndexBuild = time.Since(buildStart)

	detectStart := time.Now()
	scanIndex(ds, st, p, opts, m, v, pm, lCounts, cache, res)
	res.Stats.Detect = time.Since(detectStart)
	return res
}

// makePairTab initializes the per-pair scan columns, including the
// coverage-evidence seed (footnote-1 extension) and the per-pair bound
// mode.
func makePairTab(ds *dataset.Dataset, p bayes.Params, opts Options, m mode,
	pm *index.PairMap, lCounts []int32, tab *pairTab) {

	shareThreshold := opts.shareThreshold()
	tab.reset(pm.Len())
	copy(tab.l, lCounts)
	if p.CoverageWeight > 0 {
		for slot, key := range pm.Keys() {
			s1, s2 := key.Sources()
			tab.cov[slot] = p.CoverageWeight * p.CoverageLLR(int(lCounts[slot]),
				ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
		}
	}
	switch m {
	case modeBound, modeBoundPlus:
		for slot := range tab.flags {
			tab.flags[slot] = flagUseBounds
		}
	case modeHybrid:
		for slot := range tab.flags {
			if lCounts[slot] > shareThreshold {
				tab.flags[slot] = flagUseBounds
			}
		}
	}
}

// scanShard is the accumulation kernel of the index-driven algorithms: one
// worker's entry scan over the shard of the pair space it owns. A pair
// {S1, S2} (S1 < S2, as guaranteed by the sorted provider lists) belongs
// to shard S1 mod workers, so every pair has exactly one writer and its
// state evolves through the same sequence of updates — in scan order — as
// under the sequential scan. nSeen is recomputed per worker over all
// entries, so bound evaluations observe the same per-source counts at the
// same scan positions as sequentially. With workers == 1 this IS the
// sequential scan.
//
// Per entry the kernel hoists everything that does not depend on the pair
// (pv, the popularity term), and per first-provider everything that does
// not depend on the second (the S1 factors of Eq. 3/4), so the inner loop
// is a handful of fused multiply-adds per co-occurrence: one shared
// independence probability, one likelihood-ratio multiply per direction
// (accum.go), and — for bounded pairs — the Cmin/Cmax checks, which are
// the only place a logarithm is taken.
//
//copydetect:hotpath
func scanShard(ds *dataset.Dataset, st *bayes.State, p bayes.Params, m mode,
	v *index.View, pm *index.PairMap, tab *pairTab, nSeen []int32, w, workers int) Stats {

	var stats Stats
	thetaCp, thetaInd := p.ThetaCp(), p.ThetaInd()
	lnDiff := p.LnDiff()
	useTimers := m == modeBoundPlus || m == modeHybrid

	str := v.S
	accs := st.A
	sSel := p.S
	oneMinusS := 1 - p.S
	invN := 1 / p.N
	clear(nSeen) // n(S): values observed per source
	for pos, eid := range v.Order {
		// Tail entries (E̅) only ever update pairs that already exist:
		// pairs co-occurring exclusively inside E̅ were never added to pm,
		// so pm.Get below returns -1 for them and they stay pruned.
		provs := str.Prov[str.ProvOff[eid]:str.ProvOff[eid+1]]
		nextM := v.MaxRemaining[pos+1]
		for _, s := range provs {
			nSeen[s]++
		}
		pv := v.P[eid]
		pop := v.Pop[eid]
		if pop <= 0 {
			pop = invN
		}
		omPv := 1 - pv
		popTerm := omPv * pop
		for x := 0; x < len(provs); x++ {
			s1 := provs[x]
			if !pool.Owns(workers, w, int(s1)) {
				continue // pair owned by another shard
			}
			a1 := accs[s1]
			om1 := 1 - a1
			pvA1 := pv * a1
			popOm1 := popTerm * om1
			provA1 := pvA1 + omPv*om1 // Pr(ΦD(S1)), Eq. 4
			for y := x + 1; y < len(provs); y++ {
				s2 := provs[y]
				slot := pm.Get(s1, s2)
				if slot < 0 {
					continue // pair shares values only inside the tail set
				}
				fl := tab.flags[slot]
				if fl&flagDecided != 0 {
					continue
				}
				// Contribution of sharing this value (Eq. 6), both
				// directions, as likelihood-ratio multiplies. The
				// independence probability (Eq. 3) is shared.
				a2 := accs[s2]
				om2 := 1 - a2
				ind := pvA1*a2 + popOm1*om2
				tab.n0[slot]++
				stats.ValuesExamined++
				stats.Computations += 2
				if ind <= 0 {
					// Degenerate accuracies: sharing is proof (the +Inf
					// branch of ContribSame).
					tab.mantTo[slot] = math.Inf(1)
					tab.mantFrom[slot] = math.Inf(1)
				} else {
					inv := sSel / ind
					tab.mantTo[slot], tab.expTo[slot] = mulRenorm(
						tab.mantTo[slot], tab.expTo[slot], oneMinusS+(pv*a2+omPv*om2)*inv)
					tab.mantFrom[slot], tab.expFrom[slot] = mulRenorm(
						tab.mantFrom[slot], tab.expFrom[slot], oneMinusS+provA1*inv)
				}
				if fl&flagUseBounds == 0 {
					continue
				}
				n0 := tab.n0[slot]
				l := tab.l[slot]
				// big = cov + max(ln C→, ln C←); computed lazily — at most
				// once per co-occurrence — because the logs are the
				// expensive part of a bound evaluation.
				big := 0.0
				haveBig := false
				// Cmin (Eq. 9): assume every unseen shared item disagrees.
				if !useTimers || n0 >= tab.minSkipUntil[slot] {
					big = tab.cov[slot] + math.Max(
						logAcc(tab.mantTo[slot], tab.expTo[slot]),
						logAcc(tab.mantFrom[slot], tab.expFrom[slot]))
					haveBig = true
					cmin := big + float64(l-n0)*lnDiff
					stats.Computations++
					if cmin >= thetaCp {
						tab.flags[slot] = fl | flagDecided | flagCopying
						continue
					}
					if useTimers {
						// The next shared value can raise Cmin by at most
						// M − ln(1−s); skip until enough shared values to
						// possibly reach θcp (Section IV-B).
						t := int32(math.Ceil((thetaCp - cmin) / (nextM - lnDiff)))
						if t < 1 {
							t = 1
						}
						tab.minSkipUntil[slot] = n0 + t
					}
				}
				// Cmax (Eq. 10).
				if !useTimers || nSeen[s1] >= tab.maxSkipN1[slot] || nSeen[s2] >= tab.maxSkipN2[slot] {
					if !haveBig {
						big = tab.cov[slot] + math.Max(
							logAcc(tab.mantTo[slot], tab.expTo[slot]),
							logAcc(tab.mantFrom[slot], tab.expFrom[slot]))
					}
					h := estimateOverlapSeen(ds, nSeen, s1, s2, l, n0)
					cmax := big + (h-float64(n0))*lnDiff + (float64(l)-h)*nextM
					stats.Computations++
					if cmax < thetaInd {
						tab.flags[slot] = fl | flagDecided
						continue
					}
					if useTimers {
						// Each additional different value lowers Cmax by
						// M − ln(1−s); translate the needed count into
						// per-source observation thresholds (Section IV-B).
						t0 := math.Ceil((cmax - thetaInd) / (nextM - lnDiff))
						need := t0 + h - float64(n0)
						cov1 := float64(ds.Coverage(s1))
						cov2 := float64(ds.Coverage(s2))
						n1 := int32(math.Ceil(need * cov1 / float64(l)))
						n2 := int32(math.Ceil(need * cov2 / float64(l)))
						if n1 <= nSeen[s1] {
							n1 = nSeen[s1] + 1
						}
						if n2 <= nSeen[s2] {
							n2 = nSeen[s2] + 1
						}
						tab.maxSkipN1[slot] = n1
						tab.maxSkipN2[slot] = n2
					}
				}
			}
		}
	}
	return stats
}

// finalizePairs is step IV of the scan: every undecided pair has now seen
// all its shared values; recover its log-space scores, apply the
// different-value correction and decide. It runs on the calling goroutine
// over all pairs in slot order, which fixes the order of Result.Pairs
// independently of the worker count.
func finalizePairs(p bayes.Params, pm *index.PairMap, tab *pairTab, res *Result) {
	lnDiff := p.LnDiff()
	numPairs := pm.Len()
	res.Stats.PairsConsidered += int64(numPairs)
	res.Pairs = make([]PairResult, 0, numPairs)
	for slot := 0; slot < numPairs; slot++ {
		s1, s2 := pm.Key(int32(slot)).Sources()
		cTo, cFrom := tab.score(slot, lnDiff)
		if tab.flags[slot]&flagDecided != 0 {
			// Record the pair with the evidence available at its decision
			// point; Cmin is the sound score estimate there.
			prIndep, prTo, prFrom := p.Posterior(cTo, cFrom)
			res.Pairs = append(res.Pairs, PairResult{
				S1: s1, S2: s2, CTo: cTo, CFrom: cFrom,
				PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
				Copying: tab.flags[slot]&flagCopying != 0,
			})
			continue
		}
		res.Stats.Computations += 2
		copying, prIndep, prTo, prFrom := decide(p, cTo, cFrom)
		res.Pairs = append(res.Pairs, PairResult{
			S1: s1, S2: s2, CTo: cTo, CFrom: cFrom,
			PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
			Copying: copying,
		})
	}
}

// estimateOverlapSeen computes h, the estimated number of already-scanned
// data items shared by the pair: max over the two sources of
// n(S)·l(S1,S2)/|D̄(S)| (Section IV-A), clamped into [n0, l].
func estimateOverlapSeen(ds *dataset.Dataset, nSeen []int32, s1, s2 dataset.SourceID, l, n0 int32) float64 {
	lf := float64(l)
	h1 := float64(nSeen[s1]) * lf / float64(ds.Coverage(s1))
	h2 := float64(nSeen[s2]) * lf / float64(ds.Coverage(s2))
	h := math.Max(h1, h2)
	if h < float64(n0) {
		h = float64(n0)
	}
	if h > lf {
		h = lf
	}
	return h
}
