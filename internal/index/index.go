// Package index implements the specialized inverted index of Section III
// of "Scaling up Copy Detection" (Definition 3.2). Each entry corresponds
// to a value D.v provided by at least two sources; it carries the
// probability P(D.v) of the value being true and the contribution score
// C(E) = M̂(D.v), the maximum evidence sharing the value can contribute to
// a copying conclusion (Proposition 3.1). Entries are processed in
// decreasing score order by default; the alternative orderings of the
// paper's Figure 3 are provided for comparison.
//
//copydetect:deterministic
package index

import (
	"math"
	"math/rand"
	"sort"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
)

// Entry is one inverted-index entry: a value of a data item together with
// the sources providing it.
type Entry struct {
	Item  dataset.ItemID
	Value dataset.ValueID
	// P is the probability of the value being true at build time.
	P float64
	// Pop is the value's false popularity under the footnote-2 relaxation
	// (0 = uniform 1/n).
	Pop float64
	// Score is C(E) = M̂(D.v), the maximum contribution of sharing the
	// value over all ordered pairs of providers.
	Score float64
	// Providers lists the sources providing the value, sorted by id. The
	// presence of a source here guarantees its absence from every other
	// entry of the same item.
	Providers []dataset.SourceID
}

// Order selects how entries are arranged for scanning.
type Order int

const (
	// ByContribution processes entries in decreasing contribution score,
	// the ordering proposed by the paper.
	ByContribution Order = iota
	// ByProvider processes entries in increasing number of providers.
	ByProvider
	// Random processes entries in random order (requires a rand source).
	Random
)

func (o Order) String() string {
	switch o {
	case ByContribution:
		return "ByContribution"
	case ByProvider:
		return "ByProvider"
	case Random:
		return "Random"
	default:
		return "Order(?)"
	}
}

// Index is the built inverted index in a fixed processing order.
type Index struct {
	Entries []Entry
	// InTail[i] reports whether Entries[i] belongs to the tail set E̅: the
	// subset of lowest-score entries whose scores sum to < ln(β/2α).
	// Source pairs sharing values only inside E̅ cannot reach the copying
	// threshold and are never instantiated.
	InTail []bool
	// MaxRemaining[i] is the maximum score among Entries[i:]; it is the
	// sound value of M (the best possible contribution of a not yet
	// scanned entry) under any processing order. MaxRemaining[len(Entries)]
	// is 0. Under ByContribution, MaxRemaining[i] == Entries[i].Score.
	MaxRemaining []float64
	// TailScoreSum is the total score mass inside E̅.
	TailScoreSum float64
}

// Build constructs the inverted index for ds under the statistical state
// st, ordered by ord. rng is consulted only for Order Random and may be
// nil otherwise.
func Build(ds *dataset.Dataset, st *bayes.State, p bayes.Params, ord Order, rng *rand.Rand) *Index {
	entries := Collect(ds, st, p)
	switch ord {
	case ByContribution:
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Score > entries[j].Score })
	case ByProvider:
		sort.SliceStable(entries, func(i, j int) bool { return len(entries[i].Providers) < len(entries[j].Providers) })
	case Random:
		rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	}
	idx := &Index{Entries: entries}
	idx.finish(p)
	return idx
}

// Collect enumerates the raw index entries (values provided by at least
// two sources) in item order, without sorting or tail computation. It is
// called once per round, so it counts providers per value first and only
// allocates exactly-sized provider slices for shared values.
func Collect(ds *dataset.Dataset, st *bayes.State, p bayes.Params) []Entry {
	var entries []Entry
	accBuf := make([]float64, 0, 16)
	var counts, slot []int32
	for d := range ds.ByItem {
		svs := ds.ByItem[d]
		if len(svs) < 2 {
			continue
		}
		nv := ds.NumValues(dataset.ItemID(d))
		if cap(counts) < nv {
			counts = make([]int32, nv*2)
			slot = make([]int32, nv*2)
		}
		counts = counts[:nv]
		slot = slot[:nv]
		for v := range counts {
			counts[v] = 0
		}
		for _, sv := range svs {
			counts[sv.Value]++
		}
		first := len(entries)
		for v := 0; v < nv; v++ {
			if counts[v] < 2 {
				slot[v] = -1
				continue
			}
			slot[v] = int32(len(entries))
			entries = append(entries, Entry{
				Item:      dataset.ItemID(d),
				Value:     dataset.ValueID(v),
				P:         st.P[d][v],
				Pop:       st.PopOf(int32(d), int32(v)),
				Providers: make([]dataset.SourceID, 0, counts[v]),
			})
		}
		if first == len(entries) {
			continue
		}
		for _, sv := range svs {
			if i := slot[sv.Value]; i >= 0 {
				entries[i].Providers = append(entries[i].Providers, sv.Source)
			}
		}
		for i := first; i < len(entries); i++ {
			e := &entries[i]
			accBuf = accBuf[:0]
			for _, s := range e.Providers {
				accBuf = append(accBuf, st.A[s])
			}
			e.Score = p.MaxEntryScoreDist(e.P, e.Pop, accBuf)
		}
	}
	return entries
}

// finish computes the tail set and the remaining-score maxima for the
// current entry order.
func (idx *Index) finish(p bayes.Params) {
	n := len(idx.Entries)
	idx.InTail = make([]bool, n)
	idx.MaxRemaining = make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		idx.MaxRemaining[i] = math.Max(idx.MaxRemaining[i+1], idx.Entries[i].Score)
	}
	// The tail set is defined on scores, independent of processing order:
	// take entries from the lowest score upward while the accumulated sum
	// stays below θind = ln(β/2α).
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return idx.Entries[order[a]].Score < idx.Entries[order[b]].Score })
	limit := p.ThetaInd()
	sum := 0.0
	for _, i := range order {
		s := idx.Entries[i].Score
		if sum+s >= limit {
			break
		}
		sum += s
		idx.InTail[i] = true
	}
	idx.TailScoreSum = sum
}

// NumEntries returns the number of index entries (Table V's last column).
func (idx *Index) NumEntries() int { return len(idx.Entries) }

// NumTail returns |E̅|.
func (idx *Index) NumTail() int {
	n := 0
	for _, t := range idx.InTail {
		if t {
			n++
		}
	}
	return n
}

// RescoreInPlace recomputes P and Score of every entry from a new state
// without changing the entry order. INCREMENTAL (Section V) freezes the
// order of the round-2 index and only refreshes scores.
func (idx *Index) RescoreInPlace(st *bayes.State, p bayes.Params) {
	accBuf := make([]float64, 0, 16)
	for i := range idx.Entries {
		e := &idx.Entries[i]
		accBuf = accBuf[:0]
		for _, s := range e.Providers {
			accBuf = append(accBuf, st.A[s])
		}
		e.P = st.P[e.Item][e.Value]
		e.Pop = st.PopOf(int32(e.Item), int32(e.Value))
		e.Score = p.MaxEntryScoreDist(e.P, e.Pop, accBuf)
	}
	n := len(idx.Entries)
	for i := n - 1; i >= 0; i-- {
		idx.MaxRemaining[i] = math.Max(idx.MaxRemaining[i+1], idx.Entries[i].Score)
	}
}
