package core

import (
	"math"
	"sort"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
	"copydetect/internal/pool"
)

// Incremental is the iterative algorithm of Section V. The first
// WarmRounds rounds run HYBRID from scratch (the paper found results vary
// too much before round 3 for incremental refinement to pay off). At the
// end of the warm phase it freezes the inverted index — entry set, entry
// order, candidate pairs and shared-item counts never change across
// rounds, because the observations are fixed — snapshots the statistical
// state as the base, and computes exact per-pair scores against that base.
//
// Every later round then:
//
//  1. classifies each entry by how much its contribution score M̂ drifted
//     from the base (computed on the base accuracies, as Section V-A
//     prescribes, so value-probability drift is isolated from accuracy
//     drift); entries with |Δ| ≥ RhoV are big-change entries, and the
//     largest small change per sign becomes the estimate ∆ρ;
//  2. applies the exact score deltas of big-change entries to the pairs
//     sharing them (pass A, cheap: big entries are few);
//  3. re-examines each pair in up to three passes. Pass 1 challenges the
//     previous decision with the adversarial changes only (big decreases
//     for copying pairs, big increases for no-copying pairs) plus the
//     ∆ρ-bounded worst case of all small changes; pairs whose decision
//     survives settle here. Pass 2 adds the compensating big changes.
//     Pass 3 recomputes the pair exactly with the current state and may
//     flip the decision.
//
// Pass-1 and pass-2 settlements are sound: the estimates bound the exact
// current score adversarially, so a settled decision equals the decision
// exact scores would produce under the θcp/θind thresholds. Only pairs in
// the posterior middle zone always reach pass 3.
//
// Pairs containing a source whose accuracy drifted by ≥ RhoA from the
// base are recomputed exactly (pass 3), as Section V-A requires. When too
// many entries or accuracies drift past their thresholds the detector
// rebases: it recomputes exact base scores against the current state —
// the analogue of the paper's periodic re-computation rounds.
//
// Deviation from the paper, recorded in DESIGN.md: base scores are exact
// rather than the Ĉ under-estimates derived from BOUND+ decision points.
// This costs one exact index scan at the end of the warm phase and makes
// category E̅1 (entries after the decision point) empty; in exchange the
// three passes need no per-pair decision-point bookkeeping. The observable
// behaviour the paper measures (Table VIII: per-round speedup and the
// dominance of pass-1 terminations) is preserved.
type Incremental struct {
	Params bayes.Params
	Opts   Options
	// RhoV is the big-change threshold on entry contribution scores. Zero
	// selects the paper's adaptive rule (Section V-A): order the absolute
	// score changes decreasingly and put the threshold above the largest
	// gap between consecutive changes, so the cluster of genuinely moved
	// entries is handled exactly and ∆ρ — the largest remaining "small"
	// change — stays tight. (The paper's experiments fix 1.0, chosen by
	// observing those gaps.) RhoA is the big-change threshold on source
	// accuracies; zero selects the paper's 0.2.
	RhoV, RhoA float64
	// WarmRounds is the number of initial HYBRID rounds (paper: 2).
	// Zero selects 2.
	WarmRounds int

	prepared  bool
	warm      *Hybrid
	idx       *index.Index
	pm        *index.PairMap
	l         []int32 // shared items per pair
	n         []int32 // shared values per pair (constant across rounds)
	base      *bayes.State
	baseScore []float64 // per-entry M̂ at base
	cTo       []float64 // exact full score C→ at base (incl. ln(1−s) term)
	cFrom     []float64
	copying   []bool

	// Per-round scratch, cleared via the touched list.
	dNegTo, dPosTo     []float64
	dNegFrom, dPosFrom []float64
	smallDec, smallInc []int32 // per-pair counts of small-change shared entries
	touched            []int32
	isTouched          []bool

	// LastPass describes the most recent incremental round, and History
	// accumulates one entry per incremental round (Table VIII).
	LastPass PassStats
	History  []PassStats
}

// PassStats reports where pairs terminated during an incremental round.
type PassStats struct {
	SettledPass1 int
	SettledPass2 int
	SettledPass3 int // includes exact recomputations forced by accuracy drift
	BigEntries   int
	Rebased      bool
}

// adaptiveRhoV implements the paper's gap heuristic on the absolute score
// changes of the current round. Changes below the noise floor are ignored;
// with no significant change it returns +Inf (nothing is "big").
func adaptiveRhoV(absDeltas []float64) float64 {
	const noise = 1e-6
	sig := make([]float64, 0, len(absDeltas))
	for _, d := range absDeltas {
		if d > noise {
			sig = append(sig, d)
		}
	}
	if len(sig) == 0 {
		return math.Inf(1)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sig)))
	if len(sig) == 1 {
		return sig[0]
	}
	bestGap, bestIdx := -1.0, 0
	for i := 0; i+1 < len(sig); i++ {
		if gap := sig[i] - sig[i+1]; gap > bestGap {
			bestGap = gap
			bestIdx = i
		}
	}
	return sig[bestIdx]
}

func (d *Incremental) rhoA() float64 {
	if d.RhoA == 0 {
		return 0.2
	}
	return d.RhoA
}

func (d *Incremental) warmRounds() int {
	if d.WarmRounds == 0 {
		return 2
	}
	return d.WarmRounds
}

// Name implements Detector.
func (d *Incremental) Name() string { return "INCREMENTAL" }

// Reset drops all cross-round state so the detector can serve a fresh
// iterative process.
func (d *Incremental) Reset() {
	d.prepared = false
	d.warm = nil
	d.idx = nil
	d.pm = nil
	d.l, d.n = nil, nil
	d.base = nil
	d.baseScore = nil
	d.cTo, d.cFrom = nil, nil
	d.copying = nil
	d.dNegTo, d.dPosTo, d.dNegFrom, d.dPosFrom = nil, nil, nil, nil
	d.touched, d.isTouched = nil, nil
	d.LastPass = PassStats{}
	d.History = nil
}

// DetectRound implements Detector.
func (d *Incremental) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	if round <= d.warmRounds() {
		if d.warm == nil {
			d.warm = &Hybrid{Params: d.Params, Opts: d.Opts}
		}
		res := d.warm.DetectRound(ds, st, round)
		if round == d.warmRounds() {
			prepStart := time.Now()
			d.prepare(ds, st, &res.Stats)
			res.Stats.IndexBuild += time.Since(prepStart)
		}
		return res
	}
	if !d.prepared {
		// Caller skipped the warm rounds; fall back to preparing now.
		res := &Result{NumSources: ds.NumSources()}
		res.Stats.Rounds = 1
		prepStart := time.Now()
		d.prepare(ds, st, &res.Stats)
		res.Stats.IndexBuild = time.Since(prepStart)
		d.emit(res)
		return res
	}
	return d.incrementalRound(ds, st)
}

// prepare freezes the index against st and computes exact base scores and
// decisions for every candidate pair.
func (d *Incremental) prepare(ds *dataset.Dataset, st *bayes.State, stats *Stats) {
	d.idx = index.Build(ds, st, d.Params, index.ByContribution, nil)
	d.pm = index.CandidatePairs(d.idx, ds.NumSources())
	d.l = index.SharedItemCounts(ds, d.pm)
	np := d.pm.Len()
	d.n = make([]int32, np)
	d.cTo = make([]float64, np)
	d.cFrom = make([]float64, np)
	d.copying = make([]bool, np)
	d.baseScore = make([]float64, len(d.idx.Entries))
	d.base = st.Clone()

	p := d.Params
	if p.CoverageWeight > 0 {
		for slot := 0; slot < np; slot++ {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			cov := p.CoverageWeight * p.CoverageLLR(int(d.l[slot]),
				ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
			d.cTo[slot] = cov
			d.cFrom[slot] = cov
		}
	}
	for i := range d.idx.Entries {
		d.baseScore[i] = d.idx.Entries[i].Score
	}
	// The exact base-score accumulation is the same double loop as the
	// entry scan, so it shards the same way: each worker owns the pairs
	// whose smaller source id falls in its shard and visits the entries in
	// index order, making the per-slot sums bit-identical to a sequential
	// pass for every worker count.
	workers := pool.Clamp(d.Opts.Workers)
	for _, comps := range pool.Shards(workers, func(w int) int64 {
		var comps int64
		for i := range d.idx.Entries {
			e := &d.idx.Entries[i]
			provs := e.Providers
			for x := 0; x < len(provs); x++ {
				if !pool.Owns(workers, w, int(provs[x])) {
					continue
				}
				for y := x + 1; y < len(provs); y++ {
					slot := d.pm.Get(provs[x], provs[y])
					if slot < 0 {
						continue
					}
					d.cTo[slot] += p.ContribSameDist(e.P, e.Pop, st.A[provs[x]], st.A[provs[y]])
					d.cFrom[slot] += p.ContribSameDist(e.P, e.Pop, st.A[provs[y]], st.A[provs[x]])
					d.n[slot]++
					comps += 2
				}
			}
		}
		return comps
	}) {
		stats.Computations += comps
	}
	lnDiff := p.LnDiff()
	pool.Run(workers, func(w int) {
		for slot := w; slot < np; slot += workers {
			diff := float64(d.l[slot] - d.n[slot])
			d.cTo[slot] += diff * lnDiff
			d.cFrom[slot] += diff * lnDiff
			d.copying[slot] = p.PrIndep(d.cTo[slot], d.cFrom[slot]) <= 0.5
		}
	})
	stats.Computations += 2 * int64(np)
	d.dNegTo = make([]float64, np)
	d.dPosTo = make([]float64, np)
	d.dNegFrom = make([]float64, np)
	d.dPosFrom = make([]float64, np)
	d.smallDec = make([]int32, np)
	d.smallInc = make([]int32, np)
	d.isTouched = make([]bool, np)
	d.touched = d.touched[:0]
	d.prepared = true
}

// incrementalRound performs the three-pass refinement of Section V.
func (d *Incremental) incrementalRound(ds *dataset.Dataset, st *bayes.State) *Result {
	p := d.Params
	res := &Result{NumSources: ds.NumSources()}
	res.Stats.Rounds = 1
	start := time.Now()
	d.LastPass = PassStats{}

	// Entry classification: drift of M̂ since the base, holding provider
	// accuracies at their base values to isolate value-probability change.
	// Each entry's drift is a pure function of the entry, so workers take
	// a strided slice of the entry range and write disjoint slots.
	workers := pool.Clamp(d.Opts.Workers)
	deltas := make([]float64, len(d.idx.Entries))
	absDeltas := make([]float64, len(d.idx.Entries))
	pool.Run(workers, func(w int) {
		accBuf := make([]float64, 0, 16)
		for i := w; i < len(d.idx.Entries); i += workers {
			e := &d.idx.Entries[i]
			accBuf = accBuf[:0]
			for _, s := range e.Providers {
				accBuf = append(accBuf, d.base.A[s])
			}
			pNew := st.P[e.Item][e.Value]
			deltas[i] = p.MaxEntryScoreDist(pNew, e.Pop, accBuf) - d.baseScore[i]
			absDeltas[i] = math.Abs(deltas[i])
		}
	})
	res.Stats.Computations += int64(len(d.idx.Entries))
	rhoV := d.RhoV
	if rhoV == 0 {
		rhoV = adaptiveRhoV(absDeltas)
	}
	var bigEntries []int32
	dRhoDec, dRhoInc := 0.0, 0.0
	for i, delta := range deltas {
		switch {
		case absDeltas[i] >= rhoV:
			bigEntries = append(bigEntries, int32(i))
		case delta < 0:
			if -delta > dRhoDec {
				dRhoDec = -delta
			}
		case delta > 0:
			if delta > dRhoInc {
				dRhoInc = delta
			}
		}
	}
	d.LastPass.BigEntries = len(bigEntries)

	// Accuracy drift since the base.
	rhoA := d.rhoA()
	bigAcc := make([]bool, ds.NumSources())
	numBigAcc := 0
	for s := range bigAcc {
		if math.Abs(st.A[s]-d.base.A[s]) >= rhoA {
			bigAcc[s] = true
			numBigAcc++
		}
	}

	// Rebase when drift overwhelms the incremental machinery: too many
	// big-change entries, too many drifted accuracies, or "small" changes
	// so large that the ∆ρ bounds cannot settle anything.
	if len(bigEntries) > max(64, len(d.idx.Entries)/20) ||
		numBigAcc > max(2, ds.NumSources()/50) ||
		dRhoDec+dRhoInc > p.ThetaInd() {
		d.LastPass.Rebased = true
		d.prepare(ds, st, &res.Stats)
		d.LastPass.SettledPass3 = d.pm.Len()
		d.History = append(d.History, d.LastPass)
		d.emit(res)
		res.Stats.Detect = time.Since(start)
		return res
	}

	// Pass A: scan the drifted entries once. Big-change entries contribute
	// exact per-pair deltas, sign-separated per direction; small-change
	// entries only bump per-pair counters (|E̅↘| and |E̅↗| of Section
	// V-B), so the ∆ρ estimates below multiply the true counts rather than
	// the pair's total shared values. Entries whose score did not move at
	// all (the vast majority after convergence sets in) are skipped.
	// Parallel: the per-pair delta accumulators shard exactly like the
	// entry scan (owner = smaller source id mod workers, entries visited
	// in index order), and each worker collects the pairs it touched into
	// a private list merged in shard order afterwards.
	const noise = 1e-6
	type passADelta struct {
		touched []int32
		comps   int64
	}
	for _, sh := range pool.Shards(workers, func(w int) passADelta {
		var sh passADelta
		for i := range d.idx.Entries {
			if absDeltas[i] <= noise {
				continue
			}
			big := absDeltas[i] >= rhoV
			e := &d.idx.Entries[i]
			provs := e.Providers
			var pOld, pNew float64
			if big {
				pOld = d.base.P[e.Item][e.Value]
				pNew = st.P[e.Item][e.Value]
			}
			dec := deltas[i] < 0
			for x := 0; x < len(provs); x++ {
				if !pool.Owns(workers, w, int(provs[x])) {
					continue
				}
				for y := x + 1; y < len(provs); y++ {
					slot := d.pm.Get(provs[x], provs[y])
					if slot < 0 {
						continue
					}
					if !d.isTouched[slot] {
						d.isTouched[slot] = true
						sh.touched = append(sh.touched, slot)
					}
					if !big {
						if dec {
							d.smallDec[slot]++
						} else {
							d.smallInc[slot]++
						}
						continue
					}
					a1, a2 := d.base.A[provs[x]], d.base.A[provs[y]]
					dTo := p.ContribSameDist(pNew, e.Pop, a1, a2) - p.ContribSameDist(pOld, e.Pop, a1, a2)
					dFrom := p.ContribSameDist(pNew, e.Pop, a2, a1) - p.ContribSameDist(pOld, e.Pop, a2, a1)
					sh.comps += 2
					if dTo < 0 {
						d.dNegTo[slot] += dTo
					} else {
						d.dPosTo[slot] += dTo
					}
					if dFrom < 0 {
						d.dNegFrom[slot] += dFrom
					} else {
						d.dPosFrom[slot] += dFrom
					}
				}
			}
		}
		return sh
	}) {
		d.touched = append(d.touched, sh.touched...)
		res.Stats.Computations += sh.comps
	}

	// Passes 1–3 per pair. Pairs are independent here — each reads only
	// its own slot state and writes only its own decision — so workers
	// take a strided slice of the slot range; pass counters and stats are
	// accumulated per worker and summed in shard order.
	thetaCp, thetaInd := p.ThetaCp(), p.ThetaInd()
	type passOut struct {
		pass  PassStats
		stats Stats
	}
	for _, sh := range pool.Shards(workers, func(w int) passOut {
		var out passOut
		for slot := w; slot < np(d); slot += workers {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			needExact := bigAcc[s1] || bigAcc[s2]
			if !needExact {
				decBound := dRhoDec * float64(d.smallDec[slot])
				incBound := dRhoInc * float64(d.smallInc[slot])
				if d.copying[slot] {
					// Pass 1: adversarial view — exact big decreases plus the
					// worst-case estimate of the pair's small decreases.
					cand := math.Max(d.cTo[slot]+d.dNegTo[slot], d.cFrom[slot]+d.dNegFrom[slot]) - decBound
					out.stats.Computations++
					if cand >= thetaCp {
						out.pass.SettledPass1++
						continue
					}
					// Pass 2: compensate with the exact big increases.
					cand = math.Max(d.cTo[slot]+d.dNegTo[slot]+d.dPosTo[slot],
						d.cFrom[slot]+d.dNegFrom[slot]+d.dPosFrom[slot]) - decBound
					out.stats.Computations++
					if cand >= thetaCp {
						out.pass.SettledPass2++
						continue
					}
				} else {
					// Pass 1 for no-copying pairs: adversarial increases.
					cTo := d.cTo[slot] + d.dPosTo[slot] + incBound
					cFrom := d.cFrom[slot] + d.dPosFrom[slot] + incBound
					out.stats.Computations++
					if cTo < thetaInd && cFrom < thetaInd {
						out.pass.SettledPass1++
						continue
					}
					// Pass 2: compensate with the exact big decreases.
					cTo += d.dNegTo[slot]
					cFrom += d.dNegFrom[slot]
					out.stats.Computations++
					if cTo < thetaInd && cFrom < thetaInd {
						out.pass.SettledPass2++
						continue
					}
				}
			}
			// Pass 3: exact recomputation against the current state.
			out.pass.SettledPass3++
			cTo, cFrom := d.exactPair(ds, st, s1, s2, &out.stats)
			d.copying[slot], _, _, _ = decide(p, cTo, cFrom)
		}
		return out
	}) {
		d.LastPass.SettledPass1 += sh.pass.SettledPass1
		d.LastPass.SettledPass2 += sh.pass.SettledPass2
		d.LastPass.SettledPass3 += sh.pass.SettledPass3
		res.Stats.Add(sh.stats)
	}

	d.emit(res)

	// Clear scratch.
	for _, slot := range d.touched {
		d.dNegTo[slot], d.dPosTo[slot] = 0, 0
		d.dNegFrom[slot], d.dPosFrom[slot] = 0, 0
		d.smallDec[slot], d.smallInc[slot] = 0, 0
		d.isTouched[slot] = false
	}
	d.touched = d.touched[:0]
	d.History = append(d.History, d.LastPass)
	res.Stats.Detect = time.Since(start)
	return res
}

// exactPair recomputes the full scores of one pair with current state by
// merging the two observation lists (the cost the passes try to avoid).
func (d *Incremental) exactPair(ds *dataset.Dataset, st *bayes.State, s1, s2 dataset.SourceID, stats *Stats) (cTo, cFrom float64) {
	p := d.Params
	lnDiff := p.LnDiff()
	a, b := ds.BySource[s1], ds.BySource[s2]
	nShared := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			nShared++
			if a[i].Value == b[j].Value {
				pv := st.P[a[i].Item][a[i].Value]
				pop := st.PopOf(int32(a[i].Item), int32(a[i].Value))
				cTo += p.ContribSameDist(pv, pop, st.A[s1], st.A[s2])
				cFrom += p.ContribSameDist(pv, pop, st.A[s2], st.A[s1])
				stats.ValuesExamined++
			} else {
				cTo += lnDiff
				cFrom += lnDiff
			}
			stats.Computations += 2
			i++
			j++
		}
	}
	if p.CoverageWeight > 0 && nShared > 0 {
		cov := p.CoverageWeight * p.CoverageLLR(nShared, len(a), len(b), ds.NumItems(), p.CoverageCap)
		cTo += cov
		cFrom += cov
	}
	return cTo, cFrom
}

// emit materializes the per-pair results from the stored decisions and the
// best available score estimates. The output slice is indexed by pair
// slot, so the strided parallel fill yields the same ordering as a
// sequential walk for every worker count.
func (d *Incremental) emit(res *Result) {
	p := d.Params
	numPairs := np(d)
	pairs := make([]PairResult, numPairs)
	workers := pool.Clamp(d.Opts.Workers)
	pool.Run(workers, func(w int) {
		for slot := w; slot < numPairs; slot += workers {
			s1, s2 := d.pm.Key(int32(slot)).Sources()
			cTo := d.cTo[slot] + d.dNegTo[slot] + d.dPosTo[slot]
			cFrom := d.cFrom[slot] + d.dNegFrom[slot] + d.dPosFrom[slot]
			prIndep, prTo, prFrom := p.Posterior(cTo, cFrom)
			pairs[slot] = PairResult{
				S1: s1, S2: s2, CTo: cTo, CFrom: cFrom,
				PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
				Copying: d.copying[slot],
			}
		}
	})
	res.Pairs = pairs
	res.Stats.PairsConsidered += int64(numPairs)
}

func np(d *Incremental) int { return d.pm.Len() }
