// Package dataset defines the structured-data model used throughout the
// copy-detection library: data sources, data items, the values each source
// provides for each item, and an optional gold standard of true values.
//
// The model follows Section II of "Scaling up Copy Detection" (Li et al.,
// ICDE 2015): a domain D of data items, a set S of sources, each source
// providing at most one value per data item. Schema mapping and entity
// resolution are assumed done, so items and values are already aligned
// across sources; values are interned per item as dense integer ids.
//
//copydetect:deterministic
package dataset

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// SourceID identifies a data source; ids are dense in [0, NumSources).
type SourceID = int32

// ItemID identifies a data item; ids are dense in [0, NumItems).
type ItemID = int32

// ValueID identifies a value within one data item's domain; ids are dense
// per item in [0, NumValues(item)). The same ValueID in different items is
// unrelated.
type ValueID = int32

// NoValue marks the absence of a value (missing cell, unknown truth).
const NoValue ValueID = -1

// Obs is one observation from the perspective of a source: the source
// provides value Value on data item Item.
type Obs struct {
	Item  ItemID
	Value ValueID
}

// SV is one observation from the perspective of a data item: source Source
// provides value Value on it.
type SV struct {
	Source SourceID
	Value  ValueID
}

// Dataset is an immutable collection of observations over sources × items.
// Build one with a Builder; all slices are sorted as documented and must
// not be mutated afterwards.
type Dataset struct {
	// SourceNames[s] is the display name of source s.
	SourceNames []string
	// ItemNames[d] is the display name of data item d.
	ItemNames []string
	// ValueNames[d][v] is the display label of value v of item d.
	ValueNames [][]string

	// BySource[s] lists the observations of source s, sorted by Item.
	BySource [][]Obs
	// ByItem[d] lists the observations on item d, sorted by Source.
	ByItem [][]SV

	// Truth[d] is the gold-standard true value of item d, or NoValue when
	// unknown. May be nil when no gold standard exists.
	Truth []ValueID

	// Generation is a process-unique stamp assigned when the Dataset is
	// materialized (Builder.Build, the codecs, the generators). Caches
	// keyed on a *Dataset must also compare Generation: the Go allocator
	// may place a recreated dataset at the address of a deleted one, and a
	// pointer comparison alone would then serve stale cached structures.
	// Hand-constructed literals carry Generation 0 and fall back to
	// pointer identity.
	Generation uint64
}

// generationCounter backs FreshGeneration; 0 is reserved for literals.
var generationCounter atomic.Uint64

// FreshGeneration returns a process-unique, non-zero generation stamp.
// Every code path that materializes a new Dataset calls it, so two
// Datasets never share a (pointer, generation) identity even if the
// allocator reuses the address.
func FreshGeneration() uint64 { return generationCounter.Add(1) }

// NumSources returns |S|.
func (ds *Dataset) NumSources() int { return len(ds.SourceNames) }

// NumItems returns |D|.
func (ds *Dataset) NumItems() int { return len(ds.ItemNames) }

// NumValues returns the number of distinct values observed on item d.
func (ds *Dataset) NumValues(d ItemID) int { return len(ds.ValueNames[d]) }

// Coverage returns |D̄(S)|, the number of items source s provides.
func (ds *Dataset) Coverage(s SourceID) int { return len(ds.BySource[s]) }

// NumObservations returns the total number of non-empty cells.
func (ds *Dataset) NumObservations() int {
	n := 0
	for _, obs := range ds.BySource {
		n += len(obs)
	}
	return n
}

// TotalDistinctValues returns the number of distinct (item, value) pairs.
func (ds *Dataset) TotalDistinctValues() int {
	n := 0
	for _, vs := range ds.ValueNames {
		n += len(vs)
	}
	return n
}

// ValueOf returns the value source s provides on item d, or NoValue if s
// does not cover d. It runs a binary search over the source's observations.
func (ds *Dataset) ValueOf(s SourceID, d ItemID) ValueID {
	obs := ds.BySource[s]
	i := sort.Search(len(obs), func(i int) bool { return obs[i].Item >= d })
	if i < len(obs) && obs[i].Item == d {
		return obs[i].Value
	}
	return NoValue
}

// SharedItems returns l(S1,S2): the number of items covered by both
// sources. It merges the two sorted observation lists.
func (ds *Dataset) SharedItems(s1, s2 SourceID) int {
	a, b := ds.BySource[s1], ds.BySource[s2]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// SharedValues returns n(S1,S2): the number of items on which the two
// sources provide the same value.
func (ds *Dataset) SharedValues(s1, s2 SourceID) int {
	a, b := ds.BySource[s1], ds.BySource[s2]
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			if a[i].Value == b[j].Value {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// Validate checks internal consistency of the dataset and returns a
// descriptive error on the first violation found. It is intended for tests
// and for data loaded from external files.
func (ds *Dataset) Validate() error {
	if len(ds.BySource) != len(ds.SourceNames) {
		return fmt.Errorf("dataset: BySource has %d sources, SourceNames has %d", len(ds.BySource), len(ds.SourceNames))
	}
	if len(ds.ByItem) != len(ds.ItemNames) {
		return fmt.Errorf("dataset: ByItem has %d items, ItemNames has %d", len(ds.ByItem), len(ds.ItemNames))
	}
	if len(ds.ValueNames) != len(ds.ItemNames) {
		return fmt.Errorf("dataset: ValueNames has %d items, ItemNames has %d", len(ds.ValueNames), len(ds.ItemNames))
	}
	if ds.Truth != nil && len(ds.Truth) != len(ds.ItemNames) {
		return fmt.Errorf("dataset: Truth has %d items, ItemNames has %d", len(ds.Truth), len(ds.ItemNames))
	}
	nObsBySource := 0
	for s, obs := range ds.BySource {
		for i, o := range obs {
			if i > 0 && obs[i-1].Item >= o.Item {
				return fmt.Errorf("dataset: source %d observations not strictly sorted by item at %d", s, i)
			}
			if o.Item < 0 || int(o.Item) >= len(ds.ItemNames) {
				return fmt.Errorf("dataset: source %d references item %d out of range", s, o.Item)
			}
			if o.Value < 0 || int(o.Value) >= len(ds.ValueNames[o.Item]) {
				return fmt.Errorf("dataset: source %d item %d references value %d out of range", s, o.Item, o.Value)
			}
		}
		nObsBySource += len(obs)
	}
	nObsByItem := 0
	for d, svs := range ds.ByItem {
		for i, sv := range svs {
			if i > 0 && svs[i-1].Source >= sv.Source {
				return fmt.Errorf("dataset: item %d observations not strictly sorted by source at %d", d, i)
			}
			if sv.Source < 0 || int(sv.Source) >= len(ds.SourceNames) {
				return fmt.Errorf("dataset: item %d references source %d out of range", d, sv.Source)
			}
			if got := ds.ValueOf(sv.Source, ItemID(d)); got != sv.Value {
				return fmt.Errorf("dataset: item %d source %d: ByItem says value %d, BySource says %d", d, sv.Source, sv.Value, got)
			}
		}
		nObsByItem += len(svs)
	}
	if nObsBySource != nObsByItem {
		return fmt.Errorf("dataset: BySource has %d observations, ByItem has %d", nObsBySource, nObsByItem)
	}
	if ds.Truth != nil {
		for d, t := range ds.Truth {
			if t != NoValue && (t < 0 || int(t) >= len(ds.ValueNames[d])) {
				return fmt.Errorf("dataset: truth of item %d references value %d out of range", d, t)
			}
		}
	}
	return nil
}

// Builder incrementally assembles a Dataset from named observations.
// The zero value is ready to use.
type Builder struct {
	sourceIDs map[string]SourceID
	itemIDs   map[string]ItemID
	valueIDs  []map[string]ValueID // per item

	sourceNames []string
	itemNames   []string
	valueNames  [][]string

	obs   map[int64]ValueID // (source,item) -> value
	truth map[ItemID]ValueID
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		sourceIDs: make(map[string]SourceID),
		itemIDs:   make(map[string]ItemID),
		obs:       make(map[int64]ValueID),
		truth:     make(map[ItemID]ValueID),
	}
}

// Source interns a source name and returns its id.
func (b *Builder) Source(name string) SourceID {
	if id, ok := b.sourceIDs[name]; ok {
		return id
	}
	id := SourceID(len(b.sourceNames))
	b.sourceIDs[name] = id
	b.sourceNames = append(b.sourceNames, name)
	return id
}

// Item interns an item name and returns its id.
func (b *Builder) Item(name string) ItemID {
	if id, ok := b.itemIDs[name]; ok {
		return id
	}
	id := ItemID(len(b.itemNames))
	b.itemIDs[name] = id
	b.itemNames = append(b.itemNames, name)
	b.valueIDs = append(b.valueIDs, make(map[string]ValueID))
	b.valueNames = append(b.valueNames, nil)
	return id
}

// Value interns a value label within an item's domain and returns its id.
func (b *Builder) Value(item ItemID, label string) ValueID {
	if id, ok := b.valueIDs[item][label]; ok {
		return id
	}
	id := ValueID(len(b.valueNames[item]))
	b.valueIDs[item][label] = id
	b.valueNames[item] = append(b.valueNames[item], label)
	return id
}

// Add records that the named source provides the labeled value on the
// named item. Adding the same (source, item) twice overwrites the value;
// the last write wins.
func (b *Builder) Add(source, item, value string) {
	s := b.Source(source)
	d := b.Item(item)
	v := b.Value(d, value)
	b.AddIDs(s, d, v)
}

// AddRecords appends a batch of named observations in order. Together
// with calling Build after every batch it is the streaming-append path
// used by the serving layer: the Builder keeps interning across batches,
// and each Build returns an immutable snapshot of everything appended so
// far. Replaying the same records in the same order into a fresh Builder
// reproduces the same id assignment, which is what makes streamed
// detection results comparable to batch runs.
func (b *Builder) AddRecords(recs []Record) {
	for _, r := range recs {
		b.Add(r.Source, r.Item, r.Value)
	}
}

// AddIDs records an observation by pre-interned ids.
func (b *Builder) AddIDs(s SourceID, d ItemID, v ValueID) {
	b.obs[int64(s)<<32|int64(uint32(d))] = v
}

// SetTruth records the gold-standard true value for the named item.
func (b *Builder) SetTruth(item, value string) {
	d := b.Item(item)
	b.truth[d] = b.Value(d, value)
}

// SetTruthIDs records the gold-standard true value by ids.
func (b *Builder) SetTruthIDs(d ItemID, v ValueID) { b.truth[d] = v }

// NumObservations reports how many (source, item) cells have been added.
func (b *Builder) NumObservations() int { return len(b.obs) }

// NumSources reports how many distinct sources have been interned.
func (b *Builder) NumSources() int { return len(b.sourceNames) }

// NumItems reports how many distinct items have been interned.
func (b *Builder) NumItems() int { return len(b.itemNames) }

// Build materializes the dataset. The Builder can keep being used and
// Build called again, but the returned Dataset never changes.
func (b *Builder) Build() *Dataset {
	ds := &Dataset{
		SourceNames: append([]string(nil), b.sourceNames...),
		ItemNames:   append([]string(nil), b.itemNames...),
		ValueNames:  make([][]string, len(b.valueNames)),
		BySource:    make([][]Obs, len(b.sourceNames)),
		ByItem:      make([][]SV, len(b.itemNames)),
		Generation:  FreshGeneration(),
	}
	for d, vs := range b.valueNames {
		ds.ValueNames[d] = append([]string(nil), vs...)
	}
	//copydetect:orderinvariant each key lands in per-source/per-item buckets that are sorted immediately below, erasing visit order
	for key, v := range b.obs {
		s := SourceID(key >> 32)
		d := ItemID(uint32(key))
		ds.BySource[s] = append(ds.BySource[s], Obs{Item: d, Value: v})
		ds.ByItem[d] = append(ds.ByItem[d], SV{Source: s, Value: v})
	}
	for s := range ds.BySource {
		obs := ds.BySource[s]
		sort.Slice(obs, func(i, j int) bool { return obs[i].Item < obs[j].Item })
	}
	for d := range ds.ByItem {
		svs := ds.ByItem[d]
		sort.Slice(svs, func(i, j int) bool { return svs[i].Source < svs[j].Source })
	}
	if len(b.truth) > 0 {
		ds.Truth = make([]ValueID, len(b.itemNames))
		for d := range ds.Truth {
			ds.Truth[d] = NoValue
		}
		//copydetect:orderinvariant keys are distinct item ids writing distinct slots of a dense slice
		for d, v := range b.truth {
			ds.Truth[d] = v
		}
	}
	return ds
}
