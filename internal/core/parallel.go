package core

import (
	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
	"copydetect/internal/pool"
)

// scanIndex performs the entry scan over a rescored view and pair set,
// shared by all single-round algorithms and by INCREMENTAL's warm rounds.
// This is the Section VIII extension generalized to the whole detector
// family: opts.Workers shards the pair space (by the smaller source id of
// each pair, which the sorted provider lists make a pure function of the
// data), each worker runs the same accumulation kernel (scanShard) over
// the entries it would see sequentially, and the merge happens in a
// worker-independent order:
//
//   - per-pair state lives in shared SoA columns indexed by pair slot;
//     each slot has exactly one writing worker, so the scan needs no locks
//     and the columns are already "merged" when the workers finish;
//   - finalizePairs then walks the slots in order on the calling
//     goroutine, so Result.Pairs is ordered identically for every worker
//     count;
//   - Stats counters are summed in shard order.
//
// Because each pair's state transitions (including the BOUND/BOUND+ early
// terminations and timers, which depend only on that pair's state and the
// per-source nSeen counts each worker recomputes identically) happen in
// scan order regardless of ownership, the Result is bit-identical to the
// sequential scan for every value of opts.Workers. The mirror of the
// paper's suggested per-entry parallelization, with the per-pair shard
// axis chosen so no reduction step is needed.
func scanIndex(ds *dataset.Dataset, st *bayes.State, p bayes.Params, opts Options, m mode,
	v *index.View, pm *index.PairMap, lCounts []int32, cache *structCache, res *Result) {

	tab := &cache.tab
	makePairTab(ds, p, opts, m, pm, lCounts, tab)
	workers := pool.Clamp(opts.Workers)
	nSeen := cache.nSeenBufs(workers, ds.NumSources())
	for _, stats := range pool.Shards(workers, func(w int) Stats {
		return scanShard(ds, st, p, m, v, pm, tab, nSeen[w], w, workers)
	}) {
		res.Stats.Add(stats)
	}
	res.Stats.EntriesScanned += int64(v.S.NumEntries())
	finalizePairs(p, pm, tab, res)
}
