// Package core implements the copy-detection algorithms that are the
// primary contribution of "Scaling up Copy Detection" (Li et al., ICDE
// 2015): the exhaustive PAIRWISE baseline (Section II-B), the
// index-driven INDEX algorithm (Section III), the early-terminating BOUND
// and BOUND+ algorithms (Section IV), their combination HYBRID, and the
// iterative INCREMENTAL algorithm (Section V). All algorithms consume a
// dataset plus the current statistical state (value probabilities and
// source accuracies) and emit, per pair of sources, the accumulated
// directional evidence and a binary copying decision.
//
//copydetect:deterministic
package core

import (
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
)

// PairResult is the outcome of copy detection for one unordered source
// pair S1 < S2.
type PairResult struct {
	S1, S2 dataset.SourceID
	// CTo is the accumulated evidence C→ for the hypothesis S1 → S2
	// (S1 copies from S2); CFrom is C← for S2 → S1. For algorithms with
	// early termination these reflect the evidence accumulated up to the
	// decision point, not necessarily the full sums.
	CTo, CFrom float64
	// PrIndep, PrTo and PrFrom are the posterior probabilities of
	// S1⊥S2, S1→S2 and S2→S1 computed from CTo/CFrom by Eq. (2).
	PrIndep, PrTo, PrFrom float64
	// Copying is the binary decision. For early-terminated pairs it is
	// authoritative even when the (partial-evidence) posterior disagrees.
	Copying bool
}

// Direction renders the likely copying direction of a pair using the
// given source names: "a -> b" when the posterior favors one direction
// by at least 2x, "a <-> b" when the evidence is symmetric.
func (pr PairResult) Direction(names []string) string {
	s1, s2 := names[pr.S1], names[pr.S2]
	switch {
	case pr.PrTo > 2*pr.PrFrom:
		return s1 + " -> " + s2
	case pr.PrFrom > 2*pr.PrTo:
		return s2 + " -> " + s1
	default:
		return s1 + " <-> " + s2
	}
}

// Result is the outcome of one copy-detection round.
type Result struct {
	NumSources int
	// Pairs lists every pair the algorithm instantiated state for. Pairs
	// absent here were pruned and are implicitly non-copying.
	Pairs []PairResult
	Stats Stats
}

// CopyingPairs returns the pairs decided as copying.
func (r *Result) CopyingPairs() []PairResult {
	var out []PairResult
	for _, pr := range r.Pairs {
		if pr.Copying {
			out = append(out, pr)
		}
	}
	return out
}

// CopyingSet returns the set of copying pairs keyed by packed pair id,
// for comparisons between methods.
func (r *Result) CopyingSet() map[int64]bool {
	set := make(map[int64]bool)
	for _, pr := range r.Pairs {
		if pr.Copying {
			set[int64(pr.S1)<<32|int64(uint32(pr.S2))] = true
		}
	}
	return set
}

// Stats aggregates the efficiency measures of Section VI: the number of
// score computations (the unit used in Examples 3.6, 4.2 and Figure 2)
// plus structural and timing counters.
//
// Counting convention: each per-direction contribution-score update is one
// computation; each per-direction end-of-scan different-value adjustment
// is one computation; each evaluation of the Cmin bound pair (both
// directions) is one computation, and likewise for Cmax; the incremental
// algorithm counts per-direction delta applications and per-pair pass
// checks the same way.
type Stats struct {
	Computations    int64
	PairsConsidered int64
	ValuesExamined  int64 // (entry, pair) shared-value visits
	EntriesScanned  int64
	Rounds          int

	IndexBuild time.Duration
	Detect     time.Duration
}

// Add accumulates o into s; durations add, Rounds adds too.
func (s *Stats) Add(o Stats) {
	s.Computations += o.Computations
	s.PairsConsidered += o.PairsConsidered
	s.ValuesExamined += o.ValuesExamined
	s.EntriesScanned += o.EntriesScanned
	s.Rounds += o.Rounds
	s.IndexBuild += o.IndexBuild
	s.Detect += o.Detect
}

// Total returns index-build plus detection time.
func (s Stats) Total() time.Duration { return s.IndexBuild + s.Detect }

// Detector runs one round of copy detection. Implementations may keep
// state across rounds (INCREMENTAL does); round numbers start at 1 and
// must be passed in increasing order for such implementations.
type Detector interface {
	Name() string
	DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result
}

// Reseter is implemented by detectors that keep cross-round state and can
// be reset to run a fresh iterative process.
type Reseter interface{ Reset() }

// ResetDetector resets d if it carries cross-round state.
func ResetDetector(d Detector) {
	if r, ok := d.(Reseter); ok {
		r.Reset()
	}
}

// decide applies the three-way decision rule of Section IV-A to exact
// scores: copying when either direction reaches θcp, no-copying when both
// stay below θind, and the posterior of Eq. (2) otherwise. For exact
// scores this coincides with thresholding the posterior at 0.5.
func decide(p bayes.Params, cTo, cFrom float64) (copying bool, prIndep, prTo, prFrom float64) {
	prIndep, prTo, prFrom = p.Posterior(cTo, cFrom)
	return prIndep <= 0.5, prIndep, prTo, prFrom
}
