// Package tracehopfix is the tracehop fixture: one allowlisted helper
// and two ways of hand-building a request outside it.
package tracehopfix

import (
	"context"
	"net/http"
)

// okHelper is the fixture's configured trace helper; building the
// request here is the point.
func okHelper(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
}

// direct builds a request outside the helper: diagnostic.
func direct(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil)
}

// literal hand-rolls a request value: diagnostic.
func literal() *http.Request {
	return &http.Request{Method: http.MethodGet}
}
