package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The annotation grammar. Annotations are directive comments (no space
// after the slashes, like go:build), so prose that merely mentions one
// never parses as one:
//
//	copydetect:deterministic
//	    In a package doc comment: every file of the package is under
//	    the determinism contract. In any other comment of a file: that
//	    file alone is.
//
//	copydetect:hotpath
//	    On a function declaration, or on the assignment of a function
//	    literal: the function is a zero-alloc root; hotalloc walks the
//	    static call graph from it.
//
//	copydetect:orderinvariant <justification>
//	    On a range-over-map statement inside deterministic code: the
//	    loop is exempt from detrange because its effect does not depend
//	    on iteration order. The justification is mandatory — an
//	    exemption nobody can audit is a contract hole, and the missing
//	    text is itself reported as a diagnostic.
const directivePrefix = "//copydetect:"

// Annotations is the parsed annotation state of a Program, plus the
// diagnostics for malformed or misplaced directives (always reported,
// whichever analyzers run).
type Annotations struct {
	pkgs  map[*Package]*pkgAnnots
	diags []Diagnostic
}

type pkgAnnots struct {
	deterministicPkg   bool
	deterministicFiles map[*ast.File]bool
	hotDecls           []*ast.FuncDecl
	hotLits            []HotLit
	orderInv           map[*ast.RangeStmt]string
}

// HotLit is a function literal annotated as a hot-path root, named after
// the assignment target for diagnostics ("d.classifyFn").
type HotLit struct {
	Lit  *ast.FuncLit
	Name string
}

// DeterministicPkg reports whether the whole package carries the
// determinism annotation.
func (a *Annotations) DeterministicPkg(pkg *Package) bool {
	pa := a.pkgs[pkg]
	return pa != nil && pa.deterministicPkg
}

// DeterministicFile reports whether file (or its whole package) carries
// the determinism annotation.
func (a *Annotations) DeterministicFile(pkg *Package, file *ast.File) bool {
	pa := a.pkgs[pkg]
	return pa != nil && (pa.deterministicPkg || pa.deterministicFiles[file])
}

// HotRoots returns the package's annotated zero-alloc root functions:
// declarations and assigned function literals.
func (a *Annotations) HotRoots(pkg *Package) ([]*ast.FuncDecl, []HotLit) {
	pa := a.pkgs[pkg]
	if pa == nil {
		return nil, nil
	}
	return pa.hotDecls, pa.hotLits
}

// OrderInvariant returns the justification of an order-invariance
// exemption on the given range statement, if one is present (malformed
// directives with an empty justification are not present here — they
// are already in the diagnostics).
func (a *Annotations) OrderInvariant(pkg *Package, rs *ast.RangeStmt) (string, bool) {
	pa := a.pkgs[pkg]
	if pa == nil {
		return "", false
	}
	just, ok := pa.orderInv[rs]
	return just, ok
}

// CollectAnnotations parses every directive comment in the program.
func CollectAnnotations(prog *Program) (*Annotations, error) {
	a := &Annotations{pkgs: make(map[*Package]*pkgAnnots)}
	for _, pkg := range prog.Pkgs {
		a.collectPackage(prog, pkg)
	}
	return a, nil
}

// collectPackage is split out so fixture packages loaded with LoadDir
// can be annotated too.
func (a *Annotations) collectPackage(prog *Program, pkg *Package) {
	pa := &pkgAnnots{
		deterministicFiles: make(map[*ast.File]bool),
		orderInv:           make(map[*ast.RangeStmt]string),
	}
	a.pkgs[pkg] = pa
	for _, file := range pkg.Files {
		// Invert the comment map: comment group -> owning node.
		cm := ast.NewCommentMap(prog.Fset, file, file.Comments)
		owner := make(map[*ast.CommentGroup]ast.Node)
		for node, groups := range cm {
			for _, g := range groups {
				owner[g] = node
			}
		}
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				verb, rest, _ := strings.Cut(strings.TrimPrefix(c.Text, directivePrefix), " ")
				rest = strings.TrimSpace(rest)
				report := func(format string, args ...any) {
					a.diags = append(a.diags, Diagnostic{
						Pos:      prog.Fset.Position(c.Pos()),
						Analyzer: "annotation",
						Message:  fmt.Sprintf(format, args...),
					})
				}
				switch verb {
				case "deterministic":
					if group == file.Doc {
						pa.deterministicPkg = true
					} else {
						pa.deterministicFiles[file] = true
					}
				case "hotpath":
					switch node := owner[group].(type) {
					case *ast.FuncDecl:
						pa.hotDecls = append(pa.hotDecls, node)
					case *ast.AssignStmt:
						lit, name := funcLitOf(node)
						if lit == nil {
							report("copydetect:hotpath on an assignment with no function literal")
							continue
						}
						pa.hotLits = append(pa.hotLits, HotLit{Lit: lit, Name: name})
					default:
						report("copydetect:hotpath must annotate a function declaration or a function-literal assignment")
					}
				case "orderinvariant":
					rs, ok := owner[group].(*ast.RangeStmt)
					if !ok {
						report("copydetect:orderinvariant must annotate a range statement")
						continue
					}
					if rest == "" {
						report("copydetect:orderinvariant requires a justification (why is this loop's effect independent of iteration order?)")
						continue
					}
					pa.orderInv[rs] = rest
				default:
					report("unknown copydetect directive %q", verb)
				}
			}
		}
	}
}

// funcLitOf returns the first function literal among an assignment's
// right-hand sides and the matching left-hand side's source text.
func funcLitOf(as *ast.AssignStmt) (*ast.FuncLit, string) {
	for i, rhs := range as.Rhs {
		if lit, ok := rhs.(*ast.FuncLit); ok {
			name := "func literal"
			if i < len(as.Lhs) {
				name = types.ExprString(as.Lhs[i])
			}
			return lit, name
		}
	}
	return nil, ""
}
