// Bookstores: the paper's second scenario — thousands of online bookstores
// list overlapping book catalogs (title/author data aggregated à la
// AbeBooks), with heavily skewed coverage: most stores list only a handful
// of books. This example shows why coverage-aware sampling (SCALESAMPLE)
// matters there: plain random item sampling starves low-coverage sources
// of evidence and misses their copying, while SCALESAMPLE keeps at least
// N=4 items per source.
//
// Run with:
//
//	go run ./examples/bookstores
package main

import (
	"fmt"
	"time"

	"copydetect"
)

func main() {
	cfg := copydetect.ScaleConfig(copydetect.BookCSConfig(21), 0.4)
	ds, planted, err := copydetect.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s\n", copydetect.Summarize(ds))

	// Coverage skew: how many sources list at most 1% of the books?
	low := 0
	for s := 0; s < ds.NumSources(); s++ {
		if float64(ds.Coverage(copydetect.SourceID(s))) <= 0.01*float64(ds.NumItems()) {
			low++
		}
	}
	fmt.Printf("low-coverage sources (≤1%% of items): %d of %d\n\n", low, ds.NumSources())

	params := copydetect.DefaultParams()

	// Reference: full-data INDEX (identical to PAIRWISE, far cheaper).
	full := copydetect.Detect(ds, copydetect.AlgorithmIndex, params)
	fullSet := full.Copy.CopyingSet()
	fmt.Printf("full-data INDEX: %d copying pairs, %v\n",
		len(fullSet), full.TotalStats.Total().Round(time.Millisecond))

	const rate = 0.1
	samplers := []struct {
		name string
		s    copydetect.SampleResult
	}{
		{"SCALESAMPLE (≥4 items/source)", copydetect.ScaleSample(ds, rate, 4, 1)},
		{"plain item sample", copydetect.SampleByItem(ds, rate, 1)},
	}
	for _, sm := range samplers {
		out := copydetect.DetectSampled(ds, sm.s, copydetect.AlgorithmIncremental, params)
		prf := copydetect.ComparePairs(out.Copy, full.Copy)
		fmt.Printf("\n%s:\n", sm.name)
		fmt.Printf("  sampled %.0f%% of items (%.0f%% of cells)\n", sm.s.ItemRate*100, sm.s.CellRate*100)
		fmt.Printf("  copy detection vs full data: P=%.2f R=%.2f F=%.2f\n",
			prf.Precision, prf.Recall, prf.F1)
		fmt.Printf("  detection time: %v\n", out.TotalStats.Total().Round(time.Millisecond))
	}

	// The planted cliques give an absolute yardstick too.
	prf := copydetect.PRF{}
	_ = prf
	got := 0
	for k := range fullSet {
		a := copydetect.SourceID(k >> 32)
		b := copydetect.SourceID(uint32(k))
		if planted.PairPlanted(a, b) {
			got++
		}
	}
	fmt.Printf("\nplanted pairs recovered by full-data detection: %d of %d\n", got, len(planted.Pairs))
}
