package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestOwns(t *testing.T) {
	// workers <= 1: the single worker owns everything, including ids the
	// modulo would reject.
	for _, workers := range []int{-3, 0, 1} {
		for _, id := range []int{0, 1, 17, 1 << 20} {
			if !Owns(workers, 0, id) {
				t.Errorf("Owns(%d, 0, %d) = false, want true", workers, id)
			}
		}
	}
	// Multi-worker: every id is owned by exactly one worker, and that
	// worker is id%workers — the contract every sharded kernel relies on
	// (their shard functions must agree exactly; see DESIGN.md).
	for _, workers := range []int{2, 3, 7} {
		for id := 0; id < 100; id++ {
			owners := 0
			for w := 0; w < workers; w++ {
				if Owns(workers, w, id) {
					owners++
					if w != id%workers {
						t.Errorf("Owns(%d, %d, %d) true, want owner %d", workers, w, id, id%workers)
					}
				}
			}
			if owners != 1 {
				t.Errorf("workers=%d id=%d has %d owners, want exactly 1", workers, id, owners)
			}
		}
	}
}

// TestRunCallerShardPanicReleasesWorkers covers Run's error path: fn(0)
// runs on the calling goroutine, so a panic there propagates to the
// caller and skips the drain loop. The done channel is buffered for
// exactly this case — the spawned workers must still run to completion
// and exit instead of leaking, blocked on an undrained channel.
func TestRunCallerShardPanicReleasesWorkers(t *testing.T) {
	const workers = 8
	var ran atomic.Int32
	gate := make(chan struct{})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic on shard 0 did not propagate to the caller")
			}
		}()
		Run(workers, func(w int) {
			if w == 0 {
				panic("shard 0 exploded")
			}
			<-gate // hold every worker until the caller has panicked
			ran.Add(1)
		})
	}()
	close(gate)
	// The workers were deliberately still running when the panic
	// propagated; they must all finish on their own.
	deadline := time.Now().Add(10 * time.Second)
	for ran.Load() != workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d workers completed after caller panic", ran.Load(), workers-1)
		}
		time.Sleep(time.Millisecond)
	}
	goroutineSettle(t)
}

// goroutineSettle polls until the goroutine count returns to (near) the
// pre-test baseline, failing if workers leaked.
func goroutineSettle(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= 8 { // test main + runtime helpers
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("%d goroutines still alive long after Run returned", runtime.NumGoroutine())
}

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestAuto(t *testing.T) {
	if got := Auto(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Auto() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestRunCoversAllShards(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 32} {
		var calls int64
		seen := make([]int32, Clamp(workers))
		Run(workers, func(w int) {
			atomic.AddInt64(&calls, 1)
			atomic.AddInt32(&seen[w], 1)
		})
		if int(calls) != Clamp(workers) {
			t.Errorf("workers=%d: %d calls, want %d", workers, calls, Clamp(workers))
		}
		for w, n := range seen {
			if n != 1 {
				t.Errorf("workers=%d: shard %d called %d times", workers, w, n)
			}
		}
	}
}

func TestShardsOrdered(t *testing.T) {
	got := Shards(7, func(w int) int { return w * w })
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	for w, v := range got {
		if v != w*w {
			t.Errorf("shard %d = %d, want %d", w, v, w*w)
		}
	}
}

func TestShardsSequentialInline(t *testing.T) {
	// workers <= 1 must run on the calling goroutine (the sequential path
	// shares the kernel without goroutine overhead).
	var gid [2]int
	fill := func(i int) func(int) int {
		return func(w int) int { gid[i] = 1; return w }
	}
	if got := Shards(1, fill(0)); len(got) != 1 || got[0] != 0 {
		t.Errorf("Shards(1) = %v", got)
	}
	if got := Shards(0, fill(1)); len(got) != 1 || got[0] != 0 {
		t.Errorf("Shards(0) = %v", got)
	}
}
