package fusion

import (
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// TruthFinder drives the iterative process: copy detection, value
// probability computation with copier discounting, and source accuracy
// computation, repeated until source accuracies converge.
type TruthFinder struct {
	Params bayes.Params
	// A0 is the initial accuracy assumed for every source (default 0.8).
	A0 float64
	// MaxRounds caps the iteration count (default 12).
	MaxRounds int
	// MinRounds forces at least this many rounds (default 5, matching the
	// motivating example's five rounds; the paper's data sets need 6–9).
	MinRounds int
	// Eps is the convergence threshold on the maximum accuracy change
	// between consecutive rounds (default 1e-4).
	Eps float64
	// UseValueDist enables the footnote-2 relaxation: per-value false
	// popularities, estimated once from the observed value frequencies,
	// replace the uniform 1/n in all contribution scores.
	UseValueDist bool
	// DetectDataset, when non-nil, is the (sampled) dataset on which copy
	// detection runs while truth finding still uses the full dataset; its
	// ItemMap translates its item ids into full-dataset item ids. This
	// realizes the sampling strategies of Section VI-A, where e.g.
	// SCALESAMPLE applies INCREMENTAL on sampled data but fusion and
	// evaluation happen on everything.
	DetectDataset *dataset.Dataset
	ItemMap       []dataset.ItemID
	// OnRound, when non-nil, is invoked after each round's copy detection
	// with the dataset and state the detector saw. The experiment harness
	// uses it to collect per-round measurements (Tables VIII and X).
	OnRound func(round int, detDS *dataset.Dataset, detSt *bayes.State, res *core.Result)
	// Cancel, when non-nil, makes Run abandon the iterative process once
	// the channel is closed: the check happens between rounds, and a
	// cancelled Run returns nil instead of a (partial, misleading)
	// Outcome. The serving layer uses it to abort in-flight detection
	// when new observations make the round's snapshot stale.
	Cancel <-chan struct{}
}

// Outcome is the result of a full iterative run.
type Outcome struct {
	// State holds the final value probabilities and source accuracies.
	State *bayes.State
	// Copy is the copy-detection result of the last round.
	Copy *core.Result
	// Truth[d] is the most probable value of each item (NoValue when the
	// item has no observation).
	Truth []dataset.ValueID
	// Rounds is the number of rounds executed.
	Rounds int
	// RoundStats collects the detector statistics per round, and
	// TotalStats their sum.
	RoundStats []core.Stats
	TotalStats core.Stats
	// FusionTime is the time spent in truth finding (outside detection).
	FusionTime time.Duration
}

func (tf *TruthFinder) a0() float64 {
	if tf.A0 == 0 {
		return 0.8
	}
	return tf.A0
}

func (tf *TruthFinder) maxRounds() int {
	if tf.MaxRounds == 0 {
		return 12
	}
	return tf.MaxRounds
}

func (tf *TruthFinder) minRounds() int {
	if tf.MinRounds == 0 {
		return 5
	}
	return tf.MinRounds
}

func (tf *TruthFinder) cancelled() bool {
	if tf.Cancel == nil {
		return false
	}
	select {
	case <-tf.Cancel:
		return true
	default:
		return false
	}
}

func (tf *TruthFinder) eps() float64 {
	if tf.Eps == 0 {
		return 1e-4
	}
	return tf.Eps
}

// Run executes the iterative process on ds with the given copy detector.
// Detectors with cross-round state are reset first.
func (tf *TruthFinder) Run(ds *dataset.Dataset, det core.Detector) *Outcome {
	core.ResetDetector(det)
	p := tf.Params

	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), tf.a0())
	if tf.UseValueDist {
		st.Pop = dataset.ValuePopularities(ds)
	}

	fusionStart := time.Now()
	// Initial value probabilities from undiscounted voting at uniform
	// accuracy, so round 1 of copy detection has informative P(D.v).
	st.P = ValueProbs(ds, st, p, nil)
	st.A = Accuracies(ds, st.P)
	out := &Outcome{}
	fusionTime := time.Since(fusionStart)

	detDS, itemMap := ds, tf.ItemMap
	if tf.DetectDataset != nil {
		detDS = tf.DetectDataset
	}

	for round := 1; round <= tf.maxRounds(); round++ {
		if tf.cancelled() {
			return nil
		}
		detSt := st
		if detDS != ds {
			detSt = projectState(st, itemMap)
		}
		res := det.DetectRound(detDS, detSt, round)
		out.Copy = res
		out.RoundStats = append(out.RoundStats, res.Stats)
		out.TotalStats.Add(res.Stats)
		if tf.OnRound != nil {
			tf.OnRound(round, detDS, detSt, res)
		}

		stepStart := time.Now()
		g := newCopyGraph(res)
		st.P = ValueProbs(ds, st, p, g)
		newA := Accuracies(ds, st.P)
		delta := 0.0
		for s := range newA {
			if d := newA[s] - st.A[s]; d > delta {
				delta = d
			} else if -d > delta {
				delta = -d
			}
		}
		st.A = newA
		fusionTime += time.Since(stepStart)
		out.Rounds = round
		if round >= tf.minRounds() && delta < tf.eps() {
			break
		}
	}

	stepStart := time.Now()
	out.State = st
	out.Truth = Decide(ds, st)
	fusionTime += time.Since(stepStart)
	out.FusionTime = fusionTime
	return out
}

// Decide returns, per item, the value with the highest probability
// (NoValue for items without observations).
func Decide(ds *dataset.Dataset, st *bayes.State) []dataset.ValueID {
	truth := make([]dataset.ValueID, ds.NumItems())
	for d := range st.P {
		truth[d] = dataset.NoValue
		best := -1.0
		for v, pv := range st.P[d] {
			if pv > best {
				best = pv
				truth[d] = dataset.ValueID(v)
			}
		}
	}
	return truth
}

// projectState restricts a full-dataset state to a sampled dataset whose
// items map back through itemMap. Accuracies carry over unchanged; the
// source id space must be shared and value ids per item preserved, which
// dataset.SubsetItems guarantees.
func projectState(st *bayes.State, itemMap []dataset.ItemID) *bayes.State {
	sub := &bayes.State{
		P: make([][]float64, len(itemMap)),
		A: st.A,
	}
	for d, full := range itemMap {
		sub.P[d] = st.P[full]
	}
	return sub
}
