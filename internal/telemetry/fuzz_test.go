package telemetry

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// render re-serializes one sample in the exposition syntax the registry
// emits, reusing its own escaping so the fuzz round-trip pins parser
// and renderer to each other.
func render(s Sample) string {
	var b strings.Builder
	b.WriteString(s.Name)
	if len(s.Labels) > 0 {
		keys := make([]string, 0, len(s.Labels))
		for k := range s.Labels {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(k)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(s.Labels[k]))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(s.Value))
	return b.String()
}

// FuzzParseLines hammers the exposition parser with arbitrary text: it
// must reject malformed lines with an error, never panic, and every
// sample it does return must carry a parseable name and value that
// survive re-serialization through the exposition syntax.
func FuzzParseLines(f *testing.F) {
	f.Add("")
	f.Add("# HELP x help\n# TYPE x counter\nx 1\n")
	f.Add(`copygate_http_requests_total{route="append",code="202"} 42`)
	f.Add("a{k=\"v\",k2=\"with \\\"quote\\\" and \\\\slash\"} 1.5e3\nb 0\n")
	f.Add("copydetectd_dataset_convergence_lag_appends{dataset=\"x\"} 17\n")
	f.Add("broken{ 1\n")
	f.Add("name 1 extra\n")
	f.Add("nan_value NaN\n")

	f.Fuzz(func(t *testing.T, text string) {
		samples, err := ParseLines(strings.NewReader(text))
		if err != nil {
			return
		}
		for _, s := range samples {
			if s.Name == "" {
				t.Fatalf("parser accepted a sample with an empty name: %+v", s)
			}
			if strings.ContainsAny(s.Name, " \t{}") {
				t.Fatalf("sample name %q contains exposition syntax", s.Name)
			}
		}
		// Accepted input must round-trip: re-rendering the samples in
		// exposition syntax and re-parsing them yields the same set.
		var buf bytes.Buffer
		for _, s := range samples {
			buf.WriteString(render(s))
			buf.WriteByte('\n')
		}
		back, err := ParseLines(&buf)
		if err != nil {
			t.Fatalf("re-parse of rendered samples failed: %v", err)
		}
		if len(back) != len(samples) {
			t.Fatalf("round trip changed sample count: %d -> %d", len(samples), len(back))
		}
	})
}
