// Package cluster is the scale-out layer over multiple copydetectd
// backends: a consistent-hash gateway that owns the dataset namespace
// and routes every request for a dataset to the one backend that holds
// it.
//
// The sharding unit is the dataset. Each dataset is already an
// independent convergence unit in internal/server — appends, detection
// rounds, snapshots and ETags of one dataset never touch another — so
// placing whole datasets on backends by a pure function of the name
// requires no cross-backend coordination: no distributed transactions,
// no replication protocol, no shared counters. A backend serves its
// datasets exactly as a single daemon would, and the gateway's only
// jobs are routing, health tracking and fan-out for the list endpoint.
//
// Routing is *stable*: a dataset's owner is decided by the ring alone,
// never by backend health. When a backend dies, requests for its
// datasets fail with 503 until it returns — they are not rerouted,
// because no other backend has the data. Health checking exists to
// fail those requests fast (ejection) and to notice recovery
// (readmission), not to move data.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the number of virtual nodes each backend
// contributes to the ring. 128 points per backend keep the expected
// per-backend load within a few percent of even for small clusters
// while the ring stays tiny (a few KB).
const DefaultReplicas = 128

// ringPoint is one virtual node: a position on the hash circle owned by
// a backend.
type ringPoint struct {
	hash    uint64
	backend int
}

// Ring is an immutable consistent-hash ring over an ordered list of
// backends. Owner is a pure function of the dataset name and the
// configured backend list, so every gateway (and every test) built
// from the same list routes identically.
type Ring struct {
	backends []string
	points   []ringPoint
}

// NewRing builds a ring over the given backend identifiers (base URLs,
// in practice) with the given number of virtual nodes per backend
// (<= 0 selects DefaultReplicas). Backends must be non-empty and
// unique; order matters only for Owner's returned index.
func NewRing(backends []string, replicas int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(backends))
	r := &Ring{
		backends: append([]string(nil), backends...),
		points:   make([]ringPoint, 0, len(backends)*replicas),
	}
	for i, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("cluster: backend %d is empty", i)
		}
		if seen[b] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b)
		}
		seen[b] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", b, v)),
				backend: i,
			})
		}
	}
	// Ties (64-bit collisions between virtual nodes) are broken by
	// backend index so the ring order is fully determined by the input.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r, nil
}

// NumBackends returns how many backends the ring was built over.
func (r *Ring) NumBackends() int { return len(r.backends) }

// Backend returns the identifier of backend i.
func (r *Ring) Backend(i int) string { return r.backends[i] }

// Owner returns the index of the backend that owns the dataset name:
// the backend of the first virtual node at or after the name's hash,
// wrapping around the circle.
func (r *Ring) Owner(name string) int {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].backend
}

// ReplicaSet returns the indexes of the first r distinct backends
// walking the ring clockwise from the dataset name's hash — the
// dataset's replica set. The first element is always Owner(name) (the
// primary); the rest are the failover replicas, in ring order. Like
// Owner, the result is a pure function of the name and the configured
// backend list, so every gateway derives the same membership with no
// coordination. r is clamped to [1, NumBackends].
func (r *Ring) ReplicaSet(name string, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > len(r.backends) {
		n = len(r.backends)
	}
	h := hash64(name)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	members := make([]int, 0, n)
	seen := make([]bool, len(r.backends))
	for walked := 0; walked < len(r.points) && len(members) < n; walked++ {
		p := r.points[(start+walked)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			members = append(members, p.backend)
		}
	}
	return members
}

// hash64 is FNV-1a followed by a splitmix64 finalizer. FNV alone is
// stable but mixes the short, near-identical strings we hash (dataset
// names, "url#replica" virtual nodes) poorly enough to skew the ring;
// the avalanche pass spreads them uniformly. The function must stay
// stable across processes and Go versions, because tests and operators
// recompute placements from the backend list alone — which rules out
// maphash and friends.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
