package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/server"
)

func TestParseFlags(t *testing.T) {
	opt, err := parseFlags([]string{"-target", "http://x:1"})
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if opt.datasets != 4 || opt.clients != 4 || opt.batch != 500 || opt.rate != 0 ||
		!opt.quiesce || opt.jsonOut || opt.preset != "book-cs" || opt.scale != 0.05 || opt.seed != 1 {
		t.Fatalf("defaults = %+v", opt)
	}

	opt, err = parseFlags([]string{
		"-target", "http://x:1", "-datasets", "8", "-clients", "2",
		"-dataset", "stock-1day", "-scale", "0.2", "-seed", "7",
		"-batch", "100", "-rate", "50", "-quiesce=false", "-json",
	})
	if err != nil {
		t.Fatalf("full flags: %v", err)
	}
	if opt.datasets != 8 || opt.clients != 2 || opt.preset != "stock-1day" ||
		opt.scale != 0.2 || opt.seed != 7 || opt.batch != 100 || opt.rate != 50 ||
		opt.quiesce || !opt.jsonOut {
		t.Fatalf("full flags = %+v", opt)
	}

	for _, bad := range [][]string{
		nil, // no target
		{"-target", "http://x:1", "-datasets", "0"},
		{"-target", "http://x:1", "-clients", "0"},
		{"-target", "http://x:1", "-batch", "0"},
		{"-target", "http://x:1", "-rate", "-1"},
		{"-target", "http://x:1", "-rate", "2000000000"}, // would zero the ticker interval
		{"-target", "http://x:1", "-dataset", "nope"},
		{"-target", "http://x:1", "-prefix", ""},
		{"-nonsense"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid input", bad)
		}
	}
}

func TestSplitBatches(t *testing.T) {
	recs := make([]dataset.Record, 7)
	got := splitBatches(recs, 3)
	if len(got) != 3 || len(got[0]) != 3 || len(got[1]) != 3 || len(got[2]) != 1 {
		t.Fatalf("splitBatches(7, 3) sizes = %v", lens(got))
	}
	if got := splitBatches(nil, 3); got != nil {
		t.Errorf("splitBatches(nil) = %v, want nil", got)
	}
	if got := splitBatches(recs, 100); len(got) != 1 || len(got[0]) != 7 {
		t.Errorf("oversized batch = %v", lens(got))
	}
}

func lens(b [][]dataset.Record) []int {
	out := make([]int, len(b))
	for i := range b {
		out[i] = len(b[i])
	}
	return out
}

// TestPercentile is table-driven over the sample sizes that historically
// go wrong: empty, single-element, and sub-100 samples where a naive
// p99 rank (ceil(0.99*n)) must clamp to the largest value instead of
// indexing out of range.
func TestPercentile(t *testing.T) {
	ms := func(ns ...int) []time.Duration {
		out := make([]time.Duration, len(ns))
		for i, n := range ns {
			out[i] = time.Duration(n) * time.Millisecond
		}
		return out
	}
	for _, tc := range []struct {
		name   string
		sorted []time.Duration
		q      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single-p50", ms(7), 0.50, 7 * time.Millisecond},
		{"single-p99", ms(7), 0.99, 7 * time.Millisecond},
		{"single-p100", ms(7), 1.00, 7 * time.Millisecond},
		{"two-p99-clamps-to-max", ms(1, 9), 0.99, 9 * time.Millisecond},
		{"two-p50", ms(1, 9), 0.50, 1 * time.Millisecond},
		{"five-p50", ms(1, 2, 3, 4, 100), 0.50, 3 * time.Millisecond},
		{"five-p90", ms(1, 2, 3, 4, 100), 0.90, 100 * time.Millisecond},
		{"five-p99", ms(1, 2, 3, 4, 100), 0.99, 100 * time.Millisecond},
		{"five-p20", ms(1, 2, 3, 4, 100), 0.20, 1 * time.Millisecond},
		{"five-p100", ms(1, 2, 3, 4, 100), 1.00, 100 * time.Millisecond},
		{"tiny-q-clamps-low", ms(1, 2, 3), 0.0001, 1 * time.Millisecond},
	} {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(q=%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
	// Exact-rank boundaries across a range of sizes: the nearest-rank
	// index must always stay inside the sample.
	for n := 1; n <= 120; n++ {
		sample := make([]time.Duration, n)
		for i := range sample {
			sample[i] = time.Duration(i+1) * time.Microsecond
		}
		for _, q := range []float64{0.01, 0.5, 0.9, 0.99, 0.999, 1.0} {
			got := percentile(sample, q)
			if got < sample[0] || got > sample[n-1] {
				t.Fatalf("n=%d q=%v: percentile %v outside the sample", n, q, got)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	s := summarize([]time.Duration{2 * time.Millisecond, 1 * time.Millisecond})
	if s == nil || s.P50Millis != 1 || s.MaxMillis != 2 || s.MeanMillis != 1.5 || s.P99Millis != 2 {
		t.Errorf("summarize = %+v", s)
	}
	// No samples → no summary at all: the report must omit the field
	// rather than fabricate zeros (or NaN) for the trajectory tooling.
	if z := summarize(nil); z != nil {
		t.Errorf("summarize(nil) = %+v, want nil", z)
	}
}

// TestZeroSuccessfulAppendsOmitsLatency is the regression test for the
// empty-sample report: a run where every append fails must produce
// valid JSON with the appendLatency block omitted — not a zero-filled
// (or NaN-filled) latency summary measured over failures.
func TestZeroSuccessfulAppendsOmitsLatency(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	inner := server.NewHandler(reg)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/observations") {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprintln(w, `{"error":"injected append failure"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-datasets", "1", "-clients", "1",
		"-scale", "0.02", "-batch", "100", "-quiesce=false", "-json",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run with failing appends exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	if !json.Valid(stdout.Bytes()) {
		t.Fatalf("report is not valid JSON: %q", stdout.String())
	}
	var raw map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["appendLatency"]; present {
		t.Errorf("zero-success report still carries appendLatency: %q", stdout.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Appends != 0 || rep.Errors == 0 || rep.AppendLatency != nil {
		t.Errorf("report = %+v, want zero appends, counted errors, nil latency", rep)
	}
	// The text renderer handles the empty sample too.
	var text bytes.Buffer
	printReport(&text, rep)
	if !strings.Contains(text.String(), "no successful appends") {
		t.Errorf("text report does not flag the empty sample:\n%s", text.String())
	}
}

// TestFailedAppendLatenciesExcluded: failures must not pollute the
// latency sample of the successful appends.
func TestFailedAppendLatenciesExcluded(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	inner := server.NewHandler(reg)
	var obsCalls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/observations") {
			if atomic.AddInt32(&obsCalls, 1) > 1 {
				// Every append after the first fails slowly: its duration
				// must not appear in the latency percentiles.
				time.Sleep(150 * time.Millisecond)
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprintln(w, `{"error":"slow failure"}`)
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-datasets", "1", "-clients", "1",
		"-scale", "0.02", "-batch", "50", "-quiesce=false", "-json",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run exited %d, want 1 (failed appends); stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Appends != 1 || rep.Errors != 1 || rep.AppendLatency == nil {
		t.Fatalf("report = %+v, want 1 success, 1 error, a latency summary", rep)
	}
	if rep.AppendLatency.MaxMillis >= 150 {
		t.Errorf("failed append's 150ms latency leaked into the sample: %+v", rep.AppendLatency)
	}
}

// TestQuiesceFailureStillReports: a backend dying before convergence
// must not discard the measured run — the report (with the error
// counted) is most valuable exactly then. The run still exits nonzero.
func TestQuiesceFailureStillReports(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	inner := server.NewHandler(reg)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/quiesce") {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"backend gone"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-datasets", "1", "-clients", "1",
		"-scale", "0.02", "-batch", "100", "-json",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("run with failing quiesce exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("no JSON report despite quiesce failure: %q (%v)", stdout.String(), err)
	}
	if rep.Appends == 0 || rep.Errors == 0 {
		t.Fatalf("report = %+v, want measured appends and the quiesce error counted", rep)
	}
}

// TestRetryAfter is table-driven over the header shapes a 429 can
// carry: delta-seconds are honored (and clamped), everything else falls
// back to the one-second default.
func TestRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		name  string
		value string
		want  time.Duration
	}{
		{"absent", "", time.Second},
		{"zero", "0", 0},
		{"five-seconds", "5", 5 * time.Second},
		{"padded", " 2 ", 2 * time.Second},
		{"negative-falls-back", "-3", time.Second},
		{"http-date-falls-back", "Fri, 08 Aug 2026 00:00:00 GMT", time.Second},
		{"garbage-falls-back", "soon", time.Second},
		{"huge-is-clamped", "3600", 10 * time.Second},
	} {
		hdr := http.Header{}
		if tc.value != "" {
			hdr.Set("Retry-After", tc.value)
		}
		if got := retryAfter(hdr); got != tc.want {
			t.Errorf("%s: retryAfter(%q) = %v, want %v", tc.name, tc.value, got, tc.want)
		}
	}
}

// TestThrottledAppendsRetry: 429 is backpressure, not failure. Every
// odd append attempt is refused with Retry-After; the run must retry
// each refused batch in place, land every observation exactly once,
// tally the refusals as throttled (not errors) and exit clean.
func TestThrottledAppendsRetry(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	inner := server.NewHandler(reg)
	var obsCalls int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/observations") && atomic.AddInt32(&obsCalls, 1)%2 == 1 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"mirror queue over the high-water mark"}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-datasets", "2", "-clients", "2",
		"-scale", "0.02", "-batch", "100", "-quiesce=false", "-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("throttled run exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report %q: %v", stdout.String(), err)
	}
	if rep.Errors != 0 {
		t.Errorf("throttled batches counted as errors: %+v", rep)
	}
	if rep.Throttled == 0 || rep.Throttled != rep.Appends {
		t.Errorf("throttled = %d, appends = %d; every batch was refused exactly once", rep.Throttled, rep.Appends)
	}
	if !strings.Contains(stdout.String(), `"throttled"`) {
		t.Errorf("JSON report has no throttled field: %s", stdout.String())
	}
	// Every observation landed exactly once despite the refusals.
	total := 0
	for _, name := range reg.List() {
		m, ok := reg.Get(name)
		if !ok {
			t.Fatalf("dataset %s missing", name)
		}
		total += int(m.Info().Version)
	}
	if total != rep.Appends {
		t.Errorf("server holds %d appends, report claims %d", total, rep.Appends)
	}

	var text bytes.Buffer
	printReport(&text, rep)
	if !strings.Contains(text.String(), "throttled") {
		t.Errorf("text report does not mention throttling:\n%s", text.String())
	}
}

// TestRunAgainstDaemon streams a small workload into an in-process
// daemon and checks the JSON report: every batch acknowledged, no
// errors, convergence reached.
func TestRunAgainstDaemon(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	srv := httptest.NewServer(server.NewHandler(reg))
	defer srv.Close()

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-target", srv.URL, "-datasets", "3", "-clients", "2",
		"-scale", "0.02", "-batch", "200", "-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d; stderr:\n%s", code, stderr.String())
	}
	var rep report
	if err := json.Unmarshal(stdout.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON report %q: %v", stdout.String(), err)
	}
	if rep.Errors != 0 || rep.Appends == 0 || rep.Observations == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.AppendLatency == nil || rep.AppendLatency.MaxMillis <= 0 || rep.WallSeconds <= 0 || rep.QuiesceSeconds <= 0 {
		t.Fatalf("missing measurements: %+v", rep)
	}
	// Everything the generator produced must have been appended.
	if rep.Datasets != 3 || rep.Clients != 2 {
		t.Fatalf("echoed config = %+v", rep)
	}
	for _, name := range reg.List() {
		m, ok := reg.Get(name)
		if !ok || !m.Converged() {
			t.Errorf("dataset %s not converged after -quiesce run", name)
		}
	}

	// The human-readable path renders the same numbers without error.
	var text bytes.Buffer
	printReport(&text, rep)
	if text.Len() == 0 {
		t.Error("empty text report")
	}

	// A rate-limited run respects the cap, within slack: 4 batches at
	// 200/s cannot finish faster than ~15ms.
	var out2 bytes.Buffer
	start := time.Now()
	code = run([]string{
		"-target", srv.URL, "-datasets", "1", "-clients", "1",
		"-scale", "0.02", "-batch", "30", "-rate", "200",
		"-seed", "99", "-prefix", "ratecap", "-quiesce=false", "-json",
	}, &out2, &stderr)
	if code != 0 {
		t.Fatalf("rate-limited run exited %d; stderr:\n%s", code, stderr.String())
	}
	var rep2 report
	if err := json.Unmarshal(out2.Bytes(), &rep2); err != nil {
		t.Fatal(err)
	}
	if rep2.Appends < 2 {
		t.Fatalf("rate-limited run made only %d appends", rep2.Appends)
	}
	minWall := time.Duration(rep2.Appends-1) * (time.Second / 200)
	if elapsed := time.Since(start); elapsed < minWall {
		t.Errorf("rate cap violated: %d appends in %v (< %v)", rep2.Appends, elapsed, minWall)
	}
}
