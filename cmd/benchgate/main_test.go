package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldRun = `
goos: linux
BenchmarkHybridWorkers/book-cs/workers=1-8         3   1000000 ns/op   12 B/op
BenchmarkHybridWorkers/book-cs/workers=1-8         3   1040000 ns/op
BenchmarkHybridWorkers/book-cs/workers=1-8         3    960000 ns/op
BenchmarkIncrementalWorkers/book-cs-8              3    500000 ns/op
BenchmarkIncrementalWorkers/book-cs-8              3    520000 ns/op
BenchmarkIncrementalWorkers/book-cs-8              3    480000 ns/op
BenchmarkOnlyInOld-8                               3    100000 ns/op
PASS
`

func newRun(hybridNs, incNs int) string {
	var b strings.Builder
	for i := -1; i <= 1; i++ {
		b.WriteString("BenchmarkHybridWorkers/book-cs/workers=1-8  3  ")
		b.WriteString(strings.TrimSpace(strings.Repeat(" ", 1)))
		b.WriteString(itoa(hybridNs+i*10000) + " ns/op\n")
		b.WriteString("BenchmarkIncrementalWorkers/book-cs-8  3  " + itoa(incNs+i*5000) + " ns/op\n")
	}
	b.WriteString("BenchmarkOnlyInNew-8  3  42 ns/op\nPASS\n")
	return b.String()
}

func itoa(n int) string {
	var b []byte
	if n == 0 {
		return "0"
	}
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestGateComputesMedianGeomean(t *testing.T) {
	// New run: hybrid 10% slower, incremental 10% faster -> geomean ~1.
	var out bytes.Buffer
	rep, err := gate(strings.NewReader(oldRun), strings.NewReader(newRun(1100000, 450000)), &out)
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	want := math.Sqrt(1.1 * 0.9)
	if math.Abs(rep.GeomeanRatio-want) > 0.001 {
		t.Fatalf("geomean = %.4f, want %.4f\n%s", rep.GeomeanRatio, want, out.String())
	}
	// Benchmarks present on only one side must not count.
	if s := out.String(); strings.Contains(s, "OnlyInOld") || strings.Contains(s, "OnlyInNew") {
		t.Fatalf("one-sided benchmarks in table:\n%s", s)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("report has %d benchmarks, want 2: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	// Per-benchmark medians survive into the report.
	if h := rep.Benchmarks[0]; h.Name != "BenchmarkHybridWorkers/book-cs/workers=1-8" ||
		h.OldNsOp != 1000000 || h.NewNsOp != 1100000 || math.Abs(h.Ratio-1.1) > 1e-9 {
		t.Fatalf("hybrid row = %+v", h)
	}
}

func TestGateFlagsRegression(t *testing.T) {
	var out bytes.Buffer
	// Both 30% slower: geomean 1.3, over any 15% budget.
	rep, err := gate(strings.NewReader(oldRun), strings.NewReader(newRun(1300000, 650000)), &out)
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	if rep.GeomeanRatio < 1.25 || rep.GeomeanRatio > 1.35 {
		t.Fatalf("geomean = %.3f, want ~1.3", rep.GeomeanRatio)
	}
	// And an improvement stays comfortably under 1.
	rep, err = gate(strings.NewReader(oldRun), strings.NewReader(newRun(700000, 350000)), &out)
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	if rep.GeomeanRatio >= 1 {
		t.Fatalf("improvement scored geomean %.3f", rep.GeomeanRatio)
	}
}

// TestRunWritesJSONReport drives the whole CLI: the JSON artifact must
// be written with the full verdict — also (especially) when the gate
// fails, since CI archives it as the per-PR perf trajectory record.
func TestRunWritesJSONReport(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "main.txt")
	newPath := filepath.Join(dir, "pr.txt")
	jsonPath := filepath.Join(dir, "BENCH_pr.json")
	if err := os.WriteFile(oldPath, []byte(oldRun), 0o644); err != nil {
		t.Fatal(err)
	}

	// Passing case: ~neutral geomean.
	if err := os.WriteFile(newPath, []byte(newRun(1100000, 450000)), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-old", oldPath, "-new", newPath, "-json", jsonPath}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("neutral run exited %d; stderr:\n%s", code, stderr.String())
	}
	var rep report
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("bad JSON %q: %v", raw, err)
	}
	if !rep.Pass || rep.MaxRegression != 0.15 || len(rep.Benchmarks) != 2 {
		t.Fatalf("report = %+v", rep)
	}

	// Failing case: the gate exits 1 but the JSON verdict is still
	// recorded, with pass=false.
	if err := os.WriteFile(newPath, []byte(newRun(1300000, 650000)), 0o644); err != nil {
		t.Fatal(err)
	}
	code = run([]string{"-old", oldPath, "-new", newPath, "-json", jsonPath, "-max-regression", "0.15"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("regressed run exited %d, want 1", code)
	}
	raw, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	rep = report{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.GeomeanRatio < 1.25 {
		t.Fatalf("failing report = %+v", rep)
	}

	// Flag errors exit 2 without touching the JSON path.
	if code := run([]string{"-old", oldPath}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -new exited %d, want 2", code)
	}
	if code := run([]string{"-old", oldPath, "-new", newPath, "-max-regression", "x"}, &stdout, &stderr); code != 2 {
		t.Fatalf("bad -max-regression exited %d, want 2", code)
	}
}

func TestGateErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := gate(strings.NewReader(oldRun), strings.NewReader("no benchmarks here"), &out); err == nil {
		t.Error("disjoint runs accepted")
	}
	if _, err := gate(strings.NewReader(""), strings.NewReader(""), &out); err == nil {
		t.Error("empty runs accepted")
	}
}

const oldRunMem = `
BenchmarkHybridWorkers/workers1-8   3   1000000 ns/op   500000 B/op   4000 allocs/op
BenchmarkHybridWorkers/workers1-8   3   1040000 ns/op   500000 B/op   4100 allocs/op
BenchmarkHybridWorkers/workers1-8   3    960000 ns/op   500000 B/op   3900 allocs/op
BenchmarkSteady-8                   3    500000 ns/op        0 B/op      0 allocs/op
PASS
`

const newRunMem = `
BenchmarkHybridWorkers/workers1-8   3   1000000 ns/op    90000 B/op      5 allocs/op
BenchmarkSteady-8                   3    500000 ns/op        0 B/op      0 allocs/op
PASS
`

const newRunMemRegressed = `
BenchmarkHybridWorkers/workers1-8   3   1000000 ns/op   500000 B/op   4000 allocs/op
BenchmarkSteady-8                   3    500000 ns/op    80000 B/op    900 allocs/op
PASS
`

// TestGateAllocs: -benchmem columns feed a second geomean with +1-damped
// ratios, so 0 allocs/op steady states compare cleanly.
func TestGateAllocs(t *testing.T) {
	var out bytes.Buffer
	rep, err := gate(strings.NewReader(oldRunMem), strings.NewReader(newRunMem), &out)
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	if rep.Benchmarks[0].OldAllocsOp != 4000 || rep.Benchmarks[0].NewAllocsOp != 5 {
		t.Fatalf("alloc medians = %+v", rep.Benchmarks[0])
	}
	// hybrid: (5+1)/(4000+1); steady: (0+1)/(0+1) = 1.
	want := math.Sqrt(6.0 / 4001.0)
	if math.Abs(rep.GeomeanAllocRatio-want) > 1e-9 {
		t.Fatalf("alloc geomean = %v, want %v", rep.GeomeanAllocRatio, want)
	}

	// A 0 -> 900 regression on one benchmark must blow the alloc gate even
	// though ns/op is unchanged.
	rep, err = gate(strings.NewReader(oldRunMem), strings.NewReader(newRunMemRegressed), &out)
	if err != nil {
		t.Fatalf("gate: %v", err)
	}
	if rep.GeomeanRatio > 1.001 {
		t.Fatalf("ns geomean = %v, want ~1", rep.GeomeanRatio)
	}
	if rep.GeomeanAllocRatio < 10 {
		t.Fatalf("alloc geomean = %v, want the 0→900 regression to dominate", rep.GeomeanAllocRatio)
	}
}

// TestRunGatesAllocRegression: the CLI must fail on an alloc-only
// regression and record both budgets in the JSON verdict.
func TestRunGatesAllocRegression(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "main.txt")
	newPath := filepath.Join(dir, "pr.txt")
	jsonPath := filepath.Join(dir, "BENCH.json")
	if err := os.WriteFile(oldPath, []byte(oldRunMem), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newRunMemRegressed), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-old", oldPath, "-new", newPath, "-json", jsonPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("alloc regression exited %d, want 1; stderr:\n%s", code, stderr.String())
	}
	var rep report
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Pass || rep.MaxAllocRegression != 0.25 || rep.GeomeanAllocRatio < 10 {
		t.Fatalf("report = %+v", rep)
	}

	// An allocation improvement passes with budget to spare.
	if err := os.WriteFile(newPath, []byte(newRunMem), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-old", oldPath, "-new", newPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("alloc improvement exited %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if code := run([]string{"-old", oldPath, "-new", newPath, "-max-alloc-regression", "x"}, &stdout, &stderr); code != 2 {
		t.Fatal("bad -max-alloc-regression accepted")
	}
}
