// Command benchgate is the CI performance-regression gate: it compares
// two `go test -bench` outputs (the pull request's and the main
// branch's), prints a per-benchmark table, and fails when the geometric
// mean of the ns/op ratios regresses beyond a threshold.
//
// Usage:
//
//	benchgate -old main.txt -new pr.txt [-max-regression 0.15]
//
// Each file should come from the same benchmark set run with -count N
// (N >= 3 recommended); benchgate takes the per-benchmark median, so a
// single noisy iteration does not fail a build. benchstat remains the
// human-readable report; benchgate is the machine-checkable verdict.
package main

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9][0-9.eE+]*) ns/op`)

// parseBench collects the ns/op samples of every benchmark in a
// `go test -bench` output.
func parseBench(r io.Reader) (map[string][]float64, error) {
	samples := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// gate compares the two outputs and returns the geometric-mean ratio
// (new/old) across the benchmarks they share, writing the table to w.
func gate(oldR, newR io.Reader, w io.Writer) (float64, error) {
	oldS, err := parseBench(oldR)
	if err != nil {
		return 0, err
	}
	newS, err := parseBench(newR)
	if err != nil {
		return 0, err
	}
	var names []string
	for name := range oldS {
		if _, ok := newS[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return 0, fmt.Errorf("benchgate: the two runs share no benchmarks")
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-60s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	logSum := 0.0
	for _, name := range names {
		o, n := median(oldS[name]), median(newS[name])
		if o <= 0 || n <= 0 {
			return 0, fmt.Errorf("benchgate: non-positive median for %s", name)
		}
		ratio := n / o
		logSum += math.Log(ratio)
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %8.3f\n", name, o, n, ratio)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(w, "\ngeomean ratio (new/old) over %d benchmarks: %.3f\n", len(names), geomean)
	return geomean, nil
}

func main() {
	oldPath := ""
	newPath := ""
	maxRegression := 0.15
	usage := func() {
		fmt.Fprintf(os.Stderr, "usage: benchgate -old FILE -new FILE [-max-regression 0.15]\n")
		os.Exit(2)
	}
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		if i+1 >= len(args) {
			usage() // every flag takes a value
		}
		switch args[i] {
		case "-old":
			i++
			oldPath = args[i]
		case "-new":
			i++
			newPath = args[i]
		case "-max-regression":
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchgate: bad -max-regression: %v\n", err)
				os.Exit(2)
			}
			maxRegression = v
		default:
			usage()
		}
	}
	if oldPath == "" || newPath == "" {
		fmt.Fprintf(os.Stderr, "usage: benchgate -old FILE -new FILE [-max-regression 0.15]\n")
		os.Exit(2)
	}
	oldF, err := os.Open(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	defer oldF.Close()
	newF, err := os.Open(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	defer newF.Close()
	geomean, err := gate(oldF, newF, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if geomean > 1+maxRegression {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL: geomean %.3f exceeds the %.0f%% regression budget\n",
			geomean, maxRegression*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK (budget %.0f%%)\n", maxRegression*100)
}
