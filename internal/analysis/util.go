package analysis

import (
	"go/ast"
	"go/types"
)

// calleeFunc resolves the static callee of a call expression: a
// package-level function, a method, or a generic instantiation of
// either. Dynamic calls (function values, builtins, conversions)
// resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := unparen(call.Fun)
	switch fn := fn.(type) {
	case *ast.IndexExpr:
		if id, ok := unparen(fn.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	case *ast.IndexListExpr:
		if id, ok := unparen(fn.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f
		}
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether f is the package-level function pkgPath.name.
func isPkgFunc(f *types.Func, pkgPath, name string) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == pkgPath &&
		f.Name() == name && f.Type().(*types.Signature).Recv() == nil
}

// parentMap records the immediate parent of every node under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// unparen strips any levels of parentheses (ast.Unparen needs go1.22;
// go.mod is 1.21).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isMapType reports whether t's core type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
