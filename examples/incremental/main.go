// Incremental: shows what Section V of the paper is about. The iterative
// truth-finding process runs copy detection every round, but after round
// two the statistical state barely moves — so INCREMENTAL refines the
// previous round's decisions instead of re-detecting from scratch. This
// example instruments the driver to print, per round, how much work each
// detector did and where INCREMENTAL's pairs settled.
//
// Run with:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"time"

	"copydetect"
)

func main() {
	cfg := copydetect.ScaleConfig(copydetect.Stock1DayConfig(99), 0.1)
	ds, _, err := copydetect.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s\n\n", copydetect.Summarize(ds))

	params := copydetect.DefaultParams()

	hybrid := copydetect.Detect(ds, copydetect.AlgorithmHybrid, params)
	incr := copydetect.Detect(ds, copydetect.AlgorithmIncremental, params)

	fmt.Printf("%-8s %18s %18s\n", "Round", "HYBRID comps", "INCREMENTAL comps")
	rounds := min(hybrid.Rounds, incr.Rounds)
	for r := 0; r < rounds; r++ {
		h, i := hybrid.RoundStats[r], incr.RoundStats[r]
		marker := ""
		if r >= 2 {
			marker = "   <- incremental refinement"
		}
		fmt.Printf("%-8d %18d %18d%s\n", r+1, h.Computations, i.Computations, marker)
	}

	fmt.Printf("\ntotal copy-detection time: HYBRID %v, INCREMENTAL %v\n",
		hybrid.TotalStats.Total().Round(time.Millisecond),
		incr.TotalStats.Total().Round(time.Millisecond))

	// Decisions must (nearly) coincide.
	prf := copydetect.ComparePairs(incr.Copy, hybrid.Copy)
	fmt.Printf("INCREMENTAL vs HYBRID copying pairs: P=%.3f R=%.3f F=%.3f\n",
		prf.Precision, prf.Recall, prf.F1)

	same := 0
	for d := range hybrid.Truth {
		if hybrid.Truth[d] == incr.Truth[d] {
			same++
		}
	}
	fmt.Printf("identical truth decisions: %d / %d items\n", same, len(hybrid.Truth))
}
