// Package sample implements the three item-sampling strategies evaluated
// in Section VI: BYITEM (SAMPLE1's plain random item sample), BYCELL
// (SAMPLE2's sample-until-cell-budget), and SCALESAMPLE, the paper's
// coverage-aware strategy that guarantees a minimum number of sampled
// items per source so low-coverage sources still contribute evidence.
package sample

import (
	"math/rand"

	"copydetect/internal/dataset"
)

// Result is a sampled dataset together with the mapping from its item ids
// back to the full dataset's, and the realized sampling rates the paper
// reports (fraction of items and of non-empty cells retained).
type Result struct {
	Dataset  *dataset.Dataset
	ItemMap  []dataset.ItemID
	ItemRate float64
	CellRate float64
}

// ByItem samples each item independently: a plain random subset of
// rate·|D| items (SAMPLE1 / BYITEM).
func ByItem(ds *dataset.Dataset, rate float64, rng *rand.Rand) Result {
	n := ds.NumItems()
	want := int(rate * float64(n))
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	perm := rng.Perm(n)
	items := make([]dataset.ItemID, want)
	for i := 0; i < want; i++ {
		items[i] = dataset.ItemID(perm[i])
	}
	return finish(ds, items)
}

// ByCell samples random items until the retained non-empty cells reach
// cellRate of the dataset's non-empty cells (SAMPLE2 / BYCELL).
func ByCell(ds *dataset.Dataset, cellRate float64, rng *rand.Rand) Result {
	total := ds.NumObservations()
	target := int(cellRate * float64(total))
	perm := rng.Perm(ds.NumItems())
	var items []dataset.ItemID
	got := 0
	for _, d := range perm {
		if got >= target && len(items) > 0 {
			break
		}
		items = append(items, dataset.ItemID(d))
		got += len(ds.ByItem[d])
	}
	return finish(ds, items)
}

// ScaleSample samples rate·|D| items like ByItem, then tops up: every
// source left with fewer than minPerSource sampled items gets additional
// random items from its own coverage (when it has that many), so that even
// low-coverage sources keep enough shared evidence for copy detection.
// The paper uses minPerSource N = 4.
func ScaleSample(ds *dataset.Dataset, rate float64, minPerSource int, rng *rand.Rand) Result {
	n := ds.NumItems()
	want := int(rate * float64(n))
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	perm := rng.Perm(n)
	chosen := make([]bool, n)
	var items []dataset.ItemID
	for i := 0; i < want; i++ {
		chosen[perm[i]] = true
		items = append(items, dataset.ItemID(perm[i]))
	}
	// Top-up pass per source.
	for s := range ds.BySource {
		obs := ds.BySource[s]
		have := 0
		for _, o := range obs {
			if chosen[o.Item] {
				have++
			}
		}
		need := minPerSource - have
		if need <= 0 {
			continue
		}
		// Random order over the source's own items.
		idxs := rng.Perm(len(obs))
		for _, i := range idxs {
			if need == 0 {
				break
			}
			d := obs[i].Item
			if !chosen[d] {
				chosen[d] = true
				items = append(items, d)
				need--
			}
		}
	}
	return finish(ds, items)
}

func finish(ds *dataset.Dataset, items []dataset.ItemID) Result {
	sub, itemMap := dataset.SubsetItems(ds, items)
	r := Result{Dataset: sub, ItemMap: itemMap}
	if n := ds.NumItems(); n > 0 {
		r.ItemRate = float64(len(items)) / float64(n)
	}
	if total := ds.NumObservations(); total > 0 {
		r.CellRate = float64(sub.NumObservations()) / float64(total)
	}
	return r
}
