// Command experiments regenerates the tables and figures of "Scaling up
// Copy Detection" (ICDE 2015) on synthetic stand-ins for its data sets.
//
// Usage:
//
//	experiments [-run all|motivating|table5|...|figure3] [-scale 0.2]
//	            [-seed 1] [-workers 0]
//
// -scale 1 uses the paper's dataset sizes; the default 0.2 keeps the
// slowest baseline (PAIRWISE on Book-full) tractable. -workers 0 (the
// default) shards copy detection over one goroutine per CPU; detection is
// deterministic, so the tables are identical for every worker count and
// only the wall-clock columns change.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"copydetect/internal/experiments"
	"copydetect/internal/pool"
)

func main() {
	runID := flag.String("run", "all", "experiment id: "+strings.Join(experiments.IDs(), ", ")+", or all")
	scale := flag.Float64("scale", 0.2, "dataset scale factor (1 = paper sizes)")
	seed := flag.Int64("seed", 1, "random seed for dataset generation and sampling")
	workers := flag.Int("workers", 0, "detection worker goroutines (0 = one per CPU, 1 = sequential)")
	flag.Parse()

	if *scale <= 0 || *scale > 4 {
		fmt.Fprintf(os.Stderr, "experiments: -scale %v out of (0, 4]\n", *scale)
		os.Exit(2)
	}
	if *workers <= 0 {
		*workers = pool.Auto()
	}
	env := experiments.NewEnv(os.Stdout, *scale, *seed)
	env.Workers = *workers
	if err := env.Run(*runID); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
