package telemetry

import (
	"fmt"
	"io"
	"net/http"
)

// maxScrapeBytes bounds one /metrics response body; a scrape is a few
// hundred lines, so anything near this is a misbehaving endpoint.
const maxScrapeBytes = 8 << 20

// Scrape GETs base+"/metrics" and parses every exposition line. It is
// the one scrape client shared by the scenario soak harness and the
// e2e tests, so "every line of /metrics parses" is asserted the same
// way everywhere.
func Scrape(client *http.Client, base string) ([]Sample, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("scrape %s/metrics: status %d: %s", base, resp.StatusCode, body)
	}
	samples, err := ParseLines(io.LimitReader(resp.Body, maxScrapeBytes))
	if err != nil {
		return nil, fmt.Errorf("scrape %s/metrics: %w", base, err)
	}
	return samples, nil
}

// Value returns the first sample named name whose labels contain every
// pair of labels (a subset match; nil matches any sample of the name).
func Value(samples []Sample, name string, labels map[string]string) (float64, bool) {
next:
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		for k, v := range labels {
			if s.Labels[k] != v {
				continue next
			}
		}
		return s.Value, true
	}
	return 0, false
}
