package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"log"
	"net/http"
	"strings"
	"time"
)

// TraceHeader carries the per-request trace ID. The gateway generates
// one when a client didn't supply it, forwards it to the backend it
// proxies to (and to mirror jobs), and both daemons echo it on the
// response and print it in their access logs — so one grep joins a
// request's hops across every process.
const TraceHeader = "X-Copydetect-Trace"

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the process is in much deeper
		// trouble than tracing; a constant beats a panic mid-request.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// HTTPMetrics instruments an http.Handler: request counts by route,
// method and status code, latency histograms by route and status
// class, and an in-flight gauge by route. It also owns the access log
// and trace-ID handling that used to live in the daemons' logRequests
// wrappers.
type HTTPMetrics struct {
	requests *CounterVec   // route, method, code
	latency  *HistogramVec // route, class
	inflight *GaugeVec     // route
	logger   *log.Logger   // nil disables access logging
}

// NewHTTPMetrics registers the request-level families on reg under the
// given service prefix (for example "copydetectd" or "copygate") and
// returns the middleware. logger receives one access-log line per
// request; pass nil to disable logging (tests).
func NewHTTPMetrics(reg *Registry, service string, logger *log.Logger) *HTTPMetrics {
	return &HTTPMetrics{
		requests: reg.CounterVec(service+"_http_requests_total",
			"HTTP requests served, by route, method and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec(service+"_http_request_duration_seconds",
			"HTTP request latency in seconds, by route and status class.",
			DefBuckets, "route", "class"),
		inflight: reg.GaugeVec(service+"_http_in_flight_requests",
			"HTTP requests currently being served, by route.",
			"route"),
		logger: logger,
	}
}

// Wrap returns next instrumented with metrics, trace IDs and access
// logging.
func (m *HTTPMetrics) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		trace := req.Header.Get(TraceHeader)
		if trace == "" {
			trace = NewTraceID()
			// Set it on the inbound headers too: the gateway's proxy
			// path copies client headers verbatim onto the backend
			// request, so this is what propagates the ID downstream.
			req.Header.Set(TraceHeader, trace)
		}
		w.Header().Set(TraceHeader, trace)

		route := NormalizeRoute(req.URL.Path)
		g := m.inflight.With(route)
		g.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, req)
		elapsed := time.Since(start)
		g.Add(-1)

		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		m.requests.With(route, NormalizeMethod(req.Method), itoa(code)).Inc()
		m.latency.With(route, statusClass(code)).Observe(elapsed.Seconds())
		if m.logger != nil {
			m.logger.Printf("%s %s %d %dB %s trace=%s",
				req.Method, req.URL.Path, code, sw.bytes, elapsed.Round(time.Microsecond), trace)
		}
	})
}

// statusWriter records the status code and body size while forwarding
// writes. It preserves http.Flusher so streamed responses keep
// flushing through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// NormalizeRoute collapses dataset names out of request paths so the
// route label has bounded cardinality: /v1/datasets/<name>/<op> maps
// to /v1/datasets/{name}/<op> for known operations, unknown paths to
// "other".
func NormalizeRoute(path string) string {
	switch path {
	case "/healthz", "/metrics", "/v1/datasets":
		return path
	}
	rest, ok := strings.CutPrefix(path, "/v1/datasets/")
	if !ok || rest == "" {
		return "other"
	}
	name, op, hasOp := strings.Cut(rest, "/")
	if name == "" {
		return "other"
	}
	if !hasOp || op == "" {
		return "/v1/datasets/{name}"
	}
	switch op {
	case "observations", "copies", "truth", "stats", "quiesce", "export", "import":
		return "/v1/datasets/{name}/" + op
	}
	return "other"
}

// NormalizeMethod bounds the method label: the methods the services
// actually route stay distinct, anything else a client invents —
// methods are arbitrary client-controlled tokens — collapses to
// "other" instead of minting a new label child per probe string.
func NormalizeMethod(method string) string {
	switch method {
	case http.MethodGet, http.MethodPost, http.MethodPut,
		http.MethodDelete, http.MethodHead, http.MethodOptions:
		return method
	}
	return "other"
}

func statusClass(code int) string {
	switch {
	case code < 200:
		return "1xx"
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

func itoa(code int) string {
	// Fast path for the handful of codes the services actually emit.
	switch code {
	case 200:
		return "200"
	case 202:
		return "202"
	case 404:
		return "404"
	case 409:
		return "409"
	case 413:
		return "413"
	case 429:
		return "429"
	case 500:
		return "500"
	case 503:
		return "503"
	}
	b := [3]byte{byte('0' + code/100), byte('0' + code/10%10), byte('0' + code%10)}
	return string(b[:])
}
