package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"copydetect/internal/core"
	"copydetect/internal/server"
)

// blockableTransport simulates a dead backend at the transport level:
// requests to a blocked host fail the way connections to a SIGKILLed
// process do, while the process under the httptest server stays alive
// so the test can "restart" it by unblocking.
type blockableTransport struct {
	blocked atomic.Value // map[string]bool by host:port; replaced wholesale
}

func newBlockableTransport() *blockableTransport {
	bt := &blockableTransport{}
	bt.blocked.Store(map[string]bool{})
	return bt
}

func (bt *blockableTransport) setBlocked(host string, v bool) {
	old := bt.blocked.Load().(map[string]bool)
	next := make(map[string]bool, len(old)+1)
	for k, b := range old {
		next[k] = b
	}
	next[host] = v
	bt.blocked.Store(next)
}

func (bt *blockableTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if bt.blocked.Load().(map[string]bool)[req.URL.Host] {
		return nil, fmt.Errorf("dial tcp %s: connect: connection refused (injected)", req.URL.Host)
	}
	return http.DefaultTransport.RoundTrip(req)
}

// replCluster is n real in-process daemons behind a replication-enabled
// gateway whose transport can cut off individual backends.
type replCluster struct {
	t         *testing.T
	gw        *Gateway
	gwServer  *httptest.Server
	regs      []*server.Registry
	backends  []*httptest.Server
	hosts     []string
	transport *blockableTransport
}

func newReplCluster(t *testing.T, n int, cfg Config) *replCluster {
	t.Helper()
	rc := &replCluster{t: t, transport: newBlockableTransport()}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
		t.Cleanup(reg.Close)
		s := httptest.NewServer(server.NewHandler(reg))
		t.Cleanup(s.Close)
		rc.regs = append(rc.regs, reg)
		rc.backends = append(rc.backends, s)
		rc.hosts = append(rc.hosts, strings.TrimPrefix(s.URL, "http://"))
		urls[i] = s.URL
	}
	cfg.Backends = urls
	cfg.Transport = rc.transport
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	rc.gw = gw
	rc.gwServer = httptest.NewServer(gw)
	t.Cleanup(rc.gwServer.Close)
	return rc
}

// nameWithPrimary finds a dataset name whose replica set starts at
// backend want (the ring is a pure function of the name, so this is
// just a search).
func (rc *replCluster) nameWithPrimary(want int) string {
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("repl-%d", i)
		if rc.gw.Ring().Owner(name) == want {
			return name
		}
	}
	rc.t.Fatalf("no dataset name with primary %d found", want)
	return ""
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type infoBody struct {
	Name         string `json:"name"`
	Version      uint64 `json:"version"`
	Observations int    `json:"observations"`
}

func directInfo(t *testing.T, base, name string) (infoBody, int) {
	t.Helper()
	resp, raw := do(t, http.MethodGet, base+"/v1/datasets/"+name, nil, nil)
	var inf infoBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &inf); err != nil {
			t.Fatalf("info body %q: %v", raw, err)
		}
	}
	return inf, resp.StatusCode
}

// TestReplicatedWritesLandOnAllMembers: with R=2 every write a client
// gets acknowledged must end up on both members of the dataset's
// replica set — and on no other backend.
func TestReplicatedWritesLandOnAllMembers(t *testing.T) {
	rc := newReplCluster(t, 3, Config{Replication: 2, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(0)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	for i := 0; i < 3; i++ {
		if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch(fmt.Sprintf("b%d", i)), nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("append %d: %d %s", i, resp.StatusCode, body)
		}
	}

	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d to hold version 3", m), func() bool {
			inf, status := directInfo(t, rc.backends[m].URL, name)
			return status == http.StatusOK && inf.Version == 3
		})
	}
	for i := range rc.backends {
		if i == members[0] || i == members[1] {
			continue
		}
		if _, status := directInfo(t, rc.backends[i].URL, name); status != http.StatusNotFound {
			t.Errorf("non-member backend %d holds dataset %q (status %d)", i, name, status)
		}
	}

	// The members hold identical streams: same version, same cells.
	a, _ := directInfo(t, rc.backends[members[0]].URL, name)
	b, _ := directInfo(t, rc.backends[members[1]].URL, name)
	if a.Version != b.Version || a.Observations != b.Observations {
		t.Errorf("members diverge: primary %+v, replica %+v", a, b)
	}

	// The gateway's list must not double-count the replicated dataset.
	resp, raw := do(t, http.MethodGet, rc.gwServer.URL+"/v1/datasets", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, raw)
	}
	var lr listResponse
	if err := json.Unmarshal(raw, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Partial || len(lr.Datasets) != 1 || lr.Datasets[0].Name != name {
		t.Errorf("replicated list = %+v, want exactly one entry for %q", lr, name)
	}
}

// TestFailoverServesAndAcceptsWithDeadPrimary: killing the primary must
// not surface a single 5xx — reads and writes fail over to the replica
// within the request, and failover responses carry the replica marker.
func TestFailoverServesAndAcceptsWithDeadPrimary(t *testing.T) {
	rc := newReplCluster(t, 3, Config{Replication: 2, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(1)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("pre"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	waitFor(t, "replica to mirror the first batch", func() bool {
		inf, status := directInfo(t, rc.backends[members[1]].URL, name)
		return status == http.StatusOK && inf.Version == 1
	})

	rc.transport.setBlocked(rc.hosts[members[0]], true)

	// Appends keep getting acknowledged, served by the replica.
	resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("post"), nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append with dead primary: %d %s, want 202", resp.StatusCode, body)
	}
	if resp.Header.Get(server.ReplicaHeader) != "true" {
		t.Errorf("failover append response missing %s header", server.ReplicaHeader)
	}
	// Reads too — quiesce first so the published round is current.
	if resp, body := do(t, http.MethodPost, base+"/quiesce", nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("quiesce with dead primary: %d %s", resp.StatusCode, body)
	}
	resp, body = do(t, http.MethodGet, base+"/copies", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with dead primary: %d %s, want 200", resp.StatusCode, body)
	}
	if resp.Header.Get(server.ReplicaHeader) != "true" {
		t.Errorf("failover read response missing %s header", server.ReplicaHeader)
	}

	// The replica holds the full stream: both batches, exactly once.
	inf, status := directInfo(t, rc.backends[members[1]].URL, name)
	if status != http.StatusOK || inf.Version != 2 || inf.Observations != 12 {
		t.Errorf("replica after failover: status %d %+v, want version 2 with 12 observations", status, inf)
	}

	// The dead primary is known stale (it missed the failover batch).
	waitFor(t, "primary to be marked stale", func() bool {
		return rc.gw.Status()[members[0]].StaleDatasets == 1
	})
}

// TestAntiEntropyCatchUpOnReadmission: a backend that missed writes
// while it was down must be caught up from its peer once probes readmit
// it — and only then serve again, without the replica marker.
func TestAntiEntropyCatchUpOnReadmission(t *testing.T) {
	rc := newReplCluster(t, 3, Config{
		Replication:  2,
		ProbeEvery:   5 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		EjectAfter:   2,
		ReadmitAfter: 2,
	})
	name := rc.nameWithPrimary(2)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("pre"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}

	rc.transport.setBlocked(rc.hosts[members[0]], true)
	waitFor(t, "primary ejection", func() bool { return !rc.gw.Status()[members[0]].Healthy })

	// Two more acknowledged batches the primary never sees.
	for i := 0; i < 2; i++ {
		if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch(fmt.Sprintf("down%d", i)), nil); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("append %d with dead primary: %d %s", i, resp.StatusCode, body)
		}
	}

	rc.transport.setBlocked(rc.hosts[members[0]], false)
	waitFor(t, "primary readmission", func() bool { return rc.gw.Status()[members[0]].Healthy })
	waitFor(t, "anti-entropy to clear the stale mark", func() bool {
		return rc.gw.Status()[members[0]].StaleDatasets == 0
	})

	// The recovered primary holds the full stream again...
	inf, status := directInfo(t, rc.backends[members[0]].URL, name)
	if status != http.StatusOK || inf.Version != 3 || inf.Observations != 18 {
		t.Fatalf("recovered primary: status %d %+v, want version 3 with 18 observations", status, inf)
	}
	// ...and serves: reads come back without the replica marker.
	waitFor(t, "primary to serve reads again", func() bool {
		resp, _ := do(t, http.MethodGet, base, nil, nil)
		return resp.StatusCode == http.StatusOK && resp.Header.Get(server.ReplicaHeader) == ""
	})

	// New writes reach both members again.
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("after"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append after readmission: %d %s", resp.StatusCode, body)
	}
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d to hold version 4", m), func() bool {
			inf, status := directInfo(t, rc.backends[m].URL, name)
			return status == http.StatusOK && inf.Version == 4
		})
	}
}

// TestDeleteReplicates: a delete acknowledged by the acting primary
// must remove the dataset from every member.
func TestDeleteReplicates(t *testing.T) {
	rc := newReplCluster(t, 3, Config{Replication: 2, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(0)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	waitFor(t, "replica create", func() bool {
		_, status := directInfo(t, rc.backends[members[1]].URL, name)
		return status == http.StatusOK
	})
	if resp, body := do(t, http.MethodDelete, base, nil, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d %s", resp.StatusCode, body)
	}
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d to drop the dataset", m), func() bool {
			_, status := directInfo(t, rc.backends[m].URL, name)
			return status == http.StatusNotFound
		})
	}
}

// dyingBackend wraps a real daemon handler but kills the connection
// mid-request-body on observation appends while armed — the worst-case
// failure for a proxy: the backend consumed part of the body and its
// fate is unknown. It counts unsequenced observation POSTs separately:
// an unsequenced resend could double-append, while a sequenced mirror
// delivery is idempotent by design and therefore allowed.
type dyingBackend struct {
	inner http.Handler
	armed atomic.Bool
	posts atomic.Int64 // unsequenced observation POSTs (no X-Copydetect-Seq)
}

func (d *dyingBackend) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/observations") {
		if req.Header.Get(server.SeqHeader) == "" {
			d.posts.Add(1)
		}
		if d.armed.Load() {
			// Read part of the body, then kill the TCP connection so the
			// client sees a transport error after partially streaming.
			buf := make([]byte, 16)
			_, _ = req.Body.Read(buf)
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				panic(err)
			}
			if tc, ok := conn.(*net.TCPConn); ok {
				_ = tc.SetLinger(0) // RST, not FIN: an honest crash
			}
			conn.Close()
			return
		}
	}
	d.inner.ServeHTTP(w, req)
}

// TestAppendNotRetriedAgainstBackendThatDiedMidBody is the regression
// test for the proxy retry audit: a write whose body was partially
// streamed to a backend that then died must never be re-sent to that
// backend (it might have applied the batch — a resend could append it
// twice). Without replication the client gets a clean 503 after exactly
// one attempt; with replication the write fails over to the replica and
// the batch lands exactly once cluster-wide.
func TestAppendNotRetriedAgainstBackendThatDiedMidBody(t *testing.T) {
	for _, replication := range []int{1, 2} {
		replication := replication
		t.Run(fmt.Sprintf("replicas=%d", replication), func(t *testing.T) {
			var dying *dyingBackend
			urls := make([]string, 3)
			regs := make([]*server.Registry, 3)
			servers := make([]*httptest.Server, 3)
			for i := 0; i < 3; i++ {
				regs[i] = server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
				t.Cleanup(regs[i].Close)
				var h http.Handler = server.NewHandler(regs[i])
				if i == 0 {
					dying = &dyingBackend{inner: h}
					h = dying
				}
				servers[i] = httptest.NewServer(h)
				t.Cleanup(servers[i].Close)
				urls[i] = servers[i].URL
			}
			gw, err := New(Config{
				Backends:    urls,
				Replication: replication,
				ProbeEvery:  time.Hour,
				Retries:     2, // GET retries must NOT leak into the write path
			})
			if err != nil {
				t.Fatal(err)
			}
			defer gw.Close()
			gwServer := httptest.NewServer(gw)
			defer gwServer.Close()

			// A dataset whose primary is the dying backend.
			name := ""
			for i := 0; i < 10000 && name == ""; i++ {
				cand := fmt.Sprintf("midbody-%d", i)
				if gw.Ring().Owner(cand) == 0 {
					name = cand
				}
			}
			base := gwServer.URL + "/v1/datasets/" + name
			if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
				t.Fatalf("create: %d %s", resp.StatusCode, body)
			}

			dying.armed.Store(true)
			dying.posts.Store(0)
			resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("mid"), nil)
			if got := dying.posts.Load(); got != 1 {
				t.Errorf("dying backend saw %d unsequenced observation POSTs, want exactly 1 (no resend of a consumed body; sequenced mirrors are idempotent and allowed)", got)
			}
			members := gw.Ring().ReplicaSet(name, replication)
			if replication == 1 {
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Fatalf("append with dying owner, no replication: %d %s, want 503", resp.StatusCode, body)
				}
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("append with dying primary, R=2: %d %s, want 202 via failover", resp.StatusCode, body)
			}
			if resp.Header.Get(server.ReplicaHeader) != "true" {
				t.Errorf("failover append missing %s header", server.ReplicaHeader)
			}
			// Exactly once cluster-wide: the replica holds the batch, the
			// dying backend (which never applied it) holds only the create.
			inf, status := directInfo(t, servers[members[1]].URL, name)
			if status != http.StatusOK || inf.Version != 1 || inf.Observations != 6 {
				t.Errorf("replica after mid-body failover: status %d %+v, want version 1 with 6 observations", status, inf)
			}
		})
	}
}

// TestRetriedGETDoesNotReuseConsumedBody: an idempotent GET that
// carries a body (legal, if unusual) and fails on the first transport
// attempt must succeed on the retry — the gateway drops the body rather
// than re-reading a consumed stream.
func TestRetriedGETDoesNotReuseConsumedBody(t *testing.T) {
	reg := server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
	defer reg.Close()
	backend := httptest.NewServer(server.NewHandler(reg))
	defer backend.Close()
	if _, err := reg.Create("g", server.DatasetConfig{}); err != nil {
		t.Fatal(err)
	}
	ft := &flakyTransport{}
	gw, err := New(Config{
		Backends:   []string{backend.URL},
		Retries:    2,
		ProbeEvery: time.Hour,
		Transport:  ft,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	gwServer := httptest.NewServer(gw)
	defer gwServer.Close()

	ft.remaining.Store(1)
	ft.attempts.Store(0)
	resp, body := do(t, http.MethodGet, gwServer.URL+"/v1/datasets/g", map[string]string{"ignored": "body"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET with body after one transport failure: %d %s, want 200 via retry", resp.StatusCode, body)
	}
	if got := ft.attempts.Load(); got != 2 {
		t.Errorf("GET used %d attempts, want 2", got)
	}
}

// TestIdleReplicationStateRetires: per-dataset replication state (and
// its worker goroutine) must not accumulate forever — once a dataset
// has been idle with no queued mirrors and no stale member, the state
// retires, and a later write transparently recreates it.
func TestIdleReplicationStateRetires(t *testing.T) {
	oldIdle := dsIdleRetire
	dsIdleRetire = 20 * time.Millisecond
	// Registered before the cluster's cleanups, so it runs after
	// gw.Close — no worker is still reading the variable.
	t.Cleanup(func() { dsIdleRetire = oldIdle })

	rc := newReplCluster(t, 3, Config{Replication: 2, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(0)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("idle"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	if rc.gw.lookupDS(name) == nil {
		t.Fatal("no replication state after a write")
	}
	waitFor(t, "idle state to retire", func() bool {
		return rc.gw.lookupDS(name) == nil
	})

	// A later write recreates the state and still replicates.
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("again"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append after retirement: %d %s", resp.StatusCode, body)
	}
	if rc.gw.lookupDS(name) == nil {
		t.Fatal("replication state not recreated by a post-retirement write")
	}
	for _, m := range members {
		m := m
		waitFor(t, fmt.Sprintf("member %d to hold version 2", m), func() bool {
			inf, status := directInfo(t, rc.backends[m].URL, name)
			return status == http.StatusOK && inf.Version == 2
		})
	}
}

// TestStaleMemberBlocksRetirement: a stale flag is an obligation — the
// state must stay (and keep re-arming anti-entropy) until the member
// is healed, no matter how long the dataset sits idle.
func TestStaleMemberBlocksRetirement(t *testing.T) {
	oldIdle := dsIdleRetire
	dsIdleRetire = 20 * time.Millisecond
	// Registered before the cluster's cleanups, so it runs after
	// gw.Close — no worker is still reading the variable.
	t.Cleanup(func() { dsIdleRetire = oldIdle })

	rc := newReplCluster(t, 3, Config{Replication: 2, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(0)
	members := rc.gw.Ring().ReplicaSet(name, 2)
	base := rc.gwServer.URL + "/v1/datasets/" + name

	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	rc.transport.setBlocked(rc.hosts[members[1]], true)
	if resp, body := do(t, http.MethodPost, base+"/observations", smallBatch("s"), nil); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append: %d %s", resp.StatusCode, body)
	}
	waitFor(t, "replica to be marked stale", func() bool {
		return rc.gw.Status()[members[1]].StaleDatasets == 1
	})
	// Idle far past the retirement threshold: the obligation pins it.
	time.Sleep(10 * dsIdleRetire)
	if rc.gw.lookupDS(name) == nil {
		t.Fatal("state with a stale member retired; the obligation was forgotten")
	}
}

// TestReadFailoverWorksWithRetriesDisabled: -retries 0 bounds transport
// re-attempts, not replica coverage — a read must still reach the
// replica when the primary is dead.
func TestReadFailoverWorksWithRetriesDisabled(t *testing.T) {
	rc := newReplCluster(t, 3, Config{Replication: 2, Retries: -1, ProbeEvery: time.Hour})
	name := rc.nameWithPrimary(0)
	base := rc.gwServer.URL + "/v1/datasets/" + name
	if resp, body := do(t, http.MethodPut, base, nil, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}
	members := rc.gw.Ring().ReplicaSet(name, 2)
	waitFor(t, "replica create", func() bool {
		_, status := directInfo(t, rc.backends[members[1]].URL, name)
		return status == http.StatusOK
	})
	rc.transport.setBlocked(rc.hosts[members[0]], true)
	resp, body := do(t, http.MethodGet, base, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read with dead primary and -retries 0: %d %s, want 200 via failover", resp.StatusCode, body)
	}
	if resp.Header.Get(server.ReplicaHeader) != "true" {
		t.Errorf("failover read missing %s header", server.ReplicaHeader)
	}
}

// TestStartupAuditHealsDivergedMembers: a fresh gateway has no memory
// of which members a previous gateway knew to be behind, so it must
// rediscover lag from the backends' own version counters and heal it —
// including a member that is missing the dataset entirely.
func TestStartupAuditHealsDivergedMembers(t *testing.T) {
	urls := make([]string, 3)
	regs := make([]*server.Registry, 3)
	backends := make([]*httptest.Server, 3)
	for i := 0; i < 3; i++ {
		regs[i] = server.NewRegistry(server.Config{Options: core.Options{Workers: 1}})
		t.Cleanup(regs[i].Close)
		backends[i] = httptest.NewServer(server.NewHandler(regs[i]))
		t.Cleanup(backends[i].Close)
		urls[i] = backends[i].URL
	}
	ring, err := NewRing(urls, 0)
	if err != nil {
		t.Fatal(err)
	}
	name := ""
	for i := 0; i < 10000 && name == ""; i++ {
		cand := fmt.Sprintf("audit-%d", i)
		if ring.Owner(cand) == 0 {
			name = cand
		}
	}
	members := ring.ReplicaSet(name, 2)

	// Simulate the aftermath of a gateway crash mid-divergence: the
	// primary holds two acknowledged batches, the replica none at all.
	m, err := regs[members[0]].Create(name, server.DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var recs []map[string]string
		for _, o := range smallBatch(fmt.Sprintf("a%d", i)).Observations {
			recs = append(recs, o)
		}
		resp, body := do(t, http.MethodPost, urls[members[0]]+"/v1/datasets/"+name+"/observations",
			obsBatch{Observations: recs}, nil)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("direct append %d: %d %s", i, resp.StatusCode, body)
		}
	}
	_ = m

	gw, err := New(Config{Backends: urls, Replication: 2, ProbeEvery: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)

	waitFor(t, "startup audit to heal the missing replica", func() bool {
		inf, status := directInfo(t, backends[members[1]].URL, name)
		return status == http.StatusOK && inf.Version == 2
	})
	a, _ := directInfo(t, backends[members[0]].URL, name)
	b, _ := directInfo(t, backends[members[1]].URL, name)
	if a.Version != b.Version || a.Observations != b.Observations {
		t.Errorf("members still diverge after audit: %+v vs %+v", a, b)
	}
	if gw.Status()[members[1]].StaleDatasets != 0 {
		t.Errorf("replica still marked stale after heal: %+v", gw.Status()[members[1]])
	}
}
