package main

import (
	"testing"
)

// TestParseFlags exercises every documented flag and the validation of
// priors and concurrency.
func TestParseFlags(t *testing.T) {
	opt, err := parseFlags(nil)
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if opt.addr != ":8377" || opt.cfg.Concurrency != 1 {
		t.Fatalf("defaults = %+v", opt)
	}
	if opt.cfg.Options.Workers < 1 {
		t.Fatalf("workers default %d, want >= 1 (per-CPU)", opt.cfg.Options.Workers)
	}
	if p := opt.cfg.Params; p.Alpha != 0.1 || p.S != 0.8 || p.N != 100 {
		t.Fatalf("default params = %+v", p)
	}

	if opt.cfg.DataDir != "" || !opt.cfg.Fsync || opt.cfg.SnapshotEvery != 1 {
		t.Fatalf("durability defaults = %+v", opt.cfg)
	}
	if opt.cfg.AppendHighWater != 0 {
		t.Fatalf("default -append-high-water: cfg.AppendHighWater = %d, want 0 (unbounded)", opt.cfg.AppendHighWater)
	}

	opt, err = parseFlags([]string{"-append-high-water", "64"})
	if err != nil || opt.cfg.AppendHighWater != 64 {
		t.Fatalf("-append-high-water 64: cfg.AppendHighWater = %d (err %v), want 64", opt.cfg.AppendHighWater, err)
	}

	opt, err = parseFlags([]string{
		"-addr", "127.0.0.1:9000", "-alpha", "0.2", "-s", "0.5", "-n", "40",
		"-workers", "3", "-concurrency", "2",
		"-data-dir", "/tmp/cdd", "-fsync=false", "-snapshot-every", "4",
		"-addr-file", "/tmp/cdd.addr",
	})
	if err != nil {
		t.Fatalf("full flags: %v", err)
	}
	if opt.addr != "127.0.0.1:9000" || opt.cfg.Options.Workers != 3 || opt.cfg.Concurrency != 2 {
		t.Fatalf("full flags = %+v", opt)
	}
	if p := opt.cfg.Params; p.Alpha != 0.2 || p.S != 0.5 || p.N != 40 {
		t.Fatalf("full-flag params = %+v", p)
	}
	if opt.cfg.DataDir != "/tmp/cdd" || opt.cfg.Fsync || opt.cfg.SnapshotEvery != 4 ||
		opt.addrFile != "/tmp/cdd.addr" {
		t.Fatalf("durability flags = %+v", opt)
	}

	for _, bad := range [][]string{
		{"-alpha", "0.7"},
		{"-s", "1.5"},
		{"-n", "1"},
		{"-concurrency", "0"},
		{"-snapshot-every", "0"},
		{"-append-high-water", "-1"},
		{"-nonsense"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid input", bad)
		}
	}
}

// TestHTTPServerTimeouts pins the slow-client protections on the
// listener: a server with no ReadHeaderTimeout can be held open forever
// by one trickled request line.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(nil)
	if srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v, want > 0", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v, want > 0", srv.IdleTimeout)
	}
}
