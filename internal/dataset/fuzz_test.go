package dataset

import (
	"bytes"
	"testing"

	"copydetect/internal/binio"
)

// FuzzDecodeDataset hammers the binary snapshot decoder with arbitrary
// bytes: it must reject garbage with an error — never panic, never
// over-allocate on a hostile length prefix — and anything it does
// accept must be a valid dataset that round-trips through the encoder.
func FuzzDecodeDataset(f *testing.F) {
	// Seed with real encodings: empty, tiny with truth, and one with
	// multiple sources/values — plus a few deliberately broken variants.
	for _, ds := range []*Dataset{
		build(func(b *Builder) {}),
		build(func(b *Builder) {
			b.Add("s0", "d0", "v0")
			b.Add("s1", "d0", "v1")
			b.SetTruth("d0", "v0")
		}),
		build(func(b *Builder) {
			for _, s := range []string{"a", "b", "c"} {
				b.Add(s, "d0", "x")
				b.Add(s, "d1", s)
			}
		}),
	} {
		var buf bytes.Buffer
		w := binio.NewWriter(&buf)
		EncodeDataset(w, ds)
		if err := w.Err(); err != nil {
			f.Fatal(err)
		}
		raw := buf.Bytes()
		f.Add(raw)
		f.Add(raw[:len(raw)/2])                      // truncated
		f.Add(append([]byte("CDS\x02"), raw[4:]...)) // wrong version byte
	}
	f.Add([]byte{})
	f.Add([]byte("CDS\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := DecodeDataset(binio.NewReader(bytes.NewReader(data)))
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("decoder accepted an invalid dataset: %v", err)
		}
		var buf bytes.Buffer
		w := binio.NewWriter(&buf)
		EncodeDataset(w, ds)
		if err := w.Err(); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		back, err := DecodeDataset(binio.NewReader(bytes.NewReader(buf.Bytes())))
		if err != nil {
			t.Fatalf("re-decode of accepted dataset failed: %v", err)
		}
		if back.NumSources() != ds.NumSources() || back.NumItems() != ds.NumItems() ||
			back.NumObservations() != ds.NumObservations() {
			t.Fatalf("round trip changed shape: %d/%d/%d -> %d/%d/%d",
				ds.NumSources(), ds.NumItems(), ds.NumObservations(),
				back.NumSources(), back.NumItems(), back.NumObservations())
		}
	})
}

func build(fill func(*Builder)) *Dataset {
	b := NewBuilder()
	fill(b)
	return b.Build()
}
