package core

import (
	"math"
	"math/rand"
	"testing"

	"copydetect/internal/bayes"
)

// TestExtremeStatesNoNaN injects degenerate statistical states — value
// probabilities pinned to 0 or 1, accuracies at their clamps — and checks
// that no detector emits NaN scores or probabilities.
func TestExtremeStatesNoNaN(t *testing.T) {
	p := bayes.DefaultParams()
	rng := rand.New(rand.NewSource(17))
	ds, st := randomInstance(rng, 6, 30)

	states := map[string]func(){
		"all-true": func() {
			for d := range st.P {
				for v := range st.P[d] {
					st.P[d][v] = 1
				}
			}
		},
		"all-false": func() {
			for d := range st.P {
				for v := range st.P[d] {
					st.P[d][v] = 0
				}
			}
		},
		"clamped-accuracies": func() {
			for s := range st.A {
				if s%2 == 0 {
					st.A[s] = 0.01
				} else {
					st.A[s] = 0.99
				}
			}
		},
	}
	for name, mutate := range states {
		mutate()
		for _, det := range []Detector{
			&Pairwise{Params: p},
			&Index{Params: p},
			&Bound{Params: p},
			&BoundPlus{Params: p},
			&Hybrid{Params: p},
		} {
			res := det.DetectRound(ds, st, 1)
			for _, pr := range res.Pairs {
				if math.IsNaN(pr.PrIndep) || math.IsNaN(pr.PrTo) || math.IsNaN(pr.PrFrom) {
					t.Errorf("%s/%s: NaN posterior for (S%d,S%d)", name, det.Name(), pr.S1, pr.S2)
				}
				if math.IsNaN(pr.CTo) || math.IsNaN(pr.CFrom) {
					t.Errorf("%s/%s: NaN score for (S%d,S%d)", name, det.Name(), pr.S1, pr.S2)
				}
			}
		}
	}
}

// TestIncrementalSurvivesExtremeDrift: feeding the incremental detector a
// sequence of pathological states must not panic or emit NaNs.
func TestIncrementalSurvivesExtremeDrift(t *testing.T) {
	p := bayes.DefaultParams()
	rng := rand.New(rand.NewSource(23))
	ds, st := randomInstance(rng, 8, 60)
	inc := &Incremental{Params: p}
	for round := 1; round <= 8; round++ {
		res := inc.DetectRound(ds, st, round)
		for _, pr := range res.Pairs {
			if math.IsNaN(pr.CTo) || math.IsNaN(pr.PrIndep) {
				t.Fatalf("round %d: NaN in incremental result", round)
			}
		}
		// Alternate between extremes.
		for d := range st.P {
			for v := range st.P[d] {
				if round%2 == 0 {
					st.P[d][v] = 0.001
				} else {
					st.P[d][v] = 0.999
				}
			}
		}
	}
}

// TestSingleSourceDataset: one source, nothing to detect, nothing breaks.
func TestSingleSourceDataset(t *testing.T) {
	p := bayes.DefaultParams()
	rng := rand.New(rand.NewSource(31))
	ds, st := randomInstance(rng, 2, 5) // smallest legal instance
	for _, det := range []Detector{
		&Pairwise{Params: p}, &Index{Params: p}, &Hybrid{Params: p}, &Incremental{Params: p},
	} {
		res := det.DetectRound(ds, st, 1)
		if res == nil {
			t.Fatalf("%s returned nil", det.Name())
		}
	}
}

// TestStructCacheInvalidatesOnNewDataset: reusing one detector across
// different datasets must not leak the structural cache.
func TestStructCacheInvalidatesOnNewDataset(t *testing.T) {
	p := bayes.DefaultParams()
	det := &Index{Params: p}
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 5+int(seed), 20)
		res := det.DetectRound(ds, st, 1)
		fresh := (&Index{Params: p}).DetectRound(ds, st, 1)
		if len(res.Pairs) != len(fresh.Pairs) {
			t.Fatalf("seed %d: cached detector diverged (%d vs %d pairs)", seed, len(res.Pairs), len(fresh.Pairs))
		}
		fset, rset := fresh.CopyingSet(), res.CopyingSet()
		for k := range fset {
			if !rset[k] {
				t.Fatalf("seed %d: cached detector decisions diverged", seed)
			}
		}
	}
}
