package depgraph

import (
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
)

// motivatingGraph runs the iterative process on the paper's motivating
// example and analyzes the final copying result.
func motivatingGraph(t *testing.T) *Graph {
	t.Helper()
	ds, _ := dataset.Motivating()
	p := bayes.Params{Alpha: 0.1, S: 0.8, N: 50}
	out := (&fusion.TruthFinder{Params: p}).Run(ds, &core.Pairwise{Params: p})
	return Analyze(out.Copy)
}

// TestCliquesMotivating: the two copier communities of Table I must be
// recovered exactly: {S2,S3,S4} and {S6,S7,S8}.
func TestCliquesMotivating(t *testing.T) {
	g := motivatingGraph(t)
	cliques := g.Cliques()
	if len(cliques) != 2 {
		t.Fatalf("got %d cliques, want 2: %v", len(cliques), cliques)
	}
	want := [][]dataset.SourceID{{2, 3, 4}, {6, 7, 8}}
	for i, c := range cliques {
		if len(c) != len(want[i]) {
			t.Fatalf("clique %d = %v, want %v", i, c, want[i])
		}
		for j := range c {
			if c[j] != want[i][j] {
				t.Fatalf("clique %d = %v, want %v", i, c, want[i])
			}
		}
	}
}

// TestTransitiveReduction: a community of k sources keeps exactly k-1
// direct edges; the rest are explained as co-/transitive copying.
func TestTransitiveReduction(t *testing.T) {
	g := motivatingGraph(t)
	direct, trans := g.DirectEdges(), g.TransitiveEdges()
	if len(direct) != 4 { // two communities of 3 sources => 2+2 tree edges
		t.Errorf("direct edges = %d, want 4", len(direct))
	}
	if len(trans) != len(g.Edges)-len(direct) {
		t.Errorf("edge partition inconsistent: %d + %d != %d", len(direct), len(trans), len(g.Edges))
	}
	if len(g.Edges) != 6 {
		t.Errorf("total copying edges = %d, want 6", len(g.Edges))
	}
	// Direct edges are at least as strong as the transitive ones within
	// the same component (greedy acceptance order).
	for _, te := range trans {
		stronger := 0
		for _, de := range direct {
			if de.PrIndep <= te.PrIndep {
				stronger++
			}
		}
		if stronger == 0 {
			t.Errorf("transitive edge (%d,%d) stronger than every direct edge", te.S1, te.S2)
		}
	}
}

// TestAnalyzeEmptyAndSingle: degenerate inputs.
func TestAnalyzeEmptyAndSingle(t *testing.T) {
	g := Analyze(&core.Result{NumSources: 5})
	if len(g.Edges) != 0 || len(g.Cliques()) != 0 {
		t.Error("empty result should give empty graph")
	}
	res := &core.Result{NumSources: 5, Pairs: []core.PairResult{
		{S1: 1, S2: 3, Copying: true, PrIndep: 0.1, PrTo: 0.8, PrFrom: 0.1},
		{S1: 0, S2: 4, Copying: false, PrIndep: 0.9},
	}}
	g = Analyze(res)
	if len(g.Edges) != 1 || !g.Edges[0].Direct {
		t.Fatalf("single copying edge must be direct: %+v", g.Edges)
	}
	cl := g.Cliques()
	if len(cl) != 1 || len(cl[0]) != 2 {
		t.Fatalf("cliques = %v", cl)
	}
}

func TestEdgeDirection(t *testing.T) {
	cases := []struct {
		to, from float64
		want     int
	}{
		{0.9, 0.05, +1},
		{0.05, 0.9, -1},
		{0.4, 0.3, 0},
	}
	for _, c := range cases {
		e := Edge{PrTo: c.to, PrFrom: c.from}
		if got := e.Direction(); got != c.want {
			t.Errorf("Direction(%v, %v) = %d, want %d", c.to, c.from, got, c.want)
		}
	}
}

// TestDeterministicUnderTies: identical PrIndep values must yield a
// deterministic direct/transitive split.
func TestDeterministicUnderTies(t *testing.T) {
	mk := func() *core.Result {
		return &core.Result{NumSources: 4, Pairs: []core.PairResult{
			{S1: 0, S2: 1, Copying: true, PrIndep: 0.1},
			{S1: 1, S2: 2, Copying: true, PrIndep: 0.1},
			{S1: 0, S2: 2, Copying: true, PrIndep: 0.1},
		}}
	}
	a, b := Analyze(mk()), Analyze(mk())
	for i := range a.Edges {
		if a.Edges[i].Direct != b.Edges[i].Direct {
			t.Fatal("tie-breaking not deterministic")
		}
	}
	if len(a.DirectEdges()) != 2 {
		t.Errorf("triangle should keep 2 direct edges, got %d", len(a.DirectEdges()))
	}
}
