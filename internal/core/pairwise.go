package core

import (
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/pool"
)

// Pairwise is the exhaustive baseline of Dong et al. (VLDB 2009) as
// described in Section II-B: for every pair of sources it walks every
// shared data item, accumulates C→ and C←, and applies Eq. (2). Its time
// complexity is O(l·|D|·|S|²) over l rounds, which is exactly what the
// paper sets out to beat.
type Pairwise struct {
	Params bayes.Params
	// Workers > 1 distributes pairs over a goroutine pool, the natural
	// (but per the paper still inferior) parallelization baseline
	// mentioned in Section VIII. 0 or 1 means sequential; any value
	// produces results identical to sequential (see internal/pool).
	Workers int
}

// Name implements Detector.
func (pw *Pairwise) Name() string { return "PAIRWISE" }

// DetectRound implements Detector.
func (pw *Pairwise) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	start := time.Now()
	ns := ds.NumSources()
	res := &Result{NumSources: ns}
	res.Stats.Rounds = 1

	workers := pool.Clamp(pw.Workers)
	if workers == 1 {
		for s1 := dataset.SourceID(0); int(s1) < ns; s1++ {
			for s2 := s1 + 1; int(s2) < ns; s2++ {
				pw.detectPair(ds, st, s1, s2, res)
			}
		}
	} else {
		// Workers own strided rows of the pair triangle (all pairs with a
		// given smaller source id). Each row's results are kept separate
		// and concatenated in row order afterwards, so Result.Pairs is
		// ordered exactly as the sequential double loop produces it.
		rows := make([][]PairResult, ns)
		for _, stats := range pool.Shards(workers, func(w int) Stats {
			var stats Stats
			for s1 := dataset.SourceID(w); int(s1) < ns; s1 += dataset.SourceID(workers) {
				row := &Result{NumSources: ns}
				for s2 := s1 + 1; int(s2) < ns; s2++ {
					pw.detectPair(ds, st, s1, s2, row)
				}
				rows[s1] = row.Pairs
				stats.Add(row.Stats)
			}
			return stats
		}) {
			res.Stats.Add(stats)
		}
		for _, row := range rows {
			res.Pairs = append(res.Pairs, row...)
		}
	}
	res.Stats.Detect = time.Since(start)
	return res
}

// detectPair accumulates the evidence for one pair and appends the result.
func (pw *Pairwise) detectPair(ds *dataset.Dataset, st *bayes.State, s1, s2 dataset.SourceID, res *Result) {
	p := pw.Params
	lnDiff := p.LnDiff()
	a, b := ds.BySource[s1], ds.BySource[s2]
	cTo, cFrom := 0.0, 0.0
	nShared := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Item < b[j].Item:
			i++
		case a[i].Item > b[j].Item:
			j++
		default:
			nShared++
			if a[i].Value == b[j].Value {
				pv := st.P[a[i].Item][a[i].Value]
				pop := st.PopOf(int32(a[i].Item), int32(a[i].Value))
				cTo += p.ContribSameDist(pv, pop, st.A[s1], st.A[s2])
				cFrom += p.ContribSameDist(pv, pop, st.A[s2], st.A[s1])
				res.Stats.ValuesExamined++
			} else {
				cTo += lnDiff
				cFrom += lnDiff
			}
			res.Stats.Computations += 2
			i++
			j++
		}
	}
	res.Stats.PairsConsidered++
	if p.CoverageWeight > 0 && nShared > 0 {
		cov := p.CoverageWeight * p.CoverageLLR(nShared, len(a), len(b), ds.NumItems(), p.CoverageCap)
		cTo += cov
		cFrom += cov
	}
	if nShared == 0 {
		// No shared item at all: both products in Eq. (2) are empty, the
		// posterior equals β/(β+2α) > 0.5, hence no copying. PAIRWISE
		// still "considered" the pair but records no result entry, which
		// keeps Result sizes comparable across algorithms.
		return
	}
	copying, prIndep, prTo, prFrom := decide(p, cTo, cFrom)
	res.Pairs = append(res.Pairs, PairResult{
		S1: s1, S2: s2,
		CTo: cTo, CFrom: cFrom,
		PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
		Copying: copying,
	})
}
