package index

import "copydetect/internal/dataset"

// PairKey packs an unordered source pair (a < b) into one comparable key.
type PairKey int64

// MakePairKey builds the key for the unordered pair {a, b}.
func MakePairKey(a, b dataset.SourceID) PairKey {
	if a > b {
		a, b = b, a
	}
	return PairKey(int64(a)<<32 | int64(uint32(b)))
}

// Sources unpacks the pair (a < b).
func (k PairKey) Sources() (a, b dataset.SourceID) {
	return dataset.SourceID(k >> 32), dataset.SourceID(uint32(k))
}

// PairMap maps unordered source pairs to dense int32 slots. For small
// source counts it uses a dense triangular array; beyond that it falls
// back to a hash map. The zero slot value -1 means "absent".
type PairMap struct {
	n      int32
	dense  []int32 // len n*n when dense mode; -1 = absent
	sparse map[PairKey]int32
	keys   []PairKey // insertion order, slot -> key
}

// denseLimit bounds the dense representation to n^2 int32s ≈ 64 MB.
const denseLimit = 4096

// NewPairMap creates a PairMap for numSources sources.
func NewPairMap(numSources int) *PairMap {
	pm := &PairMap{n: int32(numSources)}
	if numSources <= denseLimit {
		pm.dense = make([]int32, numSources*numSources)
		for i := range pm.dense {
			pm.dense[i] = -1
		}
	} else {
		pm.sparse = make(map[PairKey]int32)
	}
	return pm
}

// Len returns the number of pairs inserted.
func (pm *PairMap) Len() int { return len(pm.keys) }

// Get returns the slot of pair {a, b}, or -1 if absent.
func (pm *PairMap) Get(a, b dataset.SourceID) int32 {
	if a > b {
		a, b = b, a
	}
	if pm.dense != nil {
		return pm.dense[int32(a)*pm.n+int32(b)]
	}
	if slot, ok := pm.sparse[MakePairKey(a, b)]; ok {
		return slot
	}
	return -1
}

// GetOrAdd returns the slot of pair {a, b}, creating a fresh slot if the
// pair is new; added reports whether the pair was inserted.
func (pm *PairMap) GetOrAdd(a, b dataset.SourceID) (slot int32, added bool) {
	if a > b {
		a, b = b, a
	}
	if pm.dense != nil {
		i := int32(a)*pm.n + int32(b)
		if s := pm.dense[i]; s >= 0 {
			return s, false
		}
		s := int32(len(pm.keys))
		pm.dense[i] = s
		pm.keys = append(pm.keys, MakePairKey(a, b))
		return s, true
	}
	k := MakePairKey(a, b)
	if s, ok := pm.sparse[k]; ok {
		return s, false
	}
	s := int32(len(pm.keys))
	pm.sparse[k] = s
	pm.keys = append(pm.keys, k)
	return s, true
}

// Reset empties the map while keeping its allocations, so a per-round
// pair map can be refilled without re-clearing the dense n² array: only
// the slots of previously inserted keys are touched.
func (pm *PairMap) Reset() {
	if pm.dense != nil {
		for _, k := range pm.keys {
			a, b := k.Sources()
			pm.dense[int32(a)*pm.n+int32(b)] = -1
		}
	} else {
		clear(pm.sparse)
	}
	pm.keys = pm.keys[:0]
}

// Key returns the pair key stored in a slot.
func (pm *PairMap) Key(slot int32) PairKey { return pm.keys[slot] }

// Keys returns all pair keys in slot order. The caller must not mutate it.
func (pm *PairMap) Keys() []PairKey { return pm.keys }
