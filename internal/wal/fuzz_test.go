package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// frame encodes one record in the wire framing (length, CRC-32C,
// payload) for seeding the fuzzer with well-formed segments.
func frame(payload []byte) []byte {
	var hdr [frameSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	return append(hdr[:], payload...)
}

// FuzzWALReplay treats the fuzz input as the on-disk bytes of the first
// WAL segment and opens the log over it. Open must never panic and
// never over-allocate on a hostile length prefix; when it does accept
// the segment (possibly truncating a torn tail), the recovered state
// must be stable: a second Open of the same directory must succeed and
// replay exactly the same records.
func FuzzWALReplay(f *testing.F) {
	header := []byte(magic + string(rune(formatVersion)))
	intact := append(append(append([]byte{}, header...), frame([]byte("alpha"))...), frame([]byte("beta"))...)
	f.Add(intact)
	f.Add(header)                           // empty segment
	f.Add(intact[:len(intact)-3])           // torn tail: partial frame
	f.Add(append([]byte{}, intact[:12]...)) // torn tail: partial header of first frame
	corrupt := append([]byte{}, intact...)
	corrupt[len(header)+frameSize] ^= 0xff // flip a payload byte -> CRC mismatch
	f.Add(corrupt)
	f.Add([]byte("not a wal segment at all"))
	f.Add([]byte{})
	huge := append(append([]byte{}, header...), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0) // 2GiB length prefix
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		var first [][]byte
		log, err := Open(dir, Options{}, func(lsn uint64, payload []byte) error {
			first = append(first, append([]byte{}, payload...))
			return nil
		})
		if err != nil {
			return // rejected; that's a fine answer to garbage
		}
		if err := log.Close(); err != nil {
			t.Fatalf("close after successful open: %v", err)
		}
		// Recovery must be idempotent: whatever Open salvaged (and
		// truncated) is now a clean log that opens again identically.
		var second [][]byte
		log, err = Open(dir, Options{}, func(lsn uint64, payload []byte) error {
			second = append(second, append([]byte{}, payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("second open of a recovered log failed: %v", err)
		}
		defer log.Close()
		if len(first) != len(second) {
			t.Fatalf("replay changed between opens: %d then %d records", len(first), len(second))
		}
		for i := range first {
			if !bytes.Equal(first[i], second[i]) {
				t.Fatalf("record %d changed between opens", i)
			}
		}
	})
}
