// Command copyload is the workload generator for copydetectd and
// copygate: it streams synthetic datasets (internal/gen, the same
// presets as datagen) into a daemon or a cluster gateway at a target
// append rate across many concurrent clients, then reports throughput
// and latency percentiles. It is both the scale demo for cluster mode
// and the data source for benchmark trajectory files: with -json the
// summary is machine-readable.
//
// Usage:
//
//	copyload -target http://localhost:8378
//	         [-datasets 4] [-clients 4] [-dataset book-cs] [-scale 0.05]
//	         [-seed 1] [-batch 500] [-rate 0] [-quiesce] [-json]
//
// Each synthetic dataset is split into batches of -batch observations
// and owned by exactly one client (append order within a dataset must
// stay sequential); clients interleave their datasets round-robin, so
// the server sees the mixed stream a real deployment would. -rate caps
// the global append rate in batches per second (0 = as fast as the
// target absorbs). With -quiesce (the default) the run ends by driving
// every dataset to convergence and timing it.
//
// A 429 from the target is backpressure, not failure: the batch is
// retried after the advertised Retry-After and tallied separately as
// "throttled" in the summary, so a run against an admission-controlled
// daemon or gateway reports the pace the service chose rather than a
// wall of errors.
//
// With -scenario file.json the flat loop is replaced by the declarative
// scenario engine (internal/scenario): named phases with their own
// rates, client mixes and bursts, zipfian dataset popularity, source
// churn, failure injection against the -pids backends, phase-boundary
// /metrics scrapes of the -scrape targets, and an SLO verdict — p99
// append latency, zero 5xx during kill phases, convergence lag, and
// detection precision/recall against the planted copier cliques —
// emitted as machine-readable JSON (stdout, or the -verdict file).
// Exit status 1 means the verdict failed; see examples/scenarios/.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"copydetect/internal/dataset"
	"copydetect/internal/gen"
)

// options carries the parsed command line; split out for testability.
type options struct {
	target   string
	datasets int
	clients  int
	preset   string
	scale    float64
	seed     int64
	batch    int
	rate     float64 // appends/second across all clients; 0 = unlimited
	quiesce  bool
	jsonOut  bool
	prefix   string

	// Scenario mode (-scenario replaces the flat loop entirely).
	scenario string
	slo      string
	verdict  string
	scrape   string
	pids     string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("copyload", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a copydetectd or copygate instance (required)")
	datasets := fs.Int("datasets", 4, "number of synthetic datasets to stream")
	clients := fs.Int("clients", 4, "concurrent client connections (each dataset belongs to one client)")
	preset := fs.String("dataset", "book-cs", "workload preset: book-cs, book-full, stock-1day or stock-2wk")
	scale := fs.Float64("scale", 0.05, "preset scale factor (1 = paper sizes)")
	seed := fs.Int64("seed", 1, "base RNG seed (dataset i uses seed+i)")
	batch := fs.Int("batch", 500, "observations per append batch")
	rate := fs.Float64("rate", 0, "target append batches/second across all clients (0 = unlimited)")
	quiesce := fs.Bool("quiesce", true, "drive every dataset to convergence at the end and time it")
	jsonOut := fs.Bool("json", false, "print the summary as JSON instead of text")
	prefix := fs.String("prefix", "load", "dataset name prefix (dataset i is named <prefix>-<i>)")
	scenarioPath := fs.String("scenario", "", "declarative scenario file (JSON); replaces the flat-rate loop")
	sloPath := fs.String("slo", "", "SLO file (JSON) overriding the scenario's embedded slo block")
	verdict := fs.String("verdict", "", "write the scenario verdict JSON to this file instead of stdout")
	scrapeTargets := fs.String("scrape", "", "comma-separated /metrics base URLs scraped at phase boundaries (default: the target)")
	pids := fs.String("pids", "", "comma-separated backend PIDs addressed by inject steps (backend 0 = first)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	opt := options{
		target: *target, datasets: *datasets, clients: *clients,
		preset: *preset, scale: *scale, seed: *seed, batch: *batch,
		rate: *rate, quiesce: *quiesce, jsonOut: *jsonOut, prefix: *prefix,
		scenario: *scenarioPath, slo: *sloPath, verdict: *verdict,
		scrape: *scrapeTargets, pids: *pids,
	}
	if opt.target == "" {
		return options{}, fmt.Errorf("copyload: -target is required")
	}
	if opt.scenario != "" {
		// Scenario mode: the file describes the workload; the flat-loop
		// flags below don't apply and aren't validated.
		return opt, nil
	}
	if opt.datasets < 1 || opt.clients < 1 || opt.batch < 1 {
		return options{}, fmt.Errorf("copyload: -datasets, -clients and -batch must be at least 1")
	}
	if opt.rate < 0 || opt.rate > 1e6 {
		// The upper bound keeps the ticker interval positive (1e9 would
		// truncate it to 0 and panic) and is far past any real target.
		return options{}, fmt.Errorf("copyload: -rate must be between 0 and 1e6")
	}
	if opt.prefix == "" {
		return options{}, fmt.Errorf("copyload: -prefix must be non-empty")
	}
	switch opt.preset {
	case "book-cs", "book-full", "stock-1day", "stock-2wk":
	default:
		return options{}, fmt.Errorf("copyload: unknown -dataset %q", opt.preset)
	}
	return opt, nil
}

func presetConfig(name string, seed int64) gen.Config {
	switch name {
	case "book-full":
		return gen.BookFull(seed)
	case "stock-1day":
		return gen.Stock1Day(seed)
	case "stock-2wk":
		return gen.Stock2Wk(seed)
	default:
		return gen.BookCS(seed)
	}
}

// splitBatches cuts recs into consecutive batches of at most size
// records each.
func splitBatches(recs []dataset.Record, size int) [][]dataset.Record {
	var out [][]dataset.Record
	for start := 0; start < len(recs); start += size {
		end := start + size
		if end > len(recs) {
			end = len(recs)
		}
		out = append(out, recs[start:end])
	}
	return out
}

// percentile returns the q-quantile (0 < q <= 1) of sorted by the
// nearest-rank method; zero for an empty slice. The rank is clamped
// into the sample: floating-point rounding can push ceil(q*n) a hair
// past n (and a tiny q below 1), and a p99 over a small sample must
// select the largest value, never index out of range.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// latencyStats summarizes a latency sample in milliseconds.
type latencyStats struct {
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`
	MaxMillis  float64 `json:"maxMillis"`
	MeanMillis float64 `json:"meanMillis"`
}

// summarize reduces a latency sample to percentiles, or nil for an
// empty sample: a run with zero successful appends has no latency
// distribution, and reporting one (zeros, or worse, NaN from a 0/0)
// would poison the machine-readable trajectory records.
func summarize(samples []time.Duration) *latencyStats {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
	return &latencyStats{
		P50Millis:  ms(percentile(sorted, 0.50)),
		P90Millis:  ms(percentile(sorted, 0.90)),
		P99Millis:  ms(percentile(sorted, 0.99)),
		MaxMillis:  ms(sorted[len(sorted)-1]),
		MeanMillis: ms(sum / time.Duration(len(sorted))),
	}
}

// report is the machine-readable run summary (-json).
type report struct {
	Target       string  `json:"target"`
	Preset       string  `json:"preset"`
	Scale        float64 `json:"scale"`
	Datasets     int     `json:"datasets"`
	Clients      int     `json:"clients"`
	TargetRate   float64 `json:"targetRate,omitempty"`
	Appends      int     `json:"appends"`
	Observations int     `json:"observations"`
	Errors       int     `json:"errors"`
	// Throttled counts appends the target refused with 429 before
	// eventually accepting them on retry: server-paced backpressure, a
	// different signal from Errors (each throttled batch still landed
	// exactly once, in order).
	Throttled     int     `json:"throttled"`
	WallSeconds   float64 `json:"wallSeconds"`
	AppendsPerSec float64 `json:"appendsPerSec"`
	ObsPerSec     float64 `json:"obsPerSec"`
	// AppendLatency summarizes the latencies of *successful* appends
	// only; it is omitted entirely when the run had none, so consumers
	// never see fabricated percentiles (and the output stays valid
	// JSON — NaN is not).
	AppendLatency  *latencyStats `json:"appendLatency,omitempty"`
	QuiesceSeconds float64       `json:"quiesceSeconds,omitempty"`
}

// streamTask is one dataset's pending work, owned by one client.
type streamTask struct {
	name    string
	batches [][]dataset.Record
	obs     int
}

type appendRequest struct {
	Observations []dataset.Record `json:"observations"`
}

// clientResult is one client's measurements.
type clientResult struct {
	appends   int
	obs       int
	errors    int
	throttled int
	latencies []time.Duration
}

// maxConsecutiveThrottles bounds how long one stream keeps retrying a
// batch the target refuses with 429: past this many refusals in a row
// (minutes of waiting at the usual Retry-After) the target is wedged,
// not busy, and the stream is abandoned as failed.
const maxConsecutiveThrottles = 120

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	opt, err := parseFlags(args)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if opt.scenario != "" {
		return runScenario(opt, stdout, stderr)
	}

	// Generate the workloads up front so generation cost never pollutes
	// the measured window.
	tasks := make([]streamTask, opt.datasets)
	for i := range tasks {
		cfg := gen.Scale(presetConfig(opt.preset, opt.seed+int64(i)), opt.scale)
		ds, _, err := gen.Generate(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "copyload: generate dataset %d: %v\n", i, err)
			return 1
		}
		recs := dataset.Records(ds)
		tasks[i] = streamTask{
			name:    fmt.Sprintf("%s-%d", opt.prefix, i),
			batches: splitBatches(recs, opt.batch),
			obs:     len(recs),
		}
	}

	httpClient := &http.Client{}
	base := opt.target + "/v1/datasets/"
	for _, task := range tasks {
		status, _, body, err := doJSON(httpClient, http.MethodPut, base+task.name, nil)
		if err != nil || status != http.StatusCreated {
			fmt.Fprintf(stderr, "copyload: create %s: status=%d err=%v body=%s\n", task.name, status, err, body)
			return 1
		}
	}

	// Global rate limiting: one ticker shared by every client. Ticks
	// are not buffered beyond one, so a slow target cannot bank tokens
	// and burst past the cap later.
	var tokens <-chan time.Time
	if opt.rate > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / opt.rate))
		defer ticker.Stop()
		tokens = ticker.C
	}

	// Each dataset belongs to exactly one client (append order within a
	// dataset must stay sequential); each client interleaves its
	// datasets round-robin.
	perClient := make([][]streamTask, opt.clients)
	for i, task := range tasks {
		c := i % opt.clients
		perClient[c] = append(perClient[c], task)
	}
	results := make([]clientResult, opt.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opt.clients; c++ {
		if len(perClient[c]) == 0 {
			continue
		}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			next := make([]int, len(perClient[c]))   // next batch index per stream
			stalls := make([]int, len(perClient[c])) // consecutive 429s per stream
			for remaining := true; remaining; {
				remaining = false
				for s, task := range perClient[c] {
					if next[s] >= len(task.batches) {
						continue
					}
					remaining = true
					if tokens != nil {
						<-tokens
					}
					batch := task.batches[next[s]]
					next[s]++
					t0 := time.Now()
					status, hdr, _, err := doJSON(httpClient, http.MethodPost,
						base+task.name+"/observations", appendRequest{Observations: batch})
					if err == nil && status == http.StatusTooManyRequests &&
						stalls[s] < maxConsecutiveThrottles {
						// Backpressure, not failure: the target refused the
						// batch to bound its queues and said when to come
						// back. Honor the hint and retry the same batch —
						// nothing was applied, so the stream has no hole.
						res.throttled++
						stalls[s]++
						next[s]--
						time.Sleep(retryAfter(hdr))
						continue
					}
					if err != nil || status != http.StatusAccepted {
						// A failed append breaks the dataset's sequential
						// stream; abandon its remaining batches rather than
						// appending around a hole. The run exits nonzero.
						// Its duration is not a latency sample — a refusal
						// or timeout measures the failure, not the service.
						res.errors++
						next[s] = len(task.batches)
						continue
					}
					stalls[s] = 0
					res.latencies = append(res.latencies, time.Since(t0))
					res.appends++
					res.obs += len(batch)
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	rep := report{
		Target:     opt.target,
		Preset:     opt.preset,
		Scale:      opt.scale,
		Datasets:   opt.datasets,
		Clients:    opt.clients,
		TargetRate: opt.rate,
	}
	var latencies []time.Duration
	for _, res := range results {
		rep.Appends += res.appends
		rep.Observations += res.obs
		rep.Errors += res.errors
		rep.Throttled += res.throttled
		latencies = append(latencies, res.latencies...)
	}
	rep.WallSeconds = wall.Seconds()
	if wall > 0 {
		rep.AppendsPerSec = float64(rep.Appends) / wall.Seconds()
		rep.ObsPerSec = float64(rep.Observations) / wall.Seconds()
	}
	rep.AppendLatency = summarize(latencies)

	if opt.quiesce {
		// A failed quiesce (e.g. a backend died mid-run) is an error,
		// not a reason to discard the measured run: the report below is
		// most valuable for exactly the runs that went wrong.
		q0 := time.Now()
		for _, task := range tasks {
			status, _, body, err := doJSON(httpClient, http.MethodPost, base+task.name+"/quiesce", nil)
			if err != nil || status != http.StatusOK {
				fmt.Fprintf(stderr, "copyload: quiesce %s: status=%d err=%v body=%s\n", task.name, status, err, body)
				rep.Errors++
			}
		}
		rep.QuiesceSeconds = time.Since(q0).Seconds()
	}

	if opt.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "copyload: %v\n", err)
			return 1
		}
	} else {
		printReport(stdout, rep)
	}
	if rep.Errors > 0 {
		return 1
	}
	return 0
}

func printReport(w io.Writer, rep report) {
	fmt.Fprintf(w, "copyload: %s ×%g → %s\n", rep.Preset, rep.Scale, rep.Target)
	fmt.Fprintf(w, "  datasets %d, clients %d", rep.Datasets, rep.Clients)
	if rep.TargetRate > 0 {
		fmt.Fprintf(w, ", target rate %.1f appends/s", rep.TargetRate)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  %d appends (%d observations) in %.2fs — %.1f appends/s, %.0f obs/s, %d errors, %d throttled\n",
		rep.Appends, rep.Observations, rep.WallSeconds, rep.AppendsPerSec, rep.ObsPerSec, rep.Errors, rep.Throttled)
	if l := rep.AppendLatency; l != nil {
		fmt.Fprintf(w, "  append latency ms: p50 %.2f  p90 %.2f  p99 %.2f  max %.2f  mean %.2f\n",
			l.P50Millis, l.P90Millis, l.P99Millis, l.MaxMillis, l.MeanMillis)
	} else {
		fmt.Fprintln(w, "  append latency: no successful appends")
	}
	if rep.QuiesceSeconds > 0 {
		fmt.Fprintf(w, "  quiesce to convergence: %.2fs\n", rep.QuiesceSeconds)
	}
}

// doJSON runs one JSON request and returns the status, response
// headers and raw body.
func doJSON(client *http.Client, method, url string, body any) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, raw, nil
}

// retryAfter converts a 429's Retry-After header into a wait: the
// advertised delta-seconds when present, one second otherwise, clamped
// so a misconfigured server cannot stall a load run arbitrarily long.
func retryAfter(hdr http.Header) time.Duration {
	d := time.Second
	if secs, err := strconv.Atoi(strings.TrimSpace(hdr.Get("Retry-After"))); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
	}
	if d > 10*time.Second {
		d = 10 * time.Second
	}
	return d
}
