package dataset

import (
	"fmt"

	"copydetect/internal/binio"
)

// The binary dataset codec is the snapshot format of the durable
// serving layer: a Dataset carries the complete state of the Builder
// that produced it — source, item and value names in id order, every
// observation, and the gold standard — so encoding the published
// snapshot and rebuilding a Builder from the decoded Dataset
// (NewBuilderFromDataset) restores streaming-append state exactly,
// including the id assignment that makes replayed appends reproduce
// batch results.

const (
	binaryMagic   = "CDS\x01"
	maxDimension  = 1 << 28 // sources, items, values, observations
	maxItemValues = 1 << 24
)

// EncodeDataset writes ds in the binary snapshot format.
func EncodeDataset(w *binio.Writer, ds *Dataset) {
	w.String(binaryMagic)
	w.Int(ds.NumSources())
	for _, s := range ds.SourceNames {
		w.String(s)
	}
	w.Int(ds.NumItems())
	for d, name := range ds.ItemNames {
		w.String(name)
		w.Int(len(ds.ValueNames[d]))
		for _, v := range ds.ValueNames[d] {
			w.String(v)
		}
	}
	w.Int(ds.NumObservations())
	for s, obs := range ds.BySource {
		for _, o := range obs {
			w.Uvarint(uint64(s))
			w.Uvarint(uint64(o.Item))
			w.Uvarint(uint64(o.Value))
		}
	}
	w.Bool(ds.Truth != nil)
	if ds.Truth != nil {
		for _, v := range ds.Truth {
			w.Uvarint(uint64(v + 1)) // NoValue (-1) encodes as 0
		}
	}
}

// DecodeDataset reads a dataset written by EncodeDataset and returns it
// in canonical Builder-built form.
func DecodeDataset(r *binio.Reader) (*Dataset, error) {
	if m := r.String(); r.Err() == nil && m != binaryMagic {
		return nil, fmt.Errorf("dataset: bad binary magic %q", m)
	}
	// The name tables must intern one id per declared entry: a repeated
	// name would collapse to an earlier id, leaving the declared counts
	// larger than the tables and every later index check meaningless.
	// Well-formed encodings never repeat a name, so a collision is
	// corruption, not data.
	b := NewBuilder()
	numSources := r.Int(maxDimension)
	for i := 0; i < numSources && r.Err() == nil; i++ {
		if name := r.String(); int(b.Source(name)) != i {
			return nil, fmt.Errorf("dataset: duplicate source name %q in binary header", name)
		}
	}
	numItems := r.Int(maxDimension)
	for i := 0; i < numItems && r.Err() == nil; i++ {
		name := r.String()
		d := b.Item(name)
		if int(d) != i {
			return nil, fmt.Errorf("dataset: duplicate item name %q in binary header", name)
		}
		numValues := r.Int(maxItemValues)
		for j := 0; j < numValues && r.Err() == nil; j++ {
			if label := r.String(); int(b.Value(d, label)) != j {
				return nil, fmt.Errorf("dataset: item %q repeats value %q in binary header", name, label)
			}
		}
	}
	numObs := r.Int(maxDimension)
	for i := 0; i < numObs && r.Err() == nil; i++ {
		s := SourceID(r.Uvarint())
		d := ItemID(r.Uvarint())
		v := ValueID(r.Uvarint())
		if int(s) >= numSources || int(d) >= numItems || s < 0 || d < 0 {
			return nil, fmt.Errorf("dataset: binary observation %d references source %d item %d out of range", i, s, d)
		}
		if v < 0 || int(v) >= len(b.valueNames[d]) {
			return nil, fmt.Errorf("dataset: binary observation %d references value %d of item %d out of range", i, v, d)
		}
		b.AddIDs(s, d, v)
	}
	if r.Bool() {
		for d := 0; d < numItems && r.Err() == nil; d++ {
			if v := ValueID(r.Uvarint()) - 1; v != NoValue {
				if v < 0 || int(v) >= len(b.valueNames[d]) {
					return nil, fmt.Errorf("dataset: binary truth of item %d references value %d out of range", d, v)
				}
				b.SetTruthIDs(ItemID(d), v)
			}
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dataset: decode binary: %w", err)
	}
	ds := b.Build()
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// NewBuilderFromDataset reconstructs the Builder state that produced
// ds: interning tables in the dataset's id order, all observations, and
// the gold standard. Appending further records to the returned Builder
// continues the exact id assignment of the original stream, which is
// what lets a recovered server replay its write-ahead log on top of a
// snapshot and still publish byte-identical results.
func NewBuilderFromDataset(ds *Dataset) *Builder {
	b := NewBuilder()
	for _, s := range ds.SourceNames {
		b.Source(s)
	}
	for d, name := range ds.ItemNames {
		id := b.Item(name)
		for _, v := range ds.ValueNames[d] {
			b.Value(id, v)
		}
	}
	for s, obs := range ds.BySource {
		for _, o := range obs {
			b.AddIDs(SourceID(s), o.Item, o.Value)
		}
	}
	if ds.Truth != nil {
		for d, v := range ds.Truth {
			if v != NoValue {
				b.SetTruthIDs(ItemID(d), v)
			}
		}
	}
	return b
}
