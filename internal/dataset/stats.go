package dataset

import "fmt"

// Stats summarizes a dataset the way Table V of the paper does, plus a few
// extra structural measures used when calibrating synthetic workloads.
type Stats struct {
	Sources        int
	Items          int
	Observations   int     // non-empty cells
	DistinctValues int     // distinct (item, value) pairs
	SharedValues   int     // values provided by >= 2 sources (indexable)
	AvgConflict    float64 // avg distinct values per multi-provider item
	AvgCoverage    float64 // avg fraction of items covered per source
}

// Summarize computes dataset statistics in one pass over ByItem.
func Summarize(ds *Dataset) Stats {
	st := Stats{
		Sources: ds.NumSources(),
		Items:   ds.NumItems(),
	}
	conflictSum, conflictItems := 0, 0
	for d := range ds.ByItem {
		st.Observations += len(ds.ByItem[d])
		nv := ds.NumValues(ItemID(d))
		st.DistinctValues += nv
		// Count values on this item provided by at least two sources.
		counts := make(map[ValueID]int, nv)
		for _, sv := range ds.ByItem[d] {
			counts[sv.Value]++
		}
		//copydetect:orderinvariant commutative sum over the counts; order never observed
		for _, c := range counts {
			if c >= 2 {
				st.SharedValues++
			}
		}
		if len(ds.ByItem[d]) >= 2 {
			conflictSum += nv
			conflictItems++
		}
	}
	if conflictItems > 0 {
		st.AvgConflict = float64(conflictSum) / float64(conflictItems)
	}
	if st.Sources > 0 && st.Items > 0 {
		st.AvgCoverage = float64(st.Observations) / float64(st.Sources) / float64(st.Items)
	}
	return st
}

// String formats the statistics on one line.
func (st Stats) String() string {
	return fmt.Sprintf("#Srcs=%d #Items=%d #Obs=%d #Dist-values=%d #Shared-values=%d avg-conflict=%.1f avg-coverage=%.2f",
		st.Sources, st.Items, st.Observations, st.DistinctValues, st.SharedValues, st.AvgConflict, st.AvgCoverage)
}
