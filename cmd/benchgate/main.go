// Command benchgate is the CI performance-regression gate: it compares
// two `go test -bench` outputs (the pull request's and the main
// branch's), prints a per-benchmark table, and fails when the geometric
// mean of the ns/op ratios regresses beyond a threshold.
//
// Usage:
//
//	benchgate -old main.txt -new pr.txt [-max-regression 0.15] [-max-alloc-regression 0.25] [-json FILE]
//
// Each file should come from the same benchmark set run with -count N
// (N >= 3 recommended); benchgate takes the per-benchmark median, so a
// single noisy iteration does not fail a build. When both runs carry
// -benchmem columns, allocation counts are gated too: the geometric mean
// of the per-benchmark (new+1)/(old+1) allocs/op ratios must stay within
// -max-alloc-regression. The +1 damping keeps zero-allocation steady
// states comparable while still flagging a 0 -> many regression. benchstat remains the
// human-readable report; benchgate is the machine-checkable verdict.
// With -json the verdict is additionally written as a machine-readable
// report (per-benchmark medians and ratios, the geomean, and the
// pass/fail outcome) — CI archives one per pull request, so the
// repository accumulates a performance trajectory instead of only a
// binary gate. The JSON is written even when the gate fails; only input
// errors leave it absent.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9][0-9.eE+]*) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// samples holds one benchmark's measurements across -count repetitions.
// allocs is empty when the run lacked -benchmem.
type samples struct {
	ns     []float64
	allocs []float64
}

// parseBench collects the ns/op (and, with -benchmem, allocs/op) samples
// of every benchmark in a `go test -bench` output.
func parseBench(r io.Reader) (map[string]*samples, error) {
	out := make(map[string]*samples)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		s := out[m[1]]
		if s == nil {
			s = &samples{}
			out[m[1]] = s
		}
		s.ns = append(s.ns, v)
		if m[4] != "" {
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad allocs/op in %q: %w", sc.Text(), err)
			}
			s.allocs = append(s.allocs, a)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// benchResult is one shared benchmark's comparison: median ns/op on each
// side and their ratio (new/old; above 1 is a regression). When both runs
// carry -benchmem data, the median allocs/op and their dampened ratio
// (new+1)/(old+1) — well-defined at zero allocations — ride along.
type benchResult struct {
	Name        string  `json:"name"`
	OldNsOp     float64 `json:"oldNsOp"`
	NewNsOp     float64 `json:"newNsOp"`
	Ratio       float64 `json:"ratio"`
	OldAllocsOp float64 `json:"oldAllocsOp,omitempty"`
	NewAllocsOp float64 `json:"newAllocsOp,omitempty"`
	AllocRatio  float64 `json:"allocRatio,omitempty"`
}

// report is the machine-readable verdict (-json).
type report struct {
	Benchmarks   []benchResult `json:"benchmarks"`
	GeomeanRatio float64       `json:"geomeanRatio"`
	// GeomeanAllocRatio is the geometric mean of the per-benchmark
	// (new+1)/(old+1) allocs/op ratios, over the benchmarks measured with
	// -benchmem on both sides; 0 when none were.
	GeomeanAllocRatio  float64 `json:"geomeanAllocRatio,omitempty"`
	MaxRegression      float64 `json:"maxRegression"`
	MaxAllocRegression float64 `json:"maxAllocRegression,omitempty"`
	Pass               bool    `json:"pass"`
}

// gate compares the two outputs across the benchmarks they share,
// writing the human-readable table to w and returning the per-benchmark
// results and the geometric-mean ratio.
func gate(oldR, newR io.Reader, w io.Writer) (report, error) {
	oldS, err := parseBench(oldR)
	if err != nil {
		return report{}, err
	}
	newS, err := parseBench(newR)
	if err != nil {
		return report{}, err
	}
	var names []string
	for name := range oldS {
		if _, ok := newS[name]; ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return report{}, fmt.Errorf("benchgate: the two runs share no benchmarks")
	}
	sort.Strings(names)
	rep := report{Benchmarks: make([]benchResult, 0, len(names))}
	fmt.Fprintf(w, "%-60s %14s %14s %8s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "ratio", "allocs/op", "ratio")
	logSum := 0.0
	allocLogSum, allocCount := 0.0, 0
	for _, name := range names {
		o, n := median(oldS[name].ns), median(newS[name].ns)
		if o <= 0 || n <= 0 {
			return report{}, fmt.Errorf("benchgate: non-positive median for %s", name)
		}
		ratio := n / o
		logSum += math.Log(ratio)
		row := benchResult{Name: name, OldNsOp: o, NewNsOp: n, Ratio: ratio}
		allocCol := ""
		if len(oldS[name].allocs) > 0 && len(newS[name].allocs) > 0 {
			oa, na := median(oldS[name].allocs), median(newS[name].allocs)
			// +1 damping keeps the ratio finite when the old side reached
			// zero allocations, without hiding a 0 -> k regression.
			ar := (na + 1) / (oa + 1)
			row.OldAllocsOp, row.NewAllocsOp, row.AllocRatio = oa, na, ar
			allocLogSum += math.Log(ar)
			allocCount++
			allocCol = fmt.Sprintf("%5.0f→%-5.0f %8.3f", oa, na, ar)
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
		fmt.Fprintf(w, "%-60s %14.0f %14.0f %8.3f %s\n", name, o, n, ratio, allocCol)
	}
	rep.GeomeanRatio = math.Exp(logSum / float64(len(names)))
	fmt.Fprintf(w, "\ngeomean ratio (new/old) over %d benchmarks: %.3f\n", len(names), rep.GeomeanRatio)
	if allocCount > 0 {
		rep.GeomeanAllocRatio = math.Exp(allocLogSum / float64(allocCount))
		fmt.Fprintf(w, "geomean allocs/op ratio over %d benchmarks: %.3f\n", allocCount, rep.GeomeanAllocRatio)
	}
	return rep, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole program, split from main for tests (and so every
// path closes its files before returning an exit code — no defers
// bypassed by os.Exit).
func run(args []string, stdout, stderr io.Writer) int {
	oldPath, newPath, jsonPath := "", "", ""
	maxRegression := 0.15
	maxAllocRegression := 0.25
	usage := func() int {
		fmt.Fprintf(stderr, "usage: benchgate -old FILE -new FILE [-max-regression 0.15] [-max-alloc-regression 0.25] [-json FILE]\n")
		return 2
	}
	for i := 0; i < len(args); i++ {
		if i+1 >= len(args) {
			return usage() // every flag takes a value
		}
		switch args[i] {
		case "-old":
			i++
			oldPath = args[i]
		case "-new":
			i++
			newPath = args[i]
		case "-json":
			i++
			jsonPath = args[i]
		case "-max-regression":
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fmt.Fprintf(stderr, "benchgate: bad -max-regression: %v\n", err)
				return 2
			}
			maxRegression = v
		case "-max-alloc-regression":
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil {
				fmt.Fprintf(stderr, "benchgate: bad -max-alloc-regression: %v\n", err)
				return 2
			}
			maxAllocRegression = v
		default:
			return usage()
		}
	}
	if oldPath == "" || newPath == "" {
		return usage()
	}
	oldF, err := os.Open(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	newF, err := os.Open(newPath)
	if err != nil {
		oldF.Close()
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	rep, err := gate(oldF, newF, stdout)
	oldF.Close()
	newF.Close()
	if err != nil {
		fmt.Fprintf(stderr, "benchgate: %v\n", err)
		return 2
	}
	rep.MaxRegression = maxRegression
	rep.Pass = rep.GeomeanRatio <= 1+maxRegression
	if rep.GeomeanAllocRatio > 0 {
		// Allocation counts are gated only when both runs used -benchmem.
		rep.MaxAllocRegression = maxAllocRegression
		rep.Pass = rep.Pass && rep.GeomeanAllocRatio <= 1+maxAllocRegression
	}
	if jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
		if err := os.WriteFile(jsonPath, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(stderr, "benchgate: %v\n", err)
			return 2
		}
	}
	if !rep.Pass {
		fmt.Fprintf(stderr, "benchgate: FAIL: geomean %.3f (budget %.0f%%), allocs geomean %.3f (budget %.0f%%)\n",
			rep.GeomeanRatio, maxRegression*100, rep.GeomeanAllocRatio, maxAllocRegression*100)
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: OK (budget %.0f%%)\n", maxRegression*100)
	return 0
}
