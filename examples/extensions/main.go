// Extensions: the three model extensions the paper's footnotes point to,
// on one workload —
//
//   - value-distribution relaxation (footnote 2): sharing a *popular*
//     wrong value is weak evidence, sharing an obscure one is strong;
//   - coverage evidence (footnote 1): a copier's item set overlaps the
//     copied source far beyond the independence expectation;
//   - dependency-graph analysis (footnote 3): separating direct copying
//     from correlations explained by co-/transitive copying, and
//     recovering copier communities.
//
// Run with:
//
//	go run ./examples/extensions
package main

import (
	"fmt"

	"copydetect"
)

func main() {
	cfg := copydetect.ScaleConfig(copydetect.BookCSConfig(5), 0.4)
	ds, planted, err := copydetect.Generate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s\n\n", copydetect.Summarize(ds))

	base := copydetect.DefaultParams()

	// Plain model.
	plain := copydetect.Detect(ds, copydetect.AlgorithmHybrid, base)

	// Extended model: empirical value popularities + coverage evidence.
	ext := base
	ext.CoverageWeight = 0.5
	tf := &copydetect.TruthFinder{Params: ext, UseValueDist: true}
	extended := tf.Run(ds, copydetect.NewDetector(copydetect.AlgorithmHybrid, ext, copydetect.Options{}))

	score := func(name string, out *copydetect.Outcome) {
		set := out.Copy.CopyingSet()
		tp := 0
		for k := range set {
			a, b := copydetect.SourceID(k>>32), copydetect.SourceID(uint32(k))
			if planted.PairPlanted(a, b) {
				tp++
			}
		}
		fmt.Printf("%-22s %3d copying pairs, %d directly planted\n", name, len(set), tp)
	}
	score("plain model:", plain)
	score("extended model:", extended)

	// Dependency-graph analysis on the extended result.
	g := copydetect.AnalyzeCopying(extended.Copy)
	fmt.Printf("\ndependency graph: %d edges, %d direct, %d explained as co-/transitive\n",
		len(g.Edges), len(g.DirectEdges()), len(g.TransitiveEdges()))

	cliques := g.Cliques()
	fmt.Printf("copier communities (%d):\n", len(cliques))
	for i, c := range cliques {
		if i == 10 {
			fmt.Printf("  ... and %d more\n", len(cliques)-10)
			break
		}
		fmt.Printf("  {")
		for j, s := range c {
			if j > 0 {
				fmt.Printf(", ")
			}
			fmt.Printf("%s", ds.SourceNames[s])
		}
		fmt.Printf("}\n")
	}

	// Direction guesses for the strongest direct edges.
	fmt.Println("\nstrongest direct edges with inferred direction:")
	for i, e := range g.DirectEdges() {
		if i == 5 {
			break
		}
		arrow := "<->"
		switch e.Direction() {
		case +1:
			arrow = "-->" // S1 copies from S2
		case -1:
			arrow = "<--"
		}
		fmt.Printf("  %s %s %s   Pr(indep)=%.4f\n",
			ds.SourceNames[e.S1], arrow, ds.SourceNames[e.S2], e.PrIndep)
	}
}
