package main

import (
	"strings"
	"testing"
)

func TestListNamesEveryAnalyzer(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, name := range []string{"detrange", "hotalloc", "tracehop", "metriclabel", "stickycheck"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsToolError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-run", "nope"}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown analyzer") {
		t.Fatalf("want unknown-analyzer error, got %v", err)
	}
	if _, ok := err.(errFindings); ok {
		t.Fatal("unknown analyzer misclassified as findings (exit 1); it is a tool error (exit 2)")
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	// Module-path pattern, so the test works from the package directory.
	var out strings.Builder
	if err := run([]string{"-run", "stickycheck,metriclabel", "copydetect/internal/binio"}, &out); err != nil {
		t.Fatalf("run over clean package: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "finding(s)") {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}
