// Command copygate is the cluster front end for copydetectd: a
// consistent-hash gateway that owns the dataset namespace across N
// backend daemons. Every dataset-scoped request (create, append, read,
// quiesce, delete) is routed to the dataset's replica set on the hash
// ring and proxied byte-for-byte — ETags included, so clients written
// against a single daemon work unchanged. The dataset list fans out to
// every backend and merges; /healthz reports the gateway's view of
// backend health.
//
// Usage:
//
//	copygate -backends http://h1:8377,http://h2:8377,http://h3:8377
//	         [-addr :8378] [-addr-file FILE] [-replicas 2]
//	         [-probe-every 1s] [-probe-timeout 500ms] [-retries 2]
//	         [-mirror-high-water 192]
//
// With -replicas R (default 2) every dataset lives on the first R
// distinct backends walking the ring from its name: writes are
// acknowledged by the acting primary and mirrored to the other members
// with sequence numbers (so duplicated deliveries land exactly once),
// reads fail over transparently — marked X-Copydetect-Replica — and a
// recovered backend is caught back up by anti-entropy before serving
// again. Killing any single backend therefore loses no dataset;
// -replicas 1 restores the PR 4 behavior, where a dead backend 503s
// exactly its own datasets.
//
// Backends are probed every -probe-every; a backend that fails twice in
// a row is ejected and readmitted after two consecutive successful
// probes. Idempotent GETs are retried up to -retries times on transport
// failures. The -backends list and its order are the routing table:
// every gateway over one cluster must use the same list. See
// internal/cluster for the design.
//
// The gateway serves Prometheus-format metrics on GET /metrics: request
// rate/latency/in-flight by route, per-backend health and replication
// lag, mirror-queue depth in jobs and bytes, ring ownership, and the
// retry/failover/admission counters. Every request is tagged with an
// X-Copydetect-Trace ID — generated here if the client did not send one
// — that is propagated to the backends and onto asynchronous mirror
// deliveries, so one client write can be followed through every access
// log it touches. While a dataset's mirror queue holds
// -mirror-high-water or more jobs (a replica is down or slow), appends
// to it are refused with 429 + Retry-After instead of queueing without
// bound; 0 disables the limit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"copydetect/internal/cluster"
	"copydetect/internal/telemetry"
)

// options carries the parsed command line; split out for testability.
type options struct {
	addr     string
	addrFile string
	cfg      cluster.Config
}

// parseFlags parses args (without the program name) into options.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("copygate", flag.ContinueOnError)
	addr := fs.String("addr", ":8378", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests)")
	backends := fs.String("backends", "", "comma-separated copydetectd base URLs (required; order is the routing table)")
	probeEvery := fs.Duration("probe-every", time.Second, "health-check period per backend")
	probeTimeout := fs.Duration("probe-timeout", 0, "timeout of one health probe (0 = half of -probe-every)")
	retries := fs.Int("retries", 2, "transport-failure retries for idempotent GETs (0 = none)")
	replicas := fs.Int("replicas", 2, "backends holding each dataset (1 = no replication; clamped to the backend count)")
	mirrorHW := fs.Int("mirror-high-water", cluster.DefaultMirrorHighWater, "refuse appends with 429 while a dataset's replica mirror queue holds this many jobs (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	var urls []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			urls = append(urls, b)
		}
	}
	if len(urls) == 0 {
		return options{}, fmt.Errorf("copygate: -backends is required (comma-separated base URLs)")
	}
	for _, u := range urls {
		if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
			return options{}, fmt.Errorf("copygate: backend %q must be an http(s) base URL", u)
		}
	}
	if *probeEvery <= 0 {
		return options{}, fmt.Errorf("copygate: -probe-every must be positive")
	}
	if *probeTimeout < 0 {
		return options{}, fmt.Errorf("copygate: -probe-timeout must be >= 0 (0 = half of -probe-every)")
	}
	if *replicas < 1 {
		return options{}, fmt.Errorf("copygate: -replicas must be at least 1")
	}
	if *mirrorHW < 0 {
		return options{}, fmt.Errorf("copygate: -mirror-high-water must be >= 0 (0 = unbounded)")
	}
	opt := options{addr: *addr, addrFile: *addrFile}
	opt.cfg.Backends = urls
	opt.cfg.ProbeEvery = *probeEvery
	opt.cfg.ProbeTimeout = *probeTimeout
	opt.cfg.Replication = *replicas
	// The flag means what it says: 0 retries is 0 retries. Config uses
	// its zero value for "default", so map 0 to the explicit "none".
	opt.cfg.Retries = *retries
	if *retries <= 0 {
		opt.cfg.Retries = -1
	}
	// Same convention for the mirror high-water mark: the flag's 0 means
	// "no limit", which Config spells -1 (its 0 selects the default).
	opt.cfg.MirrorHighWater = *mirrorHW
	if *mirrorHW == 0 {
		opt.cfg.MirrorHighWater = -1
	}
	return opt, nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole gateway: parse, build the ring, serve, shut down.
// It returns the process exit code (split from main so the cluster
// equivalence test can re-exec the test binary as a real gateway
// process).
func run(args []string) int {
	opt, err := parseFlags(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copygate: %v\n", err)
		return 2
	}
	gw, err := cluster.New(opt.cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copygate: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copygate: %v\n", err)
		gw.Close()
		return 1
	}
	if opt.addrFile != "" {
		if err := os.WriteFile(opt.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "copygate: %v\n", err)
			gw.Close()
			return 1
		}
	}
	treg := telemetry.New()
	gw.RegisterMetrics(treg)
	httpMetrics := telemetry.NewHTTPMetrics(treg, "copygate", log.Default())
	mux := http.NewServeMux()
	mux.Handle("/metrics", treg.Handler())
	mux.Handle("/", gw)
	srv := newHTTPServer(httpMetrics.Wrap(mux))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	retries := opt.cfg.Retries
	if retries < 0 {
		retries = 0 // the config's explicit "disabled"; log what the operator asked for
	}
	log.Printf("copygate: listening on %s, routing %d backends (replicas %d, probe every %v, retries %d)",
		ln.Addr(), len(opt.cfg.Backends), opt.cfg.Replication, opt.cfg.ProbeEvery, retries)
	for i, b := range opt.cfg.Backends {
		log.Printf("copygate: backend %d: %s", i, b)
	}

	select {
	case err := <-errc:
		log.Printf("copygate: %v", err)
		gw.Close()
		return 1
	case <-ctx.Done():
	}
	log.Printf("copygate: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("copygate: shutdown: %v", err)
	}
	gw.Close()
	return 0
}

// newHTTPServer builds the gateway's http.Server with the header and
// idle timeouts every network-facing listener needs: without them one
// client trickling a request line (or parking idle keep-alives) holds a
// connection forever.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
