// Package bitset provides the packed bit vectors behind the kernel's
// word-parallel overlap computations. A Set is a []uint64 where bit i of
// word i/64 marks membership of element i; intersections reduce to one
// AND + popcount per 64 elements (math/bits.OnesCount64), which is what
// turns the per-pair shared-item and shared-value counts from list merges
// into a handful of word operations (see PERFORMANCE.md, "SoA and
// bitsets").
//
// Sets are plain slices: zero-value usable after New, no hidden state,
// safe for concurrent readers. All operations are deterministic — the
// iteration order of ForEachAnd is ascending element order, so callers
// accumulating floating-point sums over an intersection visit elements in
// the same order a sorted-list merge would.
package bitset

import "math/bits"

// Set is a fixed-capacity bit vector over elements [0, 64*len(s)).
type Set []uint64

// New returns a Set able to hold n elements, all initially absent.
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Words returns the number of 64-bit words backing n elements.
func Words(n int) int { return (n + 63) / 64 }

// Add marks element i as present. i must be < 64*len(s).
func (s Set) Add(i int) {
	s[i>>6] |= 1 << (uint(i) & 63)
}

// Has reports whether element i is present.
func (s Set) Has(i int) bool {
	return s[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of present elements.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndCount returns |a ∩ b| without materializing the intersection: one
// AND + OnesCount64 per word. The sets must have equal length.
func AndCount(a, b Set) int {
	n := 0
	for i, w := range a {
		n += bits.OnesCount64(w & b[i])
	}
	return n
}

// ForEachAnd calls fn for every element of a ∩ b in ascending order.
// The sets must have equal length.
func ForEachAnd(a, b Set, fn func(i int)) {
	for wi, w := range a {
		w &= b[wi]
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}
