// Replication: the gateway-side machinery that keeps every dataset
// live on R backends (its replica set, a pure function of the name and
// the ring).
//
// The write path acknowledges on the acting primary — the first
// serveable member of the replica set — and mirrors the acknowledged
// write to the other members asynchronously, through a per-dataset
// worker that preserves order. Replica appends carry the append's
// sequence number (the version the primary assigned), so a re-sent or
// duplicated replica write lands exactly once; a replica that misses a
// write (down, or a sequence gap) is marked stale and healed by
// anti-entropy: the gateway exports the dataset from a serveable peer
// and imports it into the stale member, after which the ordinary
// sequenced stream resumes. Readmission of an ejected backend triggers
// the same reconciliation for every dataset it is behind on, which is
// what turns a recovered process back into a serving replica.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copydetect/internal/server"
	"copydetect/internal/telemetry"
)

const (
	// jobAttempts bounds how many times one replica write is tried
	// before the member is marked stale and left to anti-entropy.
	jobAttempts = 3
	// jobBackoff separates those attempts.
	jobBackoff = 50 * time.Millisecond
	// flushTimeout bounds waiting for a dataset's replica queue to
	// drain before a failover write or a quiesce proceeds.
	flushTimeout = 60 * time.Second
	// writeTimeout is the gateway-side ceiling on one replicated write
	// attempt: ds.mu serializes a dataset's writes, so a backend that
	// accepts connections but never answers must not wedge the dataset.
	writeTimeout = 60 * time.Second
	// maxWriteBody bounds a buffered write body (it must be re-sendable
	// to every member of the replica set); matches the daemon's own
	// import ceiling.
	maxWriteBody = 1 << 28
	// maxQueuedBytes bounds the write bodies parked in one dataset's
	// mirror queue. A member that is slow enough to pile up this much
	// falls back to anti-entropy — one export blob moves less data than
	// a backlog of buffered bodies, and the gateway must not hold
	// unbounded memory for a struggling replica.
	maxQueuedBytes = 64 << 20
)

// jobTimeout bounds one replica-side request (append, export, import):
// replica work must never wedge the per-dataset queue the way a
// stalled backend otherwise could. Variable for tests.
var jobTimeout = 30 * time.Second

// dsIdleRetire is how long a dataset's replication worker sits idle —
// no jobs, no stale members — before it retires: the state is removed
// from the gateway's map and the goroutine exits, so churned dataset
// names (deleted, mistyped, one-off load runs) do not accumulate
// workers for the life of the process. A later write simply recreates
// the state. Variable for tests.
var dsIdleRetire = 5 * time.Minute

// job kinds processed by a dataset's replication worker.
const (
	jobVerbatim  = iota // mirror a write (create/delete/import) to one member
	jobAppend           // mirror an acknowledged append, sequenced
	jobReconcile        // anti-entropy: sync one member from a peer
	jobFlush            // barrier: close done once everything before it ran
)

// repJob is one unit of ordered per-dataset replication work.
type repJob struct {
	kind   int
	pos    int    // index into dsState.members
	method string // jobVerbatim only
	path   string // request-URI on the target backend
	seq    uint64 // jobAppend only
	body   []byte
	ctype  string
	trace  string        // trace ID of the client write that spawned the job
	done   chan struct{} // jobFlush only
}

// dsState is the gateway's per-dataset replication state. mu serializes
// the synchronous write path (so replica jobs enqueue in ack order);
// stMu guards the staleness bookkeeping, which the worker and the
// health prober touch without mu.
type dsState struct {
	name    string
	members []int // ring replica set, fixed for the gateway's lifetime

	mu      sync.Mutex
	jobs    chan repJob
	retired bool // worker gone, state removed from the map; re-fetch
	// lastActing is the members position that served the last write
	// (-1 before the first). When the acting member changes — failover,
	// or the primary coming back — the mirror queue must drain before
	// the new acting member takes a direct write: it may still hold
	// sequenced mirrors for that member, and a direct (unsequenced)
	// write overtaking them would fork the members' histories.
	lastActing int

	// queuedBytes tracks the body bytes sitting in jobs; bounded by
	// maxQueuedBytes so a slow member cannot pin unbounded memory.
	queuedBytes int64
	// queuedJobs counts mirror jobs (jobVerbatim/jobAppend) enqueued
	// but not yet fully processed — unlike len(jobs) it still counts a
	// job the worker has popped and is delivering, so admission control
	// sees in-flight work. Accessed atomically.
	queuedJobs int64

	stMu       sync.Mutex
	stale      []bool // member is known to be behind (missed a write)
	reconQueue []bool // a reconcile job for the member is already queued
}

// datasetState returns (lazily creating) the replication state for
// name, starting its worker. Only the write path and the reconcile
// triggers create state; reads peek with lookupDS.
func (g *Gateway) datasetState(name string) *dsState {
	g.dsMu.Lock()
	defer g.dsMu.Unlock()
	if ds, ok := g.ds[name]; ok {
		return ds
	}
	ds := &dsState{
		name:       name,
		members:    g.ring.ReplicaSet(name, g.replication),
		jobs:       make(chan repJob, 256),
		lastActing: -1,
		stale:      make([]bool, g.replication),
		reconQueue: make([]bool, g.replication),
	}
	// wg.Add must not race Close's wg.Wait (a request can still be in
	// flight when the server's shutdown timeout expires). Once closed,
	// hand back an orphan state with no worker: its queue is never
	// drained, but the process is exiting — flush observes g.stop and
	// the small mirror jobs just go down with it.
	g.closedMu.Lock()
	if g.closed {
		g.closedMu.Unlock()
		return ds
	}
	g.wg.Add(1)
	g.closedMu.Unlock()
	g.ds[name] = ds
	go g.dsWorker(ds)
	return ds
}

func (g *Gateway) lookupDS(name string) *dsState {
	g.dsMu.Lock()
	defer g.dsMu.Unlock()
	return g.ds[name]
}

func (ds *dsState) isStale(pos int) bool {
	ds.stMu.Lock()
	defer ds.stMu.Unlock()
	return ds.stale[pos]
}

// setStale marks (or clears) member pos of ds as stale, keeping the
// gateway's aggregate counter in sync so the probe path can skip its
// dataset scan entirely when nothing is stale anywhere.
func (g *Gateway) setStale(ds *dsState, pos int, v bool) {
	ds.stMu.Lock()
	changed := ds.stale[pos] != v
	ds.stale[pos] = v
	ds.stMu.Unlock()
	if !changed {
		return
	}
	if v {
		g.staleTotal.Add(1)
	} else {
		g.staleTotal.Add(-1)
	}
}

// auditVerify re-examines one audit suspect before marking it stale.
// The audit's list snapshot cannot tell genuine lag from the gateway's
// own mirrors still in flight, so this takes the dataset's write lock
// (no new acks can happen), drains the mirror queue, and re-reads the
// members' versions fresh: a member that is still behind — or missing
// the dataset — under those conditions is genuinely stale. Holding
// ds.mu also excludes concurrent idle retirement, so the flag always
// lands on the live state. Without evidence (no other member
// answered), nothing is marked: a wrong stale flag blocks service.
func (g *Gateway) auditVerify(name string, pos int) {
	for {
		ds := g.datasetState(name)
		ds.mu.Lock()
		if ds.retired {
			ds.mu.Unlock()
			continue
		}
		if !g.flush(ds, false) {
			ds.mu.Unlock()
			return // queue would not drain; judged again by a later audit
		}
		best := uint64(0)
		bestOK := false
		var suspectV uint64
		suspectOK := false
		for i, m := range ds.members {
			v, ok := g.fetchVersion(m, name)
			if i == pos {
				suspectV, suspectOK = v, ok
				continue
			}
			if ok {
				if v >= best {
					best = v
				}
				bestOK = true
			}
		}
		marked := false
		if bestOK && (!suspectOK || suspectV < best) {
			g.setStale(ds, pos, true)
			marked = true
		}
		ds.mu.Unlock()
		if marked {
			g.tryEnqueueReconcile(ds, pos)
		}
		return
	}
}

// fetchVersion reads one dataset's current append version directly
// from backend member. ok is false when the backend is unreachable or
// does not hold the dataset.
func (g *Gateway) fetchVersion(member int, name string) (version uint64, ok bool) {
	req, err := newTracedRequest(context.Background(), http.MethodGet,
		g.backends[member].url+"/v1/datasets/"+name, nil, nil, "")
	if err != nil {
		return 0, false
	}
	resp, err := g.doBounded(req, g.listTimeout)
	if err != nil {
		return 0, false
	}
	var inf struct {
		Version uint64 `json:"version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&inf)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return 0, false
	}
	return inf.Version, true
}

// staleCounts returns, per backend index, how many datasets that
// backend is currently marked stale on — surfaced on /healthz as
// replication lag. One pass over the state map covers every backend.
func (g *Gateway) staleCounts() []int {
	out := make([]int, len(g.backends))
	g.dsMu.Lock()
	states := make([]*dsState, 0, len(g.ds))
	for _, ds := range g.ds {
		states = append(states, ds)
	}
	g.dsMu.Unlock()
	for _, ds := range states {
		ds.stMu.Lock()
		for pos, m := range ds.members {
			if ds.stale[pos] {
				out[m]++
			}
		}
		ds.stMu.Unlock()
	}
	return out
}

// serveable reports whether member pos of ds (nil for an untracked
// dataset) may serve: its backend is healthy and it is not known to be
// behind.
func (g *Gateway) serveable(ds *dsState, members []int, pos int) bool {
	if !g.backends[members[pos]].isHealthy() {
		return false
	}
	return ds == nil || !ds.isStale(pos)
}

// enqueue adds a job to the dataset's ordered queue. Called with ds.mu
// held by the write path (preserving ack order); the send may block on
// a full queue until the worker drains, which never requires ds.mu.
func (ds *dsState) enqueue(j repJob) { ds.jobs <- j }

// tryEnqueueReconcile queues an anti-entropy job for member pos unless
// one is already pending. Non-blocking: on a full queue the attempt is
// dropped and the next health probe re-arms it.
func (g *Gateway) tryEnqueueReconcile(ds *dsState, pos int) {
	ds.stMu.Lock()
	if !ds.stale[pos] || ds.reconQueue[pos] {
		ds.stMu.Unlock()
		return
	}
	ds.reconQueue[pos] = true
	ds.stMu.Unlock()
	select {
	case ds.jobs <- repJob{kind: jobReconcile, pos: pos}:
	default:
		ds.stMu.Lock()
		ds.reconQueue[pos] = false
		ds.stMu.Unlock()
	}
}

// triggerReconciles arms anti-entropy for every dataset that backend
// index b is behind on. Called by the prober whenever b looks healthy —
// in particular on readmission after an ejection, which is how a
// recovered backend catches back up.
func (g *Gateway) triggerReconciles(b int) {
	if g.replication < 2 {
		return
	}
	g.dsMu.Lock()
	states := make([]*dsState, 0, len(g.ds))
	for _, ds := range g.ds {
		states = append(states, ds)
	}
	g.dsMu.Unlock()
	for _, ds := range states {
		for pos, m := range ds.members {
			if m == b {
				g.tryEnqueueReconcile(ds, pos)
			}
		}
	}
}

// flush waits (bounded) until every job enqueued for ds before the call
// has been processed, so a failover write or a quiesce observes all
// mirrored appends. It reports whether the queue drained in time.
func (g *Gateway) flush(ds *dsState, lock bool) bool {
	done := make(chan struct{})
	if lock {
		ds.mu.Lock()
		if ds.retired {
			// Retirement guarantees an empty queue and no stale member:
			// there is nothing to drain.
			ds.mu.Unlock()
			return true
		}
	}
	ds.enqueue(repJob{kind: jobFlush, done: done})
	if lock {
		ds.mu.Unlock()
	}
	select {
	case <-done:
		return true
	case <-g.stop:
		return false
	case <-time.After(flushTimeout):
		return false
	}
}

// dsWorker drains one dataset's replication queue in order, retiring
// once the dataset has been idle with no outstanding obligations. One
// reused timer tracks idleness (a time.After per job would park a
// five-minute timer in the runtime heap for every mirrored append).
func (g *Gateway) dsWorker(ds *dsState) {
	defer g.wg.Done()
	idle := time.NewTimer(dsIdleRetire)
	defer idle.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-idle.C:
			if g.tryRetire(ds) {
				return
			}
			idle.Reset(dsIdleRetire)
		case j := <-ds.jobs:
			switch j.kind {
			case jobFlush:
				close(j.done)
			case jobReconcile:
				g.runReconcile(ds, j.pos)
			default:
				g.runMirror(ds, j)
				atomic.AddInt64(&ds.queuedJobs, -1)
			}
			if n := int64(len(j.body)); n > 0 {
				atomic.AddInt64(&ds.queuedBytes, -n)
			}
			if !idle.Stop() {
				select {
				case <-idle.C:
				default:
				}
			}
			idle.Reset(dsIdleRetire)
		}
	}
}

// tryRetire removes the dataset's replication state if nothing needs
// it: no writer mid-flight, no queued jobs, no stale member awaiting
// anti-entropy (a stale flag is an obligation — forgetting it would
// let a behind member serve stale data). Writers that raced the
// retirement observe ds.retired under ds.mu and re-fetch fresh state.
func (g *Gateway) tryRetire(ds *dsState) bool {
	if !ds.mu.TryLock() {
		return false
	}
	defer ds.mu.Unlock()
	if len(ds.jobs) > 0 {
		return false
	}
	ds.stMu.Lock()
	for _, s := range ds.stale {
		if s {
			ds.stMu.Unlock()
			return false
		}
	}
	ds.stMu.Unlock()
	ds.retired = true
	g.dsMu.Lock()
	if g.ds[ds.name] == ds {
		delete(g.ds, ds.name)
	}
	g.dsMu.Unlock()
	return true
}

// runMirror delivers one mirrored write to its member, marking the
// member stale when delivery fails for good. A sequenced append the
// member already holds (duplicate) counts as delivered.
func (g *Gateway) runMirror(ds *dsState, j repJob) {
	b := g.backends[ds.members[j.pos]]
	for attempt := 0; attempt < jobAttempts; attempt++ {
		if !b.isHealthy() {
			// Ejected member: don't even dial (a hanging backend would
			// burn jobTimeout per queued job and wedge the flush path) —
			// anti-entropy on readmission is cheaper than retries.
			break
		}
		if attempt > 0 {
			select {
			case <-g.stop:
				return
			case <-time.After(jobBackoff):
			}
		}
		status, err := g.mirrorOnce(b, j)
		if err != nil {
			continue
		}
		if mirrorDelivered(j, status) {
			return
		}
		// A definitive refusal (e.g. 409 sequence gap: the member missed
		// earlier writes) is not retryable — heal by anti-entropy.
		break
	}
	g.setStale(ds, j.pos, true)
	g.tryEnqueueReconcile(ds, j.pos)
}

// mirrorOnce performs one replica-write attempt.
func (g *Gateway) mirrorOnce(b *backend, j repJob) (int, error) {
	method := j.method
	if j.kind == jobAppend {
		method = http.MethodPost
	}
	// The mirror rides under the same trace ID as the client write it
	// replicates, so one grep follows the write to every member.
	req, err := newTracedRequest(context.Background(), method, b.url+j.path,
		bytes.NewReader(j.body), nil, j.trace)
	if err != nil {
		return 0, err
	}
	if j.ctype != "" {
		req.Header.Set("Content-Type", j.ctype)
	}
	if j.kind == jobAppend {
		req.Header.Set(server.SeqHeader, strconv.FormatUint(j.seq, 10))
	}
	resp, err := g.doBounded(req, jobTimeout)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// mirrorDelivered decides whether a replica-write response means the
// member now holds the write.
func mirrorDelivered(j repJob, status int) bool {
	if j.kind == jobAppend {
		return status == http.StatusAccepted
	}
	switch j.method {
	case http.MethodPut: // create: conflict means it already exists
		return status == http.StatusCreated || status == http.StatusConflict
	case http.MethodDelete: // delete: not-found means it is already gone
		return status == http.StatusOK || status == http.StatusNotFound
	default: // import and anything else verbatim
		return status >= 200 && status < 300
	}
}

// runReconcile heals one stale member by anti-entropy: export the
// dataset from the best serveable peer and import it into the member.
// If the peer no longer has the dataset (deleted), the member's copy is
// deleted too. On any failure the member stays stale; the next healthy
// probe of its backend re-arms the job.
func (g *Gateway) runReconcile(ds *dsState, pos int) {
	defer func() {
		ds.stMu.Lock()
		ds.reconQueue[pos] = false
		ds.stMu.Unlock()
	}()
	if !ds.isStale(pos) {
		return
	}
	target := g.backends[ds.members[pos]]
	if !target.isHealthy() {
		return
	}
	src := -1
	for i, m := range ds.members {
		if i != pos && g.backends[m].isHealthy() && !ds.isStale(i) {
			src = m
			break
		}
	}
	if src < 0 {
		return // no serveable peer to copy from; retried later
	}
	path := "/v1/datasets/" + ds.name
	// One trace ID spans the whole reconcile (export, then delete or
	// import), so the cycle reads as one operation in the access logs.
	trace := telemetry.NewTraceID()
	req, err := newTracedRequest(context.Background(), http.MethodGet,
		g.backends[src].url+path+"/export", nil, nil, trace)
	if err != nil {
		return
	}
	resp, err := g.doBounded(req, jobTimeout)
	if err != nil {
		return
	}
	blob, rerr := io.ReadAll(io.LimitReader(resp.Body, maxWriteBody+1))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		// The dataset is gone from its serving peer: propagate the
		// deletion rather than resurrecting it.
		dreq, err := newTracedRequest(context.Background(), http.MethodDelete, target.url+path, nil, nil, trace)
		if err != nil {
			return
		}
		dresp, err := g.doBounded(dreq, jobTimeout)
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, dresp.Body)
		dresp.Body.Close()
		if dresp.StatusCode == http.StatusOK || dresp.StatusCode == http.StatusNotFound {
			g.setStale(ds, pos, false)
		}
		return
	case resp.StatusCode != http.StatusOK || rerr != nil || len(blob) > maxWriteBody:
		return
	}
	ireq, err := newTracedRequest(context.Background(), http.MethodPost,
		target.url+path+"/import", bytes.NewReader(blob), nil, trace)
	if err != nil {
		return
	}
	ireq.Header.Set("Content-Type", "application/octet-stream")
	iresp, err := g.doBounded(ireq, jobTimeout)
	if err != nil {
		return
	}
	_, _ = io.Copy(io.Discard, iresp.Body)
	iresp.Body.Close()
	if iresp.StatusCode == http.StatusOK {
		g.setStale(ds, pos, false)
	}
}

// audit rediscovers replication lag by comparing every dataset's
// append version across its replica set, listing each healthy backend
// directly. A member that is behind the best copy (or missing the
// dataset entirely) is marked stale and anti-entropy is armed. The
// staleness map is in-memory, so this runs once at startup — a
// restarted gateway must not trust a primary that a previous gateway
// knew to be behind — and again on every readmission, which also
// covers a backend that lost its disk while it was away. Spurious
// marks are harmless: the import no-ops when the member turns out to
// be current, and the stale flag clears.
func (g *Gateway) audit() {
	if g.replication < 2 {
		return
	}
	// One trace ID for the whole sweep: the audit is one logical
	// operation however many backends it lists.
	trace := telemetry.NewTraceID()
	versions := make([]map[string]uint64, len(g.backends))
	names := make(map[string]bool)
	for i, b := range g.backends {
		if !b.isHealthy() {
			continue
		}
		req, err := newTracedRequest(context.Background(), http.MethodGet,
			b.url+"/v1/datasets", nil, nil, trace)
		if err != nil {
			continue
		}
		resp, err := g.doBounded(req, g.listTimeout)
		if err != nil {
			continue
		}
		var body struct {
			Datasets []server.Info `json:"datasets"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		m := make(map[string]uint64, len(body.Datasets))
		for _, inf := range body.Datasets {
			m[inf.Name] = inf.Version
			names[inf.Name] = true
		}
		versions[i] = m
	}
	for name := range names {
		members := g.ring.ReplicaSet(name, g.replication)
		best := uint64(0)
		present := false
		for _, m := range members {
			if versions[m] == nil {
				continue
			}
			if v, ok := versions[m][name]; ok {
				present = true
				if v > best {
					best = v
				}
			}
		}
		if !present {
			// No member holds it (a leftover on a non-member backend):
			// there is nothing in the set to copy from. Presence, not
			// version, is the trigger — a created-but-empty dataset
			// (version 0) still heals onto a member that lacks it.
			continue
		}
		for pos, m := range members {
			if versions[m] == nil {
				continue // unlisted (down): unknown, left to readmission
			}
			if v, ok := versions[m][name]; !ok || v < best {
				// A suspect by the list snapshot; verify under the write
				// lock before marking — the snapshot cannot tell genuine
				// lag from this gateway's own mirrors still in flight.
				g.auditVerify(name, pos)
			}
		}
	}
}

// afterWrite enqueues the replica mirror jobs for a write the acting
// member just acknowledged. Called with ds.mu held, so jobs enter the
// queue in acknowledgement order. Members that are down still get their
// job: its failure is what marks them stale and arms anti-entropy.
func (g *Gateway) afterWrite(ds *dsState, req *http.Request, served int, status int, respBody, reqBody []byte) {
	if g.replication < 2 {
		return
	}
	path := req.URL.RequestURI()
	ctype := req.Header.Get("Content-Type")
	trace := req.Header.Get(telemetry.TraceHeader)
	var template repJob
	switch {
	case req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/observations"):
		if status != http.StatusAccepted {
			return
		}
		var ack struct {
			Version   uint64 `json:"version"`
			Duplicate bool   `json:"duplicate"`
		}
		if err := json.Unmarshal(respBody, &ack); err != nil || ack.Version == 0 || ack.Duplicate {
			return // nothing newly applied; nothing to mirror
		}
		template = repJob{kind: jobAppend, path: path, seq: ack.Version, body: reqBody, ctype: ctype}
	case req.Method == http.MethodPut:
		if status != http.StatusCreated && status != http.StatusConflict {
			return
		}
		template = repJob{kind: jobVerbatim, method: http.MethodPut, path: path, body: reqBody, ctype: ctype}
	case req.Method == http.MethodDelete:
		if status != http.StatusOK && status != http.StatusNotFound {
			return
		}
		template = repJob{kind: jobVerbatim, method: http.MethodDelete, path: path}
	case req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/import"):
		if status != http.StatusOK {
			return
		}
		template = repJob{kind: jobVerbatim, method: http.MethodPost, path: path, body: reqBody, ctype: ctype}
	default:
		return
	}
	template.trace = trace
	size := int64(len(template.body))
	for pos := range ds.members {
		if pos == served {
			continue
		}
		if size > 0 && atomic.LoadInt64(&ds.queuedBytes)+size > maxQueuedBytes {
			// Queue byte budget exhausted: stop buffering bodies for
			// this member and let anti-entropy move one snapshot
			// instead of a backlog of appends.
			g.setStale(ds, pos, true)
			g.tryEnqueueReconcile(ds, pos)
			continue
		}
		atomic.AddInt64(&ds.queuedBytes, size)
		atomic.AddInt64(&ds.queuedJobs, 1)
		j := template
		j.pos = pos
		ds.enqueue(j)
	}
}
