package core

import (
	"math"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
)

func exampleParams() bayes.Params { return bayes.Params{Alpha: 0.1, S: 0.8, N: 50} }

// motivatingState reconstructs the statistical knowledge of the worked
// examples: Table I accuracies, Table III value probabilities.
func motivatingState(t testing.TB) (*dataset.Dataset, *bayes.State) {
	t.Helper()
	ds, accu := dataset.Motivating()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.A = accu
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.5
		}
	}
	for label, pv := range dataset.MotivatingValueProbs() {
		d, v := dataset.LookupValue(ds, label)
		if d < 0 {
			t.Fatalf("label %q not in fixture", label)
		}
		st.P[d][v] = pv
	}
	return ds, st
}

func findPair(t testing.TB, res *Result, s1, s2 dataset.SourceID) *PairResult {
	t.Helper()
	for i := range res.Pairs {
		if res.Pairs[i].S1 == s1 && res.Pairs[i].S2 == s2 {
			return &res.Pairs[i]
		}
	}
	return nil
}

// TestPairwiseExample21 reproduces Example 2.1: C→ = C← ≈ 11.58 for
// (S2,S3) with Pr(⊥) ≈ 0.00004, and Pr(⊥) ≈ 0.79 for (S0,S1).
func TestPairwiseExample21(t *testing.T) {
	ds, st := motivatingState(t)
	pw := &Pairwise{Params: exampleParams()}
	res := pw.DetectRound(ds, st, 1)

	p23 := findPair(t, res, 2, 3)
	if p23 == nil {
		t.Fatal("pair (S2,S3) missing")
	}
	if math.Abs(p23.CTo-11.58) > 0.05 || math.Abs(p23.CFrom-11.58) > 0.05 {
		t.Errorf("C→/C←(S2,S3) = %.3f/%.3f, want ≈ 11.58", p23.CTo, p23.CFrom)
	}
	if p23.PrIndep > 0.0001 {
		t.Errorf("Pr(S2⊥S3) = %.6f, want ≈ 0.00004", p23.PrIndep)
	}
	if !p23.Copying {
		t.Error("(S2,S3) must be decided copying")
	}

	p01 := findPair(t, res, 0, 1)
	if p01 == nil {
		t.Fatal("pair (S0,S1) missing")
	}
	if p01.PrIndep < 0.75 || p01.PrIndep > 0.84 {
		t.Errorf("Pr(S0⊥S1) = %.3f, want ≈ 0.79", p01.PrIndep)
	}
	if p01.Copying {
		t.Error("(S0,S1) must be decided non-copying")
	}

	// PAIRWISE examines all 45 pairs and 181 shared items → 362
	// per-direction computations (Example 3.6 prints 183/366; Table I
	// reconstructs to 181, see the dataset tests).
	if res.Stats.PairsConsidered != 45 {
		t.Errorf("pairs considered = %d, want 45", res.Stats.PairsConsidered)
	}
	if res.Stats.Computations != 362 {
		t.Errorf("computations = %d, want 362", res.Stats.Computations)
	}
}

// TestIndexExample36 reproduces Example 3.6: INDEX examines 26 pairs and
// 51 shared values, for 51·2 + 26·2 = 154 computations, and reaches the
// same decisions as PAIRWISE.
func TestIndexExample36(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	res := (&Index{Params: p}).DetectRound(ds, st, 1)

	if res.Stats.PairsConsidered != 26 {
		t.Errorf("pairs considered = %d, want 26", res.Stats.PairsConsidered)
	}
	if res.Stats.ValuesExamined != 51 {
		t.Errorf("shared values examined = %d, want 51", res.Stats.ValuesExamined)
	}
	if res.Stats.Computations != 154 {
		t.Errorf("computations = %d, want 154", res.Stats.Computations)
	}

	pw := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	assertSameDecisions(t, res, pw, "INDEX vs PAIRWISE")
}

// assertSameDecisions verifies two results agree on the copying set and
// that pairs decided by both have consistent exact scores when available.
func assertSameDecisions(t testing.TB, a, b *Result, what string) {
	t.Helper()
	sa, sb := a.CopyingSet(), b.CopyingSet()
	for k := range sa {
		if !sb[k] {
			s1, s2 := index.PairKey(k).Sources()
			t.Errorf("%s: pair (S%d,S%d) copying in first only", what, s1, s2)
		}
	}
	for k := range sb {
		if !sa[k] {
			s1, s2 := index.PairKey(k).Sources()
			t.Errorf("%s: pair (S%d,S%d) copying in second only", what, s1, s2)
		}
	}
}

// TestIndexScoresMatchPairwise: for every pair INDEX instantiates, its
// exact scores equal PAIRWISE's.
func TestIndexScoresMatchPairwise(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)
	pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	for i := range ires.Pairs {
		ip := &ires.Pairs[i]
		pp := findPair(t, pres, ip.S1, ip.S2)
		if pp == nil {
			t.Fatalf("pair (S%d,S%d) missing from PAIRWISE", ip.S1, ip.S2)
		}
		if math.Abs(ip.CTo-pp.CTo) > 1e-9 || math.Abs(ip.CFrom-pp.CFrom) > 1e-9 {
			t.Errorf("scores of (S%d,S%d) differ: %.6f/%.6f vs %.6f/%.6f",
				ip.S1, ip.S2, ip.CTo, ip.CFrom, pp.CTo, pp.CFrom)
		}
	}
}

// TestBoundExample42 reproduces Example 4.2's decisions: (S2,S3) is
// concluded copying after seeing only 2 of its 4 shared values, (S0,S1)
// non-copying after 3, and overall BOUND examines fewer shared values
// than INDEX (33 vs 51 in the paper's accounting).
func TestBoundExample42(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	bres := (&Bound{Params: p}).DetectRound(ds, st, 1)
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)

	p23 := findPair(t, bres, 2, 3)
	if p23 == nil || !p23.Copying {
		t.Fatal("(S2,S3) must be decided copying by BOUND")
	}
	p01 := findPair(t, bres, 0, 1)
	if p01 == nil || p01.Copying {
		t.Fatal("(S0,S1) must be decided non-copying by BOUND")
	}
	if bres.Stats.ValuesExamined >= ires.Stats.ValuesExamined {
		t.Errorf("BOUND examined %d shared values, INDEX %d; early termination should examine fewer",
			bres.Stats.ValuesExamined, ires.Stats.ValuesExamined)
	}
	assertSameDecisions(t, bres, ires, "BOUND vs INDEX")
}

// TestBoundPlusSameDecisionsFewerComputations: BOUND+ must agree with
// BOUND while skipping bound recomputations.
func TestBoundPlusSameDecisionsFewerComputations(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	bres := (&Bound{Params: p}).DetectRound(ds, st, 1)
	bpres := (&BoundPlus{Params: p}).DetectRound(ds, st, 1)
	assertSameDecisions(t, bpres, bres, "BOUND+ vs BOUND")
	if bpres.Stats.Computations > bres.Stats.Computations {
		t.Errorf("BOUND+ used %d computations, BOUND %d; the timers must not add work",
			bpres.Stats.Computations, bres.Stats.Computations)
	}
}

// TestHybridEqualsIndexOnSmallOverlap: every pair of the motivating
// example shares at most 5 items, far below the threshold of 16, so
// HYBRID degenerates to INDEX exactly.
func TestHybridEqualsIndexOnSmallOverlap(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	hres := (&Hybrid{Params: p}).DetectRound(ds, st, 1)
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)
	if hres.Stats.Computations != ires.Stats.Computations {
		t.Errorf("HYBRID computations = %d, INDEX = %d; should be identical when every l ≤ 16",
			hres.Stats.Computations, ires.Stats.Computations)
	}
	assertSameDecisions(t, hres, ires, "HYBRID vs INDEX")
}

// TestHybridForcedBounds exercises the BOUND+ path by lowering the share
// threshold to 1 so every pair uses bounds.
func TestHybridForcedBounds(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	hres := (&Hybrid{Params: p, Opts: Options{ShareThreshold: 1}}).DetectRound(ds, st, 1)
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)
	assertSameDecisions(t, hres, ires, "HYBRID(threshold=1) vs INDEX")
}

// TestParallelIndexMatchesSequential: the Section VIII parallelization
// must produce identical decisions and scores.
func TestParallelIndexMatchesSequential(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	seq := (&Index{Params: p}).DetectRound(ds, st, 1)
	par := (&Index{Params: p, Opts: Options{Workers: 4}}).DetectRound(ds, st, 1)
	if len(par.Pairs) != len(seq.Pairs) {
		t.Fatalf("parallel instantiated %d pairs, sequential %d", len(par.Pairs), len(seq.Pairs))
	}
	assertSameDecisions(t, par, seq, "parallel vs sequential INDEX")
	for i := range seq.Pairs {
		sp := &seq.Pairs[i]
		pp := findPair(t, par, sp.S1, sp.S2)
		if pp == nil {
			t.Fatalf("pair (S%d,S%d) missing from parallel result", sp.S1, sp.S2)
		}
		if math.Abs(sp.CTo-pp.CTo) > 1e-9 {
			t.Errorf("pair (S%d,S%d) scores differ", sp.S1, sp.S2)
		}
	}
	if par.Stats.Computations != seq.Stats.Computations {
		t.Errorf("parallel computations = %d, sequential = %d", par.Stats.Computations, seq.Stats.Computations)
	}
}

// TestOrderingsSameDecisions: the entry processing order (Figure 3)
// affects cost, never decisions, for the exact INDEX algorithm.
func TestOrderingsSameDecisions(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	base := (&Index{Params: p}).DetectRound(ds, st, 1)
	for _, ord := range []index.Order{index.ByProvider, index.Random} {
		res := (&Index{Params: p, Opts: Options{Order: ord, Seed: 3}}).DetectRound(ds, st, 1)
		assertSameDecisions(t, res, base, "INDEX order "+ord.String())
	}
	// BOUND's estimates stay sound under any order thanks to the
	// remaining-maximum M; decisions should match here too.
	for _, ord := range []index.Order{index.ByProvider, index.Random} {
		res := (&Bound{Params: p, Opts: Options{Order: ord, Seed: 3}}).DetectRound(ds, st, 1)
		assertSameDecisions(t, res, base, "BOUND order "+ord.String())
	}
}

// TestStatsAccounting sanity-checks the Stats helpers.
func TestStatsAccounting(t *testing.T) {
	var s Stats
	s.Add(Stats{Computations: 3, PairsConsidered: 1, ValuesExamined: 2, EntriesScanned: 5, Rounds: 1})
	s.Add(Stats{Computations: 7, Rounds: 1})
	if s.Computations != 10 || s.Rounds != 2 || s.ValuesExamined != 2 {
		t.Errorf("Stats.Add broken: %+v", s)
	}
}
