package index

import (
	"math"
	"math/rand"
	"slices"

	"copydetect/internal/bayes"
	"copydetect/internal/bitset"
	"copydetect/internal/dataset"
)

// This file is the structure-of-arrays face of the inverted index, built
// for the accumulation kernel (internal/core/scan.go). The classic Build
// API materializes []Entry structs and re-allocates them every round; the
// Structure/View split instead separates what never changes across rounds
// of the iterative process from what does:
//
//   - Structure: the entry universe — (item, value) per entry, provider
//     lists in CSR layout, and optional per-source bitsets over items and
//     entries for word-parallel overlap counting. Depends only on the
//     observations; built once per dataset generation and cached.
//   - View: the per-round arrays — P, Pop, Score per entry, the scan
//     order permutation, the tail set and the MaxRemaining maxima.
//     Rescore refills them in place, so steady-state rounds allocate
//     nothing here.
//
// Entry ids (eids) are stable: item-major, values ascending within an
// item — exactly the enumeration order of Collect — so a frozen View
// (INCREMENTAL) can index per-entry state by eid forever.

// Structure is the round-invariant part of the inverted index in SoA
// layout. All slices are indexed by entry id unless noted.
type Structure struct {
	// Item and Val identify entry e as value Val[e] of item Item[e].
	Item []dataset.ItemID
	Val  []dataset.ValueID
	// Prov[ProvOff[e]:ProvOff[e+1]] lists entry e's providers, sorted by
	// source id (CSR layout: one shared backing array, no per-entry
	// allocations).
	ProvOff []int32
	Prov    []dataset.SourceID

	// ItemBits[s] marks the items source s covers; EntryBits[s] marks the
	// entries (item, value) source s provides. Both are nil when the
	// memory guard trips (see bitsetMemLimit); callers must fall back to
	// the sorted-list merges then. The two sets answer the kernel's
	// overlap questions in one AND+popcount per 64 elements:
	//
	//	l(S1,S2)  = AndCount(ItemBits[s1], ItemBits[s2])   shared items
	//	n0(S1,S2) = AndCount(EntryBits[s1], EntryBits[s2]) shared values
	ItemBits  []bitset.Set
	EntryBits []bitset.Set

	// MaxProviders is the largest provider-list length, for scratch sizing.
	MaxProviders int

	numSources int
	numItems   int
}

// bitsetMemLimit caps the total bitset footprint at 64 MB. Beyond it the
// per-source sets would stop fitting in cache anyway and the sorted-list
// merges win back; Structure then leaves ItemBits/EntryBits nil.
const bitsetMemLimit = 64 << 20

// NewStructure enumerates the entry universe of ds — every value provided
// by at least two sources, item-major, values ascending — into SoA tables.
func NewStructure(ds *dataset.Dataset) *Structure {
	s := &Structure{numSources: ds.NumSources(), numItems: ds.NumItems()}
	// Count entries and providers first so every slice is exact-sized.
	numEntries, numProv := 0, 0
	var counts []int32
	for d := range ds.ByItem {
		svs := ds.ByItem[d]
		if len(svs) < 2 {
			continue
		}
		nv := ds.NumValues(dataset.ItemID(d))
		if cap(counts) < nv {
			counts = make([]int32, nv*2)
		}
		counts = counts[:nv]
		clear(counts)
		for _, sv := range svs {
			counts[sv.Value]++
		}
		for _, c := range counts {
			if c >= 2 {
				numEntries++
				numProv += int(c)
			}
		}
	}
	s.Item = make([]dataset.ItemID, 0, numEntries)
	s.Val = make([]dataset.ValueID, 0, numEntries)
	s.ProvOff = make([]int32, 1, numEntries+1)
	s.Prov = make([]dataset.SourceID, 0, numProv)

	var slot []int32
	for d := range ds.ByItem {
		svs := ds.ByItem[d]
		if len(svs) < 2 {
			continue
		}
		nv := ds.NumValues(dataset.ItemID(d))
		if cap(counts) < nv {
			counts = make([]int32, nv*2)
		}
		if cap(slot) < nv {
			slot = make([]int32, nv*2)
		}
		counts, slot = counts[:nv], slot[:nv]
		clear(counts)
		for _, sv := range svs {
			counts[sv.Value]++
		}
		first := len(s.Item)
		for v := 0; v < nv; v++ {
			if counts[v] < 2 {
				slot[v] = -1
				continue
			}
			slot[v] = int32(len(s.Item))
			s.Item = append(s.Item, dataset.ItemID(d))
			s.Val = append(s.Val, dataset.ValueID(v))
		}
		if first == len(s.Item) {
			continue
		}
		// Reserve each new entry's CSR range, then fill provider lists in
		// ByItem order (ascending source id, like Collect).
		for i := first; i < len(s.Item); i++ {
			n := counts[s.Val[i]]
			s.ProvOff = append(s.ProvOff, s.ProvOff[len(s.ProvOff)-1]+n)
			if int(n) > s.MaxProviders {
				s.MaxProviders = int(n)
			}
		}
		s.Prov = s.Prov[:s.ProvOff[len(s.ProvOff)-1]]
		fill := make([]int32, len(s.Item)-first)
		for _, sv := range svs {
			if i := slot[sv.Value]; i >= 0 {
				s.Prov[s.ProvOff[i]+fill[i-int32(first)]] = sv.Source
				fill[i-int32(first)]++
			}
		}
	}
	s.buildBitsets(ds)
	return s
}

// buildBitsets materializes the per-source item and entry bitsets unless
// the memory guard trips.
func (s *Structure) buildBitsets(ds *dataset.Dataset) {
	n := s.NumEntries()
	words := s.numSources * (bitset.Words(s.numItems) + bitset.Words(n))
	if words*8 > bitsetMemLimit || s.numSources == 0 {
		return
	}
	itemWords, entryWords := bitset.Words(s.numItems), bitset.Words(n)
	itemBacking := make(bitset.Set, s.numSources*itemWords)
	entryBacking := make(bitset.Set, s.numSources*entryWords)
	s.ItemBits = make([]bitset.Set, s.numSources)
	s.EntryBits = make([]bitset.Set, s.numSources)
	for src := 0; src < s.numSources; src++ {
		s.ItemBits[src] = itemBacking[src*itemWords : (src+1)*itemWords]
		s.EntryBits[src] = entryBacking[src*entryWords : (src+1)*entryWords]
	}
	for src := range ds.BySource {
		for _, o := range ds.BySource[src] {
			s.ItemBits[src].Add(int(o.Item))
		}
	}
	for e := 0; e < n; e++ {
		for _, src := range s.Providers(int32(e)) {
			s.EntryBits[src].Add(e)
		}
	}
}

// NumEntries returns the size of the entry universe.
func (s *Structure) NumEntries() int { return len(s.Item) }

// Providers returns entry e's provider list (sorted by source id). The
// caller must not mutate it.
func (s *Structure) Providers(e int32) []dataset.SourceID {
	return s.Prov[s.ProvOff[e]:s.ProvOff[e+1]]
}

// View is the per-round scored face of a Structure. P, Pop, Score and
// InTail are indexed by entry id; Order maps scan position to entry id;
// MaxRemaining is indexed by scan position (MaxRemaining[i] bounds the
// score of every entry at positions >= i, MaxRemaining[n] == 0). Rescore
// refills everything in place, so a reused View allocates only on first
// use.
type View struct {
	S            *Structure
	P, Pop       []float64
	Score        []float64
	InTail       []bool
	Order        []int32
	MaxRemaining []float64
	TailScoreSum float64

	accs      []float64 // provider-accuracy scratch for entry scoring
	tailOrder []int32   // eids by ascending score, scratch for the tail
}

// NewView allocates a View sized for s.
func NewView(s *Structure) *View {
	n := s.NumEntries()
	return &View{
		S:            s,
		P:            make([]float64, n),
		Pop:          make([]float64, n),
		Score:        make([]float64, n),
		InTail:       make([]bool, n),
		Order:        make([]int32, n),
		MaxRemaining: make([]float64, n+1),
		accs:         make([]float64, 0, max(s.MaxProviders, 2)),
		tailOrder:    make([]int32, n),
	}
}

// Rescore recomputes the per-round arrays against st: entry probabilities
// and contribution scores, the scan order, the tail set E̅ and the
// MaxRemaining maxima. rng is consulted only for Order Random. No
// allocations in steady state.
func (v *View) Rescore(st *bayes.State, p bayes.Params, ord Order, rng *rand.Rand) {
	s := v.S
	n := s.NumEntries()
	for e := 0; e < n; e++ {
		v.accs = v.accs[:0]
		for _, src := range s.Providers(int32(e)) {
			v.accs = append(v.accs, st.A[src])
		}
		v.P[e] = st.P[s.Item[e]][s.Val[e]]
		v.Pop[e] = st.PopOf(int32(s.Item[e]), int32(s.Val[e]))
		v.Score[e] = p.MaxEntryScoreDist(v.P[e], v.Pop[e], v.accs)
	}
	for i := range v.Order {
		v.Order[i] = int32(i)
	}
	switch ord {
	case ByContribution:
		slices.SortStableFunc(v.Order, func(a, b int32) int {
			switch {
			case v.Score[a] > v.Score[b]:
				return -1
			case v.Score[a] < v.Score[b]:
				return 1
			}
			return 0
		})
	case ByProvider:
		slices.SortStableFunc(v.Order, func(a, b int32) int {
			return int(s.ProvOff[a+1]-s.ProvOff[a]) - int(s.ProvOff[b+1]-s.ProvOff[b])
		})
	case Random:
		rng.Shuffle(n, func(i, j int) { v.Order[i], v.Order[j] = v.Order[j], v.Order[i] })
	}
	v.MaxRemaining[n] = 0
	for i := n - 1; i >= 0; i-- {
		v.MaxRemaining[i] = math.Max(v.MaxRemaining[i+1], v.Score[v.Order[i]])
	}
	// Tail set: lowest scores first while the sum stays below θind. Ties
	// break by entry id, which keeps the set deterministic (the old
	// AoS path used an unstable sort here; any tie resolution is equally
	// sound, since the pruning argument only needs TailScoreSum < θind).
	for i := range v.tailOrder {
		v.tailOrder[i] = int32(i)
	}
	slices.SortFunc(v.tailOrder, func(a, b int32) int {
		switch {
		case v.Score[a] < v.Score[b]:
			return -1
		case v.Score[a] > v.Score[b]:
			return 1
		}
		return int(a - b)
	})
	clear(v.InTail)
	limit := p.ThetaInd()
	sum := 0.0
	for _, e := range v.tailOrder {
		sc := v.Score[e]
		if sum+sc >= limit {
			break
		}
		sum += sc
		v.InTail[e] = true
	}
	v.TailScoreSum = sum
}

// CandidatePairsInto registers every unordered source pair co-occurring
// in an entry outside the tail set into pm, resetting it first. Insertion
// follows scan order, so pair slots — and therefore Result.Pairs — are
// ordered the same way CandidatePairs orders them for a freshly built
// index. The View-based twin of CandidatePairs, allocation-free on a
// warm PairMap.
func CandidatePairsInto(v *View, pm *PairMap) {
	pm.Reset()
	for _, e := range v.Order {
		if v.InTail[e] {
			continue
		}
		provs := v.S.Providers(e)
		for x := 0; x < len(provs); x++ {
			for y := x + 1; y < len(provs); y++ {
				pm.GetOrAdd(provs[x], provs[y])
			}
		}
	}
}

// AllPairsInto registers every co-occurring source pair (tail included)
// into pm, resetting it first — the universe the cross-round structural
// cache counts shared items for.
func AllPairsInto(s *Structure, pm *PairMap) {
	pm.Reset()
	for e := 0; e < s.NumEntries(); e++ {
		provs := s.Providers(int32(e))
		for x := 0; x < len(provs); x++ {
			for y := x + 1; y < len(provs); y++ {
				pm.GetOrAdd(provs[x], provs[y])
			}
		}
	}
}

// SharedItemCountsBits computes l(S1,S2) for every pair in pm via the
// per-source item bitsets: one AND+popcount sweep per pair instead of a
// sorted-list merge. Requires s.ItemBits (the caller falls back to
// SharedItemCounts when the memory guard disabled bitsets). counts must
// have length pm.Len().
func SharedItemCountsBits(s *Structure, pm *PairMap, counts []int32) {
	for slot, key := range pm.Keys() {
		s1, s2 := key.Sources()
		counts[slot] = int32(bitset.AndCount(s.ItemBits[s1], s.ItemBits[s2]))
	}
}
