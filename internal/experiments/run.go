package experiments

import (
	"fmt"
	"sort"
)

// registry maps experiment ids to their runners.
func (e *Env) registry() map[string]func() error {
	return map[string]func() error{
		"motivating": e.Motivating,
		"table5":     e.Table5,
		"table6":     e.Table6,
		"table7":     e.Table7,
		"table8":     e.Table8,
		"table9":     e.Table9,
		"table10":    e.Table10,
		"figure2":    e.Figure2,
		"figure3":    e.Figure3,
	}
}

// IDs lists the available experiment ids in a stable order.
func IDs() []string {
	ids := []string{"motivating", "table5", "table6", "table7", "table8", "table9", "table10", "figure2", "figure3"}
	return ids
}

// Run executes one experiment by id, or all of them for "all".
func (e *Env) Run(id string) error {
	if id == "all" {
		for _, x := range IDs() {
			if err := e.Run(x); err != nil {
				return fmt.Errorf("experiment %s: %w", x, err)
			}
		}
		return nil
	}
	reg := e.registry()
	f, ok := reg[id]
	if !ok {
		known := make([]string, 0, len(reg))
		for k := range reg {
			known = append(known, k)
		}
		sort.Strings(known)
		return fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
	}
	return f()
}
