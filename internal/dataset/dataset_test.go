package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder()
	b.Add("S1", "NJ", "Trenton")
	b.Add("S2", "NJ", "Atlantic")
	b.Add("S1", "AZ", "Phoenix")
	b.SetTruth("NJ", "Trenton")
	ds := b.Build()
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.NumSources() != 2 || ds.NumItems() != 2 {
		t.Fatalf("got %d sources, %d items", ds.NumSources(), ds.NumItems())
	}
	if ds.NumValues(0) != 2 {
		t.Errorf("NJ should have 2 values, got %d", ds.NumValues(0))
	}
	if got := ds.ValueOf(0, 0); ds.ValueNames[0][got] != "Trenton" {
		t.Errorf("S1's NJ value = %q", ds.ValueNames[0][got])
	}
	if got := ds.ValueOf(1, 1); got != NoValue {
		t.Errorf("S2 should not cover AZ, got %v", got)
	}
	if ds.Truth[0] == NoValue || ds.ValueNames[0][ds.Truth[0]] != "Trenton" {
		t.Errorf("truth of NJ wrong")
	}
	if ds.Truth[1] != NoValue {
		t.Errorf("truth of AZ should be unknown")
	}
}

func TestBuilderOverwrite(t *testing.T) {
	b := NewBuilder()
	b.Add("S1", "NJ", "Trenton")
	b.Add("S1", "NJ", "Atlantic") // last write wins
	ds := b.Build()
	if n := ds.NumObservations(); n != 1 {
		t.Fatalf("expected 1 observation, got %d", n)
	}
	if v := ds.ValueOf(0, 0); ds.ValueNames[0][v] != "Atlantic" {
		t.Errorf("overwrite failed, got %q", ds.ValueNames[0][v])
	}
}

func TestMotivatingFixture(t *testing.T) {
	ds, accu := Motivating()
	if err := ds.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if ds.NumSources() != 10 || ds.NumItems() != 5 {
		t.Fatalf("got %d sources, %d items", ds.NumSources(), ds.NumItems())
	}
	if len(accu) != 10 {
		t.Fatalf("accuracy vector has %d entries", len(accu))
	}
	// Table I: S0 has no FL value, S6 no NJ, S7 no AZ, S9 only NJ/FL/TX.
	if ds.Coverage(0) != 4 || ds.Coverage(6) != 4 || ds.Coverage(9) != 3 {
		t.Errorf("coverage mismatch: S0=%d S6=%d S9=%d", ds.Coverage(0), ds.Coverage(6), ds.Coverage(9))
	}
	if ds.Coverage(1) != 5 {
		t.Errorf("S1 should cover all 5 items, got %d", ds.Coverage(1))
	}
	// Example 3.6 says PAIRWISE examines 183 shared data items over the 45
	// pairs. Reconstructing Table I gives Σ_D C(|providers(D)|, 2) =
	// 36+28+36+36+45 = 181; the paper's 183 appears to be a small
	// arithmetic slip, since its INDEX-side counts (51 shared values, 26
	// pairs — tested in internal/core) reproduce exactly from this table.
	total := 0
	for s1 := SourceID(0); s1 < 10; s1++ {
		for s2 := s1 + 1; s2 < 10; s2++ {
			total += ds.SharedItems(s1, s2)
		}
	}
	if total != 181 {
		t.Errorf("total shared items = %d, want 181 (cf. Example 3.6's 183)", total)
	}
	// Example 2.1: S2 and S3 share 4 values; S0 and S1 share 4 values.
	if n := ds.SharedValues(2, 3); n != 4 {
		t.Errorf("n(S2,S3) = %d, want 4", n)
	}
	if n := ds.SharedValues(0, 1); n != 4 {
		t.Errorf("n(S0,S1) = %d, want 4", n)
	}
	// Section II-B: 18 pairs share no value at all... the paper counts
	// pairs sharing no data item or value; verify S0/S6 share no value.
	if n := ds.SharedValues(0, 6); n != 0 {
		t.Errorf("n(S0,S6) = %d, want 0", n)
	}
	// l(S2,S3) = 5 (both cover everything), l(S0,S5) = 4.
	if l := ds.SharedItems(2, 3); l != 5 {
		t.Errorf("l(S2,S3) = %d, want 5", l)
	}
	if l := ds.SharedItems(0, 5); l != 4 {
		t.Errorf("l(S0,S5) = %d, want 4", l)
	}
}

func TestLookupValue(t *testing.T) {
	ds, _ := Motivating()
	d, v := LookupValue(ds, "NJ.Atlantic")
	if d < 0 || v < 0 {
		t.Fatal("NJ.Atlantic not found")
	}
	if ds.ItemNames[d] != "NJ" || ds.ValueNames[d][v] != "Atlantic" {
		t.Errorf("lookup returned %s.%s", ds.ItemNames[d], ds.ValueNames[d][v])
	}
	if d, v := LookupValue(ds, "NJ.Nowhere"); d != -1 || v != -1 {
		t.Errorf("bogus lookup returned %d,%d", d, v)
	}
}

func TestSummarize(t *testing.T) {
	ds, _ := Motivating()
	st := Summarize(ds)
	if st.Sources != 10 || st.Items != 5 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Observations != 45 {
		t.Errorf("observations = %d, want 45", st.Observations)
	}
	// Table III has 13 entries: 13 values provided by >= 2 sources.
	if st.SharedValues != 13 {
		t.Errorf("shared values = %d, want 13", st.SharedValues)
	}
	// Distinct values: 13 shared + NJ.Union, AZ.Tucson, TX.Arlington.
	if st.DistinctValues != 16 {
		t.Errorf("distinct values = %d, want 16", st.DistinctValues)
	}
	if !strings.Contains(st.String(), "#Srcs=10") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	ds, _ := Motivating()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ds); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	assertSameData(t, ds, got)
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := Motivating()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	assertSameData(t, ds, got)
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadCSV(strings.NewReader("just-one-column\n")); err == nil {
		t.Error("headerless CSV should fail")
	}
	if _, err := ReadCSV(strings.NewReader("source,NJ\n,Trenton\n")); err == nil {
		t.Error("empty source name should fail")
	}
}

// assertSameData verifies two datasets agree observation by observation
// (ids may be permuted, names are authoritative).
func assertSameData(t *testing.T, want, got *Dataset) {
	t.Helper()
	if got.NumSources() != want.NumSources() || got.NumItems() != want.NumItems() {
		t.Fatalf("shape mismatch: %dx%d vs %dx%d", got.NumSources(), got.NumItems(), want.NumSources(), want.NumItems())
	}
	gotItem := make(map[string]ItemID)
	for d, n := range got.ItemNames {
		gotItem[n] = ItemID(d)
	}
	gotSource := make(map[string]SourceID)
	for s, n := range got.SourceNames {
		gotSource[n] = SourceID(s)
	}
	for s := range want.BySource {
		for _, o := range want.BySource[s] {
			gs, ok1 := gotSource[want.SourceNames[s]]
			gd, ok2 := gotItem[want.ItemNames[o.Item]]
			if !ok1 || !ok2 {
				t.Fatalf("missing source/item %q/%q", want.SourceNames[s], want.ItemNames[o.Item])
			}
			gv := got.ValueOf(gs, gd)
			if gv == NoValue || got.ValueNames[gd][gv] != want.ValueNames[o.Item][o.Value] {
				t.Fatalf("value mismatch at %s/%s", want.SourceNames[s], want.ItemNames[o.Item])
			}
		}
	}
	if (want.Truth == nil) != (got.Truth == nil) {
		t.Fatal("truth presence mismatch")
	}
	if want.Truth != nil {
		for d, tv := range want.Truth {
			gd := gotItem[want.ItemNames[d]]
			gt := got.Truth[gd]
			if (tv == NoValue) != (gt == NoValue) {
				t.Fatalf("truth presence mismatch on %s", want.ItemNames[d])
			}
			if tv != NoValue && got.ValueNames[gd][gt] != want.ValueNames[d][tv] {
				t.Fatalf("truth mismatch on %s", want.ItemNames[d])
			}
		}
	}
}

func TestSharedItemsSymmetric(t *testing.T) {
	ds, _ := Motivating()
	for s1 := SourceID(0); s1 < 10; s1++ {
		for s2 := s1 + 1; s2 < 10; s2++ {
			if ds.SharedItems(s1, s2) != ds.SharedItems(s2, s1) {
				t.Fatalf("SharedItems not symmetric for (%d,%d)", s1, s2)
			}
			if ds.SharedValues(s1, s2) > ds.SharedItems(s1, s2) {
				t.Fatalf("n > l for (%d,%d)", s1, s2)
			}
		}
	}
}

func TestSubsetItems(t *testing.T) {
	ds, _ := Motivating()
	sub, itemMap := SubsetItems(ds, []ItemID{3, 0}) // FL, NJ in that order
	if err := sub.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if sub.NumSources() != ds.NumSources() {
		t.Errorf("subset must keep all sources")
	}
	if sub.NumItems() != 2 || sub.ItemNames[0] != "FL" || sub.ItemNames[1] != "NJ" {
		t.Errorf("subset items wrong: %v", sub.ItemNames)
	}
	if !reflect.DeepEqual(itemMap, []ItemID{3, 0}) {
		t.Errorf("itemMap = %v", itemMap)
	}
	// Value ids must be preserved relative to the full dataset.
	for s := SourceID(0); int(s) < ds.NumSources(); s++ {
		for newD, oldD := range itemMap {
			if got, want := sub.ValueOf(s, ItemID(newD)), ds.ValueOf(s, oldD); got != want {
				t.Fatalf("value of source %d item %s changed: %d vs %d", s, ds.ItemNames[oldD], got, want)
			}
		}
	}
	// Truth carries over.
	if sub.Truth[1] != ds.Truth[0] {
		t.Errorf("truth not carried")
	}
}

// TestSubsetItemsProperty: any random subset of a random dataset validates
// and preserves per-source values.
func TestSubsetItemsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ds := randomDataset(rng, 6, 12, 3)
		k := 1 + rng.Intn(ds.NumItems())
		perm := rng.Perm(ds.NumItems())[:k]
		items := make([]ItemID, k)
		for i, d := range perm {
			items[i] = ItemID(d)
		}
		sub, itemMap := SubsetItems(ds, items)
		if sub.Validate() != nil {
			return false
		}
		for s := 0; s < ds.NumSources(); s++ {
			for newD, oldD := range itemMap {
				if sub.ValueOf(SourceID(s), ItemID(newD)) != ds.ValueOf(SourceID(s), oldD) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// randomDataset builds a small random dataset for property tests.
func randomDataset(rng *rand.Rand, ns, ni, nv int) *Dataset {
	b := NewBuilder()
	names := make([]string, ni)
	for d := 0; d < ni; d++ {
		names[d] = "D" + string(rune('A'+d))
		b.Item(names[d])
	}
	for s := 0; s < ns; s++ {
		sn := "S" + string(rune('a'+s))
		b.Source(sn)
		for d := 0; d < ni; d++ {
			if rng.Float64() < 0.6 {
				b.Add(sn, names[d], "v"+string(rune('0'+rng.Intn(nv))))
			}
		}
	}
	return b.Build()
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds, _ := Motivating()
	// Break ByItem ordering.
	bad := *ds
	bad.ByItem = make([][]SV, len(ds.ByItem))
	copy(bad.ByItem, ds.ByItem)
	bad.ByItem[0] = append([]SV(nil), ds.ByItem[0]...)
	bad.ByItem[0][0], bad.ByItem[0][1] = bad.ByItem[0][1], bad.ByItem[0][0]
	if err := bad.Validate(); err == nil {
		t.Error("Validate should catch unsorted ByItem")
	}
	// Break value range.
	bad2 := *ds
	bad2.BySource = make([][]Obs, len(ds.BySource))
	copy(bad2.BySource, ds.BySource)
	bad2.BySource[0] = append([]Obs(nil), ds.BySource[0]...)
	bad2.BySource[0][0].Value = 99
	if err := bad2.Validate(); err == nil {
		t.Error("Validate should catch out-of-range value")
	}
}
