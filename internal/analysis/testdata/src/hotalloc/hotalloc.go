// Package hotallocfix is the hotalloc fixture: one clean hot root that
// uses only permitted constructs, one hot root hitting every allocating
// construct, and a helper proving the walk follows static calls.
package hotallocfix

import "math"

// hotClean is allocation-free: arithmetic, an allowlisted math call,
// and append into a capacity-reused scratch buffer.
//
//copydetect:hotpath
func hotClean(buf, xs []float64) float64 {
	out := buf[:0]
	for _, x := range xs {
		out = append(out, math.Sqrt(x))
	}
	s := 0.0
	for _, v := range out {
		s += v
	}
	return s
}

// hotDirty trips one diagnostic per allocating construct.
//
//copydetect:hotpath
func hotDirty(xs []float64, n int, name string) string {
	tmp := make([]float64, n)
	var grown []float64
	grown = append(grown, tmp...)
	pair := []int{n, n}
	var sink interface{}
	sink = n
	_, _ = sink, pair
	go spin()
	f := func() int { return n }
	_ = f()
	label := name + "!"
	raw := []byte(label)
	_ = raw
	return scratch(label)
}

// scratch is reachable from hotDirty: its allocation is charged to the
// root that reaches it.
func scratch(s string) string {
	box := &node{val: s}
	return box.val
}

type node struct{ val string }

func spin() {}
