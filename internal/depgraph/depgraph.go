// Package depgraph post-processes pairwise copy-detection results into a
// copying dependency graph, separating direct copying relationships from
// correlations explained by co-copying or transitive copying — the
// distinction footnote 3 of the paper defers to Dong et al. (PVLDB 2010,
// "Global detection of complex copying relationships").
//
// The simplification implemented here follows that paper's core greedy
// idea: order the detected copying pairs by evidence strength (ascending
// Pr(S1⊥S2|Φ)) and accept an edge as direct only if its endpoints are not
// already connected through strictly stronger accepted edges. Pairs
// rejected this way are exactly the ones whose correlation the accepted
// subgraph already explains (A and B both copying C, or A copying B
// through C). The accepted edges form a forest per copier community, and
// the connected components recover the copier cliques.
package depgraph

import (
	"sort"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// Edge is one detected copying relationship.
type Edge struct {
	S1, S2 dataset.SourceID // S1 < S2
	// PrIndep is the posterior probability of independence (lower =
	// stronger copying evidence).
	PrIndep float64
	// PrTo is Pr(S1→S2|Φ), PrFrom is Pr(S2→S1|Φ); their ratio suggests
	// the copy direction.
	PrTo, PrFrom float64
	// Direct reports whether the edge survives transitive reduction.
	Direct bool
}

// Graph is the analyzed copying structure.
type Graph struct {
	NumSources int
	Edges      []Edge // all copying pairs, strongest first
	parent     []int32
}

// Analyze builds the dependency graph from a detection result.
func Analyze(res *core.Result) *Graph {
	g := &Graph{NumSources: res.NumSources}
	for _, pr := range res.Pairs {
		if !pr.Copying {
			continue
		}
		g.Edges = append(g.Edges, Edge{
			S1: pr.S1, S2: pr.S2,
			PrIndep: pr.PrIndep, PrTo: pr.PrTo, PrFrom: pr.PrFrom,
		})
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		if g.Edges[i].PrIndep != g.Edges[j].PrIndep {
			return g.Edges[i].PrIndep < g.Edges[j].PrIndep
		}
		// Deterministic tie-break.
		if g.Edges[i].S1 != g.Edges[j].S1 {
			return g.Edges[i].S1 < g.Edges[j].S1
		}
		return g.Edges[i].S2 < g.Edges[j].S2
	})

	g.parent = make([]int32, res.NumSources)
	for i := range g.parent {
		g.parent[i] = int32(i)
	}
	for i := range g.Edges {
		e := &g.Edges[i]
		if g.find(int32(e.S1)) != g.find(int32(e.S2)) {
			e.Direct = true
			g.union(int32(e.S1), int32(e.S2))
		}
	}
	return g
}

func (g *Graph) find(x int32) int32 {
	for g.parent[x] != x {
		g.parent[x] = g.parent[g.parent[x]]
		x = g.parent[x]
	}
	return x
}

func (g *Graph) union(a, b int32) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		g.parent[ra] = rb
	}
}

// DirectEdges returns the edges classified as direct copying.
func (g *Graph) DirectEdges() []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.Direct {
			out = append(out, e)
		}
	}
	return out
}

// TransitiveEdges returns the copying pairs whose correlation the direct
// edges already explain (co-copying or transitive copying).
func (g *Graph) TransitiveEdges() []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if !e.Direct {
			out = append(out, e)
		}
	}
	return out
}

// Cliques returns the copier communities: connected components of the
// copying graph with at least two members, each sorted by source id, and
// the components sorted by their smallest member.
func (g *Graph) Cliques() [][]dataset.SourceID {
	members := make(map[int32][]dataset.SourceID)
	seen := make(map[dataset.SourceID]bool)
	for _, e := range g.Edges {
		for _, s := range []dataset.SourceID{e.S1, e.S2} {
			if !seen[s] {
				seen[s] = true
				root := g.find(int32(s))
				members[root] = append(members[root], s)
			}
		}
	}
	var out [][]dataset.SourceID
	for _, m := range members {
		if len(m) >= 2 {
			sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Direction guesses the copy direction of an edge: +1 when S1 copies from
// S2 (PrTo dominates), -1 for the reverse, 0 when ambiguous (within a
// factor of two).
func (e Edge) Direction() int {
	switch {
	case e.PrTo > 2*e.PrFrom:
		return +1
	case e.PrFrom > 2*e.PrTo:
		return -1
	default:
		return 0
	}
}
