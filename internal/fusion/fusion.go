// Package fusion implements the truth-finding side of the iterative
// process of Section II: the ACCU-style data-fusion model of Dong et al.
// (VLDB 2009) that considers both source accuracy and copying. Each round
// it derives value probabilities from accuracy-weighted votes — where the
// vote of a source believed to copy is discounted by the probability its
// value was copied — and then recomputes source accuracies from the value
// probabilities. Combined with any copy detector from internal/core it
// forms the full loop the paper accelerates: copy detection → truth
// finding → source accuracy, until convergence.
//
//copydetect:deterministic
package fusion

import (
	"math"
	"sort"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// copyGraph gives, per source, its copying partners with the probability
// that the source copies from the partner, for vote discounting.
type copyGraph struct {
	partners [][]partner
}

type partner struct {
	other dataset.SourceID
	// prCopies is Pr(this source copies from other | Φ).
	prCopies float64
}

// newCopyGraph indexes the copying pairs of a detection result.
func newCopyGraph(res *core.Result) *copyGraph {
	g := &copyGraph{partners: make([][]partner, res.NumSources)}
	if res == nil {
		return g
	}
	for _, pr := range res.Pairs {
		if !pr.Copying {
			continue
		}
		// pr.PrTo is Pr(S1→S2|Φ): S1 copies from S2.
		g.partners[pr.S1] = append(g.partners[pr.S1], partner{other: pr.S2, prCopies: pr.PrTo})
		g.partners[pr.S2] = append(g.partners[pr.S2], partner{other: pr.S1, prCopies: pr.PrFrom})
	}
	return g
}

// ValueProbs computes P(D.v) for every observed value of every item. When
// g is non-nil, votes are discounted for copying: providers of a value are
// ranked by accuracy, and each provider's vote counts only with the
// probability it did not copy the value from a higher-ranked provider
// (independence factor I(S) of Dong et al.). The vote of source S is
// q(S)·I(S) with the accuracy score q(S) = ln(n·A(S)/(1−A(S))), and value
// probabilities follow from normalizing e^votes over the item's domain,
// including its unobserved false values.
func ValueProbs(ds *dataset.Dataset, st *bayes.State, p bayes.Params, g *copyGraph) [][]float64 {
	probs := make([][]float64, ds.NumItems())
	// Accuracy scores per source.
	q := make([]float64, ds.NumSources())
	for s, a := range st.A {
		q[s] = math.Log(p.N * a / (1 - a))
	}

	var provBuf []dataset.SourceID
	for d := range ds.ByItem {
		svs := ds.ByItem[d]
		nv := ds.NumValues(dataset.ItemID(d))
		votes := make([]float64, nv)
		if len(svs) > 0 {
			for v := 0; v < nv; v++ {
				provBuf = provBuf[:0]
				for _, sv := range svs {
					if int(sv.Value) == v {
						provBuf = append(provBuf, sv.Source)
					}
				}
				votes[v] = valueVote(provBuf, st, q, g)
			}
		}
		probs[d] = normalizeVotes(votes, p.N)
	}
	return probs
}

// valueVote accumulates the discounted votes of the providers of a value.
func valueVote(provs []dataset.SourceID, st *bayes.State, q []float64, g *copyGraph) float64 {
	if g == nil || len(provs) == 1 {
		sum := 0.0
		for _, s := range provs {
			sum += q[s]
		}
		return sum
	}
	// Rank providers by decreasing accuracy (ties by id) so the most
	// accurate provider of the value counts fully and likely copiers are
	// discounted against it.
	order := make([]dataset.SourceID, len(provs))
	copy(order, provs)
	sort.Slice(order, func(i, j int) bool {
		if st.A[order[i]] != st.A[order[j]] {
			return st.A[order[i]] > st.A[order[j]]
		}
		return order[i] < order[j]
	})
	rank := make(map[dataset.SourceID]int, len(order))
	for i, s := range order {
		rank[s] = i
	}
	sum := 0.0
	for i, s := range order {
		ind := 1.0
		for _, pt := range g.partners[s] {
			if r, ok := rank[pt.other]; ok && r < i {
				ind *= 1 - pt.prCopies
			}
		}
		sum += q[s] * ind
	}
	return sum
}

// normalizeVotes turns vote counts into probabilities over the item's
// domain: the observed values plus max(0, n+1−k) unobserved candidates
// with vote 0, computed in log space.
func normalizeVotes(votes []float64, n float64) []float64 {
	if len(votes) == 0 {
		return nil
	}
	m := 0.0 // unobserved candidates have vote 0
	for _, v := range votes {
		if v > m {
			m = v
		}
	}
	unobserved := n + 1 - float64(len(votes))
	if unobserved < 0 {
		unobserved = 0
	}
	den := unobserved * math.Exp(-m)
	for _, v := range votes {
		den += math.Exp(v - m)
	}
	probs := make([]float64, len(votes))
	for i, v := range votes {
		probs[i] = math.Exp(v-m) / den
	}
	return probs
}

// Accuracies recomputes A(S) as the average probability of the values the
// source provides, clamped into [0.01, 0.99].
func Accuracies(ds *dataset.Dataset, probs [][]float64) []float64 {
	acc := make([]float64, ds.NumSources())
	for s := range ds.BySource {
		obs := ds.BySource[s]
		if len(obs) == 0 {
			acc[s] = 0.5
			continue
		}
		sum := 0.0
		for _, o := range obs {
			sum += probs[o.Item][o.Value]
		}
		acc[s] = sum / float64(len(obs))
		if acc[s] < 0.01 {
			acc[s] = 0.01
		} else if acc[s] > 0.99 {
			acc[s] = 0.99
		}
	}
	return acc
}
