package copydetect

import (
	"fmt"
	"io"
	"math/rand"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/depgraph"
	"copydetect/internal/fusion"
	"copydetect/internal/gen"
	"copydetect/internal/metrics"
	"copydetect/internal/sample"
)

// Core data model (see internal/dataset).
type (
	// Dataset is an immutable collection of observations: which source
	// provides which value on which data item.
	Dataset = dataset.Dataset
	// Builder assembles a Dataset from named observations.
	Builder = dataset.Builder
	// SourceID, ItemID and ValueID are dense identifiers.
	SourceID = dataset.SourceID
	ItemID   = dataset.ItemID
	ValueID  = dataset.ValueID
	// DatasetStats summarizes a dataset (Table V style).
	DatasetStats = dataset.Stats
)

// NoValue marks a missing value or unknown truth.
const NoValue = dataset.NoValue

// Statistical model (see internal/bayes).
type (
	// Params holds the copying-model priors α, s and n.
	Params = bayes.Params
	// State carries value probabilities and source accuracies.
	State = bayes.State
)

// Detection (see internal/core).
type (
	// Detector runs one round of copy detection.
	Detector = core.Detector
	// Result is one round's outcome; PairResult one pair's.
	Result     = core.Result
	PairResult = core.PairResult
	// Stats counts computations and time.
	Stats = core.Stats
	// Options tunes the index-driven detectors.
	Options = core.Options
)

// Fusion (see internal/fusion).
type (
	// TruthFinder drives the iterative copy-detection / truth-finding
	// process.
	TruthFinder = fusion.TruthFinder
	// Outcome is the result of a full iterative run.
	Outcome = fusion.Outcome
)

// Generation and evaluation.
type (
	// GenConfig parameterizes the synthetic workload generator.
	GenConfig = gen.Config
	// CopyGroup plants one copier clique in a generated workload.
	CopyGroup = gen.CopyGroup
	// Planted is the generator's ground truth.
	Planted = gen.Planted
	// SampleResult is a sampled dataset plus its item mapping.
	SampleResult = sample.Result
	// PRF holds precision/recall/F-measure.
	PRF = metrics.PRF
)

// Dependency-graph analysis (see internal/depgraph).
type (
	// CopyGraph separates direct copying from co-/transitive copying and
	// recovers copier communities.
	CopyGraph = depgraph.Graph
	// CopyEdge is one copying relationship in a CopyGraph.
	CopyEdge = depgraph.Edge
)

// AnalyzeCopying post-processes a detection result into a dependency
// graph, classifying each copying pair as direct or explained by the
// stronger relationships around it (the footnote-3 extension).
func AnalyzeCopying(res *Result) *CopyGraph { return depgraph.Analyze(res) }

// ValuePopularities computes the empirical per-value false popularities
// used by the footnote-2 relaxation (see TruthFinder.UseValueDist).
func ValuePopularities(ds *Dataset) [][]float64 { return dataset.ValuePopularities(ds) }

// NewBuilder returns an empty dataset builder.
func NewBuilder() *Builder { return dataset.NewBuilder() }

// DefaultParams returns α=0.1, s=0.8, n=100 — the paper's experimental
// configuration.
func DefaultParams() Params { return bayes.DefaultParams() }

// Summarize computes dataset statistics.
func Summarize(ds *Dataset) DatasetStats { return dataset.Summarize(ds) }

// ReadJSON / WriteJSON / ReadCSV / WriteCSV (de)serialize datasets.
func ReadJSON(r io.Reader) (*Dataset, error)   { return dataset.ReadJSON(r) }
func WriteJSON(w io.Writer, ds *Dataset) error { return dataset.WriteJSON(w, ds) }
func ReadCSV(r io.Reader) (*Dataset, error)    { return dataset.ReadCSV(r) }
func WriteCSV(w io.Writer, ds *Dataset) error  { return dataset.WriteCSV(w, ds) }

// Algorithm selects a copy-detection algorithm.
type Algorithm int

const (
	// AlgorithmPairwise is the exhaustive baseline of Section II-B.
	AlgorithmPairwise Algorithm = iota
	// AlgorithmIndex is the inverted-index algorithm of Section III.
	AlgorithmIndex
	// AlgorithmBound adds early termination (Section IV-A).
	AlgorithmBound
	// AlgorithmBoundPlus adds lazy bound recomputation (Section IV-B).
	AlgorithmBoundPlus
	// AlgorithmHybrid combines Index and BoundPlus (Section IV end).
	AlgorithmHybrid
	// AlgorithmIncremental refines decisions across rounds (Section V).
	AlgorithmIncremental
)

func (a Algorithm) String() string {
	switch a {
	case AlgorithmPairwise:
		return "PAIRWISE"
	case AlgorithmIndex:
		return "INDEX"
	case AlgorithmBound:
		return "BOUND"
	case AlgorithmBoundPlus:
		return "BOUND+"
	case AlgorithmHybrid:
		return "HYBRID"
	case AlgorithmIncremental:
		return "INCREMENTAL"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// NewDetector builds a detector for an algorithm with the given priors and
// options (Options{} is a sensible default).
func NewDetector(a Algorithm, p Params, opts Options) Detector {
	switch a {
	case AlgorithmPairwise:
		return &core.Pairwise{Params: p, Workers: opts.Workers}
	case AlgorithmIndex:
		return &core.Index{Params: p, Opts: opts}
	case AlgorithmBound:
		return &core.Bound{Params: p, Opts: opts}
	case AlgorithmBoundPlus:
		return &core.BoundPlus{Params: p, Opts: opts}
	case AlgorithmHybrid:
		return &core.Hybrid{Params: p, Opts: opts}
	case AlgorithmIncremental:
		return &core.Incremental{Params: p, Opts: opts}
	default:
		panic(fmt.Sprintf("copydetect: unknown algorithm %d", int(a)))
	}
}

// Detect runs the full iterative copy-detection and truth-finding process
// on ds with the chosen algorithm and default driver settings.
func Detect(ds *Dataset, a Algorithm, p Params) *Outcome {
	return DetectWithOptions(ds, a, p, Options{})
}

// DetectWithOptions is Detect with explicit detector options — most
// usefully Options{Workers: N}, which shards detection over N goroutines
// for every algorithm in the family. Results are bit-identical to the
// sequential run for any worker count; see Options.Workers.
func DetectWithOptions(ds *Dataset, a Algorithm, p Params, opts Options) *Outcome {
	tf := &TruthFinder{Params: p}
	return tf.Run(ds, NewDetector(a, p, opts))
}

// DetectSampled runs the iterative process with copy detection restricted
// to a sampled dataset (see ScaleSample) while truth finding uses the full
// dataset — the paper's SCALESAMPLE configuration when combined with
// AlgorithmIncremental.
func DetectSampled(ds *Dataset, s SampleResult, a Algorithm, p Params) *Outcome {
	return DetectSampledWithOptions(ds, s, a, p, Options{})
}

// DetectSampledWithOptions is DetectSampled with explicit detector
// options, e.g. Options{Workers: N} for parallel detection.
func DetectSampledWithOptions(ds *Dataset, s SampleResult, a Algorithm, p Params, opts Options) *Outcome {
	tf := &TruthFinder{Params: p, DetectDataset: s.Dataset, ItemMap: s.ItemMap}
	return tf.Run(ds, NewDetector(a, p, opts))
}

// ScaleSample draws the paper's coverage-aware sample: rate·|items| random
// items, topped up so every source keeps at least minPerSource of its own
// items (the paper uses 4).
func ScaleSample(ds *Dataset, rate float64, minPerSource int, seed int64) SampleResult {
	return sample.ScaleSample(ds, rate, minPerSource, rand.New(rand.NewSource(seed)))
}

// SampleByItem and SampleByCell are the naive strategies the paper
// compares against.
func SampleByItem(ds *Dataset, rate float64, seed int64) SampleResult {
	return sample.ByItem(ds, rate, rand.New(rand.NewSource(seed)))
}

func SampleByCell(ds *Dataset, cellRate float64, seed int64) SampleResult {
	return sample.ByCell(ds, cellRate, rand.New(rand.NewSource(seed)))
}

// Generate materializes a synthetic workload; BookCSConfig and friends
// return the presets matching the paper's four datasets, and ScaleConfig
// shrinks them.
func Generate(cfg GenConfig) (*Dataset, *Planted, error) { return gen.Generate(cfg) }

func BookCSConfig(seed int64) GenConfig    { return gen.BookCS(seed) }
func BookFullConfig(seed int64) GenConfig  { return gen.BookFull(seed) }
func Stock1DayConfig(seed int64) GenConfig { return gen.Stock1Day(seed) }
func Stock2WkConfig(seed int64) GenConfig  { return gen.Stock2Wk(seed) }
func ScaleConfig(cfg GenConfig, f float64) GenConfig {
	return gen.Scale(cfg, f)
}

// MotivatingExample returns the paper's Table I dataset and its source
// accuracies — handy for experimentation and tests.
func MotivatingExample() (*Dataset, []float64) { return dataset.Motivating() }

// ComparePairs scores one detection result against another (the paper
// compares everything to PAIRWISE).
func ComparePairs(test, ref *Result) PRF { return metrics.CopyPRF(test, ref) }

// FusionAccuracy, FusionDifference and AccuracyVariance are the
// truth-discovery quality measures of Section VI-A.
func FusionAccuracy(ds *Dataset, decided []ValueID) (float64, int) {
	return metrics.FusionAccuracy(ds, decided)
}

func FusionDifference(a, b []ValueID) float64 { return metrics.FusionDifference(a, b) }

func AccuracyVariance(a, b []float64) float64 { return metrics.AccuracyVariance(a, b) }
