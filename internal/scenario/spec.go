// Package scenario turns copyload from a flat-rate load generator into
// a declarative workload engine: a JSON spec names phases (duration,
// target rate, client mix, bursts, failure injections), the synthetic
// datasets they stream (gen presets with Scale factors, zipfian
// popularity, source churn, and the planted copier cliques that come
// with them), and the SLOs a run must hold. The executor follows the
// phases against a copydetectd daemon or a copygate cluster, scrapes
// /metrics at phase boundaries, quiesces, scores detection quality
// against the planted truth, and emits a machine-readable verdict —
// the soak harness that converts "survives our four tests" into
// "provable against any workload we can describe in a file".
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"copydetect/internal/gen"
)

// Duration is a time.Duration that marshals as the human string form
// ("250ms", "5s") a scenario file uses.
type Duration struct{ time.Duration }

// UnmarshalJSON accepts either a duration string or a number of
// nanoseconds (the raw Go encoding), so specs round-trip.
func (d *Duration) UnmarshalJSON(raw []byte) error {
	var s string
	if err := json.Unmarshal(raw, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		d.Duration = dd
		return nil
	}
	var n int64
	if err := json.Unmarshal(raw, &n); err != nil {
		return fmt.Errorf("scenario: duration must be a string like \"5s\": got %s", raw)
	}
	d.Duration = time.Duration(n)
	return nil
}

// MarshalJSON renders the string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// Spec is one declarative scenario: what to stream, in which phases,
// and which SLOs the run must hold.
type Spec struct {
	// Name labels the verdict.
	Name string `json:"name"`
	// Datasets declares the synthetic workloads, in groups. Dataset i
	// (across all groups, in declaration order) is named
	// "<prefix>-<i>".
	Datasets []DatasetGroup `json:"datasets"`
	// Zipf skews dataset popularity: the probability that the next
	// batch goes to dataset rank i is ∝ 1/(i+1)^Zipf (rank = declaration
	// order, so earlier datasets are hotter). 0 = uniform.
	Zipf float64 `json:"zipf,omitempty"`
	// Batch is the number of observations per append (default 500).
	Batch int `json:"batch,omitempty"`
	// Phases run in order; the scenario ends after the last one.
	Phases []Phase `json:"phases"`
	// SLO, when present, is asserted after the run (a -slo file
	// overrides it).
	SLO *SLO `json:"slo,omitempty"`
}

// DatasetGroup declares Count datasets generated from one gen preset.
type DatasetGroup struct {
	// Count is the number of datasets in the group (default 1).
	Count int `json:"count,omitempty"`
	// Preset names the generator configuration: book-cs, book-full,
	// stock-1day or stock-2wk.
	Preset string `json:"preset"`
	// Scale is the gen.Scale factor applied to the preset (default 1).
	Scale float64 `json:"scale,omitempty"`
	// Seed is the base RNG seed; dataset j of the group uses Seed+j.
	Seed int64 `json:"seed"`
	// Prefix overrides the default dataset name prefix "scn".
	Prefix string `json:"prefix,omitempty"`
	// Churn, when present, holds back a late cohort of sources and
	// streams them in waves (gen.ChurnRecords), so new feeds join
	// mid-run while exhausted early feeds go quiet.
	Churn *Churn `json:"churn,omitempty"`
}

// Churn configures source churn for a dataset group.
type Churn struct {
	// Waves is the total number of join cohorts (>= 2 to churn).
	Waves int `json:"waves"`
	// LateFraction of the sources are held back for waves 1..Waves-1.
	LateFraction float64 `json:"lateFraction"`
}

// Phase is one load regime.
type Phase struct {
	Name string `json:"name"`
	// Duration bounds the phase in wall time.
	Duration Duration `json:"duration"`
	// Rate is the target append rate in batches/second across all
	// clients (0 = as fast as the target absorbs).
	Rate float64 `json:"rate,omitempty"`
	// Clients is the number of concurrent client connections (default
	// 4). Each dataset is owned by exactly one client per phase, so
	// appends stay sequential.
	Clients int `json:"clients,omitempty"`
	// Reads is the average number of detection reads (GET /copies)
	// issued per successful append, exercising the read path alongside
	// the write path. 0 = write-only.
	Reads float64 `json:"reads,omitempty"`
	// Burst superimposes periodic rate spikes on Rate.
	Burst *Burst `json:"burst,omitempty"`
	// Inject schedules failure injections at offsets into the phase.
	Inject []InjectStep `json:"inject,omitempty"`
}

// Burst periodically multiplies the phase rate: for Length out of
// every Every, the target rate is Rate*Factor.
type Burst struct {
	Every  Duration `json:"every"`
	Length Duration `json:"length"`
	Factor float64  `json:"factor"`
}

// InjectStep is one failure injection, dispatched to the embedder's
// Injector at offset At into the phase. The engine defines the shape;
// what an action means is up to the injector (cmd/copyload's kills or
// pauses backend processes by PID, the cluster e2e kills its child
// processes directly).
type InjectStep struct {
	// At is the offset into the phase.
	At Duration `json:"at"`
	// Action names the injection: kill-backend, pause-backend,
	// resume-backend, or exec.
	Action string `json:"action"`
	// Backend indexes the backend the action targets (for the
	// *-backend actions).
	Backend int `json:"backend,omitempty"`
	// Cmd is the argv for the exec action.
	Cmd []string `json:"cmd,omitempty"`
}

// SLO declares the bounds a run must hold. Zero-valued fields are not
// asserted.
type SLO struct {
	// P99AppendMillis bounds the per-phase p99 append latency.
	P99AppendMillis float64 `json:"p99AppendMillis,omitempty"`
	// Zero5xxDuringKill asserts that phases containing inject steps
	// surface zero 5xx responses — both as observed by the executor and
	// as counted by the scraped server-side request counters. 429s are
	// backpressure, allowed and tallied separately.
	Zero5xxDuringKill bool `json:"zero5xxDuringKill,omitempty"`
	// QuiesceSeconds bounds the post-run drive to convergence
	// (convergence lag: how far behind detection is allowed to be once
	// the load stops).
	QuiesceSeconds float64 `json:"quiesceSeconds,omitempty"`
	// MinPrecision/MinRecall bound detection quality against the
	// planted copier truth: recall over the direct copier→origin pairs,
	// precision against the clique closure (an intra-clique
	// copier–copier detection is transitive, not false).
	MinPrecision float64 `json:"minPrecision,omitempty"`
	MinRecall    float64 `json:"minRecall,omitempty"`
	// RateTolerance is the allowed relative deviation of a rated
	// phase's achieved append rate from its target (default 0.10).
	RateTolerance float64 `json:"rateTolerance,omitempty"`
}

// knownActions is the validation set for InjectStep.Action.
var knownActions = map[string]bool{
	"kill-backend":   true,
	"pause-backend":  true,
	"resume-backend": true,
	"exec":           true,
}

// Load reads and validates a scenario file.
func Load(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(raw)
}

// Parse decodes and validates a scenario spec.
func Parse(raw []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSLO reads an SLO block from its own file (the -slo flag).
func LoadSLO(path string) (*SLO, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var s SLO
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("scenario: slo %s: %w", path, err)
	}
	return &s, nil
}

// Validate checks the spec and fills no defaults (the executor applies
// them at run time, so a marshaled spec stays what was written).
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name is required")
	}
	if len(s.Datasets) == 0 {
		return fmt.Errorf("scenario: at least one dataset group is required")
	}
	for i, g := range s.Datasets {
		if g.Count < 0 {
			return fmt.Errorf("scenario: dataset group %d: count must be >= 0", i)
		}
		switch g.Preset {
		case "book-cs", "book-full", "stock-1day", "stock-2wk":
		default:
			return fmt.Errorf("scenario: dataset group %d: unknown preset %q", i, g.Preset)
		}
		if g.Scale < 0 {
			return fmt.Errorf("scenario: dataset group %d: scale must be >= 0", i)
		}
		if c := g.Churn; c != nil {
			if c.Waves < 2 {
				return fmt.Errorf("scenario: dataset group %d: churn needs waves >= 2", i)
			}
			if c.LateFraction <= 0 || c.LateFraction >= 1 {
				return fmt.Errorf("scenario: dataset group %d: churn lateFraction must be in (0,1)", i)
			}
		}
	}
	if s.Zipf < 0 {
		return fmt.Errorf("scenario: zipf must be >= 0")
	}
	if s.Batch < 0 {
		return fmt.Errorf("scenario: batch must be >= 0")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario: at least one phase is required")
	}
	for i, p := range s.Phases {
		if p.Name == "" {
			return fmt.Errorf("scenario: phase %d: name is required", i)
		}
		if p.Duration.Duration <= 0 {
			return fmt.Errorf("scenario: phase %q: duration must be positive", p.Name)
		}
		if p.Rate < 0 || p.Rate > 1e6 {
			return fmt.Errorf("scenario: phase %q: rate must be between 0 and 1e6", p.Name)
		}
		if p.Clients < 0 {
			return fmt.Errorf("scenario: phase %q: clients must be >= 0", p.Name)
		}
		if p.Reads < 0 {
			return fmt.Errorf("scenario: phase %q: reads must be >= 0", p.Name)
		}
		if b := p.Burst; b != nil {
			if p.Rate <= 0 {
				return fmt.Errorf("scenario: phase %q: burst needs a base rate", p.Name)
			}
			if b.Every.Duration <= 0 || b.Length.Duration <= 0 || b.Length.Duration > b.Every.Duration {
				return fmt.Errorf("scenario: phase %q: burst needs 0 < length <= every", p.Name)
			}
			if b.Factor <= 0 {
				return fmt.Errorf("scenario: phase %q: burst factor must be positive", p.Name)
			}
		}
		for j, st := range p.Inject {
			if !knownActions[st.Action] {
				return fmt.Errorf("scenario: phase %q inject %d: unknown action %q", p.Name, j, st.Action)
			}
			if st.At.Duration < 0 || st.At.Duration > p.Duration.Duration {
				return fmt.Errorf("scenario: phase %q inject %d: at outside the phase", p.Name, j)
			}
			if st.Action == "exec" && len(st.Cmd) == 0 {
				return fmt.Errorf("scenario: phase %q inject %d: exec needs cmd", p.Name, j)
			}
			if st.Action != "exec" && st.Backend < 0 {
				return fmt.Errorf("scenario: phase %q inject %d: backend must be >= 0", p.Name, j)
			}
		}
	}
	if s.SLO != nil {
		if err := s.SLO.validate(); err != nil {
			return err
		}
	}
	return nil
}

func (s *SLO) validate() error {
	if s.P99AppendMillis < 0 || s.QuiesceSeconds < 0 || s.RateTolerance < 0 {
		return fmt.Errorf("scenario: slo bounds must be >= 0")
	}
	if s.MinPrecision < 0 || s.MinPrecision > 1 || s.MinRecall < 0 || s.MinRecall > 1 {
		return fmt.Errorf("scenario: slo precision/recall bounds must be in [0,1]")
	}
	return nil
}

// TotalDatasets is the number of datasets the spec declares.
func (s *Spec) TotalDatasets() int {
	n := 0
	for _, g := range s.Datasets {
		n += g.groupCount()
	}
	return n
}

func (g *DatasetGroup) groupCount() int {
	if g.Count == 0 {
		return 1
	}
	return g.Count
}

// presetConfig resolves a validated preset name.
func presetConfig(name string, seed int64) gen.Config {
	switch name {
	case "book-full":
		return gen.BookFull(seed)
	case "stock-1day":
		return gen.Stock1Day(seed)
	case "stock-2wk":
		return gen.Stock2Wk(seed)
	default:
		return gen.BookCS(seed)
	}
}
