package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if len(s) != 3 || Words(130) != 3 {
		t.Fatalf("New(130) has %d words, want 3", len(s))
	}
	for _, i := range []int{0, 63, 64, 129} {
		if s.Has(i) {
			t.Fatalf("fresh set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Add(%d) not visible", i)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
}

// TestAndOpsMatchMaps: AndCount and ForEachAnd must agree with a naive
// map-based intersection on random sets, including the ascending
// iteration order ForEachAnd promises.
func TestAndOpsMatchMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		a, b := New(n), New(n)
		inA := map[int]bool{}
		inB := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				a.Add(i)
				inA[i] = true
			}
			if rng.Intn(3) == 0 {
				b.Add(i)
				inB[i] = true
			}
		}
		var want []int
		for i := 0; i < n; i++ {
			if inA[i] && inB[i] {
				want = append(want, i)
			}
		}
		if got := AndCount(a, b); got != len(want) {
			t.Fatalf("n=%d AndCount = %d, want %d", n, got, len(want))
		}
		var got []int
		ForEachAnd(a, b, func(i int) { got = append(got, i) })
		if len(got) != len(want) {
			t.Fatalf("n=%d ForEachAnd visited %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d element %d: got %d, want %d (order must be ascending)", n, i, got[i], want[i])
			}
		}
	}
}
