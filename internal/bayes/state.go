package bayes

import "math"

// State carries the statistical knowledge that copy detection consumes and
// truth finding produces each round: per-value truth probabilities P(D.v)
// and per-source accuracies A(S).
type State struct {
	// P[d][v] is the probability that value v is the true value of item d.
	P [][]float64
	// A[s] is the accuracy of source s: the fraction of its values that
	// are true, interpreted as the probability it provides a true value.
	A []float64
	// Pop, when non-nil, holds per-value false popularities for the
	// footnote-2 relaxation: Pop[d][v] replaces the uniform 1/n as the
	// probability that a wrong source provides exactly value v. It is a
	// static property of the observations and is shared, not cloned.
	Pop [][]float64
}

// NewState allocates a state for the given per-item value counts and
// number of sources, with every accuracy set to a0 and value probabilities
// uniform over each item's observed values.
func NewState(valueCounts []int, numSources int, a0 float64) *State {
	st := &State{
		P: make([][]float64, len(valueCounts)),
		A: make([]float64, numSources),
	}
	for d, k := range valueCounts {
		st.P[d] = make([]float64, k)
		if k > 0 {
			u := 1 / float64(k)
			for v := range st.P[d] {
				st.P[d][v] = u
			}
		}
	}
	for s := range st.A {
		st.A[s] = a0
	}
	return st
}

// Clone deep-copies the mutable parts of the state (P and A); the static
// popularity table is shared.
func (st *State) Clone() *State {
	c := &State{
		P:   make([][]float64, len(st.P)),
		A:   append([]float64(nil), st.A...),
		Pop: st.Pop,
	}
	for d := range st.P {
		c.P[d] = append([]float64(nil), st.P[d]...)
	}
	return c
}

// PopOf returns the false popularity of value v of item d, or 0 (meaning
// "uniform 1/n") when the relaxation is off.
func (st *State) PopOf(d, v int32) float64 {
	if st.Pop == nil {
		return 0
	}
	return st.Pop[d][v]
}

// ClampAccuracy bounds all accuracies into [lo, hi]; the Bayesian formulas
// degenerate at exactly 0 or 1.
func (st *State) ClampAccuracy(lo, hi float64) {
	for s, a := range st.A {
		if a < lo {
			st.A[s] = lo
		} else if a > hi {
			st.A[s] = hi
		}
	}
}

// MaxAccuracyDelta returns the largest absolute accuracy difference
// between two states, the convergence measure of the iterative process.
func MaxAccuracyDelta(a, b *State) float64 {
	d := 0.0
	for s := range a.A {
		if diff := math.Abs(a.A[s] - b.A[s]); diff > d {
			d = diff
		}
	}
	return d
}
