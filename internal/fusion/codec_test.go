package fusion

import (
	"bytes"
	"reflect"
	"testing"

	"copydetect/internal/binio"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
)

// TestOutcomeCodecRoundtrip runs the real iterative process and checks
// the outcome survives encode/decode bit-exactly — the property the
// durable server's snapshots depend on.
func TestOutcomeCodecRoundtrip(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	tf := &TruthFinder{Params: p}
	out := tf.Run(ds, &core.Hybrid{Params: p})
	if out == nil {
		t.Fatal("Run returned nil")
	}

	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	EncodeOutcome(w, out)
	if err := w.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeOutcome(binio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("outcome did not survive the roundtrip:\n got  %+v\n want %+v", got, out)
	}

	// With the footnote-2 popularity table present.
	tf = &TruthFinder{Params: p, UseValueDist: true}
	out = tf.Run(ds, &core.Hybrid{Params: p})
	buf.Reset()
	w = binio.NewWriter(&buf)
	EncodeOutcome(w, out)
	got, err = DecodeOutcome(binio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode with Pop: %v", err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatal("outcome with popularity table did not survive the roundtrip")
	}
}

func TestOutcomeCodecRejectsTruncation(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	out := (&TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	EncodeOutcome(w, out)
	for _, n := range []int{0, 1, buf.Len() / 2, buf.Len() - 1} {
		if _, err := DecodeOutcome(binio.NewReader(bytes.NewReader(buf.Bytes()[:n]))); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}
