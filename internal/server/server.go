// Package server is the serving layer behind cmd/copydetectd: a registry
// of named datasets that accepts streamed observation appends and keeps a
// cached copy-detection result per dataset, recomputed asynchronously by
// a dirty-dataset scheduler.
//
// The contract is batch equivalence: every detection round runs the full
// iterative process (fusion.TruthFinder) on an immutable snapshot of all
// observations appended so far, so once a dataset quiesces — no pending
// appends, no in-flight round — its published result is byte-identical
// (up to wall-clock timers) to a one-shot batch Detect over the same
// final dataset with the same algorithm, parameters and worker count.
// Reads never block on detection: they serve the last published round,
// versioned by an ETag.
//
// The first round of a dataset runs HYBRID (there is no previous decision
// to refine); every later round runs INCREMENTAL, whose warm phase is
// HYBRID and whose remaining rounds reuse the entry classification of
// Section V across the rounds of the iterative process. When an append
// arrives while a round is in flight, the round's snapshot is stale: the
// scheduler cancels it between iterative rounds (fusion.TruthFinder.Cancel)
// and reschedules the dataset.
package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
)

// Config tunes a Registry.
type Config struct {
	// Params are the copying-model priors used for every dataset that
	// does not override them. The zero value selects the paper's
	// defaults (α=0.1, s=0.8, n=100).
	Params bayes.Params
	// Options are the detector options used for every dataset that does
	// not override them; Options.Workers shards each detection round.
	Options core.Options
	// Concurrency caps how many datasets may run detection rounds at the
	// same time (default 1). Rounds for a single dataset never overlap.
	Concurrency int
}

// ErrNotFound reports an unknown (or deleted) dataset name.
var ErrNotFound = fmt.Errorf("server: dataset not found")

// ErrExists reports a Create for a name already registered.
var ErrExists = fmt.Errorf("server: dataset already exists")

// Published is the immutable outcome of one completed detection round.
// Everything it points to is a snapshot: readers may use it without
// locking, concurrently with later appends and rounds.
type Published struct {
	// Version is the append version the round's snapshot was built at;
	// Round counts completed rounds for the dataset, starting at 1.
	Version uint64
	Round   int
	// Algorithm is "HYBRID" for the first round, "INCREMENTAL" after.
	Algorithm string
	// Snapshot is the dataset the round detected on.
	Snapshot *dataset.Dataset
	// Outcome is the full iterative result (copying pairs, truths,
	// state, per-round stats).
	Outcome *fusion.Outcome
	// Wall is the end-to-end duration of the round.
	Wall time.Duration
}

// Managed is one named dataset under registry management. All methods
// are safe for concurrent use.
type Managed struct {
	name   string
	gen    uint64 // registry-wide creation counter, disambiguates ETags across delete/recreate
	params bayes.Params
	opts   core.Options
	reg    *Registry

	mu      sync.Mutex
	cond    *sync.Cond
	builder *dataset.Builder
	version uint64 // bumped on every accepted append batch
	dirty   bool   // appends not yet covered by a completed round
	running bool   // a round is in flight
	closed  bool
	cancel  chan struct{} // closes to abort the in-flight round

	pub *Published
}

// Info is a point-in-time summary of a managed dataset.
type Info struct {
	Name         string  `json:"name"`
	Version      uint64  `json:"version"`
	Sources      int     `json:"sources"`
	Items        int     `json:"items"`
	Observations int     `json:"observations"`
	Converged    bool    `json:"converged"`
	Workers      int     `json:"workers"`
	Alpha        float64 `json:"alpha"`
	S            float64 `json:"s"`
	N            float64 `json:"n"`

	// Served* describe the published round (zero before the first one).
	ServedVersion uint64 `json:"servedVersion"`
	Round         int    `json:"round"`
	Algorithm     string `json:"algorithm,omitempty"`
}

// Registry holds the managed datasets and runs their detection rounds on
// a dirty-dataset scheduler.
type Registry struct {
	params      bayes.Params
	opts        core.Options
	concurrency int

	mu     sync.Mutex
	sets   map[string]*Managed
	gen    uint64 // bumped per Create
	closed bool

	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRegistry starts a registry and its scheduler goroutine. Close it to
// stop detection and release the goroutine.
func NewRegistry(cfg Config) *Registry {
	if (cfg.Params == bayes.Params{}) {
		cfg.Params = bayes.DefaultParams()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	r := &Registry{
		params:      cfg.Params,
		opts:        cfg.Options,
		concurrency: cfg.Concurrency,
		sets:        make(map[string]*Managed),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
	}
	r.wg.Add(1)
	go r.scheduler()
	return r
}

// Close stops the scheduler, cancels in-flight rounds and waits for them
// to return. The registry must not be used afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sets := make([]*Managed, 0, len(r.sets))
	for _, m := range r.sets {
		sets = append(sets, m)
	}
	r.mu.Unlock()
	for _, m := range sets {
		m.shut()
	}
	close(r.stop)
	r.wg.Wait()
}

// DatasetConfig overrides registry defaults for one dataset. Zero fields
// inherit the registry configuration.
type DatasetConfig struct {
	Params  bayes.Params
	Workers int
}

// Create registers an empty dataset. It fails with ErrExists when the
// name is taken and validates any overridden priors.
func (r *Registry) Create(name string, cfg DatasetConfig) (*Managed, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty dataset name")
	}
	params := r.params
	if (cfg.Params != bayes.Params{}) {
		params = cfg.Params
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", name, err)
		}
	}
	opts := r.opts
	if cfg.Workers != 0 {
		opts.Workers = cfg.Workers
	}
	m := &Managed{
		name:    name,
		params:  params,
		opts:    opts,
		reg:     r,
		builder: dataset.NewBuilder(),
	}
	m.cond = sync.NewCond(&m.mu)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server: registry closed")
	}
	if _, ok := r.sets[name]; ok {
		return nil, ErrExists
	}
	r.gen++
	m.gen = r.gen
	r.sets[name] = m
	return m, nil
}

// Get returns the managed dataset with the given name.
func (r *Registry) Get(name string) (*Managed, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.sets[name]
	return m, ok
}

// Delete unregisters a dataset, cancelling its in-flight round if any.
// It reports whether the name existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	m, ok := r.sets[name]
	if ok {
		delete(r.sets, name)
	}
	r.mu.Unlock()
	if ok {
		m.shut()
	}
	return ok
}

// List returns the registered dataset names in sorted order.
func (r *Registry) List() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.sets))
	for name := range r.sets {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Quiesce blocks until the named dataset has converged — every append is
// covered by a completed detection round — and returns the published
// result (nil for a dataset that never received observations). It
// returns early with the context error on cancellation and ErrNotFound
// if the dataset is deleted while waiting.
func (r *Registry) Quiesce(ctx context.Context, name string) (*Published, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, ErrNotFound
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		case <-watchDone:
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.convergedLocked() && !m.closed && ctx.Err() == nil {
		m.cond.Wait()
	}
	if m.closed {
		return nil, ErrNotFound
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.pub, nil
}

// kickAsync nudges the scheduler without blocking.
func (r *Registry) kickAsync() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// scheduler is the registry's dirty-dataset loop: whenever kicked it
// claims every dirty dataset without an in-flight round and runs one
// detection round for each, at most concurrency at a time.
func (r *Registry) scheduler() {
	defer r.wg.Done()
	sem := make(chan struct{}, r.concurrency)
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		}
		for {
			m := r.claimDirty()
			if m == nil {
				break
			}
			select {
			case sem <- struct{}{}:
			case <-r.stop:
				m.mu.Lock()
				m.running = false
				m.cond.Broadcast()
				m.mu.Unlock()
				return
			}
			r.wg.Add(1)
			go func(m *Managed) {
				defer r.wg.Done()
				defer func() { <-sem }()
				m.runRound()
				// The dataset may have gone dirty again mid-round
				// (cancelled or stale snapshot): let the loop reclaim it.
				r.kickAsync()
			}(m)
		}
	}
}

// claimDirty picks a dirty, idle dataset (smallest name first, for
// determinism) and marks it running.
func (r *Registry) claimDirty() *Managed {
	r.mu.Lock()
	names := make([]string, 0, len(r.sets))
	for name := range r.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	sets := make([]*Managed, 0, len(names))
	for _, name := range names {
		sets = append(sets, r.sets[name])
	}
	r.mu.Unlock()
	for _, m := range sets {
		m.mu.Lock()
		if m.dirty && !m.running && !m.closed {
			m.running = true
			m.mu.Unlock()
			return m
		}
		m.mu.Unlock()
	}
	return nil
}

// Append adds a batch of named observations (and optional gold-standard
// truths, with Record.Source empty) to the dataset and schedules a
// detection round. It returns the new append version and the total
// number of observation cells.
func (m *Managed) Append(obs, truth []dataset.Record) (version uint64, total int, err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, 0, ErrNotFound
	}
	m.builder.AddRecords(obs)
	for _, tr := range truth {
		m.builder.SetTruth(tr.Item, tr.Value)
	}
	m.version++
	m.dirty = true
	if m.cancel != nil {
		// The in-flight round detects a snapshot this batch is not in;
		// abort it rather than publish a result we would discard.
		close(m.cancel)
		m.cancel = nil
	}
	version, total = m.version, m.builder.NumObservations()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.reg.kickAsync()
	return version, total, nil
}

// Published returns the last completed round, or nil before the first.
func (m *Managed) Published() *Published {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pub
}

// Converged reports whether the published result covers every append.
func (m *Managed) Converged() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.convergedLocked()
}

// ReadState returns the published round together with a convergence
// flag computed against that same round, plus its ETag — one consistent
// snapshot for the read endpoints, so a body can never pair one round's
// data with another round's convergence claim or tag.
func (m *Managed) ReadState() (pub *Published, converged bool, etag string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pub, m.convergedLocked(), m.etagLocked()
}

// Info returns a point-in-time summary.
func (m *Managed) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	inf := Info{
		Name:         m.name,
		Version:      m.version,
		Sources:      m.builder.NumSources(),
		Items:        m.builder.NumItems(),
		Observations: m.builder.NumObservations(),
		Converged:    m.convergedLocked(),
		Workers:      m.opts.Workers,
		Alpha:        m.params.Alpha,
		S:            m.params.S,
		N:            m.params.N,
	}
	if m.pub != nil {
		inf.ServedVersion = m.pub.Version
		inf.Round = m.pub.Round
		inf.Algorithm = m.pub.Algorithm
	}
	return inf
}

// etagLocked identifies the served result: it changes exactly when a
// new round is published. The creation generation keeps tags from a
// deleted dataset invalid against a recreated one of the same name.
func (m *Managed) etagLocked() string {
	v, round := uint64(0), 0
	if m.pub != nil {
		v, round = m.pub.Version, m.pub.Round
	}
	return fmt.Sprintf("%q", fmt.Sprintf("%s-g%d-v%d-r%d", m.name, m.gen, v, round))
}

func (m *Managed) convergedLocked() bool {
	if m.dirty || m.running {
		return false
	}
	if m.pub == nil {
		return m.version == 0 // empty dataset: trivially converged
	}
	return m.pub.Version == m.version
}

// shut marks the dataset closed and aborts its in-flight round.
func (m *Managed) shut() {
	m.mu.Lock()
	m.closed = true
	if m.cancel != nil {
		close(m.cancel)
		m.cancel = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// runRound executes one detection round: snapshot the builder, run the
// full iterative process on it, and publish the outcome if the snapshot
// is still current. Stale or cancelled rounds re-mark the dataset dirty.
func (m *Managed) runRound() {
	m.mu.Lock()
	if m.closed || !m.dirty {
		m.running = false
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	version := m.version
	m.dirty = false
	cancel := make(chan struct{})
	m.cancel = cancel
	snap := m.builder.Build()
	round := 1
	algo := "HYBRID"
	var det core.Detector = &core.Hybrid{Params: m.params, Opts: m.opts}
	if m.pub != nil {
		round = m.pub.Round + 1
		algo = "INCREMENTAL"
		det = &core.Incremental{Params: m.params, Opts: m.opts}
	}
	m.mu.Unlock()

	// params and opts are immutable after Create; no lock needed here.
	tf := &fusion.TruthFinder{Params: m.params, Cancel: cancel}
	start := time.Now()
	out := tf.Run(snap, det)
	wall := time.Since(start)

	m.mu.Lock()
	if m.cancel == cancel {
		m.cancel = nil
	}
	m.running = false
	if out != nil && !m.closed && m.version == version {
		m.pub = &Published{
			Version:   version,
			Round:     round,
			Algorithm: algo,
			Snapshot:  snap,
			Outcome:   out,
			Wall:      wall,
		}
	} else if !m.closed {
		// Cancelled or stale: the appends that invalidated this round
		// already set dirty, but a cancelled round with no version change
		// cannot happen, so this is belt and braces.
		m.dirty = true
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
