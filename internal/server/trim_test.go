// Compaction/trim boundary tests (ISSUE 5): the WAL prefix a snapshot
// covers may be trimmed, but never a record of an acknowledged append
// that is not yet registered for trimming — and a snapshot landing
// exactly at a segment rotation must leave recovery with the rounds
// counter intact.
package server

import (
	"context"
	"testing"

	"copydetect/internal/core"
)

// TestCompactionDoesNotTrimInflightAppend is the regression test for
// the trim-at-segment-boundary bug: an append whose WAL record is
// written (and about to be acknowledged) but not yet registered in the
// pending list must survive a concurrent compaction that trims up to
// the log's NextLSN — when a rotation closes the record's segment at
// exactly that moment, the old trim bound deleted the segment and the
// acknowledged batch silently vanished at the next recovery. The test
// drives the exact interleaving through the append path's test hook.
func TestCompactionDoesNotTrimInflightAppend(t *testing.T) {
	testWALSegmentBytes = 64 // rotate after every append-sized record
	defer func() { testWALSegmentBytes = 0 }()

	dir := t.TempDir()
	reg, err := Open(Config{
		Options: core.Options{Workers: 1},
		DataDir: dir,
		// The background compactor must not run on its own: the test
		// triggers each snapshot+trim by hand, at exactly the boundary
		// it wants, and an automatic snapshot after the second append
		// would mask the trim bug.
		SnapshotEvery: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The crash below abandons reg without Close (Close would snapshot
	// the lost batch back into existence); this only stops its
	// goroutines once every assertion has run.
	defer reg.Close()
	m, err := reg.Create("inflight", DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Append(batchN("one", 6), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Quiesce(context.Background(), "inflight"); err != nil {
		t.Fatal(err)
	}
	// Round 1's compaction, deterministically: snapshot written, pending
	// pruned, covered segments trimmed.
	m.snapshot(false)

	hookRan := false
	testHookAfterWALAppend = func(mm *Managed) {
		if mm != m || hookRan {
			return
		}
		hookRan = true
		// The in-flight append record has filled the active segment past
		// the rotation threshold; this marker append (a no-op on replay:
		// round 1 is already published) opens a fresh segment, closing
		// the one holding the in-flight record...
		if _, err := mm.st.log.Append(encodePublishRecord(1, 1)); err != nil {
			t.Errorf("marker append in hook: %v", err)
		}
		// ...and the compactor runs its snapshot+trim in exactly this
		// window, before the append registers its pending entry.
		mm.snapshot(false)
	}
	defer func() { testHookAfterWALAppend = nil }()

	if _, _, err := m.Append(batchN("two", 6), nil); err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("test hook never fired")
	}

	// Crash: recover in a second registry while the first is simply
	// abandoned, exactly as a SIGKILLed process would leave the
	// directory.
	reg2 := openDurable(t, dir, 1)
	defer reg2.Close()
	m2, ok := reg2.Get("inflight")
	if !ok {
		t.Fatal("dataset lost")
	}
	inf := m2.Info()
	if inf.Version != 2 {
		t.Fatalf("recovered version %d, want 2: the acknowledged in-flight append was trimmed away", inf.Version)
	}
	if inf.Observations != 12 {
		t.Fatalf("recovered %d observations, want 12", inf.Observations)
	}
}

// TestSnapshotAtSegmentRotationCrashRecovers pins the boundary the
// issue describes: snapshots (and their trims) landing precisely at WAL
// segment rotations, then a crash. Recovery must keep the appended data
// AND the rounds counter — the next round after restart must run
// INCREMENTAL, never restart on HYBRID.
func TestSnapshotAtSegmentRotationCrashRecovers(t *testing.T) {
	testWALSegmentBytes = 64 // every record lands on a rotation boundary
	defer func() { testWALSegmentBytes = 0 }()

	dir := t.TempDir()
	reg := openDurable(t, dir, 1)
	defer reg.Close() // abandoned at "crash" time; stopped after the assertions
	m, err := reg.Create("rotated", DatasetConfig{})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for i := 0; i < 3; i++ {
		if _, _, err := m.Append(batchN("r"+string(rune('a'+i)), 6), nil); err != nil {
			t.Fatal(err)
		}
		pub, err := reg.Quiesce(context.Background(), "rotated")
		if err != nil || pub == nil {
			t.Fatalf("quiesce %d: pub=%v err=%v", i, pub, err)
		}
		rounds = pub.Round
		// Snapshot + trim exactly here, with the publish marker at (or
		// next to) a segment boundary.
		waitForSnapshot(t, dir, "rotated")
		m.snapshot(false)
	}
	if rounds < 3 {
		t.Fatalf("published %d rounds, want 3", rounds)
	}

	// Crash: recover in a second registry; the first is abandoned.
	reg2 := openDurable(t, dir, 1)
	defer reg2.Close()
	m2, ok := reg2.Get("rotated")
	if !ok {
		t.Fatal("dataset lost")
	}
	if inf := m2.Info(); inf.Version != 3 || inf.Observations != 18 {
		t.Fatalf("recovered %+v, want version 3 with 18 observations", inf)
	}
	if _, _, err := m2.Append(batchN("post", 6), nil); err != nil {
		t.Fatal(err)
	}
	pub, err := reg2.Quiesce(context.Background(), "rotated")
	if err != nil || pub == nil {
		t.Fatalf("quiesce after crash: pub=%v err=%v", pub, err)
	}
	if pub.Round != rounds+1 || pub.Algorithm != "INCREMENTAL" {
		t.Fatalf("after crash the next round was %d %q, want %d INCREMENTAL (rounds counter lost in the trim)",
			pub.Round, pub.Algorithm, rounds+1)
	}
}
