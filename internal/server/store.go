// Durable storage behind the registry: every managed dataset owns a
// directory holding a config file, a write-ahead log of appends and
// publish markers, and binary snapshots of (dataset, published outcome)
// pairs. The invariants:
//
//   - An append is acknowledged to the client only after its WAL record
//     is written (and, with Config.Fsync, fsync'd). The in-memory
//     builder never holds state the log does not.
//   - A publish marker is logged before a round's result becomes
//     visible to Quiesce waiters, so a restarted server knows at least
//     one round completed and keeps refining with INCREMENTAL instead
//     of restarting with HYBRID.
//   - The background compactor snapshots the last published round and
//     then trims every WAL segment fully covered by it, bounding both
//     recovery time and disk use.
//
// Recovery (registry Open) inverts this: load the newest intact
// snapshot, rebuild the append Builder from its dataset
// (dataset.NewBuilderFromDataset reproduces the id assignment), replay
// the WAL tail on top — skipping records the snapshot already covers,
// truncating a torn tail — and mark the dataset dirty when appends are
// newer than the published round, so the scheduler re-converges it.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/binio"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/wal"
)

const (
	walRecAppend  = 1 // one acknowledged append batch
	walRecPublish = 2 // a detection round completed
	walRecImport  = 3 // anti-entropy import replaced the appended state

	snapMagic   = "CDSNAP\x01"
	exportMagic = "CDEXP\x01"
	snapPrefix  = "snap-"
	snapSuffix  = ".bin"

	maxBatch = 1 << 26
)

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// testWALSegmentBytes overrides the WAL segment rotation threshold
// (0 = the WAL default). Test-only: the trim-boundary tests need
// rotation after a handful of records, not 4 MiB.
var testWALSegmentBytes int64

// dstore is the on-disk half of one Managed dataset.
type dstore struct {
	dir string
	log *wal.Log
}

// verLSN remembers at which WAL position an append version starts, so
// the compactor can trim exactly the prefix a snapshot covers.
type verLSN struct {
	version uint64
	lsn     uint64
}

// datasetConfig is the JSON sidecar written once at Create: everything
// a restarted server needs to reconstruct the Managed shell before any
// observation arrives.
type datasetConfig struct {
	Name    string  `json:"name"`
	Gen     uint64  `json:"gen"`
	Alpha   float64 `json:"alpha"`
	S       float64 `json:"s"`
	N       float64 `json:"n"`
	Workers int     `json:"workers"`
}

// ---------------------------------------------------------------------
// Dataset directories

// datasetsRoot returns the directory holding one subdirectory per
// dataset.
func datasetsRoot(dataDir string) string { return filepath.Join(dataDir, "datasets") }

// encodeDirName maps a dataset name to a filesystem-safe directory
// name: alphanumerics, '-', '_' and non-leading '.' pass through,
// every other byte becomes %XX, and a CRC-32C of the exact name is
// suffixed so that names differing only in letter case still map to
// distinct directories on case-insensitive filesystems.
func encodeDirName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			b.WriteByte(c)
		case c == '.' && i > 0:
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	fmt.Fprintf(&b, ".%08x", crc32.Checksum([]byte(name), snapCRC))
	return b.String()
}

// decodeDirName inverts encodeDirName, verifying the checksum suffix.
func decodeDirName(enc string) (string, error) {
	dot := strings.LastIndexByte(enc, '.')
	if dot < 0 || len(enc)-dot != 9 {
		return "", fmt.Errorf("server: malformed dataset directory name %q", enc)
	}
	sum, err := strconv.ParseUint(enc[dot+1:], 16, 32)
	if err != nil {
		return "", fmt.Errorf("server: malformed dataset directory name %q: %w", enc, err)
	}
	var b strings.Builder
	body := enc[:dot]
	for i := 0; i < len(body); i++ {
		if body[i] != '%' {
			b.WriteByte(body[i])
			continue
		}
		if i+2 >= len(body) {
			return "", fmt.Errorf("server: malformed dataset directory name %q", enc)
		}
		v, err := strconv.ParseUint(body[i+1:i+3], 16, 8)
		if err != nil {
			return "", fmt.Errorf("server: malformed dataset directory name %q: %w", enc, err)
		}
		b.WriteByte(byte(v))
		i += 2
	}
	name := b.String()
	if crc32.Checksum([]byte(name), snapCRC) != uint32(sum) {
		return "", fmt.Errorf("server: dataset directory name %q fails its checksum (renamed by hand?)", enc)
	}
	return name, nil
}

// writeFileDurable writes data to path via a temp file, fsync and
// rename, then fsyncs the directory.
func writeFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return wal.SyncDir(dir)
}

// ---------------------------------------------------------------------
// WAL record payloads

// mustRecord finalizes an in-memory record encode. A bytes.Buffer never
// fails to write, so the only latchable error is a string over binio's
// blob limit — far above the request size limits — and silently logging
// a truncated record would corrupt the WAL; crash instead.
func mustRecord(w *binio.Writer, buf *bytes.Buffer) []byte {
	if err := w.Err(); err != nil {
		panic("store: encode wal record: " + err.Error())
	}
	return buf.Bytes()
}

// encodeAppendRecord frames one acknowledged append batch. The version
// rides along so recovery can tell which records a snapshot already
// covers even when rounds and appends interleave in the log.
func encodeAppendRecord(version uint64, obs, truth []dataset.Record) []byte {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Byte(walRecAppend)
	w.Uvarint(version)
	w.Int(len(obs))
	for _, o := range obs {
		w.String(o.Source)
		w.String(o.Item)
		w.String(o.Value)
	}
	w.Int(len(truth))
	for _, tr := range truth {
		w.String(tr.Item)
		w.String(tr.Value)
	}
	return mustRecord(w, &buf)
}

// encodePublishRecord frames a round-completed marker.
func encodePublishRecord(round int, version uint64) []byte {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Byte(walRecPublish)
	w.Int(round)
	w.Uvarint(version)
	return mustRecord(w, &buf)
}

// encodeImportRecord frames an applied anti-entropy import: the whole
// replacement state rides in the log, so recovery replays the import
// the same way it replays the appends it superseded.
func encodeImportRecord(version uint64, rounds int, ds *dataset.Dataset) []byte {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.Byte(walRecImport)
	w.Uvarint(version)
	w.Int(rounds)
	dataset.EncodeDataset(w, ds)
	return mustRecord(w, &buf)
}

// encodeExport serializes one dataset's full appended state for
// anti-entropy transfer: configuration, append version, rounds counter
// and the dataset in the bit-exact binary codec.
func encodeExport(params bayes.Params, workers int, version uint64, rounds int, ds *dataset.Dataset) ([]byte, error) {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.String(exportMagic)
	w.Float64(params.Alpha)
	w.Float64(params.S)
	w.Float64(params.N)
	w.Int(workers)
	w.Uvarint(version)
	w.Int(rounds)
	dataset.EncodeDataset(w, ds)
	if err := w.Err(); err != nil {
		return nil, fmt.Errorf("server: encode export: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeExport inverts encodeExport.
func decodeExport(blob []byte) (params bayes.Params, workers int, version uint64, rounds int, ds *dataset.Dataset, err error) {
	r := binio.NewReader(bytes.NewReader(blob))
	if m := r.String(); r.Err() == nil && m != exportMagic {
		return params, 0, 0, 0, nil, fmt.Errorf("server: export blob: bad magic")
	}
	params.Alpha = r.Float64()
	params.S = r.Float64()
	params.N = r.Float64()
	workers = r.Int(1 << 20)
	version = r.Uvarint()
	rounds = r.Int(1 << 30)
	ds, err = dataset.DecodeDataset(r)
	if err != nil {
		return params, 0, 0, 0, nil, fmt.Errorf("server: export blob: %w", err)
	}
	if err := r.Err(); err != nil {
		return params, 0, 0, 0, nil, fmt.Errorf("server: export blob: %w", err)
	}
	return params, workers, version, rounds, ds, nil
}

type walRecord struct {
	kind    byte
	version uint64
	round   int
	obs     []dataset.Record
	truth   []dataset.Record
	ds      *dataset.Dataset // walRecImport only
}

func decodeWALRecord(payload []byte) (walRecord, error) {
	r := binio.NewReader(bytes.NewReader(payload))
	rec := walRecord{kind: r.Byte()}
	switch rec.kind {
	case walRecAppend:
		rec.version = r.Uvarint()
		if n := r.Int(maxBatch); n > 0 {
			rec.obs = make([]dataset.Record, n)
			for i := range rec.obs {
				rec.obs[i] = dataset.Record{Source: r.String(), Item: r.String(), Value: r.String()}
			}
		}
		if n := r.Int(maxBatch); n > 0 {
			rec.truth = make([]dataset.Record, n)
			for i := range rec.truth {
				rec.truth[i] = dataset.Record{Item: r.String(), Value: r.String()}
			}
		}
	case walRecPublish:
		rec.round = r.Int(1 << 30)
		rec.version = r.Uvarint()
	case walRecImport:
		rec.version = r.Uvarint()
		rec.round = r.Int(1 << 30)
		var err error
		if rec.ds, err = dataset.DecodeDataset(r); err != nil {
			return rec, fmt.Errorf("server: decode wal import record: %w", err)
		}
	default:
		return rec, fmt.Errorf("server: unknown wal record type %d", rec.kind)
	}
	if err := r.Err(); err != nil {
		return rec, fmt.Errorf("server: decode wal record: %w", err)
	}
	return rec, nil
}

// ---------------------------------------------------------------------
// Snapshots

func snapPath(dir string, version uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, version, snapSuffix))
}

// writeSnapshot persists pub as a checksummed binary snapshot file,
// atomically (temp + rename).
func (st *dstore) writeSnapshot(pub *Published) error {
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	w.String(snapMagic)
	w.Uvarint(pub.Version)
	w.Int(pub.Round)
	w.String(pub.Algorithm)
	dataset.EncodeDataset(w, pub.Snapshot)
	fusion.EncodeOutcome(w, pub.Outcome)
	w.Uvarint(uint64(pub.Wall))
	if err := w.Err(); err != nil {
		return fmt.Errorf("server: encode snapshot: %w", err)
	}
	var trailer [4]byte
	sum := crc32.Checksum(buf.Bytes(), snapCRC)
	trailer[0], trailer[1], trailer[2], trailer[3] = byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24)
	buf.Write(trailer[:])
	return writeFileDurable(snapPath(st.dir, pub.Version), buf.Bytes())
}

// readSnapshot loads and verifies one snapshot file.
func readSnapshot(path string) (*Published, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 4 {
		return nil, fmt.Errorf("server: snapshot %s: too short", filepath.Base(path))
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	sum := uint32(trailer[0]) | uint32(trailer[1])<<8 | uint32(trailer[2])<<16 | uint32(trailer[3])<<24
	if crc32.Checksum(body, snapCRC) != sum {
		return nil, fmt.Errorf("server: snapshot %s: checksum mismatch", filepath.Base(path))
	}
	r := binio.NewReader(bytes.NewReader(body))
	if m := r.String(); r.Err() == nil && m != snapMagic {
		return nil, fmt.Errorf("server: snapshot %s: bad magic", filepath.Base(path))
	}
	pub := &Published{
		Version:   r.Uvarint(),
		Round:     r.Int(1 << 30),
		Algorithm: r.String(),
	}
	pub.Snapshot, err = dataset.DecodeDataset(r)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot %s: %w", filepath.Base(path), err)
	}
	pub.Outcome, err = fusion.DecodeOutcome(r)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot %s: %w", filepath.Base(path), err)
	}
	pub.Wall = time.Duration(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("server: snapshot %s: %w", filepath.Base(path), err)
	}
	return pub, nil
}

// snapshotVersions lists the snapshot file versions in dir, newest
// first.
func snapshotVersions(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var versions []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 16, 64)
		if err != nil {
			continue
		}
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] > versions[j] })
	return versions, nil
}

// loadLatestSnapshot returns the newest snapshot that decodes cleanly,
// or nil when none exists. Corrupt newer files are skipped (and left in
// place for inspection); an older intact snapshot plus the unreplayed
// WAL suffix still recovers the full state.
func loadLatestSnapshot(dir string) *Published {
	versions, err := snapshotVersions(dir)
	if err != nil {
		return nil
	}
	for _, v := range versions {
		if pub, err := readSnapshot(snapPath(dir, v)); err == nil {
			return pub
		}
	}
	return nil
}

// pruneSnapshots removes all but the newest keep snapshot files and any
// leftover temp files.
func (st *dstore) pruneSnapshots(keep int) {
	versions, err := snapshotVersions(st.dir)
	if err != nil {
		return
	}
	for i, v := range versions {
		if i >= keep {
			os.Remove(snapPath(st.dir, v))
		}
	}
	if entries, err := os.ReadDir(st.dir); err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				os.Remove(filepath.Join(st.dir, e.Name()))
			}
		}
	}
}

// ---------------------------------------------------------------------
// Create / recover plumbing (called from server.go with r.mu held)

// newDatasetStore creates the on-disk layout for a fresh dataset and
// opens its (empty) WAL. observe, when non-nil, receives the WAL
// append/fsync timings (see wal.Options.ObserveAppend).
func newDatasetStore(dataDir string, cfg datasetConfig, fsync bool, observe func(total, fsync time.Duration)) (*dstore, error) {
	dir := filepath.Join(datasetsRoot(dataDir), encodeDirName(cfg.Name))
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("server: create dataset dir: %w", err)
	}
	// Once config.json is durably in place a restart would resurrect
	// the dataset, so every error below must take the directory down
	// with it — the client was told the Create failed.
	fail := func(err error) (*dstore, error) {
		discard(dir)
		return nil, err
	}
	raw, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := writeFileDurable(filepath.Join(dir, "config.json"), raw); err != nil {
		return fail(fmt.Errorf("server: write dataset config: %w", err))
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Fsync: fsync, SegmentBytes: testWALSegmentBytes, ObserveAppend: observe}, nil)
	if err != nil {
		return fail(err)
	}
	if err := wal.SyncDir(datasetsRoot(dataDir)); err != nil {
		log.Close()
		return fail(err)
	}
	return &dstore{dir: dir, log: log}, nil
}

// recoverDataset rebuilds one Managed from its directory: config,
// newest snapshot, then the WAL tail. The returned Managed is fully
// initialized except for its registry backref and condition variable.
// observe, when non-nil, receives WAL append/fsync timings for the
// recovered log's future appends.
func recoverDataset(dir string, fsync bool, observe func(total, fsync time.Duration)) (*Managed, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "config.json"))
	if err != nil {
		return nil, err
	}
	var cfg datasetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("server: dataset config %s: %w", dir, err)
	}
	params := bayes.Params{Alpha: cfg.Alpha, S: cfg.S, N: cfg.N}
	if err := params.Validate(); err != nil {
		return nil, fmt.Errorf("server: dataset config %s: %w", dir, err)
	}

	m := &Managed{
		name:   cfg.Name,
		gen:    cfg.Gen,
		params: params,
	}
	m.opts.Workers = cfg.Workers

	pub := loadLatestSnapshot(dir)
	var builder *dataset.Builder
	if pub != nil {
		builder = dataset.NewBuilderFromDataset(pub.Snapshot)
		m.version = pub.Version
		m.rounds = pub.Round
		m.pub = pub
		m.snapVersion = pub.Version
	} else {
		builder = dataset.NewBuilder()
	}
	m.builder = builder

	snapVersion := m.version
	log, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{Fsync: fsync, SegmentBytes: testWALSegmentBytes, ObserveAppend: observe}, func(lsn uint64, payload []byte) error {
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return err
		}
		switch rec.kind {
		case walRecAppend:
			if rec.version <= snapVersion {
				return nil // already covered by the snapshot
			}
			builder.AddRecords(rec.obs)
			for _, tr := range rec.truth {
				builder.SetTruth(tr.Item, tr.Value)
			}
			m.version = rec.version
			m.pending = append(m.pending, verLSN{version: rec.version, lsn: lsn})
		case walRecPublish:
			if rec.round > m.rounds {
				m.rounds = rec.round
			}
		case walRecImport:
			if rec.version <= m.version {
				return nil // superseded by the snapshot or a later state
			}
			builder = dataset.NewBuilderFromDataset(rec.ds)
			m.builder = builder
			m.version = rec.version
			if rec.round > m.rounds {
				m.rounds = rec.round
			}
			m.pending = append(m.pending, verLSN{version: rec.version, lsn: lsn})
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("server: dataset %q: %w", cfg.Name, err)
	}
	m.st = &dstore{dir: dir, log: log}
	m.dirty = m.version > 0 && (m.pub == nil || m.pub.Version != m.version)
	return m, nil
}

// remove deletes the dataset's directory tree. The WAL must already be
// closed. The config file goes first, durably: recovery discards any
// dataset directory without a config.json, so once that single remove
// lands the dataset can never be resurrected, no matter where the rest
// of the removal fails or crashes. A compactor racing the delete may
// still land a snapshot rename mid-removal (ENOTEMPTY on the final
// rmdir), so the tree removal retries briefly.
func (st *dstore) remove() error {
	if err := os.Remove(filepath.Join(st.dir, "config.json")); err != nil && !os.IsNotExist(err) {
		return err
	}
	_ = wal.SyncDir(st.dir)
	var err error
	for attempt := 0; attempt < 5; attempt++ {
		if err = os.RemoveAll(st.dir); err == nil {
			return wal.SyncDir(filepath.Dir(st.dir))
		}
		time.Sleep(time.Duration(attempt+1) * 10 * time.Millisecond)
	}
	return err
}

// discard is a best-effort RemoveAll for malformed dataset directories
// found during recovery (e.g. a crash between mkdir and config write).
func discard(dir string) {
	os.RemoveAll(dir)
	if parent := filepath.Dir(dir); parent != "" {
		if d, err := os.Open(parent); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
}
