module copydetect

go 1.21
