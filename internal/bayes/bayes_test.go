package bayes

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exampleParams are the motivating example's priors: α=0.1, s=0.8, n=50.
func exampleParams() Params { return Params{Alpha: 0.1, S: 0.8, N: 50} }

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f (±%.3f)", what, got, want, tol)
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{Alpha: 0, S: 0.8, N: 50},
		{Alpha: 0.5, S: 0.8, N: 50},
		{Alpha: 0.1, S: 0, N: 50},
		{Alpha: 0.1, S: 1, N: 50},
		{Alpha: 0.1, S: 0.8, N: 1},
		{Alpha: -0.1, S: 0.8, N: 50},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v unexpectedly valid", p)
		}
	}
}

func TestThresholds(t *testing.T) {
	p := exampleParams()
	// Example 4.2: θcp = ln(.8/.1) = 2.08, θind = ln(.8/.2) = 1.39.
	approx(t, p.ThetaCp(), 2.079, 0.005, "θcp")
	approx(t, p.ThetaInd(), 1.386, 0.005, "θind")
	approx(t, p.Beta(), 0.8, 1e-12, "β")
	// Example 3.6 / 4.2 use ln(1−s) ≈ −1.6.
	approx(t, p.LnDiff(), -1.609, 0.005, "ln(1−s)")
}

// TestContribSameExample21 reproduces Example 2.1: sources S2 and S3 with
// accuracy 0.2 sharing NJ.Atlantic (probability .01) contribute 3.89.
func TestContribSameExample21(t *testing.T) {
	p := exampleParams()
	approx(t, p.ContribSame(0.01, 0.2, 0.2), 3.89, 0.01, "C→(NJ.Atlantic)")
	// The remaining contributions of the (S2,S3) walk-through:
	// AZ.Phoenix (p=.95) ≈ 1.6, NY.NewYork (p=.02) ≈ 3.86,
	// FL.Miami (p=.03) ≈ 3.83.
	approx(t, p.ContribSame(0.95, 0.2, 0.2), 1.60, 0.01, "C→(AZ.Phoenix)")
	approx(t, p.ContribSame(0.02, 0.2, 0.2), 3.86, 0.01, "C→(NY.NewYork)")
	approx(t, p.ContribSame(0.03, 0.2, 0.2), 3.83, 0.01, "C→(FL.Miami)")
}

// TestPosteriorExample21 checks both posterior computations of Ex. 2.1:
// C→=C←=11.58 gives Pr(⊥)≈.00004 and C→=C←=.04 gives ≈.79.
func TestPosteriorExample21(t *testing.T) {
	p := exampleParams()
	pi := p.PrIndep(11.58, 11.58)
	if pi > 0.0001 || pi < 0.00001 {
		t.Errorf("PrIndep(11.58, 11.58) = %.6f, want ≈ 0.00004", pi)
	}
	approx(t, p.PrIndep(0.04, 0.04), 0.79, 0.01, "PrIndep(.04,.04)")
}

func TestPosteriorSumsToOne(t *testing.T) {
	p := DefaultParams()
	for _, c := range [][2]float64{{0, 0}, {5, -3}, {-10, -10}, {100, 200}, {1e4, 1e4}} {
		pi, pt, pf := p.Posterior(c[0], c[1])
		if s := pi + pt + pf; math.Abs(s-1) > 1e-9 {
			t.Errorf("posterior(%v) sums to %v", c, s)
		}
		if pi < 0 || pt < 0 || pf < 0 {
			t.Errorf("posterior(%v) has negative component: %v %v %v", c, pi, pt, pf)
		}
	}
}

func TestPosteriorOverflow(t *testing.T) {
	p := DefaultParams()
	pi, pt, _ := p.Posterior(5000, 100)
	if pi != 0 {
		t.Errorf("PrIndep with huge C→ = %v, want 0", pi)
	}
	if math.Abs(pt-1) > 1e-9 {
		t.Errorf("PrTo with dominant C→ = %v, want 1", pt)
	}
	pi, _, _ = p.Posterior(math.Inf(1), 0)
	if math.IsNaN(pi) {
		t.Error("posterior with +Inf score is NaN")
	}
}

func TestPosteriorMonotone(t *testing.T) {
	p := DefaultParams()
	prev := 1.0
	for c := -5.0; c <= 20; c += 0.5 {
		pi := p.PrIndep(c, -2)
		if pi > prev+1e-12 {
			t.Fatalf("PrIndep not monotone: PrIndep(%v)=%v > prev %v", c, pi, prev)
		}
		prev = pi
	}
}

// TestPosteriorThresholdConsistency verifies the threshold derivations of
// Section IV-A: C reaching θcp in one direction forces Pr(⊥) ≤ .5, and
// both directions below θind force Pr(⊥) > .5.
func TestPosteriorThresholdConsistency(t *testing.T) {
	for _, p := range []Params{exampleParams(), DefaultParams(), {Alpha: 0.05, S: 0.5, N: 10}} {
		cp, ind := p.ThetaCp(), p.ThetaInd()
		if pi := p.PrIndep(cp, -100); pi > 0.5+1e-12 {
			t.Errorf("α=%v: PrIndep(θcp, −∞) = %v > .5", p.Alpha, pi)
		}
		eps := 1e-9
		if pi := p.PrIndep(ind-eps, ind-eps); pi <= 0.5 {
			t.Errorf("α=%v: PrIndep(θind−, θind−) = %v ≤ .5", p.Alpha, pi)
		}
	}
}

// TestContribSameNonNegative: sharing a value is never evidence against
// copying (Section II-A: C→(D) is positive when values are shared).
func TestContribSameNonNegative(t *testing.T) {
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		pv := rng.Float64()
		a1 := 0.01 + 0.98*rng.Float64()
		a2 := 0.01 + 0.98*rng.Float64()
		if c := p.ContribSame(pv, a1, a2); c < -1e-12 {
			t.Fatalf("ContribSame(%v, %v, %v) = %v < 0", pv, a1, a2, c)
		}
	}
}

// TestContribDecreasesWithPv: sharing a likelier-false value is stronger
// evidence.
func TestContribDecreasesWithPv(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for pv := 0.01; pv < 1; pv += 0.01 {
		c := p.ContribSame(pv, 0.6, 0.7)
		if c > prev+1e-12 {
			t.Fatalf("ContribSame not decreasing in pv at %v", pv)
		}
		prev = c
	}
}

func TestContribSameDegenerate(t *testing.T) {
	p := DefaultParams()
	if c := p.ContribSame(0, 1, 1); !math.IsInf(c, 1) {
		t.Errorf("impossible independent observation should give +Inf, got %v", c)
	}
}

// bruteMaxEntryScore maximizes the contribution over all ordered pairs of
// distinct providers — the definition MaxEntryScore must match.
func bruteMaxEntryScore(p Params, pv float64, accs []float64) float64 {
	best := math.Inf(-1)
	for i := range accs {
		for j := range accs {
			if i == j {
				continue
			}
			if c := p.ContribSame(pv, accs[i], accs[j]); c > best {
				best = c
			}
		}
	}
	return best
}

// TestMaxEntryScoreMatchesBruteForce is the property test backing
// Proposition 3.1's implementation.
func TestMaxEntryScoreMatchesBruteForce(t *testing.T) {
	p := exampleParams()
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		accs := make([]float64, n)
		for i := range accs {
			accs[i] = 0.01 + 0.98*r.Float64()
		}
		pv := r.Float64()
		got := p.MaxEntryScore(pv, accs)
		want := bruteMaxEntryScore(p, pv, accs)
		return math.Abs(got-want) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestProp31AgreesOnTableIII verifies the paper-literal three-case rule of
// Proposition 3.1 against the brute-force maximum on the configurations
// appearing in the motivating example's index (Table III).
func TestProp31AgreesOnTableIII(t *testing.T) {
	p := exampleParams()
	cases := []struct {
		pv   float64
		accs []float64
		want float64
	}{
		{0.02, []float64{0.6, 0.01}, 4.59},                   // AZ.Tempe (S5,S6)
		{0.01, []float64{0.2, 0.2, 0.4}, 4.12},               // NJ.Atlantic (S2,S3,S4)
		{0.02, []float64{0.2, 0.4}, 4.05},                    // TX.Houston
		{0.02, []float64{0.2, 0.2, 0.4}, 4.05},               // NY.NewYork
		{0.02, []float64{0.01, 0.25, 0.2}, 3.98},             // TX.Dallas
		{0.04, []float64{0.01, 0.25, 0.2}, 3.97},             // NY.Buffalo
		{0.05, []float64{0.01, 0.25, 0.2}, 3.97},             // FL.PalmBay
		{0.03, []float64{0.2, 0.2}, 3.83},                    // FL.Miami
		{0.97, []float64{0.99, 0.99, 0.25, 0.2, 0.99}, 1.51}, // NJ.Trenton
		{0.92, []float64{0.99, 0.4, 0.6, 0.99}, 0.84},        // FL.Orlando
		{0.94, []float64{0.99, 0.99, 0.6}, 0.43},             // NY.Albany
		{0.96, []float64{0.99, 0.99, 0.6, 0.99}, 0.43},       // TX.Austin
	}
	for _, c := range cases {
		prop := p.MaxEntryScoreProp31(c.pv, c.accs)
		brute := bruteMaxEntryScore(p, c.pv, c.accs)
		fast := p.MaxEntryScore(c.pv, c.accs)
		approx(t, fast, brute, 1e-9, "MaxEntryScore vs brute force")
		approx(t, prop, brute, 1e-9, "Prop 3.1 vs brute force")
		approx(t, fast, c.want, 0.015, "Table III score")
	}
	// AZ.Phoenix: the paper prints 1.62 where the formulas give 1.60; keep
	// it as a looser check so a regression still trips it.
	approx(t, p.MaxEntryScore(0.95, []float64{0.99, 0.99, 0.2, 0.2, 0.4}), 1.62, 0.05, "AZ.Phoenix score")
}

func TestExtremes(t *testing.T) {
	amin, amin2, amax := extremes([]float64{0.5, 0.2, 0.9, 0.2})
	if amin != 0.2 || amin2 != 0.2 || amax != 0.9 {
		t.Errorf("extremes = %v %v %v, want 0.2 0.2 0.9", amin, amin2, amax)
	}
	amin, amin2, amax = extremes([]float64{0.7, 0.3})
	if amin != 0.3 || amin2 != 0.7 || amax != 0.7 {
		t.Errorf("extremes = %v %v %v, want 0.3 0.7 0.7", amin, amin2, amax)
	}
}

func TestStateBasics(t *testing.T) {
	st := NewState([]int{2, 3, 0}, 4, 0.8)
	if len(st.P) != 3 || len(st.A) != 4 {
		t.Fatalf("unexpected state shape")
	}
	if st.P[0][0] != 0.5 || math.Abs(st.P[1][2]-1.0/3) > 1e-12 {
		t.Errorf("value probabilities not uniform: %v", st.P)
	}
	c := st.Clone()
	c.P[0][0] = 0.9
	c.A[0] = 0.1
	if st.P[0][0] == 0.9 || st.A[0] == 0.1 {
		t.Error("Clone shares storage with original")
	}
	st.A[1] = 1.5
	st.A[2] = -0.5
	st.ClampAccuracy(0.01, 0.99)
	if st.A[1] != 0.99 || st.A[2] != 0.01 {
		t.Errorf("ClampAccuracy failed: %v", st.A)
	}
	// st.A = [0.8, 0.99, 0.01, 0.8], c.A = [0.1, 0.8, 0.8, 0.8]: the
	// largest gap is |0.01 − 0.8| = 0.79.
	if d := MaxAccuracyDelta(st, c); math.Abs(d-0.79) > 1e-12 {
		t.Errorf("MaxAccuracyDelta = %v, want 0.79", d)
	}
}

func TestMaxEntryScoreTwoProviders(t *testing.T) {
	p := exampleParams()
	// With exactly two providers the maximum is over the two orderings.
	got := p.MaxEntryScore(0.3, []float64{0.9, 0.2})
	want := math.Max(p.ContribSame(0.3, 0.9, 0.2), p.ContribSame(0.3, 0.2, 0.9))
	approx(t, got, want, 1e-12, "two-provider max")
	if s := p.MaxEntryScore(0.3, []float64{0.9}); s != 0 {
		t.Errorf("single provider should score 0, got %v", s)
	}
}
