package copydetect

// One benchmark per table and figure of the paper's evaluation
// (Section VI), on scaled-down versions of the four synthetic workloads.
// Absolute numbers depend on hardware; the paper's claims live in the
// ratios between methods, which `go test -bench=.` lets you read off
// directly. cmd/experiments regenerates the actual tables.

import (
	"math/rand"
	"sync"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/gen"
	"copydetect/internal/index"
	"copydetect/internal/nra"
	"copydetect/internal/sample"
)

// benchScale keeps the full benchmark suite in the minutes range.
var benchScale = map[string]float64{
	"book-cs":    0.25,
	"stock-1day": 0.08,
	"book-full":  0.05,
	"stock-2wk":  0.02,
}

type benchInstance struct {
	ds *dataset.Dataset
	st *bayes.State // state after one voting round, as the detectors see it
}

var (
	benchMu    sync.Mutex
	benchCache = map[string]*benchInstance{}
)

func benchDataset(b *testing.B, id string) *benchInstance {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if inst, ok := benchCache[id]; ok {
		return inst
	}
	var cfg gen.Config
	switch id {
	case "book-cs":
		cfg = gen.BookCS(11)
	case "stock-1day":
		cfg = gen.Stock1Day(12)
	case "book-full":
		cfg = gen.BookFull(13)
	case "stock-2wk":
		cfg = gen.Stock2Wk(14)
	default:
		b.Fatalf("unknown dataset %q", id)
	}
	cfg = gen.Scale(cfg, benchScale[id])
	ds, _, err := gen.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := bayes.DefaultParams()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	st.P = fusion.ValueProbs(ds, st, p, nil)
	st.A = fusion.Accuracies(ds, st.P)
	inst := &benchInstance{ds: ds, st: st}
	benchCache[id] = inst
	return inst
}

func benchIDs() []string { return []string{"book-cs", "stock-1day", "book-full", "stock-2wk"} }

// BenchmarkTable5_IndexBuild measures inverted-index construction (the
// build cost column discussed under Table V / Proposition 3.5).
func BenchmarkTable5_IndexBuild(b *testing.B) {
	p := bayes.DefaultParams()
	for _, id := range benchIDs() {
		inst := benchDataset(b, id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx := index.Build(inst.ds, inst.st, p, index.ByContribution, nil)
				if idx.NumEntries() == 0 {
					b.Fatal("empty index")
				}
			}
		})
	}
}

// BenchmarkTable6_Quality runs the full iterative process with the
// quality-bearing methods of Table VI on Book-CS (the dataset where they
// differ most).
func BenchmarkTable6_Quality(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "book-cs")
	for _, m := range []struct {
		name string
		det  func() core.Detector
	}{
		{"PAIRWISE", func() core.Detector { return &core.Pairwise{Params: p} }},
		{"INDEX", func() core.Detector { return &core.Index{Params: p} }},
		{"HYBRID", func() core.Detector { return &core.Hybrid{Params: p} }},
		{"INCREMENTAL", func() core.Detector { return &core.Incremental{Params: p} }},
	} {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tf := &fusion.TruthFinder{Params: p}
				out := tf.Run(inst.ds, m.det())
				if out.Rounds == 0 {
					b.Fatal("no rounds")
				}
			}
		})
	}
}

// BenchmarkTable7_EndToEnd is Table VII's measurement: total
// copy-detection cost of each method across the full iterative process,
// per dataset.
func BenchmarkTable7_EndToEnd(b *testing.B) {
	p := bayes.DefaultParams()
	for _, id := range benchIDs() {
		inst := benchDataset(b, id)
		for _, m := range []struct {
			name string
			run  func() *fusion.Outcome
		}{
			{"PAIRWISE", func() *fusion.Outcome {
				return (&fusion.TruthFinder{Params: p}).Run(inst.ds, &core.Pairwise{Params: p})
			}},
			{"INDEX", func() *fusion.Outcome {
				return (&fusion.TruthFinder{Params: p}).Run(inst.ds, &core.Index{Params: p})
			}},
			{"HYBRID", func() *fusion.Outcome {
				return (&fusion.TruthFinder{Params: p}).Run(inst.ds, &core.Hybrid{Params: p})
			}},
			{"INCREMENTAL", func() *fusion.Outcome {
				return (&fusion.TruthFinder{Params: p}).Run(inst.ds, &core.Incremental{Params: p})
			}},
			{"SCALESAMPLE", func() *fusion.Outcome {
				s := sample.ScaleSample(inst.ds, 0.1, 4, rand.New(rand.NewSource(5)))
				tf := &fusion.TruthFinder{Params: p, DetectDataset: s.Dataset, ItemMap: s.ItemMap}
				return tf.Run(inst.ds, &core.Incremental{Params: p})
			}},
		} {
			b.Run(id+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if out := m.run(); out.Rounds == 0 {
						b.Fatal("no rounds")
					}
				}
			})
		}
	}
}

// BenchmarkTable8_IncrementalRound isolates the cost of one incremental
// round (round >= 3) against one HYBRID round on the same state — the
// per-round ratio of Table VIII.
func BenchmarkTable8_IncrementalRound(b *testing.B) {
	p := bayes.DefaultParams()
	for _, id := range benchIDs() {
		inst := benchDataset(b, id)
		b.Run(id+"/HYBRID", func(b *testing.B) {
			det := &core.Hybrid{Params: p}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 1)
			}
		})
		b.Run(id+"/INCREMENTAL", func(b *testing.B) {
			det := &core.Incremental{Params: p}
			// Warm rounds outside the measured loop.
			det.DetectRound(inst.ds, inst.st, 1)
			det.DetectRound(inst.ds, inst.st, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 3+i)
			}
		})
	}
}

// BenchmarkTable9_Sampling measures the three sampling strategies
// (drawing the sample plus one detection round on it).
func BenchmarkTable9_Sampling(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "book-cs")
	strategies := []struct {
		name string
		draw func(seed int64) sample.Result
	}{
		{"SCALESAMPLE", func(seed int64) sample.Result {
			return sample.ScaleSample(inst.ds, 0.1, 4, rand.New(rand.NewSource(seed)))
		}},
		{"BYITEM", func(seed int64) sample.Result {
			return sample.ByItem(inst.ds, 0.1, rand.New(rand.NewSource(seed)))
		}},
		{"BYCELL", func(seed int64) sample.Result {
			return sample.ByCell(inst.ds, 0.1, rand.New(rand.NewSource(seed)))
		}},
	}
	for _, s := range strategies {
		b.Run(s.name, func(b *testing.B) {
			det := &core.Index{Params: p}
			for i := 0; i < b.N; i++ {
				res := s.draw(int64(i))
				sub := res.Dataset
				valueCounts := make([]int, sub.NumItems())
				for d := range valueCounts {
					valueCounts[d] = sub.NumValues(dataset.ItemID(d))
				}
				st := bayes.NewState(valueCounts, sub.NumSources(), 0.8)
				st.P = fusion.ValueProbs(sub, st, p, nil)
				st.A = fusion.Accuracies(sub, st.P)
				det.DetectRound(sub, st, 1)
			}
		})
	}
}

// BenchmarkTable10_FaginInput measures generating the NRA input lists —
// the cost Table X compares our algorithms against.
func BenchmarkTable10_FaginInput(b *testing.B) {
	p := bayes.DefaultParams()
	for _, id := range benchIDs() {
		inst := benchDataset(b, id)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				in := nra.BuildInput(inst.ds, inst.st, p)
				if len(in.ValueLists) == 0 {
					b.Fatal("no lists")
				}
			}
		})
	}
}

// BenchmarkFigure2_SingleRound measures one detection round of each
// single-round algorithm (the per-round view of Figure 2).
func BenchmarkFigure2_SingleRound(b *testing.B) {
	p := bayes.DefaultParams()
	for _, id := range benchIDs() {
		inst := benchDataset(b, id)
		for _, m := range []struct {
			name string
			det  core.Detector
		}{
			{"INDEX", &core.Index{Params: p}},
			{"BOUND", &core.Bound{Params: p}},
			{"BOUND+", &core.BoundPlus{Params: p}},
			{"HYBRID", &core.Hybrid{Params: p}},
		} {
			b.Run(id+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					m.det.DetectRound(inst.ds, inst.st, 1)
				}
			})
		}
	}
}

// BenchmarkFigure3_Ordering measures one BOUND round under the three entry
// orderings of Figure 3.
func BenchmarkFigure3_Ordering(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-1day")
	for _, ord := range []index.Order{index.Random, index.ByProvider, index.ByContribution} {
		b.Run(ord.String(), func(b *testing.B) {
			det := &core.Bound{Params: p, Opts: core.Options{Order: ord, Seed: 4}}
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 1)
			}
		})
	}
}

// BenchmarkAblation_ParallelIndex measures the Section VIII extension:
// per-entry parallel score computation with varying worker counts.
func BenchmarkAblation_ParallelIndex(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-1day")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(name(workers), func(b *testing.B) {
			det := &core.Index{Params: p, Opts: core.Options{Workers: workers}}
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 1)
			}
		})
	}
}

func name(workers int) string {
	return "workers" + itoa(workers)
}

// BenchmarkHybridWorkers measures the parallel detection engine on the
// Stock-2wk-scale workload: one HYBRID round at increasing worker counts.
// Results are bit-identical across worker counts (see
// internal/core/parallel_equiv_test.go), so the only thing this varies is
// wall-clock time; the speedup at 4 workers is the cross-PR scaling
// regression gauge, and workers1 is the single-thread kernel gauge
// (BENCH.md tracks both across PRs). ReportAllocs pins the warm-cache
// allocation count even without -benchmem.
func BenchmarkHybridWorkers(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-2wk")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(name(workers), func(b *testing.B) {
			det := &core.Hybrid{Params: p, Opts: core.Options{Workers: workers}}
			det.DetectRound(inst.ds, inst.st, 1) // warm the structural cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 2+i)
			}
		})
	}
}

// BenchmarkIncrementalWorkers measures one incremental round (round >= 3,
// the steady-state cost of the iterative process) at increasing worker
// counts on the Stock-2wk-scale workload.
func BenchmarkIncrementalWorkers(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-2wk")
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(name(workers), func(b *testing.B) {
			det := &core.Incremental{Params: p, Opts: core.Options{Workers: workers}}
			// Warm rounds outside the measured loop.
			det.DetectRound(inst.ds, inst.st, 1)
			det.DetectRound(inst.ds, inst.st, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 3+i)
			}
		})
	}
}

// BenchmarkIncrementalSteadyState is the zero-allocation configuration of
// the serving loop: one worker, ReuseResult on, state unchanged between
// rounds. TestIncrementalSteadyStateAllocs asserts the 0 allocs/op this
// benchmark reports; together they keep the steady-state round GC-silent.
func BenchmarkIncrementalSteadyState(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-2wk")
	det := &core.Incremental{Params: p, Opts: core.Options{Workers: 1}, ReuseResult: true}
	det.DetectRound(inst.ds, inst.st, 1)
	det.DetectRound(inst.ds, inst.st, 2)
	det.DetectRound(inst.ds, inst.st, 3) // one-time costs (result buffer)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.DetectRound(inst.ds, inst.st, 4+i)
	}
}

// BenchmarkAblation_HybridThreshold sweeps HYBRID's share threshold (the
// paper picked 16 empirically).
func BenchmarkAblation_HybridThreshold(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "book-cs")
	for _, th := range []int{1, 4, 16, 64, 1 << 20} {
		b.Run("threshold"+itoa(th), func(b *testing.B) {
			det := &core.Hybrid{Params: p, Opts: core.Options{ShareThreshold: th}}
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 1)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkAblation_PairwiseParallel measures the naive parallelization
// baseline the paper's Section VIII warns about.
func BenchmarkAblation_PairwiseParallel(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "book-cs")
	for _, workers := range []int{1, 4} {
		b.Run(name(workers), func(b *testing.B) {
			det := &core.Pairwise{Params: p, Workers: workers}
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 1)
			}
		})
	}
}

// BenchmarkAblation_StructCache compares a persistent detector (which
// reuses the cross-round structural cache of shared-item counts) against
// fresh detectors that pay the set-similarity-join count every round.
func BenchmarkAblation_StructCache(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "stock-1day")
	b.Run("cached", func(b *testing.B) {
		det := &core.Index{Params: p}
		det.DetectRound(inst.ds, inst.st, 1) // warm the cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			det.DetectRound(inst.ds, inst.st, 2+i)
		}
	})
	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			det := &core.Index{Params: p}
			det.DetectRound(inst.ds, inst.st, 1)
		}
	})
}

// BenchmarkAblation_IncrementalRho compares the adaptive ρ (gap heuristic)
// against the paper's fixed ρ = 1.0 for one incremental round.
func BenchmarkAblation_IncrementalRho(b *testing.B) {
	p := bayes.DefaultParams()
	inst := benchDataset(b, "book-cs")
	for _, cfg := range []struct {
		name string
		rho  float64
	}{
		{"adaptive", 0},
		{"fixed1.0", 1.0},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			det := &core.Incremental{Params: p, RhoV: cfg.rho}
			det.DetectRound(inst.ds, inst.st, 1)
			det.DetectRound(inst.ds, inst.st, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				det.DetectRound(inst.ds, inst.st, 3+i)
			}
		})
	}
}

// BenchmarkExtensions_ScoringOverhead measures the cost of the footnote
// extensions relative to the plain model for one PAIRWISE round.
func BenchmarkExtensions_ScoringOverhead(b *testing.B) {
	inst := benchDataset(b, "stock-1day")
	plain := bayes.DefaultParams()
	ext := plain
	ext.CoverageWeight = 1
	stDist := inst.st.Clone()
	stDist.Pop = dataset.ValuePopularities(inst.ds)
	b.Run("plain", func(b *testing.B) {
		det := &core.Pairwise{Params: plain}
		for i := 0; i < b.N; i++ {
			det.DetectRound(inst.ds, inst.st, 1)
		}
	})
	b.Run("extended", func(b *testing.B) {
		det := &core.Pairwise{Params: ext}
		for i := 0; i < b.N; i++ {
			det.DetectRound(inst.ds, stDist, 1)
		}
	})
}
