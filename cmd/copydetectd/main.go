// Command copydetectd is a streaming copy-detection service: an
// HTTP/JSON daemon holding a registry of named datasets. Clients append
// observation batches as they arrive; a dirty-dataset scheduler runs
// detection rounds asynchronously — full HYBRID on a dataset's first
// build, INCREMENTAL refinement afterwards — and reads serve the last
// published round without ever blocking on detection.
//
// Usage:
//
//	copydetectd [-addr :8377] [-alpha 0.1] [-s 0.8] [-n 100]
//	            [-workers 0] [-concurrency 1]
//	            [-data-dir DIR] [-fsync] [-snapshot-every 1]
//	            [-append-high-water 0]
//
// -workers 0 (the default) shards each detection round over one
// goroutine per CPU; -concurrency caps how many datasets detect at the
// same time.
//
// The daemon serves Prometheus-format metrics on GET /metrics: request
// rate/latency/in-flight by route, per-dataset convergence lag,
// scheduler queue depth, round durations and WAL append/fsync latency.
// Every request is tagged with an X-Copydetect-Trace ID (generated if
// the client — usually cmd/copygate — did not send one) that appears in
// the access log and the response. With -append-high-water N the daemon
// refuses direct client appends with 429 + Retry-After while a dataset
// has N or more appends awaiting convergence, bounding the backlog a
// fast writer can pile onto the scheduler; replicated (sequenced)
// appends are exempt, since the gateway already admitted them.
//
// With -data-dir the daemon is durable: every dataset keeps a
// write-ahead log and periodic snapshots under the directory, appends
// are acknowledged only once logged (fsync'd unless -fsync=false), and
// a restart — graceful or SIGKILL — recovers every dataset, replays the
// log tail and re-converges, publishing the same results an
// uninterrupted process would have. See the package comments of
// internal/server and internal/wal for the wire protocol, the on-disk
// format and the crash-recovery guarantee.
//
// The daemon also speaks the replication vocabulary cmd/copygate's
// cluster mode drives: appends may carry an X-Copydetect-Seq sequence
// number (replayed deliveries are acknowledged without re-applying;
// gaps are refused with 409), GET /v1/datasets/{name}/export serializes
// a dataset's full appended state plus its round counter in the
// bit-exact binary codec, and POST /v1/datasets/{name}/import installs
// such a blob if it is newer than the local state — the anti-entropy
// pair a recovered replica catches up with. All of it works against a
// single daemon too; no cluster required.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/pool"
	"copydetect/internal/server"
	"copydetect/internal/telemetry"
)

// options carries the parsed command line; split out for testability.
type options struct {
	addr     string
	addrFile string
	cfg      server.Config
}

// parseFlags parses args (without the program name) into options,
// applying the per-CPU worker default and validating the priors.
func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("copydetectd", flag.ContinueOnError)
	addr := fs.String("addr", ":8377", "listen address")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts and tests)")
	alpha := fs.Float64("alpha", 0.1, "a-priori copying probability α")
	s := fs.Float64("s", 0.8, "copy selectivity s")
	n := fs.Float64("n", 100, "number of false values per item n")
	workers := fs.Int("workers", 0, "detection worker goroutines per round (0 = one per CPU, 1 = sequential)")
	concurrency := fs.Int("concurrency", 1, "max datasets detecting concurrently")
	dataDir := fs.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	fsync := fs.Bool("fsync", true, "fsync the write-ahead log before acknowledging appends (with -data-dir)")
	snapEvery := fs.Int("snapshot-every", 1, "snapshot and trim a dataset's log every N published rounds (with -data-dir)")
	appendHW := fs.Int("append-high-water", 0, "refuse client appends with 429 while a dataset has this many appends awaiting convergence (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return options{}, err
	}
	p := bayes.Params{Alpha: *alpha, S: *s, N: *n}
	if err := p.Validate(); err != nil {
		return options{}, err
	}
	if *concurrency < 1 {
		return options{}, fmt.Errorf("copydetectd: -concurrency %d must be at least 1", *concurrency)
	}
	if *snapEvery < 1 {
		return options{}, fmt.Errorf("copydetectd: -snapshot-every %d must be at least 1", *snapEvery)
	}
	if *appendHW < 0 {
		return options{}, fmt.Errorf("copydetectd: -append-high-water %d must be >= 0 (0 = unbounded)", *appendHW)
	}
	w := *workers
	if w <= 0 {
		w = pool.Auto()
	}
	opt := options{addr: *addr, addrFile: *addrFile}
	opt.cfg.Params = p
	opt.cfg.Options.Workers = w
	opt.cfg.Concurrency = *concurrency
	opt.cfg.DataDir = *dataDir
	opt.cfg.Fsync = *fsync
	opt.cfg.SnapshotEvery = *snapEvery
	opt.cfg.AppendHighWater = *appendHW
	return opt, nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

// run is the whole daemon: parse, recover, serve, shut down. It returns
// the process exit code (split from main so the crash-recovery test can
// re-exec the test binary as a real daemon process).
func run(args []string) int {
	opt, err := parseFlags(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetectd: %v\n", err)
		return 2
	}

	reg, err := server.Open(opt.cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetectd: %v\n", err)
		return 1
	}
	ln, err := net.Listen("tcp", opt.addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "copydetectd: %v\n", err)
		reg.Close()
		return 1
	}
	if opt.addrFile != "" {
		if err := os.WriteFile(opt.addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "copydetectd: %v\n", err)
			reg.Close()
			return 1
		}
	}
	treg := telemetry.New()
	reg.RegisterMetrics(treg)
	httpMetrics := telemetry.NewHTTPMetrics(treg, "copydetectd", log.Default())
	mux := http.NewServeMux()
	mux.Handle("/metrics", treg.Handler())
	mux.Handle("/", server.NewHandler(reg))
	srv := newHTTPServer(httpMetrics.Wrap(mux))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	durability := "in-memory"
	if opt.cfg.DataDir != "" {
		durability = fmt.Sprintf("data-dir=%s fsync=%t snapshot-every=%d",
			opt.cfg.DataDir, opt.cfg.Fsync, opt.cfg.SnapshotEvery)
	}
	log.Printf("copydetectd: listening on %s (workers=%d, concurrency=%d, %s)",
		ln.Addr(), opt.cfg.Options.Workers, opt.cfg.Concurrency, durability)

	select {
	case err := <-errc:
		log.Printf("copydetectd: %v", err)
		reg.Close()
		return 1
	case <-ctx.Done():
	}
	log.Printf("copydetectd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("copydetectd: shutdown: %v", err)
	}
	reg.Close()
	return 0
}

// newHTTPServer builds the daemon's http.Server with the header and
// idle timeouts every network-facing listener needs: without them one
// client trickling a request line (or parking idle keep-alives) holds a
// connection forever.
func newHTTPServer(handler http.Handler) *http.Server {
	return &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
