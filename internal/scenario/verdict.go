package scenario

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Verdict is the machine-readable outcome of one scenario run: what
// the executor did (per phase), what the target exposed (/metrics
// boundary scrapes), how fast it converged, how well detection scored
// against the planted truth, and whether every SLO held. It is the
// artifact CI archives and the soak tests assert against.
type Verdict struct {
	Scenario     string  `json:"scenario"`
	Target       string  `json:"target"`
	Datasets     int     `json:"datasets"`
	Observations int     `json:"observations"` // total generated across datasets
	WallSeconds  float64 `json:"wallSeconds"`

	Phases []PhaseReport `json:"phases"`

	// QuiesceSeconds is the post-run drive to convergence: the
	// operational convergence-lag bound once load stops.
	// QuiesceErrors counts datasets the harness failed to quiesce; any
	// fails the verdict the same way a transport error does.
	QuiesceSeconds float64 `json:"quiesceSeconds"`
	QuiesceErrors  int     `json:"quiesceErrors,omitempty"`

	// Quality scores the detected copying pairs against the planted
	// copier cliques (absent when the run could not read results).
	Quality *Quality `json:"quality,omitempty"`

	// Checks are the evaluated SLO assertions; Pass is their
	// conjunction AND the absence of transport-level errors.
	Checks []Check `json:"checks"`
	Pass   bool    `json:"pass"`
}

// PhaseReport is the measured execution of one phase.
type PhaseReport struct {
	Name         string  `json:"name"`
	TargetRate   float64 `json:"targetRate,omitempty"`
	AchievedRate float64 `json:"achievedRate"`
	Seconds      float64 `json:"seconds"`
	Appends      int     `json:"appends"`
	Observations int     `json:"observations"`
	Reads        int     `json:"reads,omitempty"`
	// Throttled counts 429 refusals (backpressure — each refused batch
	// was retried in place and landed exactly once).
	Throttled int `json:"throttled"`
	// Errors5xx counts 5xx responses the executor saw; OtherErrors
	// counts transport failures, non-5xx refusals and abandoned
	// streams.
	Errors5xx   int      `json:"errors5xx"`
	OtherErrors int      `json:"otherErrors"`
	Injected    []string `json:"injected,omitempty"`
	// Starved marks a phase that ran out of generated data before its
	// deadline: the achieved rate then measures the workload, not the
	// target, so rated SLO checks fail it explicitly.
	Starved bool          `json:"starved,omitempty"`
	Latency *LatencyStats `json:"appendLatency,omitempty"`
	// Scrape is the /metrics boundary scrape taken when the phase
	// ended.
	Scrape *ScrapeReport `json:"scrape,omitempty"`
}

// ScrapeReport condenses the phase-boundary /metrics scrapes of every
// scrape target.
type ScrapeReport struct {
	// Targets is how many endpoints were scraped; Samples the total
	// parsed exposition lines (every line must parse — a malformed
	// line fails the scrape).
	Targets int `json:"targets"`
	Samples int `json:"samples"`
	// HTTP5xx is the cumulative server-side count of 5xx responses
	// across targets; HTTP5xxDelta the increase during this phase.
	HTTP5xx      float64 `json:"http5xx"`
	HTTP5xxDelta float64 `json:"http5xxDelta"`
	// MaxConvergenceLagAppends is the worst per-dataset convergence
	// lag (in appends) any scraped backend reported at the boundary.
	MaxConvergenceLagAppends float64 `json:"maxConvergenceLagAppends"`
	// Error records a failed scrape (the run continues; the SLO layer
	// treats a failed scrape during an asserted phase as a failure).
	Error string `json:"error,omitempty"`
}

// LatencyStats summarizes a latency sample in milliseconds.
type LatencyStats struct {
	P50Millis  float64 `json:"p50Millis"`
	P90Millis  float64 `json:"p90Millis"`
	P99Millis  float64 `json:"p99Millis"`
	MaxMillis  float64 `json:"maxMillis"`
	MeanMillis float64 `json:"meanMillis"`
}

// Quality scores detection against the planted truth, micro-averaged
// across datasets: recall over the direct copier→origin pairs
// (gen.Planted.Pairs), precision against the clique closure
// (gen.Planted.Closure) — a detected copier–copier pair inside one
// clique is transitive, not false.
type Quality struct {
	DetectedPairs int `json:"detectedPairs"`
	PlantedPairs  int `json:"plantedPairs"`
	// TruePosDirect is |detected ∩ planted|; TruePosClique is
	// |detected ∩ closure|.
	TruePosDirect int     `json:"truePosDirect"`
	TruePosClique int     `json:"truePosClique"`
	Precision     float64 `json:"precision"`
	Recall        float64 `json:"recall"`
	// Algorithms are the detection algorithms that produced the scored
	// rounds (HYBRID for first rounds, INCREMENTAL after).
	Algorithms []string         `json:"algorithms,omitempty"`
	PerDataset []DatasetQuality `json:"perDataset,omitempty"`
}

// DatasetQuality is one dataset's slice of the quality score.
type DatasetQuality struct {
	Dataset       string `json:"dataset"`
	Algorithm     string `json:"algorithm,omitempty"`
	Detected      int    `json:"detected"`
	Planted       int    `json:"planted"`
	TruePosDirect int    `json:"truePosDirect"`
	TruePosClique int    `json:"truePosClique"`
}

// Check is one evaluated SLO assertion.
type Check struct {
	// Name identifies the assertion: rate, p99-append, zero-5xx,
	// quiesce, precision, recall.
	Name string `json:"name"`
	// Phase scopes per-phase checks.
	Phase  string  `json:"phase,omitempty"`
	Limit  float64 `json:"limit"`
	Actual float64 `json:"actual"`
	Pass   bool    `json:"pass"`
	Detail string  `json:"detail,omitempty"`
}

// DefaultRateTolerance is the rate-following tolerance when the SLO
// does not override it.
const DefaultRateTolerance = 0.10

// evaluate runs every SLO assertion against the measured verdict and
// fills Checks and Pass. A nil SLO asserts nothing; Pass then only
// requires the run itself to have been error-free.
func (v *Verdict) evaluate(slo *SLO) {
	v.Checks = []Check{}
	errFree := v.QuiesceErrors == 0
	for _, p := range v.Phases {
		if p.OtherErrors > 0 {
			errFree = false
		}
	}
	if slo != nil {
		tol := slo.RateTolerance
		if tol == 0 {
			tol = DefaultRateTolerance
		}
		for i := range v.Phases {
			p := &v.Phases[i]
			if p.TargetRate > 0 {
				dev := math.Abs(p.AchievedRate-p.TargetRate) / p.TargetRate
				v.Checks = append(v.Checks, Check{
					Name: "rate", Phase: p.Name,
					Limit: tol, Actual: dev,
					Pass:   dev <= tol && !p.Starved,
					Detail: fmt.Sprintf("achieved %.1f of target %.1f batches/s", p.AchievedRate, p.TargetRate),
				})
			}
			// Unpaced phases (including the synthetic drain) run at full
			// throttle, so their latency measures queueing by design; the
			// p99 bound is asserted only where a target rate paces load.
			if slo.P99AppendMillis > 0 && p.Latency != nil && p.TargetRate > 0 {
				v.Checks = append(v.Checks, Check{
					Name: "p99-append", Phase: p.Name,
					Limit: slo.P99AppendMillis, Actual: p.Latency.P99Millis,
					Pass: p.Latency.P99Millis <= slo.P99AppendMillis,
				})
			}
			if slo.Zero5xxDuringKill && len(p.Injected) > 0 {
				actual := float64(p.Errors5xx)
				detail := "executor-observed 5xx"
				if p.Scrape != nil && p.Scrape.Error == "" {
					// The scraped server-side counter is the stronger
					// witness: it counts every 5xx the target served,
					// including responses the executor never saw.
					if p.Scrape.HTTP5xxDelta > actual {
						actual = p.Scrape.HTTP5xxDelta
						detail = "scraped server-side 5xx delta"
					}
				} else {
					detail = "executor-observed 5xx (boundary scrape failed)"
				}
				v.Checks = append(v.Checks, Check{
					Name: "zero-5xx", Phase: p.Name,
					Limit: 0, Actual: actual,
					Pass:   actual == 0 && (p.Scrape == nil || p.Scrape.Error == ""),
					Detail: detail,
				})
			}
		}
		if slo.QuiesceSeconds > 0 {
			v.Checks = append(v.Checks, Check{
				Name:  "quiesce",
				Limit: slo.QuiesceSeconds, Actual: v.QuiesceSeconds,
				Pass: v.QuiesceSeconds > 0 && v.QuiesceSeconds <= slo.QuiesceSeconds,
			})
		}
		if slo.MinPrecision > 0 {
			c := Check{Name: "precision", Limit: slo.MinPrecision}
			if v.Quality != nil {
				c.Actual = v.Quality.Precision
				c.Pass = c.Actual >= slo.MinPrecision
			}
			v.Checks = append(v.Checks, c)
		}
		if slo.MinRecall > 0 {
			c := Check{Name: "recall", Limit: slo.MinRecall}
			if v.Quality != nil {
				c.Actual = v.Quality.Recall
				c.Pass = c.Actual >= slo.MinRecall
			}
			v.Checks = append(v.Checks, c)
		}
	}
	v.Pass = errFree
	for _, c := range v.Checks {
		if !c.Pass {
			v.Pass = false
		}
	}
}

// summarizeLatency reduces a sample to percentiles, nil when empty (a
// phase with no successful appends has no latency distribution).
func summarizeLatency(samples []time.Duration) *LatencyStats {
	if len(samples) == 0 {
		return nil
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	ms := func(d time.Duration) float64 { return d.Seconds() * 1e3 }
	return &LatencyStats{
		P50Millis:  ms(quantile(sorted, 0.50)),
		P90Millis:  ms(quantile(sorted, 0.90)),
		P99Millis:  ms(quantile(sorted, 0.99)),
		MaxMillis:  ms(sorted[len(sorted)-1]),
		MeanMillis: ms(sum / time.Duration(len(sorted))),
	}
}

// quantile is the nearest-rank q-quantile of sorted, clamped into the
// sample.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
