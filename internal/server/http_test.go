package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"copydetect/internal/dataset"
)

// do issues one request against the handler and decodes the JSON body.
func do(t *testing.T, srv *httptest.Server, method, path string, body any, out any, hdr map[string]string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal body: %v", err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, srv.URL+path, rd)
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode != http.StatusNotModified {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode response: %v", method, path, err)
		}
	}
	return resp
}

func wantStatus(t *testing.T, resp *http.Response, want int) {
	t.Helper()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d", resp.Request.Method, resp.Request.URL.Path, resp.StatusCode, want)
	}
}

// TestHTTPEndToEnd drives the full wire protocol against the paper's
// motivating example (Table I): create, stream, quiesce, read cached
// results with ETag revalidation, delete.
func TestHTTPEndToEnd(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	wantStatus(t, do(t, srv, http.MethodGet, "/healthz", nil, nil, nil), http.StatusOK)

	var list struct {
		Datasets []Info `json:"datasets"`
	}
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets", nil, &list, nil), http.StatusOK)
	if len(list.Datasets) != 0 {
		t.Fatalf("fresh registry lists %d datasets", len(list.Datasets))
	}

	var info Info
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/motivating",
		createRequest{Workers: 2}, &info, nil), http.StatusCreated)
	if info.Name != "motivating" || info.Workers != 2 || info.Alpha == 0 {
		t.Fatalf("create info = %+v", info)
	}
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/motivating", nil, nil, nil),
		http.StatusConflict)

	// The motivating example, streamed as one batch.
	ds, _ := dataset.Motivating()
	var appended appendResponse
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/motivating/observations",
		appendRequest{Observations: dataset.Records(ds)}, &appended, nil), http.StatusAccepted)
	if appended.Version != 1 || appended.Observations != ds.NumObservations() {
		t.Fatalf("append response = %+v", appended)
	}

	var stats statsResponse
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/motivating/quiesce", nil, &stats, nil),
		http.StatusOK)
	if !stats.Converged || stats.Round != 1 || stats.Algorithm != "HYBRID" || stats.DetectRounds == 0 {
		t.Fatalf("quiesce stats = %+v", stats)
	}

	var copies copiesResponse
	resp := do(t, srv, http.MethodGet, "/v1/datasets/motivating/copies", nil, &copies, nil)
	wantStatus(t, resp, http.StatusOK)
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("copies response has no ETag")
	}
	if !copies.Converged || len(copies.Pairs) == 0 {
		t.Fatalf("copies = %+v; the motivating example must detect copying", copies)
	}
	for _, pr := range copies.Pairs {
		if pr.Direction == "" || pr.S1 == pr.S2 {
			t.Fatalf("malformed pair %+v", pr)
		}
	}
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/motivating/copies", nil, nil,
		map[string]string{"If-None-Match": etag}), http.StatusNotModified)

	var truth truthResponse
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/motivating/truth", nil, &truth, nil),
		http.StatusOK)
	if len(truth.Truth) != ds.NumItems() {
		t.Fatalf("truth decided for %d items, want %d", len(truth.Truth), ds.NumItems())
	}

	// A second append invalidates the cached ETag and, once quiesced,
	// republishes from an INCREMENTAL round.
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/motivating/observations",
		appendRequest{Observations: []dataset.Record{{Source: "S9", Item: "NY", Value: "Albany"}}},
		nil, nil), http.StatusAccepted)
	wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/motivating/quiesce", nil, &stats, nil),
		http.StatusOK)
	if stats.Round != 2 || stats.Algorithm != "INCREMENTAL" || stats.ServedVersion != 2 {
		t.Fatalf("post-append stats = %+v", stats)
	}
	resp = do(t, srv, http.MethodGet, "/v1/datasets/motivating/copies", nil, &copies, nil)
	wantStatus(t, resp, http.StatusOK)
	if resp.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged after a new round")
	}

	wantStatus(t, do(t, srv, http.MethodDelete, "/v1/datasets/motivating", nil, nil, nil),
		http.StatusOK)
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/motivating", nil, nil, nil),
		http.StatusNotFound)

	// Recreating the name must not revive ETags of the deleted dataset:
	// a stale If-None-Match gets fresh data, not a 304.
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/motivating", nil, nil, nil),
		http.StatusCreated)
	resp = do(t, srv, http.MethodGet, "/v1/datasets/motivating/copies", nil, &copies, nil)
	wantStatus(t, resp, http.StatusOK)
	if resp.Header.Get("ETag") == etag {
		t.Fatal("recreated dataset reuses the deleted dataset's ETag")
	}
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/motivating/copies", nil, nil,
		map[string]string{"If-None-Match": etag}), http.StatusOK)
}

// TestHTTPErrors pins the error surface: unknown paths and datasets,
// wrong methods, malformed and empty bodies, invalid priors.
func TestHTTPErrors(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodGet, "/nope", "", http.StatusNotFound},
		{http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/datasets", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/datasets/", "", http.StatusNotFound},
		{http.MethodGet, "/v1/datasets/none", "", http.StatusNotFound},
		{http.MethodDelete, "/v1/datasets/none", "", http.StatusNotFound},
		{http.MethodGet, "/v1/datasets/none/copies", "", http.StatusNotFound},
		{http.MethodGet, "/v1/datasets/none/truth", "", http.StatusNotFound},
		{http.MethodGet, "/v1/datasets/none/stats", "", http.StatusNotFound},
		{http.MethodPost, "/v1/datasets/none/quiesce", "", http.StatusNotFound},
		{http.MethodPost, "/v1/datasets/none/observations", `{"observations":[]}`, http.StatusNotFound},
		{http.MethodGet, "/v1/datasets/x/y/z", "", http.StatusNotFound},
		{http.MethodPut, "/v1/datasets/bad", `{"alpha":2}`, http.StatusBadRequest},
		{http.MethodPut, "/v1/datasets/bad", `{not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("new request: %v", err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		var er errorResponse
		json.NewDecoder(resp.Body).Decode(&er)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		} else if er.Error == "" {
			t.Errorf("%s %s: error response without error message", c.method, c.path)
		}
	}

	// Method checks and body validation on an existing dataset.
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/d", nil, nil, nil), http.StatusCreated)
	for _, c := range []struct {
		method, path string
		body         any
		want         int
	}{
		{http.MethodGet, "/v1/datasets/d/observations", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/datasets/d/copies", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/datasets/d/truth", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/datasets/d/stats", nil, http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/datasets/d/quiesce", nil, http.StatusMethodNotAllowed},
		{http.MethodPatch, "/v1/datasets/d", nil, http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/datasets/d/observations", appendRequest{}, http.StatusBadRequest},
		{http.MethodPost, "/v1/datasets/d/observations",
			appendRequest{Observations: []dataset.Record{{Source: "s"}}}, http.StatusBadRequest},
		{http.MethodPost, "/v1/datasets/d/observations",
			appendRequest{Truth: []dataset.Record{{Item: "i"}}}, http.StatusBadRequest},
	} {
		wantStatus(t, do(t, srv, c.method, c.path, c.body, nil, nil), c.want)
	}

	// Reads on a dataset with no published round still succeed (round 0).
	var copies copiesResponse
	resp := do(t, srv, http.MethodGet, "/v1/datasets/d/copies", nil, &copies, nil)
	wantStatus(t, resp, http.StatusOK)
	if copies.Round != 0 || len(copies.Pairs) != 0 || !copies.Converged {
		t.Fatalf("round-0 copies = %+v", copies)
	}
	if want := fmt.Sprintf("%q", "d-g1-v0-r0"); resp.Header.Get("ETag") != want {
		t.Fatalf("round-0 ETag = %s, want %s", resp.Header.Get("ETag"), want)
	}
}

// TestETagAcrossDeleteBetweenRounds pins cache correctness when a
// dataset disappears while a client is polling with a stored ETag: the
// deleted name 404s rather than 304ing, and a recreated dataset with
// the very same content never validates the old tag, because the
// creation generation is part of it.
func TestETagAcrossDeleteBetweenRounds(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	ds, _ := dataset.Motivating()
	recs := dataset.Records(ds)
	populate := func() {
		wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/books", nil, nil, nil),
			http.StatusCreated)
		wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/books/observations",
			appendRequest{Observations: recs}, nil, nil), http.StatusAccepted)
		wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/books/quiesce", nil, nil, nil),
			http.StatusOK)
	}
	populate()
	var first copiesResponse
	resp := do(t, srv, http.MethodGet, "/v1/datasets/books/copies", nil, &first, nil)
	wantStatus(t, resp, http.StatusOK)
	etag := resp.Header.Get("ETag")
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/books/copies", nil, nil,
		map[string]string{"If-None-Match": etag}), http.StatusNotModified)

	// The dataset is deleted between the client's polls.
	wantStatus(t, do(t, srv, http.MethodDelete, "/v1/datasets/books", nil, nil, nil), http.StatusOK)
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/books/copies", nil, nil,
		map[string]string{"If-None-Match": etag}), http.StatusNotFound)

	// Same name, same content, same version and round numbers — but a
	// different incarnation: the stale tag must NOT validate, and the
	// fresh tag must differ even though the payload is identical.
	populate()
	var second copiesResponse
	resp = do(t, srv, http.MethodGet, "/v1/datasets/books/copies", nil, &second,
		map[string]string{"If-None-Match": etag})
	wantStatus(t, resp, http.StatusOK)
	if resp.Header.Get("ETag") == etag {
		t.Fatal("recreated dataset reissued the deleted incarnation's ETag")
	}
	if second.Version != first.Version || second.Round != first.Round {
		t.Fatalf("recreated dataset at version %d round %d, want %d/%d (otherwise the test is vacuous)",
			second.Version, second.Round, first.Version, first.Round)
	}
}

// TestDuplicateCreateKeepsVersionCounter is the regression test for the
// duplicate-name fix: a second PUT for an existing dataset must 409 and
// leave the original's append version, config and published state
// untouched — not silently reset the dataset.
func TestDuplicateCreateKeepsVersionCounter(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/books",
		createRequest{Workers: 2, Alpha: 0.2}, nil, nil), http.StatusCreated)
	ds, _ := dataset.Motivating()
	for _, rec := range dataset.Records(ds)[:3] {
		wantStatus(t, do(t, srv, http.MethodPost, "/v1/datasets/books/observations",
			appendRequest{Observations: []dataset.Record{rec}}, nil, nil), http.StatusAccepted)
	}

	var before Info
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/books", nil, &before, nil), http.StatusOK)
	if before.Version != 3 {
		t.Fatalf("setup: version = %d, want 3", before.Version)
	}

	// Duplicate creates, with and without a (different) config body.
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/books", nil, nil, nil),
		http.StatusConflict)
	wantStatus(t, do(t, srv, http.MethodPut, "/v1/datasets/books",
		createRequest{Workers: 7, Alpha: 0.3}, nil, nil), http.StatusConflict)

	var after Info
	wantStatus(t, do(t, srv, http.MethodGet, "/v1/datasets/books", nil, &after, nil), http.StatusOK)
	if after != before {
		t.Fatalf("duplicate create mutated the dataset:\n before %+v\n after  %+v", before, after)
	}
}
