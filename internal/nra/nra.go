// Package nra implements Fagin's No-Random-Access algorithm (Fagin, Lotem,
// Naor, PODS 2001) for top-k aggregation over score-sorted lists, plus the
// FAGININPUT generator of Section II-B: the paper explored NRA as an
// alternative route to scalable copy detection and found that merely
// generating NRA's input lists is already slower than the proposed
// index-based algorithms (Table X).
package nra

import (
	"container/heap"
	"sort"
)

// Scored is one (object, partial score) pair inside a list.
type Scored struct {
	ID    int64
	Score float64
}

// List is one input list for NRA, sorted by decreasing score. An object
// appears at most once per list; an object absent from the list
// contributes exactly Absent to its aggregate (0 in the classic setting:
// "not in this list" means "no partial score from it").
type List struct {
	Items  []Scored
	Absent float64
}

// Sorted reports whether the list respects the decreasing-score contract.
func (l List) Sorted() bool {
	return sort.SliceIsSorted(l.Items, func(i, j int) bool { return l.Items[i].Score > l.Items[j].Score })
}

// low returns the smallest contribution the list could make for an object
// not yet seen in it: either it appears with at most the list's minimum
// score, or it is absent.
func (l List) low() float64 {
	if len(l.Items) == 0 {
		return l.Absent
	}
	if m := l.Items[len(l.Items)-1].Score; m < l.Absent {
		return m
	}
	return l.Absent
}

// objState tracks what NRA knows about one object.
type objState struct {
	known    float64
	seenMask uint64
}

// TopK runs NRA over the lists (at most 64 of them) and returns the k
// objects with the largest aggregate (sum) scores, best first, using
// sequential accesses only. depth reports the total number of sequential
// accesses performed before the stopping condition held.
func TopK(lists []List, k int) (top []Scored, depth int) {
	if k <= 0 || len(lists) == 0 || len(lists) > 64 {
		return nil, 0
	}
	nl := len(lists)
	objs := make(map[int64]*objState)
	// For an object not yet seen in list i there are two cases while the
	// list still has unread items: it appears later (score within
	// [min item score, current frontier score]) or it is absent (exactly
	// Absent). Once the list is exhausted, absence is certain and the
	// contribution is exactly Absent.
	frontier := make([]float64, nl) // upper bound of an unseen contribution
	lows := make([]float64, nl)     // lower bound of an unseen contribution
	pos := make([]int, nl)
	for i, l := range lists {
		lows[i] = l.low()
		if len(l.Items) > 0 {
			frontier[i] = l.Items[0].Score
		} else {
			frontier[i] = l.Absent
		}
		if frontier[i] < l.Absent {
			frontier[i] = l.Absent
		}
	}

	worst := func(o *objState) float64 {
		w := o.known
		for i := 0; i < nl; i++ {
			if o.seenMask&(1<<uint(i)) == 0 {
				w += lows[i]
			}
		}
		return w
	}
	best := func(o *objState) float64 {
		b := o.known
		for i := 0; i < nl; i++ {
			if o.seenMask&(1<<uint(i)) == 0 {
				b += frontier[i]
			}
		}
		return b
	}

	for {
		progressed := false
		for i := range lists {
			if pos[i] >= len(lists[i].Items) {
				continue
			}
			it := lists[i].Items[pos[i]]
			pos[i]++
			depth++
			progressed = true
			o := objs[it.ID]
			if o == nil {
				o = &objState{}
				objs[it.ID] = o
			}
			o.known += it.Score
			o.seenMask |= 1 << uint(i)
			if pos[i] < len(lists[i].Items) {
				frontier[i] = lists[i].Items[pos[i]].Score
				if frontier[i] < lists[i].Absent {
					frontier[i] = lists[i].Absent
				}
			} else {
				// Exhausted: unseen objects are definitively absent.
				frontier[i] = lists[i].Absent
				lows[i] = lists[i].Absent
			}
		}
		if !progressed {
			break // all lists exhausted: every aggregate is exact
		}
		if len(objs) < k {
			continue
		}
		// Fagin's stopping rule: fix T = the current top-k by worst-case
		// score with threshold m = min worst in T, and stop once neither a
		// completely unseen object nor any object outside T can exceed m.
		T, m := currentTop(objs, k, worst)
		unseenBest := 0.0
		for i := range frontier {
			unseenBest += frontier[i]
		}
		if unseenBest > m {
			continue
		}
		stop := true
		for id, o := range objs {
			if _, in := T[id]; in {
				continue
			}
			if best(o) > m {
				stop = false
				break
			}
		}
		if stop {
			break
		}
	}

	// Rank seen objects by worst-case score and return the top k. Reported
	// scores are the proven lower bounds, which are exact whenever the
	// object was seen in (or is provably absent from) every list.
	h := &scoredHeap{}
	for id, o := range objs {
		heap.Push(h, Scored{ID: id, Score: worst(o)})
		if h.Len() > k {
			heap.Pop(h)
		}
	}
	top = make([]Scored, h.Len())
	for i := len(top) - 1; i >= 0; i-- {
		top[i] = heap.Pop(h).(Scored)
	}
	return top, depth
}

// currentTop returns the ids of the k objects with the largest worst-case
// scores and the smallest worst-case score among them.
func currentTop(objs map[int64]*objState, k int, worst func(*objState) float64) (map[int64]struct{}, float64) {
	h := &scoredHeap{}
	for id, o := range objs {
		heap.Push(h, Scored{ID: id, Score: worst(o)})
		if h.Len() > k {
			heap.Pop(h)
		}
	}
	T := make(map[int64]struct{}, h.Len())
	m := (*h)[0].Score
	for _, s := range *h {
		T[s.ID] = struct{}{}
		if s.Score < m {
			m = s.Score
		}
	}
	return T, m
}

// scoredHeap is a min-heap on Score used to keep the running top-k.
type scoredHeap []Scored

func (h scoredHeap) Len() int           { return len(h) }
func (h scoredHeap) Less(i, j int) bool { return h[i].Score < h[j].Score }
func (h scoredHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x any)        { *h = append(*h, x.(Scored)) }
func (h *scoredHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
