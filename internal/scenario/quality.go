package scenario

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
)

// copiesResult mirrors the daemon's GET /copies response (the subset
// quality scoring needs).
type copiesResult struct {
	Algorithm string `json:"algorithm"`
	Converged bool   `json:"converged"`
	Pairs     []struct {
		S1 string `json:"s1"`
		S2 string `json:"s2"`
	} `json:"pairs"`
}

// scoreQuality reads every dataset's detected copying pairs and scores
// them against the planted truth, micro-averaged across datasets:
// recall over the direct copier→origin pairs (gen.Planted.Pairs),
// precision against the clique closure (gen.Planted.Closure) — a
// detected copier–copier pair inside one clique is transitive evidence
// of the same planted copying, not a false positive. Returns nil when
// no dataset's results could be read.
func (r *Runner) scoreQuality(ctx context.Context, client *http.Client, streams []*stream) *Quality {
	q := &Quality{}
	algos := map[string]bool{}
	read := 0
	for _, st := range streams {
		status, _, body, err := doJSON(ctx, client, http.MethodGet,
			r.Target+"/v1/datasets/"+st.name+"/copies", nil)
		if err != nil || status != http.StatusOK {
			r.logf("quality: read %s/copies: status=%d err=%v", st.name, status, err)
			continue
		}
		var res copiesResult
		if err := json.Unmarshal(body, &res); err != nil {
			r.logf("quality: decode %s/copies: %v", st.name, err)
			continue
		}
		read++
		if res.Algorithm != "" {
			algos[res.Algorithm] = true
		}
		dq := DatasetQuality{
			Dataset:   st.name,
			Algorithm: res.Algorithm,
			Detected:  len(res.Pairs),
			Planted:   len(st.planted.Pairs),
		}
		for _, pr := range res.Pairs {
			a, okA := st.byName[pr.S1]
			b, okB := st.byName[pr.S2]
			if !okA || !okB {
				continue // an unknown source name can match no planted pair
			}
			if st.planted.PairPlanted(a, b) {
				dq.TruePosDirect++
			}
			if st.planted.PairInClique(a, b) {
				dq.TruePosClique++
			}
		}
		q.DetectedPairs += dq.Detected
		q.PlantedPairs += dq.Planted
		q.TruePosDirect += dq.TruePosDirect
		q.TruePosClique += dq.TruePosClique
		q.PerDataset = append(q.PerDataset, dq)
	}
	if read == 0 {
		return nil
	}
	if q.DetectedPairs > 0 {
		q.Precision = float64(q.TruePosClique) / float64(q.DetectedPairs)
	}
	if q.PlantedPairs > 0 {
		q.Recall = float64(q.TruePosDirect) / float64(q.PlantedPairs)
	}
	for a := range algos {
		q.Algorithms = append(q.Algorithms, a)
	}
	sort.Strings(q.Algorithms)
	return q
}
