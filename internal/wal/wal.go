// Package wal implements the write-ahead log underneath the durable
// serving layer: a checksummed, append-only record log split into
// fixed-size segment files, with torn-tail truncation on open and
// segment trimming once a snapshot covers a prefix of the log.
//
// Each record is framed as a 4-byte little-endian payload length, a
// 4-byte CRC-32C of the payload, and the payload itself. Records are
// numbered by a log sequence number (LSN) starting at 1; a segment file
// is named by the LSN of its first record (16 hex digits + ".wal") and
// starts with a 5-byte header (magic "CDWL" plus a format version), so
// the set of files alone describes the log's layout.
//
// Crash behaviour: a process may die mid-write, leaving a partial frame
// or a frame whose checksum does not match at the end of the newest
// segment. Open detects this torn tail, truncates the segment back to
// its last intact record, and resumes appending from there. A torn or
// checksum-mismatching record anywhere else — in the middle of a
// segment, or in any segment that has a successor — cannot be produced
// by a crash and makes Open fail instead of silently dropping records.
//
//copydetect:deterministic
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

const (
	magic         = "CDWL"
	formatVersion = 1
	headerSize    = len(magic) + 1
	frameSize     = 8 // u32 payload length + u32 CRC-32C

	// DefaultSegmentBytes is the rotation threshold used when
	// Options.SegmentBytes is zero.
	DefaultSegmentBytes = 4 << 20

	// maxRecordBytes bounds a single payload; a length prefix beyond it
	// is treated as corruption rather than attempted as an allocation.
	maxRecordBytes = 1 << 28
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Log.
type Options struct {
	// SegmentBytes is the size at which the active segment is closed and
	// a new one started (default DefaultSegmentBytes). Rotation happens
	// between records; a single record larger than the threshold still
	// lands in one segment.
	SegmentBytes int64
	// Fsync makes every Append fsync the segment file before returning,
	// so an acknowledged record survives power loss, not just process
	// death. Without it the operating system flushes on its own schedule.
	Fsync bool
	// ObserveAppend, when non-nil, is called after every successful
	// Append with the call's total duration and the portion spent in
	// fsync (zero when Fsync is off). It runs with the log lock held and
	// must be cheap and non-blocking — it exists to feed latency
	// histograms, not to do work.
	ObserveAppend func(total, fsync time.Duration)
}

// segment is one on-disk segment file; first is the LSN of its first
// record and next the LSN one past its last.
type segment struct {
	first uint64
	next  uint64
	path  string
}

// Log is an append-only record log over a directory of segment files.
// All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	active   *os.File
	size     int64 // size of the active segment
	segments []segment
	next     uint64 // LSN of the next record to be appended
	closed   bool
	failed   bool // a partial write could not be rolled back; log is poisoned
}

// Open opens (creating if necessary) the log in dir, replays every
// intact record in LSN order through replay, truncates a torn tail off
// the newest segment, and returns the log ready for appending. A nil
// replay skips delivery but still validates and truncates. If replay
// returns an error, Open stops and returns it.
func Open(dir string, opts Options, replay func(lsn uint64, payload []byte) error) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	names, err := segmentNames(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, next: 1}
	for i, name := range names {
		path := filepath.Join(dir, name)
		first, err := lsnOfName(name)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			// Older segments may have been trimmed away; the log starts
			// wherever its oldest surviving segment does.
			l.next = first
		} else if first != l.next {
			return nil, fmt.Errorf("wal: segment %s starts at lsn %d, want %d", name, first, l.next)
		}
		last := i == len(names)-1
		if err := l.scanSegment(path, last, replay); err != nil {
			return nil, err
		}
		l.segments = append(l.segments, segment{first: first, next: l.next, path: path})
	}
	if len(l.segments) == 0 {
		if err := l.startSegment(); err != nil {
			return nil, err
		}
	} else {
		tail := l.segments[len(l.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_RDWR, 0o666)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		size, err := f.Seek(0, io.SeekEnd)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		l.active, l.size = f, size
	}
	return l, nil
}

// scanSegment validates the records of one segment, delivering each to
// replay and advancing l.next. When last is set, the first invalid or
// incomplete record marks a torn tail: the file is truncated back to the
// end of the preceding record. Anywhere else the same condition is an
// unrecoverable corruption error.
func (l *Log) scanSegment(path string, last bool, replay func(lsn uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	truncate := func(off int64, why string) error {
		if !last {
			return fmt.Errorf("wal: segment %s: %s at offset %d (not the newest segment; refusing to truncate)", filepath.Base(path), why, off)
		}
		if err := os.Truncate(path, off); err != nil {
			return fmt.Errorf("wal: truncating torn tail of %s: %w", filepath.Base(path), err)
		}
		return nil
	}

	header := make([]byte, headerSize)
	if _, err := io.ReadFull(f, header); err != nil {
		// A header too short to read can only be a crash during segment
		// creation; reset the file to an empty, well-formed segment.
		if err := truncate(0, "short header"); err != nil {
			return err
		}
		return l.writeHeader(path)
	}
	if string(header[:len(magic)]) != magic || header[len(magic)] != formatVersion {
		return fmt.Errorf("wal: segment %s: bad header", filepath.Base(path))
	}

	off := int64(headerSize)
	frame := make([]byte, frameSize)
	var payload []byte
	for {
		n, err := io.ReadFull(f, frame)
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err == io.ErrUnexpectedEOF {
			return truncate(off, fmt.Sprintf("partial frame header (%d bytes)", n))
		}
		if err != nil {
			return fmt.Errorf("wal: reading %s: %w", filepath.Base(path), err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > maxRecordBytes {
			return truncate(off, fmt.Sprintf("implausible record length %d", length))
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return truncate(off, "partial record payload")
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return truncate(off, "checksum mismatch")
		}
		if replay != nil {
			if err := replay(l.next, payload); err != nil {
				return err
			}
		}
		l.next++
		off += frameSize + int64(length)
	}
}

// writeHeader rewrites path as an empty segment and opens it as the
// active one.
func (l *Log) writeHeader(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(segmentHeader()); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return f.Sync()
}

func segmentHeader() []byte {
	h := make([]byte, headerSize)
	copy(h, magic)
	h[len(magic)] = formatVersion
	return h
}

// startSegment creates and activates a fresh segment whose first record
// will be l.next. Called with l.mu held (or before the log is shared).
func (l *Log) startSegment() error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		l.active = nil
	}
	path := filepath.Join(l.dir, segmentName(l.next))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(segmentHeader()); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.size = int64(headerSize)
	l.segments = append(l.segments, segment{first: l.next, next: l.next, path: path})
	return nil
}

// Append writes one record and returns its LSN. With Options.Fsync set
// the record is on stable storage when Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > maxRecordBytes {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds the %d-byte limit", len(payload), maxRecordBytes)
	}
	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	if l.failed {
		return 0, fmt.Errorf("wal: log is poisoned by an earlier unrecoverable write failure")
	}
	if l.size >= l.opts.SegmentBytes && l.size > int64(headerSize) {
		if err := l.startSegment(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameSize:], payload)
	if _, err := l.active.Write(buf); err != nil {
		// A partial frame on disk would masquerade as a torn tail and
		// silently swallow every later (acknowledged!) record at the
		// next recovery. Roll the segment back to its last intact
		// record; if that is impossible, refuse all further appends.
		l.rollback()
		return 0, fmt.Errorf("wal: %w", err)
	}
	var fsyncDur time.Duration
	if l.opts.Fsync {
		fsyncStart := time.Now()
		if err := l.active.Sync(); err != nil {
			// The record is written but not provably durable, and the
			// LSN/size bookkeeping below will not run: roll it back so
			// the in-memory state and the file stay consistent.
			l.rollback()
			return 0, fmt.Errorf("wal: %w", err)
		}
		fsyncDur = time.Since(fsyncStart)
	}
	l.size += int64(len(buf))
	lsn := l.next
	l.next++
	l.segments[len(l.segments)-1].next = l.next
	if l.opts.ObserveAppend != nil {
		l.opts.ObserveAppend(time.Since(start), fsyncDur)
	}
	return lsn, nil
}

// rollback restores the active segment to the last acknowledged record
// boundary (l.size) after a failed write, poisoning the log when the
// file cannot be brought back to a consistent state. Called with l.mu
// held.
func (l *Log) rollback() {
	if err := l.active.Truncate(l.size); err != nil {
		l.failed = true
		return
	}
	if _, err := l.active.Seek(l.size, io.SeekStart); err != nil {
		l.failed = true
	}
}

// NextLSN returns the LSN the next Append will get.
func (l *Log) NextLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("wal: log is closed")
	}
	return l.active.Sync()
}

// TrimBefore deletes every closed segment all of whose records have
// LSN < lsn. The active segment is never deleted, so the log always
// remains appendable. It returns the number of segments removed.
func (l *Log) TrimBefore(lsn uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("wal: log is closed")
	}
	removed := 0
	for len(l.segments) > 1 && l.segments[0].next <= lsn {
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: %w", err)
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := SyncDir(l.dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// Close flushes and closes the active segment. The log must not be used
// afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func segmentName(first uint64) string {
	return fmt.Sprintf("%016x.wal", first)
}

func lsnOfName(name string) (uint64, error) {
	base := strings.TrimSuffix(name, ".wal")
	lsn, err := strconv.ParseUint(base, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("wal: segment file %q: %w", name, err)
	}
	return lsn, nil
}

// segmentNames lists the *.wal files of dir sorted by first LSN.
func segmentNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".wal") {
			names = append(names, e.Name())
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, errA := lsnOfName(names[i])
		b, errB := lsnOfName(names[j])
		if errA != nil || errB != nil {
			return names[i] < names[j]
		}
		return a < b
	})
	return names, nil
}

// SyncDir fsyncs a directory so entry creations, renames and removals
// are durable. Exported for the storage layers built on this package,
// so platform quirks in directory syncing have a single home.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync %s: %w", dir, err)
	}
	return nil
}
