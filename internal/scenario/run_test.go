package scenario

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"copydetect/internal/server"
	"copydetect/internal/telemetry"
)

// newTestTarget wires a registry the way cmd/copydetectd does — handler
// plus /metrics behind the HTTP-metrics middleware — so boundary
// scrapes exercise the real exposition path.
func newTestTarget(t *testing.T) *httptest.Server {
	t.Helper()
	reg := server.NewRegistry(server.Config{Concurrency: 2})
	t.Cleanup(func() { reg.Close() })
	treg := telemetry.New()
	reg.RegisterMetrics(treg)
	httpMetrics := telemetry.NewHTTPMetrics(treg, "copydetectd", nil)
	mux := http.NewServeMux()
	mux.Handle("/metrics", treg.Handler())
	mux.Handle("/", server.NewHandler(reg))
	srv := httptest.NewServer(httpMetrics.Wrap(mux))
	t.Cleanup(srv.Close)
	return srv
}

// TestRunEndToEnd drives a two-phase scenario — paced with a burst and
// an injection, then unpaced — against an in-process daemon and asserts
// the verdict end to end: phase accounting, the drain, boundary
// scrapes, detection quality against the planted cliques, and the SLO
// checks.
func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second soak; skipped in -short")
	}
	srv := newTestTarget(t)

	var injMu sync.Mutex
	var injections []string
	r := &Runner{
		Target: srv.URL,
		Injector: InjectorFunc(func(ctx context.Context, step InjectStep) error {
			injMu.Lock()
			defer injMu.Unlock()
			injections = append(injections, step.Action)
			return nil
		}),
		Logf: t.Logf,
	}
	spec := &Spec{
		Name: "unit-soak",
		Datasets: []DatasetGroup{
			{Count: 2, Preset: "stock-1day", Scale: 0.02, Seed: 42, Prefix: "unit",
				Churn: &Churn{Waves: 2, LateFraction: 0.25}},
		},
		Zipf:  0.8,
		Batch: 400,
		Phases: []Phase{
			{Name: "paced", Duration: Duration{1200 * time.Millisecond}, Rate: 20, Clients: 2,
				Reads:  0.25,
				Burst:  &Burst{Every: Duration{400 * time.Millisecond}, Length: Duration{100 * time.Millisecond}, Factor: 2},
				Inject: []InjectStep{{At: Duration{200 * time.Millisecond}, Action: "pause-backend"}}},
			{Name: "flood", Duration: Duration{400 * time.Millisecond}, Clients: 2},
		},
		SLO: &SLO{
			P99AppendMillis:   5000,
			Zero5xxDuringKill: true,
			QuiesceSeconds:    120,
			MinPrecision:      0.9,
			MinRecall:         0.8,
			RateTolerance:     0.25, // generous: a 1.2s window is few samples
		},
	}
	v, err := r.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	if v.Scenario != "unit-soak" || v.Datasets != 2 {
		t.Fatalf("verdict header wrong: %+v", v)
	}
	// Two declared phases plus the synthetic drain (the flood phase
	// cannot exhaust 2×11k observations in 400ms).
	if len(v.Phases) != 3 || v.Phases[2].Name != "(drain)" {
		names := make([]string, len(v.Phases))
		for i, p := range v.Phases {
			names[i] = p.Name
		}
		t.Fatalf("phases = %v, want [paced flood (drain)]", names)
	}
	paced := v.Phases[0]
	if paced.Appends == 0 || paced.Observations == 0 {
		t.Fatalf("paced phase streamed nothing: %+v", paced)
	}
	// Burst-adjusted effective target: 20 * (1 + (2-1)*100/400) = 25.
	if paced.TargetRate != 25 {
		t.Fatalf("burst-adjusted target = %g, want 25", paced.TargetRate)
	}
	if paced.Reads == 0 {
		t.Error("reads=0.25 issued no GET /copies")
	}
	if len(paced.Injected) != 1 {
		t.Fatalf("injections recorded: %v", paced.Injected)
	}
	injMu.Lock()
	gotInj := len(injections)
	injMu.Unlock()
	if gotInj != 1 {
		t.Fatalf("injector called %d times, want 1", gotInj)
	}
	for _, p := range v.Phases {
		if p.Errors5xx != 0 || p.OtherErrors != 0 {
			t.Fatalf("phase %s had errors: %+v", p.Name, p)
		}
		if p.Scrape == nil || p.Scrape.Error != "" || p.Scrape.Samples == 0 {
			t.Fatalf("phase %s boundary scrape: %+v", p.Name, p.Scrape)
		}
	}
	// The drain must leave nothing behind: every observation of both
	// complete datasets landed before quiesce.
	total := 0
	for _, p := range v.Phases {
		total += p.Observations
	}
	if total != v.Observations {
		t.Fatalf("streamed %d of %d generated observations", total, v.Observations)
	}
	if v.QuiesceSeconds <= 0 || v.QuiesceErrors != 0 {
		t.Fatalf("quiesce: %gs, %d errors", v.QuiesceSeconds, v.QuiesceErrors)
	}
	if v.Quality == nil {
		t.Fatal("no quality score")
	}
	if v.Quality.Precision < 0.9 || v.Quality.Recall < 0.8 {
		t.Fatalf("quality below the planted-truth gates: %+v", v.Quality)
	}
	if len(v.Quality.PerDataset) != 2 {
		t.Fatalf("per-dataset quality: %+v", v.Quality.PerDataset)
	}
	if len(v.Quality.Algorithms) == 0 {
		t.Error("no detection algorithms recorded")
	}
	if !v.Pass {
		t.Fatalf("verdict failed: %+v", v.Checks)
	}
}

// TestRunSmoke is the -short cousin of TestRunEndToEnd: one small
// dataset, a single sub-second paced phase, drain, quiesce and quality
// scoring against an in-process daemon. It keeps the executor's main
// path exercised (and counted by the coverage floor) in the quick CI
// job; the full-fat soak stays in the non-short run.
func TestRunSmoke(t *testing.T) {
	srv := newTestTarget(t)
	r := &Runner{Target: srv.URL, Logf: t.Logf}
	spec := &Spec{
		Name: "smoke",
		Datasets: []DatasetGroup{
			{Count: 1, Preset: "stock-1day", Scale: 0.01, Seed: 7, Prefix: "smoke",
				Churn: &Churn{Waves: 2, LateFraction: 0.2}},
		},
		Zipf:  0.5,
		Batch: 500,
		Phases: []Phase{
			{Name: "trickle", Duration: Duration{200 * time.Millisecond}, Rate: 10, Clients: 2, Reads: 0.5},
		},
	}
	v, err := r.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !v.Pass {
		t.Fatalf("smoke verdict failed: %+v", v)
	}
	if v.Observations == 0 || v.Phases[len(v.Phases)-1].Name != "(drain)" {
		t.Fatalf("smoke run streamed nothing or skipped the drain: %+v", v.Phases)
	}
	if v.Quality == nil || v.Quality.DetectedPairs == 0 {
		t.Fatalf("smoke run scored no detection quality: %+v", v.Quality)
	}
	for _, p := range v.Phases {
		if p.Scrape == nil || p.Scrape.Error != "" {
			t.Fatalf("phase %s boundary scrape: %+v", p.Name, p.Scrape)
		}
	}
}

// TestRunRejectsInjectWithoutInjector pins the up-front check: a spec
// that injects failures cannot run without an injector to realize them.
func TestRunRejectsInjectWithoutInjector(t *testing.T) {
	s := validSpec()
	s.Phases[0].Inject = []InjectStep{{Action: "kill-backend"}}
	r := &Runner{Target: "http://127.0.0.1:0"}
	if _, err := r.Run(context.Background(), s, nil); err == nil {
		t.Fatal("inject steps without an injector did not error")
	}
}

// TestRunSurfacesServerErrors pins the error path: a target that 500s
// every append produces a failing verdict with the damage tallied, not
// an aborted run.
func TestRunSurfacesServerErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("retry backoffs make this a multi-second test; skipped in -short")
	}
	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodPut {
			w.WriteHeader(http.StatusCreated)
			return
		}
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer fail.Close()

	s := validSpec()
	s.Datasets[0].Scale = 0.02
	s.Phases[0].Duration = Duration{300 * time.Millisecond}
	s.Phases[0].Rate = 0
	r := &Runner{Target: fail.URL, Logf: t.Logf}
	v, err := r.Run(context.Background(), s, nil)
	if err != nil {
		t.Fatalf("run aborted instead of reporting: %v", err)
	}
	if v.Pass {
		t.Fatal("all-5xx run passed")
	}
	tallied := 0
	for _, p := range v.Phases {
		tallied += p.Errors5xx
	}
	if tallied == 0 {
		t.Fatalf("no 5xx tallied: %+v", v.Phases)
	}
}
