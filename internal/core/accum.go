package core

import (
	"math"

	"copydetect/internal/bayes"
)

// This file implements the renormalized likelihood-ratio product that the
// accumulation kernels use in place of per-co-occurrence logarithms.
//
// The pre-SoA kernel summed, per (entry, pair) co-occurrence and per
// direction, the contribution score of Eq. (6):
//
//	C += ln(1−s + s·Pr(ΦD(S2)) / Pr(ΦD|S1⊥S2))
//
// Profiling a HYBRID round (see PERFORMANCE.md) put ~45% of its CPU time
// inside math.Log — two logarithms per co-occurrence dwarfed everything
// else. But a sum of logs is the log of a product, so the kernel instead
// multiplies the raw likelihood ratios
//
//	r = 1−s + s·prov/ind        (r ≥ 1−s > 0, since prov, ind ≥ 0)
//
// and takes a single logarithm per direction only where a score is
// actually consumed: at a bound evaluation or when the pair is finalized.
//
// A float64 product of thousands of factors can overflow or underflow, so
// the accumulator is kept renormalized as m·2^e with the mantissa m held
// in [2^-512, 2^512). Factors below 2^256 keep m inside (2^-515, 2^768),
// so a single conditional rescale per multiply suffices; the rare larger
// factor (a near-zero independent-observation probability) takes a Frexp
// slow path. The degenerate case ind ≤ 0 — sharing is proof — is
// represented as m = +Inf, exactly mirroring ContribSame's +Inf return.
//
// The recovered log differs from the old running sum only by
// floating-point association (≈ k·2⁻⁵² for k factors), far inside the
// 1e-9 tolerance the cross-algorithm property tests use.

const (
	mantHi    = 0x1p512  // renormalize when the mantissa leaves [mantLo, mantHi)
	mantLo    = 0x1p-512 //
	mantUp    = 0x1p512  // rescale factors (exact powers of two)
	mantDown  = 0x1p-512 //
	mantShift = 512      // exponent bits moved per rescale

	// rBig routes a factor to the Frexp slow path. Below it a multiply
	// cannot overflow: m·r < 2^512 · 2^256 = 2^768 < MaxFloat64, and one
	// rescale returns the mantissa to its window.
	rBig = 0x1p256
)

// mulRenorm multiplies the renormalized accumulator m·2^e by the factor
// r > 0. A +Inf mantissa (degenerate "sharing is proof" evidence)
// propagates unchanged.
func mulRenorm(m float64, e int32, r float64) (float64, int32) {
	if r < rBig {
		m *= r
		if m < mantHi {
			if m >= mantLo {
				return m, e
			}
			return m * mantUp, e - mantShift
		}
		return m * mantDown, e + mantShift
	}
	return mulRenormBig(m, e, r)
}

// mulRenormBig is the slow path for pathologically large factors, split
// out so the hot path stays small enough to inline.
func mulRenormBig(m float64, e int32, r float64) (float64, int32) {
	if math.IsInf(r, 1) || math.IsInf(m, 1) {
		return math.Inf(1), e
	}
	fr, ex := math.Frexp(r) // r = fr·2^ex, fr ∈ [0.5, 1)
	m *= fr
	e += int32(ex)
	if m < mantLo {
		return m * mantUp, e - mantShift
	}
	return m, e
}

// logAcc recovers ln(m·2^e) — the accumulated evidence in log space, and
// the only place the product representation pays for a logarithm.
func logAcc(m float64, e int32) float64 {
	return math.Log(m) + float64(e)*math.Ln2
}

// prodAccum accumulates both directional products of a single pair. The
// scan kernel works on structure-of-arrays columns instead; this compact
// form serves the pair-at-a-time paths (INCREMENTAL's exact pass 3).
type prodAccum struct {
	mTo, mFrom float64
	eTo, eFrom int32
}

func newProdAccum() prodAccum { return prodAccum{mTo: 1, mFrom: 1} }

// mulSame folds the co-occurrence of one shared value into both
// directions, mirroring two ContribSameDist calls: a1/a2 are the
// accuracies of the smaller/larger source, mTo accumulates S1→S2 (copier
// S1, so the provided-by-S2 probability is in the numerator) and mFrom
// the reverse.
func (ac *prodAccum) mulSame(p bayes.Params, pv, pop, a1, a2 float64) {
	if pop <= 0 {
		pop = 1 / p.N
	}
	omPv := 1 - pv
	om1, om2 := 1-a1, 1-a2
	ind := pv*a1*a2 + omPv*om1*om2*pop
	if ind <= 0 {
		ac.mTo, ac.mFrom = math.Inf(1), math.Inf(1)
		return
	}
	inv := p.S / ind
	ac.mTo, ac.eTo = mulRenorm(ac.mTo, ac.eTo, 1-p.S+(pv*a2+omPv*om2)*inv)
	ac.mFrom, ac.eFrom = mulRenorm(ac.mFrom, ac.eFrom, 1-p.S+(pv*a1+omPv*om1)*inv)
}

// logs recovers both directional scores.
func (ac *prodAccum) logs() (cTo, cFrom float64) {
	return logAcc(ac.mTo, ac.eTo), logAcc(ac.mFrom, ac.eFrom)
}
