package scenario

import (
	"testing"
	"time"
)

func checkByName(t *testing.T, v *Verdict, name, phase string) *Check {
	t.Helper()
	for i := range v.Checks {
		c := &v.Checks[i]
		if c.Name == name && c.Phase == phase {
			return c
		}
	}
	t.Fatalf("no %q check for phase %q in %+v", name, phase, v.Checks)
	return nil
}

func TestEvaluateRate(t *testing.T) {
	v := &Verdict{Phases: []PhaseReport{
		{Name: "ok", TargetRate: 10, AchievedRate: 9.5},
		{Name: "slow", TargetRate: 10, AchievedRate: 8},
		{Name: "starved", TargetRate: 10, AchievedRate: 10, Starved: true},
		{Name: "unpaced", AchievedRate: 100},
	}}
	v.evaluate(&SLO{})
	if c := checkByName(t, v, "rate", "ok"); !c.Pass {
		t.Errorf("5%% deviation failed the default 10%% tolerance: %+v", c)
	}
	if c := checkByName(t, v, "rate", "slow"); c.Pass {
		t.Errorf("20%% deviation passed: %+v", c)
	}
	if c := checkByName(t, v, "rate", "starved"); c.Pass {
		t.Errorf("starved phase passed its rate check: %+v", c)
	}
	for _, c := range v.Checks {
		if c.Phase == "unpaced" {
			t.Errorf("unpaced phase got a rate check: %+v", c)
		}
	}
	if v.Pass {
		t.Error("verdict passed with a failing check")
	}
}

func TestEvaluateZero5xx(t *testing.T) {
	kill := PhaseReport{
		Name:     "kill",
		Injected: []string{"kill-backend 0 @2s"},
		Scrape:   &ScrapeReport{},
	}
	clean := kill
	v := &Verdict{Phases: []PhaseReport{clean}}
	v.evaluate(&SLO{Zero5xxDuringKill: true})
	if c := checkByName(t, v, "zero-5xx", "kill"); !c.Pass {
		t.Errorf("clean kill phase failed: %+v", c)
	}

	// Executor-observed 5xx fail the check.
	seen := kill
	seen.Errors5xx = 2
	v = &Verdict{Phases: []PhaseReport{seen}}
	v.evaluate(&SLO{Zero5xxDuringKill: true})
	if c := checkByName(t, v, "zero-5xx", "kill"); c.Pass || c.Actual != 2 {
		t.Errorf("executor 5xx passed: %+v", c)
	}

	// The scraped server-side delta is the stronger witness: it fails
	// the check even when the executor saw none.
	scraped := kill
	scraped.Scrape = &ScrapeReport{HTTP5xxDelta: 3}
	v = &Verdict{Phases: []PhaseReport{scraped}}
	v.evaluate(&SLO{Zero5xxDuringKill: true})
	if c := checkByName(t, v, "zero-5xx", "kill"); c.Pass || c.Actual != 3 {
		t.Errorf("scraped 5xx delta passed: %+v", c)
	}

	// A failed boundary scrape means the assertion could not be
	// verified server-side — that is a failure, not a free pass.
	broken := kill
	broken.Scrape = &ScrapeReport{Error: "connection refused"}
	v = &Verdict{Phases: []PhaseReport{broken}}
	v.evaluate(&SLO{Zero5xxDuringKill: true})
	if c := checkByName(t, v, "zero-5xx", "kill"); c.Pass {
		t.Errorf("failed scrape passed the zero-5xx check: %+v", c)
	}

	// Phases without injections are not asserted.
	v = &Verdict{Phases: []PhaseReport{{Name: "calm", Errors5xx: 7}}}
	v.evaluate(&SLO{Zero5xxDuringKill: true})
	for _, c := range v.Checks {
		if c.Name == "zero-5xx" {
			t.Errorf("non-inject phase got a zero-5xx check: %+v", c)
		}
	}
}

func TestEvaluateP99SkipsUnpaced(t *testing.T) {
	lat := &LatencyStats{P99Millis: 50}
	v := &Verdict{Phases: []PhaseReport{
		{Name: "paced", TargetRate: 10, AchievedRate: 10, Latency: lat},
		{Name: "unpaced", Latency: &LatencyStats{P99Millis: 9999}},
	}}
	v.evaluate(&SLO{P99AppendMillis: 100})
	if c := checkByName(t, v, "p99-append", "paced"); !c.Pass {
		t.Errorf("paced p99 under the bound failed: %+v", c)
	}
	for _, c := range v.Checks {
		if c.Name == "p99-append" && c.Phase == "unpaced" {
			t.Errorf("unpaced phase got a p99 check: %+v", c)
		}
	}
}

func TestEvaluateQuiesceAndQuality(t *testing.T) {
	v := &Verdict{
		QuiesceSeconds: 3,
		Quality:        &Quality{Precision: 0.95, Recall: 0.9},
	}
	v.evaluate(&SLO{QuiesceSeconds: 10, MinPrecision: 0.9, MinRecall: 0.8})
	for _, name := range []string{"quiesce", "precision", "recall"} {
		if c := checkByName(t, v, name, ""); !c.Pass {
			t.Errorf("%s failed: %+v", name, c)
		}
	}
	if !v.Pass {
		t.Error("verdict failed with all checks passing")
	}

	// Missing quality (results unreadable) fails the quality gates
	// rather than silently skipping them.
	v = &Verdict{QuiesceSeconds: 3}
	v.evaluate(&SLO{MinPrecision: 0.9, MinRecall: 0.8})
	if c := checkByName(t, v, "precision", ""); c.Pass {
		t.Errorf("missing quality passed precision: %+v", c)
	}
	if c := checkByName(t, v, "recall", ""); c.Pass {
		t.Errorf("missing quality passed recall: %+v", c)
	}
}

func TestEvaluateErrorsFailEvenWithoutSLO(t *testing.T) {
	v := &Verdict{Phases: []PhaseReport{{Name: "p", OtherErrors: 1}}}
	v.evaluate(nil)
	if v.Pass {
		t.Error("transport errors passed a no-SLO run")
	}
	v = &Verdict{QuiesceErrors: 1}
	v.evaluate(nil)
	if v.Pass {
		t.Error("quiesce errors passed a no-SLO run")
	}
	v = &Verdict{Phases: []PhaseReport{{Name: "p"}}}
	v.evaluate(nil)
	if !v.Pass {
		t.Error("clean no-SLO run failed")
	}
}

func TestSummarizeLatency(t *testing.T) {
	if summarizeLatency(nil) != nil {
		t.Fatal("empty sample produced latency stats")
	}
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	l := summarizeLatency(samples)
	if l.P50Millis != 50 || l.P99Millis != 99 || l.MaxMillis != 100 {
		t.Fatalf("percentiles wrong: %+v", l)
	}
}
