//go:build !unix

package main

import "fmt"

// signalPID is unix-only: SIGSTOP/SIGCONT have no portable equivalent,
// so scenario failure injection by PID is unsupported elsewhere.
func signalPID(pid int, action string) error {
	return fmt.Errorf("inject %s: PID signaling is unsupported on this platform", action)
}
