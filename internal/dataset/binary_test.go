package dataset

import (
	"bytes"
	"reflect"
	"testing"

	"copydetect/internal/binio"
)

func encodeRoundtrip(t *testing.T, ds *Dataset) *Dataset {
	t.Helper()
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	EncodeDataset(w, ds)
	if err := w.Err(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeDataset(binio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// eqData compares dataset content, ignoring the Generation identity
// stamp: every Build/Decode mints a fresh generation by design.
func eqData(a, b *Dataset) bool {
	ca, cb := *a, *b
	ca.Generation, cb.Generation = 0, 0
	return reflect.DeepEqual(&ca, &cb)
}

func TestBinaryRoundtrip(t *testing.T) {
	ds, _ := Motivating()
	if got := encodeRoundtrip(t, ds); !eqData(got, ds) {
		t.Fatal("motivating dataset did not survive the binary roundtrip")
	}

	// With truth, sparse coverage and multi-value domains.
	b := NewBuilder()
	b.Add("s1", "d1", "a")
	b.Add("s1", "d2", "b")
	b.Add("s2", "d1", "c")
	b.Add("s3", "d3", "a")
	b.SetTruth("d1", "a")
	b.SetTruth("d3", "x") // truth value nobody provides
	ds = b.Build()
	if got := encodeRoundtrip(t, ds); !eqData(got, ds) {
		t.Fatal("dataset with truth did not survive the binary roundtrip")
	}

	// Empty dataset.
	ds = NewBuilder().Build()
	if got := encodeRoundtrip(t, ds); !eqData(got, ds) {
		t.Fatal("empty dataset did not survive the binary roundtrip")
	}
}

func TestBinaryDecodeRejectsGarbage(t *testing.T) {
	for _, raw := range [][]byte{
		nil,
		[]byte("not a dataset"),
		{0x04, 'C', 'D', 'S', 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // huge source count
	} {
		if _, err := DecodeDataset(binio.NewReader(bytes.NewReader(raw))); err == nil {
			t.Errorf("DecodeDataset(%q) accepted garbage", raw)
		}
	}
	// Truncated valid prefix.
	var buf bytes.Buffer
	w := binio.NewWriter(&buf)
	ds, _ := Motivating()
	EncodeDataset(w, ds)
	if _, err := DecodeDataset(binio.NewReader(bytes.NewReader(buf.Bytes()[:buf.Len()/2]))); err == nil {
		t.Error("DecodeDataset accepted a truncated stream")
	}
}

// TestNewBuilderFromDataset pins the recovery property: reconstructing
// a Builder from a snapshot and continuing to append yields the exact
// dataset (same id assignment) as the uninterrupted builder.
func TestNewBuilderFromDataset(t *testing.T) {
	stream := []Record{
		{"s2", "d1", "v1"}, {"s1", "d3", "v2"}, {"s2", "d2", "v1"},
		{"s3", "d1", "v3"}, {"s1", "d1", "v1"}, {"s3", "d4", "v2"},
	}
	tail := []Record{
		{"s4", "d2", "v9"}, {"s1", "d5", "v1"}, {"s2", "d1", "v7"}, // overwrite too
	}

	full := NewBuilder()
	full.AddRecords(stream)
	full.SetTruth("d1", "v1")
	snap := full.Build() // "the snapshot"
	full.AddRecords(tail)
	full.SetTruth("d5", "v1")
	want := full.Build()

	recovered := NewBuilderFromDataset(snap)
	if got := recovered.Build(); !eqData(got, snap) {
		t.Fatal("rebuilding straight from the snapshot changed the dataset")
	}
	recovered.AddRecords(tail)
	recovered.SetTruth("d5", "v1")
	if got := recovered.Build(); !eqData(got, want) {
		t.Fatal("appends on the recovered builder diverge from the uninterrupted builder")
	}
}
