package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"copydetect/internal/scenario"
)

// runScenario executes a declarative scenario file instead of the flat
// flag-driven loop: phases with their own rates, client counts and
// bursts, failure injection against the backend PIDs given with -pids,
// phase-boundary /metrics scrapes of the -scrape targets, and an SLO
// verdict written as JSON (stdout, or the -verdict file).
func runScenario(opt options, stdout, stderr io.Writer) int {
	spec, err := scenario.Load(opt.scenario)
	if err != nil {
		fmt.Fprintf(stderr, "copyload: %v\n", err)
		return 2
	}
	slo := spec.SLO
	if opt.slo != "" {
		if slo, err = scenario.LoadSLO(opt.slo); err != nil {
			fmt.Fprintf(stderr, "copyload: %v\n", err)
			return 2
		}
	}
	pids, err := parsePIDs(opt.pids)
	if err != nil {
		fmt.Fprintf(stderr, "copyload: %v\n", err)
		return 2
	}
	r := &scenario.Runner{
		Target:        opt.target,
		Client:        &http.Client{Timeout: 60 * time.Second},
		Injector:      &pidInjector{pids: pids},
		ScrapeTargets: splitTargets(opt.scrape, opt.target),
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "copyload: "+format+"\n", args...)
		},
	}
	v, err := r.Run(context.Background(), spec, slo)
	if err != nil {
		fmt.Fprintf(stderr, "copyload: %v\n", err)
		return 1
	}
	out := stdout
	if opt.verdict != "" {
		f, err := os.Create(opt.verdict)
		if err != nil {
			fmt.Fprintf(stderr, "copyload: %v\n", err)
			return 1
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(stderr, "copyload: write %s: %v\n", opt.verdict, err)
			}
		}()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderr, "copyload: %v\n", err)
		return 1
	}
	if !v.Pass {
		fmt.Fprintf(stderr, "copyload: scenario %q FAILED its SLO checks\n", v.Scenario)
		return 1
	}
	return 0
}

func parsePIDs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var pids []int
	for _, part := range strings.Split(s, ",") {
		pid, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || pid <= 0 {
			return nil, fmt.Errorf("copyload: bad -pids entry %q", part)
		}
		pids = append(pids, pid)
	}
	return pids, nil
}

func splitTargets(s, fallback string) []string {
	if s == "" {
		return []string{fallback}
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// pidInjector realizes inject steps against backend processes
// identified by position in -pids: kill-backend sends SIGKILL,
// pause-backend/resume-backend SIGSTOP/SIGCONT, exec runs a command.
type pidInjector struct {
	pids []int
}

func (pi *pidInjector) Inject(ctx context.Context, step scenario.InjectStep) error {
	if step.Action == "exec" {
		cmd := exec.CommandContext(ctx, step.Cmd[0], step.Cmd[1:]...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return fmt.Errorf("exec %v: %w: %s", step.Cmd, err, out)
		}
		return nil
	}
	if step.Backend < 0 || step.Backend >= len(pi.pids) {
		return fmt.Errorf("%s: backend %d but only %d pids given via -pids", step.Action, step.Backend, len(pi.pids))
	}
	return signalPID(pi.pids[step.Backend], step.Action)
}
