package core

import (
	"math"
	"math/rand"
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
)

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.shareThreshold() != 16 {
		t.Errorf("default share threshold = %d, want 16 (the paper's empirical split)", o.shareThreshold())
	}
	o.ShareThreshold = 3
	if o.shareThreshold() != 3 {
		t.Errorf("explicit share threshold ignored")
	}
}

func TestDecideMatchesThresholds(t *testing.T) {
	p := exampleParams()
	// Exactly at θcp in one direction: posterior must not exceed 0.5.
	copying, prIndep, _, _ := decide(p, p.ThetaCp(), -100)
	if !copying || prIndep > 0.5 {
		t.Errorf("decide(θcp, -∞) = %v, PrIndep %v", copying, prIndep)
	}
	// Both just below θind: no copying.
	copying, prIndep, _, _ = decide(p, p.ThetaInd()-1e-9, p.ThetaInd()-1e-9)
	if copying || prIndep <= 0.5 {
		t.Errorf("decide(θind−, θind−) = %v, PrIndep %v", copying, prIndep)
	}
}

func TestEstimateOverlapSeenClamps(t *testing.T) {
	ds, _ := dataset.Motivating()
	// Pair (S2, S3) with l = 5 shared items, n0 = 4 shared values so far.
	// With no values seen, h would be 0 but must clamp up to n0.
	nSeen := make([]int32, ds.NumSources())
	if h := estimateOverlapSeen(ds, nSeen, 2, 3, 5, 4); h != 4 {
		t.Errorf("h = %v, want clamp to n0 = 4", h)
	}
	// With everything seen, h must clamp down to l.
	for i := range nSeen {
		nSeen[i] = 100
	}
	if h := estimateOverlapSeen(ds, nSeen, 2, 3, 5, 4); h != 5 {
		t.Errorf("h = %v, want clamp to l = 5", h)
	}
}

// TestBoundTimersSkipRecomputation: BOUND+ must evaluate strictly fewer
// bound formulas than BOUND on a workload with long shared streaks.
func TestBoundTimersSkipRecomputation(t *testing.T) {
	// Construct two sources sharing 60 items, half same values, so bound
	// checks would fire on every shared entry under plain BOUND.
	b := dataset.NewBuilder()
	for d := 0; d < 60; d++ {
		item := "D" + itoa(d)
		val := "v" + itoa(d%7)
		b.Add("A", item, val)
		if d%2 == 0 {
			b.Add("B", item, val)
		} else {
			b.Add("B", item, "w"+itoa(d%5))
		}
		b.Add("C", item, val) // third source so values are indexed
	}
	ds := b.Build()
	valueCounts := make([]int, ds.NumItems())
	for d := range valueCounts {
		valueCounts[d] = ds.NumValues(dataset.ItemID(d))
	}
	st := bayes.NewState(valueCounts, ds.NumSources(), 0.8)
	for d := range st.P {
		for v := range st.P[d] {
			st.P[d][v] = 0.4
		}
	}
	p := exampleParams()
	bound := (&Bound{Params: p}).DetectRound(ds, st, 1)
	plus := (&BoundPlus{Params: p}).DetectRound(ds, st, 1)
	if plus.Stats.Computations >= bound.Stats.Computations {
		t.Errorf("BOUND+ computations (%d) should be below BOUND's (%d)",
			plus.Stats.Computations, bound.Stats.Computations)
	}
	assertSameDecisions(t, plus, bound, "BOUND+ vs BOUND on streak workload")
}

func TestAdaptiveRhoV(t *testing.T) {
	// A clear cluster of big movers above a gap.
	rho := adaptiveRhoV([]float64{2.0, 1.9, 0.01, 0.02, 0.015})
	if rho > 2.0 || rho < 1.0 {
		t.Errorf("adaptive rho = %v, want the big-mover cluster threshold (1.9)", rho)
	}
	// All noise: nothing is big.
	if rho := adaptiveRhoV([]float64{1e-9, 1e-8, 0}); !math.IsInf(rho, 1) {
		t.Errorf("pure-noise deltas should give +Inf, got %v", rho)
	}
	// Single significant change.
	if rho := adaptiveRhoV([]float64{0.5}); rho != 0.5 {
		t.Errorf("single delta rho = %v, want 0.5", rho)
	}
	// Empty.
	if rho := adaptiveRhoV(nil); !math.IsInf(rho, 1) {
		t.Errorf("empty deltas should give +Inf")
	}
}

// TestIncrementalStableStateZeroEscalation: when the state does not move
// between rounds, every pair must settle in pass 1 with (almost) no work.
func TestIncrementalStableStateZeroEscalation(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	inc := &Incremental{Params: p}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)
	res := inc.DetectRound(ds, st, 3) // identical state
	if inc.LastPass.BigEntries != 0 {
		t.Errorf("no drift should mean no big entries, got %d", inc.LastPass.BigEntries)
	}
	if inc.LastPass.SettledPass2+inc.LastPass.SettledPass3 != 0 {
		t.Errorf("no drift should settle everything in pass 1: %+v", inc.LastPass)
	}
	if inc.LastPass.Rebased {
		t.Error("no drift must not trigger a rebase")
	}
	// Decisions identical to the exact algorithms.
	idx := (&Index{Params: p}).DetectRound(ds, st, 1)
	assertSameDecisions(t, res, idx, "INCREMENTAL stable state vs INDEX")
}

// TestIncrementalRebaseOnMassiveDrift: turning the statistical state
// upside down must trigger a rebase, after which decisions are exact.
func TestIncrementalRebaseOnMassiveDrift(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	inc := &Incremental{Params: p}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)

	flipped := st.Clone()
	for d := range flipped.P {
		for v := range flipped.P[d] {
			flipped.P[d][v] = 1 - flipped.P[d][v]
		}
	}
	res := inc.DetectRound(ds, flipped, 3)
	// The motivating index has only 13 entries, below the rebase floor of
	// 64 big entries, so the drift is instead absorbed by escalation:
	// decisions must still be exact, and work must not stay in pass 1.
	if inc.LastPass.BigEntries == 0 {
		t.Error("massive drift should classify entries as big changes")
	}
	if inc.LastPass.SettledPass2+inc.LastPass.SettledPass3 == 0 && !inc.LastPass.Rebased {
		t.Error("massive drift should escalate past pass 1 or rebase")
	}
	idx := (&Index{Params: p}).DetectRound(ds, flipped, 1)
	assertSameDecisions(t, res, idx, "INCREMENTAL after massive drift vs INDEX")
}

// TestIncrementalRebaseOnLargeIndexDrift: on an index large enough to
// clear the rebase floor, flipping the state must trigger a rebase.
func TestIncrementalRebaseOnLargeIndexDrift(t *testing.T) {
	rng := newRand(5)
	ds, st := randomInstance(rng, 12, 400)
	p := exampleParams()
	inc := &Incremental{Params: p}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)
	flipped := st.Clone()
	for d := range flipped.P {
		for v := range flipped.P[d] {
			flipped.P[d][v] = 1 - flipped.P[d][v]
		}
	}
	res := inc.DetectRound(ds, flipped, 3)
	if !inc.LastPass.Rebased {
		t.Fatal("large-index massive drift should trigger a rebase")
	}
	idx := (&Index{Params: p}).DetectRound(ds, flipped, 1)
	assertSameDecisions(t, res, idx, "INCREMENTAL after rebase vs INDEX")
}

// TestIncrementalAccuracyDriftForcesExact: a big accuracy change on one
// source must push all its pairs to exact recomputation (pass 3).
func TestIncrementalAccuracyDriftForcesExact(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	inc := &Incremental{Params: p}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)

	drifted := st.Clone()
	drifted.A[2] = 0.9 // S2 jumps from 0.2 — well past ρA = 0.2
	inc.DetectRound(ds, drifted, 3)
	if inc.LastPass.SettledPass3 == 0 {
		t.Error("big accuracy drift should force exact recomputation for S2's pairs")
	}
}

// TestIncrementalHistoryAccumulates: one entry per incremental round.
func TestIncrementalHistoryAccumulates(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	inc := &Incremental{Params: p}
	for round := 1; round <= 5; round++ {
		inc.DetectRound(ds, st, round)
	}
	if len(inc.History) != 3 { // rounds 3, 4, 5
		t.Errorf("history has %d entries, want 3", len(inc.History))
	}
	inc.Reset()
	if len(inc.History) != 0 || inc.prepared {
		t.Error("Reset must clear history and preparation")
	}
}

// TestIncrementalPrepareFallback: calling round 3 without the warm rounds
// must prepare on the spot and produce exact decisions.
func TestIncrementalPrepareFallback(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	inc := &Incremental{Params: p}
	res := inc.DetectRound(ds, st, 3)
	idx := (&Index{Params: p}).DetectRound(ds, st, 1)
	assertSameDecisions(t, res, idx, "INCREMENTAL cold start vs INDEX")
}

// TestResultCopyingSetAndPairs: Result helpers behave.
func TestResultCopyingSetAndPairs(t *testing.T) {
	r := &Result{NumSources: 4, Pairs: []PairResult{
		{S1: 0, S2: 1, Copying: true},
		{S1: 1, S2: 2, Copying: false},
		{S1: 2, S2: 3, Copying: true},
	}}
	if got := len(r.CopyingPairs()); got != 2 {
		t.Errorf("CopyingPairs = %d, want 2", got)
	}
	set := r.CopyingSet()
	if !set[int64(0)<<32|1] || !set[int64(2)<<32|3] || set[int64(1)<<32|2] {
		t.Errorf("CopyingSet wrong: %v", set)
	}
}

// TestIndexVsPairwiseComputationRatio: on the motivating example the index
// must cut computations by more than half (Example 3.6: 154 vs 362).
func TestIndexVsPairwiseComputationRatio(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	ires := (&Index{Params: p}).DetectRound(ds, st, 1)
	pres := (&Pairwise{Params: p}).DetectRound(ds, st, 1)
	if ires.Stats.Computations*2 > pres.Stats.Computations {
		t.Errorf("INDEX should halve computations: %d vs %d",
			ires.Stats.Computations, pres.Stats.Computations)
	}
}

// TestBoundUnderRandomOrderSound: the MaxRemaining-based M keeps BOUND's
// copying conclusions sound even under adversarially bad entry orders.
func TestBoundUnderRandomOrderSound(t *testing.T) {
	ds, st := motivatingState(t)
	p := exampleParams()
	exact := (&Index{Params: p}).DetectRound(ds, st, 1).CopyingSet()
	for seed := int64(0); seed < 20; seed++ {
		res := (&Bound{Params: p, Opts: Options{Order: index.Random, Seed: seed}}).DetectRound(ds, st, 1)
		for _, pr := range res.Pairs {
			k := int64(pr.S1)<<32 | int64(uint32(pr.S2))
			if pr.Copying && !exact[k] {
				t.Fatalf("seed %d: unsound copying conclusion for (S%d,S%d)", seed, pr.S1, pr.S2)
			}
		}
	}
}

// newRand is a tiny helper to keep imports tidy in this file.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
