// Equivalence suite for the parallel detection engine: for every detector
// and every generator preset, running with Workers ∈ {2, 4, 7} must
// produce byte-identical results to Workers = 1 — same pairs in the same
// order, same scores (exact float equality, no tolerance), same decisions,
// same statistics counters — across every round of the full iterative
// process. This is the test-side half of the determinism guarantee
// documented in internal/pool and DESIGN.md; run it with -race to also
// certify the single-writer sharding.
package core_test

import (
	"testing"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/gen"
)

// equivPreset scales each paper workload down far enough that the whole
// matrix (presets × detectors × worker counts × rounds) stays fast under
// -race while keeping hundreds to thousands of candidate pairs alive.
type equivPreset struct {
	id    string
	cfg   gen.Config
	scale float64
	long  bool // skipped under -short
}

func equivPresets() []equivPreset {
	return []equivPreset{
		{id: "book-cs", cfg: gen.BookCS(11), scale: 0.04},
		{id: "stock-1day", cfg: gen.Stock1Day(12), scale: 0.01},
		{id: "book-full", cfg: gen.BookFull(13), scale: 0.004, long: true},
		{id: "stock-2wk", cfg: gen.Stock2Wk(14), scale: 0.004, long: true},
	}
}

func equivDataset(t *testing.T, pr equivPreset) *dataset.Dataset {
	t.Helper()
	ds, _, err := gen.Generate(gen.Scale(pr.cfg, pr.scale))
	if err != nil {
		t.Fatalf("generate %s: %v", pr.id, err)
	}
	return ds
}

// equivDetectors builds every detector of the family with the given
// worker count. PAIRWISE rides along: it is not part of the acceptance
// set, but its parallel baseline must obey the same determinism contract.
func equivDetectors(p bayes.Params, workers int) map[string]core.Detector {
	opts := core.Options{Workers: workers}
	return map[string]core.Detector{
		"INDEX":       &core.Index{Params: p, Opts: opts},
		"BOUND":       &core.Bound{Params: p, Opts: opts},
		"BOUND+":      &core.BoundPlus{Params: p, Opts: opts},
		"HYBRID":      &core.Hybrid{Params: p, Opts: opts},
		"INCREMENTAL": &core.Incremental{Params: p, Opts: opts},
		"PAIRWISE":    &core.Pairwise{Params: p, Workers: workers},
	}
}

// runProcess executes the full iterative detection + fusion process,
// capturing every round's detection result.
func runProcess(ds *dataset.Dataset, p bayes.Params, det core.Detector) ([]*core.Result, *fusion.Outcome) {
	var rounds []*core.Result
	tf := &fusion.TruthFinder{Params: p, MaxRounds: 6}
	tf.OnRound = func(round int, _ *dataset.Dataset, _ *bayes.State, res *core.Result) {
		rounds = append(rounds, res)
	}
	out := tf.Run(ds, det)
	return rounds, out
}

func comparePairs(t *testing.T, round int, want, got *core.Result) {
	t.Helper()
	if len(got.Pairs) != len(want.Pairs) {
		t.Fatalf("round %d: %d pairs, want %d", round, len(got.Pairs), len(want.Pairs))
	}
	for i := range want.Pairs {
		w, g := want.Pairs[i], got.Pairs[i]
		if w != g {
			t.Fatalf("round %d pair %d differs:\n  want %+v\n  got  %+v", round, i, w, g)
		}
	}
}

func compareStats(t *testing.T, round int, want, got core.Stats) {
	t.Helper()
	if got.Computations != want.Computations ||
		got.PairsConsidered != want.PairsConsidered ||
		got.ValuesExamined != want.ValuesExamined ||
		got.EntriesScanned != want.EntriesScanned ||
		got.Rounds != want.Rounds {
		t.Fatalf("round %d stats differ:\n  want %+v\n  got  %+v", round, want, got)
	}
}

// TestParallelEquivalence is the acceptance suite of the parallel engine:
// detectors × worker counts {2, 4, 7} × generator presets, each compared
// round by round against the Workers=1 run of the same configuration.
func TestParallelEquivalence(t *testing.T) {
	p := bayes.DefaultParams()
	for _, pr := range equivPresets() {
		pr := pr
		t.Run(pr.id, func(t *testing.T) {
			if pr.long && testing.Short() {
				t.Skip("large preset skipped in short mode")
			}
			ds := equivDataset(t, pr)
			seqDets := equivDetectors(p, 1)
			for name, seqDet := range seqDets {
				name, seqDet := name, seqDet
				t.Run(name, func(t *testing.T) {
					seqRounds, seqOut := runProcess(ds, p, seqDet)
					if len(seqRounds) == 0 {
						t.Fatal("sequential run produced no rounds")
					}
					if name == "INCREMENTAL" {
						inc := seqDet.(*core.Incremental)
						if len(inc.History) == 0 {
							t.Fatal("INCREMENTAL never ran an incremental round; enlarge the preset")
						}
					}
					for _, workers := range []int{2, 4, 7} {
						parDet := equivDetectors(p, workers)[name]
						parRounds, parOut := runProcess(ds, p, parDet)
						if len(parRounds) != len(seqRounds) {
							t.Fatalf("workers=%d: %d rounds, want %d", workers, len(parRounds), len(seqRounds))
						}
						for r := range seqRounds {
							comparePairs(t, r+1, seqRounds[r], parRounds[r])
							compareStats(t, r+1, seqRounds[r].Stats, parRounds[r].Stats)
						}
						for d := range seqOut.Truth {
							if parOut.Truth[d] != seqOut.Truth[d] {
								t.Fatalf("workers=%d: truth of item %d differs", workers, d)
							}
						}
						for s := range seqOut.State.A {
							if parOut.State.A[s] != seqOut.State.A[s] {
								t.Fatalf("workers=%d: accuracy of source %d differs", workers, s)
							}
						}
						if name == "INCREMENTAL" {
							seqInc := seqDet.(*core.Incremental)
							parInc := parDet.(*core.Incremental)
							if len(parInc.History) != len(seqInc.History) {
								t.Fatalf("workers=%d: %d incremental rounds, want %d",
									workers, len(parInc.History), len(seqInc.History))
							}
							for r := range seqInc.History {
								if parInc.History[r] != seqInc.History[r] {
									t.Fatalf("workers=%d: pass stats of incremental round %d differ:\n  want %+v\n  got  %+v",
										workers, r+1, seqInc.History[r], parInc.History[r])
								}
							}
						}
					}
				})
			}
		})
	}
}

// TestParallelSingleRoundOrderings pins the scan-order options: the
// parallel engine must stay equivalent under the alternative entry
// orderings of Figure 3 (which exercise MaxRemaining-based bounds rather
// than the ByContribution fast path) and a non-default share threshold.
func TestParallelSingleRoundOrderings(t *testing.T) {
	p := bayes.DefaultParams()
	ds := equivDataset(t, equivPreset{id: "stock-1day", cfg: gen.Stock1Day(7), scale: 0.008})
	for _, opt := range []struct {
		name string
		opts core.Options
	}{
		{"random-order", core.Options{Order: 2, Seed: 42}}, // index.Random
		{"by-provider", core.Options{Order: 1}},            // index.ByProvider
		{"share-threshold-4", core.Options{ShareThreshold: 4}},
	} {
		opt := opt
		t.Run(opt.name, func(t *testing.T) {
			seqOpts := opt.opts
			seqOpts.Workers = 1
			seq, _ := runProcess(ds, p, &core.Hybrid{Params: p, Opts: seqOpts})
			for _, workers := range []int{2, 7} {
				parOpts := opt.opts
				parOpts.Workers = workers
				par, _ := runProcess(ds, p, &core.Hybrid{Params: p, Opts: parOpts})
				if len(par) != len(seq) {
					t.Fatalf("workers=%d: %d rounds, want %d", workers, len(par), len(seq))
				}
				for r := range seq {
					comparePairs(t, r+1, seq[r], par[r])
					compareStats(t, r+1, seq[r].Stats, par[r].Stats)
				}
			}
		})
	}
}
