// Package analysis is the repo's custom static-analysis suite — the
// engine behind `go run ./cmd/copyvet ./...` and the whole-repo
// self-test that makes tier-1 `go test ./...` fail on a contract
// violation.
//
// The runtime tests prove the system's invariants on the code paths
// they exercise; the analyzers here prove them over all code:
//
//   - detrange: deterministic packages must not iterate maps without an
//     order-invariance justification, call the unseeded global
//     math/rand source, or read the wall clock outside timer patterns
//     (bit-identical results for any worker count, PR 1/9).
//   - hotalloc: functions reachable from //copydetect:hotpath roots
//     must not contain allocating constructs (the zero-alloc
//     INCREMENTAL steady state, PR 9).
//   - tracehop: outbound requests in internal/cluster must be built by
//     the trace-propagating helper (X-Copydetect-Trace end-to-end,
//     PR 6).
//   - metriclabel: labeled telemetry metrics take constant label keys
//     and bounded label values (metric cardinality, PR 6).
//   - stickycheck: internal/binio readers and writers have their
//     latched error observed after the last decode/encode.
//
// Everything is stdlib-only: go/parser + go/types over packages
// discovered with `go list` (load.go). The annotation grammar the
// analyzers consume is defined in annot.go, the repo-specific
// configuration in config.go.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding, positioned for file:line:col
// reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check run over a whole Program. Run reports
// findings through pass.Report; an error return means the analyzer
// itself failed (never that the code is in violation).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass) error
}

// Pass carries one analyzer's run over one program.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Config   *Config
	Annots   *Annotations

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DetRange,
		HotAlloc,
		TraceHop,
		MetricLabel,
		StickyCheck,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over prog under cfg and returns
// their findings sorted by position (filename, line, column), so output
// is stable regardless of analyzer or package order.
func Run(prog *Program, cfg *Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	annots, err := CollectAnnotations(prog)
	if err != nil {
		return nil, err
	}
	// Malformed or misplaced directives are findings in their own right,
	// whatever analyzer subset was requested.
	diags := append([]Diagnostic(nil), annots.diags...)
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Prog: prog, Config: cfg, Annots: annots, diags: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
