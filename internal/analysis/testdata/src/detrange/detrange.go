// Package detrangefix is the detrange fixture: deterministic by
// annotation, with one violation of each rule next to one valid
// exemption of the same shape.
//
//copydetect:deterministic
package detrangefix

import (
	"math/rand"
	"time"
)

// sum is order-invariant and says why: no diagnostic.
func sum(m map[string]int) int {
	t := 0
	//copydetect:orderinvariant commutative sum; iteration order is never observed
	for _, v := range m {
		t += v
	}
	return t
}

// keys leaks map iteration order into a slice: diagnostic.
func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// lazyExempt carries the annotation but no justification: the grammar
// itself reports that, and the bare loop stays flagged too.
func lazyExempt(m map[string]int) int {
	t := 0
	//copydetect:orderinvariant
	for _, v := range m {
		t += v
	}
	return t
}

// seeded threads an explicit source: no diagnostic.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// unseeded draws from the process-global source: diagnostic.
func unseeded() int {
	return rand.Intn(10)
}

// timed measures a duration with the timer idiom: no diagnostic.
func timed() time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// stamped leaks the wall clock into output: diagnostic.
func stamped() int64 {
	return time.Now().UnixNano()
}

func work() {}
