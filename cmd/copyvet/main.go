// Command copyvet runs the repo's contract analyzers (internal/analysis)
// over the module and prints file:line:col diagnostics, exiting nonzero
// if any contract is violated:
//
//	go run ./cmd/copyvet ./...          # whole module (CI)
//	go run ./cmd/copyvet -run detrange,hotalloc ./internal/core
//	go run ./cmd/copyvet -list
//
// The same analyzers also run inside `go test ./internal/analysis`, so
// plain tier-1 tests fail on a violation; the CLI exists for fast local
// iteration and for CI log output that names the offending lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"copydetect/internal/analysis"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		if _, ok := err.(errFindings); ok {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "copyvet:", err)
		os.Exit(2)
	}
}

// errFindings distinguishes "contracts violated" (exit 1) from tool
// failure (exit 2).
type errFindings int

func (e errFindings) Error() string {
	return fmt.Sprintf("%d finding(s)", int(e))
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("copyvet", flag.ContinueOnError)
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name, a.Doc)
		}
		return nil
	}

	analyzers := analysis.Analyzers()
	if *runNames != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*runNames, ",") {
			a := analysis.ByName(strings.TrimSpace(name))
			if a == nil {
				return fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	prog, err := analysis.Load(cwd, patterns...)
	if err != nil {
		return err
	}
	diags, err := analysis.Run(prog, analysis.DefaultConfig(), analyzers)
	if err != nil {
		return err
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(out, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(out, "copyvet: %d finding(s) in %d package(s) checked\n", len(diags), len(prog.Pkgs))
		return errFindings(len(diags))
	}
	return nil
}
