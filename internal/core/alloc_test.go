package core

import (
	"math/rand"
	"testing"
)

// TestIncrementalSteadyStateAllocs: with ReuseResult set and one worker,
// a steady-state incremental round must not allocate at all — every
// buffer the three passes touch is preallocated when the detector
// prepares, and the worker closures are built once. This is the
// contract PERFORMANCE.md documents; any regression here shows up as a
// fractional count.
func TestIncrementalSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, st := randomInstance(rng, 10, 200)
	p := exampleParams()
	inc := &Incremental{Params: p, Opts: Options{Workers: 1}, ReuseResult: true}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)
	inc.DetectRound(ds, st, 3) // first incremental round pays one-time costs

	round := 4
	if n := testing.AllocsPerRun(50, func() {
		inc.DetectRound(ds, st, round)
		round++
	}); n > 0 {
		t.Errorf("steady-state incremental round allocated %v times, want 0", n)
	}
}

// TestIncrementalSteadyStateAllocsParallel: with several workers the pool
// necessarily allocates a little per fan-out (channel, goroutine
// closures), but the count must stay small and bounded — the per-pair and
// per-entry work itself is allocation-free.
func TestIncrementalSteadyStateAllocsParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds, st := randomInstance(rng, 10, 200)
	p := exampleParams()
	inc := &Incremental{Params: p, Opts: Options{Workers: 4}, ReuseResult: true}
	inc.DetectRound(ds, st, 1)
	inc.DetectRound(ds, st, 2)
	inc.DetectRound(ds, st, 3)

	round := 4
	if n := testing.AllocsPerRun(20, func() {
		inc.DetectRound(ds, st, round)
		round++
	}); n > 64 {
		t.Errorf("steady-state round at 4 workers allocated %v times, want <= 64 (pool fan-out only)", n)
	}
}

// TestIncrementalReuseResultMatches: ReuseResult must change only the
// allocation behaviour, never the numbers.
func TestIncrementalReuseResultMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ds, st := randomInstance(rng, 8, 100)
	p := exampleParams()
	a := &Incremental{Params: p}
	b := &Incremental{Params: p, ReuseResult: true}
	for round := 1; round <= 5; round++ {
		ra := a.DetectRound(ds, st, round)
		rb := b.DetectRound(ds, st, round)
		if len(ra.Pairs) != len(rb.Pairs) {
			t.Fatalf("round %d: pair counts differ", round)
		}
		for i := range ra.Pairs {
			if ra.Pairs[i] != rb.Pairs[i] {
				t.Fatalf("round %d pair %d: %+v != %+v", round, i, ra.Pairs[i], rb.Pairs[i])
			}
		}
	}
}

// TestScanSteadyStateReuse: repeated rounds of the scan detectors against
// a warm cache must allocate only the per-round Result and pair slice —
// O(1) small allocations, not O(pairs) or O(entries).
func TestScanSteadyStateReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds, st := randomInstance(rng, 10, 200)
	p := exampleParams()
	h := &Hybrid{Params: p, Opts: Options{Workers: 1}}
	h.DetectRound(ds, st, 1)
	if n := testing.AllocsPerRun(20, func() {
		h.DetectRound(ds, st, 2)
	}); n > 8 {
		t.Errorf("warm HYBRID round allocated %v times, want <= 8 (Result + Pairs only)", n)
	}
}
