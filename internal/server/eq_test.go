package server

import (
	"reflect"

	"copydetect/internal/dataset"
)

// eqDataset compares dataset content, ignoring the Generation identity
// stamp: every Build/Decode mints a fresh generation by design (it exists
// to distinguish recreated datasets, not to describe their data).
func eqDataset(a, b *dataset.Dataset) bool {
	if a == nil || b == nil {
		return a == b
	}
	ca, cb := *a, *b
	ca.Generation, cb.Generation = 0, 0
	return reflect.DeepEqual(&ca, &cb)
}

// eqPublished is reflect.DeepEqual over Published with the snapshots'
// Generation stamps masked out.
func eqPublished(a, b *Published) bool {
	if a == nil || b == nil {
		return a == b
	}
	if !eqDataset(a.Snapshot, b.Snapshot) {
		return false
	}
	ca, cb := *a, *b
	ca.Snapshot, cb.Snapshot = nil, nil
	return reflect.DeepEqual(&ca, &cb)
}
