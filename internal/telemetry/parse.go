package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name (including any
// _bucket/_sum/_count suffix), its label pairs, and the value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseLines parses a Prometheus text-format scrape, returning every
// sample and an error on the first malformed line. It understands the
// subset this package emits (which is what the e2e tests scrape); it
// exists so tests can assert "every line of /metrics parses" without a
// third-party client library.
func ParseLines(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return s, fmt.Errorf("unclosed label braces in %q", line)
		}
		if err := parseLabels(rest[i+1:end], s.Labels); err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return s, fmt.Errorf("want 'name value', got %q", line)
		}
		s.Name, rest = fields[0], fields[1]
	}
	// The registry's validName rule guards the parser too: without it,
	// stray exposition syntax — a line like "} 0" — would parse as a
	// metric named "}".
	if !validName(s.Name) {
		return s, fmt.Errorf("bad metric name %q in %q", s.Name, line)
	}
	v, err := parseValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 || len(body) < eq+2 || body[eq+1] != '"' {
			return fmt.Errorf("malformed label in %q", body)
		}
		name := body[:eq]
		if !validName(name) {
			return fmt.Errorf("bad label name %q in %q", name, body)
		}
		rest := body[eq+2:]
		var val strings.Builder
		i := 0
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i == len(rest) {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[name] = val.String()
		body = strings.TrimPrefix(rest[i+1:], ",")
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}
