package cluster

import (
	"context"
	"io"
	"net/http"

	"copydetect/internal/telemetry"
)

// newTracedRequest builds every outbound request the gateway makes —
// the tracehop analyzer rejects any other construction site — so
// X-Copydetect-Trace provably survives each hop.
//
// from, when non-nil, is the inbound client request whose headers the
// proxy path copies verbatim (hop-by-hop headers stripped), trace ID
// included. trace, when non-empty, is an explicit ID for hops that
// outlive the inbound request (async mirror jobs). A request with
// neither source gets a fresh ID, so gateway-originated traffic —
// probes, anti-entropy, the startup audit — is greppable end-to-end
// too.
func newTracedRequest(ctx context.Context, method, url string, body io.Reader,
	from *http.Request, trace string) (*http.Request, error) {

	out, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if from != nil {
		copyHeader(out.Header, from.Header)
	}
	if trace != "" {
		out.Header.Set(telemetry.TraceHeader, trace)
	}
	if out.Header.Get(telemetry.TraceHeader) == "" {
		out.Header.Set(telemetry.TraceHeader, telemetry.NewTraceID())
	}
	return out, nil
}

// traceOf extracts the trace ID of an inbound request (the telemetry
// middleware guarantees one is present).
func traceOf(req *http.Request) string {
	return req.Header.Get(telemetry.TraceHeader)
}
