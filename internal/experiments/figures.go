package experiments

import (
	"time"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/index"
)

// figureRounds pins the iteration count for the figure experiments, so
// algorithms and orderings are compared on identical work. (Early
// termination can flip borderline pairs, which would otherwise shift the
// convergence path and the number of rounds.)
const figureRounds = 6

func (e *Env) runFixedRounds(ds *dataset.Dataset, det core.Detector) *fusion.Outcome {
	tf := e.newTruthFinder()
	tf.MinRounds = figureRounds
	tf.MaxRounds = figureRounds
	return tf.Run(ds, det)
}

// Figure2 prints the number of score computations and the copy-detection
// time of the single-round algorithms over all rounds (paper Figure 2).
func (e *Env) Figure2() error {
	e.printf("Figure 2 — single-round algorithms, %d rounds\n", figureRounds)
	e.printf("Expected shape: BOUND often costs more than INDEX (bound overhead),\n")
	e.printf("BOUND+ cuts computations vs BOUND, HYBRID <= BOUND+.\n\n")
	for _, id := range DatasetIDs {
		inst, err := e.Instance(id)
		if err != nil {
			return err
		}
		p := e.Params
		e.printf("%s\n%-8s %16s %14s\n", id, "Algo", "#Computations", "Time")
		for _, m := range []struct {
			name string
			det  core.Detector
		}{
			{"INDEX", &core.Index{Params: p, Opts: e.opts()}},
			{"BOUND", &core.Bound{Params: p, Opts: e.opts()}},
			{"BOUND+", &core.BoundPlus{Params: p, Opts: e.opts()}},
			{"HYBRID", &core.Hybrid{Params: p, Opts: e.opts()}},
		} {
			out := e.runFixedRounds(inst.DS, m.det)
			e.printf("%-8s %16d %14v\n",
				m.name, out.TotalStats.Computations, out.TotalStats.Total().Round(time.Millisecond))
		}
		e.printf("\n")
	}
	return nil
}

// Figure3 prints the cost ratio of the ByProvider and ByContribution
// entry orderings against Random, under BOUND and HYBRID (paper Figure
// 3). The paper plots wall-clock time; at reduced dataset scale wall
// clock is noise-dominated, so the deterministic computation count — the
// quantity the ordering actually changes, via earlier terminations — is
// reported alongside the time.
func (e *Env) Figure3() error {
	e.printf("Figure 3 — index ordering vs random ordering (ratio, <1 is cheaper)\n")
	for _, algo := range []string{"BOUND", "HYBRID"} {
		e.printf("\n%s:\n%-12s %22s %22s   %s\n", algo, "Dataset",
			"ByProvider comp/time", "ByContribution comp/time", "(paper: ByContribution fastest)")
		for _, id := range DatasetIDs {
			inst, err := e.Instance(id)
			if err != nil {
				return err
			}
			comps := make(map[index.Order]int64, 3)
			times := make(map[index.Order]time.Duration, 3)
			for _, ord := range []index.Order{index.Random, index.ByProvider, index.ByContribution} {
				det := e.orderedDetector(algo, ord)
				out := e.runFixedRounds(inst.DS, det)
				comps[ord] = out.TotalStats.Computations
				times[ord] = out.TotalStats.Detect // ordering affects the scan, not index build
			}
			rndC := float64(comps[index.Random])
			rndT := float64(times[index.Random])
			if rndC == 0 {
				rndC = 1
			}
			if rndT == 0 {
				rndT = 1
			}
			e.printf("%-12s %12.2f /%5.2f %15.2f /%5.2f\n", id,
				float64(comps[index.ByProvider])/rndC, float64(times[index.ByProvider])/rndT,
				float64(comps[index.ByContribution])/rndC, float64(times[index.ByContribution])/rndT)
		}
	}
	e.printf("\n")
	return nil
}

// orderedDetector builds BOUND or HYBRID with a given entry ordering.
func (e *Env) orderedDetector(algo string, ord index.Order) core.Detector {
	opts := e.opts()
	opts.Order = ord
	opts.Seed = e.Seed + int64(ord)
	if algo == "BOUND" {
		return &core.Bound{Params: e.Params, Opts: opts}
	}
	return &core.Hybrid{Params: e.Params, Opts: opts}
}
