// Crash-recovery acceptance test (ISSUE 3): SIGKILL the daemon at
// randomized points while a workload streams in, restart it on the same
// data directory, re-send whatever was never acknowledged, quiesce —
// and the published result must be byte-identical (timers and
// version/round metadata aside) to an uninterrupted run over the same
// appends. The daemon is a real process: the test re-execs its own
// binary, which TestMain turns into copydetectd when the child marker
// variable is set.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/gen"
	"copydetect/internal/server"
)

const childEnv = "COPYDETECTD_CHILD_ARGS"

func TestMain(m *testing.M) {
	if raw := os.Getenv(childEnv); raw != "" {
		var args []string
		if err := json.Unmarshal([]byte(raw), &args); err != nil {
			fmt.Fprintf(os.Stderr, "bad %s: %v\n", childEnv, err)
			os.Exit(2)
		}
		os.Exit(run(args))
	}
	os.Exit(m.Run())
}

// daemon is one copydetectd child process.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	output *bytes.Buffer
	exited chan struct{} // closed once Wait returns
}

// startDaemon launches the test binary as a copydetectd process over
// dataDir and waits until it serves.
func startDaemon(t *testing.T, dataDir string, workers int) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), fmt.Sprintf("addr-%d", time.Now().UnixNano()))
	args := []string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data-dir", dataDir,
		"-workers", fmt.Sprint(workers),
	}
	raw, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: exec.Command(os.Args[0]), output: &bytes.Buffer{}}
	d.cmd.Env = append(os.Environ(), childEnv+"="+string(raw))
	d.cmd.Stdout = d.output
	d.cmd.Stderr = d.output
	if err := d.cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	d.exited = make(chan struct{})
	go func() {
		_ = d.cmd.Wait()
		close(d.exited)
	}()
	t.Cleanup(func() { d.kill() })

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if raw, err := os.ReadFile(addrFile); err == nil && strings.Contains(string(raw), ":") {
			d.base = "http://" + strings.TrimSpace(string(raw))
			return d
		}
		select {
		case <-d.exited: // died at startup: fail now, with its output
			t.Fatalf("daemon exited during startup; output:\n%s", d.output.String())
		case <-time.After(5 * time.Millisecond):
		}
	}
	d.kill() // reaps the process, so reading its output below is race-free
	t.Fatalf("daemon never came up; output:\n%s", d.output.String())
	return nil
}

// kill SIGKILLs the daemon — no grace, no flushing — and reaps it.
func (d *daemon) kill() {
	if d.cmd.Process != nil {
		_ = d.cmd.Process.Kill()
		<-d.exited
	}
}

// httpDo runs one JSON request; ok reports a 2xx response.
func httpDo(client *http.Client, method, url string, body any) (ok bool, out map[string]any, err error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return false, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return false, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return false, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, nil, err
	}
	out = map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &out); err != nil {
			return false, nil, fmt.Errorf("bad response body %q: %w", raw, err)
		}
	}
	return resp.StatusCode >= 200 && resp.StatusCode < 300, out, nil
}

type appendBody struct {
	Observations []dataset.Record `json:"observations,omitempty"`
	Truth        []dataset.Record `json:"truth,omitempty"`
}

// client wraps the copydetectd wire protocol for one dataset.
type client struct {
	t    *testing.T
	http *http.Client
	base string
	name string
}

func (c *client) url(suffix string) string {
	return c.base + "/v1/datasets/" + c.name + suffix
}

func (c *client) create() {
	c.t.Helper()
	ok, out, err := httpDo(c.http, http.MethodPut, c.url(""), nil)
	if err != nil || !ok {
		c.t.Fatalf("create: ok=%v out=%v err=%v", ok, out, err)
	}
}

// tryAppend sends one batch and reports whether it was acknowledged.
func (c *client) tryAppend(obs, truth []dataset.Record) bool {
	ok, _, err := httpDo(c.http, http.MethodPost, c.url("/observations"), appendBody{Observations: obs, Truth: truth})
	return err == nil && ok
}

func (c *client) mustAppend(obs, truth []dataset.Record) {
	c.t.Helper()
	if !c.tryAppend(obs, truth) {
		c.t.Fatal("append failed against a healthy daemon")
	}
}

func (c *client) quiesce() {
	c.t.Helper()
	ok, out, err := httpDo(c.http, http.MethodPost, c.url("/quiesce"), nil)
	if err != nil || !ok {
		c.t.Fatalf("quiesce: ok=%v out=%v err=%v", ok, out, err)
	}
}

// published gathers the copies, truth and stats bodies with the
// run-dependent metadata (versions, round numbers, timers) removed —
// everything that remains must be byte-identical across an interrupted
// and an uninterrupted run.
func (c *client) published() map[string]map[string]any {
	c.t.Helper()
	views := map[string]map[string]any{}
	for _, ep := range []string{"/copies", "/truth", "/stats"} {
		ok, out, err := httpDo(c.http, http.MethodGet, c.url(ep), nil)
		if err != nil || !ok {
			c.t.Fatalf("GET %s: ok=%v out=%v err=%v", ep, ok, out, err)
		}
		for _, volatile := range []string{
			"version", "servedVersion", "round",
			"detectMillis", "fusionMillis", "wallMillis",
		} {
			delete(out, volatile)
		}
		if conv, _ := out["converged"].(bool); !conv {
			c.t.Fatalf("GET %s after quiesce not converged: %v", ep, out)
		}
		views[ep] = out
	}
	return views
}

// TestCrashRecoveryEquivalence is the acceptance criterion: for workers
// 1 and 4, SIGKILL the daemon at randomized points during streamed
// appends (including mid-round), restart + re-send unacknowledged
// batches + quiesce, and compare the full published state against an
// uninterrupted in-process run of the same append sequence.
func TestCrashRecoveryEquivalence(t *testing.T) {
	ds, _, err := gen.Generate(gen.Scale(gen.BookCS(11), 0.04))
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	recs := dataset.Records(ds)
	truth := dataset.TruthRecords(ds)
	const numBatches = 8
	per := (len(recs) + numBatches - 1) / numBatches
	var batches [][]dataset.Record
	for start := 0; start < len(recs); start += per {
		end := start + per
		if end > len(recs) {
			end = len(recs)
		}
		batches = append(batches, recs[start:end])
	}

	seed := time.Now().UnixNano()
	t.Logf("randomized kill points use seed %d", seed)

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(workers)))
			httpClient := &http.Client{Timeout: 90 * time.Second}

			// Reference: the uninterrupted run, same wire protocol,
			// against an in-process registry.
			reg := server.NewRegistry(server.Config{Options: core.Options{Workers: workers}})
			defer reg.Close()
			ref := httptest.NewServer(server.NewHandler(reg))
			defer ref.Close()
			rc := &client{t: t, http: httpClient, base: ref.URL, name: "stream"}
			rc.create()
			rc.mustAppend(batches[0], nil)
			rc.quiesce() // pin round 1 = HYBRID before the free-running tail
			for _, b := range batches[1:] {
				rc.mustAppend(b, nil)
			}
			rc.mustAppend(nil, truth)
			rc.quiesce()
			want := rc.published()

			// Interrupted run: a real daemon process, SIGKILLed at two
			// randomized batch positions (with a random extra delay so the
			// kill can land mid-detection-round), restarted on the same
			// data directory each time.
			dataDir := t.TempDir()
			d := startDaemon(t, dataDir, workers)
			cc := &client{t: t, http: httpClient, base: d.base, name: "stream"}
			cc.create()
			cc.mustAppend(batches[0], nil)
			cc.quiesce() // round 1 durable (publish marker precedes quiesce return)

			killAt := map[int]bool{}
			for len(killAt) < 2 {
				killAt[1+rng.Intn(len(batches)-1)] = true
			}
			t.Logf("killing after batches %v", keys(killAt))
			unsent := append([][]dataset.Record(nil), batches[1:]...)
			for i := 0; i < len(unsent); i++ {
				acked := cc.tryAppend(unsent[i], nil)
				if !killAt[i+1] {
					if !acked {
						t.Fatalf("append of batch %d failed without a crash", i+1)
					}
					continue
				}
				// Let the scheduler pick the batch up, then SIGKILL —
				// sometimes mid-round, sometimes between rounds.
				time.Sleep(time.Duration(rng.Intn(6)) * time.Millisecond)
				d.kill()
				d = startDaemon(t, dataDir, workers)
				cc = &client{t: t, http: httpClient, base: d.base, name: "stream"}
				if !acked {
					// Never acknowledged: the daemon may or may not have
					// logged it; re-sending is safe because appends are
					// idempotent on dataset content.
					i--
				}
			}
			cc.mustAppend(nil, truth)
			cc.quiesce()
			got := cc.published()

			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered run diverges from uninterrupted run:\n got  %v\n want %v", got, want)
			}
			if algo, _ := got["/copies"]["algorithm"].(string); algo != "INCREMENTAL" {
				t.Fatalf("final recovered round ran %q, want INCREMENTAL", algo)
			}
			if pairs, _ := got["/copies"]["pairs"].([]any); len(pairs) == 0 {
				t.Fatal("workload detected no copying pairs; enlarge the preset")
			}
		})
	}
}

func keys(m map[int]bool) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
