package server

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"copydetect/internal/core"
)

// TestListOrderingUnderConcurrentCreateDelete hammers Create/Delete
// from several goroutines while readers call List, asserting every
// observed listing is sorted, duplicate-free, and always contains the
// stable datasets that no mutator touches. Run under -race in CI, this
// also proves List's locking discipline.
func TestListOrderingUnderConcurrentCreateDelete(t *testing.T) {
	reg := NewRegistry(Config{Options: core.Options{Workers: 1}})
	defer reg.Close()

	var stable []string
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("stable-%d", i)
		stable = append(stable, name)
		if _, err := reg.Create(name, DatasetConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(stable)

	const (
		mutators  = 4
		readers   = 4
		churnPool = 8 // churned names per mutator
		rounds    = 200
	)
	var mutWG, readWG sync.WaitGroup
	var listings atomic.Int64
	stop := make(chan struct{})

	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				names := reg.List()
				listings.Add(1)
				if !sort.StringsAreSorted(names) {
					t.Errorf("List not sorted: %v", names)
					return
				}
				seen := make(map[string]bool, len(names))
				for _, n := range names {
					if seen[n] {
						t.Errorf("List has duplicate %q: %v", n, names)
						return
					}
					seen[n] = true
				}
				for _, s := range stable {
					if !seen[s] {
						t.Errorf("List lost stable dataset %q: %v", s, names)
						return
					}
				}
			}
		}()
	}

	// Each mutator churns its own name pool, so Create never races
	// another goroutine's Create of the same name — Delete/Create
	// interleavings with List are what this test is about.
	for m := 0; m < mutators; m++ {
		mutWG.Add(1)
		go func(m int) {
			defer mutWG.Done()
			rng := rand.New(rand.NewSource(int64(m)))
			live := make(map[string]bool)
			for i := 0; i < rounds; i++ {
				name := fmt.Sprintf("churn-%d-%d", m, rng.Intn(churnPool))
				if live[name] {
					if !reg.Delete(name) {
						t.Errorf("Delete(%q) lost a live dataset", name)
					}
					delete(live, name)
				} else {
					if _, err := reg.Create(name, DatasetConfig{}); err != nil {
						t.Errorf("Create(%q): %v", name, err)
					}
					live[name] = true
				}
			}
			for name := range live {
				reg.Delete(name)
			}
		}(m)
	}

	// Let the mutators finish first so the readers observe the whole
	// churn window, then stop the readers.
	mutWG.Wait()
	close(stop)
	readWG.Wait()

	if listings.Load() == 0 {
		t.Fatal("readers never observed a listing")
	}
	got := reg.List()
	if !sort.StringsAreSorted(got) {
		t.Fatalf("final List not sorted: %v", got)
	}
	want := append([]string(nil), stable...)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("after churn List = %v, want the stable set %v", got, want)
	}
}
