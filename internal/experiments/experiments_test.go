package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllExperimentsRunTiny executes every experiment at a tiny scale as a
// smoke test: no errors, and each emits its headline.
func TestAllExperimentsRunTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test is slow")
	}
	var buf bytes.Buffer
	env := NewEnv(&buf, 0.05, 1)
	if err := env.Run("all"); err != nil {
		t.Fatalf("run all: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Motivating example",
		"Table V",
		"Table VI",
		"Table VII",
		"Table VIII",
		"Table IX",
		"Table X",
		"Figure 2",
		"Figure 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The motivating experiment must report the exact golden counts.
	if !strings.Contains(out, "26 pairs, 51 shared values, 154 computations") {
		t.Error("motivating example did not reproduce Example 3.6's counts")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	env := NewEnv(&buf, 0.05, 1)
	if err := env.Run("table99"); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestUnknownDataset(t *testing.T) {
	var buf bytes.Buffer
	env := NewEnv(&buf, 0.05, 1)
	if _, err := env.Instance("nope"); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestInstanceCached(t *testing.T) {
	var buf bytes.Buffer
	env := NewEnv(&buf, 0.05, 1)
	a, err := env.Instance("book-cs")
	if err != nil {
		t.Fatal(err)
	}
	b, err := env.Instance("book-cs")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("instances should be cached")
	}
}

func TestIDsStable(t *testing.T) {
	ids := IDs()
	if len(ids) != 9 {
		t.Fatalf("expected 9 experiments, got %d", len(ids))
	}
	if ids[0] != "motivating" {
		t.Errorf("first experiment should be the motivating example")
	}
}

func TestItemSampleRate(t *testing.T) {
	if itemSampleRate("stock-2wk") != 0.01 {
		t.Error("stock-2wk samples 1%")
	}
	if itemSampleRate("book-cs") != 0.1 {
		t.Error("others sample 10%")
	}
}
