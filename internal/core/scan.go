package core

import (
	"math"
	"math/rand"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
	"copydetect/internal/pool"
)

// Options configures the index-driven single-round algorithms.
type Options struct {
	// Order is the entry processing order (Figure 3); default
	// ByContribution.
	Order index.Order
	// Seed seeds the random entry order when Order == Random.
	Seed int64
	// ShareThreshold is HYBRID's split point: pairs sharing at most this
	// many data items are handled INDEX-style, others with BOUND+. The
	// paper determined 16 empirically. Zero means 16.
	ShareThreshold int
	// Workers parallelizes detection across a goroutine pool (the Section
	// VIII extension): the entry scan of INDEX/BOUND/BOUND+/HYBRID is
	// sharded over the pair space, and INCREMENTAL fans out its base-score
	// computation, entry classification, delta application and pass 1–3
	// re-examination. 0 or 1 is sequential. The value is the shard count,
	// not a core count: results are bit-identical for every value (see
	// internal/pool and DESIGN.md). Each shard performs its own pass over
	// the index entries (filtering to the pairs it owns), so total work
	// grows with the shard count — keep Workers near the core count;
	// oversubscribing wastes time, it never changes results. CLI entry
	// points default to pool.Auto() (GOMAXPROCS).
	Workers int
}

func (o Options) shareThreshold() int32 {
	if o.ShareThreshold == 0 {
		return 16
	}
	return int32(o.ShareThreshold)
}

// mode selects how the shared scan treats each pair.
type mode int

const (
	modeIndex     mode = iota // no bounds: exact accumulation (Section III)
	modeBound                 // bounds checked on every shared entry (Section IV-A)
	modeBoundPlus             // bounds with lazy recomputation timers (Section IV-B)
	modeHybrid                // INDEX for small-overlap pairs, BOUND+ otherwise
)

// Index is the INDEX algorithm of Section III: scan the inverted index in
// decreasing contribution order, instantiate state only for pairs that
// co-occur outside the tail set E̅, accumulate exact scores, and correct
// for different-value items at the end. It produces exactly the PAIRWISE
// decisions.
type Index struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Index) Name() string { return "INDEX" }

// Reset drops the cross-round structural cache.
func (d *Index) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Index) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeIndex, &d.cache)
}

// Bound is the BOUND algorithm of Section IV-A: like INDEX, but it
// maintains per-pair minimum and maximum score bounds (Eq. 9–10) on every
// shared entry and terminates a pair as soon as the bounds decide copying
// or no-copying.
type Bound struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Bound) Name() string { return "BOUND" }

// Reset drops the cross-round structural cache.
func (d *Bound) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Bound) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeBound, &d.cache)
}

// BoundPlus is BOUND+ (Section IV-B): BOUND plus the Tmin/Tmax timers that
// skip bound recomputation until enough new evidence could possibly change
// the outcome.
type BoundPlus struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *BoundPlus) Name() string { return "BOUND+" }

// Reset drops the cross-round structural cache.
func (d *BoundPlus) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *BoundPlus) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeBoundPlus, &d.cache)
}

// Hybrid applies INDEX to pairs that share at most Opts.ShareThreshold
// data items (where bound bookkeeping costs more than it saves) and
// BOUND+ to the rest (end of Section IV).
type Hybrid struct {
	Params bayes.Params
	Opts   Options
	cache  structCache
}

// Name implements Detector.
func (d *Hybrid) Name() string { return "HYBRID" }

// Reset drops the cross-round structural cache.
func (d *Hybrid) Reset() { d.cache = structCache{} }

// DetectRound implements Detector.
func (d *Hybrid) DetectRound(ds *dataset.Dataset, st *bayes.State, round int) *Result {
	return scanRound(ds, st, d.Params, d.Opts, modeHybrid, &d.cache)
}

// pairState is the per-pair scan state of the index-driven algorithms.
type pairState struct {
	s1, s2 dataset.SourceID
	l      int32 // shared items l(S1,S2)
	n0     int32 // observed shared values
	cTo    float64
	cFrom  float64
	// BOUND+ lazy-recomputation timers.
	minSkipUntil int32 // recompute Cmin when n0 >= this
	maxSkipN1    int32 // recompute Cmax when n(S1) >= this ...
	maxSkipN2    int32 // ... or n(S2) >= this
	useBounds    bool
	decided      bool
	copying      bool
}

// scanRound runs one round of INDEX/BOUND/BOUND+/HYBRID, parallelized per
// opts.Workers. cache may be nil for one-shot callers.
func scanRound(ds *dataset.Dataset, st *bayes.State, p bayes.Params, opts Options, m mode, cache *structCache) *Result {
	buildStart := time.Now()
	var rng *rand.Rand
	if opts.Order == index.Random {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	idx := index.Build(ds, st, p, opts.Order, rng)
	var pm *index.PairMap
	var lCounts []int32
	if cache != nil {
		pm, lCounts = cache.sharedCounts(ds, idx)
	} else {
		pm = index.CandidatePairs(idx, ds.NumSources())
		lCounts = index.SharedItemCounts(ds, pm)
	}
	res := &Result{NumSources: ds.NumSources()}
	res.Stats.Rounds = 1
	res.Stats.IndexBuild = time.Since(buildStart)

	detectStart := time.Now()
	scanIndex(ds, st, p, opts, m, idx, pm, lCounts, res)
	res.Stats.Detect = time.Since(detectStart)
	return res
}

// makePairStates initializes the per-pair scan state, including the
// coverage-evidence seed (footnote-1 extension) and the per-pair bound
// mode. It is shared by the sequential and parallel paths; seeding the
// coverage evidence before any contribution is added keeps the floating-
// point accumulation order identical in both.
func makePairStates(ds *dataset.Dataset, p bayes.Params, opts Options, m mode,
	pm *index.PairMap, lCounts []int32) []pairState {

	shareThreshold := opts.shareThreshold()
	pairs := make([]pairState, pm.Len())
	for slot, key := range pm.Keys() {
		s1, s2 := key.Sources()
		ps := &pairs[slot]
		ps.s1, ps.s2 = s1, s2
		ps.l = lCounts[slot]
		if p.CoverageWeight > 0 {
			// Footnote-1 extension: seed both directional scores with the
			// coverage evidence, so bounds and decisions include it.
			cov := p.CoverageWeight * p.CoverageLLR(int(ps.l),
				ds.Coverage(s1), ds.Coverage(s2), ds.NumItems(), p.CoverageCap)
			ps.cTo, ps.cFrom = cov, cov
		}
		switch m {
		case modeBound, modeBoundPlus:
			ps.useBounds = true
		case modeHybrid:
			ps.useBounds = ps.l > shareThreshold
		}
	}
	return pairs
}

// scanShard is the accumulation kernel of the index-driven algorithms: one
// worker's entry scan over the shard of the pair space it owns. A pair
// {S1, S2} (S1 < S2, as guaranteed by the sorted provider lists) belongs
// to shard S1 mod workers, so every pair has exactly one writer and its
// state evolves through the same sequence of updates — in index order —
// as under the sequential scan. nSeen is recomputed per worker over all
// entries, so bound evaluations observe the same per-source counts at the
// same scan positions as sequentially. With workers == 1 this IS the
// sequential scan.
func scanShard(ds *dataset.Dataset, st *bayes.State, p bayes.Params, m mode,
	idx *index.Index, pm *index.PairMap, pairs []pairState, w, workers int) Stats {

	var stats Stats
	thetaCp, thetaInd := p.ThetaCp(), p.ThetaInd()
	lnDiff := p.LnDiff()
	useTimers := m == modeBoundPlus || m == modeHybrid

	nSeen := make([]int32, ds.NumSources()) // n(S): values observed per source
	for i := range idx.Entries {
		e := &idx.Entries[i]
		// Tail entries (E̅) only ever update pairs that already exist:
		// pairs co-occurring exclusively inside E̅ were never added to pm,
		// so pm.Get below returns -1 for them and they stay pruned.
		nextM := idx.MaxRemaining[i+1]
		for _, s := range e.Providers {
			nSeen[s]++
		}
		provs := e.Providers
		for x := 0; x < len(provs); x++ {
			if !pool.Owns(workers, w, int(provs[x])) {
				continue // pair owned by another shard
			}
			for y := x + 1; y < len(provs); y++ {
				s1, s2 := provs[x], provs[y]
				slot := pm.Get(s1, s2)
				if slot < 0 {
					continue // pair shares values only inside the tail set
				}
				ps := &pairs[slot]
				if ps.decided {
					continue
				}
				// Contribution of sharing this value (Eq. 6), both
				// directions. ContribSameDist(pv, pop, copier, copied).
				ps.cTo += p.ContribSameDist(e.P, e.Pop, st.A[s1], st.A[s2])
				ps.cFrom += p.ContribSameDist(e.P, e.Pop, st.A[s2], st.A[s1])
				ps.n0++
				stats.ValuesExamined++
				stats.Computations += 2
				if !ps.useBounds {
					continue
				}
				// Cmin (Eq. 9): assume every unseen shared item disagrees.
				if !useTimers || ps.n0 >= ps.minSkipUntil {
					cmin := math.Max(ps.cTo, ps.cFrom) + float64(ps.l-ps.n0)*lnDiff
					stats.Computations++
					if cmin >= thetaCp {
						ps.decided, ps.copying = true, true
						continue
					}
					if useTimers {
						// The next shared value can raise Cmin by at most
						// M − ln(1−s); skip until enough shared values to
						// possibly reach θcp (Section IV-B).
						t := int32(math.Ceil((thetaCp - cmin) / (nextM - lnDiff)))
						if t < 1 {
							t = 1
						}
						ps.minSkipUntil = ps.n0 + t
					}
				}
				// Cmax (Eq. 10).
				if !useTimers || nSeen[s1] >= ps.maxSkipN1 || nSeen[s2] >= ps.maxSkipN2 {
					h := estimateOverlapSeen(ds, nSeen, ps)
					cmax := math.Max(ps.cTo, ps.cFrom) +
						(h-float64(ps.n0))*lnDiff + (float64(ps.l)-h)*nextM
					stats.Computations++
					if cmax < thetaInd {
						ps.decided, ps.copying = true, false
						continue
					}
					if useTimers {
						// Each additional different value lowers Cmax by
						// M − ln(1−s); translate the needed count into
						// per-source observation thresholds (Section IV-B).
						t0 := math.Ceil((cmax - thetaInd) / (nextM - lnDiff))
						need := t0 + h - float64(ps.n0)
						cov1 := float64(ds.Coverage(s1))
						cov2 := float64(ds.Coverage(s2))
						ps.maxSkipN1 = int32(math.Ceil(need * cov1 / float64(ps.l)))
						ps.maxSkipN2 = int32(math.Ceil(need * cov2 / float64(ps.l)))
						if ps.maxSkipN1 <= nSeen[s1] {
							ps.maxSkipN1 = nSeen[s1] + 1
						}
						if ps.maxSkipN2 <= nSeen[s2] {
							ps.maxSkipN2 = nSeen[s2] + 1
						}
					}
				}
			}
		}
	}
	return stats
}

// finalizePairs is step IV of the scan: every undecided pair has now seen
// all its shared values; apply the different-value correction and decide.
// It runs on the calling goroutine over all pairs in slot order, which
// fixes the order of Result.Pairs independently of the worker count.
func finalizePairs(p bayes.Params, pairs []pairState, res *Result) {
	lnDiff := p.LnDiff()
	res.Stats.PairsConsidered += int64(len(pairs))
	for i := range pairs {
		ps := &pairs[i]
		if ps.decided {
			// Record the pair with the evidence available at its decision
			// point; Cmin is the sound score estimate there.
			cTo := ps.cTo + float64(ps.l-ps.n0)*lnDiff
			cFrom := ps.cFrom + float64(ps.l-ps.n0)*lnDiff
			prIndep, prTo, prFrom := p.Posterior(cTo, cFrom)
			res.Pairs = append(res.Pairs, PairResult{
				S1: ps.s1, S2: ps.s2, CTo: cTo, CFrom: cFrom,
				PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
				Copying: ps.copying,
			})
			continue
		}
		diff := float64(ps.l - ps.n0)
		cTo := ps.cTo + diff*lnDiff
		cFrom := ps.cFrom + diff*lnDiff
		res.Stats.Computations += 2
		copying, prIndep, prTo, prFrom := decide(p, cTo, cFrom)
		res.Pairs = append(res.Pairs, PairResult{
			S1: ps.s1, S2: ps.s2, CTo: cTo, CFrom: cFrom,
			PrIndep: prIndep, PrTo: prTo, PrFrom: prFrom,
			Copying: copying,
		})
	}
}

// estimateOverlapSeen computes h, the estimated number of already-scanned
// data items shared by the pair: max over the two sources of
// n(S)·l(S1,S2)/|D̄(S)| (Section IV-A), clamped into [n0, l].
func estimateOverlapSeen(ds *dataset.Dataset, nSeen []int32, ps *pairState) float64 {
	l := float64(ps.l)
	h1 := float64(nSeen[ps.s1]) * l / float64(ds.Coverage(ps.s1))
	h2 := float64(nSeen[ps.s2]) * l / float64(ds.Coverage(ps.s2))
	h := math.Max(h1, h2)
	if h < float64(ps.n0) {
		h = float64(ps.n0)
	}
	if h > l {
		h = l
	}
	return h
}
