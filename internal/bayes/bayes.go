// Package bayes implements the Bayesian copy-detection analysis of
// Section II of "Scaling up Copy Detection" (Li et al., ICDE 2015),
// originally from Dong et al. (VLDB 2009): per-item contribution scores
// C→(D)/C←(D) (Eq. 3–8), the posterior probability of independence
// Pr(S1⊥S2|Φ) (Eq. 1–2), the decision thresholds θcp and θind of
// Section IV-A, and the maximum entry contribution M̂(D.v) of
// Proposition 3.1.
//
//copydetect:deterministic
package bayes

import (
	"fmt"
	"math"
)

// Params holds the priors of the copying model. The paper treats them as
// inputs (footnote 4); they can be set or refined per Dong et al.
type Params struct {
	// Alpha is the a-priori probability 0 < α < 0.5 that one source copies
	// from another (per direction).
	Alpha float64
	// S is the selectivity of copying: the probability 0 < s < 1 that a
	// copier copies on a particular data item.
	S float64
	// N is the number n > 1 of uniformly distributed false values in each
	// data item's domain.
	N float64

	// CoverageWeight, when positive, enables the footnote-1 extension:
	// the coverage log-likelihood ratio (CoverageLLR) scaled by this
	// weight is added to both directional scores of every pair. Zero
	// disables it.
	CoverageWeight float64
	// CoverageCap clamps the coverage LLR; zero selects
	// DefaultCoverageCap.
	CoverageCap float64
}

// DefaultParams mirrors the configuration of the paper's motivating
// example: α = 0.1, s = 0.8, n = 50 (experiments use n = 100).
func DefaultParams() Params { return Params{Alpha: 0.1, S: 0.8, N: 100} }

// Validate reports whether the parameters are inside the model's domain.
func (p Params) Validate() error {
	if !(p.Alpha > 0 && p.Alpha < 0.5) {
		return fmt.Errorf("bayes: alpha %v out of (0, 0.5)", p.Alpha)
	}
	if !(p.S > 0 && p.S < 1) {
		return fmt.Errorf("bayes: selectivity %v out of (0, 1)", p.S)
	}
	if !(p.N > 1) {
		return fmt.Errorf("bayes: n %v must exceed 1", p.N)
	}
	return nil
}

// Beta returns β = 1 − 2α, the a-priori probability of no copying.
func (p Params) Beta() float64 { return 1 - 2*p.Alpha }

// ThetaCp returns θcp = ln(β/α): if either Cmin direction reaches it,
// Pr(S1⊥S2|Φ) ≤ 0.5 is guaranteed and copying can be concluded.
func (p Params) ThetaCp() float64 { return math.Log(p.Beta() / p.Alpha) }

// ThetaInd returns θind = ln(β/2α): if both Cmax directions stay below it,
// Pr(S1⊥S2|Φ) > 0.5 is guaranteed and no-copying can be concluded.
func (p Params) ThetaInd() float64 { return math.Log(p.Beta() / (2 * p.Alpha)) }

// LnDiff returns ln(1−s), the (negative) contribution of a shared item on
// which the two sources provide different values (Eq. 8).
func (p Params) LnDiff() float64 { return math.Log(1 - p.S) }

// PrIndepSame returns Pr(ΦD | S1⊥S2) for the observation that both sources
// provide the same value v of probability pv (Eq. 3). a1 and a2 are the
// sources' accuracies.
func (p Params) PrIndepSame(pv, a1, a2 float64) float64 {
	return pv*a1*a2 + (1-pv)*(1-a1)*(1-a2)/p.N
}

// PrProvides returns Pr(ΦD(S)): the probability that source S with
// accuracy a provides the observed value v of probability pv (Eq. 4).
func (p Params) PrProvides(pv, a float64) float64 {
	return pv*a + (1-pv)*(1-a)
}

// ContribSame returns C→(D) = ln(1−s + s·Pr(ΦD(S2))/Pr(ΦD|S1⊥S2)) for a
// shared value (Eq. 6), where a1 is the accuracy of the (potential) copier
// S1 and a2 the accuracy of the copied source S2. The result is always
// non-negative and grows as pv shrinks: sharing a false value is strong
// evidence for copying.
func (p Params) ContribSame(pv, a1, a2 float64) float64 {
	ind := p.PrIndepSame(pv, a1, a2)
	if ind <= 0 {
		// Degenerate accuracies (a=1 with pv=0, or a=0 with pv=1) make the
		// independent observation impossible; sharing is then proof.
		return math.Inf(1)
	}
	return math.Log(1 - p.S + p.S*p.PrProvides(pv, a2)/ind)
}

// Posterior turns the accumulated scores C→ and C← into posterior
// probabilities of the three hypotheses (Eq. 2 and its copying analogues):
// prIndep = Pr(S1⊥S2|Φ), prTo = Pr(S1→S2|Φ) (S1 copies from S2), and
// prFrom = Pr(S1←S2|Φ). Computation happens in log space so very large
// scores don't overflow.
func (p Params) Posterior(cTo, cFrom float64) (prIndep, prTo, prFrom float64) {
	switch {
	case math.IsInf(cTo, 1) && math.IsInf(cFrom, 1):
		return 0, 0.5, 0.5
	case math.IsInf(cTo, 1):
		return 0, 1, 0
	case math.IsInf(cFrom, 1):
		return 0, 0, 1
	}
	lab := math.Log(p.Alpha / p.Beta())
	x := lab + cTo
	y := lab + cFrom
	m := math.Max(0, math.Max(x, y))
	eb := math.Exp(0 - m)
	ex := math.Exp(x - m)
	ey := math.Exp(y - m)
	den := eb + ex + ey
	return eb / den, ex / den, ey / den
}

// PrIndep returns only Pr(S1⊥S2|Φ) (Eq. 2).
func (p Params) PrIndep(cTo, cFrom float64) float64 {
	pi, _, _ := p.Posterior(cTo, cFrom)
	return pi
}

// amThreshold returns the pivot accuracy 1 / (1 + n·pv/(1−pv)) of
// Proposition 3.1. For pv = 1 it is 0; for pv = 0 it is 1.
func (p Params) amThreshold(pv float64) float64 {
	if pv >= 1 {
		return 0
	}
	return 1 / (1 + p.N*pv/(1-pv))
}

// MaxEntryScoreProp31 computes M̂(D.v) exactly as Proposition 3.1 states,
// choosing the copier/copied accuracies from the minimum, second minimum
// and maximum accuracies among the providers. accs must have length ≥ 2.
func (p Params) MaxEntryScoreProp31(pv float64, accs []float64) float64 {
	amin, amin2, amax := extremes(accs)
	switch {
	case amin <= p.amThreshold(pv):
		return p.ContribSame(pv, amax, amin) // S1 max accuracy, S2 min accuracy
	case pv < 0.5:
		return p.ContribSame(pv, amin2, amin) // S2 min accuracy, S1 second min
	default:
		return p.ContribSame(pv, amin, amin2) // S1 min accuracy, S2 second min
	}
}

// MaxEntryScore computes M̂(D.v) = max over ordered pairs of distinct
// providers (S1, S2) of the contribution score of sharing D.v. Because the
// score is a ratio of functions affine in each accuracy, the maximum is
// attained at coordinate-wise extremes; it therefore suffices to examine
// ordered pairs drawn from the two smallest and two largest accuracies.
// This matches Proposition 3.1 and stays exact in its boundary cases.
func (p Params) MaxEntryScore(pv float64, accs []float64) float64 {
	if len(accs) < 2 {
		return 0
	}
	// Indices of the two smallest and two largest accuracies.
	i1, i2, j1, j2 := -1, -1, -1, -1 // min, 2nd-min, max, 2nd-max
	for i, a := range accs {
		if i1 == -1 || a < accs[i1] {
			i2 = i1
			i1 = i
		} else if i2 == -1 || a < accs[i2] {
			i2 = i
		}
		if j1 == -1 || a > accs[j1] {
			j2 = j1
			j1 = i
		} else if j2 == -1 || a > accs[j2] {
			j2 = i
		}
	}
	// The contribution ln(1−s + s·u) is monotone in the likelihood ratio
	// u = Pr(ΦD(S2))/Pr(ΦD|S1⊥S2), so the argmax over candidate pairs can
	// be found on u directly and only the winner pays for a logarithm —
	// one instead of twelve per entry, and this runs once per entry per
	// round (see PERFORMANCE.md).
	cand := [4]int{i1, i2, j1, j2}
	bestU := math.Inf(-1)
	for _, s1 := range cand {
		for _, s2 := range cand {
			if s1 == s2 {
				continue
			}
			ind := p.PrIndepSame(pv, accs[s1], accs[s2])
			if ind <= 0 {
				return math.Inf(1)
			}
			if u := p.PrProvides(pv, accs[s2]) / ind; u > bestU {
				bestU = u
			}
		}
	}
	return math.Log(1 - p.S + p.S*bestU)
}

// extremes returns the minimum, second minimum and maximum of accs, which
// must have length ≥ 2. Duplicated values are treated as distinct sources,
// so for accs = [.2, .2] both the min and the second min are .2.
func extremes(accs []float64) (amin, amin2, amax float64) {
	amin, amin2 = math.Inf(1), math.Inf(1)
	amax = math.Inf(-1)
	for _, a := range accs {
		if a < amin {
			amin2 = amin
			amin = a
		} else if a < amin2 {
			amin2 = a
		}
		if a > amax {
			amax = a
		}
	}
	return amin, amin2, amax
}
