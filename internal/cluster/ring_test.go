package cluster

import (
	"fmt"
	"testing"
)

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty backend accepted")
	}
	if _, err := NewRing([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

func TestRingDeterministic(t *testing.T) {
	backends := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	r1, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("ds-%d", i)
		if r1.Owner(name) != r2.Owner(name) {
			t.Fatalf("ring not deterministic for %q: %d vs %d", name, r1.Owner(name), r2.Owner(name))
		}
	}
}

func TestRingBalance(t *testing.T) {
	backends := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(backends))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("ds-%d", i))]++
	}
	// With DefaultReplicas virtual nodes the split should be within a
	// factor of ~2 of even; this is deterministic (fixed names, fixed
	// hash), so the assertion cannot flake.
	for i, c := range counts {
		if c < n/len(backends)/2 || c > n*2/len(backends) {
			t.Errorf("backend %d owns %d of %d keys — ring badly unbalanced: %v", i, c, n, counts)
		}
	}
}

func TestRingMinimalDisruption(t *testing.T) {
	three := []string{"http://b0:1", "http://b1:1", "http://b2:1"}
	four := append(append([]string(nil), three...), "http://b3:1")
	r3, err := NewRing(three, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(four, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved, total := 0, 2000
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("ds-%d", i)
		o3, o4 := r3.Owner(name), r4.Owner(name)
		if o3 != o4 {
			moved++
			// Consistent hashing: a key may only move *to* the new backend.
			if four[o4] != "http://b3:1" {
				t.Fatalf("key %q moved from %s to %s, not to the new backend", name, three[o3], four[o4])
			}
		}
	}
	// Expected share moved is ~1/4; allow a generous band (deterministic).
	if moved == 0 || moved > total/2 {
		t.Errorf("adding one backend moved %d of %d keys", moved, total)
	}
}

func TestRingAccessors(t *testing.T) {
	backends := []string{"u0", "u1"}
	r, err := NewRing(backends, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBackends() != 2 || r.Backend(0) != "u0" || r.Backend(1) != "u1" {
		t.Errorf("accessors: n=%d b0=%q b1=%q", r.NumBackends(), r.Backend(0), r.Backend(1))
	}
}
