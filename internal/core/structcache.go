package core

import (
	"math/rand"

	"copydetect/internal/bayes"
	"copydetect/internal/dataset"
	"copydetect/internal/index"
)

// structCache memoizes everything the scan can reuse across rounds of the
// iterative process, split along the Structure/View boundary of
// internal/index:
//
//   - Per dataset generation: the SoA index structure (entry tables, CSR
//     provider lists, overlap bitsets), the all-pairs map and the
//     shared-item counts l(S1,S2). These depend only on the observations —
//     never on value probabilities or accuracies — so they are computed
//     once and reused in every round. (The paper counts l(S1,S2) "at index
//     building time"; this keeps that cost out of the per-round loop
//     entirely.)
//   - Per round, reusing buffers: the rescored View, the candidate pair
//     map (pairs co-occurring outside the round's tail set E̅, which moves
//     with the scores), its shared-item counts, the pair-state columns and
//     the per-worker nSeen scratch. After the first round of a dataset,
//     none of these allocate.
//
// The cache key is the dataset pointer AND its Generation stamp: a caller
// that deletes a dataset and creates a new one can legitimately see the
// allocator reuse the address, and a pointer-only key would then serve the
// old dataset's frozen structure for the new data. (Regression test:
// TestStructCacheGenerationChange.)
type structCache struct {
	ds  *dataset.Dataset
	gen uint64

	// Per dataset generation.
	str   *index.Structure
	view  *index.View
	pmAll *index.PairMap
	lAll  []int32

	// Per round, reused.
	pm      *index.PairMap
	lCounts []int32
	tab     pairTab
	nSeen   [][]int32
}

// structures returns the SoA structure for ds, rebuilding everything when
// the dataset identity (pointer or generation) changed.
func (c *structCache) structures(ds *dataset.Dataset) *index.Structure {
	if c.str != nil && c.ds == ds && c.gen == ds.Generation {
		return c.str
	}
	*c = structCache{ds: ds, gen: ds.Generation}
	c.str = index.NewStructure(ds)
	c.view = index.NewView(c.str)
	c.pmAll = index.NewPairMap(ds.NumSources())
	index.AllPairsInto(c.str, c.pmAll)
	c.lAll = make([]int32, c.pmAll.Len())
	if c.str.ItemBits != nil {
		index.SharedItemCountsBits(c.str, c.pmAll, c.lAll)
	} else {
		// Bitsets disabled by the memory guard: fall back to the sorted-
		// list merges (one-time cost, it is cached).
		c.lAll = index.SharedItemCounts(ds, c.pmAll)
	}
	return c.str
}

// round prepares one scan round: rescore the view against the current
// state, collect the candidate pairs outside the new tail set, and look up
// their shared-item counts from the cached all-pairs table.
func (c *structCache) round(ds *dataset.Dataset, st *bayes.State, p bayes.Params,
	ord index.Order, rng *rand.Rand) (*index.View, *index.PairMap, []int32) {

	c.structures(ds)
	c.view.Rescore(st, p, ord, rng)
	if c.pm == nil {
		c.pm = index.NewPairMap(ds.NumSources())
	}
	index.CandidatePairsInto(c.view, c.pm)
	numPairs := c.pm.Len()
	if cap(c.lCounts) < numPairs {
		c.lCounts = make([]int32, numPairs)
	}
	c.lCounts = c.lCounts[:numPairs]
	for slot, key := range c.pm.Keys() {
		s1, s2 := key.Sources()
		if all := c.pmAll.Get(s1, s2); all >= 0 {
			c.lCounts[slot] = c.lAll[all]
		} else {
			// Unreachable while the cache key holds (every candidate pair
			// co-occurs in some entry, so pmAll has it); kept as a safety
			// net.
			c.lCounts[slot] = int32(ds.SharedItems(s1, s2))
		}
	}
	return c.view, c.pm, c.lCounts
}

// nSeenBufs returns one per-source counter slice per worker, reused across
// rounds.
func (c *structCache) nSeenBufs(workers, numSources int) [][]int32 {
	for len(c.nSeen) < workers {
		c.nSeen = append(c.nSeen, make([]int32, numSources))
	}
	return c.nSeen[:workers]
}
