package gen

import (
	"math"
	"testing"

	"copydetect/internal/dataset"
)

func TestZipfWeights(t *testing.T) {
	if ZipfWeights(0, 1) != nil {
		t.Error("n=0 must return nil")
	}
	uniform := ZipfWeights(4, 0)
	for _, w := range uniform {
		if math.Abs(w-0.25) > 1e-12 {
			t.Fatalf("s=0 is not uniform: %v", uniform)
		}
	}
	skewed := ZipfWeights(5, 1)
	sum := 0.0
	for i, w := range skewed {
		sum += w
		if i > 0 && w >= skewed[i-1] {
			t.Fatalf("weights not decreasing: %v", skewed)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v, want 1", sum)
	}
	// s=1 harmonic: w0/w1 = 2.
	if r := skewed[0] / skewed[1]; math.Abs(r-2) > 1e-9 {
		t.Fatalf("rank-0/rank-1 ratio = %v, want 2", r)
	}
}

func TestChurnRecordsPartition(t *testing.T) {
	ds, _, err := Generate(Scale(Stock1Day(7), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	all := dataset.Records(ds)
	waves := ChurnRecords(ds, 3, 0.4, 7)
	if len(waves) != 3 {
		t.Fatalf("got %d waves, want 3", len(waves))
	}
	if len(waves[0]) == 0 {
		t.Fatal("founding cohort is empty")
	}
	total := 0
	for _, w := range waves {
		total += len(w)
	}
	if total != len(all) {
		t.Fatalf("waves hold %d records, dataset has %d", total, len(all))
	}
	// Each source's records live in exactly one wave: replaying waves in
	// order must keep per-source append order intact.
	seen := map[string]int{}
	for wi, w := range waves {
		for _, rec := range w {
			if prev, ok := seen[rec.Source]; ok && prev != wi {
				t.Fatalf("source %s split across waves %d and %d", rec.Source, prev, wi)
			}
			seen[rec.Source] = wi
		}
	}
	// Late cohort size follows the fraction (rounded over sources).
	late := 0
	for _, wi := range seen {
		if wi > 0 {
			late++
		}
	}
	want := int(math.Round(0.4 * float64(ds.NumSources())))
	if late != want {
		t.Fatalf("late sources = %d, want %d", late, want)
	}
}

func TestChurnRecordsDeterministic(t *testing.T) {
	ds, _, err := Generate(Scale(Stock1Day(7), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	a := ChurnRecords(ds, 4, 0.5, 99)
	b := ChurnRecords(ds, 4, 0.5, 99)
	if len(a) != len(b) {
		t.Fatal("wave count differs between runs")
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("wave %d size differs between runs", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("wave %d record %d differs between runs", i, j)
			}
		}
	}
}

func TestChurnRecordsDegenerate(t *testing.T) {
	ds, _, err := Generate(Scale(Stock1Day(7), 0.01))
	if err != nil {
		t.Fatal(err)
	}
	all := dataset.Records(ds)
	for name, waves := range map[string][][]dataset.Record{
		"one wave":      ChurnRecords(ds, 1, 0.5, 1),
		"zero fraction": ChurnRecords(ds, 3, 0, 1),
	} {
		if len(waves) != 1 || len(waves[0]) != len(all) {
			t.Errorf("%s: want a single full wave, got %d waves", name, len(waves))
		}
	}
}

// TestClosureContainsCliques pins the closure the quality gate scores
// precision against: it contains every direct pair, plus the
// copier–copier pairs inside each clique, and nothing else.
func TestClosureContainsCliques(t *testing.T) {
	_, pl, err := Generate(Scale(Stock1Day(3), 0.02))
	if err != nil {
		t.Fatal(err)
	}
	for k := range pl.Pairs {
		if !pl.Closure[k] {
			t.Fatal("closure is missing a direct planted pair")
		}
	}
	// Stock presets plant 6 cliques with 2,2,1,1,3,1 copiers:
	// direct pairs = sum(copiers) = 10; closure = sum C(copiers+1, 2) = 15.
	if len(pl.Pairs) != 10 || len(pl.Closure) != 15 {
		t.Fatalf("pairs=%d closure=%d, want 10 and 15", len(pl.Pairs), len(pl.Closure))
	}
	found := false
	for k := range pl.Closure {
		a, b := dataset.SourceID(k>>32), dataset.SourceID(uint32(k))
		if !pl.PairInClique(a, b) || !pl.PairInClique(b, a) {
			t.Fatal("PairInClique must be order-invariant")
		}
		if !pl.Pairs[k] {
			found = true // a genuine copier–copier transitive pair
		}
	}
	if !found {
		t.Fatal("closure adds no copier–copier pairs over the direct set")
	}
	if pl.PairInClique(1000, 1001) {
		t.Error("unrelated pair reported in clique")
	}
}

// TestScaleExtremes checks the CopyGroup coverage invariants far outside
// the usual range: heavy shrink (f < 0.1) and heavy growth (f > 10)
// must leave a config whose cliques still fit the source count, whose
// low-coverage band still rounds to at least one item, and whose gold
// standard still fits.
func TestScaleExtremes(t *testing.T) {
	presets := map[string]Config{
		"book-cs":    BookCS(1),
		"book-full":  BookFull(1),
		"stock-1day": Stock1Day(1),
		"stock-2wk":  Stock2Wk(1),
	}
	for name, base := range presets {
		for _, f := range []float64{0.005, 0.01, 0.05, 12, 20} {
			cfg := Scale(base, f)
			if len(cfg.Groups) == 0 {
				t.Errorf("%s ×%g: all copy groups dropped", name, f)
			}
			members := 0
			for _, g := range cfg.Groups {
				members += g.Copiers + 1
			}
			if members > cfg.NumSources {
				t.Errorf("%s ×%g: %d clique members exceed %d sources", name, f, members, cfg.NumSources)
			}
			if cfg.LowCoverageMin*float64(cfg.NumItems) < 1 {
				t.Errorf("%s ×%g: low coverage rounds to zero items", name, f)
			}
			if cfg.LowCoverageMax < cfg.LowCoverageMin {
				t.Errorf("%s ×%g: inverted low-coverage band", name, f)
			}
			if cfg.GoldItems > cfg.NumItems {
				t.Errorf("%s ×%g: gold standard larger than the dataset", name, f)
			}
		}
	}
}

// TestPlantedSurvivesScale generates at several scales and asserts the
// planted truth stays coherent: pairs exist, reference in-range
// sources, and the closure stays a superset of the direct pairs.
// Generation is kept to shrunken configs — the invariants do not need a
// hundred-million-observation dataset to hold.
func TestPlantedSurvivesScale(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"book-cs ×0.02", Scale(BookCS(11), 0.02)},
		{"book-cs ×0.08", Scale(BookCS(11), 0.08)},
		{"book-full ×0.005", Scale(BookFull(11), 0.005)},
		{"stock-1day ×0.01", Scale(Stock1Day(11), 0.01)},
		{"stock-2wk ×0.002", Scale(Stock2Wk(11), 0.002)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ds, pl, err := Generate(c.cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if err := ds.Validate(); err != nil {
				t.Fatalf("dataset invalid: %v", err)
			}
			if len(pl.Pairs) == 0 {
				t.Fatal("no planted pairs survived scaling")
			}
			n := dataset.SourceID(ds.NumSources())
			for k := range pl.Closure {
				a, b := dataset.SourceID(k>>32), dataset.SourceID(uint32(k))
				if a >= b || b >= n {
					t.Fatalf("closure pair (%d,%d) out of range or unordered (sources=%d)", a, b, n)
				}
			}
			for k := range pl.Pairs {
				if !pl.Closure[k] {
					t.Fatal("closure lost a direct pair")
				}
			}
			if len(pl.TrueAccuracy) != ds.NumSources() {
				t.Fatalf("accuracy vector has %d entries for %d sources", len(pl.TrueAccuracy), ds.NumSources())
			}
		})
	}
}
