package main

import (
	"testing"

	"copydetect"
)

func TestParseAlgo(t *testing.T) {
	cases := []struct {
		in   string
		want copydetect.Algorithm
	}{
		{"pairwise", copydetect.AlgorithmPairwise},
		{"index", copydetect.AlgorithmIndex},
		{"bound", copydetect.AlgorithmBound},
		{"bound+", copydetect.AlgorithmBoundPlus},
		{"boundplus", copydetect.AlgorithmBoundPlus},
		{"hybrid", copydetect.AlgorithmHybrid},
		{"HYBRID", copydetect.AlgorithmHybrid},
		{"incremental", copydetect.AlgorithmIncremental},
	}
	for _, c := range cases {
		got, err := parseAlgo(c.in)
		if err != nil || got != c.want {
			t.Errorf("parseAlgo(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := parseAlgo("nonsense"); err == nil {
		t.Error("unknown algorithm should fail")
	}
}
