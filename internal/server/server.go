// Package server is the serving layer behind cmd/copydetectd: a registry
// of named datasets that accepts streamed observation appends and keeps a
// cached copy-detection result per dataset, recomputed asynchronously by
// a dirty-dataset scheduler.
//
// The contract is batch equivalence: every detection round runs the full
// iterative process (fusion.TruthFinder) on an immutable snapshot of all
// observations appended so far, so once a dataset quiesces — no pending
// appends, no in-flight round — its published result is byte-identical
// (up to wall-clock timers) to a one-shot batch Detect over the same
// final dataset with the same algorithm, parameters and worker count.
// Reads never block on detection: they serve the last published round,
// versioned by an ETag.
//
// The first round of a dataset runs HYBRID (there is no previous decision
// to refine); every later round runs INCREMENTAL, whose warm phase is
// HYBRID and whose remaining rounds reuse the entry classification of
// Section V across the rounds of the iterative process. When an append
// arrives while a round is in flight, the round's snapshot is stale: the
// scheduler cancels it between iterative rounds (fusion.TruthFinder.Cancel)
// and reschedules the dataset.
//
// With Config.DataDir set (registry Open), every dataset is durable:
// appends are acknowledged only after their write-ahead-log record is
// persisted, a background compactor snapshots each published round and
// trims the log behind it, and a restarted registry replays
// snapshot-plus-tail so that, once re-quiesced, it publishes the same
// Result an uninterrupted process would have — the batch-equivalence
// contract extended across process death. See store.go for the on-disk
// layout and recovery sequence.
package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
)

// Config tunes a Registry.
type Config struct {
	// Params are the copying-model priors used for every dataset that
	// does not override them. The zero value selects the paper's
	// defaults (α=0.1, s=0.8, n=100).
	Params bayes.Params
	// Options are the detector options used for every dataset that does
	// not override them; Options.Workers shards each detection round.
	Options core.Options
	// Concurrency caps how many datasets may run detection rounds at the
	// same time (default 1). Rounds for a single dataset never overlap.
	Concurrency int

	// DataDir, when non-empty, makes every dataset durable under this
	// directory: appends go through a write-ahead log before being
	// acknowledged, published rounds are snapshotted, and Open recovers
	// the full registry state after a crash or restart. Empty means a
	// purely in-memory registry.
	DataDir string
	// Fsync makes every acknowledged append (and publish marker) fsync
	// the WAL, so acknowledged data survives power loss rather than just
	// process death. Only meaningful with DataDir.
	Fsync bool
	// SnapshotEvery is the compaction cadence: a dataset is snapshotted
	// (and its WAL trimmed) after every SnapshotEvery published rounds
	// (default 1). Only meaningful with DataDir.
	SnapshotEvery int

	// AppendHighWater, when positive, bounds per-dataset convergence
	// lag: an unsequenced append (seq 0 — a client write, not
	// replication traffic) is refused with ErrBacklog once the dataset
	// has AppendHighWater or more accepted appends not yet covered by a
	// published round. Zero or negative disables admission control.
	AppendHighWater int
}

// ErrNotFound reports an unknown (or deleted) dataset name.
var ErrNotFound = fmt.Errorf("server: dataset not found")

// ErrExists reports a Create for a name already registered.
var ErrExists = fmt.Errorf("server: dataset already exists")

// ErrSeqGap reports a sequenced append whose sequence number is ahead
// of the dataset: one or more earlier appends are missing, so applying
// it would put the replica out of order with its primary.
var ErrSeqGap = fmt.Errorf("server: append sequence gap")

// ErrBacklog reports an append refused by admission control: the
// dataset's convergence lag reached Config.AppendHighWater, so instead
// of queueing without bound the caller should back off and retry (the
// HTTP layer answers 429 with a Retry-After).
var ErrBacklog = fmt.Errorf("server: dataset convergence backlog")

// Published is the immutable outcome of one completed detection round.
// Everything it points to is a snapshot: readers may use it without
// locking, concurrently with later appends and rounds.
type Published struct {
	// Version is the append version the round's snapshot was built at;
	// Round counts completed rounds for the dataset, starting at 1.
	Version uint64
	Round   int
	// Algorithm is "HYBRID" for the first round, "INCREMENTAL" after.
	Algorithm string
	// Snapshot is the dataset the round detected on.
	Snapshot *dataset.Dataset
	// Outcome is the full iterative result (copying pairs, truths,
	// state, per-round stats).
	Outcome *fusion.Outcome
	// Wall is the end-to-end duration of the round.
	Wall time.Duration
}

// Managed is one named dataset under registry management. All methods
// are safe for concurrent use.
type Managed struct {
	name   string
	gen    uint64 // registry-wide creation counter, disambiguates ETags across delete/recreate
	params bayes.Params
	opts   core.Options
	reg    *Registry

	mu      sync.Mutex
	cond    *sync.Cond
	builder *dataset.Builder
	version uint64 // bumped on every accepted append batch
	rounds  int    // completed (published) rounds, survives restarts
	dirty   bool   // appends not yet covered by a completed round
	running bool   // a round is in flight
	closed  bool
	cancel  chan struct{} // closes to abort the in-flight round
	// lagSince is when the dataset last left the converged state — the
	// arrival of the oldest append not yet covered by a published round.
	// Telemetry reads it for the convergence-lag-seconds gauge; it is
	// only meaningful while convergedLocked() is false.
	lagSince time.Time

	pub *Published

	// Durable state; all nil/zero for an in-memory registry.
	// appendMu serializes whole Append calls so WAL order always equals
	// version order, while keeping the disk write (fsync!) outside
	// m.mu — reads never wait on storage. Lock order: appendMu → mu.
	appendMu    sync.Mutex
	st          *dstore
	pending     []verLSN // appends not yet covered by a snapshot
	sinceSnap   int      // published rounds since the last snapshot
	snapVersion uint64   // append version the newest on-disk snapshot covers
	// inflightLSN is a lower bound on the WAL position of a record that
	// has been (or is about to be) written but is not yet registered in
	// pending — the window between the WAL write and re-acquiring mu.
	// The compactor must never trim at or past it: the record may
	// already be acknowledged, and trimming its segment would silently
	// lose the batch at the next recovery. 0 means no write in flight.
	inflightLSN uint64
}

// Info is a point-in-time summary of a managed dataset.
type Info struct {
	Name         string  `json:"name"`
	Version      uint64  `json:"version"`
	Sources      int     `json:"sources"`
	Items        int     `json:"items"`
	Observations int     `json:"observations"`
	Converged    bool    `json:"converged"`
	Workers      int     `json:"workers"`
	Alpha        float64 `json:"alpha"`
	S            float64 `json:"s"`
	N            float64 `json:"n"`

	// Served* describe the published round (zero before the first one).
	ServedVersion uint64 `json:"servedVersion"`
	Round         int    `json:"round"`
	Algorithm     string `json:"algorithm,omitempty"`
}

// Registry holds the managed datasets and runs their detection rounds on
// a dirty-dataset scheduler.
type Registry struct {
	params      bayes.Params
	opts        core.Options
	concurrency int
	dataDir     string
	fsync       bool
	snapEvery   int
	highWater   int // Config.AppendHighWater

	inst atomic.Pointer[instruments] // set by RegisterMetrics, nil until then

	mu     sync.Mutex
	sets   map[string]*Managed
	gen    uint64 // bumped per Create
	closed bool

	kick     chan struct{}
	stop     chan struct{}
	compactC chan *Managed
	wg       sync.WaitGroup
}

// NewRegistry starts a purely in-memory registry and its scheduler
// goroutine; persistence fields of cfg are ignored. Use Open for a
// durable registry. Close it to stop detection and release the
// goroutine.
func NewRegistry(cfg Config) *Registry {
	cfg.DataDir = ""
	r, err := Open(cfg)
	if err != nil {
		// Unreachable: with no data directory, Open touches no disk.
		panic(err)
	}
	return r
}

// Open starts a registry. With cfg.DataDir set it first recovers every
// dataset found under the directory — newest intact snapshot, then the
// WAL tail with torn-tail truncation — and schedules a fresh detection
// round for each dataset whose appends outrun its published result, so
// the service resumes exactly where the previous process died.
func Open(cfg Config) (*Registry, error) {
	if (cfg.Params == bayes.Params{}) {
		cfg.Params = bayes.DefaultParams()
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 1
	}
	r := &Registry{
		params:      cfg.Params,
		opts:        cfg.Options,
		concurrency: cfg.Concurrency,
		dataDir:     cfg.DataDir,
		fsync:       cfg.Fsync,
		snapEvery:   cfg.SnapshotEvery,
		highWater:   cfg.AppendHighWater,
		sets:        make(map[string]*Managed),
		kick:        make(chan struct{}, 1),
		stop:        make(chan struct{}),
		compactC:    make(chan *Managed, 128),
	}
	if r.dataDir != "" {
		if err := r.recover(); err != nil {
			return nil, err
		}
	}
	r.wg.Add(1)
	go r.scheduler()
	if r.dataDir != "" {
		r.wg.Add(1)
		go r.compactor()
		// Resume the dirty-dataset scheduler for recovered datasets whose
		// appends outran their published round.
		for _, m := range r.sets {
			if m.dirty {
				r.kickAsync()
				break
			}
		}
	}
	return r, nil
}

// recover scans the data directory and rebuilds every dataset.
func (r *Registry) recover() error {
	root := datasetsRoot(r.dataDir)
	if err := os.MkdirAll(root, 0o777); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		if _, err := os.Stat(filepath.Join(dir, "config.json")); err != nil {
			// A crash between directory creation and the durable config
			// write: the Create was never acknowledged, discard it.
			discard(dir)
			continue
		}
		m, err := recoverDataset(dir, r.fsync, r.observeWAL)
		if err != nil {
			return err
		}
		if name, err := decodeDirName(e.Name()); err != nil || name != m.name {
			return fmt.Errorf("server: dataset directory %q holds config for %q", e.Name(), m.name)
		}
		m.reg = r
		m.cond = sync.NewCond(&m.mu)
		if m.params == (bayes.Params{}) {
			m.params = r.params
		}
		if m.opts.Workers == 0 {
			m.opts = r.opts
		} else {
			w := m.opts.Workers
			m.opts = r.opts
			m.opts.Workers = w
		}
		r.sets[m.name] = m
		if m.gen > r.gen {
			r.gen = m.gen
		}
	}
	return nil
}

// Close stops the scheduler, cancels in-flight rounds and waits for them
// to return. The registry must not be used afterwards.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sets := make([]*Managed, 0, len(r.sets))
	for _, m := range r.sets {
		sets = append(sets, m)
	}
	r.mu.Unlock()
	for _, m := range sets {
		m.shut()
	}
	close(r.stop)
	r.wg.Wait()
	// No round or compactor goroutine remains. Snapshot every dataset
	// the compactor had not caught up with, so a clean shutdown leaves
	// each newest round snapshotted and its WAL trimmed.
	for _, m := range sets {
		if m.st != nil {
			m.snapshot(true)
			_ = m.st.log.Close()
		}
	}
}

// DatasetConfig overrides registry defaults for one dataset. Zero fields
// inherit the registry configuration.
type DatasetConfig struct {
	Params  bayes.Params
	Workers int
}

// Create registers an empty dataset. It fails with ErrExists when the
// name is taken and validates any overridden priors.
func (r *Registry) Create(name string, cfg DatasetConfig) (*Managed, error) {
	if name == "" {
		return nil, fmt.Errorf("server: empty dataset name")
	}
	params := r.params
	if (cfg.Params != bayes.Params{}) {
		params = cfg.Params
		if err := params.Validate(); err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", name, err)
		}
	}
	opts := r.opts
	if cfg.Workers != 0 {
		opts.Workers = cfg.Workers
	}
	m := &Managed{
		name:    name,
		params:  params,
		opts:    opts,
		reg:     r,
		builder: dataset.NewBuilder(),
	}
	m.cond = sync.NewCond(&m.mu)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server: registry closed")
	}
	if _, ok := r.sets[name]; ok {
		return nil, ErrExists
	}
	r.gen++
	m.gen = r.gen
	if r.dataDir != "" {
		st, err := newDatasetStore(r.dataDir, datasetConfig{
			Name:    name,
			Gen:     m.gen,
			Alpha:   params.Alpha,
			S:       params.S,
			N:       params.N,
			Workers: opts.Workers,
		}, r.fsync, r.observeWAL)
		if err != nil {
			r.gen--
			return nil, err
		}
		m.st = st
	}
	r.sets[name] = m
	return m, nil
}

// Get returns the managed dataset with the given name.
func (r *Registry) Get(name string) (*Managed, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.sets[name]
	return m, ok
}

// Delete unregisters a dataset, cancelling its in-flight round if any.
// It reports whether the name existed.
func (r *Registry) Delete(name string) bool {
	r.mu.Lock()
	m, ok := r.sets[name]
	if ok {
		delete(r.sets, name)
	}
	r.mu.Unlock()
	if ok {
		m.shut()
		if m.st != nil {
			// The in-flight round and compactor see m.closed and stand
			// down; any WAL call they race in returns a closed-log error.
			_ = m.st.log.Close()
			_ = m.st.remove()
		}
	}
	return ok
}

// List returns the registered dataset names in sorted order.
func (r *Registry) List() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.sets))
	for name := range r.sets {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Quiesce blocks until the named dataset has converged — every append is
// covered by a completed detection round — and returns the published
// result (nil for a dataset that never received observations). It
// returns early with the context error on cancellation and ErrNotFound
// if the dataset is deleted while waiting.
func (r *Registry) Quiesce(ctx context.Context, name string) (*Published, error) {
	m, ok := r.Get(name)
	if !ok {
		return nil, ErrNotFound
	}
	watchDone := make(chan struct{})
	defer close(watchDone)
	go func() {
		select {
		case <-ctx.Done():
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		case <-watchDone:
		}
	}()
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.convergedLocked() && !m.closed && ctx.Err() == nil {
		m.cond.Wait()
	}
	if m.closed {
		return nil, ErrNotFound
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.pub, nil
}

// kickAsync nudges the scheduler without blocking.
func (r *Registry) kickAsync() {
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// scheduler is the registry's dirty-dataset loop: whenever kicked it
// claims every dirty dataset without an in-flight round and runs one
// detection round for each, at most concurrency at a time.
func (r *Registry) scheduler() {
	defer r.wg.Done()
	sem := make(chan struct{}, r.concurrency)
	for {
		select {
		case <-r.stop:
			return
		case <-r.kick:
		}
		for {
			m := r.claimDirty()
			if m == nil {
				break
			}
			select {
			case sem <- struct{}{}:
			case <-r.stop:
				m.mu.Lock()
				m.running = false
				m.cond.Broadcast()
				m.mu.Unlock()
				return
			}
			r.wg.Add(1)
			go func(m *Managed) {
				defer r.wg.Done()
				defer func() { <-sem }()
				m.runRound()
				// The dataset may have gone dirty again mid-round
				// (cancelled or stale snapshot): let the loop reclaim it.
				r.kickAsync()
			}(m)
		}
	}
}

// compactor is the registry's background snapshot-and-trim loop. It
// runs the expensive work — encoding the published dataset and outcome,
// fsyncing the snapshot, deleting covered WAL segments — off the append
// and detection paths.
func (r *Registry) compactor() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stop:
			return
		case m := <-r.compactC:
			m.snapshot(false)
		}
	}
}

// snapshot persists the last published round and trims the WAL prefix
// it covers. Best effort: on any error the WAL still holds everything,
// so durability is never at risk — only recovery time. With final set
// (registry shutdown) it also runs for datasets already marked closed;
// a dataset deleted from disk just fails the write harmlessly.
func (m *Managed) snapshot(final bool) {
	m.mu.Lock()
	pub, st, closed, have := m.pub, m.st, m.closed, m.snapVersion
	m.mu.Unlock()
	if pub == nil || st == nil || (closed && !final) {
		return
	}
	if pub.Version == have && final {
		return // clean shutdown with the snapshot already current
	}
	// Encoding and fsync happen outside the dataset lock: everything a
	// Published points to is immutable.
	if err := st.writeSnapshot(pub); err != nil {
		return
	}
	m.mu.Lock()
	if m.closed && !final {
		m.mu.Unlock()
		return
	}
	if pub.Version > m.snapVersion {
		m.snapVersion = pub.Version
	}
	for len(m.pending) > 0 && m.pending[0].version <= pub.Version {
		m.pending = m.pending[1:]
	}
	trim := st.log.NextLSN()
	if len(m.pending) > 0 {
		trim = m.pending[0].lsn
	}
	if m.inflightLSN != 0 && m.inflightLSN < trim {
		// An append's WAL record is in flight but not yet registered in
		// pending: NextLSN may already count it, and trimming up to
		// NextLSN at an exact segment boundary would delete the segment
		// holding an acknowledged batch. Stop at the floor instead; the
		// next compaction trims the rest.
		trim = m.inflightLSN
	}
	m.mu.Unlock()
	_, _ = st.log.TrimBefore(trim)
	st.pruneSnapshots(2)
}

// claimDirty picks a dirty, idle dataset (smallest name first, for
// determinism) and marks it running.
func (r *Registry) claimDirty() *Managed {
	r.mu.Lock()
	names := make([]string, 0, len(r.sets))
	for name := range r.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	sets := make([]*Managed, 0, len(names))
	for _, name := range names {
		sets = append(sets, r.sets[name])
	}
	r.mu.Unlock()
	for _, m := range sets {
		m.mu.Lock()
		if m.dirty && !m.running && !m.closed {
			m.running = true
			m.mu.Unlock()
			return m
		}
		m.mu.Unlock()
	}
	return nil
}

// Append adds a batch of named observations (and optional gold-standard
// truths, with Record.Source empty) to the dataset and schedules a
// detection round. It returns the new append version and the total
// number of observation cells.
func (m *Managed) Append(obs, truth []dataset.Record) (version uint64, total int, err error) {
	version, total, _, err = m.AppendSeq(obs, truth, 0)
	return version, total, err
}

// testHookAfterWALAppend, when non-nil, runs between a successful WAL
// append and the registration of its pending entry — the window the
// inflightLSN floor protects. Test-only.
var testHookAfterWALAppend func(m *Managed)

// testHookRoundStart, when non-nil, runs at the start of every
// detection round, after the snapshot is taken and before detection
// begins (no locks held). Tests block here to let convergence lag grow
// deterministically past the admission high-water mark. Test-only.
var testHookRoundStart func(m *Managed)

// AppendSeq is Append with replay protection: seq, when non-zero,
// asserts this batch is append number seq of the dataset. A batch whose
// seq the dataset has already passed (version >= seq) is acknowledged
// without being applied — applied is false and version is the current
// version — so a replication layer may re-send a batch any number of
// times and it lands exactly once. A seq from the future (version <
// seq-1) fails with ErrSeqGap: earlier appends are missing and applying
// out of order would diverge from the primary. seq 0 is an ordinary
// unconditioned append.
func (m *Managed) AppendSeq(obs, truth []dataset.Record, seq uint64) (version uint64, total int, applied bool, err error) {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, 0, false, ErrNotFound
	}
	if seq > 0 {
		if m.version >= seq {
			// Duplicate delivery of an already-applied batch.
			version, total = m.version, m.builder.NumObservations()
			m.mu.Unlock()
			return version, total, false, nil
		}
		if m.version != seq-1 {
			cur := m.version
			m.mu.Unlock()
			return 0, 0, false, fmt.Errorf("%w: dataset %q is at version %d, batch claims sequence %d", ErrSeqGap, m.name, cur, seq)
		}
	}
	if seq == 0 && m.reg.highWater > 0 {
		// Admission control, for client writes only: sequenced appends
		// are replication traffic already admitted at the gateway, and
		// refusing them here would spuriously mark replicas stale.
		lag := m.version
		if m.pub != nil {
			lag -= m.pub.Version
		}
		if lag >= uint64(m.reg.highWater) {
			m.mu.Unlock()
			if in := m.reg.inst.Load(); in != nil {
				in.admissionRej.Inc()
			}
			return 0, 0, false, fmt.Errorf("%w: dataset %q has %d appends awaiting convergence (high-water %d)",
				ErrBacklog, m.name, lag, m.reg.highWater)
		}
	}
	var lsn uint64
	if st := m.st; st != nil {
		// Write-ahead: the batch must be on the log (fsync'd when the
		// registry is configured so) before any in-memory effect, and
		// before the client sees an acknowledgement. The disk write
		// happens outside m.mu — only appendMu is held — so readers
		// never wait on fsync latency; appendMu keeps WAL order equal
		// to version order. The inflight floor pins the compactor out
		// of the segment this record will land in until the pending
		// entry exists.
		next := m.version + 1
		m.inflightLSN = st.log.NextLSN()
		m.mu.Unlock()
		lsn, err = st.log.Append(encodeAppendRecord(next, obs, truth))
		if err == nil && testHookAfterWALAppend != nil {
			testHookAfterWALAppend(m)
		}
		m.mu.Lock()
		m.inflightLSN = 0
		if err != nil {
			m.mu.Unlock()
			return 0, 0, false, fmt.Errorf("server: dataset %q: append not durable: %w", m.name, err)
		}
		if m.closed {
			// Deleted or shut down while the record was being written;
			// the batch was never acknowledged, and the log is gone or
			// going with the dataset.
			m.mu.Unlock()
			return 0, 0, false, ErrNotFound
		}
		m.pending = append(m.pending, verLSN{version: next, lsn: lsn})
	}
	if m.convergedLocked() {
		m.lagSince = time.Now()
	}
	m.builder.AddRecords(obs)
	for _, tr := range truth {
		m.builder.SetTruth(tr.Item, tr.Value)
	}
	m.version++
	m.dirty = true
	if m.cancel != nil {
		// The in-flight round detects a snapshot this batch is not in;
		// abort it rather than publish a result we would discard.
		close(m.cancel)
		m.cancel = nil
	}
	version, total = m.version, m.builder.NumObservations()
	m.cond.Broadcast()
	m.mu.Unlock()
	m.reg.kickAsync()
	return version, total, true, nil
}

// Export serializes the dataset's full appended state — priors, worker
// count, append version, rounds counter and the dataset itself in the
// bit-exact binary codec — for anti-entropy transfer to a replica.
// Importing the blob elsewhere reproduces this dataset's Builder
// interning exactly, so appends streamed after the transfer keep both
// copies byte-identical.
func (m *Managed) Export() ([]byte, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	snap := m.builder.Build()
	version, rounds := m.version, m.rounds
	params, workers := m.params, m.opts.Workers
	m.mu.Unlock()
	return encodeExport(params, workers, version, rounds, snap)
}

// Import replaces the named dataset's appended state with an Export
// blob from its replication peer, creating the dataset (with the
// blob's configuration) if it does not exist. The import applies only
// when the blob is newer than the local state (blob version > local
// version) — a stale or duplicated transfer is acknowledged without
// effect — and returns the dataset's version afterwards. An applied
// import schedules a detection round, so the catch-up converges to the
// peer's published result.
func (r *Registry) Import(name string, blob []byte) (applied bool, version uint64, err error) {
	params, workers, impVersion, impRounds, ds, err := decodeExport(blob)
	if err != nil {
		return false, 0, err
	}
	m, ok := r.Get(name)
	if !ok {
		m, err = r.Create(name, DatasetConfig{Params: params, Workers: workers})
		if err != nil && !errors.Is(err, ErrExists) {
			return false, 0, err
		}
		if err != nil {
			// Lost a create race; the winner's dataset takes the import.
			if m, ok = r.Get(name); !ok {
				return false, 0, ErrNotFound
			}
		}
	}
	return m.importState(ds, impVersion, impRounds)
}

// importState installs an imported dataset snapshot. It shares the
// append path's locking discipline: appendMu orders it against appends,
// the WAL record precedes any in-memory effect, and the inflight floor
// protects the record until its pending entry exists.
func (m *Managed) importState(ds *dataset.Dataset, version uint64, rounds int) (bool, uint64, error) {
	m.appendMu.Lock()
	defer m.appendMu.Unlock()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false, 0, ErrNotFound
	}
	if m.version >= version {
		cur := m.version
		m.mu.Unlock()
		return false, cur, nil
	}
	if st := m.st; st != nil {
		m.inflightLSN = st.log.NextLSN()
		m.mu.Unlock()
		lsn, err := st.log.Append(encodeImportRecord(version, rounds, ds))
		m.mu.Lock()
		m.inflightLSN = 0
		if err != nil {
			m.mu.Unlock()
			return false, 0, fmt.Errorf("server: dataset %q: import not durable: %w", m.name, err)
		}
		if m.closed {
			m.mu.Unlock()
			return false, 0, ErrNotFound
		}
		m.pending = append(m.pending, verLSN{version: version, lsn: lsn})
	}
	if m.convergedLocked() {
		m.lagSince = time.Now()
	}
	m.builder = dataset.NewBuilderFromDataset(ds)
	m.version = version
	if rounds > m.rounds {
		m.rounds = rounds
	}
	m.dirty = true
	if m.cancel != nil {
		close(m.cancel)
		m.cancel = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	m.reg.kickAsync()
	return true, version, nil
}

// Published returns the last completed round, or nil before the first.
func (m *Managed) Published() *Published {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pub
}

// Converged reports whether the published result covers every append.
func (m *Managed) Converged() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.convergedLocked()
}

// ReadState returns the published round together with a convergence
// flag computed against that same round, plus its ETag — one consistent
// snapshot for the read endpoints, so a body can never pair one round's
// data with another round's convergence claim or tag.
func (m *Managed) ReadState() (pub *Published, converged bool, etag string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pub, m.convergedLocked(), m.etagLocked()
}

// Info returns a point-in-time summary.
func (m *Managed) Info() Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	inf := Info{
		Name:         m.name,
		Version:      m.version,
		Sources:      m.builder.NumSources(),
		Items:        m.builder.NumItems(),
		Observations: m.builder.NumObservations(),
		Converged:    m.convergedLocked(),
		Workers:      m.opts.Workers,
		Alpha:        m.params.Alpha,
		S:            m.params.S,
		N:            m.params.N,
	}
	if m.pub != nil {
		inf.ServedVersion = m.pub.Version
		inf.Round = m.pub.Round
		inf.Algorithm = m.pub.Algorithm
	}
	return inf
}

// etagLocked identifies the served result: it changes exactly when a
// new round is published. The creation generation keeps tags from a
// deleted dataset invalid against a recreated one of the same name.
func (m *Managed) etagLocked() string {
	v, round := uint64(0), 0
	if m.pub != nil {
		v, round = m.pub.Version, m.pub.Round
	}
	return fmt.Sprintf("%q", fmt.Sprintf("%s-g%d-v%d-r%d", m.name, m.gen, v, round))
}

func (m *Managed) convergedLocked() bool {
	if m.dirty || m.running {
		return false
	}
	if m.pub == nil {
		return m.version == 0 // empty dataset: trivially converged
	}
	return m.pub.Version == m.version
}

// shut marks the dataset closed and aborts its in-flight round.
func (m *Managed) shut() {
	m.mu.Lock()
	m.closed = true
	if m.cancel != nil {
		close(m.cancel)
		m.cancel = nil
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}

// runRound executes one detection round: snapshot the builder, run the
// full iterative process on it, and publish the outcome if the snapshot
// is still current. Stale or cancelled rounds re-mark the dataset dirty.
func (m *Managed) runRound() {
	m.mu.Lock()
	if m.closed || !m.dirty {
		m.running = false
		m.cond.Broadcast()
		m.mu.Unlock()
		return
	}
	version := m.version
	m.dirty = false
	cancel := make(chan struct{})
	m.cancel = cancel
	snap := m.builder.Build()
	// The rounds counter, not the published pointer, picks the
	// algorithm: a recovered dataset whose outcome was lost but whose
	// publish marker survived must keep refining with INCREMENTAL, the
	// same way the uninterrupted process would have.
	round := m.rounds + 1
	algo := "HYBRID"
	var det core.Detector = &core.Hybrid{Params: m.params, Opts: m.opts}
	if m.rounds > 0 {
		algo = "INCREMENTAL"
		det = &core.Incremental{Params: m.params, Opts: m.opts}
	}
	m.mu.Unlock()

	if testHookRoundStart != nil {
		testHookRoundStart(m)
	}

	// params and opts are immutable after Create; no lock needed here.
	tf := &fusion.TruthFinder{Params: m.params, Cancel: cancel}
	start := time.Now()
	out := tf.Run(snap, det)
	wall := time.Since(start)

	m.mu.Lock()
	if m.cancel == cancel {
		m.cancel = nil
	}
	m.running = false
	if out != nil && !m.closed && m.version == version {
		if m.st != nil {
			// Log the publish marker before any Quiesce waiter can
			// observe the round, so a post-quiesce crash never forgets
			// that a round completed. Failure here only weakens
			// durability of the round counter, never of appends.
			_, _ = m.st.log.Append(encodePublishRecord(round, version))
		}
		m.rounds = round
		m.pub = &Published{
			Version:   version,
			Round:     round,
			Algorithm: algo,
			Snapshot:  snap,
			Outcome:   out,
			Wall:      wall,
		}
		if in := m.reg.inst.Load(); in != nil {
			in.roundDuration.With(algo).Observe(wall.Seconds())
			in.roundsTotal.With(algo).Inc()
		}
		if m.st != nil {
			m.sinceSnap++
			if m.sinceSnap >= m.reg.snapEvery {
				m.sinceSnap = 0
				select {
				case m.reg.compactC <- m:
				default:
					// Compactor backlog: retry at the next publish.
					m.sinceSnap = m.reg.snapEvery
				}
			}
		}
	} else if !m.closed {
		// Cancelled or stale: the appends that invalidated this round
		// already set dirty, but a cancelled round with no version change
		// cannot happen, so this is belt and braces.
		m.dirty = true
	}
	m.cond.Broadcast()
	m.mu.Unlock()
}
