package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"

	"copydetect/internal/dataset"
)

// NewHandler exposes a registry over HTTP/JSON — the copydetectd wire
// protocol:
//
//	GET    /healthz                            liveness probe
//	GET    /v1/datasets                        list datasets
//	PUT    /v1/datasets/{name}                 create (optional config body)
//	GET    /v1/datasets/{name}                 dataset info
//	DELETE /v1/datasets/{name}                 delete
//	POST   /v1/datasets/{name}/observations    append a batch
//	GET    /v1/datasets/{name}/copies          cached copying pairs (ETag)
//	GET    /v1/datasets/{name}/truth           cached decided truths (ETag)
//	GET    /v1/datasets/{name}/stats           dataset + detection stats
//	POST   /v1/datasets/{name}/quiesce         block until converged
//	GET    /v1/datasets/{name}/export          binary state snapshot (anti-entropy)
//	POST   /v1/datasets/{name}/import          install a peer's export blob
//
// Reads serve the last published detection round and never block on
// detection; they carry an ETag that changes exactly when a new round is
// published, and honor If-None-Match with 304.
//
// An append may carry an X-Copydetect-Seq header naming its per-dataset
// sequence number (sequence n must be the dataset's nth append). A
// sequence the dataset has already passed is acknowledged without being
// re-applied — replication layers use this to make re-sent batches
// idempotent — and a sequence from the future fails with 409, because
// applying it would reorder the stream. export and import are the
// anti-entropy pair: export captures the full appended state (plus the
// rounds counter) in the bit-exact binary codec, and import installs it
// on a peer if and only if it is newer than what the peer holds.
func NewHandler(reg *Registry) http.Handler {
	return &handler{reg: reg}
}

type handler struct {
	reg *Registry
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error string `json:"error"`
}

// SeqHeader carries a per-dataset append sequence number (see
// Managed.AppendSeq); ReplicaHeader marks a gateway response that was
// served by a failover replica rather than the dataset's ring owner.
const (
	SeqHeader     = "X-Copydetect-Seq"
	ReplicaHeader = "X-Copydetect-Replica"
)

// maxImportBytes bounds one import blob (matches the WAL's own record
// ceiling, which the blob must fit inside to be durable).
const maxImportBytes = 1 << 28

// maxBodyBytes bounds one JSON request body, matching the gateway's
// maxWriteBody so a direct daemon append hits the same 413 a proxied
// one would. A var so tests can exercise the limit without a 256 MiB
// request.
var maxBodyBytes int64 = 1 << 28

// backlogRetryAfterSeconds is the Retry-After hint sent with 429
// admission rejections: long enough for a detection round to publish
// on small datasets, short enough that load generators keep pressure.
const backlogRetryAfterSeconds = 1

// createRequest optionally overrides registry defaults for one dataset.
// Omitted (zero) fields inherit.
type createRequest struct {
	Alpha   float64 `json:"alpha,omitempty"`
	S       float64 `json:"s,omitempty"`
	N       float64 `json:"n,omitempty"`
	Workers int     `json:"workers,omitempty"`
}

// appendRequest is a batch of observations, in the s/d/v field naming of
// the dataset JSON format, plus optional gold-standard truths.
type appendRequest struct {
	Observations []dataset.Record `json:"observations"`
	Truth        []dataset.Record `json:"truth,omitempty"`
}

type appendResponse struct {
	Dataset      string `json:"dataset"`
	Version      uint64 `json:"version"`
	Appended     int    `json:"appended"`
	Observations int    `json:"observations"`
	// Duplicate marks a sequenced append whose sequence number the
	// dataset had already passed: acknowledged, nothing re-applied.
	Duplicate bool `json:"duplicate,omitempty"`
}

type importResponse struct {
	Dataset string `json:"dataset"`
	Applied bool   `json:"applied"`
	Version uint64 `json:"version"`
}

type copyingPair struct {
	S1        string  `json:"s1"`
	S2        string  `json:"s2"`
	Direction string  `json:"direction"`
	PrIndep   float64 `json:"prIndep"`
	PrTo      float64 `json:"prTo"`
	PrFrom    float64 `json:"prFrom"`
}

type copiesResponse struct {
	Dataset   string        `json:"dataset"`
	Version   uint64        `json:"version"`
	Round     int           `json:"round"`
	Algorithm string        `json:"algorithm,omitempty"`
	Converged bool          `json:"converged"`
	Pairs     []copyingPair `json:"pairs"`
}

type truthResponse struct {
	Dataset   string            `json:"dataset"`
	Version   uint64            `json:"version"`
	Round     int               `json:"round"`
	Converged bool              `json:"converged"`
	Truth     map[string]string `json:"truth"`
}

type statsResponse struct {
	Info
	DetectRounds    int     `json:"detectRounds"`
	Computations    int64   `json:"computations"`
	PairsConsidered int64   `json:"pairsConsidered"`
	CopyingPairs    int     `json:"copyingPairs"`
	DetectMillis    float64 `json:"detectMillis"`
	FusionMillis    float64 `json:"fusionMillis"`
	WallMillis      float64 `json:"wallMillis"`
}

func (h *handler) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	switch {
	case path == "/healthz":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	case path == "/v1/datasets":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET; create with PUT /v1/datasets/{name}")
			return
		}
		h.list(w)
	case strings.HasPrefix(path, "/v1/datasets/"):
		h.dataset(w, req, strings.TrimPrefix(path, "/v1/datasets/"))
	default:
		writeErr(w, http.StatusNotFound, "unknown path")
	}
}

func (h *handler) dataset(w http.ResponseWriter, req *http.Request, rest string) {
	parts := strings.Split(rest, "/")
	name := parts[0]
	if name == "" || len(parts) > 2 {
		writeErr(w, http.StatusNotFound, "unknown path")
		return
	}
	if len(parts) == 1 {
		switch req.Method {
		case http.MethodPut:
			h.create(w, req, name)
		case http.MethodGet:
			h.info(w, name)
		case http.MethodDelete:
			h.delete(w, name)
		default:
			writeErr(w, http.StatusMethodNotAllowed, "use PUT, GET or DELETE")
		}
		return
	}
	switch parts[1] {
	case "observations":
		if req.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		h.append(w, req, name)
	case "copies":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h.copies(w, req, name)
	case "truth":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h.truth(w, req, name)
	case "stats":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h.stats(w, name)
	case "quiesce":
		if req.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		h.quiesce(w, req, name)
	case "export":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		h.export(w, name)
	case "import":
		if req.Method != http.MethodPost {
			writeErr(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		h.importState(w, req, name)
	default:
		writeErr(w, http.StatusNotFound, "unknown path")
	}
}

func (h *handler) list(w http.ResponseWriter) {
	names := h.reg.List()
	infos := make([]Info, 0, len(names))
	for _, name := range names {
		if m, ok := h.reg.Get(name); ok {
			infos = append(infos, m.Info())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

func (h *handler) create(w http.ResponseWriter, req *http.Request, name string) {
	var cr createRequest
	if err := decodeBody(w, req, &cr); err != nil {
		writeDecodeErr(w, err)
		return
	}
	cfg := DatasetConfig{Workers: cr.Workers}
	if cr.Alpha != 0 || cr.S != 0 || cr.N != 0 {
		cfg.Params = h.reg.params
		if cr.Alpha != 0 {
			cfg.Params.Alpha = cr.Alpha
		}
		if cr.S != 0 {
			cfg.Params.S = cr.S
		}
		if cr.N != 0 {
			cfg.Params.N = cr.N
		}
	}
	m, err := h.reg.Create(name, cfg)
	switch {
	case errors.Is(err, ErrExists):
		writeErr(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, m.Info())
}

func (h *handler) info(w http.ResponseWriter, name string) {
	m, ok := h.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, m.Info())
}

func (h *handler) delete(w http.ResponseWriter, name string) {
	if !h.reg.Delete(name) {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

func (h *handler) append(w http.ResponseWriter, req *http.Request, name string) {
	m, ok := h.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	var ar appendRequest
	if err := decodeBody(w, req, &ar); err != nil {
		writeDecodeErr(w, err)
		return
	}
	if len(ar.Observations) == 0 && len(ar.Truth) == 0 {
		writeErr(w, http.StatusBadRequest, "empty batch: provide observations and/or truth")
		return
	}
	for i, o := range ar.Observations {
		if o.Source == "" || o.Item == "" || o.Value == "" {
			writeErr(w, http.StatusBadRequest,
				"observation "+strconv.Itoa(i)+": s, d and v must all be non-empty")
			return
		}
	}
	for i, tr := range ar.Truth {
		if tr.Item == "" || tr.Value == "" {
			writeErr(w, http.StatusBadRequest,
				"truth "+strconv.Itoa(i)+": d and v must be non-empty")
			return
		}
	}
	var seq uint64
	if raw := req.Header.Get(SeqHeader); raw != "" {
		parsed, perr := strconv.ParseUint(raw, 10, 64)
		if perr != nil || parsed == 0 {
			writeErr(w, http.StatusBadRequest, SeqHeader+" must be a positive integer")
			return
		}
		seq = parsed
	}
	version, total, applied, err := m.AppendSeq(ar.Observations, ar.Truth, seq)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
		return
	case errors.Is(err, ErrSeqGap):
		// The batch is from the future: this replica is missing earlier
		// appends and needs an anti-entropy import before it can accept
		// the stream again.
		writeErr(w, http.StatusConflict, err.Error())
		return
	case errors.Is(err, ErrBacklog):
		// Admission control: convergence lag reached the high-water
		// mark. Nothing was applied; the client should back off.
		w.Header().Set("Retry-After", strconv.Itoa(backlogRetryAfterSeconds))
		writeErr(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		// A durable registry refused the batch because it could not be
		// logged; nothing was applied, so the client may retry.
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	appended := len(ar.Observations)
	if !applied {
		appended = 0
	}
	writeJSON(w, http.StatusAccepted, appendResponse{
		Dataset:      name,
		Version:      version,
		Appended:     appended,
		Observations: total,
		Duplicate:    !applied,
	})
}

// export streams the dataset's full appended state in the binary
// anti-entropy format.
func (h *handler) export(w http.ResponseWriter, name string) {
	m, ok := h.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	blob, err := m.Export()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			code = http.StatusNotFound
		}
		writeErr(w, code, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// importState installs an export blob from a replication peer.
func (h *handler) importState(w http.ResponseWriter, req *http.Request, name string) {
	blob, err := io.ReadAll(io.LimitReader(req.Body, maxImportBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(blob) > maxImportBytes {
		writeErr(w, http.StatusRequestEntityTooLarge, "import blob exceeds the size limit")
		return
	}
	applied, version, err := h.reg.Import(name, blob)
	switch {
	case errors.Is(err, ErrNotFound):
		writeErr(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, importResponse{Dataset: name, Applied: applied, Version: version})
}

// serveCached handles the shared ETag negotiation of the read endpoints
// and returns one consistent snapshot: the published round to render
// (nil before the first) and its convergence flag.
func (h *handler) serveCached(w http.ResponseWriter, req *http.Request, name string) (pub *Published, converged, ok bool) {
	m, found := h.reg.Get(name)
	if !found {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return nil, false, false
	}
	pub, converged, etag := m.ReadState()
	w.Header().Set("ETag", etag)
	if match := req.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return nil, false, false
	}
	return pub, converged, true
}

func (h *handler) copies(w http.ResponseWriter, req *http.Request, name string) {
	pub, converged, ok := h.serveCached(w, req, name)
	if !ok {
		return
	}
	resp := copiesResponse{Dataset: name, Converged: converged, Pairs: []copyingPair{}}
	if pub != nil {
		resp.Version, resp.Round, resp.Algorithm = pub.Version, pub.Round, pub.Algorithm
		for _, pr := range pub.Outcome.Copy.CopyingPairs() {
			resp.Pairs = append(resp.Pairs, copyingPair{
				S1:        pub.Snapshot.SourceNames[pr.S1],
				S2:        pub.Snapshot.SourceNames[pr.S2],
				Direction: pr.Direction(pub.Snapshot.SourceNames),
				PrIndep:   pr.PrIndep, PrTo: pr.PrTo, PrFrom: pr.PrFrom,
			})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) truth(w http.ResponseWriter, req *http.Request, name string) {
	pub, converged, ok := h.serveCached(w, req, name)
	if !ok {
		return
	}
	resp := truthResponse{Dataset: name, Converged: converged, Truth: map[string]string{}}
	if pub != nil {
		resp.Version, resp.Round = pub.Version, pub.Round
		for d, v := range pub.Outcome.Truth {
			if v != dataset.NoValue {
				resp.Truth[pub.Snapshot.ItemNames[d]] = pub.Snapshot.ValueNames[d][v]
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) stats(w http.ResponseWriter, name string) {
	m, ok := h.reg.Get(name)
	if !ok {
		writeErr(w, http.StatusNotFound, ErrNotFound.Error())
		return
	}
	resp := statsResponse{Info: m.Info()}
	if pub := m.Published(); pub != nil {
		out := pub.Outcome
		resp.DetectRounds = out.Rounds
		resp.Computations = out.TotalStats.Computations
		resp.PairsConsidered = out.TotalStats.PairsConsidered
		resp.CopyingPairs = len(out.Copy.CopyingPairs())
		resp.DetectMillis = out.TotalStats.Total().Seconds() * 1e3
		resp.FusionMillis = out.FusionTime.Seconds() * 1e3
		resp.WallMillis = pub.Wall.Seconds() * 1e3
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) quiesce(w http.ResponseWriter, req *http.Request, name string) {
	if _, err := h.reg.Quiesce(req.Context(), name); err != nil {
		code := http.StatusNotFound
		if req.Context().Err() != nil {
			code = http.StatusRequestTimeout
		}
		writeErr(w, code, err.Error())
		return
	}
	h.stats(w, name)
}

// decodeBody decodes a JSON request body capped at maxBodyBytes; the
// cap matters because append bodies are buffered into the dataset
// builder and the WAL, so an unbounded body is an unbounded
// allocation.
func decodeBody(w http.ResponseWriter, req *http.Request, v any) error {
	err := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes)).Decode(v)
	if err == nil || errors.Is(err, io.EOF) {
		return nil // an empty body means all defaults
	}
	return err
}

// writeDecodeErr maps a decodeBody failure: an over-limit body is 413
// (matching the gateway's maxWriteBody behaviour), anything else is a
// malformed request.
func writeDecodeErr(w http.ResponseWriter, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErr(w, http.StatusRequestEntityTooLarge, "request body exceeds the size limit")
		return
	}
	writeErr(w, http.StatusBadRequest, err.Error())
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire; an encode failure here is
	// a dropped client connection, which has no remaining recourse.
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
