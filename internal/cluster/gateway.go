package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"copydetect/internal/server"
)

// Config tunes a Gateway. Only Backends is required.
type Config struct {
	// Backends are the copydetectd base URLs (e.g. "http://10.0.0.1:8377").
	// Order matters: the ring is built over this exact list, so every
	// gateway configured with the same list routes identically.
	Backends []string
	// Replicas is the number of virtual nodes per backend on the ring
	// (<= 0 selects DefaultReplicas). All gateways over one cluster must
	// agree on it.
	Replicas int
	// Replication is how many backends hold each dataset (the replica
	// set size R). <= 1 (the zero value) keeps each dataset on its ring
	// owner alone; 2 survives the loss of any single backend: writes
	// are acknowledged by the acting primary and mirrored to the other
	// members, reads fail over, and a recovered backend is caught up by
	// anti-entropy before it serves again. Clamped to the backend count.
	Replication int

	// ProbeEvery is the health-check period (default 1s); ProbeTimeout
	// bounds one probe (default half of ProbeEvery, capped at 2s).
	ProbeEvery   time.Duration
	ProbeTimeout time.Duration
	// EjectAfter ejects a backend after that many consecutive failures
	// (default 2); ReadmitAfter readmits it after that many consecutive
	// probe successes (default 2).
	EjectAfter   int
	ReadmitAfter int

	// Retries is how many times an idempotent (GET) request is retried
	// against its owner after a transport failure. 0 selects the default
	// of 2, negative disables retries; writes are never retried — an
	// append is not idempotent at the version level.
	Retries int

	// MirrorHighWater is the admission-control bound on a dataset's
	// mirror queue: an append arriving while the dataset already has at
	// least this many mirror jobs queued (or in delivery) is refused
	// with 429 + Retry-After instead of growing the backlog. 0 selects
	// DefaultMirrorHighWater, negative disables admission control. It
	// only matters with Replication >= 2 — without mirroring the queue
	// is always empty.
	MirrorHighWater int

	// Transport overrides the outbound round tripper (tests inject
	// failures here). nil uses http.DefaultTransport.
	Transport http.RoundTripper
}

// DefaultMirrorHighWater is the default Config.MirrorHighWater: below
// the per-dataset job channel's capacity, so admission control always
// refuses before an enqueue could block the write path.
const DefaultMirrorHighWater = 192

// Gateway routes the copydetectd wire protocol across a fixed set of
// backends: dataset-scoped requests go to the ring owner of the dataset
// name and are proxied byte-for-byte (headers included, so ETag /
// If-None-Match revalidation works unchanged through the gateway);
// GET /v1/datasets fans out to every backend and merges; GET /healthz
// reports the gateway's view of backend health.
type Gateway struct {
	ring         *Ring
	backends     []*backend
	client       *http.Client
	probeEvery   time.Duration
	probeTimeout time.Duration
	listTimeout  time.Duration
	ejectAfter   int
	readmitAfter int
	retries      int
	replication  int
	mirrorHW     int // mirror-queue admission bound; 0 disables

	// Operational counters, exposed by RegisterMetrics. Plain atomics
	// so the hot paths pay one add whether or not telemetry is wired.
	readRetries      atomic.Int64 // read re-attempts after transport failures
	writeFailovers   atomic.Int64 // writes moved off the acting member
	admissionRejects atomic.Int64 // appends refused with 429

	dsMu sync.Mutex
	ds   map[string]*dsState
	// staleTotal counts stale (dataset, member) pairs gateway-wide, so
	// the per-probe reconcile re-arm can skip scanning the dataset map
	// in the steady state where nothing is stale.
	staleTotal atomic.Int64

	stop     chan struct{}
	wg       sync.WaitGroup
	closedMu sync.Mutex
	closed   bool
}

// New builds the gateway and starts its health probes. Close releases
// them.
func New(cfg Config) (*Gateway, error) {
	urls := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		urls[i] = strings.TrimRight(b, "/")
	}
	ring, err := NewRing(urls, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	g := &Gateway{
		ring:         ring,
		probeEvery:   cfg.ProbeEvery,
		probeTimeout: cfg.ProbeTimeout,
		ejectAfter:   cfg.EjectAfter,
		readmitAfter: cfg.ReadmitAfter,
		retries:      cfg.Retries,
		replication:  cfg.Replication,
		ds:           make(map[string]*dsState),
		stop:         make(chan struct{}),
	}
	if g.replication < 1 {
		g.replication = 1
	}
	if g.replication > ring.NumBackends() {
		g.replication = ring.NumBackends()
	}
	if g.probeEvery <= 0 {
		g.probeEvery = time.Second
	}
	if g.probeTimeout <= 0 {
		g.probeTimeout = g.probeEvery / 2
		if g.probeTimeout > 2*time.Second {
			g.probeTimeout = 2 * time.Second
		}
	}
	// The list fan-out is a cheap read and must not hang on a stalled
	// (SIGSTOP'd, blackholed) backend the way a legitimately blocking
	// quiesce proxy may: bound it generously relative to the probe
	// budget. Only the proxy path stays unbounded.
	g.listTimeout = 10 * g.probeTimeout
	if g.listTimeout < time.Second {
		g.listTimeout = time.Second
	}
	if g.listTimeout > 30*time.Second {
		g.listTimeout = 30 * time.Second
	}
	if g.ejectAfter <= 0 {
		g.ejectAfter = 2
	}
	if g.readmitAfter <= 0 {
		g.readmitAfter = 2
	}
	if g.retries < 0 {
		g.retries = 0
	} else if g.retries == 0 {
		g.retries = 2
	}
	switch {
	case cfg.MirrorHighWater < 0:
		g.mirrorHW = 0
	case cfg.MirrorHighWater == 0:
		g.mirrorHW = DefaultMirrorHighWater
	default:
		g.mirrorHW = cfg.MirrorHighWater
	}
	// No client timeout: quiesce blocks for as long as convergence
	// takes, and the incoming request's context already propagates
	// client disconnects. Probes use their own deadline.
	g.client = &http.Client{Transport: cfg.Transport}
	g.backends = make([]*backend, ring.NumBackends())
	for i := range g.backends {
		g.backends[i] = newBackend(ring.Backend(i), i)
		g.wg.Add(1)
		go g.monitor(g.backends[i])
	}
	if g.replication > 1 {
		// Startup audit: the staleness map is in-memory, so a fresh
		// gateway process inherits no memory of which members a
		// previous one knew to be behind. Rediscover it from the
		// backends' own version counters before trusting primaries.
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.audit()
		}()
	}
	return g, nil
}

// Close stops the health probes. In-flight proxied requests are not
// interrupted; the caller shuts the HTTP server down around this.
func (g *Gateway) Close() {
	g.closedMu.Lock()
	defer g.closedMu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	close(g.stop)
	g.wg.Wait()
}

// Ring exposes the routing table, for tests and tooling that need to
// predict placements.
func (g *Gateway) Ring() *Ring { return g.ring }

// Status returns the health of every backend, in ring (configuration)
// order.
func (g *Gateway) Status() []BackendStatus {
	stale := g.staleCounts()
	out := make([]BackendStatus, len(g.backends))
	for i, b := range g.backends {
		out[i] = b.status()
		out[i].StaleDatasets = stale[i]
	}
	return out
}

// healthzResponse is the gateway's own /healthz body. Status is "ok"
// with every backend healthy, "degraded" otherwise — the gateway itself
// keeps serving either way.
type healthzResponse struct {
	Status   string          `json:"status"`
	Backends []BackendStatus `json:"backends"`
}

// listResponse mirrors the daemon's list body; Partial marks a merge
// that could not reach every backend (only then is it present, so a
// fully healthy cluster lists byte-identically to a single daemon).
type listResponse struct {
	Datasets []server.Info `json:"datasets"`
	Partial  bool          `json:"partial,omitempty"`
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	path := req.URL.Path
	switch {
	case path == "/healthz":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		g.healthz(w)
	case path == "/v1/datasets":
		if req.Method != http.MethodGet {
			writeErr(w, http.StatusMethodNotAllowed, "use GET; create with PUT /v1/datasets/{name}")
			return
		}
		g.list(w, req)
	case strings.HasPrefix(path, "/v1/datasets/"):
		name := strings.TrimPrefix(path, "/v1/datasets/")
		if i := strings.IndexByte(name, '/'); i >= 0 {
			name = name[:i]
		}
		if name == "" {
			writeErr(w, http.StatusNotFound, "unknown path")
			return
		}
		g.proxy(w, req, name)
	default:
		writeErr(w, http.StatusNotFound, "unknown path")
	}
}

func (g *Gateway) healthz(w http.ResponseWriter) {
	resp := healthzResponse{Status: "ok", Backends: g.Status()}
	for _, b := range resp.Backends {
		if !b.Healthy {
			resp.Status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// proxy forwards a dataset-scoped request across the dataset's replica
// set. Reads (GET/HEAD, and quiesce, which has no effect to duplicate)
// are served by the acting primary — the first serveable member — with
// transparent failover to the next member on transport failure, marked
// with the X-Copydetect-Replica header when a non-primary answered.
// Writes are buffered, acknowledged by the acting primary and mirrored
// to the other members asynchronously (replication.go). Only when no
// member of the replica set can serve does the gateway answer 503.
func (g *Gateway) proxy(w http.ResponseWriter, req *http.Request, name string) {
	isRead := req.Method == http.MethodGet || req.Method == http.MethodHead ||
		(req.Method == http.MethodPost && strings.HasSuffix(req.URL.Path, "/quiesce"))
	if isRead {
		g.serveRead(w, req, name)
		return
	}
	g.serveWrite(w, req, name)
}

// serveRead proxies an idempotent request with bounded retries that
// walk the replica set: a transport failure on one member moves on to
// the next instead of failing the client. Request bodies are dropped
// rather than buffered (the daemon never reads them on these
// endpoints), so a retried request never re-reads a consumed body.
func (g *Gateway) serveRead(w http.ResponseWriter, req *http.Request, name string) {
	members := g.ring.ReplicaSet(name, g.replication)
	ds := g.lookupDS(name)
	if ds != nil && strings.HasSuffix(req.URL.Path, "/quiesce") {
		// A quiesce answers for the whole dataset: drain the mirrored
		// appends first, so a quiesce served by a failover replica
		// covers everything the cluster has acknowledged. A drain that
		// does not finish must fail the quiesce — answering "converged"
		// over a stream with mirrors still in flight would be a lie.
		if !g.flush(ds, true) {
			writeErr(w, http.StatusServiceUnavailable,
				fmt.Sprintf("cluster: dataset %q is unavailable: replica mirror queue did not drain", name))
			return
		}
	}
	attempts := 1 + g.retries
	if attempts < len(members) {
		// -retries bounds re-attempts against a flaky transport; it
		// must not disable replica failover. Every member of the set
		// gets at least one shot.
		attempts = len(members)
	}
	reported := make([]bool, len(members))
	var lastErr error
	pos := -1
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 && req.Context().Err() != nil {
			break // client gone; stop burning attempts
		}
		next := -1
		for i := 0; i < len(members); i++ {
			cand := (pos + 1 + i) % len(members)
			if g.serveable(ds, members, cand) {
				next = cand
				break
			}
		}
		if next == -1 {
			break
		}
		pos = next
		b := g.backends[members[pos]]
		out, err := newTracedRequest(req.Context(), req.Method,
			b.url+req.URL.RequestURI(), nil, req, "")
		if err != nil {
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("cluster: %v", err))
			return
		}
		resp, err := g.client.Do(out)
		if err != nil {
			lastErr = err
			g.readRetries.Add(1)
			// One logical request counts at most one failure against a
			// backend, however many retry attempts it burned — otherwise
			// a single retried GET could run through the whole ejection
			// budget and defeat the hysteresis. And a transport failure
			// indicts the backend only if the *client* didn't hang up
			// first: impatient clients must never eject a healthy one.
			if !reported[pos] && req.Context().Err() == nil {
				reported[pos] = true
				b.reportFailure(g.ejectAfter, err)
			}
			continue
		}
		b.reportSuccess(g.readmitAfter, false)
		if pos != 0 {
			w.Header().Set(server.ReplicaHeader, "true")
		}
		relay(w, resp)
		return
	}
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: dataset %q is unavailable: no member of its replica set can serve (last error: %v)", name, lastErr))
}

// serveWrite buffers the request body (it must be re-sendable to every
// member of the replica set), sends the write to the acting primary,
// relays its response, and mirrors an acknowledged write to the other
// members. On a transport failure the write fails over to the next
// member — never back to the same backend, whose partially streamed
// request may or may not have been applied: re-sending there could
// apply the batch twice, while the next member dedupes by sequence
// number even if the failed member turns out to have applied it
// (anti-entropy overwrites the failed member from its peer before it
// serves again). With replication 1 nothing is ever mirrored or
// re-sent, so the body streams straight through, unbuffered, exactly
// as before replication existed.
func (g *Gateway) serveWrite(w http.ResponseWriter, req *http.Request, name string) {
	members := g.ring.ReplicaSet(name, g.replication)
	if g.replication < 2 {
		g.writeSingle(w, req, name, members[0])
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, maxWriteBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("cluster: reading request body: %v", err))
		return
	}
	if len(body) > maxWriteBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "cluster: write body exceeds the size limit")
		return
	}
	ds := g.datasetState(name)
	ds.mu.Lock()
	for ds.retired {
		// The idle worker retired this state between our map lookup
		// and the lock; fetch the fresh entry.
		ds.mu.Unlock()
		ds = g.datasetState(name)
		ds.mu.Lock()
	}
	defer ds.mu.Unlock()
	if g.mirrorHW > 0 && strings.HasSuffix(req.URL.Path, "/observations") &&
		atomic.LoadInt64(&ds.queuedJobs) >= int64(g.mirrorHW) {
		// Admission control: the dataset's replicas are not keeping up
		// with its mirror stream. Refuse the append before the acting
		// member applies it — queueing further would either block this
		// write on a full channel or grow the backlog without bound.
		g.admissionRejects.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, fmt.Sprintf(
			"cluster: dataset %q replica mirror queue is over the high-water mark (%d jobs queued)",
			name, g.mirrorHW))
		return
	}
	var lastErr error
	failedOver := false
	for pos := range members {
		if !g.serveable(ds, members, pos) {
			continue
		}
		if req.Context().Err() != nil {
			break
		}
		if failedOver || (ds.lastActing >= 0 && ds.lastActing != pos) {
			// The acting member changed — failover within this request,
			// or the primary coming back after a failover. The mirror
			// queue may still hold sequenced writes for the new acting
			// member; they must land before a direct (unsequenced) write
			// can be sent there, or the direct write would take their
			// sequence number and fork the members' histories.
			if !g.flush(ds, false) {
				break
			}
		}
		// A gateway-side ceiling on the attempt: ds.mu serializes this
		// dataset's writes, so a backend that accepts the connection but
		// never answers must not wedge the dataset forever. A timeout is
		// NOT failed over (the write's fate on a merely-slow member is
		// unknown, and unlike a dead one it may still apply the batch);
		// it answers 503, the same contract an unreplicated write always
		// had for an unresponsive owner.
		ctx, cancel := context.WithTimeout(req.Context(), writeTimeout)
		b := g.backends[members[pos]]
		out, err := newTracedRequest(ctx, req.Method,
			b.url+req.URL.RequestURI(), bytes.NewReader(body), req, "")
		if err != nil {
			cancel()
			writeErr(w, http.StatusInternalServerError, fmt.Sprintf("cluster: %v", err))
			return
		}
		out.ContentLength = int64(len(body))
		resp, err := g.client.Do(out)
		if err != nil {
			// DeadlineExceeded is sticky on the context, so it still
			// distinguishes our write ceiling from an ordinary transport
			// failure after the cancel below releases the timer.
			timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
			cancel()
			lastErr = err
			if req.Context().Err() != nil {
				break // the client hung up; stop entirely
			}
			b.reportFailure(g.ejectAfter, err)
			if timedOut {
				break // gateway timeout: slow, not dead — no failover
			}
			failedOver = true
			g.writeFailovers.Add(1)
			continue
		}
		b.reportSuccess(g.readmitAfter, false)
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		timedOut := errors.Is(ctx.Err(), context.DeadlineExceeded)
		cancel()
		if rerr != nil {
			// The member died mid-response: the write's fate there is
			// unknown, exactly like a transport failure before headers.
			lastErr = rerr
			if req.Context().Err() != nil {
				break
			}
			b.reportFailure(g.ejectAfter, rerr)
			if timedOut {
				break
			}
			failedOver = true
			g.writeFailovers.Add(1)
			continue
		}
		ds.lastActing = pos
		g.afterWrite(ds, req, pos, resp.StatusCode, raw, body)
		if pos != 0 {
			w.Header().Set(server.ReplicaHeader, "true")
		}
		relayBytes(w, resp, raw)
		return
	}
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Sprintf("cluster: dataset %q is unavailable: no member of its replica set can accept the write (last error: %v)", name, lastErr))
}

// writeSingle is the unreplicated write path: one streamed attempt
// against the single member, byte-for-byte, no buffering, no retry —
// the original gateway behavior.
func (g *Gateway) writeSingle(w http.ResponseWriter, req *http.Request, name string, member int) {
	b := g.backends[member]
	if !b.isHealthy() {
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("cluster: backend %s (owner of dataset %q) is unavailable", b.url, name))
		return
	}
	out, err := newTracedRequest(req.Context(), req.Method,
		b.url+req.URL.RequestURI(), req.Body, req, "")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Sprintf("cluster: %v", err))
		return
	}
	// Streamed pass-through: preserve the client's Content-Length
	// instead of degrading to chunked encoding.
	out.ContentLength = req.ContentLength
	resp, err := g.client.Do(out)
	if err != nil {
		if req.Context().Err() == nil {
			b.reportFailure(g.ejectAfter, err)
		}
		writeErr(w, http.StatusServiceUnavailable,
			fmt.Sprintf("cluster: backend %s (owner of dataset %q) is unavailable: %v", b.url, name, err))
		return
	}
	b.reportSuccess(g.readmitAfter, false)
	relay(w, resp)
}

// doBounded performs req with its own timeout, independent of any
// client context — used by replication jobs, which belong to the
// gateway, not to a client request.
func (g *Gateway) doBounded(req *http.Request, timeout time.Duration) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	resp, err := g.client.Do(req.WithContext(ctx))
	if err != nil {
		cancel()
		return nil, err
	}
	resp.Body = &cancelReadCloser{rc: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelReadCloser releases a request's timeout context when its body
// is closed.
type cancelReadCloser struct {
	rc     io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelReadCloser) Read(p []byte) (int, error) { return c.rc.Read(p) }
func (c *cancelReadCloser) Close() error {
	err := c.rc.Close()
	c.cancel()
	return err
}

// list fans GET /v1/datasets out to every backend concurrently and
// merges the results, sorted by dataset name — the same order a single
// daemon would produce. Backends that are ejected or unreachable are
// skipped and the response is marked partial.
func (g *Gateway) list(w http.ResponseWriter, req *http.Request) {
	type result struct {
		infos []server.Info
		ok    bool
	}
	ctx, cancel := context.WithTimeout(req.Context(), g.listTimeout)
	defer cancel()
	results := make([]result, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		if !b.isHealthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			// Trace only, not the full client header set: a conditional
			// header (If-None-Match) aimed at the merged list must not
			// leak into the per-backend fetches.
			out, err := newTracedRequest(ctx, http.MethodGet, b.url+"/v1/datasets", nil, nil, traceOf(req))
			if err != nil {
				return
			}
			resp, err := g.client.Do(out)
			if err != nil {
				// As in proxy: a fan-out aborted by the client's own
				// cancellation says nothing about backend health (and
				// would tick a failure on every backend at once).
				if req.Context().Err() == nil {
					b.reportFailure(g.ejectAfter, err)
				}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				_, _ = io.Copy(io.Discard, resp.Body)
				return
			}
			b.reportSuccess(g.readmitAfter, false)
			var body listResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				return
			}
			results[i] = result{infos: body.Datasets, ok: true}
		}(i, b)
	}
	wg.Wait()
	merged := listResponse{Datasets: []server.Info{}}
	// With replication every dataset lives on R backends, so the merge
	// dedupes by name, keeping the info reported by the highest-priority
	// member of the name's replica set that answered — the acting
	// primary's numbers when it is up, a replica's during failover.
	rank := make(map[string]int)
	byName := make(map[string]server.Info)
	for i, r := range results {
		if !r.ok {
			merged.Partial = true
			continue
		}
		for _, inf := range r.infos {
			pos := len(g.backends)
			for p, m := range g.ring.ReplicaSet(inf.Name, g.replication) {
				if m == i {
					pos = p
					break
				}
			}
			if prev, seen := rank[inf.Name]; !seen || pos < prev {
				rank[inf.Name] = pos
				byName[inf.Name] = inf
			}
		}
	}
	for _, inf := range byName {
		merged.Datasets = append(merged.Datasets, inf)
	}
	sort.Slice(merged.Datasets, func(a, b int) bool {
		return merged.Datasets[a].Name < merged.Datasets[b].Name
	})
	writeJSON(w, http.StatusOK, merged)
}

// relay copies a backend response to the client verbatim: status,
// headers (ETag included) and body bytes.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// relayBytes relays a response whose body the gateway already consumed
// (the write path reads it to learn the acknowledged version).
func relayBytes(w http.ResponseWriter, resp *http.Response, body []byte) {
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// hopByHop are the connection-scoped headers a proxy must not forward
// (RFC 9110 §7.6.1).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	for _, k := range hopByHop {
		dst.Del(k)
	}
}

// writeJSON/writeErr mirror the daemon's response formatting exactly,
// so gateway-originated errors are indistinguishable in shape from
// backend-originated ones.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorResponse matches internal/server's error body shape.
type errorResponse struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Error: msg})
}
