package bayes

import "math"

// This file implements the two model extensions the paper's footnotes
// defer to:
//
// Footnote 2 — the uniform-false-value assumption "can be relaxed to take
// value distributions into account [Dong et al. VLDB 2009]": the *Dist
// variants below accept a per-value popularity pop = Pr(a wrong source
// provides exactly this value), replacing the uniform 1/n. Sharing a
// popular wrong value (a common formatting variant, a stale feed) is much
// weaker copying evidence than sharing an obscure one.
//
// Footnote 1 — "advanced techniques also consider coverage ... of data
// items [Dong et al. VLDB 2010]": CoverageLLR scores how surprising the
// observed item overlap of two sources is. A copier draws its items
// mostly from the copied source, so overlap far above the independence
// expectation is evidence for copying, and overlap at the independence
// expectation is (mild) evidence against.

// PrIndepSameDist is Eq. (3) with a value-specific false popularity pop
// in place of the uniform 1/n. pop <= 0 selects the uniform model.
func (p Params) PrIndepSameDist(pv, pop, a1, a2 float64) float64 {
	if pop <= 0 {
		pop = 1 / p.N
	}
	return pv*a1*a2 + (1-pv)*(1-a1)*(1-a2)*pop
}

// ContribSameDist is Eq. (6) under the value-distribution relaxation.
func (p Params) ContribSameDist(pv, pop, a1, a2 float64) float64 {
	ind := p.PrIndepSameDist(pv, pop, a1, a2)
	if ind <= 0 {
		return math.Inf(1)
	}
	return math.Log(1 - p.S + p.S*p.PrProvides(pv, a2)/ind)
}

// MaxEntryScoreDist is MaxEntryScore under the value-distribution
// relaxation. The contribution stays a ratio of functions affine in each
// accuracy, so the coordinate-wise-extremes argument still applies.
func (p Params) MaxEntryScoreDist(pv, pop float64, accs []float64) float64 {
	if pop <= 0 {
		return p.MaxEntryScore(pv, accs)
	}
	if len(accs) < 2 {
		return 0
	}
	i1, i2, j1, j2 := -1, -1, -1, -1
	for i, a := range accs {
		if i1 == -1 || a < accs[i1] {
			i2 = i1
			i1 = i
		} else if i2 == -1 || a < accs[i2] {
			i2 = i
		}
		if j1 == -1 || a > accs[j1] {
			j2 = j1
			j1 = i
		} else if j2 == -1 || a > accs[j2] {
			j2 = i
		}
	}
	// Same argmax-on-the-ratio trick as MaxEntryScore: one logarithm per
	// entry instead of one per candidate pair.
	cand := [4]int{i1, i2, j1, j2}
	bestU := math.Inf(-1)
	for _, s1 := range cand {
		for _, s2 := range cand {
			if s1 == s2 {
				continue
			}
			ind := p.PrIndepSameDist(pv, pop, accs[s1], accs[s2])
			if ind <= 0 {
				return math.Inf(1)
			}
			if u := p.PrProvides(pv, accs[s2]) / ind; u > bestU {
				bestU = u
			}
		}
	}
	return math.Log(1 - p.S + p.S*bestU)
}

// DefaultCoverageCap bounds the coverage log-likelihood ratio so item-
// selection evidence augments rather than overwhelms the per-value
// evidence. With the default α = 0.1, θcp ≈ 2.08, so a full-weight capped
// coverage score stays just below what could conclude copying on its own.
const DefaultCoverageCap = 2.0

// CoverageLLR returns the log-likelihood ratio of the observed item
// overlap l between two sources with coverages cov1 and cov2 over
// numItems items, under copying versus independence, clamped to ±cap
// (cap <= 0 selects DefaultCoverageCap).
//
// Model: let covS = min(cov1, cov2) and q = max(cov1, cov2)/numItems.
// Under independence each of the smaller source's items falls into the
// larger source's coverage with probability q, so l ~ Binomial(covS, q);
// under copying the copier picks a covered item with probability at least
// q + s·(1−q) (it copies a fraction s of its items from the other
// source). The LLR is l·ln(pc/q) + (covS−l)·ln((1−pc)/(1−q)).
func (p Params) CoverageLLR(l, cov1, cov2, numItems int, cap float64) float64 {
	if cap <= 0 {
		cap = DefaultCoverageCap
	}
	if numItems == 0 || cov1 == 0 || cov2 == 0 {
		return 0
	}
	covS := cov1
	covL := cov2
	if cov2 < cov1 {
		covS, covL = cov2, cov1
	}
	q := float64(covL) / float64(numItems)
	pc := q + p.S*(1-q)
	if q >= 1 || pc >= 1 {
		// The larger source covers everything: overlap carries no signal.
		return 0
	}
	if q <= 0 {
		return 0
	}
	llr := float64(l)*math.Log(pc/q) + float64(covS-l)*math.Log((1-pc)/(1-q))
	if llr > cap {
		return cap
	}
	if llr < -cap {
		return -cap
	}
	return llr
}
