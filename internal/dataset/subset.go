package dataset

// SubsetItems builds a new dataset restricted to the given items (ids into
// ds, in any order, deduplicated by the caller). Sources keep their ids —
// even sources left with no observation remain, so copy-detection results
// on the subset are directly comparable to the full dataset. Value ids per
// item are preserved, so value probabilities indexed by the returned
// itemMap can be shared with the full dataset.
func SubsetItems(ds *Dataset, items []ItemID) (*Dataset, []ItemID) {
	itemMap := append([]ItemID(nil), items...)
	oldToNew := make(map[ItemID]ItemID, len(itemMap))
	for newID, oldID := range itemMap {
		oldToNew[oldID] = ItemID(newID)
	}
	sub := &Dataset{
		SourceNames: ds.SourceNames,
		ItemNames:   make([]string, len(itemMap)),
		ValueNames:  make([][]string, len(itemMap)),
		BySource:    make([][]Obs, ds.NumSources()),
		ByItem:      make([][]SV, len(itemMap)),
		Generation:  FreshGeneration(),
	}
	for newID, oldID := range itemMap {
		sub.ItemNames[newID] = ds.ItemNames[oldID]
		sub.ValueNames[newID] = ds.ValueNames[oldID]
		svs := append([]SV(nil), ds.ByItem[oldID]...)
		sub.ByItem[newID] = svs
	}
	for s := range ds.BySource {
		var obs []Obs
		for _, o := range ds.BySource[s] {
			if newID, ok := oldToNew[o.Item]; ok {
				obs = append(obs, Obs{Item: newID, Value: o.Value})
			}
		}
		// BySource must be sorted by (new) item id; the new ids follow the
		// order of items, which need not be the source's original order.
		sortObs(obs)
		sub.BySource[s] = obs
	}
	if ds.Truth != nil {
		sub.Truth = make([]ValueID, len(itemMap))
		for newID, oldID := range itemMap {
			sub.Truth[newID] = ds.Truth[oldID]
		}
	}
	return sub, itemMap
}

// sortObs sorts observations by item id (insertion sort for short slices,
// falling back to a simple quicksort via the stdlib would pull in sort;
// slices here can be long, so use a shell sort that needs no allocation).
func sortObs(obs []Obs) {
	for gap := len(obs) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(obs); i++ {
			o := obs[i]
			j := i
			for ; j >= gap && obs[j-gap].Item > o.Item; j -= gap {
				obs[j] = obs[j-gap]
			}
			obs[j] = o
		}
	}
}
