// Streaming client for copydetectd: generates the stockfusion workload
// (a scaled Stock-1day with planted copier cliques), streams it into a
// copydetectd instance in batches — the way closing prices would arrive
// over a trading day — and polls the cached read endpoints until the
// service has converged, printing each new detection round as its ETag
// changes.
//
// Run self-hosted (starts an in-process copydetectd):
//
//	go run ./examples/server
//
// or against a daemon you started yourself:
//
//	go run ./cmd/copydetectd -addr :8377 &
//	go run ./examples/server -addr http://localhost:8377
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"copydetect"
	"copydetect/internal/dataset"
	"copydetect/internal/server"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running copydetectd (empty = start one in-process)")
	scale := flag.Float64("scale", 0.05, "stock workload scale factor")
	seed := flag.Int64("seed", 7, "workload generation seed")
	batches := flag.Int("batches", 8, "number of append batches to stream")
	flag.Parse()

	if *addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		check(err)
		reg := server.NewRegistry(server.Config{})
		defer reg.Close()
		go http.Serve(ln, server.NewHandler(reg))
		*addr = "http://" + ln.Addr().String()
		fmt.Printf("started in-process copydetectd at %s\n", *addr)
	}

	// The stockfusion workload: dozens of sources quoting stock
	// attributes, six planted copier cliques.
	cfg := copydetect.ScaleConfig(copydetect.Stock1DayConfig(*seed), *scale)
	ds, planted, err := copydetect.Generate(cfg)
	check(err)
	recs := dataset.Records(ds)
	fmt.Printf("workload: %s\n", copydetect.Summarize(ds))
	fmt.Printf("planted copying pairs: %d\n\n", len(planted.Pairs))

	base := *addr + "/v1/datasets/stock"
	post(http.MethodPut, base, nil)

	// Stream the observations batch by batch, polling between batches so
	// the round progression (HYBRID first, INCREMENTAL after) is visible.
	per := (len(recs) + *batches - 1) / *batches
	etag := ""
	for start := 0; start < len(recs); start += per {
		end := start + per
		if end > len(recs) {
			end = len(recs)
		}
		post(http.MethodPost, base+"/observations", map[string]any{
			"observations": recs[start:end],
		})
		fmt.Printf("appended observations %d–%d\n", start+1, end)
		etag = pollCopies(base, etag)
	}

	// Quiesce: block until every append is covered by a completed round,
	// then read the converged copying pairs.
	post(http.MethodPost, base+"/quiesce", nil)
	var copies struct {
		Round     int  `json:"round"`
		Converged bool `json:"converged"`
		Pairs     []struct {
			Direction string  `json:"direction"`
			PrIndep   float64 `json:"prIndep"`
		} `json:"pairs"`
	}
	get(base+"/copies", "", &copies, nil)
	fmt.Printf("\nconverged after round %d: %d copying pairs (%d planted)\n",
		copies.Round, len(copies.Pairs), len(planted.Pairs))
	for i, pr := range copies.Pairs {
		if i == 10 {
			fmt.Printf("  … %d more\n", len(copies.Pairs)-10)
			break
		}
		fmt.Printf("  %-40s Pr(indep)=%.4f\n", pr.Direction, pr.PrIndep)
	}
}

// pollCopies polls the cached copies endpoint with If-None-Match until
// either a new round is published (ETag changed) or the dataset reports
// convergence, and returns the current ETag. 304 responses show the
// cache at work: reads never block on detection.
func pollCopies(base, etag string) string {
	for i := 0; i < 200; i++ {
		var resp struct {
			Round     int  `json:"round"`
			Converged bool `json:"converged"`
			Pairs     []struct {
				Direction string `json:"direction"`
			} `json:"pairs"`
		}
		newTag, notModified := "", false
		get(base+"/copies", etag, &resp, func(r *http.Response) {
			newTag = r.Header.Get("ETag")
			notModified = r.StatusCode == http.StatusNotModified
		})
		// Round 0 is the pre-detection placeholder, not a published round.
		if !notModified && newTag != etag && resp.Round > 0 {
			fmt.Printf("  round %d published: %d copying pairs\n", resp.Round, len(resp.Pairs))
			return newTag
		}
		if resp.Converged || notModified && i > 20 {
			return etag
		}
		time.Sleep(10 * time.Millisecond)
	}
	return etag
}

func post(method, url string, body any) {
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		check(err)
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	check(err)
	resp, err := http.DefaultClient.Do(req)
	check(err)
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&er) // best effort: the status alone is reported otherwise
		check(fmt.Errorf("%s %s: %s (%s)", method, url, resp.Status, er.Error))
	}
}

func get(url, etag string, out any, inspect func(*http.Response)) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	check(err)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	check(err)
	defer resp.Body.Close()
	if inspect != nil {
		inspect(resp)
	}
	if resp.StatusCode == http.StatusOK && out != nil {
		check(json.NewDecoder(resp.Body).Decode(out))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "example: %v\n", err)
		os.Exit(1)
	}
}
