// Acceptance suite for the serving layer. The anchor is batch
// equivalence: streaming a workload into the registry in batches and
// quiescing must publish a Result byte-identical (wall-clock timers
// aside) to a one-shot batch run of the same detector over the same
// final dataset — for sequential and sharded detection alike.
package server

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
	"copydetect/internal/gen"
)

// streamWorkload is a Book-CS-style workload small enough to detect in
// milliseconds but large enough to keep candidate pairs (and INCREMENTAL
// refinement rounds) alive.
func streamWorkload(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, _, err := gen.Generate(gen.Scale(gen.BookCS(11), 0.04))
	if err != nil {
		t.Fatalf("generate workload: %v", err)
	}
	return ds
}

// splitBatches cuts records into n contiguous batches.
func splitBatches(recs []dataset.Record, n int) [][]dataset.Record {
	batches := make([][]dataset.Record, 0, n)
	per := (len(recs) + n - 1) / n
	for start := 0; start < len(recs); start += per {
		end := start + per
		if end > len(recs) {
			end = len(recs)
		}
		batches = append(batches, recs[start:end])
	}
	return batches
}

// normalizedResult clears the wall-clock timers, the only fields of a
// detection Result that legitimately differ between identical runs.
func normalizedResult(r *core.Result) core.Result {
	n := *r
	n.Stats.IndexBuild = 0
	n.Stats.Detect = 0
	return n
}

func quiesce(t *testing.T, reg *Registry, name string) *Published {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	pub, err := reg.Quiesce(ctx, name)
	if err != nil {
		t.Fatalf("quiesce %s: %v", name, err)
	}
	return pub
}

// TestStreamedEqualsBatch is the ISSUE's acceptance test: N streamed
// appends followed by quiesce yield a Result identical to one batch
// Detect over the same final dataset, for workers 1 and 4. The quiesce
// after the first batch pins the round sequence (HYBRID first, then
// INCREMENTAL); the remaining batches are appended with no waiting, so
// the scheduler's cancellation and re-run paths get exercised too.
func TestStreamedEqualsBatch(t *testing.T) {
	ds := streamWorkload(t)
	recs := dataset.Records(ds)
	truth := dataset.TruthRecords(ds)
	batches := splitBatches(recs, 5)

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			reg := NewRegistry(Config{Options: core.Options{Workers: workers}})
			defer reg.Close()
			m, err := reg.Create("stream", DatasetConfig{})
			if err != nil {
				t.Fatalf("create: %v", err)
			}

			if _, _, err := m.Append(batches[0], nil); err != nil {
				t.Fatalf("append batch 0: %v", err)
			}
			first := quiesce(t, reg, "stream")
			if first == nil || first.Algorithm != "HYBRID" || first.Round != 1 {
				t.Fatalf("first round = %+v, want HYBRID round 1", first)
			}
			for _, batch := range batches[1:] {
				if _, _, err := m.Append(batch, nil); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if _, _, err := m.Append(nil, truth); err != nil {
				t.Fatalf("append truth: %v", err)
			}
			pub := quiesce(t, reg, "stream")
			if pub == nil {
				t.Fatal("quiesced with no published round")
			}
			if pub.Algorithm != "INCREMENTAL" {
				t.Fatalf("final round ran %s, want INCREMENTAL", pub.Algorithm)
			}
			if want := uint64(len(batches) + 1); pub.Version != want {
				t.Fatalf("published version %d, want %d", pub.Version, want)
			}

			// Reference: replay the exact same append sequence into a
			// fresh Builder (reproducing id interning), then run the same
			// detector once over the final dataset.
			b := dataset.NewBuilder()
			for _, batch := range batches {
				b.AddRecords(batch)
			}
			for _, tr := range truth {
				b.SetTruth(tr.Item, tr.Value)
			}
			final := b.Build()
			if !eqDataset(pub.Snapshot, final) {
				t.Fatal("published snapshot differs from batch-built dataset")
			}

			params := bayes.DefaultParams()
			tf := &fusion.TruthFinder{Params: params}
			want := tf.Run(final, &core.Incremental{Params: params, Opts: core.Options{Workers: workers}})

			got := pub.Outcome
			if g, w := normalizedResult(got.Copy), normalizedResult(want.Copy); !reflect.DeepEqual(g, w) {
				t.Fatalf("streamed Result differs from batch Result:\n  got  %d pairs, stats %+v\n  want %d pairs, stats %+v",
					len(g.Pairs), g.Stats, len(w.Pairs), w.Stats)
			}
			if !reflect.DeepEqual(got.Truth, want.Truth) {
				t.Fatal("streamed truth decisions differ from batch run")
			}
			if !reflect.DeepEqual(got.State.A, want.State.A) {
				t.Fatal("streamed source accuracies differ from batch run")
			}
			if got.Rounds != want.Rounds {
				t.Fatalf("streamed run took %d iterative rounds, batch %d", got.Rounds, want.Rounds)
			}
			if len(got.Copy.CopyingPairs()) == 0 {
				t.Fatal("workload detected no copying pairs; enlarge the preset")
			}
		})
	}
}

// TestEmptyDatasetQuiesces pins the no-data corner: a freshly created
// dataset is trivially converged and quiesce returns without a round.
func TestEmptyDatasetQuiesces(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	if _, err := reg.Create("empty", DatasetConfig{}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if pub := quiesce(t, reg, "empty"); pub != nil {
		t.Fatalf("empty dataset published %+v, want nil", pub)
	}
	m, _ := reg.Get("empty")
	if !m.Converged() {
		t.Fatal("empty dataset not converged")
	}
}

// TestRegistryLifecycle covers create/list/delete and the error paths.
func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()

	if _, err := reg.Create("", DatasetConfig{}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := reg.Create("a", DatasetConfig{}); err != nil {
		t.Fatalf("create a: %v", err)
	}
	if _, err := reg.Create("a", DatasetConfig{}); err != ErrExists {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
	if _, err := reg.Create("bad", DatasetConfig{Params: bayes.Params{Alpha: 2, S: 0.8, N: 100}}); err == nil {
		t.Fatal("invalid priors accepted")
	}
	if _, err := reg.Create("b", DatasetConfig{Workers: 3}); err != nil {
		t.Fatalf("create b: %v", err)
	}
	if got := reg.List(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("List() = %v", got)
	}
	if m, _ := reg.Get("b"); m.Info().Workers != 3 {
		t.Fatalf("dataset b workers = %d, want 3", m.Info().Workers)
	}
	if !reg.Delete("a") || reg.Delete("a") {
		t.Fatal("delete semantics broken")
	}
	if _, err := reg.Quiesce(context.Background(), "a"); err != ErrNotFound {
		t.Fatalf("quiesce deleted: %v, want ErrNotFound", err)
	}
}

// TestQuiesceHonorsContext ensures context expiry and dataset deletion
// both unblock waiters stuck on a dataset that never converges. The
// dirty flag is set by hand, without kicking the scheduler, so no round
// ever covers it.
func TestQuiesceHonorsContext(t *testing.T) {
	reg := NewRegistry(Config{})
	defer reg.Close()
	m, err := reg.Create("stuck", DatasetConfig{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	m.mu.Lock()
	m.dirty = true
	m.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := reg.Quiesce(ctx, "stuck"); err != context.DeadlineExceeded {
		t.Fatalf("quiesce on stuck dataset: %v, want DeadlineExceeded", err)
	}

	errc := make(chan error, 1)
	go func() {
		_, err := reg.Quiesce(context.Background(), "stuck")
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter block
	reg.Delete("stuck")
	select {
	case err := <-errc:
		if err != ErrNotFound {
			t.Fatalf("quiesce on deleted dataset: %v, want ErrNotFound", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delete did not unblock quiesce")
	}
}
