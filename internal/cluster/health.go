package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// BackendStatus is the externally visible health of one backend, as
// reported by the gateway's /healthz endpoint.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// ConsecutiveFailures counts probe/request failures since the last
	// success; ConsecutiveSuccesses counts probe successes since the
	// last failure while ejected (progress toward readmission).
	ConsecutiveFailures  int    `json:"consecutiveFailures,omitempty"`
	ConsecutiveSuccesses int    `json:"consecutiveSuccesses,omitempty"`
	LastError            string `json:"lastError,omitempty"`
	// StaleDatasets counts datasets this backend is known to be behind
	// on (replication lag awaiting anti-entropy); such datasets are not
	// served from this backend even while it is healthy.
	StaleDatasets int `json:"staleDatasets,omitempty"`
}

// backend tracks one copydetectd replica's health. The state machine
// has two states, healthy and ejected, with hysteresis in both
// directions so a single flaky probe neither ejects nor readmits:
//
//	healthy --[ejectAfter consecutive failures]--> ejected
//	ejected --[readmitAfter consecutive probe successes]--> healthy
//
// Failures are reported both by the prober and by the proxy path (a
// request that cannot reach the backend is as good a signal as a failed
// probe); successes on the proxy path reset the failure streak.
// Readmission, however, is driven only by probes: the proxy never
// sends requests to an ejected backend, so probes are the only way
// back.
type backend struct {
	url string // base URL, no trailing slash
	idx int    // position in the gateway's backend list

	mu      sync.Mutex
	healthy bool
	fails   int // consecutive failures (any source)
	oks     int // consecutive probe successes while ejected
	lastErr string
}

func newBackend(url string, idx int) *backend {
	// Backends start healthy: the gateway is useful immediately, and a
	// dead backend is ejected within ejectAfter probe periods (or on
	// the first failed requests).
	return &backend{url: url, idx: idx, healthy: true}
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// reportSuccess records a successful probe or proxied request. It
// reports whether this success readmitted the backend (the
// ejected→healthy transition), which is the gateway's cue to audit
// what the backend missed while it was away.
func (b *backend) reportSuccess(readmitAfter int, probe bool) (readmitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.lastErr = ""
	if b.healthy {
		return false
	}
	if !probe {
		return false // proxy requests are never sent while ejected; ignore stragglers
	}
	b.oks++
	if b.oks >= readmitAfter {
		b.healthy = true
		b.oks = 0
		return true
	}
	return false
}

// reportFailure records a failed probe or proxied request.
func (b *backend) reportFailure(ejectAfter int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.oks = 0
	b.fails++
	if err != nil {
		b.lastErr = err.Error()
	}
	if b.healthy && b.fails >= ejectAfter {
		b.healthy = false
	}
}

func (b *backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BackendStatus{
		URL:                  b.url,
		Healthy:              b.healthy,
		ConsecutiveFailures:  b.fails,
		ConsecutiveSuccesses: b.oks,
		LastError:            b.lastErr,
	}
}

// monitor probes the backend's /healthz every probeEvery until stop
// closes. One goroutine per backend; the first tick fires after one
// period, which is fine because backends start healthy.
func (g *Gateway) monitor(b *backend) {
	defer g.wg.Done()
	ticker := time.NewTicker(g.probeEvery)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
		}
		g.probe(b)
	}
}

// probe performs one health check against the backend.
func (g *Gateway) probe(b *backend) {
	ctx, cancel := context.WithTimeout(context.Background(), g.probeTimeout)
	defer cancel()
	req, err := newTracedRequest(ctx, http.MethodGet, b.url+"/healthz", nil, nil, "")
	if err != nil {
		b.reportFailure(g.ejectAfter, err)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		b.reportFailure(g.ejectAfter, err)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.reportFailure(g.ejectAfter, fmt.Errorf("cluster: probe status %d", resp.StatusCode))
		return
	}
	if b.reportSuccess(g.readmitAfter, true) {
		// Readmission: beyond the datasets this gateway already knows
		// are behind, audit the whole replica-set picture — the backend
		// may have lost its disk, or the staleness may have accrued
		// under a previous gateway process.
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			g.audit()
		}()
	}
	if b.isHealthy() && g.staleTotal.Load() > 0 {
		// A healthy probe is the anti-entropy heartbeat: it re-arms the
		// catch-up of any dataset this backend is behind on — in
		// particular right after readmission, when the backend rejoins
		// with whatever it missed while it was down. The aggregate
		// counter keeps the steady state (nothing stale anywhere) from
		// scanning the dataset map on every probe.
		g.triggerReconciles(b.idx)
	}
}
