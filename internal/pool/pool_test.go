package pool

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestClamp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {64, 64},
	} {
		if got := Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestAuto(t *testing.T) {
	if got := Auto(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Auto() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestRunCoversAllShards(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 32} {
		var calls int64
		seen := make([]int32, Clamp(workers))
		Run(workers, func(w int) {
			atomic.AddInt64(&calls, 1)
			atomic.AddInt32(&seen[w], 1)
		})
		if int(calls) != Clamp(workers) {
			t.Errorf("workers=%d: %d calls, want %d", workers, calls, Clamp(workers))
		}
		for w, n := range seen {
			if n != 1 {
				t.Errorf("workers=%d: shard %d called %d times", workers, w, n)
			}
		}
	}
}

func TestShardsOrdered(t *testing.T) {
	got := Shards(7, func(w int) int { return w * w })
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	for w, v := range got {
		if v != w*w {
			t.Errorf("shard %d = %d, want %d", w, v, w*w)
		}
	}
}

func TestShardsSequentialInline(t *testing.T) {
	// workers <= 1 must run on the calling goroutine (the sequential path
	// shares the kernel without goroutine overhead).
	var gid [2]int
	fill := func(i int) func(int) int {
		return func(w int) int { gid[i] = 1; return w }
	}
	if got := Shards(1, fill(0)); len(got) != 1 || got[0] != 0 {
		t.Errorf("Shards(1) = %v", got)
	}
	if got := Shards(0, fill(1)); len(got) != 1 || got[0] != 0 {
		t.Errorf("Shards(0) = %v", got)
	}
}
