// Hysteresis tests for the backend health state machine, with the
// concurrency the gateway actually produces: the prober and many proxy
// requests report into one backend at the same time. Run under -race.
package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// eject / readmit drive the deterministic halves of the state machine.
func eject(b *backend, after int) {
	for i := 0; i < after; i++ {
		b.reportFailure(after, fmt.Errorf("down"))
	}
}

func readmit(b *backend, after int) {
	for i := 0; i < after; i++ {
		b.reportSuccess(after, true)
	}
}

// TestHysteresisProxySuccessNeverReadmits: readmission is probe-driven
// by design — the proxy never sends requests to an ejected backend, so
// a straggler proxy success (a response that was in flight when the
// ejection landed) must not readmit, no matter how many arrive or how
// they race.
func TestHysteresisProxySuccessNeverReadmits(t *testing.T) {
	b := newBackend("http://x", 0)
	eject(b, 2)
	if b.isHealthy() {
		t.Fatal("not ejected after 2 failures")
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				b.reportSuccess(2, false) // proxy straggler
			}
		}()
	}
	wg.Wait()
	if b.isHealthy() {
		t.Fatal("proxy successes readmitted an ejected backend")
	}
	// Probes still readmit afterwards — the stragglers must not have
	// wedged the counter either.
	readmit(b, 2)
	if !b.isHealthy() {
		t.Fatal("stuck ejected after 2 consecutive probe successes")
	}
}

// TestHysteresisNoEarlyReadmitUnderInterleaving: a probe success
// interleaved with a failure resets the readmission streak — the
// backend must not flap back early on non-consecutive successes.
func TestHysteresisNoEarlyReadmitUnderInterleaving(t *testing.T) {
	b := newBackend("http://x", 0)
	eject(b, 2)
	for round := 0; round < 50; round++ {
		b.reportSuccess(2, true) // one success is not enough...
		if b.isHealthy() {
			t.Fatalf("round %d: readmitted after a single probe success", round)
		}
		b.reportFailure(2, fmt.Errorf("flap")) // ...and a failure resets the streak
		if b.isHealthy() {
			t.Fatalf("round %d: healthy after a failure while ejected", round)
		}
	}
	readmit(b, 2)
	if !b.isHealthy() {
		t.Fatal("stuck ejected after genuinely consecutive successes")
	}
}

// TestHysteresisNoEarlyEjectUnderInterleaving: the mirror image — a
// success between failures resets the ejection streak, so a healthy
// backend with every failure answered by a success never gets ejected.
func TestHysteresisNoEarlyEjectUnderInterleaving(t *testing.T) {
	b := newBackend("http://x", 0)
	for round := 0; round < 50; round++ {
		b.reportFailure(2, fmt.Errorf("blip"))
		if !b.isHealthy() {
			t.Fatalf("round %d: ejected after a single failure", round)
		}
		b.reportSuccess(2, false) // a proxy success also resets the streak
	}
	eject(b, 2)
	if b.isHealthy() {
		t.Fatal("not ejected after genuinely consecutive failures")
	}
}

// TestHysteresisRaceProbeVsProxy hammers the state machine from three
// directions at once — probe successes, proxy successes, proxy
// failures — the exact interleaving a slow backend under load produces.
// Under -race this proves the counters are properly locked; afterwards
// the machine must still be in a legal state and respond to the
// deterministic sequences (no wedged counters, no stuck ejection).
func TestHysteresisRaceProbeVsProxy(t *testing.T) {
	for _, start := range []string{"healthy", "ejected"} {
		start := start
		t.Run(start, func(t *testing.T) {
			b := newBackend("http://x", 0)
			if start == "ejected" {
				eject(b, 2)
			}
			var wg sync.WaitGroup
			hammer := func(f func()) {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 2000; i++ {
						f()
					}
				}()
			}
			hammer(func() { b.reportSuccess(2, true) })
			hammer(func() { b.reportSuccess(2, false) })
			hammer(func() { b.reportFailure(2, fmt.Errorf("raced")) })
			hammer(func() { _ = b.status() })
			hammer(func() { _ = b.isHealthy() })
			wg.Wait()

			// Legal state: the snapshot is internally consistent.
			st := b.status()
			if st.ConsecutiveFailures < 0 || st.ConsecutiveSuccesses < 0 {
				t.Fatalf("negative streaks: %+v", st)
			}
			if st.Healthy && st.ConsecutiveSuccesses != 0 {
				t.Fatalf("healthy backend carries a readmission streak: %+v", st)
			}
			// Whatever the race left behind, the deterministic protocol
			// still drives it: eject, then readmit — never stuck.
			eject(b, 2)
			if b.isHealthy() {
				t.Fatal("cannot eject after the race")
			}
			readmit(b, 2)
			if !b.isHealthy() {
				t.Fatal("stuck ejected after the race")
			}
		})
	}
}
