// Package copydetect is a scalable copy-detection library for structured
// data, implementing "Scaling up Copy Detection" (Xian Li, Xin Luna Dong,
// Kenneth B. Lyons, Weiyi Meng, Divesh Srivastava; ICDE 2015).
//
// # Problem
//
// Many Web sources provide values for the same data items (the closing
// price of a stock, the author list of a book). Values conflict, and data
// fusion must decide which value is true. Copying between sources breaks
// the "popular values are probably true" heuristic: a false value can
// spread through copiers and become the majority. Copy detection finds,
// for every pair of sources, whether one copies from the other, so fusion
// can discount copied votes — but the classic PAIRWISE detector examines
// every shared data item of every source pair in every iteration, which
// does not scale.
//
// # What this library provides
//
// The paper's full algorithm family, behind one Detector interface:
//
//   - Pairwise — the exhaustive baseline (Dong et al., VLDB 2009).
//   - Index — a score-ordered inverted index over shared values; pairs
//     sharing nothing (or only weak evidence) are pruned, with results
//     provably identical to Pairwise.
//   - Bound / BoundPlus — early termination from running upper/lower
//     score bounds, with lazily recomputed bounds in BoundPlus.
//   - Hybrid — Index for small-overlap pairs, BoundPlus for the rest.
//   - Incremental — refines the previous round's decisions instead of
//     re-detecting from scratch in the iterative process.
//
// plus the surrounding system: the ACCU truth finder with copier
// discounting (TruthFinder), coverage-aware sampling (ScaleSample),
// synthetic workload generators matching the paper's four datasets, a
// Fagin-NRA baseline, and a harness regenerating every table and figure
// of the paper's evaluation (cmd/experiments).
//
// # Parallelism
//
// Every detector in the family parallelizes over a goroutine pool via
// Options{Workers: N} (the paper's Section VIII extension): the entry
// scan of INDEX/BOUND/BOUND+/HYBRID is sharded across the pair space,
// and INCREMENTAL fans out its base-score computation, entry
// classification and pass 1–3 re-examination. Parallel detection is
// deterministic — results are bit-identical to the sequential run for
// every worker count, because pair ownership, accumulation order and
// merge order are all fixed functions of the data (see DESIGN.md).
// Workers is a shard count rather than a core count; the CLIs default to
// one worker per CPU. Use DetectWithOptions to pass it through the
// one-call API.
//
// # Performance
//
// The detection kernel stores index and pair state as struct-of-arrays
// columns with packed bitsets for pair overlap, accumulates scores as
// renormalized mantissa/exponent products instead of per-co-occurrence
// logarithms, and runs steady-state INCREMENTAL rounds with zero
// allocations when the caller opts into result-buffer reuse.
// PERFORMANCE.md documents the methodology — benchmark suite,
// regression gate, pprof workflow — and the measured results;
// DESIGN.md's kernel section records the layout itself.
//
// # Serving
//
// For workloads where observations arrive continuously — the setting
// that motivates the paper's INCREMENTAL algorithm — cmd/copydetectd
// wraps the library in a long-running HTTP/JSON service backed by
// internal/server. It holds a registry of named datasets; clients
// append observation batches, a dirty-dataset scheduler runs detection
// rounds asynchronously (full HYBRID on a dataset's first build,
// INCREMENTAL refinement on every later round), and reads serve the
// last published round with round/version ETags, never blocking on
// detection. Every round runs the complete iterative process on an
// immutable snapshot, so a quiesced dataset's result is byte-identical
// to a one-shot batch Detect over the same final data — the
// batch-equivalence guarantee documented in DESIGN.md. See
// examples/server for a streaming client.
//
// # Durability
//
// With -data-dir, copydetectd keeps every dataset on disk: appends are
// acknowledged only after they are written to a checksummed,
// segment-rotated write-ahead log (internal/wal; fsync'd unless
// -fsync=false), and a background compactor snapshots each published
// round — dataset and outcome in a binary, bit-exact codec — and trims
// the log behind it. A restarted daemon (graceful stop or SIGKILL)
// reloads the newest snapshot, replays the log tail, truncates any torn
// record off the end, and re-converges, extending the batch-equivalence
// guarantee across process death: the recovered, quiesced result is
// byte-identical (timers aside) to an uninterrupted run over the same
// acknowledged appends. The WAL format, snapshot cadence and recovery
// sequence are documented in DESIGN.md.
//
// # Cluster mode
//
// One daemon is bounded by one machine. cmd/copygate scales the service
// horizontally: a consistent-hash gateway (internal/cluster) that owns
// the dataset namespace over N copydetectd backends. Datasets are
// already independent convergence units, so sharding whole datasets by
// a pure hash of the name needs no cross-backend coordination; the
// gateway proxies every dataset-scoped request byte-for-byte (ETags
// included — single-daemon clients work unchanged), fans the dataset
// list out to all backends, and health-checks them with ejection and
// readmission. With -replicas 2 (the default) every dataset lives on
// two backends: writes are acknowledged by the acting primary and
// mirrored to the replica with idempotent sequence numbers, reads fail
// over transparently (marked X-Copydetect-Replica), and a recovered
// backend is caught back up by anti-entropy — an export/import state
// copy from its peer — before serving again, so the loss of any single
// backend surfaces no errors at all. cmd/copyload generates streaming
// load against a daemon or gateway and reports throughput and latency
// percentiles. The cluster's acceptance test proves wire-level
// equivalence between a three-backend gateway and a single direct
// daemon, through a mid-stream SIGKILL and readmission.
//
// Beyond the flat-rate loop, copyload -scenario runs a declarative
// workload (internal/scenario): JSON-specified phases with target
// rates, traffic bursts, zipfian dataset popularity, source churn and
// failure injections, judged against an SLO block — p99 append
// latency, zero 5xx through backend kills, convergence time, and
// detection precision/recall against the generator's planted copier
// cliques — emitted as a machine-readable verdict. See
// examples/scenarios and the "Workloads & soak testing" section of
// DESIGN.md.
//
// # Observability
//
// Both daemons expose Prometheus-format metrics on GET /metrics
// (internal/telemetry, stdlib-only): request rate/latency/in-flight by
// route, per-dataset convergence lag, scheduler and mirror queue
// depth, round durations, WAL fsync latency, backend health and
// failover counters. Requests carry an X-Copydetect-Trace ID from the
// gateway through the backends into asynchronous mirror deliveries,
// tying one write's access-log lines together across processes. Both
// daemons also admission-control appends: past a configurable
// high-water mark (-append-high-water on copydetectd, convergence
// backlog; -mirror-high-water on copygate, replica mirror queue) an
// append is refused with 429 + Retry-After instead of queueing without
// bound, and cmd/copyload honors the hint, retrying the batch and
// reporting it as throttled rather than failed.
//
// # Static analysis
//
// The repo polices its own invariants statically: internal/analysis
// (stdlib-only) implements five contract analyzers — determinism
// hygiene in the engine packages, zero-alloc hot paths, trace
// propagation in the cluster layer, metric label cardinality, and the
// binio sticky-error discipline — driven by //copydetect: annotations
// in the source. They run as `go run ./cmd/copyvet ./...`, inside
// plain `go test ./...`, and in CI. See the "Static analysis
// (copyvet)" section of DESIGN.md.
//
// # Quick start
//
//	b := copydetect.NewBuilder()
//	b.Add("source-A", "NJ", "Trenton")
//	b.Add("source-B", "NJ", "Atlantic")
//	// ... more observations ...
//	ds := b.Build()
//
//	out := copydetect.Detect(ds, copydetect.AlgorithmHybrid, copydetect.DefaultParams())
//	for _, pr := range out.Copy.CopyingPairs() {
//	    fmt.Println(ds.SourceNames[pr.S1], "copies", ds.SourceNames[pr.S2])
//	}
//	truth := out.Truth // most probable value per item
//
// See examples/ for runnable end-to-end programs and DESIGN.md for the
// mapping from paper sections to packages.
package copydetect
