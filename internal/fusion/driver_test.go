package fusion

import (
	"math/rand"
	"testing"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/sample"
)

// TestOnRoundCallback: the per-round hook fires once per round with the
// dataset the detector saw.
func TestOnRoundCallback(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	var rounds []int
	tf := &TruthFinder{Params: p}
	tf.OnRound = func(round int, detDS *dataset.Dataset, detSt *bayes.State, res *core.Result) {
		rounds = append(rounds, round)
		if detDS != ds {
			t.Error("OnRound should see the detection dataset")
		}
		if res == nil || len(detSt.A) != ds.NumSources() {
			t.Error("OnRound got inconsistent arguments")
		}
	}
	out := tf.Run(ds, &core.Index{Params: p})
	if len(rounds) != out.Rounds {
		t.Fatalf("callback fired %d times for %d rounds", len(rounds), out.Rounds)
	}
	for i, r := range rounds {
		if r != i+1 {
			t.Fatalf("rounds out of order: %v", rounds)
		}
	}
}

// TestMinMaxRounds: the driver honors forced round counts.
func TestMinMaxRounds(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	out := (&TruthFinder{Params: p, MinRounds: 7, MaxRounds: 7}).Run(ds, &core.Index{Params: p})
	if out.Rounds != 7 {
		t.Errorf("forced 7 rounds, got %d", out.Rounds)
	}
	out = (&TruthFinder{Params: p, MinRounds: 1, MaxRounds: 2}).Run(ds, &core.Index{Params: p})
	if out.Rounds > 2 {
		t.Errorf("capped at 2 rounds, got %d", out.Rounds)
	}
}

// TestSampledDriverProjection: with DetectDataset set, detection sees the
// sampled items with shared value probabilities, and fusion still decides
// all full-dataset items.
func TestSampledDriverProjection(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	s := sample.ByItem(ds, 0.6, rand.New(rand.NewSource(2)))
	var sawItems int
	tf := &TruthFinder{Params: p, DetectDataset: s.Dataset, ItemMap: s.ItemMap}
	tf.OnRound = func(round int, detDS *dataset.Dataset, detSt *bayes.State, res *core.Result) {
		sawItems = detDS.NumItems()
		if len(detSt.P) != detDS.NumItems() {
			t.Error("projected state has wrong item count")
		}
	}
	out := tf.Run(ds, &core.Index{Params: p})
	if sawItems != s.Dataset.NumItems() {
		t.Errorf("detector saw %d items, want %d", sawItems, s.Dataset.NumItems())
	}
	if len(out.Truth) != ds.NumItems() {
		t.Errorf("fusion decided %d items, want all %d", len(out.Truth), ds.NumItems())
	}
}

// TestUseValueDistEndToEnd: the footnote-2 relaxation must not break the
// motivating example's conclusions.
func TestUseValueDistEndToEnd(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	out := (&TruthFinder{Params: p, UseValueDist: true}).Run(ds, &core.Hybrid{Params: p})
	for d, want := range ds.Truth {
		if out.Truth[d] != want {
			t.Errorf("truth of %s wrong under value-dist relaxation", ds.ItemNames[d])
		}
	}
	set := out.Copy.CopyingSet()
	for _, w := range [][2]dataset.SourceID{{2, 3}, {6, 8}} {
		if !set[int64(w[0])<<32|int64(uint32(w[1]))] {
			t.Errorf("clique pair (S%d,S%d) lost under relaxation", w[0], w[1])
		}
	}
}

// TestCoverageWeightEndToEnd: coverage evidence must not break the
// motivating example either (every source covers nearly everything, so
// the capped LLR is mild).
func TestCoverageWeightEndToEnd(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	p.CoverageWeight = 0.5
	out := (&TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	for d, want := range ds.Truth {
		if out.Truth[d] != want {
			t.Errorf("truth of %s wrong under coverage evidence", ds.ItemNames[d])
		}
	}
}

// TestValuePopularitiesSumToOne: per item, empirical popularities sum to 1.
func TestValuePopularitiesSumToOne(t *testing.T) {
	ds, _ := dataset.Motivating()
	pop := dataset.ValuePopularities(ds)
	for d := range pop {
		sum := 0.0
		for _, pv := range pop[d] {
			sum += pv
		}
		if len(ds.ByItem[d]) > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("item %d popularities sum to %v", d, sum)
		}
	}
}

// TestRoundStatsAccumulate: the outcome's totals equal the per-round sums.
func TestRoundStatsAccumulate(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	out := (&TruthFinder{Params: p}).Run(ds, &core.Hybrid{Params: p})
	var comp int64
	for _, st := range out.RoundStats {
		comp += st.Computations
	}
	if comp != out.TotalStats.Computations {
		t.Errorf("total computations %d != per-round sum %d", out.TotalStats.Computations, comp)
	}
	if out.TotalStats.Rounds != out.Rounds {
		t.Errorf("stats rounds %d != %d", out.TotalStats.Rounds, out.Rounds)
	}
}

// TestCancelAbortsRun: a closed Cancel channel makes Run return nil
// between rounds — mid-process for a channel closed by the OnRound hook,
// immediately for one closed up front.
func TestCancelAbortsRun(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()

	pre := make(chan struct{})
	close(pre)
	tf := &TruthFinder{Params: p, Cancel: pre}
	if out := tf.Run(ds, &core.Hybrid{Params: p}); out != nil {
		t.Fatalf("pre-cancelled Run returned %+v, want nil", out)
	}

	mid := make(chan struct{})
	rounds := 0
	tf = &TruthFinder{Params: p, Cancel: mid}
	tf.OnRound = func(round int, _ *dataset.Dataset, _ *bayes.State, _ *core.Result) {
		rounds = round
		if round == 2 {
			close(mid)
		}
	}
	if out := tf.Run(ds, &core.Hybrid{Params: p}); out != nil {
		t.Fatalf("mid-cancelled Run returned %+v, want nil", out)
	}
	if rounds != 2 {
		t.Fatalf("detector ran %d rounds after cancellation, want 2", rounds)
	}

	// A nil Cancel leaves the process untouched.
	tf = &TruthFinder{Params: p}
	if out := tf.Run(ds, &core.Hybrid{Params: p}); out == nil {
		t.Fatal("uncancelled Run returned nil")
	}
}

// TestCancelRacedAgainstRun closes the Cancel channel from a separate
// goroutine at staggered delays while Run is mid-flight, many times
// over. It pins the concurrency contract (run under -race in CI): a
// racing cancellation either aborts the run — Run returns nil — or the
// run completes with a fully-formed Outcome; never a torn one, never a
// panic or deadlock.
func TestCancelRacedAgainstRun(t *testing.T) {
	ds, _ := dataset.Motivating()
	p := exampleParams()
	aborted, completed := 0, 0
	for i := 0; i < 40; i++ {
		cancel := make(chan struct{})
		tf := &TruthFinder{Params: p, Cancel: cancel}
		// Stretch every other run so the closing goroutine lands mid-run
		// (the motivating example alone detects in microseconds); the
		// fast runs exercise the complete-despite-late-cancel side.
		if i%2 == 0 {
			tf.OnRound = func(int, *dataset.Dataset, *bayes.State, *core.Result) {
				time.Sleep(50 * time.Microsecond)
			}
		}
		done := make(chan *Outcome, 1)
		go func() {
			done <- tf.Run(ds, &core.Hybrid{Params: p})
		}()
		go func(delay time.Duration) {
			time.Sleep(delay)
			close(cancel)
		}(time.Duration(i%20) * 60 * time.Microsecond)
		select {
		case out := <-done:
			if out == nil {
				aborted++
				continue
			}
			completed++
			if out.State == nil || out.Copy == nil || out.Rounds == 0 ||
				len(out.Truth) != ds.NumItems() || len(out.RoundStats) != out.Rounds {
				t.Fatalf("iteration %d: torn outcome %+v", i, out)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("iteration %d: Run neither returned nor aborted", i)
		}
	}
	t.Logf("%d aborted, %d completed", aborted, completed)
	if aborted == 0 {
		t.Log("no run observed the cancellation; timing too coarse on this machine (not a failure)")
	}
}
