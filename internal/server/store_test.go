// Durability unit tests: clean restarts, recovery without a snapshot,
// torn WAL tails, and delete semantics — all in-process. The
// SIGKILL-based crash-equivalence acceptance test lives with the
// daemon, in cmd/copydetectd.
package server

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"copydetect/internal/bayes"
	"copydetect/internal/core"
	"copydetect/internal/dataset"
	"copydetect/internal/fusion"
)

func openDurable(t *testing.T, dir string, workers int) *Registry {
	t.Helper()
	reg, err := Open(Config{
		Options: core.Options{Workers: workers},
		DataDir: dir,
		Fsync:   false, // process-death durability; keeps tests fast
	})
	if err != nil {
		t.Fatalf("open durable registry: %v", err)
	}
	return reg
}

// waitForSnapshot polls until the dataset directory holds at least one
// snapshot file.
func waitForSnapshot(t *testing.T, dir, name string) {
	t.Helper()
	dsDir := filepath.Join(datasetsRoot(dir), encodeDirName(name))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if vs, err := snapshotVersions(dsDir); err == nil && len(vs) > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("no snapshot appeared for dataset %q", name)
}

func TestDurableCleanRestartServesSnapshot(t *testing.T) {
	dir := t.TempDir()
	ds := streamWorkload(t)
	recs := dataset.Records(ds)
	batches := splitBatches(recs, 3)

	reg := openDurable(t, dir, 2)
	m, err := reg.Create("books", DatasetConfig{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for _, b := range batches {
		if _, _, err := m.Append(b, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	want := quiesce(t, reg, "books")
	if want == nil {
		t.Fatal("no published round")
	}
	reg.Close() // flushes the snapshot

	reg2 := openDurable(t, dir, 2)
	defer reg2.Close()
	m2, ok := reg2.Get("books")
	if !ok {
		t.Fatal("dataset lost across restart")
	}
	// The snapshot is current, so the restarted dataset is converged
	// without running a single round, and the published state — result,
	// truth, probabilities, even the stats and wall times — is
	// bit-for-bit the pre-restart one.
	if !m2.Converged() {
		t.Fatal("restarted dataset not converged despite current snapshot")
	}
	got := m2.Published()
	if got == nil {
		t.Fatal("restarted dataset published nothing")
	}
	if !eqPublished(got, want) {
		t.Fatal("published state differs after clean restart")
	}
	if inf := m2.Info(); inf.Version != want.Version || inf.Observations != ds.NumObservations() {
		t.Fatalf("restarted info = %+v", inf)
	}
}

func TestDurableRecoveryReplaysWALWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	ds := streamWorkload(t)
	recs := dataset.Records(ds)
	truth := dataset.TruthRecords(ds)
	batches := splitBatches(recs, 4)

	reg, err := Open(Config{
		Options: core.Options{Workers: 1},
		DataDir: dir,
		// A cadence the test never reaches: recovery must work from the
		// log alone.
		SnapshotEvery: 1 << 30,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	m, err := reg.Create("books", DatasetConfig{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, _, err := m.Append(batches[0], nil); err != nil {
		t.Fatalf("append: %v", err)
	}
	first := quiesce(t, reg, "books")
	if first == nil || first.Algorithm != "HYBRID" {
		t.Fatalf("first round = %+v", first)
	}
	for _, b := range batches[1:] {
		if _, _, err := m.Append(b, nil); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if _, _, err := m.Append(nil, truth); err != nil {
		t.Fatalf("append truth: %v", err)
	}
	// Abandon the registry without Close: a crash. The WAL already has
	// every acknowledged append and the round-1 publish marker.
	reg = nil

	reg2 := openDurable(t, dir, 1)
	defer reg2.Close()
	pub := quiesce(t, reg2, "books")
	if pub == nil {
		t.Fatal("recovered dataset published nothing")
	}
	if pub.Algorithm != "INCREMENTAL" {
		t.Fatalf("recovered round ran %s; the surviving publish marker should force INCREMENTAL", pub.Algorithm)
	}

	// Reference: one batch run over the final dataset.
	b := dataset.NewBuilder()
	for _, batch := range batches {
		b.AddRecords(batch)
	}
	for _, tr := range truth {
		b.SetTruth(tr.Item, tr.Value)
	}
	final := b.Build()
	if !eqDataset(pub.Snapshot, final) {
		t.Fatal("recovered snapshot differs from batch-built dataset")
	}
	params := bayes.DefaultParams()
	want := (&fusion.TruthFinder{Params: params}).Run(final, &core.Incremental{Params: params, Opts: core.Options{Workers: 1}})
	if g, w := normalizedResult(pub.Outcome.Copy), normalizedResult(want.Copy); !reflect.DeepEqual(g, w) {
		t.Fatal("recovered Result differs from batch Result")
	}
	if !reflect.DeepEqual(pub.Outcome.Truth, want.Truth) {
		t.Fatal("recovered truth decisions differ from batch run")
	}
}

func TestDurableRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	reg := openDurable(t, dir, 1)
	m, err := reg.Create("set", DatasetConfig{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, _, err := m.Append([]dataset.Record{
		{Source: "s1", Item: "d1", Value: "a"},
		{Source: "s2", Item: "d1", Value: "a"},
	}, nil); err != nil {
		t.Fatalf("append: %v", err)
	}
	quiesce(t, reg, "set")
	reg.Close()

	// Simulate a crash mid-write: garbage on the end of the newest WAL
	// segment, as if the process died inside an unacknowledged append.
	walDir := filepath.Join(datasetsRoot(dir), encodeDirName("set"), "wal")
	entries, err := os.ReadDir(walDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("wal dir: %v (%d entries)", err, len(entries))
	}
	seg := filepath.Join(walDir, entries[len(entries)-1].Name())
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o666)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x09, 0x00, 0x00, 0x00, 0xAA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg2 := openDurable(t, dir, 1)
	defer reg2.Close()
	m2, ok := reg2.Get("set")
	if !ok {
		t.Fatal("dataset lost")
	}
	if inf := m2.Info(); inf.Observations != 2 {
		t.Fatalf("recovered %d observations, want 2", inf.Observations)
	}
	// The log stays appendable after truncation.
	if _, _, err := m2.Append([]dataset.Record{{Source: "s3", Item: "d1", Value: "b"}}, nil); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if pub := quiesce(t, reg2, "set"); pub == nil || pub.Snapshot.NumObservations() != 3 {
		t.Fatalf("post-recovery round = %+v", pub)
	}
}

func TestDurableDeleteAndRecreate(t *testing.T) {
	dir := t.TempDir()
	reg := openDurable(t, dir, 1)
	if _, err := reg.Create("x", DatasetConfig{Workers: 3}); err != nil {
		t.Fatalf("create: %v", err)
	}
	dsDir := filepath.Join(datasetsRoot(dir), encodeDirName("x"))
	if _, err := os.Stat(filepath.Join(dsDir, "config.json")); err != nil {
		t.Fatalf("config not on disk: %v", err)
	}
	m, _ := reg.Get("x")
	gen1 := m.gen
	if !reg.Delete("x") {
		t.Fatal("delete failed")
	}
	if _, err := os.Stat(dsDir); !os.IsNotExist(err) {
		t.Fatalf("dataset dir survives delete: %v", err)
	}
	m2, err := reg.Create("x", DatasetConfig{})
	if err != nil {
		t.Fatalf("recreate: %v", err)
	}
	if m2.gen <= gen1 {
		t.Fatalf("recreated gen %d not above %d; stale ETags would validate", m2.gen, gen1)
	}
	reg.Close()

	// Generations survive restarts, keeping ETags from before the
	// restart distinguishable too.
	reg2 := openDurable(t, dir, 1)
	defer reg2.Close()
	m3, ok := reg2.Get("x")
	if !ok || m3.gen != m2.gen {
		t.Fatalf("recovered gen = %d, want %d", m3.gen, m2.gen)
	}
	if m3.Info().Workers != m2.Info().Workers {
		t.Fatal("recovered workers differ")
	}
}

func TestDurableConfigOverridesSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	reg := openDurable(t, dir, 2)
	p := bayes.Params{Alpha: 0.25, S: 0.6, N: 42}
	if _, err := reg.Create("tuned", DatasetConfig{Params: p, Workers: 5}); err != nil {
		t.Fatalf("create: %v", err)
	}
	reg.Close()
	reg2 := openDurable(t, dir, 2)
	defer reg2.Close()
	m, ok := reg2.Get("tuned")
	if !ok {
		t.Fatal("dataset lost")
	}
	inf := m.Info()
	if inf.Alpha != 0.25 || inf.S != 0.6 || inf.N != 42 || inf.Workers != 5 {
		t.Fatalf("recovered config = %+v", inf)
	}
}

func TestDurableSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	reg := openDurable(t, dir, 1)
	m, err := reg.Create("s", DatasetConfig{})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := m.Append([]dataset.Record{
			{Source: "s1", Item: "d1", Value: string(rune('a' + i))},
			{Source: "s2", Item: "d1", Value: "a"},
		}, nil); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		quiesce(t, reg, "s")
	}
	waitForSnapshot(t, dir, "s")
	reg.Close()
	vs, err := snapshotVersions(filepath.Join(datasetsRoot(dir), encodeDirName("s")))
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 || len(vs) > 2 {
		t.Fatalf("kept %d snapshots, want 1-2", len(vs))
	}
}

func TestDirNameRoundtrip(t *testing.T) {
	for _, name := range []string{
		"plain", "with-dash_and.dot", "slash/es", "..", ".hidden",
		"spaces and ünïcode", "%already%escaped", "a%2Fb",
	} {
		enc := encodeDirName(name)
		if filepath.Base(enc) != enc || enc == "." || enc == ".." {
			t.Errorf("encodeDirName(%q) = %q is not a safe single path element", name, enc)
		}
		got, err := decodeDirName(enc)
		if err != nil || got != name {
			t.Errorf("decodeDirName(encodeDirName(%q)) = %q, %v", name, got, err)
		}
	}
}

func TestWALRecordRoundtrip(t *testing.T) {
	obs := []dataset.Record{{Source: "s", Item: "d", Value: "v"}, {Source: "s2", Item: "d2", Value: "v2"}}
	truth := []dataset.Record{{Item: "d", Value: "v"}}
	rec, err := decodeWALRecord(encodeAppendRecord(7, obs, truth))
	if err != nil {
		t.Fatalf("decode append: %v", err)
	}
	if rec.kind != walRecAppend || rec.version != 7 ||
		!reflect.DeepEqual(rec.obs, obs) || !reflect.DeepEqual(rec.truth, truth) {
		t.Fatalf("append record = %+v", rec)
	}
	rec, err = decodeWALRecord(encodePublishRecord(3, 9))
	if err != nil {
		t.Fatalf("decode publish: %v", err)
	}
	if rec.kind != walRecPublish || rec.round != 3 || rec.version != 9 {
		t.Fatalf("publish record = %+v", rec)
	}
	if _, err := decodeWALRecord([]byte{99}); err == nil {
		t.Error("unknown record type accepted")
	}
	enc := encodeAppendRecord(1, obs, nil)
	if _, err := decodeWALRecord(enc[:len(enc)-3]); err == nil {
		t.Error("truncated record accepted")
	}
}
