package analysis

// Config points the analyzers at the packages and helpers they police.
// The defaults encode this repo's contracts; golden tests substitute
// fixture package paths to exercise each analyzer in isolation.
type Config struct {
	// Deterministic lists import paths under the determinism contract
	// even without a copydetect:deterministic annotation. detrange
	// checks the union of this list and the annotated set, so deleting
	// an annotation cannot silently shrink coverage.
	Deterministic []string

	// TracePkgs lists packages whose outbound HTTP requests must be
	// built by one of TraceHelpers (full function names as reported by
	// types.Func.FullName). Requests constructed inside a helper itself
	// are exempt.
	TracePkgs    []string
	TraceHelpers []string

	// TelemetryPkg is the metrics package; Normalizers are the
	// bounded-cardinality value producers whose results metriclabel
	// accepts as dynamic label values.
	TelemetryPkg string
	Normalizers  []string

	// BinioPkg is the sticky-error codec package stickycheck watches.
	BinioPkg string

	// HotAllocAllow lists call-name prefixes (types.Func.FullName)
	// hotalloc will not follow or flag even though their bodies are out
	// of reach — pure math helpers known not to allocate.
	HotAllocAllow []string
}

// DefaultConfig returns the repository contract wiring.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			"copydetect/internal/core",
			"copydetect/internal/index",
			"copydetect/internal/bayes",
			"copydetect/internal/fusion",
			"copydetect/internal/dataset",
			"copydetect/internal/wal",
			"copydetect/internal/binio",
		},
		TracePkgs: []string{"copydetect/internal/cluster"},
		TraceHelpers: []string{
			"copydetect/internal/cluster.newTracedRequest",
		},
		TelemetryPkg: "copydetect/internal/telemetry",
		Normalizers: []string{
			"copydetect/internal/telemetry.NormalizeRoute",
			"copydetect/internal/telemetry.NormalizeMethod",
			"copydetect/internal/telemetry.statusClass",
			"copydetect/internal/telemetry.itoa",
		},
		BinioPkg: "copydetect/internal/binio",
		HotAllocAllow: []string{
			"math.",
			"math/bits.",
			// Pure arithmetic on a time.Duration value.
			"(time.Duration).",
			// Atomic loads/stores move pointers, never allocate.
			"(*sync/atomic.",
			"(sync/atomic.",
		},
	}
}

func (c *Config) deterministic(path string) bool {
	for _, p := range c.Deterministic {
		if p == path {
			return true
		}
	}
	return false
}

func (c *Config) tracePkg(path string) bool {
	for _, p := range c.TracePkgs {
		if p == path {
			return true
		}
	}
	return false
}

func (c *Config) traceHelper(fullName string) bool {
	for _, h := range c.TraceHelpers {
		if h == fullName {
			return true
		}
	}
	return false
}

func (c *Config) normalizer(fullName string) bool {
	for _, n := range c.Normalizers {
		if n == fullName {
			return true
		}
	}
	return false
}

func (c *Config) allocAllowed(fullName string) bool {
	for _, prefix := range c.HotAllocAllow {
		if len(fullName) >= len(prefix) && fullName[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}
