// Package stickycheckfix is the stickycheck fixture: the two ways to
// drop a sticky error next to the three blessed patterns (check at the
// end, delegate via parameter, hand off to a delegate).
package stickycheckfix

import (
	"bytes"

	"copydetect/internal/binio"
)

// decodeChecked decodes and then observes Err: no diagnostic.
func decodeChecked(b []byte) (uint64, error) {
	r := binio.NewReader(bytes.NewReader(b))
	x := r.Uvarint()
	return x, r.Err()
}

// decodeUnchecked creates, decodes, and never checks: diagnostic.
func decodeUnchecked(b []byte) uint64 {
	r := binio.NewReader(bytes.NewReader(b))
	return r.Uvarint()
}

// decodeAfterCheck decodes again after the last Err call: diagnostic.
func decodeAfterCheck(b []byte) (uint64, uint64, error) {
	r := binio.NewReader(bytes.NewReader(b))
	a := r.Uvarint()
	err := r.Err()
	bb := r.Uvarint()
	return a, bb, err
}

// delegated receives the codec as a parameter and never checks: the
// caller owns the final Err, so no diagnostic.
func delegated(r *binio.Reader) uint64 {
	return r.Uvarint()
}

// escapes hands the codec to a delegate and checks at the end: no
// diagnostic.
func escapes(b []byte) (uint64, uint64, error) {
	r := binio.NewReader(bytes.NewReader(b))
	x := r.Uvarint()
	y := delegated(r)
	return x, y, r.Err()
}
