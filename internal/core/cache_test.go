package core

import (
	"math/rand"
	"testing"

	"copydetect/internal/dataset"
	"copydetect/internal/index"
)

// TestStructCacheGenerationChange: deleting a dataset and creating a new
// one can hand the new dataset the old one's address, so a pointer-keyed
// cache would serve the stale frozen structure. The Generation stamp must
// catch the swap. (Regression: the cache used to key on the pointer only.)
func TestStructCacheGenerationChange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds1, _ := randomInstance(rng, 5, 30)
	ds2, _ := randomInstance(rng, 8, 50)
	if ds1.Generation == ds2.Generation {
		t.Fatal("two Build calls produced the same generation stamp")
	}

	var c structCache
	s1 := c.structures(ds1)
	if got := c.structures(ds1); got != s1 {
		t.Fatal("unchanged dataset must hit the cache")
	}

	// Simulate the allocator reusing ds1's address for a new dataset.
	*ds1 = *ds2
	s2 := c.structures(ds1)
	if s2 == s1 {
		t.Fatal("generation change did not invalidate the cached structure")
	}
	if want := index.NewStructure(ds2).NumEntries(); s2.NumEntries() != want {
		t.Fatalf("rebuilt structure has %d entries, want %d", s2.NumEntries(), want)
	}
}

// TestIncrementalGenerationChangeReprepares: a prepared INCREMENTAL
// detector fed a recreated dataset at the same address must drop its
// frozen index and produce decisions exact for the new data.
func TestIncrementalGenerationChangeReprepares(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds1, st1 := randomInstance(rng, 6, 40)
	ds2, st2 := randomInstance(rng, 6, 40)
	p := exampleParams()

	inc := &Incremental{Params: p}
	inc.DetectRound(ds1, st1, 1)
	inc.DetectRound(ds1, st1, 2)
	inc.DetectRound(ds1, st1, 3)
	if !inc.prepared {
		t.Fatal("detector should be prepared after the warm rounds")
	}

	*ds1 = *ds2 // address reuse: same pointer, different dataset
	res := inc.DetectRound(ds1, st2, 4)
	idx := (&Index{Params: p}).DetectRound(ds1, st2, 1)
	assertSameDecisions(t, res, idx, "INCREMENTAL after dataset swap vs INDEX")
}

// TestExactPairBitsMatchesMerge: INCREMENTAL's two exact-recomputation
// paths — the bitset AND sweep and the sorted-list merge — must agree
// bit for bit (scores AND stats counters), for every candidate pair. Both
// visit the same co-occurrences in item-major order and feed the same
// product accumulator, so this is equality, not tolerance.
func TestExactPairBitsMatchesMerge(t *testing.T) {
	p := exampleParams()
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ds, st := randomInstance(rng, 5+rng.Intn(6), 10+rng.Intn(50))
		str := index.NewStructure(ds)
		if str.EntryBits == nil {
			t.Fatal("bitsets unexpectedly disabled on a small dataset")
		}
		ns := ds.NumSources()
		for s1 := 0; s1 < ns; s1++ {
			for s2 := s1 + 1; s2 < ns; s2++ {
				var stb, stm Stats
				bTo, bFrom := exactPairBits(p, str, ds, st,
					dataset.SourceID(s1), dataset.SourceID(s2), &stb)
				mTo, mFrom := exactPairMerge(p, ds, st,
					dataset.SourceID(s1), dataset.SourceID(s2), &stm)
				if bTo != mTo || bFrom != mFrom {
					t.Fatalf("seed %d pair (%d,%d): bits (%v,%v) != merge (%v,%v)",
						seed, s1, s2, bTo, bFrom, mTo, mFrom)
				}
				if stb != stm {
					t.Fatalf("seed %d pair (%d,%d): stats %+v != %+v", seed, s1, s2, stb, stm)
				}
			}
		}
	}
}

// TestExactPairBitsMatchesMergeCoverage: same differential with the
// footnote-1 coverage extension switched on.
func TestExactPairBitsMatchesMergeCoverage(t *testing.T) {
	p := exampleParams()
	p.CoverageWeight = 0.5
	rng := rand.New(rand.NewSource(3))
	ds, st := randomInstance(rng, 8, 40)
	str := index.NewStructure(ds)
	for s1 := 0; s1 < ds.NumSources(); s1++ {
		for s2 := s1 + 1; s2 < ds.NumSources(); s2++ {
			var stb, stm Stats
			bTo, bFrom := exactPairBits(p, str, ds, st, dataset.SourceID(s1), dataset.SourceID(s2), &stb)
			mTo, mFrom := exactPairMerge(p, ds, st, dataset.SourceID(s1), dataset.SourceID(s2), &stm)
			if bTo != mTo || bFrom != mFrom {
				t.Fatalf("pair (%d,%d): bits (%v,%v) != merge (%v,%v)", s1, s2, bTo, bFrom, mTo, mFrom)
			}
		}
	}
}
