package main

import (
	"testing"
	"time"

	"copydetect/internal/cluster"
)

// TestParseFlags exercises every documented flag and the backend-list
// validation.
func TestParseFlags(t *testing.T) {
	opt, err := parseFlags([]string{"-backends", "http://a:1,http://b:2"})
	if err != nil {
		t.Fatalf("defaults: %v", err)
	}
	if opt.addr != ":8378" || opt.addrFile != "" {
		t.Fatalf("defaults = %+v", opt)
	}
	if len(opt.cfg.Backends) != 2 || opt.cfg.Backends[0] != "http://a:1" || opt.cfg.Backends[1] != "http://b:2" {
		t.Fatalf("backends = %v", opt.cfg.Backends)
	}
	if opt.cfg.ProbeEvery != time.Second || opt.cfg.ProbeTimeout != 0 || opt.cfg.Retries != 2 {
		t.Fatalf("probe defaults = %+v", opt.cfg)
	}
	if opt.cfg.Replication != 2 {
		t.Fatalf("default -replicas: cfg.Replication = %d, want 2", opt.cfg.Replication)
	}
	if opt.cfg.MirrorHighWater != cluster.DefaultMirrorHighWater {
		t.Fatalf("default -mirror-high-water: cfg.MirrorHighWater = %d, want %d",
			opt.cfg.MirrorHighWater, cluster.DefaultMirrorHighWater)
	}

	opt, err = parseFlags([]string{"-backends", "http://a:1,http://b:2", "-replicas", "1"})
	if err != nil || opt.cfg.Replication != 1 {
		t.Fatalf("-replicas 1: cfg.Replication = %d (err %v), want 1", opt.cfg.Replication, err)
	}

	opt, err = parseFlags([]string{
		"-addr", "127.0.0.1:9100", "-addr-file", "/tmp/gate.addr",
		"-backends", " http://a:1 , http://b:2,, http://c:3 ",
		"-probe-every", "250ms", "-probe-timeout", "100ms", "-retries", "5",
	})
	if err != nil {
		t.Fatalf("full flags: %v", err)
	}
	if opt.addr != "127.0.0.1:9100" || opt.addrFile != "/tmp/gate.addr" {
		t.Fatalf("full flags = %+v", opt)
	}
	if len(opt.cfg.Backends) != 3 || opt.cfg.Backends[2] != "http://c:3" {
		t.Fatalf("backends with whitespace = %v", opt.cfg.Backends)
	}
	if opt.cfg.ProbeEvery != 250*time.Millisecond || opt.cfg.ProbeTimeout != 100*time.Millisecond || opt.cfg.Retries != 5 {
		t.Fatalf("probe flags = %+v", opt.cfg)
	}

	// -retries 0 means zero retries; Config reserves 0 for "default", so
	// the flag must map it to the explicit "disabled" value.
	opt, err = parseFlags([]string{"-backends", "http://a:1", "-retries", "0"})
	if err != nil || opt.cfg.Retries != -1 {
		t.Fatalf("-retries 0: cfg.Retries = %d (err %v), want -1", opt.cfg.Retries, err)
	}

	// Same convention for -mirror-high-water: 0 disables the limit.
	opt, err = parseFlags([]string{"-backends", "http://a:1", "-mirror-high-water", "0"})
	if err != nil || opt.cfg.MirrorHighWater != -1 {
		t.Fatalf("-mirror-high-water 0: cfg.MirrorHighWater = %d (err %v), want -1", opt.cfg.MirrorHighWater, err)
	}
	opt, err = parseFlags([]string{"-backends", "http://a:1", "-mirror-high-water", "8"})
	if err != nil || opt.cfg.MirrorHighWater != 8 {
		t.Fatalf("-mirror-high-water 8: cfg.MirrorHighWater = %d (err %v), want 8", opt.cfg.MirrorHighWater, err)
	}

	for _, bad := range [][]string{
		nil,                        // no backends
		{"-backends", " , "},       // empty after trimming
		{"-backends", "not-a-url"}, // scheme missing
		{"-backends", "http://a:1", "-probe-every", "-1s"},
		{"-backends", "http://a:1", "-probe-timeout", "-1s"},
		{"-backends", "http://a:1", "-replicas", "0"},
		{"-backends", "http://a:1", "-mirror-high-water", "-1"},
		{"-nonsense"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("parseFlags(%v) accepted invalid input", bad)
		}
	}
}

// TestHTTPServerTimeouts pins the slow-client protections on the
// listener: a server with no ReadHeaderTimeout can be held open forever
// by one trickled request line.
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(nil)
	if srv.ReadHeaderTimeout <= 0 {
		t.Errorf("ReadHeaderTimeout = %v, want > 0", srv.ReadHeaderTimeout)
	}
	if srv.IdleTimeout <= 0 {
		t.Errorf("IdleTimeout = %v, want > 0", srv.IdleTimeout)
	}
}
