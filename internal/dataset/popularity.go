package dataset

// ValuePopularities estimates, for every value of every item, the
// probability that a wrong source would provide exactly that value — the
// empirical input of the paper's footnote-2 relaxation (value
// distributions instead of n uniform false values). The estimate is the
// value's share of the item's observations; it is a static property of
// the dataset and is computed once.
func ValuePopularities(ds *Dataset) [][]float64 {
	pop := make([][]float64, ds.NumItems())
	for d := range ds.ByItem {
		nv := ds.NumValues(ItemID(d))
		pop[d] = make([]float64, nv)
		total := len(ds.ByItem[d])
		if total == 0 {
			continue
		}
		for _, sv := range ds.ByItem[d] {
			pop[d][sv.Value]++
		}
		for v := range pop[d] {
			pop[d][v] /= float64(total)
		}
	}
	return pop
}
