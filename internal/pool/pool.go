// Package pool provides the deterministic shard-merge worker pool behind
// the parallel detection engine (the Section VIII extension, realized with
// goroutines instead of Hadoop).
//
// The execution model is deliberately rigid, because it is what makes
// parallel detection bit-identical to sequential detection:
//
//   - Work is split into `workers` shards by a pure function of the data
//     (the smaller source id of a pair, or a slot stride), never by a
//     scheduler decision. Every shard is owned by exactly one worker, so
//     all per-pair state is single-writer and needs no locks.
//   - Each worker traverses the shared input (the inverted index) in the
//     same order the sequential scan does, so every floating-point
//     accumulation happens in the same order as sequentially.
//   - Shard outputs are merged on the calling goroutine in shard order
//     (Shards) or written into disjoint slots of a shared slice indexed
//     in a worker-independent way, so merged results do not depend on
//     goroutine completion order.
//
// Together these rules make the result independent of both scheduling and
// the worker count itself: Workers=7 produces the same bytes as Workers=1.
// See DESIGN.md ("Parallel detection engine") for the full argument.
package pool

import "runtime"

// Clamp normalizes a requested worker count to at least 1. It deliberately
// does NOT cap at GOMAXPROCS: the shard count is part of the (determinism-
// irrelevant) execution plan, and tests exercise multi-shard execution on
// single-core machines. Oversubscription is safe but not free — each shard
// re-traverses the shared input to filter for the work it owns — so
// callers wanting "use the hardware" pass Auto().
func Clamp(workers int) int {
	if workers < 1 {
		return 1
	}
	return workers
}

// Auto returns the worker count matching the available parallelism
// (GOMAXPROCS), the recommended default for CLI entry points.
func Auto() int { return runtime.GOMAXPROCS(0) }

// Owns reports whether worker w owns the work item identified by id under
// workers-way modular sharding; with workers <= 1 the single worker owns
// everything. Every parallel kernel that shards the same id space (the
// scan and INCREMENTAL's prepare and pass A all shard by the smaller
// source id of a pair) must route ownership through this one predicate —
// the bit-identity argument in DESIGN.md requires their shard functions
// to agree exactly.
func Owns(workers, w, id int) bool {
	return workers <= 1 || id%workers == w
}

// Run executes fn(w) for every w in [0, workers) and waits for all of
// them. With workers <= 1 it calls fn(0) inline, so the sequential path
// pays no goroutine overhead and shares the exact same kernel code.
func Run(workers int, fn func(w int)) {
	if workers <= 1 {
		fn(0)
		return
	}
	// Buffered so worker sends never block: if fn(0) panics on the calling
	// goroutine below, the spawned workers can still finish and exit
	// instead of leaking, blocked on an undrained channel.
	done := make(chan struct{}, workers-1)
	for w := 1; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			fn(w)
		}(w)
	}
	fn(0)
	for w := 1; w < workers; w++ {
		<-done
	}
}

// Shards executes fn(w) for every w in [0, workers) and returns the
// per-shard results indexed by shard, so the caller can merge them in
// shard order regardless of goroutine completion order.
func Shards[T any](workers int, fn func(w int) T) []T {
	out := make([]T, Clamp(workers))
	Run(workers, func(w int) { out[w] = fn(w) })
	return out
}
